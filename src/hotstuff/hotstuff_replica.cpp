#include "hotstuff/hotstuff_replica.hpp"

#include <algorithm>
#include <stdexcept>

namespace probft::hotstuff {

using core::MsgTag;
using core::WishMsg;

// ---------------- QuorumCert ----------------

void QuorumCert::encode(Writer& w) const {
  w.u8(static_cast<std::uint8_t>(phase));
  w.u64(view);
  w.bytes(value);
  w.vec(signers, [](Writer& out, ReplicaId id) { out.u32(id); });
  w.vec(sigs, [](Writer& out, const Bytes& sig) { out.bytes(sig); });
}

QuorumCert QuorumCert::decode(Reader& r) {
  QuorumCert out;
  out.phase = static_cast<HsPhase>(r.u8());
  out.view = r.u64();
  out.value = r.bytes();
  out.signers = r.vec<ReplicaId>([](Reader& in) { return in.u32(); });
  out.sigs = r.vec<Bytes>([](Reader& in) { return in.bytes(); });
  return out;
}

Bytes QuorumCert::vote_signing_bytes(HsPhase phase, View view,
                                     const Bytes& value) {
  Writer w;
  w.str("hotstuff/vote");
  w.u8(static_cast<std::uint8_t>(phase));
  w.u64(view);
  w.bytes(value);
  return std::move(w).take();
}

// ---------------- HsNewView ----------------

void HsNewView::encode(Writer& w) const {
  w.u64(view);
  prepare_qc.encode(w);
  w.u32(sender);
  w.bytes(sender_sig);
}

HsNewView HsNewView::decode(Reader& r) {
  HsNewView out;
  out.view = r.u64();
  out.prepare_qc = QuorumCert::decode(r);
  out.sender = r.u32();
  out.sender_sig = r.bytes();
  return out;
}

Bytes HsNewView::signing_bytes() const {
  Writer w;
  w.str("hotstuff/newview");
  w.u64(view);
  prepare_qc.encode(w);
  w.u32(sender);
  return std::move(w).take();
}

Bytes HsNewView::to_bytes() const {
  Writer w;
  encode(w);
  return std::move(w).take();
}

HsNewView HsNewView::from_bytes(ByteSpan data) {
  Reader r(data);
  auto out = decode(r);
  r.expect_exhausted();
  return out;
}

// ---------------- HsProposal ----------------

void HsProposal::encode(Writer& w) const {
  w.u64(view);
  w.bytes(value);
  high_qc.encode(w);
  w.u32(sender);
  w.bytes(sender_sig);
}

HsProposal HsProposal::decode(Reader& r) {
  HsProposal out;
  out.view = r.u64();
  out.value = r.bytes();
  out.high_qc = QuorumCert::decode(r);
  out.sender = r.u32();
  out.sender_sig = r.bytes();
  return out;
}

Bytes HsProposal::signing_bytes() const {
  Writer w;
  w.str("hotstuff/proposal");
  w.u64(view);
  w.bytes(value);
  high_qc.encode(w);
  w.u32(sender);
  return std::move(w).take();
}

Bytes HsProposal::to_bytes() const {
  Writer w;
  encode(w);
  return std::move(w).take();
}

HsProposal HsProposal::from_bytes(ByteSpan data) {
  Reader r(data);
  auto out = decode(r);
  r.expect_exhausted();
  return out;
}

// ---------------- HsVote ----------------

void HsVote::encode(Writer& w) const {
  w.u8(static_cast<std::uint8_t>(phase));
  w.u64(view);
  w.bytes(value);
  w.u32(sender);
  w.bytes(sender_sig);
}

HsVote HsVote::decode(Reader& r) {
  HsVote out;
  out.phase = static_cast<HsPhase>(r.u8());
  out.view = r.u64();
  out.value = r.bytes();
  out.sender = r.u32();
  out.sender_sig = r.bytes();
  return out;
}

Bytes HsVote::to_bytes() const {
  Writer w;
  encode(w);
  return std::move(w).take();
}

HsVote HsVote::from_bytes(ByteSpan data) {
  Reader r(data);
  auto out = decode(r);
  r.expect_exhausted();
  return out;
}

// ---------------- HsQcMsg ----------------

void HsQcMsg::encode(Writer& w) const {
  qc.encode(w);
  w.u32(sender);
  w.bytes(sender_sig);
}

HsQcMsg HsQcMsg::decode(Reader& r) {
  HsQcMsg out;
  out.qc = QuorumCert::decode(r);
  out.sender = r.u32();
  out.sender_sig = r.bytes();
  return out;
}

Bytes HsQcMsg::signing_bytes() const {
  Writer w;
  w.str("hotstuff/qcmsg");
  qc.encode(w);
  w.u32(sender);
  return std::move(w).take();
}

Bytes HsQcMsg::to_bytes() const {
  Writer w;
  encode(w);
  return std::move(w).take();
}

HsQcMsg HsQcMsg::from_bytes(ByteSpan data) {
  Reader r(data);
  auto out = decode(r);
  r.expect_exhausted();
  return out;
}

// ---------------- HotStuffReplica ----------------

HotStuffReplica::HotStuffReplica(HotStuffConfig config,
                                 sync::SyncConfig sync_config, core::ProtocolHost host)
    : cfg_(std::move(config)), host_(std::move(host)) {
  if (cfg_.id == 0 || cfg_.id > cfg_.n || cfg_.suite == nullptr ||
      cfg_.public_keys.size() != cfg_.n + 1) {
    throw std::invalid_argument("HotStuffReplica: bad configuration");
  }
  if (!cfg_.valid) {
    cfg_.valid = [](const Bytes& v) { return !v.empty(); };
  }
  sync_config.n = cfg_.n;
  sync_config.f = cfg_.f;
  synchronizer_ = std::make_unique<sync::Synchronizer>(
      cfg_.id, sync_config,
      [this](View v) {
        WishMsg wish;
        wish.view = v;
        wish.sender = cfg_.id;
        wish.sender_sig =
            cfg_.suite->sign(cfg_.secret_key, wish.signing_bytes());
        host_.broadcast(static_cast<std::uint8_t>(HsTag::kWish),
                         wish.to_bytes());
      },
      [this](View v) { enter_view(v); },
      host_.set_timer);
}

void HotStuffReplica::start() { synchronizer_->start(); }

void HotStuffReplica::on_message(ReplicaId from, std::uint8_t tag,
                                 const Bytes& payload) {
  try {
    switch (static_cast<HsTag>(tag)) {
      case HsTag::kNewView:
        handle_new_view(payload);
        break;
      case HsTag::kProposal:
        handle_proposal(payload);
        break;
      case HsTag::kVote:
        handle_vote(payload);
        break;
      case HsTag::kQc:
        handle_qc(payload);
        break;
      case HsTag::kWish:
        handle_wish(from, payload);
        break;
      default:
        break;
    }
  } catch (const CodecError&) {
    // Malformed message: drop.
  }
}

void HotStuffReplica::enter_view(View v) {
  cur_view_ = v;
  cur_val_.clear();
  voted_prepare_ = false;
  proposed_this_view_ = false;
  new_views_.clear();
  votes_.clear();
  qc_sent_.clear();
  qc_applied_.clear();

  const ReplicaId leader = leader_of(v, cfg_.n);
  if (v == 1) {
    if (leader == cfg_.id) try_lead();
  } else {
    HsNewView nv;
    nv.view = v;
    nv.prepare_qc = prepare_qc_;
    nv.sender = cfg_.id;
    nv.sender_sig = cfg_.suite->sign(cfg_.secret_key, nv.signing_bytes());
    host_.send(leader, static_cast<std::uint8_t>(HsTag::kNewView),
                nv.to_bytes());
  }
}

void HotStuffReplica::handle_new_view(const Bytes& raw) {
  HsNewView msg = HsNewView::from_bytes(raw);
  if (msg.sender == 0 || msg.sender > cfg_.n) return;
  if (msg.view != cur_view_ || leader_of(msg.view, cfg_.n) != cfg_.id) return;
  if (!cfg_.suite->verify(cfg_.public_keys[msg.sender], msg.signing_bytes(),
                          msg.sender_sig)) {
    return;
  }
  if (!msg.prepare_qc.is_null() && !verify_qc(msg.prepare_qc)) return;
  const ReplicaId sender = msg.sender;
  new_views_.emplace(sender, std::move(msg));
  try_lead();
}

void HotStuffReplica::try_lead() {
  if (proposed_this_view_ || leader_of(cur_view_, cfg_.n) != cfg_.id) return;
  QuorumCert high_qc;  // null
  if (cur_view_ > 1) {
    if (new_views_.size() < cfg_.quorum()) return;
    for (const auto& [sender, nv] : new_views_) {
      if (!nv.prepare_qc.is_null() &&
          (high_qc.is_null() || nv.prepare_qc.view > high_qc.view)) {
        high_qc = nv.prepare_qc;
      }
    }
  }

  HsProposal prop;
  prop.view = cur_view_;
  prop.value = high_qc.is_null() ? cfg_.my_value : high_qc.value;
  prop.high_qc = high_qc;
  prop.sender = cfg_.id;
  prop.sender_sig = cfg_.suite->sign(cfg_.secret_key, prop.signing_bytes());
  proposed_this_view_ = true;
  const Bytes raw = prop.to_bytes();
  host_.broadcast(static_cast<std::uint8_t>(HsTag::kProposal), raw);
  handle_proposal(raw);  // leader processes its own proposal
}

bool HotStuffReplica::safe_node(const HsProposal& p) const {
  if (locked_qc_.is_null()) return true;
  // Safety rule: extend the locked value...
  if (p.value == locked_qc_.value) return true;
  // ...or present a higher QC (liveness rule).
  return !p.high_qc.is_null() && p.high_qc.view > locked_qc_.view;
}

void HotStuffReplica::handle_proposal(const Bytes& raw) {
  HsProposal msg = HsProposal::from_bytes(raw);
  if (msg.view != cur_view_ || voted_prepare_) return;
  if (msg.sender != leader_of(msg.view, cfg_.n)) return;
  if (!cfg_.suite->verify(cfg_.public_keys[msg.sender], msg.signing_bytes(),
                          msg.sender_sig)) {
    return;
  }
  if (!cfg_.valid(msg.value)) return;
  if (!msg.high_qc.is_null()) {
    if (!verify_qc(msg.high_qc)) return;
    if (msg.high_qc.value != msg.value) return;  // QC must justify the value
  }
  if (!safe_node(msg)) return;

  cur_val_ = msg.value;
  voted_prepare_ = true;
  send_vote(HsPhase::kPrepare, cur_val_);
}

void HotStuffReplica::send_vote(HsPhase phase, const Bytes& value) {
  HsVote vote;
  vote.phase = phase;
  vote.view = cur_view_;
  vote.value = value;
  vote.sender = cfg_.id;
  vote.sender_sig = cfg_.suite->sign(
      cfg_.secret_key,
      QuorumCert::vote_signing_bytes(phase, cur_view_, value));
  const ReplicaId leader = leader_of(cur_view_, cfg_.n);
  const Bytes raw = vote.to_bytes();
  if (leader == cfg_.id) {
    handle_vote(raw);  // leader counts its own vote without a network hop
  } else {
    host_.send(leader, static_cast<std::uint8_t>(HsTag::kVote), raw);
  }
}

void HotStuffReplica::handle_vote(const Bytes& raw) {
  HsVote msg = HsVote::from_bytes(raw);
  if (msg.sender == 0 || msg.sender > cfg_.n) return;
  if (msg.view != cur_view_ || leader_of(msg.view, cfg_.n) != cfg_.id) return;
  if (!cfg_.suite->verify(
          cfg_.public_keys[msg.sender],
          QuorumCert::vote_signing_bytes(msg.phase, msg.view, msg.value),
          msg.sender_sig)) {
    return;
  }
  const HsPhase phase = msg.phase;
  const ReplicaId sender = msg.sender;
  votes_[phase].emplace(sender, std::move(msg));
  leader_check_votes(phase);
}

void HotStuffReplica::leader_check_votes(HsPhase phase) {
  if (qc_sent_.contains(phase)) return;
  const auto it = votes_.find(phase);
  if (it == votes_.end()) return;
  // Count votes matching the proposed value.
  std::vector<const HsVote*> matching;
  for (const auto& [sender, vote] : it->second) {
    if (vote.value == cur_val_) matching.push_back(&vote);
  }
  if (matching.size() < cfg_.quorum()) return;

  QuorumCert qc;
  qc.phase = phase;
  qc.view = cur_view_;
  qc.value = cur_val_;
  for (const auto* vote : matching) {
    if (qc.signers.size() == cfg_.quorum()) break;
    qc.signers.push_back(vote->sender);
    qc.sigs.push_back(vote->sender_sig);
  }
  qc_sent_.insert(phase);
  broadcast_qc(std::move(qc));
}

void HotStuffReplica::broadcast_qc(QuorumCert qc) {
  HsQcMsg msg;
  msg.qc = std::move(qc);
  msg.sender = cfg_.id;
  msg.sender_sig = cfg_.suite->sign(cfg_.secret_key, msg.signing_bytes());
  const Bytes raw = msg.to_bytes();
  host_.broadcast(static_cast<std::uint8_t>(HsTag::kQc), raw);
  handle_qc(raw);  // leader applies its own QC
}

void HotStuffReplica::handle_qc(const Bytes& raw) {
  HsQcMsg msg = HsQcMsg::from_bytes(raw);
  if (msg.sender == 0 || msg.sender > cfg_.n) return;
  if (msg.qc.view != cur_view_) return;
  if (!cfg_.suite->verify(cfg_.public_keys[msg.sender], msg.signing_bytes(),
                          msg.sender_sig)) {
    return;
  }
  if (!verify_qc(msg.qc)) return;

  switch (msg.qc.phase) {
    case HsPhase::kPrepare:
      prepare_qc_ = msg.qc;
      if (qc_applied_.insert(HsPhase::kPrepare).second) {
        send_vote(HsPhase::kPreCommit, msg.qc.value);
      }
      break;
    case HsPhase::kPreCommit:
      locked_qc_ = msg.qc;
      if (qc_applied_.insert(HsPhase::kPreCommit).second) {
        send_vote(HsPhase::kCommit, msg.qc.value);
      }
      break;
    case HsPhase::kCommit:
      if (!decided_) {
        decided_ = Decision{cur_view_, msg.qc.value};
        if (cfg_.stop_sync_on_decide) synchronizer_->stop();
        if (host_.on_decide) host_.on_decide(cur_view_, msg.qc.value);
      }
      break;
  }
}

void HotStuffReplica::handle_wish(ReplicaId from, const Bytes& raw) {
  WishMsg msg = WishMsg::from_bytes(raw);
  if (msg.sender == 0 || msg.sender > cfg_.n || msg.sender != from) return;
  if (!cfg_.suite->verify(cfg_.public_keys[msg.sender], msg.signing_bytes(),
                          msg.sender_sig)) {
    return;
  }
  synchronizer_->on_wish(msg.sender, msg.view);
}

bool HotStuffReplica::verify_qc(const QuorumCert& qc) const {
  if (qc.is_null()) return false;
  if (qc.signers.size() != qc.sigs.size()) return false;
  std::set<ReplicaId> distinct;
  const Bytes payload =
      QuorumCert::vote_signing_bytes(qc.phase, qc.view, qc.value);
  for (std::size_t i = 0; i < qc.signers.size(); ++i) {
    const ReplicaId signer = qc.signers[i];
    if (signer == 0 || signer > cfg_.n) return false;
    if (!cfg_.suite->verify(cfg_.public_keys[signer], payload, qc.sigs[i])) {
      return false;
    }
    distinct.insert(signer);
  }
  return distinct.size() >= cfg_.quorum();
}

}  // namespace probft::hotstuff
