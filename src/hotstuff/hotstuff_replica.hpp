// Single-shot (Basic) HotStuff baseline — the second comparison protocol of
// Figure 1. Leader-to-all-to-leader pattern with quorum certificates:
//
//   NewView -> Propose -> PrepareVote -> PrepareQC -> PreCommitVote ->
//   PreCommitQC (lock) -> CommitVote -> CommitQC (decide)
//
// Message complexity is linear (O(n) per phase) but the protocol needs more
// communication steps than PBFT/ProBFT (Figure 1a). Deterministic quorums
// of ⌈(n+f+1)/2⌉ and the standard locking rule (safeNode) provide safety;
// the shared synchronizer provides view synchronization.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>

#include "common/bytes.hpp"
#include "common/codec.hpp"
#include "common/types.hpp"
#include "core/messages.hpp"
#include "core/protocol_host.hpp"
#include "core/replica.hpp"
#include "crypto/suite.hpp"
#include "net/tags.hpp"
#include "sync/synchronizer.hpp"

namespace probft::hotstuff {

enum class HsTag : std::uint8_t {
  kNewView = net::tags::kHsNewView,
  kProposal = net::tags::kHsProposal,
  kVote = net::tags::kHsVote,
  kQc = net::tags::kHsQc,
  kWish = net::tags::kHsWish,
};

enum class HsPhase : std::uint8_t {
  kPrepare = 1,
  kPreCommit = 2,
  kCommit = 3,
};

/// Quorum certificate: quorum-many signatures over (phase, view, value).
/// view == 0 encodes the null QC.
struct QuorumCert {
  HsPhase phase = HsPhase::kPrepare;
  View view = 0;
  Bytes value;
  std::vector<ReplicaId> signers;
  std::vector<Bytes> sigs;

  [[nodiscard]] bool is_null() const { return view == 0; }
  void encode(Writer& w) const;
  static QuorumCert decode(Reader& r);
  /// The byte string each signer signed (shared with HsVote).
  [[nodiscard]] static Bytes vote_signing_bytes(HsPhase phase, View view,
                                                const Bytes& value);
};

struct HsNewView {
  View view = 0;          // view being entered
  QuorumCert prepare_qc;  // highest prepare QC known to the sender
  ReplicaId sender = 0;
  Bytes sender_sig;

  void encode(Writer& w) const;
  static HsNewView decode(Reader& r);
  [[nodiscard]] Bytes signing_bytes() const;
  [[nodiscard]] Bytes to_bytes() const;
  static HsNewView from_bytes(ByteSpan data);
};

struct HsProposal {
  View view = 0;
  Bytes value;
  QuorumCert high_qc;  // justifies the value after a view change
  ReplicaId sender = 0;
  Bytes sender_sig;

  void encode(Writer& w) const;
  static HsProposal decode(Reader& r);
  [[nodiscard]] Bytes signing_bytes() const;
  [[nodiscard]] Bytes to_bytes() const;
  static HsProposal from_bytes(ByteSpan data);
};

struct HsVote {
  HsPhase phase = HsPhase::kPrepare;
  View view = 0;
  Bytes value;
  ReplicaId sender = 0;
  Bytes sender_sig;  // over QuorumCert::vote_signing_bytes

  void encode(Writer& w) const;
  static HsVote decode(Reader& r);
  [[nodiscard]] Bytes to_bytes() const;
  static HsVote from_bytes(ByteSpan data);
};

struct HsQcMsg {
  QuorumCert qc;
  ReplicaId sender = 0;
  Bytes sender_sig;

  void encode(Writer& w) const;
  static HsQcMsg decode(Reader& r);
  [[nodiscard]] Bytes signing_bytes() const;
  [[nodiscard]] Bytes to_bytes() const;
  static HsQcMsg from_bytes(ByteSpan data);
};

struct HotStuffConfig {
  ReplicaId id = 0;
  std::uint32_t n = 0;
  std::uint32_t f = 0;
  Bytes my_value;
  std::function<bool(const Bytes&)> valid;
  bool stop_sync_on_decide = false;

  const crypto::CryptoSuite* suite = nullptr;
  Bytes secret_key;
  crypto::PublicKeyDir public_keys;

  [[nodiscard]] std::uint32_t quorum() const { return (n + f + 2) / 2; }
};

class HotStuffReplica : public core::INode {
 public:
  HotStuffReplica(HotStuffConfig config, sync::SyncConfig sync_config,
                  core::ProtocolHost host);

  void start() override;
  void on_message(ReplicaId from, std::uint8_t tag,
                  const Bytes& payload) override;

  [[nodiscard]] bool decided() const { return decided_.has_value(); }
  [[nodiscard]] const Bytes& decided_value() const { return decided_->value; }
  [[nodiscard]] View decided_view() const { return decided_->view; }
  [[nodiscard]] View current_view() const { return cur_view_; }
  [[nodiscard]] const QuorumCert& locked_qc() const { return locked_qc_; }

 private:
  struct Decision {
    View view;
    Bytes value;
  };

  void enter_view(View v);
  void handle_new_view(const Bytes& raw);
  void handle_proposal(const Bytes& raw);
  void handle_vote(const Bytes& raw);
  void handle_qc(const Bytes& raw);
  void handle_wish(ReplicaId from, const Bytes& raw);

  void try_lead();
  void leader_check_votes(HsPhase phase);
  void send_vote(HsPhase phase, const Bytes& value);
  void broadcast_qc(QuorumCert qc);

  [[nodiscard]] bool verify_qc(const QuorumCert& qc) const;
  [[nodiscard]] bool safe_node(const HsProposal& p) const;

  HotStuffConfig cfg_;
  core::ProtocolHost host_;
  std::unique_ptr<sync::Synchronizer> synchronizer_;

  View cur_view_ = 0;
  Bytes cur_val_;
  bool voted_prepare_ = false;
  bool proposed_this_view_ = false;
  QuorumCert prepare_qc_;  // highest known prepare QC
  QuorumCert locked_qc_;   // precommit QC lock
  std::optional<Decision> decided_;

  // Leader-side collections for the current view.
  std::map<ReplicaId, HsNewView> new_views_;
  std::map<HsPhase, std::map<ReplicaId, HsVote>> votes_;
  std::set<HsPhase> qc_sent_;
  std::set<HsPhase> qc_applied_;  // vote-once guard per QC phase
};

}  // namespace probft::hotstuff
