#include "store/wal.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <stdexcept>
#include <system_error>

namespace probft::store {

namespace {

namespace fs = std::filesystem;

[[nodiscard]] std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1U) ? 0xEDB88320U ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

[[noreturn]] void fail(const std::string& what) {
  throw std::runtime_error("wal: " + what + ": " + std::strerror(errno));
}

[[nodiscard]] std::string segment_name(const char* prefix,
                                       std::uint64_t mark) {
  return std::string(prefix) + "-" + std::to_string(mark) + ".dat";
}

/// Parses "<prefix>-<mark>.dat"; returns false on any other name.
[[nodiscard]] bool parse_mark(const std::string& name, const char* prefix,
                              std::uint64_t& mark) {
  const std::string head = std::string(prefix) + "-";
  if (name.size() <= head.size() + 4 || name.compare(0, head.size(), head) != 0 ||
      name.compare(name.size() - 4, 4, ".dat") != 0) {
    return false;
  }
  const std::string digits = name.substr(head.size(), name.size() - head.size() - 4);
  if (digits.empty() ||
      digits.find_first_not_of("0123456789") != std::string::npos) {
    return false;
  }
  mark = std::stoull(digits);
  return true;
}

void write_all(int fd, const std::uint8_t* data, std::size_t size) {
  while (size > 0) {
    const ssize_t n = ::write(fd, data, size);
    if (n < 0) {
      if (errno == EINTR) continue;
      fail("write");
    }
    data += n;
    size -= static_cast<std::size_t>(n);
  }
}

void write_record(int fd, const Bytes& payload) {
  std::array<std::uint8_t, 8> header{};
  const auto len = static_cast<std::uint32_t>(payload.size());
  const std::uint32_t crc = crc32(ByteSpan(payload.data(), payload.size()));
  for (int i = 0; i < 4; ++i) {
    header[static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(len >> (8 * i));
    header[static_cast<std::size_t>(4 + i)] =
        static_cast<std::uint8_t>(crc >> (8 * i));
  }
  write_all(fd, header.data(), header.size());
  write_all(fd, payload.data(), payload.size());
}

/// Reads CRC-framed records from `path`; returns the valid prefix and the
/// byte offset where it ends (a torn tail starts there).
[[nodiscard]] std::vector<Bytes> read_records(const fs::path& path,
                                              std::uint64_t& valid_bytes) {
  std::vector<Bytes> out;
  valid_bytes = 0;
  std::error_code ec;
  const auto file_size = fs::file_size(path, ec);
  if (ec) return out;
  Bytes blob(file_size);
  if (file_size > 0) {
    FILE* f = std::fopen(path.c_str(), "rb");
    if (f == nullptr) fail("open " + path.string());
    const std::size_t got = std::fread(blob.data(), 1, blob.size(), f);
    std::fclose(f);
    blob.resize(got);
  }
  std::size_t pos = 0;
  while (blob.size() - pos >= 8) {
    std::uint32_t len = 0;
    std::uint32_t crc = 0;
    for (int i = 0; i < 4; ++i) {
      len |= static_cast<std::uint32_t>(blob[pos + static_cast<std::size_t>(i)])
             << (8 * i);
      crc |= static_cast<std::uint32_t>(
                 blob[pos + static_cast<std::size_t>(4 + i)])
             << (8 * i);
    }
    if (blob.size() - pos - 8 < len) break;  // partial record: torn tail
    ByteSpan payload(blob.data() + pos + 8, len);
    if (crc32(payload) != crc) break;  // corrupt record: torn tail
    out.emplace_back(payload.begin(), payload.end());
    pos += 8 + len;
  }
  valid_bytes = pos;
  return out;
}

void fsync_path(const fs::path& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) fail("open for fsync " + path.string());
  if (::fsync(fd) != 0) {
    ::close(fd);
    fail("fsync " + path.string());
  }
  ::close(fd);
}

}  // namespace

std::uint32_t crc32(ByteSpan data) {
  static const auto table = make_crc_table();
  std::uint32_t c = 0xFFFFFFFFU;
  for (const std::uint8_t byte : data) {
    c = table[(c ^ byte) & 0xFFU] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFU;
}

Wal::Wal(WalOptions options) : opts_(std::move(options)) {
  if (opts_.dir.empty()) {
    throw std::invalid_argument("wal: directory must be set");
  }
  fs::create_directories(opts_.dir);
  recover();
  open_segment_for_append();
}

Wal::~Wal() {
  if (log_fd_ >= 0) ::close(log_fd_);
}

void Wal::maybe_fsync(int fd) const {
  if (opts_.fsync && ::fsync(fd) != 0) fail("fsync");
}

void Wal::recover() {
  // Newest ckpt-<m>.dat whose single record survives its CRC wins; a
  // corrupt or empty checkpoint file (crash during step 2) is skipped in
  // favor of the previous one. Orphan log files (crash between steps 1
  // and 2) are ignored the same way.
  std::vector<std::uint64_t> ckpt_marks;
  for (const auto& entry : fs::directory_iterator(opts_.dir)) {
    std::uint64_t mark = 0;
    if (parse_mark(entry.path().filename().string(), "ckpt", mark)) {
      ckpt_marks.push_back(mark);
    }
  }
  std::sort(ckpt_marks.rbegin(), ckpt_marks.rend());
  mark_ = 0;
  snapshot_.reset();
  for (const std::uint64_t mark : ckpt_marks) {
    std::uint64_t valid = 0;
    auto records =
        read_records(fs::path(opts_.dir) / segment_name("ckpt", mark), valid);
    if (records.size() == 1) {
      mark_ = mark;
      snapshot_ = std::move(records.front());
      break;
    }
  }
  const fs::path log_path = fs::path(opts_.dir) / segment_name("log", mark_);
  std::uint64_t valid = 0;
  records_ = read_records(log_path, valid);
  // Truncate a torn tail so appends extend the valid prefix.
  std::error_code ec;
  const auto size = fs::file_size(log_path, ec);
  if (!ec && size > valid) {
    fs::resize_file(log_path, valid, ec);
    if (ec) throw std::runtime_error("wal: truncate failed: " + ec.message());
  }
}

void Wal::open_segment_for_append() {
  if (log_fd_ >= 0) ::close(log_fd_);
  const fs::path path = fs::path(opts_.dir) / segment_name("log", mark_);
  log_fd_ = ::open(path.c_str(), O_WRONLY | O_APPEND | O_CREAT, 0644);
  if (log_fd_ < 0) fail("open " + path.string());
}

void Wal::append(const Bytes& record) {
  owner_.assert_held_or_adopt();
  write_record(log_fd_, record);
}

void Wal::sync() {
  owner_.assert_held_or_adopt();
  maybe_fsync(log_fd_);
}

void Wal::checkpoint(std::uint64_t mark, const Bytes& snapshot,
                     const std::vector<Bytes>& tail_records) {
  owner_.assert_held_or_adopt();
  const fs::path dir(opts_.dir);

  // Step 1: the new segment's tail, complete before it becomes visible.
  const fs::path log_tmp = dir / (segment_name("log", mark) + ".tmp");
  int fd = ::open(log_tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) fail("open " + log_tmp.string());
  for (const Bytes& record : tail_records) write_record(fd, record);
  maybe_fsync(fd);
  ::close(fd);
  fs::rename(log_tmp, dir / segment_name("log", mark));

  // Step 2: the checkpoint record — the commit point of the install.
  const fs::path ckpt_tmp = dir / (segment_name("ckpt", mark) + ".tmp");
  fd = ::open(ckpt_tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) fail("open " + ckpt_tmp.string());
  write_record(fd, snapshot);
  maybe_fsync(fd);
  ::close(fd);
  fs::rename(ckpt_tmp, dir / segment_name("ckpt", mark));
  if (opts_.fsync) fsync_path(dir);

  // Step 3: older marks are garbage now.
  std::vector<fs::path> stale;
  for (const auto& entry : fs::directory_iterator(dir)) {
    std::uint64_t m = 0;
    const std::string name = entry.path().filename().string();
    if ((parse_mark(name, "ckpt", m) || parse_mark(name, "log", m)) &&
        m < mark) {
      stale.push_back(entry.path());
    }
  }
  std::error_code ec;
  for (const fs::path& path : stale) fs::remove(path, ec);

  mark_ = mark;
  open_segment_for_append();
}

}  // namespace probft::store
