// Write-ahead log: the durable substrate under an SMR replica.
//
// Layout (one directory per replica):
//   ckpt-<mark>.dat   one CRC-framed record: the checkpoint snapshot that
//                     covers every slot below <mark> (absent at mark 0)
//   log-<mark>.dat    append-only CRC-framed records decided at or after
//                     <mark>, in append order
//
// Records are opaque to this layer — the SMR engine encodes decide records
// and checkpoint snapshots; the store only frames, checksums, fsyncs and
// recovers them. Framing is [u32 len][u32 crc32][payload]; recovery reads
// the newest valid checkpoint, replays its log file, and truncates a torn
// tail (partial record or CRC mismatch — the write that was in flight when
// the process died) so subsequent appends extend a valid prefix.
//
// Checkpoint installation is crash-safe by ordering:
//   1. write log-<mark>.tmp (the retained tail records), fsync, rename;
//   2. write ckpt-<mark>.tmp (the snapshot record), fsync, rename;
//   3. fsync the directory, then delete files of older marks.
// A crash between any two steps leaves either the old checkpoint or the
// new one fully readable: ckpt-<mark>.dat is the commit point, and its log
// file is complete before it appears.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/annotations.hpp"
#include "common/bytes.hpp"
#include "common/mutex.hpp"

namespace probft::store {

/// CRC-32 (IEEE 802.3, reflected, poly 0xEDB88320) over `data`.
[[nodiscard]] std::uint32_t crc32(ByteSpan data);

struct WalOptions {
  std::string dir;    // created if missing
  bool fsync = true;  // false trades durability for speed (tests, benches)
};

class Wal {
 public:
  /// Opens (and recovers) the log in `options.dir`. Throws
  /// std::runtime_error on I/O errors; a torn tail is NOT an error — it is
  /// truncated and recovery reports the valid prefix.
  explicit Wal(WalOptions options);
  ~Wal();

  Wal(const Wal&) = delete;
  Wal& operator=(const Wal&) = delete;

  // ---- recovery views (state as of open; not updated by writes) ----
  /// Snapshot payload of the newest valid checkpoint, if any.
  [[nodiscard]] const std::optional<Bytes>& snapshot() const {
    owner_.assert_held_or_adopt();
    return snapshot_;
  }
  /// Mark of the recovered checkpoint (0 when none).
  [[nodiscard]] std::uint64_t mark() const {
    owner_.assert_held_or_adopt();
    return mark_;
  }
  /// Records appended after the recovered checkpoint, in append order.
  [[nodiscard]] const std::vector<Bytes>& records() const {
    owner_.assert_held_or_adopt();
    return records_;
  }

  // ---- writes ----
  /// Appends one record to the current log segment (no fsync).
  void append(const Bytes& record);
  /// fsyncs the current log segment (no-op when fsync is disabled).
  void sync();
  /// Installs a new checkpoint: `snapshot` covers everything below
  /// `mark`, `tail_records` are the still-live records at or above it.
  /// Subsequent append()s extend the new segment.
  void checkpoint(std::uint64_t mark, const Bytes& snapshot,
                  const std::vector<Bytes>& tail_records);

 private:
  void recover() PROBFT_REQUIRES(owner_);
  void open_segment_for_append() PROBFT_REQUIRES(owner_);
  /// The ONLY fsync(2) call sites in the tree live in wal.cpp (enforced by
  /// tools/lint_protocol.py) and run with the owner role held — the WAL's
  /// durability ordering depends on one thread driving it.
  void maybe_fsync(int fd) const PROBFT_REQUIRES(owner_);

  /// Single-owner discipline as a capability: the WAL belongs to whichever
  /// thread drives the replica's decide path; the first caller adopts the
  /// role and a debug assert fires if a second thread ever touches it.
  mutable ThreadRole owner_;

  WalOptions opts_;
  int log_fd_ PROBFT_GUARDED_BY(owner_) = -1;  // current log segment
  std::uint64_t mark_ PROBFT_GUARDED_BY(owner_) = 0;  // segment's mark
  std::optional<Bytes> snapshot_ PROBFT_GUARDED_BY(owner_);
  std::vector<Bytes> records_ PROBFT_GUARDED_BY(owner_);
};

}  // namespace probft::store
