// Deterministic discrete-event simulator.
//
// A single-threaded event loop with a virtual clock. Events scheduled for
// the same instant fire in schedule order (a strictly increasing sequence
// number breaks ties), so a (seed, scenario) pair replays bit-for-bit.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/types.hpp"

namespace probft::net {

class Simulator {
 public:
  using EventId = std::uint64_t;
  using Callback = std::function<void()>;

  [[nodiscard]] TimePoint now() const { return now_; }

  /// Schedules `fn` at absolute time `at` (clamped to now()).
  EventId schedule_at(TimePoint at, Callback fn);

  /// Schedules `fn` after `delay` from now().
  EventId schedule_after(Duration delay, Callback fn);

  /// Cancels a pending event; no-op if already fired or unknown.
  void cancel(EventId id);

  /// Runs the next event. Returns false when the queue is empty.
  bool step();

  /// Runs until the queue drains or `max_events` fired; returns #fired.
  std::size_t run(std::size_t max_events = static_cast<std::size_t>(-1));

  /// Runs every event scheduled strictly before `deadline`.
  std::size_t run_until(TimePoint deadline);

  [[nodiscard]] bool empty() const { return queue_.size() == cancelled_.size(); }
  [[nodiscard]] std::size_t pending() const {
    return queue_.size() - cancelled_.size();
  }
  [[nodiscard]] std::uint64_t events_fired() const { return fired_; }

 private:
  struct Event {
    TimePoint at;
    EventId id;
    // Ordered as a min-heap on (at, id).
    bool operator>(const Event& other) const {
      if (at != other.at) return at > other.at;
      return id > other.id;
    }
  };

  TimePoint now_ = 0;
  EventId next_id_ = 1;
  std::uint64_t fired_ = 0;
  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue_;
  std::unordered_map<EventId, Callback> callbacks_;
  std::unordered_set<EventId> cancelled_;
};

}  // namespace probft::net
