// Real-socket ITransport backend: one replica per OS process.
//
// Design (sans-I/O on top, plain POSIX below):
//  - Every node listens on its configured address and DIALS every peer, so
//    each ordered pair (i → j) has one TCP connection carrying i's traffic
//    to j; accepted connections are receive-only. This avoids connection
//    dedup/handshake logic entirely. A connection is BOUND to the sender id
//    claimed by its first valid frame (dialed connections are bound to the
//    dialed peer): later frames claiming any other id poison the stream and
//    drop it. Without that pinning, one hostile peer could stamp frames
//    with every replica id over a single socket and counterfeit f+1
//    "distinct senders" for unsigned traffic (the SMR catch-up vouchers);
//    signatures authenticate message *contents*, not the multiplicity of
//    claimed origins.
//  - Sockets are nonblocking and multiplexed with poll(2) in a
//    single-threaded event loop (run_until()); protocol callbacks run on
//    the loop thread, so replica code needs no locking — the same
//    single-threaded discipline the simulator enforces.
//  - Timers use CLOCK_MONOTONIC and a min-heap; set_timer() satisfies the
//    sync::Synchronizer::TimerSetter contract (delays in microseconds).
//  - A failed or reset dial is retried after `reconnect_delay` for as long
//    as the loop runs; outbound messages queue (bounded) while a peer is
//    down, so a cluster whose processes start at different times still
//    converges.
//
// The wire format is the length-prefixed framing in net/frame.hpp; a
// malformed stream (bad version, oversize length) poisons that connection
// and it is dropped.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <queue>
#include <string>
#include <vector>

#include "common/annotations.hpp"
#include "common/bytes.hpp"
#include "common/mutex.hpp"
#include "common/types.hpp"
#include "net/frame.hpp"
#include "net/transport.hpp"

namespace probft::net {

struct PeerAddress {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
};

struct TcpTransportConfig {
  ReplicaId self = 0;
  std::uint32_t n = 0;
  /// Address this node listens on. Port 0 binds an ephemeral port — read
  /// it back with listen_port() (used by the in-process loopback harness).
  std::string listen_host = "127.0.0.1";
  std::uint16_t listen_port = 0;
  /// Peer addresses, 1-based by replica id; the own entry may be empty.
  /// May be filled after construction with set_peer() (ephemeral ports).
  std::map<ReplicaId, PeerAddress> peers;
  /// Redial delay after a failed or lost connection (µs, monotonic).
  Duration reconnect_delay = 100'000;
  /// Per-frame payload cap fed to the decoder.
  std::size_t max_frame_payload = kDefaultMaxFramePayload;
  /// Per-peer cap on bytes queued while the peer is unreachable; messages
  /// beyond it are counted as dropped (backpressure, not unbounded memory).
  std::size_t max_pending_bytes = 64u << 20;

  /// Write batching: frames queued by send()/broadcast() during one loop
  /// iteration are coalesced into a single sendmsg(iovec) per connection
  /// when the iteration ends (instead of one send(2) per frame as they
  /// arrive). A connection whose queue crosses this watermark is flushed
  /// immediately so a burst inside one protocol callback cannot grow the
  /// queue unboundedly before the loop turns. 0 = flush every send
  /// eagerly (the historical behavior).
  std::size_t flush_watermark = 256u << 10;

  /// Optional client-facing listener (the SMR service port). When
  /// enabled, the transport also accepts connections on this address;
  /// frames arriving there are handed to the client handler (keyed by a
  /// connection id for replies) instead of the replica handler, so
  /// clients never need to speak the replica peer protocol. Port 0 binds
  /// an ephemeral port — read it back with client_port().
  bool client_port_enabled = false;
  std::string client_listen_host = "127.0.0.1";
  std::uint16_t client_listen_port = 0;
  /// Cap on unsent reply bytes per client connection; a client that stops
  /// reading is disconnected instead of buffering without bound.
  std::size_t max_client_pending_bytes = 16u << 20;
  /// Cap on concurrently accepted client connections; beyond it, new
  /// connections are closed immediately (fd-exhaustion resistance on a
  /// public-facing port).
  std::size_t max_client_conns = 1024;
};

class TcpTransport final : public ITransport {
 public:
  /// Binds and listens immediately; throws std::system_error on failure.
  explicit TcpTransport(TcpTransportConfig config);
  ~TcpTransport() override;

  TcpTransport(const TcpTransport&) = delete;
  TcpTransport& operator=(const TcpTransport&) = delete;

  // ---- ITransport ----
  // Loop-thread-only (like everything except post()/stop()): each entry
  // point asserts the loop_thread_ capability, which also arms a runtime
  // thread-id check in debug builds.
  /// Only this node's own id is hosted here.
  void register_handler(ReplicaId id, Handler handler) override;
  void send(ReplicaId from, ReplicaId to, std::uint8_t tag,
            Bytes payload) override;
  void broadcast(ReplicaId from, std::uint8_t tag, const Bytes& payload,
                 bool include_self = false) override;
  void multicast(ReplicaId from, const std::vector<ReplicaId>& recipients,
                 std::uint8_t tag, const Bytes& payload) override;
  [[nodiscard]] const TransportStats& stats() const override {
    loop_thread_.assert_held();
    return stats_;
  }
  [[nodiscard]] std::uint32_t size() const override { return cfg_.n; }

  // ---- wiring ----
  /// The actually-bound listen port (after ephemeral bind).
  [[nodiscard]] std::uint16_t listen_port() const { return listen_port_; }
  /// (Re)sets a peer address before the loop runs.
  void set_peer(ReplicaId id, PeerAddress address);

  // ---- client port ----
  /// Receives frames from client connections as (connection id, tag,
  /// payload). Connection ids are never reused within one transport.
  using ClientHandler = std::function<void(
      std::uint64_t conn, std::uint8_t tag, const Bytes& payload)>;
  void set_client_handler(ClientHandler handler) {
    loop_thread_.assert_held();
    client_handler_ = std::move(handler);
  }
  /// Queues one frame to a client connection; silently drops if the
  /// connection is gone (the client retries against any replica).
  void send_to_client(std::uint64_t conn, std::uint8_t tag,
                      const Bytes& payload);
  /// The actually-bound client port (0 when the listener is disabled).
  [[nodiscard]] std::uint16_t client_port() const { return client_port_; }

  /// Schedules `fn` after `delay` µs of monotonic time; satisfies the
  /// Synchronizer::TimerSetter contract. Callable only from the loop
  /// thread (or before the loop starts).
  void set_timer(Duration delay, std::function<void()> fn);
  /// Adapter handed to protocol hosts.
  [[nodiscard]] std::function<void(Duration, std::function<void()>)>
  timer_setter() {
    return [this](Duration d, std::function<void()> fn) {
      set_timer(d, std::move(fn));
    };
  }

  // ---- event loop ----
  /// Runs until `done()` returns true, `max_wall` µs elapsed, or stop().
  /// Returns the final done() value. Acquires the loop_thread_ role for
  /// the duration of the run.
  bool run_until(const std::function<bool()>& done, Duration max_wall);
  /// Asynchronously stops a run_until() in progress (thread-safe). Writes
  /// the wake pipe so a loop parked in poll(2) notices immediately rather
  /// than after the idle poll timeout.
  void stop();

  /// Thread-safe: schedules `fn` to run on the loop thread at the top of
  /// its next iteration and wakes the loop if it is parked in poll(2).
  /// This is how worker threads (verify pool, executor) re-enter the
  /// single-threaded protocol world; everything else on this class stays
  /// loop-thread-only.
  void post(std::function<void()> fn) PROBFT_EXCLUDES(posted_mu_);

  /// Observability for the write-batching path (tests/benches):
  /// cumulative sendmsg(2) calls and frames they carried. Coalescing =
  /// frames_flushed() >> flush_syscalls() under load.
  [[nodiscard]] std::uint64_t flush_syscalls() const {
    loop_thread_.assert_held();
    return flush_syscalls_;
  }
  [[nodiscard]] std::uint64_t frames_flushed() const {
    loop_thread_.assert_held();
    return frames_flushed_;
  }

  /// Completed dials so far (first connects count too); used by tests to
  /// observe reconnect behavior.
  [[nodiscard]] std::uint64_t connects() const {
    loop_thread_.assert_held();
    return connects_;
  }

 private:
  struct OutboundConn {
    ReplicaId peer = 0;
    int fd = -1;
    bool connecting = false;   // nonblocking connect in flight
    bool retry_armed = false;  // reconnect timer pending
    /// Unsent traffic, one encoded frame per entry. Kept at frame
    /// granularity so a connection lost mid-frame can restart the front
    /// frame from byte 0 on the next connection — the receiver discarded
    /// the partial frame with the dead stream, and splicing a frame tail
    /// into a fresh stream would poison its decoder. Frames are shared
    /// across a broadcast's whole fan-out (encoded once, like the
    /// simulator network's shared payload buffers).
    std::deque<std::shared_ptr<const Bytes>> pending;
    std::size_t front_off = 0;      // sent prefix of pending.front()
    std::size_t pending_bytes = 0;  // sum of pending sizes
    bool dirty = false;  // queued frames await the end-of-iteration flush
    FrameDecoder decoder;  // peers normally never write here; tolerate
  };
  struct InboundConn {
    int fd = -1;
    FrameDecoder decoder;
    /// Claimed sender id, fixed by the first valid frame; 0 = not yet
    /// bound. Frames claiming a different id close the connection.
    ReplicaId bound = 0;
  };
  struct ClientConn {
    std::uint64_t id = 0;
    int fd = -1;
    FrameDecoder decoder;
    Bytes outbuf;             // unsent reply bytes
    std::size_t out_off = 0;  // sent prefix of outbuf
  };
  struct Timer {
    TimePoint at = 0;
    std::uint64_t seq = 0;
    std::function<void()> fn;
    bool operator>(const Timer& other) const {
      if (at != other.at) return at > other.at;
      return seq > other.seq;
    }
  };

  [[nodiscard]] static TimePoint now_us();
  // All of these run with the loop_thread_ role held (clang enforces it;
  // the constructor is the one unchecked caller, which is fine — nothing
  // else can reach the object during construction).
  void open_listener() PROBFT_REQUIRES(loop_thread_);
  void open_client_listener() PROBFT_REQUIRES(loop_thread_);
  void accept_clients() PROBFT_REQUIRES(loop_thread_);
  void read_client_ready(ClientConn& conn, bool& close_me)
      PROBFT_REQUIRES(loop_thread_);
  void flush_client(ClientConn& conn, bool& close_me)
      PROBFT_REQUIRES(loop_thread_);
  void start_dial(OutboundConn& conn) PROBFT_REQUIRES(loop_thread_);
  void finish_dial(OutboundConn& conn) PROBFT_REQUIRES(loop_thread_);
  void fail_dial(OutboundConn& conn) PROBFT_REQUIRES(loop_thread_);
  void flush(OutboundConn& conn) PROBFT_REQUIRES(loop_thread_);
  /// End-of-iteration pass over connections send_one() marked dirty.
  void flush_dirty() PROBFT_REQUIRES(loop_thread_);
  /// Runs callbacks queued by post() (loop thread, top of iteration).
  void run_posted() PROBFT_REQUIRES(loop_thread_) PROBFT_EXCLUDES(posted_mu_);
  /// One recipient of a (possibly fanned-out) send: stats, self-delivery,
  /// oversize drop, lazy shared encoding, queueing. `frame` caches the
  /// encoded bytes across a broadcast/multicast loop.
  void send_one(ReplicaId to, std::uint8_t tag, const Bytes& payload,
                std::shared_ptr<const Bytes>& frame)
      PROBFT_REQUIRES(loop_thread_);
  /// Drains `fd` into `decoder` and dispatches complete frames. `bound`
  /// pins the connection's sender id: 0 means unbound (an accepted
  /// connection before its first frame) and is set from the first valid
  /// frame; any frame whose sender mismatches a nonzero binding — or
  /// claims an out-of-range id or this node's own id — sets `close_me`.
  void read_ready(int fd, FrameDecoder& decoder, ReplicaId& bound,
                  bool& close_me) PROBFT_REQUIRES(loop_thread_);
  void dispatch(const Frame& frame) PROBFT_REQUIRES(loop_thread_);
  void fire_due_timers() PROBFT_REQUIRES(loop_thread_);
  [[nodiscard]] int poll_timeout_ms() const PROBFT_REQUIRES(loop_thread_);

  /// The "loop thread only" invariant, as a capability: held by
  /// run_until(), asserted by every confined entry point. cfg_ and the
  /// listener fds/ports are set at construction (set_peer before the loop
  /// runs) and left unguarded as effectively immutable.
  ThreadRole loop_thread_;

  TcpTransportConfig cfg_;
  Handler handler_ PROBFT_GUARDED_BY(loop_thread_);
  TransportStats stats_ PROBFT_GUARDED_BY(loop_thread_);

  int listen_fd_ = -1;
  std::uint16_t listen_port_ = 0;
  std::vector<std::unique_ptr<OutboundConn>> outbound_
      PROBFT_GUARDED_BY(loop_thread_);  // index 0 unused
  std::vector<InboundConn> inbound_ PROBFT_GUARDED_BY(loop_thread_);

  int client_listen_fd_ = -1;
  std::uint16_t client_port_ = 0;
  std::vector<ClientConn> clients_ PROBFT_GUARDED_BY(loop_thread_);
  std::uint64_t next_client_conn_ PROBFT_GUARDED_BY(loop_thread_) = 1;
  ClientHandler client_handler_ PROBFT_GUARDED_BY(loop_thread_);

  std::priority_queue<Timer, std::vector<Timer>, std::greater<>> timers_
      PROBFT_GUARDED_BY(loop_thread_);
  std::uint64_t timer_seq_ PROBFT_GUARDED_BY(loop_thread_) = 0;

  std::atomic<bool> stop_{false};
  std::uint64_t connects_ PROBFT_GUARDED_BY(loop_thread_) = 0;

  // peers with frames awaiting flush_dirty()
  std::vector<ReplicaId> dirty_ PROBFT_GUARDED_BY(loop_thread_);
  std::uint64_t flush_syscalls_ PROBFT_GUARDED_BY(loop_thread_) = 0;
  std::uint64_t frames_flushed_ PROBFT_GUARDED_BY(loop_thread_) = 0;

  // post()/stop() handoff — the only cross-thread door: tasks land here
  // from any thread; a byte through the self-pipe knocks the loop out of
  // poll(2). The pipe fds themselves are set at construction, immutable.
  Mutex posted_mu_;
  std::vector<std::function<void()>> posted_ PROBFT_GUARDED_BY(posted_mu_);
  int wake_pipe_[2] = {-1, -1};
};

}  // namespace probft::net
