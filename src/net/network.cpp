#include "net/network.hpp"

#include <stdexcept>

namespace probft::net {

Network::Network(Simulator& sim, std::uint32_t n, std::uint64_t seed,
                 LatencyConfig config)
    : sim_(sim),
      n_(n),
      config_(config),
      rng_(mix64(seed, 0x6e65742d726e67ULL)),
      handlers_(n + 1) {
  if (n == 0) throw std::invalid_argument("Network: n must be > 0");
  if (config_.min_delay == 0) config_.min_delay = 1;
}

void Network::register_handler(ReplicaId id, Handler handler) {
  if (id == 0 || id > n_) throw std::out_of_range("register_handler: bad id");
  handlers_[id] = std::move(handler);
}

Duration Network::draw_delay() {
  const TimePoint now = sim_.now();
  // The reordering adversary stretches an unlucky subset of messages; the
  // draw happens for every message so delivery order on a link is
  // adversarially scrambled in both synchrony regimes.
  Duration reorder_extra = 0;
  if (config_.reorder_prob > 0.0 && config_.reorder_delay_max > 0 &&
      rng_.uniform01() < config_.reorder_prob) {
    reorder_extra = rng_.bounded(config_.reorder_delay_max + 1);
  }
  if (now >= config_.gst) {
    // Synchronous period: delay within (min, Δ].
    const Duration spread = config_.max_delay_post > config_.min_delay
                                ? config_.max_delay_post - config_.min_delay
                                : 0;
    return reorder_extra + config_.min_delay +
           (spread > 0 ? rng_.bounded(spread + 1) : 0);
  }
  // Asynchronous period: the scheduler may hold the message until just
  // after GST, or deliver it with an arbitrary (bounded) delay.
  if (config_.hold_until_gst_prob > 0.0 &&
      rng_.uniform01() < config_.hold_until_gst_prob) {
    const Duration to_gst = config_.gst - now;
    const Duration spread = config_.max_delay_post - config_.min_delay;
    return reorder_extra + to_gst + config_.min_delay +
           (spread > 0 ? rng_.bounded(spread + 1) : 0);
  }
  const Duration spread = config_.max_delay_pre > config_.min_delay
                              ? config_.max_delay_pre - config_.min_delay
                              : 0;
  return reorder_extra + config_.min_delay +
         (spread > 0 ? rng_.bounded(spread + 1) : 0);
}

void Network::send(ReplicaId from, ReplicaId to, std::uint8_t tag,
                   Bytes payload) {
  send_shared(from, to, tag,
              std::make_shared<const Bytes>(std::move(payload)));
}

void Network::send_shared(ReplicaId from, ReplicaId to, std::uint8_t tag,
                          SharedPayload payload) {
  if (to == 0 || to > n_) throw std::out_of_range("send: bad recipient");
  ++stats_.sends;
  ++stats_.sends_by_tag[tag];
  stats_.bytes_sent += payload->size();
  stats_.bytes_by_tag[tag] += payload->size();

  if (filter_ && filter_(from, to, tag)) {
    ++stats_.dropped;
    return;
  }
  if (payload_filter_ && payload_filter_(from, to, tag, *payload)) {
    ++stats_.dropped;
    return;
  }

  const bool duplicate = config_.duplicate_prob > 0.0 &&
                         rng_.uniform01() < config_.duplicate_prob;
  if (duplicate) {
    // A duplicated delivery crosses the wire twice: its bytes count in the
    // transmission totals (bytes_sent stays the sum over bytes_by_tag),
    // while `sends` keeps counting logical protocol sends only.
    ++stats_.duplicates;
    stats_.bytes_sent += payload->size();
    stats_.bytes_by_tag[tag] += payload->size();
  }
  const Duration delay = (to == from) ? config_.min_delay : draw_delay();
  const Duration dup_delay = duplicate ? draw_delay() : 0;
  auto deliver = [this, from, to, tag, payload = std::move(payload)]() {
    if (handlers_[to]) {
      ++stats_.delivered;
      handlers_[to](from, tag, *payload);
    }
  };
  if (duplicate) {
    sim_.schedule_after(dup_delay, deliver);  // copy of the closure
  }
  sim_.schedule_after(delay, std::move(deliver));
}

void Network::broadcast(ReplicaId from, std::uint8_t tag,
                        const Bytes& payload, bool include_self) {
  const auto shared = std::make_shared<const Bytes>(payload);
  for (ReplicaId to = 1; to <= n_; ++to) {
    if (to == from && !include_self) continue;
    send_shared(from, to, tag, shared);
  }
}

void Network::multicast(ReplicaId from,
                        const std::vector<ReplicaId>& recipients,
                        std::uint8_t tag, const Bytes& payload) {
  const auto shared = std::make_shared<const Bytes>(payload);
  for (ReplicaId to : recipients) {
    send_shared(from, to, tag, shared);
  }
}

}  // namespace probft::net
