// Length-prefixed wire framing for the TCP transport.
//
// A TCP stream carries a sequence of frames:
//
//   [u32 length LE] [u8 version] [u32 sender LE] [u8 tag] [payload ...]
//
// `length` covers everything after the length field (version + sender +
// tag + payload), so a reader can split the stream without understanding
// the protocol. The decoder is hardened against hostile streams: a frame
// whose length is shorter than the fixed header or larger than the
// configured payload cap, or whose version byte is unknown, poisons the
// connection (kError) instead of being silently resynchronized — there is
// no reliable resync point inside a corrupted length-prefixed stream.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>

#include "common/bytes.hpp"
#include "common/types.hpp"

namespace probft::net {

inline constexpr std::uint8_t kFrameVersion = 1;

/// Bytes covered by a frame's length field before the payload starts:
/// version (1) + sender (4) + tag (1).
inline constexpr std::size_t kFrameHeaderBytes = 6;

/// Default cap on a single frame's payload. ProBFT's largest messages are
/// view-change justifications (O(n·√n) signatures); 16 MiB leaves room for
/// n in the thousands while bounding what a hostile peer can make us
/// buffer.
inline constexpr std::size_t kDefaultMaxFramePayload = 16u << 20;

/// One decoded frame.
struct Frame {
  ReplicaId sender = 0;
  std::uint8_t tag = 0;
  Bytes payload;
};

/// Serializes one frame (length prefix included).
[[nodiscard]] Bytes encode_frame(ReplicaId sender, std::uint8_t tag,
                                 ByteSpan payload);

/// Incremental stream decoder: feed() arbitrary chunks (partial frames,
/// many frames at once), then drain complete frames with next().
class FrameDecoder {
 public:
  enum class Status {
    kFrame,     // `out` holds the next complete frame
    kNeedMore,  // stream is well-formed so far but incomplete
    kError,     // stream is corrupt; the connection must be dropped
  };

  explicit FrameDecoder(std::size_t max_payload = kDefaultMaxFramePayload)
      : max_payload_(max_payload) {}

  /// Appends raw stream bytes. Cheap no-op once the stream is poisoned.
  void feed(ByteSpan data);

  /// Extracts the next complete frame, consuming its bytes.
  [[nodiscard]] Status next(Frame& out);

  [[nodiscard]] bool corrupted() const { return corrupted_; }
  /// Bytes buffered but not yet consumed (partial frame in flight).
  [[nodiscard]] std::size_t buffered() const { return buf_.size() - pos_; }

 private:
  Bytes buf_;
  std::size_t pos_ = 0;  // consumed prefix of buf_
  std::size_t max_payload_;
  bool corrupted_ = false;
};

}  // namespace probft::net
