// Simulated point-to-point message network with partial synchrony.
//
// Model (paper §2.1): the system is partially synchronous — before an
// unknown global stabilization time (GST) the adversarial scheduler may
// delay messages arbitrarily (but finitely); after GST every message is
// delivered within an unknown bound Δ. The scheduler here draws delays
// uniformly at random, independent of the sender's identity and of whether
// it is Byzantine — exactly the sender-oblivious adversary the paper
// assumes. Optionally, a pre-GST loss probability models messages the
// scheduler holds forever-before-GST (they are re-delivered after GST,
// never silently lost, preserving eventual delivery).
//
// Fault injection: a user-supplied filter can drop/partition links, used by
// tests to create network partitions and targeted outages.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "common/bytes.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"
#include "net/simulator.hpp"
#include "net/transport.hpp"

namespace probft::net {

struct LatencyConfig {
  TimePoint gst = 0;                 // global stabilization time
  Duration min_delay = 1'000;        // 1 ms floor
  Duration max_delay_post = 10'000;  // Δ: post-GST delivery bound
  Duration max_delay_pre = 500'000;  // worst pre-GST adversarial delay
  double hold_until_gst_prob = 0.0;  // chance a pre-GST send is held to GST+
  double duplicate_prob = 0.0;       // chance a message is delivered twice
                                     // (with an independent second delay)
  // Per-link reordering adversary: with probability `reorder_prob` a
  // message picks up an extra delay in [0, reorder_delay_max], so later
  // sends on the same link routinely overtake it. The extra delay is
  // bounded, so the system stays partially synchronous with an effective
  // Δ' = max_delay_post + reorder_delay_max.
  double reorder_prob = 0.0;
  Duration reorder_delay_max = 0;
};

class Network final : public ITransport {
 public:
  using Handler = ITransport::Handler;
  /// Returns true to drop the message (fault injection).
  using Filter =
      std::function<bool(ReplicaId from, ReplicaId to, std::uint8_t tag)>;
  /// Payload-aware variant for faults that target a slice of one tag's
  /// traffic — e.g. silencing one shard's leader means dropping only the
  /// kShardTag frames whose envelope names that shard. Checked after
  /// `Filter`; either one returning true drops the message.
  using PayloadFilter = std::function<bool(
      ReplicaId from, ReplicaId to, std::uint8_t tag, const Bytes& payload)>;

  /// Historical alias — the shared stats type now lives at the transport
  /// boundary so every backend reports the same shape.
  using Stats = TransportStats;

  Network(Simulator& sim, std::uint32_t n, std::uint64_t seed,
          LatencyConfig config);

  /// Registers the receive callback for replica `id` (1-based).
  void register_handler(ReplicaId id, Handler handler) override;

  /// Sends one point-to-point message; self-sends are allowed and get the
  /// minimum delay.
  void send(ReplicaId from, ReplicaId to, std::uint8_t tag,
            Bytes payload) override;

  /// Sends to every replica except (optionally) the sender itself.
  void broadcast(ReplicaId from, std::uint8_t tag, const Bytes& payload,
                 bool include_self = false) override;

  /// Sends to an explicit recipient list (the VRF sample).
  void multicast(ReplicaId from, const std::vector<ReplicaId>& recipients,
                 std::uint8_t tag, const Bytes& payload) override;

  [[nodiscard]] const Stats& stats() const override { return stats_; }
  void reset_stats() { stats_ = Stats{}; }

  void set_filter(Filter filter) { filter_ = std::move(filter); }
  void clear_filter() { filter_ = nullptr; }
  void set_payload_filter(PayloadFilter filter) {
    payload_filter_ = std::move(filter);
  }
  void clear_payload_filter() { payload_filter_ = nullptr; }

  [[nodiscard]] std::uint32_t size() const override { return n_; }
  [[nodiscard]] const LatencyConfig& config() const { return config_; }

 private:
  /// Broadcast/multicast share one immutable heap buffer across the whole
  /// fan-out instead of copying the payload per recipient — at n = 2000 a
  /// broadcast used to clone the payload 1999 times.
  using SharedPayload = std::shared_ptr<const Bytes>;
  void send_shared(ReplicaId from, ReplicaId to, std::uint8_t tag,
                   SharedPayload payload);

  [[nodiscard]] Duration draw_delay();

  Simulator& sim_;
  std::uint32_t n_;
  LatencyConfig config_;
  Xoshiro256StarStar rng_;
  std::vector<Handler> handlers_;  // index 0 unused
  Filter filter_;
  PayloadFilter payload_filter_;
  Stats stats_;
};

}  // namespace probft::net
