// Client wire protocol for the SMR service.
//
// Clients talk to a replica's client port over the same length-prefixed
// hardened framing the replica↔replica links use (net/frame.hpp); inside a
// frame, the payload is one of the two messages below, each carrying its
// own version byte so the client protocol can evolve independently of the
// frame format:
//
//   ClientRequest{client_id, seq, payload}  — client → replica (tag 0x30)
//   ClientReply{client_id, seq, slot, result} — replica → client (tag 0x31)
//
// `seq` is the client's own monotonically increasing request number; the
// SMR layer executes each (client_id, seq) at most once, so a client may
// retry a request (same seq) against any replica without risking double
// execution. The replica replies after the request executed in log order;
// a retry of an already-executed request is answered from the replica's
// last-reply cache.
//
// Decoding is strict: truncated buffers, trailing bytes, unknown versions
// and oversized payloads all throw CodecError, so a hostile client (or
// replica) cannot feed the peer an ambiguous message.
#pragma once

#include <cstdint>

#include "common/bytes.hpp"
#include "common/codec.hpp"
#include "net/tags.hpp"

namespace probft::net {

inline constexpr std::uint8_t kClientWireVersion = 1;

/// Frame tags carrying client-protocol payloads; values live in the
/// central registry (net/tags.hpp), these are local re-exports.
inline constexpr std::uint8_t kClientRequestTag = tags::kClientRequest;
inline constexpr std::uint8_t kClientReplyTag = tags::kClientReply;

/// Cap on a single request payload / reply result. Requests also have to
/// fit the SMR batch byte cap; this bound is what the codec enforces
/// before any engine state is touched.
inline constexpr std::size_t kMaxClientPayload = 1u << 20;

struct ClientRequest {
  std::uint64_t client_id = 0;
  std::uint64_t seq = 0;
  Bytes payload;

  [[nodiscard]] Bytes encode() const;
  /// Throws CodecError on truncation, trailing bytes, a version byte this
  /// build does not speak, or a payload above kMaxClientPayload.
  static ClientRequest decode(ByteSpan data);

  bool operator==(const ClientRequest& other) const = default;
};

struct ClientReply {
  std::uint64_t client_id = 0;
  std::uint64_t seq = 0;
  /// Log slot the request was decided in.
  std::uint64_t slot = 0;
  Bytes result;

  [[nodiscard]] Bytes encode() const;
  static ClientReply decode(ByteSpan data);

  bool operator==(const ClientReply& other) const = default;
};

}  // namespace probft::net
