// Client wire protocol for the SMR service.
//
// Clients talk to a replica's client port over the same length-prefixed
// hardened framing the replica↔replica links use (net/frame.hpp); inside a
// frame, the payload is one of the two messages below, each carrying its
// own version byte so the client protocol can evolve independently of the
// frame format:
//
//   ClientRequest{client_id, seq, payload}  — client → replica (tag 0x30)
//   ClientReply{client_id, seq, status, slot, result}
//                                           — replica → client (tag 0x31)
//   ReadRequest{client_id, read_id, consistency, min_index, key}
//                                           — client → replica (tag 0x32)
//   ReadReply{client_id, read_id, status, slot, index, value}
//                                           — replica → client (tag 0x33)
//
// `seq` is the client's own monotonically increasing request number; the
// SMR layer executes each (client_id, seq) at most once, so a client may
// retry a request (same seq) against any replica without risking double
// execution. The replica replies after the request executed in log order;
// a retry of an already-executed request is answered from the replica's
// last-reply cache.
//
// Reads carry a client-selectable consistency mode; replies carry an
// explicit status byte so a rejected (backpressured, lease-lost,
// timed-out) or wrong-shard request is distinguishable from success
// without timeout inference.
//
// Decoding is strict: truncated buffers, trailing bytes, unknown versions
// and oversized payloads all throw CodecError, so a hostile client (or
// replica) cannot feed the peer an ambiguous message.
#pragma once

#include <cstdint>

#include "common/bytes.hpp"
#include "common/codec.hpp"
#include "net/tags.hpp"

namespace probft::net {

/// v2 added the ClientReply status byte and the read messages.
inline constexpr std::uint8_t kClientWireVersion = 2;

/// Frame tags carrying client-protocol payloads; values live in the
/// central registry (net/tags.hpp), these are local re-exports.
inline constexpr std::uint8_t kClientRequestTag = tags::kClientRequest;
inline constexpr std::uint8_t kClientReplyTag = tags::kClientReply;
inline constexpr std::uint8_t kClientReadTag = tags::kClientRead;
inline constexpr std::uint8_t kClientReadReplyTag = tags::kClientReadReply;

/// Reply disposition. kExecuted answers carry real results; kRejected
/// means the replica refused (backpressure, read timeout, lease loss) and
/// the client should back off and retry; kRedirect means this replica is
/// the wrong place (wrong shard / not the lease holder) and the client
/// should re-route.
enum class ReplyStatus : std::uint8_t {
  kExecuted = 0,
  kRejected = 1,
  kRedirect = 2,
};

/// Client-selectable read consistency.
enum class ReadConsistency : std::uint8_t {
  kLinearizable = 0,  // lease or quorum read-index proof required
  kSequential = 1,    // replica must have executed past min_index
  kStaleOk = 2,       // answer immediately from the local view
};

/// Cap on a single request payload / reply result. Requests also have to
/// fit the SMR batch byte cap; this bound is what the codec enforces
/// before any engine state is touched.
inline constexpr std::size_t kMaxClientPayload = 1u << 20;

struct ClientRequest {
  std::uint64_t client_id = 0;
  std::uint64_t seq = 0;
  Bytes payload;

  [[nodiscard]] Bytes encode() const;
  /// Throws CodecError on truncation, trailing bytes, a version byte this
  /// build does not speak, or a payload above kMaxClientPayload.
  static ClientRequest decode(ByteSpan data);

  bool operator==(const ClientRequest& other) const = default;
};

struct ClientReply {
  std::uint64_t client_id = 0;
  std::uint64_t seq = 0;
  ReplyStatus status = ReplyStatus::kExecuted;
  /// Log slot the request was decided in (0 for non-executed statuses).
  std::uint64_t slot = 0;
  Bytes result;

  [[nodiscard]] Bytes encode() const;
  static ClientReply decode(ByteSpan data);

  bool operator==(const ClientReply& other) const = default;
};

struct ReadRequest {
  std::uint64_t client_id = 0;
  /// Client-chosen id echoed in the reply; unique per in-flight read.
  std::uint64_t read_id = 0;
  ReadConsistency consistency = ReadConsistency::kLinearizable;
  /// For kSequential: the reply slot of the client's last write + 1 —
  /// the replica answers only once it executed at least this many slots.
  std::uint64_t min_index = 0;
  Bytes key;

  [[nodiscard]] Bytes encode() const;
  static ReadRequest decode(ByteSpan data);

  bool operator==(const ReadRequest& other) const = default;
};

struct ReadReply {
  std::uint64_t client_id = 0;
  std::uint64_t read_id = 0;
  ReplyStatus status = ReplyStatus::kExecuted;
  /// Log slot of the last write to the key (0 if the key is unwritten).
  std::uint64_t slot = 0;
  /// Exec-slot watermark the answer reflects.
  std::uint64_t index = 0;
  Bytes value;

  [[nodiscard]] Bytes encode() const;
  static ReadReply decode(ByteSpan data);

  bool operator==(const ReadReply& other) const = default;
};

}  // namespace probft::net
