#include "net/client.hpp"

namespace probft::net {

namespace {

void check_version(std::uint8_t version) {
  if (version != kClientWireVersion) {
    throw CodecError("client wire: unknown version");
  }
}

void check_payload_size(std::size_t size) {
  if (size > kMaxClientPayload) {
    throw CodecError("client wire: payload exceeds cap");
  }
}

ReplyStatus decode_status(std::uint8_t raw) {
  if (raw > static_cast<std::uint8_t>(ReplyStatus::kRedirect)) {
    throw CodecError("client wire: unknown reply status");
  }
  return static_cast<ReplyStatus>(raw);
}

ReadConsistency decode_consistency(std::uint8_t raw) {
  if (raw > static_cast<std::uint8_t>(ReadConsistency::kStaleOk)) {
    throw CodecError("client wire: unknown consistency mode");
  }
  return static_cast<ReadConsistency>(raw);
}

}  // namespace

Bytes ClientRequest::encode() const {
  Writer w;
  w.u8(kClientWireVersion);
  w.u64(client_id);
  w.u64(seq);
  w.bytes(ByteSpan(payload.data(), payload.size()));
  return std::move(w).take();
}

ClientRequest ClientRequest::decode(ByteSpan data) {
  Reader r(data);
  check_version(r.u8());
  ClientRequest req;
  req.client_id = r.u64();
  req.seq = r.u64();
  req.payload = r.bytes();
  check_payload_size(req.payload.size());
  r.expect_exhausted();
  return req;
}

Bytes ClientReply::encode() const {
  Writer w;
  w.u8(kClientWireVersion);
  w.u64(client_id);
  w.u64(seq);
  w.u8(static_cast<std::uint8_t>(status));
  w.u64(slot);
  w.bytes(ByteSpan(result.data(), result.size()));
  return std::move(w).take();
}

ClientReply ClientReply::decode(ByteSpan data) {
  Reader r(data);
  check_version(r.u8());
  ClientReply reply;
  reply.client_id = r.u64();
  reply.seq = r.u64();
  reply.status = decode_status(r.u8());
  reply.slot = r.u64();
  reply.result = r.bytes();
  check_payload_size(reply.result.size());
  r.expect_exhausted();
  return reply;
}

Bytes ReadRequest::encode() const {
  Writer w;
  w.u8(kClientWireVersion);
  w.u64(client_id);
  w.u64(read_id);
  w.u8(static_cast<std::uint8_t>(consistency));
  w.u64(min_index);
  w.bytes(ByteSpan(key.data(), key.size()));
  return std::move(w).take();
}

ReadRequest ReadRequest::decode(ByteSpan data) {
  Reader r(data);
  check_version(r.u8());
  ReadRequest req;
  req.client_id = r.u64();
  req.read_id = r.u64();
  req.consistency = decode_consistency(r.u8());
  req.min_index = r.u64();
  req.key = r.bytes();
  check_payload_size(req.key.size());
  r.expect_exhausted();
  return req;
}

Bytes ReadReply::encode() const {
  Writer w;
  w.u8(kClientWireVersion);
  w.u64(client_id);
  w.u64(read_id);
  w.u8(static_cast<std::uint8_t>(status));
  w.u64(slot);
  w.u64(index);
  w.bytes(ByteSpan(value.data(), value.size()));
  return std::move(w).take();
}

ReadReply ReadReply::decode(ByteSpan data) {
  Reader r(data);
  check_version(r.u8());
  ReadReply reply;
  reply.client_id = r.u64();
  reply.read_id = r.u64();
  reply.status = decode_status(r.u8());
  reply.slot = r.u64();
  reply.index = r.u64();
  reply.value = r.bytes();
  check_payload_size(reply.value.size());
  r.expect_exhausted();
  return reply;
}

}  // namespace probft::net
