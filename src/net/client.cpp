#include "net/client.hpp"

namespace probft::net {

namespace {

void check_version(std::uint8_t version) {
  if (version != kClientWireVersion) {
    throw CodecError("client wire: unknown version");
  }
}

void check_payload_size(std::size_t size) {
  if (size > kMaxClientPayload) {
    throw CodecError("client wire: payload exceeds cap");
  }
}

}  // namespace

Bytes ClientRequest::encode() const {
  Writer w;
  w.u8(kClientWireVersion);
  w.u64(client_id);
  w.u64(seq);
  w.bytes(ByteSpan(payload.data(), payload.size()));
  return std::move(w).take();
}

ClientRequest ClientRequest::decode(ByteSpan data) {
  Reader r(data);
  check_version(r.u8());
  ClientRequest req;
  req.client_id = r.u64();
  req.seq = r.u64();
  req.payload = r.bytes();
  check_payload_size(req.payload.size());
  r.expect_exhausted();
  return req;
}

Bytes ClientReply::encode() const {
  Writer w;
  w.u8(kClientWireVersion);
  w.u64(client_id);
  w.u64(seq);
  w.u64(slot);
  w.bytes(ByteSpan(result.data(), result.size()));
  return std::move(w).take();
}

ClientReply ClientReply::decode(ByteSpan data) {
  Reader r(data);
  check_version(r.u8());
  ClientReply reply;
  reply.client_id = r.u64();
  reply.seq = r.u64();
  reply.slot = r.u64();
  reply.result = r.bytes();
  check_payload_size(reply.result.size());
  r.expect_exhausted();
  return reply;
}

}  // namespace probft::net
