#include "net/frame.hpp"

#include <cstring>

namespace probft::net {

namespace {

void put_u32(Bytes& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 24));
}

std::uint32_t get_u32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         static_cast<std::uint32_t>(p[1]) << 8 |
         static_cast<std::uint32_t>(p[2]) << 16 |
         static_cast<std::uint32_t>(p[3]) << 24;
}

}  // namespace

Bytes encode_frame(ReplicaId sender, std::uint8_t tag, ByteSpan payload) {
  Bytes out;
  out.reserve(4 + kFrameHeaderBytes + payload.size());
  put_u32(out, static_cast<std::uint32_t>(kFrameHeaderBytes + payload.size()));
  out.push_back(kFrameVersion);
  put_u32(out, sender);
  out.push_back(tag);
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

void FrameDecoder::feed(ByteSpan data) {
  if (corrupted_) return;
  // Compact the consumed prefix before growing the buffer so a long-lived
  // connection does not accumulate dead bytes.
  if (pos_ > 0 && (pos_ >= buf_.size() || pos_ > 4096)) {
    buf_.erase(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(pos_));
    pos_ = 0;
  }
  buf_.insert(buf_.end(), data.begin(), data.end());
}

FrameDecoder::Status FrameDecoder::next(Frame& out) {
  if (corrupted_) return Status::kError;
  const std::size_t avail = buf_.size() - pos_;
  if (avail < 4) return Status::kNeedMore;

  const std::uint32_t length = get_u32(buf_.data() + pos_);
  if (length < kFrameHeaderBytes ||
      length > kFrameHeaderBytes + max_payload_) {
    corrupted_ = true;  // truncated-on-purpose or oversize: unrecoverable
    return Status::kError;
  }
  if (avail < 4 + static_cast<std::size_t>(length)) return Status::kNeedMore;

  const std::uint8_t* body = buf_.data() + pos_ + 4;
  if (body[0] != kFrameVersion) {
    corrupted_ = true;
    return Status::kError;
  }
  out.sender = get_u32(body + 1);
  out.tag = body[5];
  out.payload.assign(body + kFrameHeaderBytes, body + length);
  pos_ += 4 + static_cast<std::size_t>(length);
  return Status::kFrame;
}

}  // namespace probft::net
