#include "net/simulator.hpp"

#include <utility>

namespace probft::net {

Simulator::EventId Simulator::schedule_at(TimePoint at, Callback fn) {
  const EventId id = next_id_++;
  queue_.push(Event{std::max(at, now_), id});
  callbacks_.emplace(id, std::move(fn));
  return id;
}

Simulator::EventId Simulator::schedule_after(Duration delay, Callback fn) {
  return schedule_at(now_ + delay, std::move(fn));
}

void Simulator::cancel(EventId id) {
  if (callbacks_.contains(id)) cancelled_.insert(id);
}

bool Simulator::step() {
  while (!queue_.empty()) {
    const Event ev = queue_.top();
    queue_.pop();
    if (cancelled_.erase(ev.id) > 0) {
      callbacks_.erase(ev.id);
      continue;
    }
    auto it = callbacks_.find(ev.id);
    Callback fn = std::move(it->second);
    callbacks_.erase(it);
    now_ = ev.at;
    ++fired_;
    fn();
    return true;
  }
  return false;
}

std::size_t Simulator::run(std::size_t max_events) {
  std::size_t fired = 0;
  while (fired < max_events && step()) ++fired;
  return fired;
}

std::size_t Simulator::run_until(TimePoint deadline) {
  std::size_t fired = 0;
  while (!queue_.empty()) {
    // Peek past cancelled events.
    Event ev = queue_.top();
    while (cancelled_.contains(ev.id)) {
      queue_.pop();
      cancelled_.erase(ev.id);
      callbacks_.erase(ev.id);
      if (queue_.empty()) return fired;
      ev = queue_.top();
    }
    if (ev.at >= deadline) break;
    step();
    ++fired;
  }
  now_ = std::max(now_, deadline);
  return fired;
}

}  // namespace probft::net
