#include "net/tcp_transport.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <ctime>
#include <stdexcept>
#include <system_error>

namespace probft::net {

namespace {

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

[[noreturn]] void throw_errno(const char* what) {
  throw std::system_error(errno, std::generic_category(), what);
}

/// Resolves host:port to a sockaddr (numeric addresses and hostnames).
bool resolve(const PeerAddress& address, sockaddr_storage& out,
             socklen_t& out_len) {
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  hints.ai_flags = AI_NUMERICSERV;
  const std::string port = std::to_string(address.port);
  addrinfo* result = nullptr;
  if (::getaddrinfo(address.host.c_str(), port.c_str(), &hints, &result) !=
          0 ||
      result == nullptr) {
    return false;
  }
  std::memcpy(&out, result->ai_addr, result->ai_addrlen);
  out_len = static_cast<socklen_t>(result->ai_addrlen);
  ::freeaddrinfo(result);
  return true;
}

}  // namespace

TimePoint TcpTransport::now_us() {
  timespec ts{};
  ::clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<TimePoint>(ts.tv_sec) * 1'000'000 +
         static_cast<TimePoint>(ts.tv_nsec) / 1'000;
}

namespace {

/// Binds and listens on `bind_addr`, returning the fd and writing the
/// actually-bound port to `bound_port`. Throws on failure.
int listen_on(const PeerAddress& bind_addr, std::uint16_t& bound_port) {
  sockaddr_storage addr{};
  socklen_t addr_len = 0;
  if (!resolve(bind_addr, addr, addr_len)) {
    throw std::invalid_argument("TcpTransport: cannot resolve listen host");
  }
  const int fd = ::socket(addr.ss_family, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), addr_len) < 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    throw_errno("bind");
  }
  if (::listen(fd, 64) < 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    throw_errno("listen");
  }
  set_nonblocking(fd);

  sockaddr_storage bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len) ==
      0) {
    if (bound.ss_family == AF_INET) {
      bound_port = ntohs(reinterpret_cast<sockaddr_in*>(&bound)->sin_port);
    } else if (bound.ss_family == AF_INET6) {
      bound_port = ntohs(reinterpret_cast<sockaddr_in6*>(&bound)->sin6_port);
    }
  }
  return fd;
}

}  // namespace

TcpTransport::TcpTransport(TcpTransportConfig config)
    : cfg_(std::move(config)) {
  if (cfg_.self == 0 || cfg_.n == 0 || cfg_.self > cfg_.n) {
    throw std::invalid_argument("TcpTransport: bad self/n");
  }
  if (cfg_.reconnect_delay == 0) cfg_.reconnect_delay = 1'000;
  outbound_.resize(cfg_.n + 1);
  for (ReplicaId id = 1; id <= cfg_.n; ++id) {
    if (id == cfg_.self) continue;
    outbound_[id] = std::make_unique<OutboundConn>();
    outbound_[id]->peer = id;
    outbound_[id]->decoder = FrameDecoder(cfg_.max_frame_payload);
  }
  open_listener();
  if (cfg_.client_port_enabled) open_client_listener();
  if (::pipe(wake_pipe_) != 0) throw_errno("pipe");
  set_nonblocking(wake_pipe_[0]);
  set_nonblocking(wake_pipe_[1]);
}

TcpTransport::~TcpTransport() {
  if (wake_pipe_[0] >= 0) ::close(wake_pipe_[0]);
  if (wake_pipe_[1] >= 0) ::close(wake_pipe_[1]);
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (client_listen_fd_ >= 0) ::close(client_listen_fd_);
  for (auto& conn : outbound_) {
    if (conn && conn->fd >= 0) ::close(conn->fd);
  }
  for (auto& conn : inbound_) {
    if (conn.fd >= 0) ::close(conn.fd);
  }
  for (auto& conn : clients_) {
    if (conn.fd >= 0) ::close(conn.fd);
  }
}

void TcpTransport::open_listener() {
  listen_fd_ =
      listen_on(PeerAddress{cfg_.listen_host, cfg_.listen_port}, listen_port_);
}

void TcpTransport::open_client_listener() {
  client_listen_fd_ = listen_on(
      PeerAddress{cfg_.client_listen_host, cfg_.client_listen_port},
      client_port_);
}

void TcpTransport::register_handler(ReplicaId id, Handler handler) {
  loop_thread_.assert_held();
  if (id != cfg_.self) {
    throw std::out_of_range("TcpTransport hosts only its own replica");
  }
  handler_ = std::move(handler);
}

void TcpTransport::set_peer(ReplicaId id, PeerAddress address) {
  loop_thread_.assert_held();
  if (id == 0 || id > cfg_.n) throw std::out_of_range("set_peer: bad id");
  cfg_.peers[id] = std::move(address);
}

void TcpTransport::set_timer(Duration delay, std::function<void()> fn) {
  loop_thread_.assert_held();
  timers_.push(Timer{now_us() + delay, timer_seq_++, std::move(fn)});
}

void TcpTransport::send_one(ReplicaId to, std::uint8_t tag,
                            const Bytes& payload,
                            std::shared_ptr<const Bytes>& frame) {
  if (to == 0 || to > cfg_.n) throw std::out_of_range("send: bad recipient");
  ++stats_.sends;
  ++stats_.sends_by_tag[tag];
  stats_.bytes_sent += payload.size();
  stats_.bytes_by_tag[tag] += payload.size();

  // A frame the receiver's decoder would reject as oversize must never hit
  // the wire: the receiver would poison the connection, we would rewind
  // and redial, and the identical frame would livelock the link forever.
  if (payload.size() > cfg_.max_frame_payload) {
    ++stats_.dropped;
    return;
  }

  if (to == cfg_.self) {
    // Self-sends stay asynchronous (like the simulator's minimum delay):
    // deliver on the next loop iteration, never reentrantly.
    auto copy = std::make_shared<Bytes>(payload);
    set_timer(0, [this, tag, copy]() {
      loop_thread_.assert_held();  // timers fire on the loop thread
      if (handler_) {
        ++stats_.delivered;
        handler_(cfg_.self, tag, *copy);
      }
    });
    return;
  }

  OutboundConn& conn = *outbound_[to];
  if (conn.pending_bytes >= cfg_.max_pending_bytes) {
    ++stats_.dropped;  // backpressure: peer unreachable for too long
    return;
  }
  // Encode lazily and once per fan-out: every recipient queues the same
  // immutable buffer (the sim network shares broadcast payloads the same
  // way — at n = 2000 per-recipient copies dominated).
  if (!frame) {
    frame = std::make_shared<const Bytes>(encode_frame(
        cfg_.self, tag, ByteSpan(payload.data(), payload.size())));
  }
  conn.pending_bytes += frame->size();
  conn.pending.push_back(frame);
  if (conn.fd < 0 && !conn.connecting && !conn.retry_armed) {
    start_dial(conn);
  } else if (conn.fd >= 0 && !conn.connecting) {
    if (cfg_.flush_watermark == 0 ||
        conn.pending_bytes >= cfg_.flush_watermark) {
      // Eager mode, or a burst crossed the watermark mid-iteration: write
      // now rather than let the queue grow until the loop turns.
      flush(conn);
    } else if (!conn.dirty) {
      conn.dirty = true;  // coalesced into one sendmsg by flush_dirty()
      dirty_.push_back(to);
    }
  }
}

void TcpTransport::send(ReplicaId from, ReplicaId to, std::uint8_t tag,
                        Bytes payload) {
  loop_thread_.assert_held();
  if (from != cfg_.self) {
    throw std::invalid_argument("TcpTransport: send from foreign id");
  }
  std::shared_ptr<const Bytes> frame;
  send_one(to, tag, payload, frame);
}

void TcpTransport::broadcast(ReplicaId from, std::uint8_t tag,
                             const Bytes& payload, bool include_self) {
  loop_thread_.assert_held();
  if (from != cfg_.self) {
    throw std::invalid_argument("TcpTransport: send from foreign id");
  }
  std::shared_ptr<const Bytes> frame;
  for (ReplicaId to = 1; to <= cfg_.n; ++to) {
    if (to == from && !include_self) continue;
    send_one(to, tag, payload, frame);
  }
}

void TcpTransport::multicast(ReplicaId from,
                             const std::vector<ReplicaId>& recipients,
                             std::uint8_t tag, const Bytes& payload) {
  loop_thread_.assert_held();
  if (from != cfg_.self) {
    throw std::invalid_argument("TcpTransport: send from foreign id");
  }
  std::shared_ptr<const Bytes> frame;
  for (const ReplicaId to : recipients) send_one(to, tag, payload, frame);
}

void TcpTransport::start_dial(OutboundConn& conn) {
  const auto it = cfg_.peers.find(conn.peer);
  if (it == cfg_.peers.end() || it->second.port == 0) {
    // Address not configured (yet): retry later, the harness may still be
    // wiring ephemeral ports.
    fail_dial(conn);
    return;
  }
  sockaddr_storage addr{};
  socklen_t addr_len = 0;
  if (!resolve(it->second, addr, addr_len)) {
    fail_dial(conn);
    return;
  }
  conn.fd = ::socket(addr.ss_family, SOCK_STREAM, 0);
  if (conn.fd < 0) {
    fail_dial(conn);
    return;
  }
  set_nonblocking(conn.fd);
  const int one = 1;
  ::setsockopt(conn.fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  const int rc =
      ::connect(conn.fd, reinterpret_cast<sockaddr*>(&addr), addr_len);
  if (rc == 0) {
    conn.connecting = false;
    ++connects_;
    flush(conn);
  } else if (errno == EINPROGRESS) {
    conn.connecting = true;
  } else {
    ::close(conn.fd);
    conn.fd = -1;
    fail_dial(conn);
  }
}

void TcpTransport::finish_dial(OutboundConn& conn) {
  int err = 0;
  socklen_t len = sizeof(err);
  ::getsockopt(conn.fd, SOL_SOCKET, SO_ERROR, &err, &len);
  conn.connecting = false;
  if (err != 0) {
    ::close(conn.fd);
    conn.fd = -1;
    fail_dial(conn);
    return;
  }
  ++connects_;
  flush(conn);
}

void TcpTransport::fail_dial(OutboundConn& conn) {
  if (conn.retry_armed) return;
  conn.retry_armed = true;
  const ReplicaId peer = conn.peer;
  set_timer(cfg_.reconnect_delay, [this, peer]() {
    loop_thread_.assert_held();  // timers fire on the loop thread
    OutboundConn& c = *outbound_[peer];
    c.retry_armed = false;
    if (c.fd < 0 && !c.connecting && !c.pending.empty()) {
      start_dial(c);
    }
  });
}

void TcpTransport::flush(OutboundConn& conn) {
  // One sendmsg(2) per gather of up to kMaxIov queued frames (the front
  // frame enters from its unsent offset) instead of one send(2) per
  // frame — the syscall count per burst drops from O(frames) to O(1).
  constexpr std::size_t kMaxIov = 64;
  while (!conn.pending.empty()) {
    iovec iov[kMaxIov];
    std::size_t iov_count = 0;
    std::size_t gathered = 0;
    for (const auto& frame : conn.pending) {
      if (iov_count == kMaxIov) break;
      const std::size_t off = iov_count == 0 ? conn.front_off : 0;
      iov[iov_count].iov_base =
          const_cast<std::uint8_t*>(frame->data() + off);
      iov[iov_count].iov_len = frame->size() - off;
      gathered += frame->size() - off;
      ++iov_count;
    }
    msghdr msg{};
    msg.msg_iov = iov;
    msg.msg_iovlen = iov_count;
    const ssize_t wrote = ::sendmsg(conn.fd, &msg, MSG_NOSIGNAL);
    if (wrote > 0) {
      ++flush_syscalls_;
      // Frame-granular progress accounting for a short write that may
      // stop mid-iovec: pop every fully-written frame, advance front_off
      // into the first partial one. No byte is resent, no frame dropped —
      // the next gather resumes exactly where the kernel stopped.
      std::size_t w = static_cast<std::size_t>(wrote);
      while (w > 0) {
        const Bytes& front = *conn.pending.front();
        const std::size_t rem = front.size() - conn.front_off;
        if (w >= rem) {
          w -= rem;
          conn.pending_bytes -= front.size();
          conn.pending.pop_front();
          conn.front_off = 0;
          ++frames_flushed_;
        } else {
          conn.front_off += w;
          w = 0;
        }
      }
      if (static_cast<std::size_t>(wrote) < gathered) {
        return;  // kernel buffer full; POLLOUT will resume
      }
      continue;
    }
    if (wrote < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      return;  // kernel buffer full; POLLOUT will resume
    }
    // Connection lost mid-write: rewind to the front frame's first byte
    // and redial. The receiver discards any partial frame with the dead
    // stream, so retransmitting the whole frame on the fresh connection
    // delivers it exactly once (or not at all if the peer stays down —
    // protocols tolerate loss under partial synchrony).
    ::close(conn.fd);
    conn.fd = -1;
    conn.connecting = false;
    conn.front_off = 0;
    fail_dial(conn);
    return;
  }
}

void TcpTransport::flush_dirty() {
  if (dirty_.empty()) return;
  // Swap out first: flush() can fail a dial whose retry path re-arms
  // timers, and future sends must be able to re-mark connections dirty.
  std::vector<ReplicaId> dirty;
  dirty.swap(dirty_);
  for (const ReplicaId id : dirty) {
    OutboundConn& conn = *outbound_[id];
    conn.dirty = false;
    if (conn.fd >= 0 && !conn.connecting && !conn.pending.empty()) {
      flush(conn);
    }
  }
}

void TcpTransport::post(std::function<void()> fn) {
  {
    MutexLock lock(posted_mu_);
    posted_.push_back(std::move(fn));
  }
  const std::uint8_t byte = 0;
  // A full pipe is fine — the loop is already signalled and will drain
  // posted_ regardless of how many wake bytes are in flight.
  [[maybe_unused]] const ssize_t rc = ::write(wake_pipe_[1], &byte, 1);
}

void TcpTransport::stop() {
  stop_.store(true, std::memory_order_relaxed);
  // Wake a loop parked in poll(2): without this byte a cross-thread stop()
  // only took effect once the idle poll timeout (up to 50 ms) expired.
  const std::uint8_t byte = 0;
  [[maybe_unused]] const ssize_t rc = ::write(wake_pipe_[1], &byte, 1);
}

void TcpTransport::run_posted() {
  std::vector<std::function<void()>> tasks;
  {
    MutexLock lock(posted_mu_);
    tasks.swap(posted_);
  }
  for (auto& fn : tasks) {
    if (fn) fn();
  }
}

void TcpTransport::send_to_client(std::uint64_t conn, std::uint8_t tag,
                                  const Bytes& payload) {
  loop_thread_.assert_held();
  ++stats_.sends;
  ++stats_.sends_by_tag[tag];
  stats_.bytes_sent += payload.size();
  stats_.bytes_by_tag[tag] += payload.size();
  if (payload.size() > cfg_.max_frame_payload) {
    ++stats_.dropped;
    return;
  }
  for (auto& client : clients_) {
    if (client.id != conn || client.fd < 0) continue;
    const Bytes frame = encode_frame(cfg_.self, tag,
                                     ByteSpan(payload.data(), payload.size()));
    if (client.outbuf.size() - client.out_off + frame.size() >
        cfg_.max_client_pending_bytes) {
      // The client stopped reading: cut it loose rather than buffer
      // without bound. It can reconnect and retry.
      ::close(client.fd);
      client.fd = -1;
      ++stats_.dropped;
      return;
    }
    client.outbuf.insert(client.outbuf.end(), frame.begin(), frame.end());
    // Opportunistic flush so a reply does not wait out a poll timeout;
    // whatever the socket buffer rejects drains via POLLOUT.
    bool close_me = false;
    flush_client(client, close_me);
    if (close_me) {
      ::close(client.fd);
      client.fd = -1;  // reaped by the loop's erase pass
    }
    return;
  }
  ++stats_.dropped;  // connection gone; the client will retry elsewhere
}

void TcpTransport::accept_clients() {
  while (true) {
    const int fd = ::accept(client_listen_fd_, nullptr, nullptr);
    if (fd < 0) break;
    if (clients_.size() >= cfg_.max_client_conns) {
      ::close(fd);  // full house: shed load instead of exhausting fds
      ++stats_.dropped;
      continue;
    }
    set_nonblocking(fd);
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    ClientConn conn;
    conn.id = next_client_conn_++;
    conn.fd = fd;
    conn.decoder = FrameDecoder(cfg_.max_frame_payload);
    clients_.push_back(std::move(conn));
  }
}

void TcpTransport::read_client_ready(ClientConn& conn, bool& close_me) {
  std::uint8_t buf[64 * 1024];
  while (true) {
    const ssize_t got = ::recv(conn.fd, buf, sizeof(buf), 0);
    if (got > 0) {
      conn.decoder.feed(ByteSpan(buf, static_cast<std::size_t>(got)));
      Frame frame;
      while (true) {
        const auto status = conn.decoder.next(frame);
        if (status == FrameDecoder::Status::kFrame) {
          if (client_handler_) {
            ++stats_.delivered;
            client_handler_(conn.id, frame.tag, frame.payload);
          }
          continue;
        }
        if (status == FrameDecoder::Status::kError) close_me = true;
        break;
      }
      if (close_me) return;
      continue;
    }
    if (got < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
    close_me = true;  // EOF or hard error
    return;
  }
}

void TcpTransport::flush_client(ClientConn& conn, bool& close_me) {
  while (conn.out_off < conn.outbuf.size()) {
    const ssize_t wrote =
        ::send(conn.fd, conn.outbuf.data() + conn.out_off,
               conn.outbuf.size() - conn.out_off, MSG_NOSIGNAL);
    if (wrote > 0) {
      conn.out_off += static_cast<std::size_t>(wrote);
      continue;
    }
    if (wrote < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
    close_me = true;  // a lost client connection is not retried
    return;
  }
  conn.outbuf.clear();
  conn.out_off = 0;
}

void TcpTransport::dispatch(const Frame& frame) {
  if (handler_) {
    ++stats_.delivered;
    handler_(frame.sender, frame.tag, frame.payload);
  }
}

void TcpTransport::read_ready(int fd, FrameDecoder& decoder, ReplicaId& bound,
                              bool& close_me) {
  std::uint8_t buf[64 * 1024];
  while (true) {
    const ssize_t got = ::recv(fd, buf, sizeof(buf), 0);
    if (got > 0) {
      decoder.feed(ByteSpan(buf, static_cast<std::size_t>(got)));
      Frame frame;
      while (true) {
        const auto status = decoder.next(frame);
        if (status == FrameDecoder::Status::kFrame) {
          // Sender pinning: a connection speaks for exactly one replica.
          // Out-of-range ids, this node's own id (we never dial ourselves)
          // and mismatches against an established binding are hostile —
          // poison the stream rather than let one socket impersonate many
          // "distinct senders".
          if (frame.sender == 0 || frame.sender > cfg_.n ||
              frame.sender == cfg_.self ||
              (bound != 0 && frame.sender != bound)) {
            ++stats_.dropped;
            close_me = true;
            break;
          }
          bound = frame.sender;
          dispatch(frame);
          continue;
        }
        if (status == FrameDecoder::Status::kError) close_me = true;
        break;
      }
      if (close_me) return;
      continue;
    }
    if (got < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
    close_me = true;  // EOF or hard error
    return;
  }
}

void TcpTransport::fire_due_timers() {
  const TimePoint now = now_us();
  while (!timers_.empty() && timers_.top().at <= now) {
    // Copy out before pop: the callback may set new timers.
    auto fn = std::move(const_cast<Timer&>(timers_.top()).fn);
    timers_.pop();
    if (fn) fn();
  }
}

int TcpTransport::poll_timeout_ms() const {
  if (timers_.empty()) return 50;
  const TimePoint now = now_us();
  if (timers_.top().at <= now) return 0;
  const Duration wait = timers_.top().at - now;
  return static_cast<int>(std::min<Duration>(wait / 1000 + 1, 50));
}

bool TcpTransport::run_until(const std::function<bool()>& done,
                             Duration max_wall) {
  ThreadRoleGuard role(loop_thread_);  // this thread IS the loop thread now
  const TimePoint deadline = now_us() + max_wall;
  while (!stop_.load(std::memory_order_relaxed)) {
    fire_due_timers();
    run_posted();
    // Coalesced write-out of everything queued since the last poll —
    // protocol callbacks, timers and posted tasks alike — so each
    // connection gets at most one sendmsg before the loop parks (and
    // nothing is left unwritten if done() ends the run below).
    flush_dirty();
    if (done && done()) return true;
    if (now_us() >= deadline) break;

    std::vector<pollfd> fds;
    // Index bookkeeping: fds[0] is the listener, fds[1] the post() wake
    // pipe, then outbound, then inbound connections in container order.
    fds.push_back(pollfd{listen_fd_, POLLIN, 0});
    const std::size_t wake_idx = fds.size();
    fds.push_back(pollfd{wake_pipe_[0], POLLIN, 0});
    const std::size_t out_base = fds.size();
    std::vector<OutboundConn*> polled_out;
    for (auto& conn : outbound_) {
      if (!conn || conn->fd < 0) continue;
      short events = 0;
      if (conn->connecting) {
        events = POLLOUT;
      } else {
        events = POLLIN;
        if (!conn->pending.empty()) events |= POLLOUT;
      }
      fds.push_back(pollfd{conn->fd, events, 0});
      polled_out.push_back(conn.get());
    }
    const std::size_t inbound_base = fds.size();
    const std::size_t inbound_polled = inbound_.size();
    for (auto& conn : inbound_) {
      fds.push_back(pollfd{conn.fd, POLLIN, 0});
    }
    std::size_t client_listen_idx = 0;
    const bool poll_client_listener = client_listen_fd_ >= 0;
    if (poll_client_listener) {
      client_listen_idx = fds.size();
      fds.push_back(pollfd{client_listen_fd_, POLLIN, 0});
    }
    const std::size_t client_base = fds.size();
    const std::size_t clients_polled = clients_.size();
    for (auto& conn : clients_) {
      short events = POLLIN;
      if (conn.out_off < conn.outbuf.size()) events |= POLLOUT;
      fds.push_back(pollfd{conn.fd, events, 0});
    }

    const int rc = ::poll(fds.data(), fds.size(), poll_timeout_ms());
    if (rc < 0 && errno != EINTR) break;
    if (rc <= 0) continue;

    // Listener first: accept everything pending.
    if (fds[0].revents & POLLIN) {
      while (true) {
        const int fd = ::accept(listen_fd_, nullptr, nullptr);
        if (fd < 0) break;
        set_nonblocking(fd);
        const int one = 1;
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
        inbound_.push_back(
            InboundConn{fd, FrameDecoder(cfg_.max_frame_payload)});
      }
    }

    if (fds[wake_idx].revents & POLLIN) {
      std::uint8_t buf[256];
      while (::read(wake_pipe_[0], buf, sizeof(buf)) > 0) {
      }
    }

    for (std::size_t i = 0; i < polled_out.size(); ++i) {
      OutboundConn& conn = *polled_out[i];
      const short revents = fds[out_base + i].revents;
      if (revents == 0 || conn.fd < 0) continue;
      if (conn.connecting) {
        if (revents & (POLLOUT | POLLERR | POLLHUP)) finish_dial(conn);
        continue;
      }
      bool close_me = false;
      if (revents & POLLIN) {
        // Read before honoring HUP: a peer may flush data and close. A
        // dialed connection is bound to its peer from the start: anything
        // the peer writes back must speak as itself.
        ReplicaId bound = conn.peer;
        read_ready(conn.fd, conn.decoder, bound, close_me);
      } else if (revents & (POLLERR | POLLHUP)) {
        close_me = true;
      }
      if (close_me) {
        ::close(conn.fd);
        conn.fd = -1;
        conn.front_off = 0;
        conn.decoder = FrameDecoder(cfg_.max_frame_payload);
        fail_dial(conn);
        continue;
      }
      if (revents & POLLOUT) flush(conn);
    }

    for (std::size_t i = 0; i < inbound_polled; ++i) {
      const short revents = fds[inbound_base + i].revents;
      if (revents == 0) continue;
      bool close_me = false;
      if (revents & POLLIN) {
        read_ready(inbound_[i].fd, inbound_[i].decoder, inbound_[i].bound,
                   close_me);
      } else if (revents & (POLLERR | POLLHUP)) {
        close_me = true;
      }
      if (close_me) {
        ::close(inbound_[i].fd);
        inbound_[i].fd = -1;
      }
    }
    inbound_.erase(std::remove_if(inbound_.begin(), inbound_.end(),
                                  [](const InboundConn& c) {
                                    return c.fd < 0;
                                  }),
                   inbound_.end());

    if (poll_client_listener &&
        (fds[client_listen_idx].revents & POLLIN) != 0) {
      accept_clients();  // appends; new conns are polled next iteration
    }
    for (std::size_t i = 0; i < clients_polled; ++i) {
      ClientConn& conn = clients_[i];
      const short revents = fds[client_base + i].revents;
      if (revents == 0 || conn.fd < 0) continue;
      bool close_me = false;
      if (revents & POLLIN) {
        read_client_ready(conn, close_me);
      } else if (revents & (POLLERR | POLLHUP)) {
        close_me = true;
      }
      if (!close_me && (revents & POLLOUT)) flush_client(conn, close_me);
      if (close_me) {
        ::close(conn.fd);
        conn.fd = -1;
      }
    }
    clients_.erase(std::remove_if(clients_.begin(), clients_.end(),
                                  [](const ClientConn& c) {
                                    return c.fd < 0;
                                  }),
                   clients_.end());
  }
  return done ? done() : false;
}

}  // namespace probft::net
