// Central wire-tag registry: the single source of truth for every frame
// tag that can appear on a probft network, simulated or TCP.
//
// Rules (enforced by tools/lint_protocol.py and the static_assert below):
//   - every `k*Tag` constant in src/ is either defined here or defined as
//     a re-export of a `net::tags::` constant (modules keep their local
//     names, e.g. smr::kSmrTag, so call sites do not churn);
//   - protocol enums whose values ride the wire (core::MsgTag,
//     hotstuff::HsTag) bind each enumerator to its registry constant with
//     a static_assert next to the enum;
//   - tag values are unique across the whole space — a new subsystem that
//     collides with an existing envelope fails to compile, not to
//     interoperate.
//
// Allocation map:
//   0x01-0x0f  core consensus (ProBFT; PBFT reuses the same envelope)
//   0x0b-0x0f  HotStuff (decimal 11-15, the historical values)
//   0x20-0x27  single-group SMR (slot consensus, forwards, catch-up,
//              checkpoints/state transfer, leases, read-index)
//   0x28-0x2f  sharded service layer (0x2a-0x2f reserved)
//   0x30-0x3f  client path (0x34-0x3f reserved)
#pragma once

#include <cstddef>
#include <cstdint>

namespace probft::net::tags {

// ---- core consensus (core::MsgTag; PBFT shares the envelope) ----
inline constexpr std::uint8_t kPropose = 0x01;
inline constexpr std::uint8_t kPrepare = 0x02;
inline constexpr std::uint8_t kCommit = 0x03;
inline constexpr std::uint8_t kNewLeader = 0x04;
inline constexpr std::uint8_t kWish = 0x05;

// ---- HotStuff (hotstuff::HsTag) ----
inline constexpr std::uint8_t kHsNewView = 0x0b;   // 11
inline constexpr std::uint8_t kHsProposal = 0x0c;  // 12
inline constexpr std::uint8_t kHsVote = 0x0d;      // 13
inline constexpr std::uint8_t kHsQc = 0x0e;        // 14
inline constexpr std::uint8_t kHsWish = 0x0f;      // 15

// ---- single-group SMR (smr::) ----
inline constexpr std::uint8_t kSmr = 0x20;         // slot-prefixed consensus
inline constexpr std::uint8_t kSmrForward = 0x21;  // request → leader
inline constexpr std::uint8_t kSmrHint = 0x22;     // signed decided-value hint
inline constexpr std::uint8_t kSmrPull = 0x23;     // straggler asks for hints
inline constexpr std::uint8_t kSmrCkpt = 0x24;     // checkpoint vote
inline constexpr std::uint8_t kSmrState = 0x25;    // certified state transfer
inline constexpr std::uint8_t kSmrLease = 0x26;    // read-lease request/grant
inline constexpr std::uint8_t kSmrReadIndex = 0x27;  // watermark attestation

// ---- sharded service layer (shard::) ----
inline constexpr std::uint8_t kShard = 0x28;         // shard-prefixed consensus
inline constexpr std::uint8_t kShardForward = 0x29;  // cross-shard forward

// ---- client path (net::) ----
inline constexpr std::uint8_t kClientRequest = 0x30;
inline constexpr std::uint8_t kClientReply = 0x31;
inline constexpr std::uint8_t kClientRead = 0x32;
inline constexpr std::uint8_t kClientReadReply = 0x33;

namespace detail {

inline constexpr std::uint8_t kAll[] = {
    kPropose,   kPrepare,     kCommit,    kNewLeader,     kWish,
    kHsNewView, kHsProposal,  kHsVote,    kHsQc,          kHsWish,
    kSmr,       kSmrForward,  kSmrHint,   kSmrPull,       kSmrCkpt,
    kSmrState,  kSmrLease,    kSmrReadIndex,
    kShard,     kShardForward,
    kClientRequest, kClientReply, kClientRead, kClientReadReply,
};

constexpr bool all_unique() {
  constexpr std::size_t n = sizeof(kAll) / sizeof(kAll[0]);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      if (kAll[i] == kAll[j]) return false;
    }
  }
  return true;
}

}  // namespace detail

static_assert(detail::all_unique(),
              "wire tag collision: two registry entries share a value — "
              "pick a free slot from the allocation map above");

}  // namespace probft::net::tags
