// Transport abstraction: the replica↔network boundary.
//
// Everything above this interface (protocol replicas, the cluster harness,
// the scenario matrix) is transport-agnostic: it registers a receive
// handler and emits sends/broadcasts/multicasts, nothing more. Two
// implementations exist:
//
//  - net::Network       — the deterministic in-process simulator network
//                         (partial synchrony, fault filters, seeded RNG);
//  - net::TcpTransport  — real nonblocking TCP sockets with length-prefixed
//                         framing, so a cluster can run as OS processes.
//
// Both report uniform wire statistics through TransportStats.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "common/bytes.hpp"
#include "common/types.hpp"

namespace probft::net {

/// Wire-level accounting shared by every transport.
///
/// `sends` / `sends_by_tag` count *logical* protocol sends (one per
/// send()/broadcast-recipient, including ones a fault filter later drops).
/// `bytes_sent` / `bytes_by_tag` count *transmitted* payload bytes — a
/// duplicated delivery transmits its payload twice and is accounted twice,
/// so `bytes_sent` always equals the sum over `bytes_by_tag`.
struct TransportStats {
  std::uint64_t sends = 0;
  std::uint64_t delivered = 0;
  std::uint64_t dropped = 0;
  std::uint64_t duplicates = 0;  // extra transmissions beyond the sends
  std::uint64_t bytes_sent = 0;
  std::map<std::uint8_t, std::uint64_t> sends_by_tag;
  std::map<std::uint8_t, std::uint64_t> bytes_by_tag;

  [[nodiscard]] std::uint64_t sends_for(std::uint8_t tag) const {
    const auto it = sends_by_tag.find(tag);
    return it == sends_by_tag.end() ? 0 : it->second;
  }
  [[nodiscard]] std::uint64_t bytes_for(std::uint8_t tag) const {
    const auto it = bytes_by_tag.find(tag);
    return it == bytes_by_tag.end() ? 0 : it->second;
  }
};

/// Abstract point-to-point message transport for a cluster of n replicas
/// (1-based ids). Handlers are invoked as (from, tag, payload); delivery is
/// asynchronous and unordered unless a concrete transport says otherwise.
class ITransport {
 public:
  using Handler =
      std::function<void(ReplicaId from, std::uint8_t tag, const Bytes&)>;

  virtual ~ITransport() = default;

  /// Registers the receive callback for replica `id`. The simulator hosts
  /// all n replicas and accepts any id; a process-per-replica transport
  /// only accepts its own.
  virtual void register_handler(ReplicaId id, Handler handler) = 0;

  /// Point-to-point send; self-sends are allowed (delivered async).
  virtual void send(ReplicaId from, ReplicaId to, std::uint8_t tag,
                    Bytes payload) = 0;

  /// Sends to every replica except (optionally) the sender itself.
  virtual void broadcast(ReplicaId from, std::uint8_t tag,
                         const Bytes& payload, bool include_self = false) = 0;

  /// Sends to an explicit recipient list (the VRF sample).
  virtual void multicast(ReplicaId from,
                         const std::vector<ReplicaId>& recipients,
                         std::uint8_t tag, const Bytes& payload) = 0;

  [[nodiscard]] virtual const TransportStats& stats() const = 0;

  /// Cluster size n.
  [[nodiscard]] virtual std::uint32_t size() const = 0;
};

}  // namespace probft::net
