// Single-shot PBFT baseline (paper §2.3, following Bravo et al. [6]).
//
// Identical three-phase structure to ProBFT but with *deterministic*
// quorums of ⌈(n+f+1)/2⌉ and all-to-all Prepare/Commit broadcasts — this is
// the protocol ProBFT is benchmarked against in Figures 1 and 5. Sharing
// the network/synchronizer substrate keeps the comparison apples-to-apples.
//
// Message shapes reuse the ProBFT encodings with empty VRF fields (a
// PhaseMsg whose sample/proof are empty means "broadcast quorum message").
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>

#include "common/bytes.hpp"
#include "common/types.hpp"
#include "core/messages.hpp"
#include "core/protocol_host.hpp"
#include "core/replica.hpp"
#include "crypto/suite.hpp"
#include "sync/synchronizer.hpp"

namespace probft::pbft {

using core::INode;
using core::MsgTag;
using core::NewLeaderMsg;
using core::PhaseMsg;
using core::PhaseMsgPtr;
using core::ProposeMsg;
using core::SignedProposal;
using core::WishMsg;

struct PbftConfig {
  ReplicaId id = 0;
  std::uint32_t n = 0;
  std::uint32_t f = 0;
  Bytes my_value;
  std::function<bool(const Bytes&)> valid;
  bool stop_sync_on_decide = false;

  const crypto::CryptoSuite* suite = nullptr;
  Bytes secret_key;
  crypto::PublicKeyDir public_keys;

  /// Deterministic quorum ⌈(n+f+1)/2⌉ used in every phase.
  [[nodiscard]] std::uint32_t quorum() const { return (n + f + 2) / 2; }
};

class PbftReplica : public INode {
 public:
  PbftReplica(PbftConfig config, sync::SyncConfig sync_config,
              core::ProtocolHost host);

  void start() override;
  void on_message(ReplicaId from, std::uint8_t tag,
                  const Bytes& payload) override;

  [[nodiscard]] bool decided() const { return decided_.has_value(); }
  [[nodiscard]] const Bytes& decided_value() const { return decided_->value; }
  [[nodiscard]] View decided_view() const { return decided_->view; }
  [[nodiscard]] View current_view() const { return cur_view_; }
  [[nodiscard]] View prepared_view() const { return prepared_view_; }

 private:
  struct Decision {
    View view;
    Bytes value;
  };
  using ValueKey = std::pair<View, Bytes>;

  void enter_view(View v);
  void handle_propose(const Bytes& raw);
  void handle_phase(MsgTag tag, const Bytes& raw);
  void handle_new_leader(const Bytes& raw);
  void handle_wish(ReplicaId from, const Bytes& raw);

  void try_vote();
  void try_lead();
  void try_prepare_quorum();
  void try_commit_quorum();

  [[nodiscard]] bool safe_proposal(const ProposeMsg& m) const;
  [[nodiscard]] bool valid_new_leader(const NewLeaderMsg& m) const;
  [[nodiscard]] bool prepared_cert_valid(const std::vector<PhaseMsgPtr>& cert,
                                         View view, const Bytes& val) const;
  [[nodiscard]] bool verify_leader_sig(const SignedProposal& p) const;
  [[nodiscard]] bool verify_phase_msg(MsgTag tag, const PhaseMsg& m) const;
  [[nodiscard]] Bytes value_digest(const Bytes& value) const;
  void send_new_leader();

  PbftConfig cfg_;
  core::ProtocolHost host_;
  std::unique_ptr<sync::Synchronizer> synchronizer_;

  View cur_view_ = 0;
  Bytes cur_val_;
  bool voted_ = false;
  std::optional<ProposeMsg> proposal_;
  bool proposed_this_view_ = false;
  bool committed_this_view_ = false;

  View prepared_view_ = 0;
  Bytes prepared_value_;
  std::vector<PhaseMsgPtr> prepared_cert_;

  std::optional<Decision> decided_;

  std::map<ValueKey, std::map<ReplicaId, PhaseMsg>> prepares_;
  std::map<ValueKey, std::map<ReplicaId, PhaseMsg>> commits_;
  std::map<View, std::map<ReplicaId, NewLeaderMsg>> new_leader_msgs_;
  std::map<View, ProposeMsg> pending_proposes_;
};

}  // namespace probft::pbft
