#include "pbft/pbft_replica.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/codec.hpp"
#include "crypto/sha256.hpp"

namespace probft::pbft {

namespace {

/// PBFT leader rule: re-propose the value prepared in the highest view.
/// (Deterministic quorum intersection guarantees all certificates for the
/// highest prepared view carry the same value.)
std::optional<Bytes> choose_value(const std::vector<NewLeaderMsg>& m_set) {
  View vmax = 0;
  const Bytes* val = nullptr;
  for (const auto& m : m_set) {
    if (m.prepared_view > vmax) {
      vmax = m.prepared_view;
      val = &m.prepared_value;
    }
  }
  if (vmax == 0) return std::nullopt;
  return *val;
}

}  // namespace

PbftReplica::PbftReplica(PbftConfig config, sync::SyncConfig sync_config,
                         core::ProtocolHost host)
    : cfg_(std::move(config)), host_(std::move(host)) {
  if (cfg_.id == 0 || cfg_.id > cfg_.n || cfg_.suite == nullptr ||
      cfg_.public_keys.size() != cfg_.n + 1) {
    throw std::invalid_argument("PbftReplica: bad configuration");
  }
  if (!cfg_.valid) {
    cfg_.valid = [](const Bytes& v) { return !v.empty(); };
  }
  sync_config.n = cfg_.n;
  sync_config.f = cfg_.f;
  synchronizer_ = std::make_unique<sync::Synchronizer>(
      cfg_.id, sync_config,
      [this](View v) {
        WishMsg wish;
        wish.view = v;
        wish.sender = cfg_.id;
        wish.sender_sig =
            cfg_.suite->sign(cfg_.secret_key, wish.signing_bytes());
        host_.broadcast(core::tag_byte(MsgTag::kWish), wish.to_bytes());
      },
      [this](View v) { enter_view(v); },
      host_.set_timer);
}

void PbftReplica::start() { synchronizer_->start(); }

void PbftReplica::on_message(ReplicaId from, std::uint8_t tag,
                             const Bytes& payload) {
  try {
    switch (static_cast<MsgTag>(tag)) {
      case MsgTag::kPropose:
        handle_propose(payload);
        break;
      case MsgTag::kPrepare:
        handle_phase(MsgTag::kPrepare, payload);
        break;
      case MsgTag::kCommit:
        handle_phase(MsgTag::kCommit, payload);
        break;
      case MsgTag::kNewLeader:
        handle_new_leader(payload);
        break;
      case MsgTag::kWish:
        handle_wish(from, payload);
        break;
      default:
        break;
    }
  } catch (const CodecError&) {
    // Malformed message: drop.
  }
}

void PbftReplica::enter_view(View v) {
  cur_view_ = v;
  cur_val_.clear();
  voted_ = false;
  proposal_.reset();
  proposed_this_view_ = false;
  committed_this_view_ = false;

  std::erase_if(pending_proposes_,
                [v](const auto& kv) { return kv.first < v; });
  std::erase_if(new_leader_msgs_,
                [v](const auto& kv) { return kv.first < v; });
  std::erase_if(prepares_, [v](const auto& kv) { return kv.first.first < v; });
  std::erase_if(commits_, [v](const auto& kv) { return kv.first.first < v; });

  if (v == 1) {
    if (leader_of(v, cfg_.n) == cfg_.id) {
      SignedProposal prop;
      prop.view = v;
      prop.value = cfg_.my_value;
      prop.leader_sig = cfg_.suite->sign(
          cfg_.secret_key, SignedProposal::signing_bytes(v, prop.value));
      ProposeMsg msg;
      msg.proposal = std::move(prop);
      msg.sender = cfg_.id;
      msg.sender_sig =
          cfg_.suite->sign(cfg_.secret_key, msg.signing_bytes());
      host_.broadcast(core::tag_byte(MsgTag::kPropose), msg.to_bytes());
      proposed_this_view_ = true;
      pending_proposes_.emplace(v, std::move(msg));
    }
  } else {
    send_new_leader();
    try_lead();
  }
  try_vote();
  try_prepare_quorum();
  try_commit_quorum();
}

void PbftReplica::send_new_leader() {
  NewLeaderMsg msg;
  msg.view = cur_view_;
  msg.prepared_view = prepared_view_;
  msg.prepared_value = prepared_value_;
  msg.cert = prepared_cert_;
  msg.sender = cfg_.id;
  msg.sender_sig = cfg_.suite->sign(cfg_.secret_key, msg.signing_bytes());
  host_.send(leader_of(cur_view_, cfg_.n), core::tag_byte(MsgTag::kNewLeader),
              msg.to_bytes());
}

void PbftReplica::handle_propose(const Bytes& raw) {
  ProposeMsg msg = ProposeMsg::from_bytes(raw);
  if (msg.sender == 0 || msg.sender > cfg_.n) return;
  if (!cfg_.suite->verify(cfg_.public_keys[msg.sender], msg.signing_bytes(),
                          msg.sender_sig)) {
    return;
  }
  const View v = msg.proposal.view;
  if (v < cur_view_) return;
  pending_proposes_.emplace(v, std::move(msg));  // first proposal wins
  if (v == cur_view_) try_vote();
}

void PbftReplica::try_vote() {
  if (voted_) return;
  const auto it = pending_proposes_.find(cur_view_);
  if (it == pending_proposes_.end()) return;
  const ProposeMsg& msg = it->second;
  if (!safe_proposal(msg)) {
    pending_proposes_.erase(it);
    return;
  }
  cur_val_ = msg.proposal.value;
  voted_ = true;
  proposal_ = msg;

  PhaseMsg prepare;
  prepare.proposal = proposal_->proposal;
  prepare.sender = cfg_.id;
  prepare.sender_sig = cfg_.suite->sign(
      cfg_.secret_key, prepare.signing_bytes(MsgTag::kPrepare));
  const Bytes raw = prepare.to_bytes();
  host_.broadcast(core::tag_byte(MsgTag::kPrepare), raw);
  // Count our own Prepare locally.
  prepares_[{cur_view_, value_digest(cur_val_)}].emplace(cfg_.id,
                                                         std::move(prepare));
  try_prepare_quorum();
}

void PbftReplica::handle_new_leader(const Bytes& raw) {
  NewLeaderMsg msg = NewLeaderMsg::from_bytes(raw);
  if (msg.sender == 0 || msg.sender > cfg_.n) return;
  if (msg.view < cur_view_) return;
  if (leader_of(msg.view, cfg_.n) != cfg_.id) return;
  if (!cfg_.suite->verify(cfg_.public_keys[msg.sender], msg.signing_bytes(),
                          msg.sender_sig)) {
    return;
  }
  if (!valid_new_leader(msg)) return;
  const View view = msg.view;
  const ReplicaId sender = msg.sender;
  new_leader_msgs_[view].emplace(sender, std::move(msg));
  if (view == cur_view_) try_lead();
}

void PbftReplica::try_lead() {
  if (cur_view_ <= 1 || proposed_this_view_ ||
      leader_of(cur_view_, cfg_.n) != cfg_.id) {
    return;
  }
  const auto it = new_leader_msgs_.find(cur_view_);
  if (it == new_leader_msgs_.end() || it->second.size() < cfg_.quorum()) {
    return;
  }
  std::vector<NewLeaderMsg> m_set;
  m_set.reserve(it->second.size());
  for (const auto& [sender, msg] : it->second) m_set.push_back(msg);

  const auto chosen = choose_value(m_set);
  SignedProposal prop;
  prop.view = cur_view_;
  prop.value = chosen.value_or(cfg_.my_value);
  prop.leader_sig = cfg_.suite->sign(
      cfg_.secret_key,
      SignedProposal::signing_bytes(cur_view_, prop.value));

  ProposeMsg msg;
  msg.proposal = std::move(prop);
  msg.justification = std::move(m_set);
  msg.sender = cfg_.id;
  msg.sender_sig = cfg_.suite->sign(cfg_.secret_key, msg.signing_bytes());
  host_.broadcast(core::tag_byte(MsgTag::kPropose), msg.to_bytes());
  proposed_this_view_ = true;
  pending_proposes_.emplace(cur_view_, std::move(msg));
  try_vote();
}

void PbftReplica::handle_phase(MsgTag tag, const Bytes& raw) {
  PhaseMsg msg = PhaseMsg::from_bytes(raw);
  if (msg.sender == 0 || msg.sender > cfg_.n) return;
  if (msg.proposal.view < cur_view_) return;
  if (!verify_phase_msg(tag, msg)) return;

  const ValueKey key{msg.proposal.view, value_digest(msg.proposal.value)};
  auto& bucket = (tag == MsgTag::kPrepare ? prepares_ : commits_)[key];
  bucket.emplace(msg.sender, std::move(msg));

  if (tag == MsgTag::kPrepare) {
    try_prepare_quorum();
  } else {
    try_commit_quorum();
  }
}

void PbftReplica::try_prepare_quorum() {
  if (!voted_ || committed_this_view_) return;
  const ValueKey key{cur_view_, value_digest(cur_val_)};
  const auto it = prepares_.find(key);
  if (it == prepares_.end() || it->second.size() < cfg_.quorum()) return;

  prepared_view_ = cur_view_;
  prepared_value_ = cur_val_;
  prepared_cert_.clear();
  for (const auto& [sender, msg] : it->second) {
    if (prepared_cert_.size() == cfg_.quorum()) break;
    prepared_cert_.push_back(std::make_shared<PhaseMsg>(msg));
  }

  PhaseMsg commit;
  commit.proposal = proposal_->proposal;
  commit.sender = cfg_.id;
  commit.sender_sig = cfg_.suite->sign(
      cfg_.secret_key, commit.signing_bytes(MsgTag::kCommit));
  committed_this_view_ = true;
  const Bytes raw = commit.to_bytes();
  host_.broadcast(core::tag_byte(MsgTag::kCommit), raw);
  commits_[key].emplace(cfg_.id, std::move(commit));
  try_commit_quorum();
}

void PbftReplica::try_commit_quorum() {
  if (decided_) return;
  if (prepared_view_ != cur_view_ || !committed_this_view_) return;
  const ValueKey key{cur_view_, value_digest(prepared_value_)};
  const auto it = commits_.find(key);
  if (it == commits_.end() || it->second.size() < cfg_.quorum()) return;
  decided_ = Decision{cur_view_, prepared_value_};
  if (cfg_.stop_sync_on_decide) synchronizer_->stop();
  if (host_.on_decide) host_.on_decide(cur_view_, prepared_value_);
}

void PbftReplica::handle_wish(ReplicaId from, const Bytes& raw) {
  WishMsg msg = WishMsg::from_bytes(raw);
  if (msg.sender == 0 || msg.sender > cfg_.n || msg.sender != from) return;
  if (!cfg_.suite->verify(cfg_.public_keys[msg.sender], msg.signing_bytes(),
                          msg.sender_sig)) {
    return;
  }
  synchronizer_->on_wish(msg.sender, msg.view);
}

bool PbftReplica::verify_leader_sig(const SignedProposal& p) const {
  const ReplicaId leader = leader_of(p.view, cfg_.n);
  return cfg_.suite->verify(cfg_.public_keys[leader],
                            SignedProposal::signing_bytes(p.view, p.value),
                            p.leader_sig);
}

bool PbftReplica::verify_phase_msg(MsgTag tag, const PhaseMsg& m) const {
  if (m.sender == 0 || m.sender > cfg_.n) return false;
  if (m.proposal.view == 0) return false;
  if (!verify_leader_sig(m.proposal)) return false;
  return cfg_.suite->verify(cfg_.public_keys[m.sender], m.signing_bytes(tag),
                            m.sender_sig);
}

bool PbftReplica::prepared_cert_valid(const std::vector<PhaseMsgPtr>& cert,
                                      View view, const Bytes& val) const {
  if (view == 0) return false;
  std::set<ReplicaId> senders;
  for (const auto& mp : cert) {
    const PhaseMsg& m = *mp;
    if (m.proposal.view != view || m.proposal.value != val) return false;
    if (!verify_phase_msg(MsgTag::kPrepare, m)) return false;
    senders.insert(m.sender);
  }
  return senders.size() >= cfg_.quorum();
}

bool PbftReplica::valid_new_leader(const NewLeaderMsg& m) const {
  if (m.prepared_view >= m.view) return false;
  if (m.prepared_view == 0) return m.prepared_value.empty();
  return prepared_cert_valid(m.cert, m.prepared_view, m.prepared_value);
}

bool PbftReplica::safe_proposal(const ProposeMsg& m) const {
  const View v = m.proposal.view;
  if (v < 1) return false;
  if (m.sender != leader_of(v, cfg_.n)) return false;
  if (!verify_leader_sig(m.proposal)) return false;
  if (!cfg_.valid(m.proposal.value)) return false;
  if (v == 1) return true;

  std::set<ReplicaId> senders;
  for (const auto& nl : m.justification) {
    if (nl.view != v) return false;
    if (nl.sender == 0 || nl.sender > cfg_.n) return false;
    if (!cfg_.suite->verify(cfg_.public_keys[nl.sender], nl.signing_bytes(),
                            nl.sender_sig)) {
      return false;
    }
    if (!valid_new_leader(nl)) return false;
    senders.insert(nl.sender);
  }
  if (senders.size() < cfg_.quorum()) return false;

  const auto chosen = choose_value(m.justification);
  if (chosen.has_value()) return m.proposal.value == *chosen;
  return true;
}

Bytes PbftReplica::value_digest(const Bytes& value) const {
  return crypto::sha256(ByteSpan(value.data(), value.size()));
}

}  // namespace probft::pbft
