// Deterministic placement/directory layer for the sharded SMR service.
//
// The keyspace is split into `shard_count` equal hash ranges: a key's owner
// is derived from the first 8 bytes of SHA-256(key), scaled into
// [0, shard_count) with a 128-bit multiply — no modulo bias, and the
// assignment for a given (key, shard_count) pair is stable across map
// versions, processes, and architectures. Clients and replicas each hold a
// `ShardMap` (version + shard count) and attach the version to forwarded
// requests (shard::kShardForwardTag), so a frame routed under a stale map
// is detected and dropped instead of landing in the wrong group's log.
//
// This mirrors how partitioned storage systems (DAOS pool/object placement)
// scale: placement is a pure function both sides compute, never a lookup
// round-trip.
#pragma once

#include <cstdint>

#include "common/bytes.hpp"
#include "common/codec.hpp"
#include "common/types.hpp"

namespace probft::shard {

/// 0-based consensus-group identifier.
using ShardId = std::uint32_t;

/// Upper bound on shard_count a decoded map may claim (a hostile buffer
/// must not make a node allocate per-shard state for 2^32 groups).
inline constexpr std::uint32_t kMaxShards = 1024;

/// The versioned directory clients and replicas agree on. Deliberately
/// tiny: placement is pure hashing, so the map only has to pin the range
/// count and a version to detect stale routing.
struct ShardMap {
  std::uint64_t version = 1;   // bumped on every reconfiguration
  std::uint32_t shard_count = 1;

  void encode(Writer& w) const;
  /// Strict: rejects unknown wire versions, shard_count of 0 or beyond
  /// kMaxShards. Callers add expect_exhausted() when the map is the whole
  /// buffer.
  static ShardMap decode(Reader& r);

  [[nodiscard]] Bytes to_bytes() const;
  static ShardMap from_bytes(ByteSpan raw);

  bool operator==(const ShardMap& other) const = default;
};

/// Stable 64-bit key hash: the first 8 bytes of SHA-256(key), big-endian.
[[nodiscard]] std::uint64_t key_hash(ByteSpan key);

/// key → owning shard under `map`: hash scaled into [0, shard_count).
[[nodiscard]] ShardId shard_of(const ShardMap& map, ByteSpan key);

/// The view-1 leader of shard `s` in an n-replica fleet. Groups run with
/// core::ReplicaConfig::leader_offset = s, so the S view-1 leaders spread
/// round-robin across the fleet instead of piling onto replica 1.
[[nodiscard]] inline ReplicaId lead_replica(ShardId s, std::uint32_t n) {
  return leader_of(1 + s, n);
}

/// Convenience wrapper bundling a map with its lookups.
class Placement {
 public:
  explicit Placement(ShardMap map) : map_(map) {}

  [[nodiscard]] const ShardMap& map() const { return map_; }
  [[nodiscard]] std::uint32_t shard_count() const { return map_.shard_count; }
  [[nodiscard]] ShardId shard_of(ByteSpan key) const {
    return shard::shard_of(map_, key);
  }

 private:
  ShardMap map_;
};

}  // namespace probft::shard
