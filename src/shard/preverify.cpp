#include "shard/preverify.hpp"

#include "common/codec.hpp"
#include "shard/placement.hpp"
#include "shard/sharded_smr.hpp"
#include "smr/preverify.hpp"

namespace probft::shard {

std::vector<core::VerifyTask> preverify_tasks(
    const core::PreverifyContext& ctx, std::uint8_t tag,
    const Bytes& payload) {
  if (tag != kShardTag) return {};
  try {
    Reader r{ByteSpan(payload.data(), payload.size())};
    const ShardId shard = r.u32();
    const std::uint8_t inner_tag = r.u8();
    const Bytes inner = r.raw(r.remaining());
    if (shard >= kMaxShards) return {};  // garbage: the replica drops it
    core::PreverifyContext group_ctx = ctx;
    group_ctx.leader_offset = shard;
    return smr::preverify_tasks(group_ctx, inner_tag, inner);
  } catch (const CodecError&) {
    return {};  // malformed envelope: the replica drops it
  }
}

}  // namespace probft::shard
