#include "shard/dtx.hpp"

#include <algorithm>
#include <utility>

#include "common/codec.hpp"

namespace probft::shard {

namespace {

/// Entry magics, 4 raw bytes in front of every dtx payload. The client
/// request and the four log-entry kinds each get their own so a log scan
/// can classify entries without context.
constexpr char kRequestMagic[] = "DTX1";
constexpr char kBeginMagic[] = "DXB1";
constexpr char kPrepareMagic[] = "DXP1";
constexpr char kDecideMagic[] = "DXD1";
constexpr char kApplyMagic[] = "DXA1";

/// Keys per transaction (bounds tracker state against hostile requests).
constexpr std::size_t kMaxDtxKeys = 64;

[[nodiscard]] ByteSpan span(const Bytes& b) {
  return ByteSpan(b.data(), b.size());
}

[[nodiscard]] bool has_magic(const Bytes& payload, const char* magic) {
  return payload.size() >= 4 && std::equal(magic, magic + 4, payload.begin());
}

void put_magic(Writer& w, const char* magic) {
  w.raw(ByteSpan(reinterpret_cast<const std::uint8_t*>(magic), 4));
}

void encode_keys(Writer& w, const std::vector<Bytes>& keys) {
  w.vec(keys, [](Writer& wr, const Bytes& key) { wr.bytes(span(key)); });
}

[[nodiscard]] std::vector<Bytes> decode_keys(Reader& r) {
  return r.vec<Bytes>([](Reader& rd) { return rd.bytes(); }, kMaxDtxKeys);
}

}  // namespace

DtxCoordinator::DtxCoordinator(ShardedSmr& service,
                               sync::Synchronizer::TimerSetter set_timer,
                               DtxOptions opts)
    : service_(service), set_timer_(std::move(set_timer)), opts_(opts) {}

bool DtxCoordinator::is_dtx_request(const Bytes& payload) {
  return has_magic(payload, kRequestMagic);
}

std::uint64_t DtxCoordinator::txid_of(std::uint64_t client,
                                      std::uint64_t seq,
                                      const Bytes& payload) {
  Writer w;
  w.u64(client);
  w.u64(seq);
  w.bytes(span(payload));
  const Bytes buf = std::move(w).take();
  return key_hash(span(buf));
}

std::uint64_t DtxCoordinator::coord_client(std::uint64_t txid) {
  Writer w;
  put_magic(w, "dxtC");
  w.u64(txid);
  const Bytes buf = std::move(w).take();
  return key_hash(span(buf));
}

std::uint64_t DtxCoordinator::part_client(std::uint64_t txid, ShardId shard) {
  Writer w;
  put_magic(w, "dxtP");
  w.u64(txid);
  w.u32(shard);
  const Bytes buf = std::move(w).take();
  return key_hash(span(buf));
}

void DtxCoordinator::place(Tx& tx, std::vector<Bytes> keys) {
  tx.keys = std::move(keys);
  tx.by_shard.clear();
  for (const Bytes& key : tx.keys) {
    tx.by_shard[service_.placement().shard_of(span(key))].push_back(key);
  }
  tx.coord = service_.placement().shard_of(span(tx.keys.front()));
}

bool DtxCoordinator::submit(std::uint64_t client, std::uint64_t seq,
                            const Bytes& payload) {
  if (!is_dtx_request(payload)) return false;
  std::vector<Bytes> keys;
  try {
    Reader r(span(payload));
    (void)r.raw(4);  // magic
    keys = decode_keys(r);
    r.expect_exhausted();
  } catch (const CodecError&) {
    return false;
  }
  if (keys.empty()) return false;
  for (const Bytes& key : keys) {
    if (key.empty()) return false;
  }
  const std::uint64_t txid = txid_of(client, seq, payload);
  Tx& tx = txs_[txid];
  tx.txid = txid;
  if (tx.keys.empty()) place(tx, std::move(keys));
  tx.origin_client = client;
  tx.origin_seq = seq;
  drive(tx);
  arm_pump();
  return true;
}

std::optional<bool> DtxCoordinator::completed_status(
    std::uint64_t txid) const {
  const auto it = txs_.find(txid);
  if (it == txs_.end() || !it->second.completed) return std::nullopt;
  return it->second.decision == 1;
}

void DtxCoordinator::drive(Tx& tx) {
  if (tx.completed) return;
  if (!tx.begun) {
    // Until BEGIN executes in the coordinator log the tx is not durable
    // anywhere; only a replica that knows the key set (the one the client
    // talked to, or any replica after BEGIN) can push it forward.
    if (!tx.keys.empty()) {
      Writer w;
      put_magic(w, kBeginMagic);
      w.u64(tx.txid);
      w.u64(tx.origin_client);
      w.u64(tx.origin_seq);
      encode_keys(w, tx.keys);
      (void)service_.submit_to_shard(tx.coord, coord_client(tx.txid), 1,
                                     std::move(w).take());
    }
    return;
  }
  if (tx.decision < 0) {
    for (const auto& [p, keys] : tx.by_shard) {
      if (tx.prepared.count(p) != 0) continue;
      Writer w;
      put_magic(w, kPrepareMagic);
      w.u64(tx.txid);
      w.u32(p);
      encode_keys(w, keys);
      (void)service_.submit_to_shard(p, part_client(tx.txid, p), 1,
                                     std::move(w).take());
    }
    const bool all_prepared = tx.prepared.size() == tx.by_shard.size();
    const bool timed_out = opts_.abort_after_ticks != 0 &&
                           tx.ticks >= opts_.abort_after_ticks;
    if (all_prepared || timed_out) {
      // Commit and abort race on the SAME (client, seq): the coordinator
      // log's total order picks one, dedup drops the other.
      Writer w;
      put_magic(w, kDecideMagic);
      w.u64(tx.txid);
      w.u8(all_prepared ? 1 : 0);
      (void)service_.submit_to_shard(tx.coord, coord_client(tx.txid), 2,
                                     std::move(w).take());
    }
    return;
  }
  if (tx.decision == 0) {
    complete(tx, /*committed=*/false);
    return;
  }
  for (const auto& [p, keys] : tx.by_shard) {
    if (tx.applied.count(p) != 0) continue;
    Writer w;
    put_magic(w, kApplyMagic);
    w.u64(tx.txid);
    w.u32(p);
    encode_keys(w, keys);
    (void)service_.submit_to_shard(p, part_client(tx.txid, p), 2,
                                   std::move(w).take());
  }
  if (tx.applied.size() == tx.by_shard.size()) {
    complete(tx, /*committed=*/true);
  }
}

void DtxCoordinator::complete(Tx& tx, bool committed) {
  if (tx.completed) return;
  tx.completed = true;
  if (committed) {
    ++committed_;
  } else {
    ++aborted_;
  }
  if (on_complete_) {
    on_complete_(tx.txid, committed, tx.origin_client, tx.origin_seq);
  }
}

DtxCoordinator::Tx* DtxCoordinator::apply_entry(ShardId shard,
                                                const Bytes& payload) {
  if (payload.size() < 4 || payload[0] != 'D' || payload[1] != 'X') {
    return nullptr;  // cheap reject for ordinary traffic
  }
  try {
    if (has_magic(payload, kBeginMagic)) {
      Reader r(span(payload));
      (void)r.raw(4);
      const std::uint64_t txid = r.u64();
      const std::uint64_t origin_client = r.u64();
      const std::uint64_t origin_seq = r.u64();
      std::vector<Bytes> keys = decode_keys(r);
      r.expect_exhausted();
      if (keys.empty()) return nullptr;
      Tx& tx = txs_[txid];
      tx.txid = txid;
      if (tx.keys.empty()) place(tx, std::move(keys));
      if (shard != tx.coord) return nullptr;  // misplaced: not ours
      if (tx.origin_client == 0) {
        tx.origin_client = origin_client;
        tx.origin_seq = origin_seq;
      }
      tx.begun = true;
      return &tx;
    }
    if (has_magic(payload, kPrepareMagic) ||
        has_magic(payload, kApplyMagic)) {
      const bool is_apply = has_magic(payload, kApplyMagic);
      Reader r(span(payload));
      (void)r.raw(4);
      const std::uint64_t txid = r.u64();
      const ShardId claimed = r.u32();
      (void)decode_keys(r);
      r.expect_exhausted();
      if (claimed != shard) return nullptr;  // committed to the wrong log
      Tx& tx = txs_[txid];
      tx.txid = txid;
      (is_apply ? tx.applied : tx.prepared).insert(shard);
      return &tx;
    }
    if (has_magic(payload, kDecideMagic)) {
      Reader r(span(payload));
      (void)r.raw(4);
      const std::uint64_t txid = r.u64();
      const std::uint8_t commit = r.u8();
      r.expect_exhausted();
      if (commit > 1) return nullptr;
      Tx& tx = txs_[txid];
      tx.txid = txid;
      // The coordinator log totally orders decides and the engine's
      // (client, seq) dedup admits exactly one, so the first observed
      // decision is THE decision.
      if (tx.decision < 0) tx.decision = commit;
      return &tx;
    }
  } catch (const CodecError&) {
    // A malformed dtx-looking entry is application data, not ours.
  }
  return nullptr;
}

void DtxCoordinator::on_execute(ShardId shard,
                                const smr::ExecutedCommand& cmd) {
  Tx* tx = apply_entry(shard, cmd.payload);
  if (tx == nullptr) return;
  drive(*tx);
  arm_pump();
}

void DtxCoordinator::rebuild_from_logs() {
  for (ShardId s = 0; s < service_.shard_count(); ++s) {
    for (const Bytes& payload : service_.group(s).log()) {
      (void)apply_entry(s, payload);
    }
  }
  for (auto& [txid, tx] : txs_) {
    if (!tx.completed) drive(tx);
  }
  arm_pump();
}

std::uint64_t DtxCoordinator::in_flight() const {
  std::uint64_t count = 0;
  for (const auto& [txid, tx] : txs_) {
    if (!tx.completed) ++count;
  }
  return count;
}

void DtxCoordinator::arm_pump() {
  if (pump_armed_ || in_flight() == 0) return;
  pump_armed_ = true;
  set_timer_(opts_.retry_period, [this] {
    pump_armed_ = false;
    for (auto& [txid, tx] : txs_) {
      if (tx.completed) continue;
      if (tx.begun && tx.decision < 0) ++tx.ticks;
      drive(tx);
    }
    arm_pump();
  });
}

}  // namespace probft::shard
