#include "shard/sharded_smr.hpp"

#include <stdexcept>
#include <utility>

#include "common/codec.hpp"
#include "smr/batch.hpp"
#include "smr/read_view.hpp"

namespace probft::shard {

namespace {

[[nodiscard]] ByteSpan span(const Bytes& b) {
  return ByteSpan(b.data(), b.size());
}

}  // namespace

ShardedSmr::ShardedSmr(ShardedSmrConfig config, core::ProtocolHost host)
    : cfg_(std::move(config)), host_(std::move(host)), placement_(cfg_.map) {
  const std::uint32_t shards = cfg_.map.shard_count;
  if (shards == 0 || shards > kMaxShards) {
    throw std::invalid_argument("ShardedSmr: bad shard_count");
  }
  if (!cfg_.wals.empty() && cfg_.wals.size() != shards) {
    throw std::invalid_argument("ShardedSmr: wals size != shard_count");
  }
  groups_.reserve(shards);
  for (ShardId s = 0; s < shards; ++s) {
    smr::SmrConfig gc = cfg_.base;
    gc.leader_offset = s;
    gc.forward_submissions = false;  // this layer forwards (with version)
    gc.wal = cfg_.wals.empty() ? nullptr : cfg_.wals[s];
    gc.on_execute = [this, s](const smr::ExecutedCommand& cmd) {
      if (cfg_.on_execute) cfg_.on_execute(s, cmd);
    };
    groups_.push_back(
        std::make_unique<smr::SmrReplica>(std::move(gc), group_host(s)));
  }
}

core::ProtocolHost ShardedSmr::group_host(ShardId s) {
  core::ProtocolHost gh;
  gh.send = [this, s](ReplicaId to, std::uint8_t tag, const Bytes& m) {
    Writer w;
    w.u32(s);
    w.u8(tag);
    w.raw(span(m));
    host_.send(to, kShardTag, std::move(w).take());
  };
  gh.broadcast = [this, s](std::uint8_t tag, const Bytes& m) {
    Writer w;
    w.u32(s);
    w.u8(tag);
    w.raw(span(m));
    host_.broadcast(kShardTag, std::move(w).take());
  };
  // Groups are never destroyed before the service, so timers pass through
  // unguarded (the SmrReplica already guards its retired slot instances).
  gh.set_timer = host_.set_timer;
  return gh;
}

void ShardedSmr::start() {
  for (auto& group : groups_) group->start();
}

bool ShardedSmr::submit_request(std::uint64_t client, std::uint64_t seq,
                                Bytes payload) {
  // Place by the payload's KEY (the bytes before the first '='), not the
  // raw bytes, so a read of that key routes to the shard that owns its
  // writes. Payloads without '=' key as the whole payload — placement for
  // every historical opaque workload (and its pinned digests) unchanged.
  const ShardId s = placement_.shard_of(smr::read_view_key(span(payload)));
  return submit_to_shard(s, client, seq, std::move(payload));
}

void ShardedSmr::submit_read(Bytes key, net::ReadConsistency consistency,
                             std::uint64_t min_index,
                             smr::SmrReplica::ReadCallback cb) {
  const ShardId s = placement_.shard_of(span(key));
  groups_[s]->submit_read(std::move(key), consistency, min_index,
                          std::move(cb));
}

bool ShardedSmr::submit_to_shard(ShardId s, std::uint64_t client,
                                 std::uint64_t seq, Bytes payload) {
  if (s >= shard_count()) return false;
  const ReplicaId lead = lead_replica(s, cfg_.base.n);
  Bytes forward;
  if (lead != cfg_.base.id) {
    Writer w;
    w.u64(cfg_.map.version);
    w.u32(s);
    smr::Request{client, seq, payload}.encode(w);
    forward = std::move(w).take();
  }
  // Local enqueue first (liveness fallback: if the remote leader never
  // batches it, this replica's pacing timer eventually will).
  const bool accepted = groups_[s]->submit_request(client, seq,
                                                  std::move(payload));
  if (accepted && !forward.empty()) {
    host_.send(lead, kShardForwardTag, forward);
  }
  return accepted;
}

void ShardedSmr::handle_forward(ReplicaId from, const Bytes& payload) {
  (void)from;  // any replica may forward; dedup makes replays harmless
  Reader r(span(payload));
  const std::uint64_t version = r.u64();
  const ShardId s = r.u32();
  smr::Request req = smr::Request::decode(r);
  r.expect_exhausted();
  // A mis-versioned forward was routed under a different ShardMap: the
  // sender's placement may disagree with ours, so committing it here
  // could write the key to the wrong group's log. Drop; the client
  // retries after refreshing its map.
  if (version != cfg_.map.version) return;
  if (s >= shard_count()) return;
  (void)groups_[s]->submit_request(req.client, req.seq,
                                   std::move(req.payload));
}

void ShardedSmr::on_message(ReplicaId from, std::uint8_t tag,
                            const Bytes& payload) {
  try {
    switch (tag) {
      case kShardTag: {
        Reader r(span(payload));
        const ShardId s = r.u32();
        const std::uint8_t inner_tag = r.u8();
        Bytes inner = r.raw(r.remaining());
        if (s >= shard_count()) return;  // stale map or garbage: drop
        groups_[s]->on_message(from, inner_tag, inner);
        break;
      }
      case kShardForwardTag:
        handle_forward(from, payload);
        break;
      default:
        break;  // not shard traffic
    }
  } catch (const CodecError&) {
    // Malformed envelope: drop.
  }
}

std::uint64_t ShardedSmr::executed_commands() const {
  std::uint64_t total = 0;
  for (const auto& group : groups_) total += group->executed_commands();
  return total;
}

std::uint64_t ShardedSmr::committed_slots() const {
  std::uint64_t total = 0;
  for (const auto& group : groups_) total += group->committed_slots();
  return total;
}

}  // namespace probft::shard
