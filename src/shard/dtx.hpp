// Cross-shard transactions: a two-phase, log-driven dtx coordinator.
//
// A dtx writes a set of keys that placement scatters across several
// consensus groups, atomically: either every owning group's log commits
// the transaction's APPLY entry, or none does. There is no coordinator
// *process* to lose — the coordinator role is a SHARD (a replicated
// group), and every replica runs the same deterministic tracker off its
// own execution stream, so progress survives any f crash faults including
// kill -9 of the replica a client happened to talk to.
//
// Phases, all of them ordinary log entries under synthetic per-tx client
// ids (the engine's per-client exactly-once dedup turns N replicas
// redundantly driving the same transition into one committed entry):
//
//   BEGIN   (coordinator shard, coord-client seq 1): tx id, origin
//           client/seq, the full key set.
//   PREPARE (each participant shard, part-client seq 1): the tx id and
//           that shard's key slice — the paper-trail lock entry.
//   DECIDE  (coordinator shard, coord-client seq 2): commit or abort.
//           A commit DECIDE is submitted once every participant's
//           PREPARE has executed; an abort DECIDE races it on the SAME
//           (client, seq) after the abort timeout, so the coordinator
//           log's total order picks exactly one outcome and dedup
//           silently drops the loser.
//   APPLY   (each participant shard, part-client seq 2): the actual
//           write, submitted only after DECIDE(commit) executed. If
//           DECIDE(abort) wins, no honest replica ever submits APPLY —
//           that is the all-or-nothing edge.
//
// Idempotent recovery: a restarted replica replays its per-shard WALs
// (rebuilding each group's log), then rebuild_from_logs() re-reads every
// executed entry to reconstruct in-flight tx state and resumes driving.
// Re-submitted transitions are deduplicated by the engine, so replay is
// harmless by construction.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <set>
#include <vector>

#include "common/bytes.hpp"
#include "common/types.hpp"
#include "shard/sharded_smr.hpp"
#include "sync/synchronizer.hpp"

namespace probft::shard {

struct DtxOptions {
  /// Pump period (µs): incomplete transactions re-drive their pending
  /// transitions at this cadence (covers lost forwards and restarts).
  Duration retry_period = 100'000;
  /// Auto-abort: a tx still undecided after this many pump ticks gets a
  /// DECIDE(abort) raced against the commit path. 0 = never.
  std::uint32_t abort_after_ticks = 0;
};

class DtxCoordinator {
 public:
  /// Fired exactly once per transaction on THIS replica when its outcome
  /// is final (committed: every participant applied; aborted: the abort
  /// DECIDE executed). origin_* identify the client request that started
  /// it — the serving node uses them to send the client reply.
  using OnComplete =
      std::function<void(std::uint64_t txid, bool committed,
                         std::uint64_t origin_client,
                         std::uint64_t origin_seq)>;

  DtxCoordinator(ShardedSmr& service,
                 sync::Synchronizer::TimerSetter set_timer,
                 DtxOptions opts = {});

  /// A client payload is a dtx request iff it starts with "DTX1".
  [[nodiscard]] static bool is_dtx_request(const Bytes& payload);
  /// Deterministic tx id: first 8 bytes of SHA-256 over (client, seq,
  /// payload) — a client retry maps to the same tx and is absorbed by
  /// the engine's dedup.
  [[nodiscard]] static std::uint64_t txid_of(std::uint64_t client,
                                             std::uint64_t seq,
                                             const Bytes& payload);

  /// Entry point for a client's "DTX1" request: parses the key set,
  /// starts (or re-joins) the transaction and submits BEGIN to the
  /// coordinator shard. Returns false on a malformed request (not a
  /// dtx, no keys, oversized).
  bool submit(std::uint64_t client, std::uint64_t seq, const Bytes& payload);

  /// Wire this into ShardedSmrConfig::on_execute — the tracker advances
  /// purely from executed entries.
  void on_execute(ShardId shard, const smr::ExecutedCommand& cmd);

  /// Post-recovery: reconstructs tx state from every group's executed
  /// log, then resumes driving whatever is still in flight.
  void rebuild_from_logs();

  void set_on_complete(OnComplete cb) { on_complete_ = std::move(cb); }

  /// nullopt while in flight / unknown; otherwise true = committed.
  /// Lets a node answer a client retry of an already-finished tx.
  [[nodiscard]] std::optional<bool> completed_status(
      std::uint64_t txid) const;

  // ---- inspection ----
  [[nodiscard]] std::uint64_t committed() const { return committed_; }
  [[nodiscard]] std::uint64_t aborted() const { return aborted_; }
  [[nodiscard]] std::uint64_t in_flight() const;

 private:
  struct Tx {
    std::uint64_t txid = 0;
    std::uint64_t origin_client = 0;
    std::uint64_t origin_seq = 0;
    std::vector<Bytes> keys;
    ShardId coord = 0;
    std::map<ShardId, std::vector<Bytes>> by_shard;  // participants
    bool begun = false;        // BEGIN executed in the coordinator log
    int decision = -1;         // -1 undecided, 0 abort, 1 commit
    std::set<ShardId> prepared;
    std::set<ShardId> applied;
    std::uint32_t ticks = 0;   // pump ticks while undecided
    bool completed = false;
  };

  /// Fills keys/coord/by_shard from a key list (placement is pure, so
  /// every replica derives the identical participant set).
  void place(Tx& tx, std::vector<Bytes> keys);
  /// Idempotently submits every transition the tx's state calls for.
  void drive(Tx& tx);
  void complete(Tx& tx, bool committed);
  /// Applies one executed entry to the tracker; returns the touched tx
  /// (nullptr for non-dtx entries). No driving — callers decide.
  Tx* apply_entry(ShardId shard, const Bytes& payload);
  void arm_pump();

  [[nodiscard]] static std::uint64_t coord_client(std::uint64_t txid);
  [[nodiscard]] static std::uint64_t part_client(std::uint64_t txid,
                                                 ShardId shard);

  ShardedSmr& service_;
  sync::Synchronizer::TimerSetter set_timer_;
  DtxOptions opts_;
  OnComplete on_complete_;

  std::map<std::uint64_t, Tx> txs_;
  std::uint64_t committed_ = 0;
  std::uint64_t aborted_ = 0;
  bool pump_armed_ = false;
};

}  // namespace probft::shard
