#include "shard/placement.hpp"

#include "crypto/sha256.hpp"

namespace probft::shard {

namespace {

/// Wire version byte for the ShardMap encoding.
constexpr std::uint8_t kMapWireVersion = 1;

}  // namespace

void ShardMap::encode(Writer& w) const {
  w.u8(kMapWireVersion);
  w.u64(version);
  w.u32(shard_count);
}

ShardMap ShardMap::decode(Reader& r) {
  const std::uint8_t wire = r.u8();
  if (wire != kMapWireVersion) throw CodecError("ShardMap: unknown version");
  ShardMap map;
  map.version = r.u64();
  map.shard_count = r.u32();
  if (map.shard_count == 0) throw CodecError("ShardMap: zero shards");
  if (map.shard_count > kMaxShards) {
    throw CodecError("ShardMap: shard_count exceeds limit");
  }
  return map;
}

Bytes ShardMap::to_bytes() const {
  Writer w;
  encode(w);
  return std::move(w).take();
}

ShardMap ShardMap::from_bytes(ByteSpan raw) {
  Reader r(raw);
  ShardMap map = decode(r);
  r.expect_exhausted();
  return map;
}

std::uint64_t key_hash(ByteSpan key) {
  const Bytes digest = crypto::sha256(key);
  std::uint64_t h = 0;
  for (std::size_t i = 0; i < 8; ++i) {
    h = (h << 8) | digest[i];
  }
  return h;
}

ShardId shard_of(const ShardMap& map, ByteSpan key) {
  // Multiply-shift range scaling: floor(h / 2^64 * shard_count). Uniform
  // over equal ranges and free of the modulo's bias toward low shards.
  const auto h = static_cast<unsigned __int128>(key_hash(key));
  return static_cast<ShardId>((h * map.shard_count) >> 64);
}

}  // namespace probft::shard
