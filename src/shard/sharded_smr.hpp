// Sharded SMR: S independent consensus groups behind one transport.
//
// Each group is a full smr::SmrReplica — its own slot window, batches,
// checkpoints, view state and (optionally) WAL — constructed with
// leader_offset = shard id so the S view-1 leaders spread round-robin
// across the fleet. All groups of one physical replica share the node's
// keypair, verdict cache and network connection: group traffic travels as
//
//   kShardTag (0x28):        u32 shard ‖ u8 inner-tag ‖ inner payload
//
// where the inner frame is any SMR-layer message (kSmrTag envelopes,
// hints, pulls, checkpoint votes, state transfer). Demultiplexing is a
// 5-byte peel on the network thread; a core::VerifyPool in front of the
// node uses shard::preverify_tasks, which rewrites the context's
// leader_offset per frame and recurses, so signature batches still
// amortize the MSM across ALL shards, not per group.
//
// Request routing: submit_request hashes the payload through the
// Placement layer and enqueues at the owning group. If this replica is
// not that group's view-1 leader, the request is ALSO forwarded as
//
//   kShardForwardTag (0x29): u64 map-version ‖ u32 shard ‖ Request
//
// so it lands in the leader's next batch without waiting for a timeout;
// the local enqueue stays as the liveness fallback (exactly the
// single-group engine's behavior, hoisted one layer up so the frame can
// carry the ShardMap version — a receiver under a different map drops the
// frame instead of committing it to the wrong group's log).
//
// Thread ownership: ShardedSmr has no locking of its own. Like the
// SmrReplica it wraps, every entry point (on_message, submit_request,
// timers) must run on the node's protocol thread; the verify pool is the
// only other thread that touches shard frames, and it only warms the
// shared verdict cache.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "common/types.hpp"
#include "core/protocol_host.hpp"
#include "core/replica.hpp"
#include "net/tags.hpp"
#include "shard/placement.hpp"
#include "smr/smr_replica.hpp"
#include "store/wal.hpp"

namespace probft::shard {

/// Outer wire tags; values live in the central registry (net/tags.hpp),
/// these are local re-exports.
inline constexpr std::uint8_t kShardTag = net::tags::kShard;
inline constexpr std::uint8_t kShardForwardTag = net::tags::kShardForward;

struct ShardedSmrConfig {
  /// Template for every group: id/n/f/o/l, pipeline shape, crypto, sync,
  /// shared verdict cache. Per-group fields are overridden internally
  /// (leader_offset, forward_submissions, wal, on_execute); base.wal and
  /// base.on_execute themselves are ignored.
  smr::SmrConfig base;

  /// The directory this replica serves under; shard_count = S.
  ShardMap map;

  /// Optional per-shard WALs (index = shard id; empty = no durability,
  /// size must otherwise equal shard_count). Non-owning; must outlive
  /// the service. Each group persists under its own segment namespace —
  /// one directory per shard in the node binary.
  std::vector<store::Wal*> wals;

  /// Called once per executed request of any group, tagged with the
  /// owning shard, in that shard's execution order. This is where the
  /// node replies to clients and the dtx coordinator observes entries.
  std::function<void(ShardId, const smr::ExecutedCommand&)> on_execute;
};

class ShardedSmr : public core::INode {
 public:
  /// Builds the S groups (recovering each from its WAL when provided).
  /// Throws std::invalid_argument on a malformed config (shard_count of
  /// 0 / beyond kMaxShards, wals size mismatch).
  ShardedSmr(ShardedSmrConfig config, core::ProtocolHost host);

  void start() override;
  void on_message(ReplicaId from, std::uint8_t tag,
                  const Bytes& payload) override;

  /// Routes (client, seq, payload) to the group owning the payload bytes
  /// (the request payload IS the placement key) and forwards to that
  /// group's view-1 leader when it is remote. Returns the local enqueue
  /// verdict — false for duplicates and unbatchable payloads, like the
  /// single-group engine.
  bool submit_request(std::uint64_t client, std::uint64_t seq, Bytes payload);

  /// Same, with the owning shard chosen by the caller (the dtx
  /// coordinator places its own entries).
  bool submit_to_shard(ShardId s, std::uint64_t client, std::uint64_t seq,
                       Bytes payload);

  /// Read-path entry: routes `key` to the group that owns it — writes
  /// place by read_view_key(payload), so key and writes land on the same
  /// group — and answers there at the requested consistency (see
  /// smr::SmrReplica::submit_read).
  void submit_read(Bytes key, net::ReadConsistency consistency,
                   std::uint64_t min_index, smr::SmrReplica::ReadCallback cb);

  // ---- inspection ----
  [[nodiscard]] const Placement& placement() const { return placement_; }
  [[nodiscard]] std::uint32_t shard_count() const {
    return placement_.shard_count();
  }
  [[nodiscard]] smr::SmrReplica& group(ShardId s) { return *groups_.at(s); }
  [[nodiscard]] const smr::SmrReplica& group(ShardId s) const {
    return *groups_.at(s);
  }
  [[nodiscard]] std::string log_digest(ShardId s) const {
    return groups_.at(s)->log_digest();
  }
  /// Aggregate executed commands across all groups.
  [[nodiscard]] std::uint64_t executed_commands() const;
  /// Aggregate committed (executed) slots across all groups.
  [[nodiscard]] std::uint64_t committed_slots() const;

 private:
  /// Host handed to group `s`: wraps every frame in the shard envelope.
  [[nodiscard]] core::ProtocolHost group_host(ShardId s);
  void handle_forward(ReplicaId from, const Bytes& payload);

  ShardedSmrConfig cfg_;
  core::ProtocolHost host_;
  Placement placement_;
  std::vector<std::unique_ptr<smr::SmrReplica>> groups_;
};

}  // namespace probft::shard
