// Shard-aware preverification extractor for core::VerifyPool.
//
// Sharded consensus traffic is the SMR wire format wrapped once more:
// kShardTag ‖ u32 shard ‖ inner SMR frame. The extractor peels the shard
// envelope, rewrites the context's leader_offset to the shard id (leader
// signatures verify against leader_of(view + shard, n) — the group's
// rotated schedule), and recurses into smr::preverify_tasks. One pool and
// one verdict cache therefore serve every group: signatures from ALL
// shards land in the same verify_batch MSM.
#pragma once

#include <cstdint>
#include <vector>

#include "common/bytes.hpp"
#include "core/verify_pool.hpp"

namespace probft::shard {

/// Drop-in PreverifyFn for a pool sitting in front of a ShardedSmr.
[[nodiscard]] std::vector<core::VerifyTask> preverify_tasks(
    const core::PreverifyContext& ctx, std::uint8_t tag,
    const Bytes& payload);

}  // namespace probft::shard
