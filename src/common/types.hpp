// Shared vocabulary types for the whole repository.
#pragma once

#include <cstdint>

namespace probft {

/// 1-based replica identifier (the paper numbers replicas 1..n).
using ReplicaId = std::uint32_t;

/// View number, starting at 1.
using View = std::uint64_t;

/// Simulated time in microseconds.
using TimePoint = std::uint64_t;
using Duration = std::uint64_t;

/// leader(v) = ((v - 1) mod n) + 1  (paper §3.2).
[[nodiscard]] constexpr ReplicaId leader_of(View v, std::uint32_t n) {
  return static_cast<ReplicaId>((v - 1) % n + 1);
}

}  // namespace probft
