// Deterministic pseudo-random number generation.
//
// All randomness in the repository flows through these generators so that a
// (seed, parameters) pair reproduces a simulation run bit-for-bit.
//
//  - SplitMix64: tiny stateless-ish mixer, used for seeding and for hashing
//    64-bit tuples into seeds.
//  - Xoshiro256StarStar: the workhorse generator (fast, 256-bit state,
//    passes BigCrush), seeded from SplitMix64 per the authors'
//    recommendation.
//
// Helpers provide unbiased bounded integers (Lemire rejection) and uniform
// k-of-n sampling without replacement (partial Fisher-Yates), which is the
// exact sampling model of the paper's probabilistic quorums.
#pragma once

#include <cstdint>
#include <vector>

namespace probft {

/// SplitMix64 (Vigna). Suitable for seeding and hash-mixing, not for
/// long streams.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// Mixes two 64-bit values into one seed (order-sensitive).
[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t a, std::uint64_t b) {
  SplitMix64 sm(a ^ (0x9e3779b97f4a7c15ULL + (b << 1)));
  sm.next();
  std::uint64_t x = sm.next() ^ b;
  SplitMix64 sm2(x);
  return sm2.next();
}

/// xoshiro256** 1.0 (Blackman & Vigna).
class Xoshiro256StarStar {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256StarStar(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  /// Seeds directly from 32 bytes of entropy (e.g. a VRF output).
  static Xoshiro256StarStar from_bytes(const std::uint8_t* data,
                                       std::size_t size);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  result_type operator()() { return next(); }

  std::uint64_t next() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Unbiased integer in [0, bound) via Lemire's rejection method.
  std::uint64_t bounded(std::uint64_t bound);

  /// Uniform double in [0, 1).
  double uniform01() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
};

/// Draws `k` distinct values uniformly at random from {0, 1, ..., n-1}
/// without replacement (partial Fisher-Yates). Requires k <= n.
[[nodiscard]] std::vector<std::uint32_t> sample_without_replacement(
    Xoshiro256StarStar& rng, std::uint32_t n, std::uint32_t k);

}  // namespace probft
