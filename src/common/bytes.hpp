// Byte-buffer primitives shared by every module.
//
// The whole code base standardizes on `Bytes` (a std::vector<uint8_t>) for
// owned binary data and `ByteSpan` for borrowed views, plus small helpers to
// convert to/from hex for test vectors and logging.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace probft {

using Bytes = std::vector<std::uint8_t>;
using ByteSpan = std::span<const std::uint8_t>;

/// Size-first byte ordering: shorter buffers sort before longer ones,
/// equal lengths compare with memcmp. Use this (not std::less<Bytes>) for
/// ordered containers keyed on Bytes — the explicit memcmp also sidesteps
/// GCC 12's bogus -Wstringop-overread on the synthesized
/// vector<unsigned char> three-way compare. NOTE: core::choose_value's
/// value tie-break is defined in terms of this ordering, so its semantics
/// are protocol-visible; do not change them casually.
struct BytesLess {
  bool operator()(const Bytes& a, const Bytes& b) const noexcept {
    if (a.size() != b.size()) return a.size() < b.size();
    return a.size() != 0 && std::memcmp(a.data(), b.data(), a.size()) < 0;
  }
};

/// Encodes `data` as lowercase hex.
[[nodiscard]] std::string to_hex(ByteSpan data);

/// Decodes a hex string (upper or lower case, no separators).
/// Throws std::invalid_argument on malformed input.
[[nodiscard]] Bytes from_hex(std::string_view hex);

/// Converts a string literal / std::string into raw bytes.
[[nodiscard]] Bytes to_bytes(std::string_view text);

/// Byte-wise concatenation of two buffers.
[[nodiscard]] Bytes operator+(const Bytes& a, const Bytes& b);

/// Constant-time equality for fixed-size secrets (avoids early exit).
[[nodiscard]] bool ct_equal(ByteSpan a, ByteSpan b);

}  // namespace probft
