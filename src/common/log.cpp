#include "common/log.hpp"

#include <atomic>

namespace probft::log {

namespace {
std::atomic<Level> g_level{Level::kOff};

const char* level_name(Level level) {
  switch (level) {
    case Level::kTrace: return "TRACE";
    case Level::kDebug: return "DEBUG";
    case Level::kInfo: return "INFO ";
    case Level::kWarn: return "WARN ";
    case Level::kError: return "ERROR";
    case Level::kOff: return "OFF  ";
  }
  return "?";
}
}  // namespace

Level level() noexcept { return g_level.load(std::memory_order_relaxed); }

void set_level(Level level) noexcept {
  g_level.store(level, std::memory_order_relaxed);
}

namespace detail {
void write(Level level, const std::string& message) {
  std::fprintf(stderr, "[%s] %s\n", level_name(level), message.c_str());
}
}  // namespace detail

}  // namespace probft::log
