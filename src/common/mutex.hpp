// Annotated synchronization primitives for the thread-safety analysis
// (common/annotations.hpp). Thin zero-overhead wrappers over the std
// primitives: the wrappers exist so clang can name them as capabilities
// — std::mutex carries no annotations, so locking discipline written
// against it is invisible to -Wthread-safety.
//
// Conventions used across the threaded surface (core/verify_pool,
// core/verdict_cache, smr/executor, net/tcp_transport, store/wal,
// sim/tcp_runner):
//   - every mutex-protected member is PROBFT_GUARDED_BY its Mutex;
//   - scopes hold locks via MutexLock (scoped capability), never bare
//     lock()/unlock() pairs;
//   - condition waits are explicit `while (!cond) cv.wait(mu)` loops —
//     a predicate lambda would hide the guarded-member reads from the
//     analysis (capabilities do not propagate into lambda bodies);
//   - thread-confined state ("loop thread only") is modeled by a
//     ThreadRole capability: the owning loop acquires it, confined
//     public entry points assert it (compile-time via
//     PROBFT_ASSERT_CAPABILITY, runtime thread-id check in debug
//     builds).
#pragma once

#include <atomic>
#include <cassert>
#include <condition_variable>
#include <mutex>
#include <shared_mutex>
#include <thread>

#include "common/annotations.hpp"

namespace probft {

/// Exclusive mutex capability (wraps std::mutex).
class PROBFT_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() PROBFT_ACQUIRE() { mu_.lock(); }
  void unlock() PROBFT_RELEASE() { mu_.unlock(); }
  [[nodiscard]] bool try_lock() PROBFT_TRY_ACQUIRE(true) {
    return mu_.try_lock();
  }

  /// Declares (without acquiring) that mutual exclusion holds here by
  /// some means the analysis cannot see. Use sparingly; every call site
  /// must be covered by docs/STATIC_ANALYSIS.md's suppression list.
  void assert_held() const PROBFT_ASSERT_CAPABILITY(this) {}

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// Reader/writer mutex capability (wraps std::shared_mutex).
class PROBFT_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void lock() PROBFT_ACQUIRE() { mu_.lock(); }
  void unlock() PROBFT_RELEASE() { mu_.unlock(); }
  void lock_shared() PROBFT_ACQUIRE_SHARED() { mu_.lock_shared(); }
  void unlock_shared() PROBFT_RELEASE_SHARED() { mu_.unlock_shared(); }

  /// See Mutex::assert_held. The exclusive assertion also satisfies
  /// shared requirements downstream.
  void assert_held() const PROBFT_ASSERT_CAPABILITY(this) {}

 private:
  std::shared_mutex mu_;
};

/// Scoped exclusive lock (the only way code should hold a Mutex).
class PROBFT_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) PROBFT_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() PROBFT_RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Scoped exclusive lock over a SharedMutex (writer side).
class PROBFT_SCOPED_CAPABILITY SharedWriterLock {
 public:
  explicit SharedWriterLock(SharedMutex& mu) PROBFT_ACQUIRE(mu) : mu_(mu) {
    mu_.lock();
  }
  ~SharedWriterLock() PROBFT_RELEASE() { mu_.unlock(); }

  SharedWriterLock(const SharedWriterLock&) = delete;
  SharedWriterLock& operator=(const SharedWriterLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// Scoped shared lock over a SharedMutex (reader side).
class PROBFT_SCOPED_CAPABILITY SharedReaderLock {
 public:
  explicit SharedReaderLock(const SharedMutex& mu) PROBFT_ACQUIRE_SHARED(mu)
      : mu_(const_cast<SharedMutex&>(mu)) {
    mu_.lock_shared();
  }
  ~SharedReaderLock() PROBFT_RELEASE() { mu_.unlock_shared(); }

  SharedReaderLock(const SharedReaderLock&) = delete;
  SharedReaderLock& operator=(const SharedReaderLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// Condition variable bound to probft::Mutex. wait() takes the Mutex
/// (which the caller must hold) rather than a std lock object, so the
/// REQUIRES contract names the same capability the guarded members use.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mu`, sleeps, and reacquires before returning
  /// (the capability is held on entry and on exit, hence REQUIRES).
  /// Spurious wakeups happen; callers loop on their condition.
  void wait(Mutex& mu) PROBFT_REQUIRES(mu) {
    // Adopt the already-held native mutex for the wait, then release
    // ownership again so the caller's MutexLock remains the one owner.
    std::unique_lock<std::mutex> native(mu.mu_, std::adopt_lock);
    cv_.wait(native);
    native.release();
  }

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

/// A capability that is a thread identity, not a lock: "this state is
/// only ever touched from the owning thread". The owning loop acquires
/// the role for the duration of its run; entry points that are
/// documented thread-confined call assert_held(), which (a) tells the
/// analysis the capability holds from here on and (b) in debug builds
/// verifies the calling thread really is the owner (or that no owner is
/// bound yet — setup before the loop starts is legal). Release builds
/// compile the check away entirely.
class PROBFT_CAPABILITY("role") ThreadRole {
 public:
  ThreadRole() = default;
  ThreadRole(const ThreadRole&) = delete;
  ThreadRole& operator=(const ThreadRole&) = delete;

  /// Binds the role to the calling thread (rebinding is legal: a
  /// transport may be driven by different threads in successive runs,
  /// never concurrently).
  void acquire() PROBFT_ACQUIRE() {
    owner_.store(std::this_thread::get_id(), std::memory_order_relaxed);
  }
  /// Unbinds; post-run teardown on another thread is then legal again.
  void release() PROBFT_RELEASE() {
    owner_.store(std::thread::id{}, std::memory_order_relaxed);
  }

  /// Thread-confined entry points call this first.
  void assert_held() const PROBFT_ASSERT_CAPABILITY(this) {
#ifndef NDEBUG
    const std::thread::id owner = owner_.load(std::memory_order_relaxed);
    assert((owner == std::thread::id{} ||
            owner == std::this_thread::get_id()) &&
           "thread-confined call from a foreign thread; use post()");
#endif
  }

  /// Like assert_held(), but lazily adopts the first calling thread as
  /// the owner — for single-owner objects nobody explicitly runs (the
  /// WAL: owned by whichever thread constructed and drives the replica).
  void assert_held_or_adopt() PROBFT_ASSERT_CAPABILITY(this) {
#ifndef NDEBUG
    const std::thread::id owner = owner_.load(std::memory_order_relaxed);
    if (owner == std::thread::id{}) {
      owner_.store(std::this_thread::get_id(), std::memory_order_relaxed);
      return;
    }
    assert(owner == std::this_thread::get_id() &&
           "single-owner object touched from a second thread");
#endif
  }

 private:
  std::atomic<std::thread::id> owner_{};
};

/// Scoped ThreadRole ownership for the run loop itself.
class PROBFT_SCOPED_CAPABILITY ThreadRoleGuard {
 public:
  explicit ThreadRoleGuard(ThreadRole& role) PROBFT_ACQUIRE(role)
      : role_(role) {
    role_.acquire();
  }
  ~ThreadRoleGuard() PROBFT_RELEASE() { role_.release(); }

  ThreadRoleGuard(const ThreadRoleGuard&) = delete;
  ThreadRoleGuard& operator=(const ThreadRoleGuard&) = delete;

 private:
  ThreadRole& role_;
};

}  // namespace probft
