#include "common/rng.hpp"

#include <cstring>
#include <numeric>
#include <stdexcept>

namespace probft {

Xoshiro256StarStar Xoshiro256StarStar::from_bytes(const std::uint8_t* data,
                                                  std::size_t size) {
  Xoshiro256StarStar rng(0);
  std::uint64_t words[4] = {0, 0, 0, 0};
  // Fold the input into four words; inputs shorter than 32 bytes still
  // perturb every word through the SplitMix pass below.
  for (std::size_t i = 0; i < size; ++i) {
    words[(i / 8) % 4] ^= static_cast<std::uint64_t>(data[i])
                          << (8 * (i % 8));
  }
  SplitMix64 sm(words[0] ^ 0x243f6a8885a308d3ULL);
  rng.state_[0] = sm.next() ^ words[0];
  rng.state_[1] = sm.next() ^ words[1];
  rng.state_[2] = sm.next() ^ words[2];
  rng.state_[3] = sm.next() ^ words[3];
  // All-zero state is invalid for xoshiro; nudge if it ever happens.
  if ((rng.state_[0] | rng.state_[1] | rng.state_[2] | rng.state_[3]) == 0) {
    rng.state_[0] = 1;
  }
  return rng;
}

std::uint64_t Xoshiro256StarStar::bounded(std::uint64_t bound) {
  if (bound == 0) throw std::invalid_argument("bounded: bound must be > 0");
  // Lemire's multiply-shift rejection method.
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto l = static_cast<std::uint64_t>(m);
  if (l < bound) {
    const std::uint64_t t = (0 - bound) % bound;
    while (l < t) {
      x = next();
      m = static_cast<__uint128_t>(x) * bound;
      l = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::vector<std::uint32_t> sample_without_replacement(Xoshiro256StarStar& rng,
                                                      std::uint32_t n,
                                                      std::uint32_t k) {
  if (k > n) {
    throw std::invalid_argument("sample_without_replacement: k > n");
  }
  std::vector<std::uint32_t> pool(n);
  std::iota(pool.begin(), pool.end(), 0U);
  for (std::uint32_t i = 0; i < k; ++i) {
    const auto j =
        i + static_cast<std::uint32_t>(rng.bounded(n - i));
    std::swap(pool[i], pool[j]);
  }
  pool.resize(k);
  return pool;
}

}  // namespace probft
