// Clang thread-safety (capability) analysis macros.
//
// Under clang, these expand to the attributes consumed by
// -Wthread-safety, turning the locking invariants documented in
// docs/ARCHITECTURE.md ("Threading model") into compile-time checks:
// a member annotated PROBFT_GUARDED_BY(mu_) cannot be touched without
// holding mu_, a function annotated PROBFT_REQUIRES(role) cannot be
// called from code that does not hold the capability, and a build that
// violates either fails under -Werror. Under gcc (or any compiler
// without the attribute, or with PROBFT_DISABLE_THREAD_SAFETY_ANALYSIS
// defined) every macro expands to nothing, so the annotated tree
// compiles bit-identically to the unannotated one — the analysis is a
// zero-cost overlay, never a dependency.
//
// The annotated primitives live in common/mutex.hpp (probft::Mutex,
// probft::SharedMutex, probft::MutexLock, probft::CondVar,
// probft::ThreadRole); docs/STATIC_ANALYSIS.md covers how to run the
// analysis and the suppression policy for the one construct it cannot
// prove (single-owner mode of core::VerdictCache).
#pragma once

#if defined(__clang__) && !defined(SWIG) && \
    !defined(PROBFT_DISABLE_THREAD_SAFETY_ANALYSIS)
#define PROBFT_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define PROBFT_THREAD_ANNOTATION(x)  // no-op off clang
#endif

/// Marks a class as a capability (a lock, or a role like "the loop
/// thread"). `x` names it in diagnostics, e.g. "mutex" or "role".
#define PROBFT_CAPABILITY(x) PROBFT_THREAD_ANNOTATION(capability(x))

/// Marks an RAII class whose constructor acquires and destructor
/// releases a capability (probft::MutexLock).
#define PROBFT_SCOPED_CAPABILITY PROBFT_THREAD_ANNOTATION(scoped_lockable)

/// Data members: may only be read/written while holding the capability.
#define PROBFT_GUARDED_BY(x) PROBFT_THREAD_ANNOTATION(guarded_by(x))
/// Pointer members: the pointee (not the pointer) is guarded.
#define PROBFT_PT_GUARDED_BY(x) PROBFT_THREAD_ANNOTATION(pt_guarded_by(x))

/// Functions: caller must hold the capability exclusively / shared.
#define PROBFT_REQUIRES(...) \
  PROBFT_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define PROBFT_REQUIRES_SHARED(...) \
  PROBFT_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

/// Functions: acquire/release the capability (lock(), unlock(), and the
/// ctor/dtor of scoped lockers).
#define PROBFT_ACQUIRE(...) \
  PROBFT_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define PROBFT_ACQUIRE_SHARED(...) \
  PROBFT_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))
#define PROBFT_RELEASE(...) \
  PROBFT_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define PROBFT_RELEASE_SHARED(...) \
  PROBFT_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))
#define PROBFT_TRY_ACQUIRE(...) \
  PROBFT_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/// Functions: caller must NOT hold the capability (deadlock guard for
/// public entry points that take the lock themselves).
#define PROBFT_EXCLUDES(...) \
  PROBFT_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Asserts (to the analysis) that the capability is held here without
/// acquiring it — the bridge for invariants enforced by something other
/// than a lock: thread confinement ("loop thread only", checked at
/// runtime by probft::ThreadRole in debug builds) or single-owner mode
/// (core::VerdictCache with thread_safe == false).
#define PROBFT_ASSERT_CAPABILITY(x) \
  PROBFT_THREAD_ANNOTATION(assert_capability(x))
#define PROBFT_ASSERT_SHARED_CAPABILITY(x) \
  PROBFT_THREAD_ANNOTATION(assert_shared_capability(x))

/// Functions returning a reference to a capability-guarding mutex.
#define PROBFT_RETURN_CAPABILITY(x) \
  PROBFT_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch. Every use must cite docs/STATIC_ANALYSIS.md's
/// suppression list; tools/lint_protocol.py does not police this (yet),
/// review does.
#define PROBFT_NO_THREAD_SAFETY_ANALYSIS \
  PROBFT_THREAD_ANNOTATION(no_thread_safety_analysis)
