// Minimal leveled logger.
//
// Logging is off by default so that Monte-Carlo sweeps stay quiet; examples
// and debugging sessions turn it on with `log::set_level`.
#pragma once

#include <cstdio>
#include <string>
#include <utility>

namespace probft::log {

enum class Level { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

Level level() noexcept;
void set_level(Level level) noexcept;

namespace detail {
void write(Level level, const std::string& message);

template <typename... Args>
std::string format(const char* fmt, Args&&... args) {
  if constexpr (sizeof...(Args) == 0) {
    return std::string(fmt);
  } else {
    const int needed = std::snprintf(nullptr, 0, fmt, args...);
    if (needed <= 0) return std::string(fmt);
    std::string out(static_cast<std::size_t>(needed), '\0');
    std::snprintf(out.data(), out.size() + 1, fmt, args...);
    return out;
  }
}
}  // namespace detail

template <typename... Args>
void trace(const char* fmt, Args&&... args) {
  if (level() <= Level::kTrace) {
    detail::write(Level::kTrace,
                  detail::format(fmt, std::forward<Args>(args)...));
  }
}

template <typename... Args>
void debug(const char* fmt, Args&&... args) {
  if (level() <= Level::kDebug) {
    detail::write(Level::kDebug,
                  detail::format(fmt, std::forward<Args>(args)...));
  }
}

template <typename... Args>
void info(const char* fmt, Args&&... args) {
  if (level() <= Level::kInfo) {
    detail::write(Level::kInfo,
                  detail::format(fmt, std::forward<Args>(args)...));
  }
}

template <typename... Args>
void warn(const char* fmt, Args&&... args) {
  if (level() <= Level::kWarn) {
    detail::write(Level::kWarn,
                  detail::format(fmt, std::forward<Args>(args)...));
  }
}

template <typename... Args>
void error(const char* fmt, Args&&... args) {
  if (level() <= Level::kError) {
    detail::write(Level::kError,
                  detail::format(fmt, std::forward<Args>(args)...));
  }
}

}  // namespace probft::log
