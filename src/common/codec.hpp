// A small endian-stable binary codec.
//
// Every protocol message is serialized with `Writer` before being signed or
// shipped through the simulated network, and parsed back with `Reader`.
// The format is:
//   - fixed-width integers: little-endian
//   - byte strings / vectors: u32 length prefix followed by payload
//   - optional<T>: u8 presence flag followed by payload if present
//
// Reader performs strict bounds checking and reports malformed input via
// CodecError, so protocol code can treat any Byzantine-crafted buffer safely.
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

#include "common/bytes.hpp"

namespace probft {

/// Thrown by Reader when a buffer is truncated or malformed.
class CodecError : public std::runtime_error {
 public:
  explicit CodecError(const std::string& what) : std::runtime_error(what) {}
};

class Writer {
 public:
  Writer() = default;

  template <typename T>
    requires std::is_unsigned_v<T>
  void u(T value) {
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      buf_.push_back(static_cast<std::uint8_t>(value >> (8 * i)));
    }
  }

  void u8(std::uint8_t v) { u<std::uint8_t>(v); }
  void u16(std::uint16_t v) { u<std::uint16_t>(v); }
  void u32(std::uint32_t v) { u<std::uint32_t>(v); }
  void u64(std::uint64_t v) { u<std::uint64_t>(v); }

  void boolean(bool v) { u8(v ? 1 : 0); }

  /// Length-prefixed byte string.
  void bytes(ByteSpan data) {
    u32(static_cast<std::uint32_t>(data.size()));
    buf_.insert(buf_.end(), data.begin(), data.end());
  }

  /// Raw bytes, no length prefix (for fixed-size fields).
  void raw(ByteSpan data) { buf_.insert(buf_.end(), data.begin(), data.end()); }

  void str(std::string_view s) {
    bytes(ByteSpan(reinterpret_cast<const std::uint8_t*>(s.data()), s.size()));
  }

  template <typename T, typename Fn>
  void vec(const std::vector<T>& items, Fn&& encode_one) {
    u32(static_cast<std::uint32_t>(items.size()));
    for (const auto& item : items) encode_one(*this, item);
  }

  template <typename T, typename Fn>
  void opt(const std::optional<T>& value, Fn&& encode_one) {
    boolean(value.has_value());
    if (value) encode_one(*this, *value);
  }

  [[nodiscard]] const Bytes& data() const& { return buf_; }
  [[nodiscard]] Bytes&& take() && { return std::move(buf_); }

 private:
  Bytes buf_;
};

class Reader {
 public:
  explicit Reader(ByteSpan data) : data_(data) {}

  template <typename T>
    requires std::is_unsigned_v<T>
  [[nodiscard]] T u() {
    require(sizeof(T));
    T value = 0;
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      value |= static_cast<T>(static_cast<T>(data_[pos_ + i]) << (8 * i));
    }
    pos_ += sizeof(T);
    return value;
  }

  [[nodiscard]] std::uint8_t u8() { return u<std::uint8_t>(); }
  [[nodiscard]] std::uint16_t u16() { return u<std::uint16_t>(); }
  [[nodiscard]] std::uint32_t u32() { return u<std::uint32_t>(); }
  [[nodiscard]] std::uint64_t u64() { return u<std::uint64_t>(); }

  [[nodiscard]] bool boolean() {
    const auto v = u8();
    if (v > 1) throw CodecError("boolean: invalid flag");
    return v == 1;
  }

  [[nodiscard]] Bytes bytes() {
    const auto len = u32();
    require(len);
    Bytes out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
              data_.begin() + static_cast<std::ptrdiff_t>(pos_ + len));
    pos_ += len;
    return out;
  }

  [[nodiscard]] Bytes raw(std::size_t len) {
    require(len);
    Bytes out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
              data_.begin() + static_cast<std::ptrdiff_t>(pos_ + len));
    pos_ += len;
    return out;
  }

  [[nodiscard]] std::string str() {
    const auto raw_bytes = bytes();
    return std::string(raw_bytes.begin(), raw_bytes.end());
  }

  template <typename T, typename Fn>
  [[nodiscard]] std::vector<T> vec(Fn&& decode_one, std::size_t max_items = 1
                                                                << 20) {
    const auto count = u32();
    if (count > max_items) throw CodecError("vec: count exceeds limit");
    std::vector<T> out;
    out.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i) out.push_back(decode_one(*this));
    return out;
  }

  template <typename T, typename Fn>
  [[nodiscard]] std::optional<T> opt(Fn&& decode_one) {
    if (!boolean()) return std::nullopt;
    return decode_one(*this);
  }

  [[nodiscard]] bool exhausted() const { return pos_ == data_.size(); }
  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }

  /// Throws unless the whole buffer has been consumed.
  void expect_exhausted() const {
    if (!exhausted()) throw CodecError("trailing bytes after message");
  }

 private:
  void require(std::size_t n) const {
    if (data_.size() - pos_ < n) throw CodecError("truncated buffer");
  }

  ByteSpan data_;
  std::size_t pos_ = 0;
};

}  // namespace probft
