#include "core/verify_pool.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "common/codec.hpp"
#include "crypto/sampler.hpp"

namespace probft::core {

namespace {

/// Entries one worker claims per round. Large enough to amortize the batch
/// verifier's random-linear-combination setup across messages from many
/// concurrent slots, small enough that the FIFO head does not starve
/// behind one worker's giant claim.
constexpr std::size_t kClaimBatch = 16;

bool sender_in_range(ReplicaId sender, std::uint32_t n) {
  return sender >= 1 && sender <= n;
}

/// Mirrors Replica::phase_vrf_ok byte-for-byte: same alpha derivation,
/// same sample size. Any divergence would poison the shared cache.
bool phase_vrf_ok(const PreverifyContext& ctx, MsgTag tag,
                  const PhaseMsg& m) {
  const char* phase = tag == MsgTag::kPrepare ? "prepare" : "commit";
  const Bytes alpha = crypto::sample_alpha(m.proposal.view, phase);
  return crypto::vrf_sample_verify(
      *ctx.suite, ctx.public_keys[m.sender],
      ByteSpan(alpha.data(), alpha.size()), ctx.n, ctx.sample_size, m.sample,
      m.vrf_proof);
}

void push_phase_task(std::vector<VerifyTask>& out, const PreverifyContext& ctx,
                     MsgTag tag, PhaseMsgPtr pm) {
  if (!sender_in_range(pm->sender, ctx.n)) return;
  if (pm->proposal.view == 0) return;
  VerifyTask t;
  t.kind = VerifyTask::Kind::kPhaseFull;
  t.key = VerdictCache::digest_key(pm->content_digest(), 'P',
                                   static_cast<std::uint8_t>(tag));
  t.tag = tag;
  t.phase = std::move(pm);
  out.push_back(std::move(t));
}

void push_new_leader_tasks(std::vector<VerifyTask>& out,
                           const PreverifyContext& ctx,
                           const NewLeaderMsg& nl) {
  if (!sender_in_range(nl.sender, ctx.n)) return;
  VerifyTask t;
  t.kind = VerifyTask::Kind::kSignedBytes;
  t.key = VerdictCache::digest_key(nl.content_digest(), 'N', 0);
  t.signer = nl.sender;
  t.message = nl.signing_bytes();
  t.signature = nl.sender_sig;
  out.push_back(std::move(t));
  // Certificate members are always Prepares (prefetch_new_leaders keys
  // them under the kPrepare tag regardless of how they arrived).
  for (const PhaseMsgPtr& pm : nl.cert) {
    push_phase_task(out, ctx, MsgTag::kPrepare, pm);
  }
}

}  // namespace

std::vector<VerifyTask> preverify_tasks(const PreverifyContext& ctx,
                                        std::uint8_t tag,
                                        const Bytes& payload) {
  std::vector<VerifyTask> out;
  try {
    switch (static_cast<MsgTag>(tag)) {
      case MsgTag::kPrepare:
      case MsgTag::kCommit: {
        auto pm = std::make_shared<const PhaseMsg>(
            PhaseMsg::from_bytes(ByteSpan(payload.data(), payload.size())));
        push_phase_task(out, ctx, static_cast<MsgTag>(tag), std::move(pm));
        break;
      }
      case MsgTag::kPropose: {
        const ProposeMsg m =
            ProposeMsg::from_bytes(ByteSpan(payload.data(), payload.size()));
        if (m.proposal.view < 1) break;
        // The leader signature over ⟨v,x⟩ ('L') …
        {
          VerifyTask t;
          t.kind = VerifyTask::Kind::kSignedBytes;
          t.message = SignedProposal::signing_bytes(m.proposal.view,
                                                    ByteSpan(m.proposal.value.data(),
                                                             m.proposal.value.size()));
          t.key = VerdictCache::signed_key(
              'L', ByteSpan(t.message.data(), t.message.size()),
              m.proposal.leader_sig);
          t.signer = leader_of(m.proposal.view + ctx.leader_offset, ctx.n);
          t.signature = m.proposal.leader_sig;
          out.push_back(std::move(t));
        }
        // … the Propose sender signature ('R') …
        if (sender_in_range(m.sender, ctx.n)) {
          VerifyTask t;
          t.kind = VerifyTask::Kind::kSignedBytes;
          t.message = m.signing_bytes();
          t.key = VerdictCache::signed_key(
              'R', ByteSpan(t.message.data(), t.message.size()),
              m.sender_sig);
          t.signer = m.sender;
          t.signature = m.sender_sig;
          out.push_back(std::move(t));
        }
        // … and the whole justification ('N' + cert 'P' verdicts).
        for (const NewLeaderMsg& nl : m.justification) {
          push_new_leader_tasks(out, ctx, nl);
        }
        break;
      }
      case MsgTag::kNewLeader: {
        const NewLeaderMsg m = NewLeaderMsg::from_bytes(
            ByteSpan(payload.data(), payload.size()));
        push_new_leader_tasks(out, ctx, m);
        break;
      }
      default:
        break;  // Wish traffic and unknown tags: nothing to pre-verify.
    }
  } catch (const CodecError&) {
    out.clear();  // malformed: deliver as-is, the replica rejects it
  }
  return out;
}

// ---------------- VerifyPool ----------------

VerifyPool::VerifyPool(PreverifyContext ctx, VerdictCachePtr cache,
                       unsigned threads, PreverifyFn extract)
    : ctx_(std::move(ctx)),
      cache_(std::move(cache)),
      threads_(threads),
      extract_(extract ? std::move(extract) : PreverifyFn(&preverify_tasks)) {
  if (threads_ > 0 && (!cache_ || !cache_->thread_safe())) {
    // Workers store verdicts while the protocol thread looks them up; an
    // unsynchronized cache here is a data race that happens to pass most
    // schedules. Refuse loudly instead.
    throw std::invalid_argument(
        "VerifyPool: threads > 0 requires a thread-safe VerdictCache "
        "(construct it with VerdictCache(/*thread_safe=*/true))");
  }
  workers_.reserve(threads_);
  for (unsigned i = 0; i < threads_; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

VerifyPool::~VerifyPool() {
  {
    MutexLock lock(mu_);
    stop_ = true;
  }
  cv_work_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void VerifyPool::submit(ReplicaId from, std::uint8_t tag, Bytes payload) {
  if (threads_ == 0) {
    // Inline mode: same evaluation code, no handoff. The entry is ready
    // the moment submit returns.
    Entry e;
    e.from = from;
    e.tag = tag;
    e.payload = std::move(payload);
    e.submitted = std::chrono::steady_clock::now();
    evaluate({&e});
    e.done = true;
    MutexLock lock(mu_);
    if (record_latencies_) {
      latencies_us_.push_back(
          std::chrono::duration<double, std::micro>(
              std::chrono::steady_clock::now() - e.submitted)
              .count());
    }
    fifo_.push_back(std::move(e));
    return;
  }
  {
    MutexLock lock(mu_);
    fifo_.push_back(Entry{from, tag, std::move(payload), false,
                          std::chrono::steady_clock::now()});
    unclaimed_.push_back(&fifo_.back());
  }
  cv_work_.notify_one();
}

std::size_t VerifyPool::drain(const Deliver& deliver) {
  std::size_t delivered = 0;
  for (;;) {
    Entry entry;
    {
      MutexLock lock(mu_);
      if (fifo_.empty() || !fifo_.front().done) break;
      entry = std::move(fifo_.front());
      fifo_.pop_front();
    }
    deliver(entry.from, entry.tag, entry.payload);
    ++delivered;
  }
  return delivered;
}

void VerifyPool::wait_ready() {
  MutexLock lock(mu_);
  while (!fifo_.empty() && !fifo_.front().done) cv_ready_.wait(mu_);
}

bool VerifyPool::idle() const {
  MutexLock lock(mu_);
  return fifo_.empty();
}

void VerifyPool::set_ready_callback(std::function<void()> cb) {
  MutexLock lock(mu_);
  ready_cb_ = std::move(cb);
}

void VerifyPool::record_latencies(bool on) {
  MutexLock lock(mu_);
  record_latencies_ = on;
}

std::vector<double> VerifyPool::take_latencies_us() {
  MutexLock lock(mu_);
  return std::exchange(latencies_us_, {});
}

void VerifyPool::worker_loop() {
  for (;;) {
    std::vector<Entry*> batch;
    {
      MutexLock lock(mu_);
      while (!stop_ && unclaimed_.empty()) cv_work_.wait(mu_);
      if (stop_) return;
      const std::size_t take = std::min(kClaimBatch, unclaimed_.size());
      batch.assign(unclaimed_.begin(),
                   unclaimed_.begin() + static_cast<std::ptrdiff_t>(take));
      unclaimed_.erase(unclaimed_.begin(),
                       unclaimed_.begin() + static_cast<std::ptrdiff_t>(take));
    }
    evaluate(batch);
    mark_done(batch);
  }
}

void VerifyPool::mark_done(const std::vector<Entry*>& batch) {
  bool head_ready = false;
  std::function<void()> cb;
  {
    MutexLock lock(mu_);
    const auto now = std::chrono::steady_clock::now();
    for (Entry* e : batch) {
      e->done = true;
      if (record_latencies_) {
        latencies_us_.push_back(
            std::chrono::duration<double, std::micro>(now - e->submitted)
                .count());
      }
    }
    head_ready = !fifo_.empty() && fifo_.front().done;
    if (head_ready) cb = ready_cb_;
  }
  if (head_ready) {
    cv_ready_.notify_all();
    if (cb) cb();
  }
}

void VerifyPool::evaluate(const std::vector<Entry*>& batch) {
  // Per-task bookkeeping while the combined batch check runs. The Bytes
  // members own the signing byte strings the SigCheck spans point into;
  // vector reallocation moves the Bytes objects but not their heap
  // buffers, so the spans stay valid.
  struct Work {
    const VerifyTask* task = nullptr;
    int signed_check = -1;  // kSignedBytes: its one check
    int leader_check = -1;  // kPhaseFull: leader-sig check (-1 = cached/shared)
    int sender_check = -1;  // kPhaseFull: sender-sig check
    bool leader_cached_ok = false;
    bool leader_was_cached = false;
    Bytes leader_key;  // kPhaseFull: the 'L' verdict is stored as a bonus
    Bytes leader_msg;
    Bytes sender_msg;
  };

  std::vector<std::vector<VerifyTask>> extracted;
  extracted.reserve(batch.size());
  for (const Entry* e : batch) {
    extracted.push_back(extract_(ctx_, e->tag, e->payload));
  }

  std::vector<Work> works;
  std::vector<crypto::SigCheck> checks;
  // Tasks already covered this round (several messages in one claim often
  // reference the same certificate members) and leader tuples already
  // given a check slot.
  std::unordered_set<Bytes, VerdictCache::DigestHash> seen;
  std::unordered_map<Bytes, int, VerdictCache::DigestHash> leader_slots;

  const auto add_check = [&](ReplicaId signer, const Bytes& msg,
                             const Bytes& sig) {
    const Bytes& pk = ctx_.public_keys[signer];
    checks.push_back({ByteSpan(pk.data(), pk.size()),
                      ByteSpan(msg.data(), msg.size()),
                      ByteSpan(sig.data(), sig.size())});
    return static_cast<int>(checks.size()) - 1;
  };

  for (const auto& tasks : extracted) {
    for (const VerifyTask& t : tasks) {
      if (cache_->contains(t.key) || !seen.insert(t.key).second) continue;
      Work w;
      w.task = &t;
      if (t.kind == VerifyTask::Kind::kSignedBytes) {
        w.signed_check = add_check(t.signer, t.message, t.signature);
      } else {
        const PhaseMsg& m = *t.phase;
        w.leader_msg = SignedProposal::signing_bytes(
            m.proposal.view,
            ByteSpan(m.proposal.value.data(), m.proposal.value.size()));
        w.leader_key = VerdictCache::signed_key(
            'L', ByteSpan(w.leader_msg.data(), w.leader_msg.size()),
            m.proposal.leader_sig);
        if (const auto hit = cache_->lookup(w.leader_key)) {
          w.leader_was_cached = true;
          w.leader_cached_ok = *hit;
        } else if (const auto slot = leader_slots.find(w.leader_key);
                   slot != leader_slots.end()) {
          w.leader_check = slot->second;
        } else {
          const ReplicaId leader =
              leader_of(m.proposal.view + ctx_.leader_offset, ctx_.n);
          w.leader_check = add_check(leader, w.leader_msg,
                                     m.proposal.leader_sig);
          leader_slots.emplace(w.leader_key, w.leader_check);
        }
        w.sender_msg = m.signing_bytes(t.tag);
        w.sender_check = add_check(m.sender, w.sender_msg, m.sender_sig);
      }
      works.push_back(std::move(w));
    }
  }
  if (works.empty()) return;

  // One combined random-linear-combination check across every signature
  // this claim needs — messages from many concurrent SMR slots share the
  // MSM. On failure (≥ 1 bad signature somewhere) fall back to per-item
  // verification so every cached verdict stays exact.
  const bool all_ok = checks.empty() || ctx_.suite->verify_batch(checks);
  const auto check_ok = [&](int idx) {
    return all_ok || ctx_.suite->verify(checks[idx].public_key,
                                        checks[idx].message,
                                        checks[idx].signature);
  };

  for (const Work& w : works) {
    const VerifyTask& t = *w.task;
    bool ok;
    if (t.kind == VerifyTask::Kind::kSignedBytes) {
      ok = check_ok(w.signed_check);
    } else {
      const bool leader_ok =
          w.leader_was_cached ? w.leader_cached_ok : check_ok(w.leader_check);
      if (!w.leader_was_cached) cache_->store(w.leader_key, leader_ok);
      // VRF only when the signatures hold — the verdict is the same either
      // way (logical AND) and the sample expansion is not free.
      ok = leader_ok && check_ok(w.sender_check) &&
           phase_vrf_ok(ctx_, t.tag, *t.phase);
    }
    cache_->store(t.key, ok);
  }
}

}  // namespace probft::core
