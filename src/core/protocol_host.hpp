// The single replica-facing I/O surface shared by every protocol.
//
// A replica is a pure message-driven state machine: everything it does to
// the outside world goes through this one struct — point-to-point sends,
// broadcasts, timer arming for the view synchronizer, and the
// decision/commit upcalls. The host decides what those callbacks mean:
// the simulation harness wires them to the deterministic in-process
// network, the TCP backend wires them to real sockets and the monotonic
// clock, and unit tests wire them to in-memory outboxes. Protocol code is
// identical in all three worlds (sans-I/O layering).
//
// This replaces the four per-protocol `Hooks` structs that used to live in
// core::Replica, pbft::PbftReplica, hotstuff::HotStuffReplica and
// smr::SmrReplica — one host type, four consumers.
#pragma once

#include <cstdint>
#include <functional>

#include "common/bytes.hpp"
#include "common/types.hpp"
#include "sync/synchronizer.hpp"

namespace probft::core {

struct ProtocolHost {
  /// Point-to-point send to replica `to` (1-based).
  std::function<void(ReplicaId to, std::uint8_t tag, const Bytes&)> send;
  /// Broadcast to all replicas except self.
  std::function<void(std::uint8_t tag, const Bytes&)> broadcast;
  /// Timer facility for the synchronizer: schedule a callback after a
  /// delay (virtual time in the simulator, monotonic clock over TCP).
  sync::Synchronizer::TimerSetter set_timer;
  /// Single-shot decision callback (view, value); optional. Used by the
  /// consensus protocols (ProBFT / PBFT / HotStuff).
  std::function<void(View, const Bytes&)> on_decide;
  /// Log commit callback (slot, command), called in slot order; optional.
  /// Used by the SMR layer instead of on_decide.
  std::function<void(std::uint64_t, const Bytes&)> on_commit;
};

}  // namespace probft::core
