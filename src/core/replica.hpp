// ProBFT replica (paper §3.2, Algorithm 1).
//
// The replica is a pure state machine: it consumes (sender, tag, bytes) and
// emits sends/broadcasts/timers through an injected core::ProtocolHost, so
// unit tests can drive it directly while the simulation harness and the TCP
// backend wire it to their respective networks. One instance solves one
// single-shot consensus.
//
// Protocol recap (normal case):
//   1. Leader broadcasts ⟨Propose, ⟨v,x⟩, M⟩ (M = NewLeader justification,
//      empty in view 1).
//   2. On a safe proposal, a replica votes: it draws its VRF prepare sample
//      S_p (seed v‖"prepare", size s = o·q) and multicasts
//      ⟨Prepare, ⟨v,x⟩, S_p, P_p⟩.
//   3. On a probabilistic quorum of q = l·√n valid matching Prepares (each
//      listing this replica in its sample), the replica *prepares* x, saves
//      the certificate, draws S_c (seed v‖"commit") and multicasts Commit.
//   4. On a probabilistic quorum of q valid matching Commits it decides.
//
// Equivocation defense (lines 23-25): any message carrying a leader-signed
// tuple ⟨v,x'⟩ with x' different from the value this replica voted for in v
// blocks the view and gossips both conflicting leader-signed tuples.
//
// View change: on entering v+1 the replica sends ⟨NewLeader⟩ with its
// latest prepared value+certificate to the new leader, which collects a
// deterministic quorum ⌈(n+f+1)/2⌉ and re-proposes the value prepared in
// the highest view by the most replicas (mode); followers re-check that
// computation via safeProposal.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <unordered_map>

#include "common/bytes.hpp"
#include "common/types.hpp"
#include "core/messages.hpp"
#include "core/protocol_host.hpp"
#include "core/verdict_cache.hpp"
#include "crypto/sampler.hpp"
#include "crypto/suite.hpp"
#include "sync/synchronizer.hpp"

namespace probft::core {

/// Minimal node interface shared by honest and Byzantine implementations.
class INode {
 public:
  virtual ~INode() = default;
  virtual void start() = 0;
  virtual void on_message(ReplicaId from, std::uint8_t tag,
                          const Bytes& payload) = 0;
};

struct ReplicaConfig {
  ReplicaId id = 0;
  std::uint32_t n = 0;
  std::uint32_t f = 0;
  double o = 1.7;  // sample size factor: s = ceil(o * q)
  double l = 2.0;  // quorum size factor: q = ceil(l * sqrt(n))
  /// Leader-rotation offset: this instance's leader for view v is
  /// leader_of(v + leader_offset, n). Sharded SMR gives each consensus
  /// group a distinct offset so S groups spread their view-1 leaders
  /// across the fleet instead of all landing on replica 1. Default 0 is
  /// the paper's schedule. Every replica of one instance (and its verify
  /// pool, via PreverifyContext) must agree on the offset.
  View leader_offset = 0;
  Bytes my_value;  // myValue(): this replica's own proposal
  /// Application-level valid() predicate; default accepts non-empty values.
  std::function<bool(const Bytes&)> valid;
  /// Freeze the synchronizer after deciding (lets simulations drain).
  bool stop_sync_on_decide = false;
  /// Verification fast path: memoize signature/VRF verdicts by content
  /// digest and resolve justification certificates through the suite's
  /// batch verifier. Semantically transparent (verdicts are content-
  /// deterministic); disable to get the naive re-verify-everything path,
  /// e.g. for fast-vs-slow determinism checks and benches.
  bool fast_verify = true;

  const crypto::CryptoSuite* suite = nullptr;
  Bytes secret_key;
  crypto::PublicKeyDir public_keys;  // 1-based; [0] unused; shared storage

  /// Optional shared verdict cache. Null (the default, and what the
  /// simulator always uses) gives the replica a private unsynchronized
  /// cache — exactly the pre-sharing behavior. Hosts running a
  /// core::VerifyPool pass the pool's thread-safe cache here so worker
  /// threads pre-warm the verdicts this replica then hits; SMR fleets
  /// additionally share one cache across all per-slot instances.
  std::shared_ptr<VerdictCache> verdicts;

  [[nodiscard]] std::uint32_t q() const;           // probabilistic quorum
  [[nodiscard]] std::uint32_t sample_size() const; // s = ceil(o q), <= n
  [[nodiscard]] std::uint32_t det_quorum() const;  // ceil((n+f+1)/2)
};

class Replica : public INode {
 public:
  Replica(ReplicaConfig config, sync::SyncConfig sync_config,
          ProtocolHost host);

  void start() override;
  void on_message(ReplicaId from, std::uint8_t tag,
                  const Bytes& payload) override;

  // ---- inspection (tests / harness) ----
  [[nodiscard]] bool decided() const { return decided_.has_value(); }
  [[nodiscard]] const Bytes& decided_value() const { return decided_->value; }
  [[nodiscard]] View decided_view() const { return decided_->view; }
  [[nodiscard]] View current_view() const { return cur_view_; }
  [[nodiscard]] bool view_blocked() const { return block_view_; }
  [[nodiscard]] bool voted() const { return voted_; }
  [[nodiscard]] View prepared_view() const { return prepared_view_; }
  [[nodiscard]] const Bytes& prepared_value() const { return prepared_value_; }
  [[nodiscard]] const ReplicaConfig& config() const { return cfg_; }

  // ---- predicates (exposed for tests; paper §3.2) ----
  [[nodiscard]] bool safe_proposal(const ProposeMsg& m) const;
  [[nodiscard]] bool valid_new_leader(const NewLeaderMsg& m) const;
  /// prepared(cert, view, val, j): cert is a valid prepared certificate
  /// for (view, val) addressed to replica j.
  [[nodiscard]] bool prepared_cert_valid(const std::vector<PhaseMsgPtr>& cert,
                                         View view, const Bytes& val,
                                         ReplicaId j) const;

 private:
  struct Decision {
    View view;
    Bytes value;
  };
  using ValueKey = std::pair<View, Bytes>;  // (view, value digest)

  void enter_view(View v);
  void handle_propose(const Bytes& raw);
  void handle_phase(MsgTag tag, const Bytes& raw);
  void handle_new_leader(const Bytes& raw);
  void handle_wish(ReplicaId from, const Bytes& raw);

  void try_vote();            // lines 13-16 on the buffered proposal
  void try_lead();            // lines 6-12 once a det. quorum arrived
  void try_prepare_quorum();  // lines 17-20
  void try_commit_quorum();   // lines 21-22
  void decide(const Bytes& value);

  /// Lines 23-25: returns true (and blocks/gossips) on leader equivocation.
  bool check_equivocation(const SignedProposal& p, std::uint8_t tag,
                          const Bytes& raw);

  /// Rotation with cfg_.leader_offset applied (see ReplicaConfig).
  [[nodiscard]] ReplicaId leader_for(View v) const {
    return leader_of(v + cfg_.leader_offset, cfg_.n);
  }
  [[nodiscard]] bool verify_leader_sig(const SignedProposal& p) const;
  /// The Propose sender signature, memoized under 'R' when fast_verify is
  /// on (lets the verify pool pre-warm it).
  [[nodiscard]] bool propose_sender_sig_ok(const ProposeMsg& m) const;
  [[nodiscard]] bool verify_phase_msg(MsgTag tag, const PhaseMsg& m,
                                      ReplicaId addressee) const;
  /// The addressee-independent expensive part of verify_phase_msg (leader
  /// signature + sender signature + VRF sample proof), memoized under the
  /// message's content digest.
  [[nodiscard]] bool phase_full_ok(MsgTag tag, const PhaseMsg& m) const;
  [[nodiscard]] bool phase_vrf_ok(MsgTag tag, const PhaseMsg& m) const;
  [[nodiscard]] bool new_leader_sig_ok(const NewLeaderMsg& m) const;
  /// Batch-resolves every signature check referenced by `msgs` that is not
  /// already cached (one suite verify_batch call), then caches per-item
  /// verdicts so the subsequent per-message walk is all cache hits.
  void prefetch_new_leaders(const std::vector<const NewLeaderMsg*>& msgs,
                            bool include_sender_sigs) const;
  [[nodiscard]] std::optional<bool> cache_lookup(const Bytes& key) const;
  void cache_store(Bytes key, bool ok) const;
  [[nodiscard]] Bytes value_digest(const Bytes& value) const;
  void send_new_leader();
  void multicast_phase(MsgTag tag, const std::vector<ReplicaId>& sample,
                       const Bytes& payload);

  ReplicaConfig cfg_;
  ProtocolHost host_;
  std::unique_ptr<sync::Synchronizer> synchronizer_;

  // Algorithm 1 per-view state.
  View cur_view_ = 0;
  Bytes cur_val_;
  bool voted_ = false;
  bool block_view_ = false;
  std::optional<ProposeMsg> proposal_;  // the accepted Propose
  bool proposed_this_view_ = false;     // leader: sent Propose already
  bool committed_this_view_ = false;    // sent Commit already

  // Cross-view prepared state (survives view changes).
  View prepared_view_ = 0;
  Bytes prepared_value_;
  std::vector<PhaseMsgPtr> prepared_cert_;

  std::optional<Decision> decided_;

  // Collections. Phase messages are buffered even before the replica can
  // process them (they may arrive ahead of the Propose).
  std::map<ValueKey, std::map<ReplicaId, PhaseMsg>> prepares_;
  std::map<ValueKey, std::map<ReplicaId, PhaseMsg>> commits_;
  std::map<View, std::map<ReplicaId, NewLeaderMsg>> new_leader_msgs_;
  std::map<View, ProposeMsg> pending_proposes_;

  // Content-addressed verification cache (the O(n²√n) justification wall:
  // one multicast Prepare appears in ~q overlapping certificates, so the
  // same signature/VRF proof used to be re-verified once per referencing
  // NewLeader message). The cache class itself (keys, capacity, optional
  // thread safety) lives in core/verdict_cache.hpp; this is either the
  // injected shared instance (cfg_.verdicts) or a private one.
  std::shared_ptr<VerdictCache> cache_;
};

/// Wire helper: MsgTag as the network tag byte.
[[nodiscard]] constexpr std::uint8_t tag_byte(MsgTag tag) {
  return static_cast<std::uint8_t>(tag);
}

}  // namespace probft::core
