#include "core/verdict_cache.hpp"

#include <utility>

#include "crypto/sha256.hpp"

namespace probft::core {

std::optional<bool> VerdictCache::lookup(const Bytes& key) const {
  if (thread_safe_) {
    SharedReaderLock lock(mu_);
    return lookup_locked(key);
  }
  mu_.assert_held();  // single-owner mode: the owning thread is the lock
  return lookup_locked(key);
}

bool VerdictCache::contains(const Bytes& key) const {
  if (thread_safe_) {
    SharedReaderLock lock(mu_);
    return contains_locked(key);
  }
  mu_.assert_held();
  return contains_locked(key);
}

void VerdictCache::store(Bytes key, bool ok) {
  if (thread_safe_) {
    SharedWriterLock lock(mu_);
    store_locked(std::move(key), ok);
    return;
  }
  mu_.assert_held();
  store_locked(std::move(key), ok);
}

std::optional<bool> VerdictCache::lookup_locked(const Bytes& key) const {
  const auto it = map_.find(key);
  if (it == map_.end()) return std::nullopt;
  return it->second;
}

bool VerdictCache::contains_locked(const Bytes& key) const {
  return map_.contains(key);
}

void VerdictCache::store_locked(Bytes key, bool ok) {
  if (map_.size() >= kCap) map_.clear();
  map_.emplace(std::move(key), ok);
}

Bytes VerdictCache::signed_key(char kind, ByteSpan message,
                               const Bytes& sig) {
  crypto::Sha256 h;
  std::uint8_t head[9];
  head[0] = static_cast<std::uint8_t>(kind);
  const std::uint64_t len = message.size();
  for (int i = 0; i < 8; ++i) {
    head[1 + i] = static_cast<std::uint8_t>(len >> (8 * i));
  }
  h.update(ByteSpan(head, sizeof(head)));
  h.update(message);
  h.update(ByteSpan(sig.data(), sig.size()));
  const auto digest = h.finalize();
  return Bytes(digest.begin(), digest.end());
}

Bytes VerdictCache::digest_key(const Bytes& digest, char kind,
                               std::uint8_t tag) {
  Bytes key = digest;
  key.push_back(static_cast<std::uint8_t>(kind));
  key.push_back(tag);
  return key;
}

}  // namespace probft::core
