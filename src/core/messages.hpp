// ProBFT wire messages (paper Algorithm 1).
//
// Message kinds:
//   Propose   — ⟨Propose, ⟨v,x⟩_leader, M⟩_leader, where M is the
//               justification set of NewLeader messages (empty in view 1).
//   Prepare   — ⟨Prepare, ⟨v,x⟩_leader, S_p, P_p⟩_i  (multicast to S_p)
//   Commit    — ⟨Commit,  ⟨v,x⟩_leader, S_c, P_c⟩_i  (multicast to S_c)
//   NewLeader — ⟨NewLeader, v, preparedView, preparedVal, cert⟩_i
//   Wish      — synchronizer view wishes.
//
// Every message is signed by its sender over a domain-separated encoding of
// its content; the proposal tuple ⟨v,x⟩ additionally carries the leader's
// signature so that any replica relaying a Prepare/Commit transports
// transferable evidence of what the leader proposed (this is what makes the
// equivocation check of Alg. 1 lines 23-25 work on relayed messages).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "common/bytes.hpp"
#include "common/codec.hpp"
#include "common/types.hpp"
#include "net/tags.hpp"

namespace probft::core {

enum class MsgTag : std::uint8_t {
  kPropose = net::tags::kPropose,
  kPrepare = net::tags::kPrepare,
  kCommit = net::tags::kCommit,
  kNewLeader = net::tags::kNewLeader,
  kWish = net::tags::kWish,
};

/// The leader-signed proposal tuple ⟨v, x⟩_leader.
struct SignedProposal {
  View view = 0;
  Bytes value;
  Bytes leader_sig;

  void encode(Writer& w) const;
  static SignedProposal decode(Reader& r);
  /// The byte string the leader signs.
  [[nodiscard]] static Bytes signing_bytes(View view, ByteSpan value);

  friend bool operator==(const SignedProposal&,
                         const SignedProposal&) = default;
};

/// Shared shape of Prepare and Commit messages; `phase` disambiguates the
/// VRF seed ("prepare" vs "commit") and the signature domain.
struct PhaseMsg {
  SignedProposal proposal;
  std::vector<ReplicaId> sample;  // S: VRF-selected recipients
  Bytes vrf_proof;                // P
  ReplicaId sender = 0;
  Bytes sender_sig;
  /// Lazily-computed SHA-256 of the full wire encoding (signature
  /// included); copies carry it along. The replica's verification cache
  /// keys on it, so a multicast Prepare referenced by many overlapping
  /// certificates is hashed once, not once per reference. Not part of the
  /// wire format; treat as content_digest()'s private memo. CAUTION: code
  /// that mutates any field after the digest was computed (tests crafting
  /// adversarial messages) must clear the memo, or the stale digest will
  /// alias the original message's cached verdict. Wire-decoded messages
  /// are never mutated, so the protocol paths cannot go stale.
  mutable Bytes digest_memo_;

  void encode(Writer& w) const;
  static PhaseMsg decode(Reader& r);
  [[nodiscard]] Bytes signing_bytes(MsgTag tag) const;
  [[nodiscard]] Bytes to_bytes() const;
  static PhaseMsg from_bytes(ByteSpan data);
  [[nodiscard]] const Bytes& content_digest() const;
};

/// Shared immutable handle to a certificate member. Certificates inside a
/// justification overlap heavily (one multicast Prepare lands in every
/// sample member's certificate), so certs hold shared pointers: decoding a
/// Propose materializes each distinct PhaseMsg once and the per-cert
/// entries are pointer copies, not O(n·√n) deep copies. Treat the pointee
/// as immutable — tests that want to tamper with a member must clone it
/// (std::make_shared<PhaseMsg>(*ptr)) and swap the pointer.
using PhaseMsgPtr = std::shared_ptr<const PhaseMsg>;

/// ⟨NewLeader, v, preparedView, preparedVal, cert⟩_sender. A prepared
/// certificate is the probabilistic quorum of Prepare messages this sender
/// collected (empty when it never prepared: preparedView == 0).
struct NewLeaderMsg {
  View view = 0;           // the view being entered
  View prepared_view = 0;  // 0 encodes "never prepared" (⊥)
  Bytes prepared_value;    // empty when prepared_view == 0
  std::vector<PhaseMsgPtr> cert;
  ReplicaId sender = 0;
  Bytes sender_sig;
  /// Same contract as PhaseMsg::digest_memo_.
  mutable Bytes digest_memo_;

  void encode(Writer& w) const;
  static NewLeaderMsg decode(Reader& r);
  [[nodiscard]] Bytes signing_bytes() const;
  [[nodiscard]] Bytes to_bytes() const;
  static NewLeaderMsg from_bytes(ByteSpan data);
  [[nodiscard]] const Bytes& content_digest() const;
};

/// ⟨Propose, ⟨v,x⟩_leader, M⟩_leader.
///
/// Wire format note: the justification's prepared certificates overlap
/// heavily (one multicast Prepare appears in every sample member's cert),
/// so encode()/decode() pool the distinct PhaseMsgs once and store each
/// cert as u32 back-references into the pool. signing_bytes() is defined
/// over the flat logical content and is unaffected by the pooling.
struct ProposeMsg {
  SignedProposal proposal;
  std::vector<NewLeaderMsg> justification;  // M (empty in view 1)
  ReplicaId sender = 0;
  Bytes sender_sig;

  void encode(Writer& w) const;
  static ProposeMsg decode(Reader& r);
  [[nodiscard]] Bytes signing_bytes() const;
  [[nodiscard]] Bytes to_bytes() const;
  static ProposeMsg from_bytes(ByteSpan data);
};

/// Synchronizer wish.
struct WishMsg {
  View view = 0;
  ReplicaId sender = 0;
  Bytes sender_sig;

  void encode(Writer& w) const;
  static WishMsg decode(Reader& r);
  [[nodiscard]] Bytes signing_bytes() const;
  [[nodiscard]] Bytes to_bytes() const;
  static WishMsg from_bytes(ByteSpan data);
};

}  // namespace probft::core
