#include "core/messages.hpp"

#include <cstring>
#include <map>

#include "crypto/sha256.hpp"

namespace probft::core {

namespace {

void encode_id_list(Writer& w, const std::vector<ReplicaId>& ids) {
  w.vec(ids, [](Writer& out, ReplicaId id) { out.u32(id); });
}

std::vector<ReplicaId> decode_id_list(Reader& r) {
  return r.vec<ReplicaId>([](Reader& in) { return in.u32(); });
}

}  // namespace

// ---------------- SignedProposal ----------------

void SignedProposal::encode(Writer& w) const {
  w.u64(view);
  w.bytes(value);
  w.bytes(leader_sig);
}

SignedProposal SignedProposal::decode(Reader& r) {
  SignedProposal out;
  out.view = r.u64();
  out.value = r.bytes();
  out.leader_sig = r.bytes();
  return out;
}

Bytes SignedProposal::signing_bytes(View view, ByteSpan value) {
  Writer w;
  w.str("probft/proposal");
  w.u64(view);
  w.bytes(value);
  return std::move(w).take();
}

// ---------------- PhaseMsg ----------------

void PhaseMsg::encode(Writer& w) const {
  proposal.encode(w);
  encode_id_list(w, sample);
  w.bytes(vrf_proof);
  w.u32(sender);
  w.bytes(sender_sig);
}

PhaseMsg PhaseMsg::decode(Reader& r) {
  PhaseMsg out;
  out.proposal = SignedProposal::decode(r);
  out.sample = decode_id_list(r);
  out.vrf_proof = r.bytes();
  out.sender = r.u32();
  out.sender_sig = r.bytes();
  return out;
}

Bytes PhaseMsg::signing_bytes(MsgTag tag) const {
  Writer w;
  w.str(tag == MsgTag::kPrepare ? "probft/prepare" : "probft/commit");
  proposal.encode(w);
  encode_id_list(w, sample);
  w.bytes(vrf_proof);
  w.u32(sender);
  return std::move(w).take();
}

Bytes PhaseMsg::to_bytes() const {
  Writer w;
  encode(w);
  return std::move(w).take();
}

PhaseMsg PhaseMsg::from_bytes(ByteSpan data) {
  Reader r(data);
  auto out = decode(r);
  r.expect_exhausted();
  return out;
}

const Bytes& PhaseMsg::content_digest() const {
  if (digest_memo_.empty()) {
    const Bytes enc = to_bytes();
    digest_memo_ = crypto::sha256(ByteSpan(enc.data(), enc.size()));
  }
  return digest_memo_;
}

// ---------------- NewLeaderMsg ----------------

namespace {

/// The one place that knows NewLeaderMsg's field order. The certificate is
/// written/read through the callbacks because the same layout is used with
/// two cert representations: inline PhaseMsgs (standalone wire messages)
/// and u32 back-references into a pool (inside a ProposeMsg).
template <typename CertWriter>
void encode_new_leader_body(Writer& w, const NewLeaderMsg& m,
                            CertWriter&& write_cert) {
  w.u64(m.view);
  w.u64(m.prepared_view);
  w.bytes(m.prepared_value);
  write_cert(w, m.cert);
  w.u32(m.sender);
  w.bytes(m.sender_sig);
}

template <typename CertReader>
NewLeaderMsg decode_new_leader_body(Reader& r, CertReader&& read_cert) {
  NewLeaderMsg out;
  out.view = r.u64();
  out.prepared_view = r.u64();
  out.prepared_value = r.bytes();
  out.cert = read_cert(r);
  out.sender = r.u32();
  out.sender_sig = r.bytes();
  return out;
}

void encode_cert_inline(Writer& w, const std::vector<PhaseMsgPtr>& cert) {
  w.vec(cert, [](Writer& out, const PhaseMsgPtr& m) { m->encode(out); });
}

std::vector<PhaseMsgPtr> decode_cert_inline(Reader& r) {
  return r.vec<PhaseMsgPtr>(
      [](Reader& in) {
        return std::make_shared<PhaseMsg>(PhaseMsg::decode(in));
      },
      4096);
}

}  // namespace

void NewLeaderMsg::encode(Writer& w) const {
  encode_new_leader_body(w, *this, encode_cert_inline);
}

NewLeaderMsg NewLeaderMsg::decode(Reader& r) {
  return decode_new_leader_body(r, decode_cert_inline);
}

Bytes NewLeaderMsg::signing_bytes() const {
  // The certificate is covered through its members' content digests, not
  // the flat encoding: the digests are memoized on the PhaseMsg objects,
  // so building (and hashing) the signed string is O(q·32) bytes instead
  // of re-serializing O(q) full Prepare messages — this string is rebuilt
  // on every verification, which made the flat form a justification-path
  // hot spot. Collision resistance of SHA-256 keeps the signature binding.
  Writer w;
  w.str("probft/newleader");
  w.u64(view);
  w.u64(prepared_view);
  w.bytes(prepared_value);
  w.vec(cert, [](Writer& out, const PhaseMsgPtr& m) {
    const Bytes& d = m->content_digest();
    out.bytes(ByteSpan(d.data(), d.size()));
  });
  w.u32(sender);
  return std::move(w).take();
}

Bytes NewLeaderMsg::to_bytes() const {
  Writer w;
  encode(w);
  return std::move(w).take();
}

NewLeaderMsg NewLeaderMsg::from_bytes(ByteSpan data) {
  Reader r(data);
  auto out = decode(r);
  r.expect_exhausted();
  return out;
}

const Bytes& NewLeaderMsg::content_digest() const {
  // signing_bytes() already binds every field (certs via their digests);
  // appending the sender signature makes the digest cover the full message
  // without re-serializing the certificate payload.
  if (digest_memo_.empty()) {
    Writer w;
    w.str("probft/newleader-digest");
    w.bytes(signing_bytes());
    w.bytes(sender_sig);
    const Bytes enc = std::move(w).take();
    digest_memo_ = crypto::sha256(ByteSpan(enc.data(), enc.size()));
  }
  return digest_memo_;
}

// ---------------- ProposeMsg ----------------

namespace {

/// Upper bound on distinct pooled cert entries in one Propose (each correct
/// replica contributes at most one Prepare per view, so the pool is O(n)).
constexpr std::size_t kCertPoolLimit = 1 << 16;

}  // namespace

void ProposeMsg::encode(Writer& w) const {
  proposal.encode(w);
  // Wire-level certificate dedup: a Prepare multicast to its VRF sample
  // lands verbatim in every sample member's prepared certificate, so the
  // NewLeader messages inside a justification overlap in O(q) PhaseMsgs
  // each. The wire format therefore carries each distinct PhaseMsg once in
  // a pool (first-appearance order) and encodes every cert as u32
  // back-references into it. signing_bytes() stays defined over the flat
  // logical content, so signatures are independent of this compression.
  // Dedup by memoized content digest: decoded justifications share one
  // pointer per distinct message, but a leader assembles its set from
  // independently-decoded NewLeader messages, so equal content can live
  // behind distinct pointers.
  std::map<Bytes, std::uint32_t, BytesLess> index_of;  // digest -> index
  std::vector<const PhaseMsg*> pool;
  std::vector<std::vector<std::uint32_t>> refs(justification.size());
  for (std::size_t i = 0; i < justification.size(); ++i) {
    refs[i].reserve(justification[i].cert.size());
    for (const PhaseMsgPtr& pm : justification[i].cert) {
      auto [it, inserted] = index_of.try_emplace(
          pm->content_digest(), static_cast<std::uint32_t>(pool.size()));
      if (inserted) pool.push_back(pm.get());
      refs[i].push_back(it->second);
    }
  }
  w.u32(static_cast<std::uint32_t>(pool.size()));
  for (const PhaseMsg* pm : pool) pm->encode(w);
  w.u32(static_cast<std::uint32_t>(justification.size()));
  for (std::size_t i = 0; i < justification.size(); ++i) {
    encode_new_leader_body(
        w, justification[i],
        [&refs, i](Writer& out, const std::vector<PhaseMsgPtr>&) {
          out.vec(refs[i],
                  [](Writer& o, std::uint32_t idx) { o.u32(idx); });
        });
  }
  w.u32(sender);
  w.bytes(sender_sig);
}

ProposeMsg ProposeMsg::decode(Reader& r) {
  ProposeMsg out;
  out.proposal = SignedProposal::decode(r);
  // Every cert below shares the pool pointer, so the lazily-memoized
  // content digest (the verification-cache key) is computed at most once
  // per distinct PhaseMsg per Propose — and not at all for messages the
  // replica rejects before verifying.
  const auto pool = r.vec<PhaseMsgPtr>(
      [](Reader& in) {
        return std::make_shared<PhaseMsg>(PhaseMsg::decode(in));
      },
      kCertPoolLimit);
  out.justification = r.vec<NewLeaderMsg>(
      [&pool](Reader& in) {
        return decode_new_leader_body(in, [&pool](Reader& rr) {
          const auto refs = rr.vec<std::uint32_t>(
              [](Reader& r2) { return r2.u32(); }, 4096);
          std::vector<PhaseMsgPtr> cert;
          cert.reserve(refs.size());
          for (const std::uint32_t idx : refs) {
            if (idx >= pool.size()) {
              throw CodecError("propose: cert back-reference out of range");
            }
            cert.push_back(pool[idx]);
          }
          return cert;
        });
      },
      4096);
  out.sender = r.u32();
  out.sender_sig = r.bytes();
  return out;
}

Bytes ProposeMsg::signing_bytes() const {
  // As with NewLeaderMsg: the justification is bound through per-message
  // content digests, so signing/verifying a Propose is O(|M|·32) bytes
  // instead of re-serializing every embedded certificate.
  Writer w;
  w.str("probft/propose");
  proposal.encode(w);
  w.vec(justification, [](Writer& out, const NewLeaderMsg& m) {
    const Bytes& d = m.content_digest();
    out.bytes(ByteSpan(d.data(), d.size()));
  });
  w.u32(sender);
  return std::move(w).take();
}

Bytes ProposeMsg::to_bytes() const {
  Writer w;
  encode(w);
  return std::move(w).take();
}

ProposeMsg ProposeMsg::from_bytes(ByteSpan data) {
  Reader r(data);
  auto out = decode(r);
  r.expect_exhausted();
  return out;
}

// ---------------- WishMsg ----------------

void WishMsg::encode(Writer& w) const {
  w.u64(view);
  w.u32(sender);
  w.bytes(sender_sig);
}

WishMsg WishMsg::decode(Reader& r) {
  WishMsg out;
  out.view = r.u64();
  out.sender = r.u32();
  out.sender_sig = r.bytes();
  return out;
}

Bytes WishMsg::signing_bytes() const {
  Writer w;
  w.str("probft/wish");
  w.u64(view);
  w.u32(sender);
  return std::move(w).take();
}

Bytes WishMsg::to_bytes() const {
  Writer w;
  encode(w);
  return std::move(w).take();
}

WishMsg WishMsg::from_bytes(ByteSpan data) {
  Reader r(data);
  auto out = decode(r);
  r.expect_exhausted();
  return out;
}

}  // namespace probft::core
