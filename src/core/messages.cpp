#include "core/messages.hpp"

namespace probft::core {

namespace {

void encode_id_list(Writer& w, const std::vector<ReplicaId>& ids) {
  w.vec(ids, [](Writer& out, ReplicaId id) { out.u32(id); });
}

std::vector<ReplicaId> decode_id_list(Reader& r) {
  return r.vec<ReplicaId>([](Reader& in) { return in.u32(); });
}

}  // namespace

// ---------------- SignedProposal ----------------

void SignedProposal::encode(Writer& w) const {
  w.u64(view);
  w.bytes(value);
  w.bytes(leader_sig);
}

SignedProposal SignedProposal::decode(Reader& r) {
  SignedProposal out;
  out.view = r.u64();
  out.value = r.bytes();
  out.leader_sig = r.bytes();
  return out;
}

Bytes SignedProposal::signing_bytes(View view, ByteSpan value) {
  Writer w;
  w.str("probft/proposal");
  w.u64(view);
  w.bytes(value);
  return std::move(w).take();
}

// ---------------- PhaseMsg ----------------

void PhaseMsg::encode(Writer& w) const {
  proposal.encode(w);
  encode_id_list(w, sample);
  w.bytes(vrf_proof);
  w.u32(sender);
  w.bytes(sender_sig);
}

PhaseMsg PhaseMsg::decode(Reader& r) {
  PhaseMsg out;
  out.proposal = SignedProposal::decode(r);
  out.sample = decode_id_list(r);
  out.vrf_proof = r.bytes();
  out.sender = r.u32();
  out.sender_sig = r.bytes();
  return out;
}

Bytes PhaseMsg::signing_bytes(MsgTag tag) const {
  Writer w;
  w.str(tag == MsgTag::kPrepare ? "probft/prepare" : "probft/commit");
  proposal.encode(w);
  encode_id_list(w, sample);
  w.bytes(vrf_proof);
  w.u32(sender);
  return std::move(w).take();
}

Bytes PhaseMsg::to_bytes() const {
  Writer w;
  encode(w);
  return std::move(w).take();
}

PhaseMsg PhaseMsg::from_bytes(ByteSpan data) {
  Reader r(data);
  auto out = decode(r);
  r.expect_exhausted();
  return out;
}

// ---------------- NewLeaderMsg ----------------

void NewLeaderMsg::encode(Writer& w) const {
  w.u64(view);
  w.u64(prepared_view);
  w.bytes(prepared_value);
  w.vec(cert, [](Writer& out, const PhaseMsg& m) { m.encode(out); });
  w.u32(sender);
  w.bytes(sender_sig);
}

NewLeaderMsg NewLeaderMsg::decode(Reader& r) {
  NewLeaderMsg out;
  out.view = r.u64();
  out.prepared_view = r.u64();
  out.prepared_value = r.bytes();
  out.cert =
      r.vec<PhaseMsg>([](Reader& in) { return PhaseMsg::decode(in); }, 4096);
  out.sender = r.u32();
  out.sender_sig = r.bytes();
  return out;
}

Bytes NewLeaderMsg::signing_bytes() const {
  Writer w;
  w.str("probft/newleader");
  w.u64(view);
  w.u64(prepared_view);
  w.bytes(prepared_value);
  w.vec(cert, [](Writer& out, const PhaseMsg& m) { m.encode(out); });
  w.u32(sender);
  return std::move(w).take();
}

Bytes NewLeaderMsg::to_bytes() const {
  Writer w;
  encode(w);
  return std::move(w).take();
}

NewLeaderMsg NewLeaderMsg::from_bytes(ByteSpan data) {
  Reader r(data);
  auto out = decode(r);
  r.expect_exhausted();
  return out;
}

// ---------------- ProposeMsg ----------------

void ProposeMsg::encode(Writer& w) const {
  proposal.encode(w);
  w.vec(justification,
        [](Writer& out, const NewLeaderMsg& m) { m.encode(out); });
  w.u32(sender);
  w.bytes(sender_sig);
}

ProposeMsg ProposeMsg::decode(Reader& r) {
  ProposeMsg out;
  out.proposal = SignedProposal::decode(r);
  out.justification = r.vec<NewLeaderMsg>(
      [](Reader& in) { return NewLeaderMsg::decode(in); }, 4096);
  out.sender = r.u32();
  out.sender_sig = r.bytes();
  return out;
}

Bytes ProposeMsg::signing_bytes() const {
  Writer w;
  w.str("probft/propose");
  proposal.encode(w);
  w.vec(justification,
        [](Writer& out, const NewLeaderMsg& m) { m.encode(out); });
  w.u32(sender);
  return std::move(w).take();
}

Bytes ProposeMsg::to_bytes() const {
  Writer w;
  encode(w);
  return std::move(w).take();
}

ProposeMsg ProposeMsg::from_bytes(ByteSpan data) {
  Reader r(data);
  auto out = decode(r);
  r.expect_exhausted();
  return out;
}

// ---------------- WishMsg ----------------

void WishMsg::encode(Writer& w) const {
  w.u64(view);
  w.u32(sender);
  w.bytes(sender_sig);
}

WishMsg WishMsg::decode(Reader& r) {
  WishMsg out;
  out.view = r.u64();
  out.sender = r.u32();
  out.sender_sig = r.bytes();
  return out;
}

Bytes WishMsg::signing_bytes() const {
  Writer w;
  w.str("probft/wish");
  w.u64(view);
  w.u32(sender);
  return std::move(w).take();
}

Bytes WishMsg::to_bytes() const {
  Writer w;
  encode(w);
  return std::move(w).take();
}

WishMsg WishMsg::from_bytes(ByteSpan data) {
  Reader r(data);
  auto out = decode(r);
  r.expect_exhausted();
  return out;
}

}  // namespace probft::core
