// Content-addressed signature/VRF verdict cache, extracted from
// core::Replica so one cache can be shared between all per-slot SMR
// replica instances AND a verification worker pool (core/verify_pool.hpp)
// that pre-warms it off the protocol thread.
//
// Keys are SHA-256 digests over domain-separated content INCLUDING the
// signature bytes, so a Byzantine variant of an honest message can never
// alias an honest verdict; verdicts are content-deterministic, which makes
// negative caching sound too. Key kinds:
//   'L' — leader signature over a proposal tuple ⟨v,x⟩
//   'R' — a Propose message's sender signature
//   'P' — full phase-message verdict (leader sig && sender sig && VRF),
//         tagged with the phase (Prepare vs Commit VRF domain)
//   'N' — a NewLeader message's sender signature
//
// Thread safety is opt-in per instance: the default-constructed cache is
// unsynchronized (zero overhead — what the single-threaded simulator and
// plain replicas use), while `VerdictCache(/*thread_safe=*/true)` guards
// the map with a shared_mutex so pool workers can store verdicts while the
// protocol thread looks them up. The verdict VALUES are deterministic
// functions of the key, so racing writers are benign: both store the same
// bit and lookups never observe a wrong verdict, only a miss.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <unordered_map>

#include "common/annotations.hpp"
#include "common/bytes.hpp"
#include "common/mutex.hpp"

namespace probft::core {

class VerdictCache {
 public:
  /// Digests are uniform: fold the first 8 bytes. Exposed so callers
  /// building "seen this round" sets can reuse the same hash.
  struct DigestHash {
    std::size_t operator()(const Bytes& digest) const noexcept {
      std::size_t h = 0;
      for (std::size_t i = 0; i < sizeof(h) && i < digest.size(); ++i) {
        h = (h << 8) | digest[i];
      }
      return h;
    }
  };

  explicit VerdictCache(bool thread_safe = false)
      : thread_safe_(thread_safe) {}

  /// True when this instance synchronizes map access internally and may
  /// safely be shared across threads (e.g. handed to a VerifyPool).
  [[nodiscard]] bool thread_safe() const noexcept { return thread_safe_; }

  [[nodiscard]] std::optional<bool> lookup(const Bytes& key) const;
  [[nodiscard]] bool contains(const Bytes& key) const;
  void store(Bytes key, bool ok);

  /// Size bound; clearing wholesale keeps the fast path deterministic (an
  /// LRU's behavior would depend on hash iteration order).
  static constexpr std::size_t kCap = 1 << 20;

  // ---- key construction (shared by Replica and VerifyPool — the two
  // sides MUST agree byte-for-byte or pre-warmed verdicts never hit) ----

  /// kind byte ‖ u64-LE message length ‖ message ‖ signature, hashed. The
  /// length prefix removes any message/sig boundary ambiguity; the kind
  /// byte domain-separates the verdict families.
  [[nodiscard]] static Bytes signed_key(char kind, ByteSpan message,
                                        const Bytes& sig);
  /// Key from a message's memoized content digest (covers signature and
  /// all fields): digest ‖ kind ‖ tag. No hashing on this path — the hot
  /// loops reference the same few hundred distinct messages thousands of
  /// times, so the key must cost a lookup, not an encode.
  [[nodiscard]] static Bytes digest_key(const Bytes& digest, char kind,
                                        std::uint8_t tag);

 private:
  // The map is touched only through these; the public entry points either
  // really take mu_ (thread_safe_) or assert it (single-owner mode, where
  // the sole owning thread IS the mutual exclusion — the one construct the
  // thread-safety analysis cannot prove; see docs/STATIC_ANALYSIS.md).
  [[nodiscard]] std::optional<bool> lookup_locked(const Bytes& key) const
      PROBFT_REQUIRES_SHARED(mu_);
  [[nodiscard]] bool contains_locked(const Bytes& key) const
      PROBFT_REQUIRES_SHARED(mu_);
  void store_locked(Bytes key, bool ok) PROBFT_REQUIRES(mu_);

  const bool thread_safe_;
  mutable SharedMutex mu_;  // really locked only when thread_safe_
  std::unordered_map<Bytes, bool, DigestHash> map_ PROBFT_GUARDED_BY(mu_);
};

using VerdictCachePtr = std::shared_ptr<VerdictCache>;

}  // namespace probft::core
