// Signature-verification worker pool (the "multi-core replica" front end).
//
// The protocol loop stays single-threaded and ordered; what moves off it
// is the expensive, order-free part of message admission: decoding a
// message enough to know WHICH signatures/VRF proofs it carries, checking
// them, and memoizing the verdicts in a shared, thread-safe VerdictCache.
// The protocol thread then processes the message exactly as before — its
// verification calls all hit the warmed cache, so the semantics are
// byte-for-byte those of inline verification (verdicts are deterministic
// functions of message content; see verdict_cache.hpp).
//
//   network thread:  pool.submit(from, tag, payload)     (no crypto)
//   worker threads:  decode → preverify_tasks → CryptoSuite::verify_batch
//                    across ALL tasks claimed this round (amortizing the
//                    Straus MSM across concurrent slots, not just within
//                    one justification) → cache.store(verdicts)
//   network thread:  pool.drain(deliver) — re-injects messages into the
//                    ordered protocol loop strictly in submission order,
//                    which trivially preserves per-sender ordering.
//
// A message a worker cannot pre-verify (unknown tag, malformed payload,
// out-of-range sender) produces zero tasks and is delivered as-is: the
// replica's own handlers remain the single source of truth for rejection.
// The pool is an accelerator, never a gatekeeper — it can only ever warm
// the cache with verdicts the replica would have computed itself.
//
// threads == 0 degenerates to inline evaluation on submit(): same code
// path, no worker threads, no cross-thread handoff. The simulator never
// constructs a pool at all.
#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "common/annotations.hpp"
#include "common/bytes.hpp"
#include "common/mutex.hpp"
#include "common/types.hpp"
#include "core/messages.hpp"
#include "core/verdict_cache.hpp"
#include "crypto/suite.hpp"

namespace probft::core {

/// Everything preverification needs to know about the cluster. Mirrors the
/// corresponding ReplicaConfig fields — the derived sample_size MUST equal
/// ReplicaConfig::sample_size() or VRF verdicts will diverge from what the
/// replica computes (they would then disagree forever via the cache).
struct PreverifyContext {
  std::uint32_t n = 0;
  std::uint32_t sample_size = 0;
  /// Must mirror ReplicaConfig::leader_offset or leader-signature ('L')
  /// verdicts would be computed against the wrong key and poison the
  /// shared cache. Sharded SMR rewrites this per shard before recursing.
  View leader_offset = 0;
  const crypto::CryptoSuite* suite = nullptr;
  crypto::PublicKeyDir public_keys;  // 1-based; [0] unused; shared storage
};

/// One cacheable verification unit extracted from an inbound message.
struct VerifyTask {
  enum class Kind : std::uint8_t {
    kSignedBytes,  // one signature over owned signing bytes ('L'/'R'/'N')
    kPhaseFull,    // leader sig && sender sig && VRF for a Prepare/Commit
  };
  Kind kind = Kind::kSignedBytes;
  Bytes key;  // VerdictCache key the verdict is stored under

  // kSignedBytes:
  ReplicaId signer = 0;
  Bytes message;    // owned signing bytes (spans die with the task)
  Bytes signature;  // owned copy

  // kPhaseFull ('P' verdicts; tag selects the prepare/commit VRF domain):
  MsgTag tag = MsgTag::kPrepare;
  PhaseMsgPtr phase;
};

/// Decodes one core-protocol message and lists the verdicts it will need.
/// Stateless; mirrors Replica's verification paths key-for-key.
[[nodiscard]] std::vector<VerifyTask> preverify_tasks(
    const PreverifyContext& ctx, std::uint8_t tag, const Bytes& payload);

/// Custom extractor hook, e.g. smr::preverify_tasks strips the SMR slot
/// envelope and recurses into the core extractor.
using PreverifyFn = std::function<std::vector<VerifyTask>(
    const PreverifyContext&, std::uint8_t, const Bytes&)>;

class VerifyPool {
 public:
  /// `cache` must be thread-safe when threads > 0 (it is shared with the
  /// consuming replica on the protocol thread); passing an unsynchronized
  /// cache with workers throws std::invalid_argument — that combination is
  /// a silent data race, not a configuration. Null extract = core
  /// protocol messages (preverify_tasks above).
  VerifyPool(PreverifyContext ctx, VerdictCachePtr cache, unsigned threads,
             PreverifyFn extract = {});
  ~VerifyPool();

  VerifyPool(const VerifyPool&) = delete;
  VerifyPool& operator=(const VerifyPool&) = delete;

  /// Enqueues one inbound message for preverification. Cheap (no crypto,
  /// no decode) when threads > 0; evaluates inline when threads == 0.
  void submit(ReplicaId from, std::uint8_t tag, Bytes payload)
      PROBFT_EXCLUDES(mu_);

  using Deliver =
      std::function<void(ReplicaId, std::uint8_t, const Bytes&)>;
  /// Delivers every message whose preverification has finished, strictly
  /// in submission order (a finished message behind an unfinished one
  /// waits). Returns the number delivered. Call from the protocol thread.
  std::size_t drain(const Deliver& deliver) PROBFT_EXCLUDES(mu_);

  /// Blocks until drain() would deliver at least one message, or every
  /// submitted message has been delivered already. For benches/tests and
  /// shutdown linger; the node path uses the ready callback instead.
  void wait_ready() PROBFT_EXCLUDES(mu_);

  /// True when every submitted message has been delivered.
  [[nodiscard]] bool idle() const PROBFT_EXCLUDES(mu_);

  /// Invoked FROM A WORKER THREAD whenever the head of the queue becomes
  /// deliverable; wire it to something like TcpTransport::post so the
  /// protocol thread wakes up and drains. May fire spuriously.
  void set_ready_callback(std::function<void()> cb) PROBFT_EXCLUDES(mu_);

  /// When enabled, records submit→ready latency per message (µs).
  void record_latencies(bool on) PROBFT_EXCLUDES(mu_);
  [[nodiscard]] std::vector<double> take_latencies_us() PROBFT_EXCLUDES(mu_);

  [[nodiscard]] unsigned threads() const { return threads_; }
  [[nodiscard]] const PreverifyContext& context() const { return ctx_; }
  [[nodiscard]] const VerdictCachePtr& cache() const { return cache_; }

 private:
  struct Entry {
    ReplicaId from = 0;
    std::uint8_t tag = 0;
    Bytes payload;
    bool done = false;
    std::chrono::steady_clock::time_point submitted;
  };

  void worker_loop() PROBFT_EXCLUDES(mu_);
  /// Decodes + batch-verifies a claimed run of entries; stores verdicts.
  /// Lock-free: the entries in `batch` are claimed-exclusive (removed from
  /// unclaimed_ under mu_, untouched by anyone else until marked done).
  void evaluate(const std::vector<Entry*>& batch) PROBFT_EXCLUDES(mu_);
  void mark_done(const std::vector<Entry*>& batch) PROBFT_EXCLUDES(mu_);

  const PreverifyContext ctx_;
  const VerdictCachePtr cache_;
  const unsigned threads_;
  const PreverifyFn extract_;

  mutable Mutex mu_;
  CondVar cv_work_;   // workers: unclaimed work arrived
  CondVar cv_ready_;  // owner: head became deliverable
  // submission order; popped by drain (deque: push_back/pop_front never
  // move surviving elements, so the Entry* in unclaimed_ stay valid)
  std::deque<Entry> fifo_ PROBFT_GUARDED_BY(mu_);
  std::deque<Entry*> unclaimed_ PROBFT_GUARDED_BY(mu_);  // suffix of fifo_
  std::function<void()> ready_cb_ PROBFT_GUARDED_BY(mu_);
  bool record_latencies_ PROBFT_GUARDED_BY(mu_) = false;
  std::vector<double> latencies_us_ PROBFT_GUARDED_BY(mu_);
  bool stop_ PROBFT_GUARDED_BY(mu_) = false;

  std::vector<std::thread> workers_;
};

}  // namespace probft::core
