#include "core/replica.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <stdexcept>
#include <unordered_set>

#include "common/codec.hpp"
#include "common/log.hpp"
#include "crypto/sha256.hpp"

namespace probft::core {

namespace {

/// Leader's proposal-choice rule (Alg. 1 lines 7-8) shared with the
/// safeProposal re-check: the value prepared in the highest view by the
/// most replicas. Ties on the mode break toward the BytesLess-smallest
/// value (shortest, then lexicographic) so leader and verifiers agree.
/// Returns nullopt when no replica in M prepared anything (leader is free
/// to use myValue()).
std::optional<Bytes> choose_value(const std::vector<NewLeaderMsg>& m_set) {
  // One vote per SENDER, not per message: a Byzantine leader used to be
  // able to duplicate a single NewLeaderMsg to inflate its value's mode
  // count. The leader collects into a per-sender map and verifiers reject
  // duplicate senders outright, but the mode itself must also be immune to
  // repetition; keep the highest prepared view per sender (ties keep the
  // first occurrence) so leader and verifiers agree.
  std::map<ReplicaId, const NewLeaderMsg*> by_sender;
  for (const auto& m : m_set) {
    auto [it, inserted] = by_sender.try_emplace(m.sender, &m);
    if (!inserted && m.prepared_view > it->second->prepared_view) {
      it->second = &m;
    }
  }
  View vmax = 0;
  for (const auto& [id, m] : by_sender) vmax = std::max(vmax, m->prepared_view);
  if (vmax == 0) return std::nullopt;
  // Ordered: the first maximum found is the BytesLess-smallest value.
  std::map<Bytes, int, BytesLess> counts;
  for (const auto& [id, m] : by_sender) {
    if (m->prepared_view == vmax) ++counts[m->prepared_value];
  }
  const Bytes* best = nullptr;
  int best_count = 0;
  for (const auto& [value, count] : counts) {
    if (count > best_count) {
      best = &value;
      best_count = count;
    }
  }
  return *best;
}

// Verdict-key construction and the cache itself moved to
// core/verdict_cache.{hpp,cpp} so the verification worker pool
// (core/verify_pool.hpp) builds byte-identical keys; these aliases keep
// the call sites readable.
using VC = VerdictCache;

}  // namespace

// ---------------- ReplicaConfig ----------------

std::uint32_t ReplicaConfig::q() const {
  return static_cast<std::uint32_t>(
      std::ceil(l * std::sqrt(static_cast<double>(n))));
}

std::uint32_t ReplicaConfig::sample_size() const {
  const auto raw =
      static_cast<std::uint32_t>(std::ceil(o * static_cast<double>(q())));
  return std::min(raw, n);
}

std::uint32_t ReplicaConfig::det_quorum() const { return (n + f + 2) / 2; }

// ---------------- Construction ----------------

Replica::Replica(ReplicaConfig config, sync::SyncConfig sync_config,
                 ProtocolHost host)
    : cfg_(std::move(config)), host_(std::move(host)) {
  if (cfg_.id == 0 || cfg_.id > cfg_.n || cfg_.suite == nullptr ||
      cfg_.public_keys.size() != cfg_.n + 1) {
    throw std::invalid_argument("Replica: bad configuration");
  }
  if (!cfg_.valid) {
    cfg_.valid = [](const Bytes& v) { return !v.empty(); };
  }
  cache_ = cfg_.verdicts ? cfg_.verdicts
                         : std::make_shared<VerdictCache>(
                               /*thread_safe=*/false);
  sync_config.n = cfg_.n;
  sync_config.f = cfg_.f;
  synchronizer_ = std::make_unique<sync::Synchronizer>(
      cfg_.id, sync_config,
      /*wish=*/
      [this](View v) {
        WishMsg wish;
        wish.view = v;
        wish.sender = cfg_.id;
        wish.sender_sig = cfg_.suite->sign(cfg_.secret_key,
                                           wish.signing_bytes());
        host_.broadcast(tag_byte(MsgTag::kWish), wish.to_bytes());
      },
      /*enter_view=*/[this](View v) { enter_view(v); },
      /*set_timer=*/host_.set_timer);
}

void Replica::start() { synchronizer_->start(); }

// ---------------- Dispatch ----------------

void Replica::on_message(ReplicaId from, std::uint8_t tag,
                         const Bytes& payload) {
  try {
    switch (static_cast<MsgTag>(tag)) {
      case MsgTag::kPropose:
        handle_propose(payload);
        break;
      case MsgTag::kPrepare:
        handle_phase(MsgTag::kPrepare, payload);
        break;
      case MsgTag::kCommit:
        handle_phase(MsgTag::kCommit, payload);
        break;
      case MsgTag::kNewLeader:
        handle_new_leader(payload);
        break;
      case MsgTag::kWish:
        handle_wish(from, payload);
        break;
      default:
        break;  // unknown tag from a Byzantine sender: ignore
    }
  } catch (const CodecError&) {
    // Malformed (Byzantine) message: drop.
  }
}

// ---------------- View transitions ----------------

void Replica::enter_view(View v) {
  cur_view_ = v;
  cur_val_.clear();
  voted_ = false;
  block_view_ = false;
  proposal_.reset();
  proposed_this_view_ = false;
  committed_this_view_ = false;

  // Garbage-collect state from older views.
  std::erase_if(pending_proposes_,
                [v](const auto& kv) { return kv.first < v; });
  std::erase_if(new_leader_msgs_,
                [v](const auto& kv) { return kv.first < v; });
  std::erase_if(prepares_, [v](const auto& kv) { return kv.first.first < v; });
  std::erase_if(commits_, [v](const auto& kv) { return kv.first.first < v; });

  if (v == 1) {
    if (leader_for(v) == cfg_.id) {
      // Lines 2-3: first-view leader proposes its own value directly.
      SignedProposal prop;
      prop.view = v;
      prop.value = cfg_.my_value;
      prop.leader_sig = cfg_.suite->sign(
          cfg_.secret_key, SignedProposal::signing_bytes(v, prop.value));
      ProposeMsg msg;
      msg.proposal = std::move(prop);
      msg.sender = cfg_.id;
      msg.sender_sig =
          cfg_.suite->sign(cfg_.secret_key, msg.signing_bytes());
      host_.broadcast(tag_byte(MsgTag::kPropose), msg.to_bytes());
      proposed_this_view_ = true;
      pending_proposes_.emplace(v, std::move(msg));  // self-delivery
    }
  } else {
    // Line 5: report the latest prepared value to the new leader.
    send_new_leader();
    try_lead();
  }
  try_vote();
  try_prepare_quorum();
  try_commit_quorum();
}

void Replica::send_new_leader() {
  NewLeaderMsg msg;
  msg.view = cur_view_;
  msg.prepared_view = prepared_view_;
  msg.prepared_value = prepared_value_;
  msg.cert = prepared_cert_;
  msg.sender = cfg_.id;
  msg.sender_sig = cfg_.suite->sign(cfg_.secret_key, msg.signing_bytes());
  host_.send(leader_for(cur_view_), tag_byte(MsgTag::kNewLeader),
              msg.to_bytes());
}

// ---------------- Propose path ----------------

void Replica::handle_propose(const Bytes& raw) {
  ProposeMsg msg = ProposeMsg::from_bytes(raw);
  if (msg.sender == 0 || msg.sender > cfg_.n) return;
  const View v = msg.proposal.view;
  // Only the view's leader may propose. Checking here (not just inside
  // safeProposal at vote time) matters because the buffer keeps the FIRST
  // message per view: without it, any replica could send a garbage Propose
  // for a future view that shadows the honest leader's proposal out of the
  // buffer forever, stalling that view.
  if (msg.sender != leader_for(v)) return;
  if (!propose_sender_sig_ok(msg)) return;
  if (check_equivocation(msg.proposal, tag_byte(MsgTag::kPropose), raw)) {
    return;
  }
  if (v < cur_view_) return;
  pending_proposes_.emplace(v, std::move(msg));  // keep the first per view
  if (v == cur_view_) try_vote();
}

void Replica::try_vote() {
  if (block_view_ || voted_) return;
  const auto it = pending_proposes_.find(cur_view_);
  if (it == pending_proposes_.end()) return;
  const ProposeMsg& msg = it->second;
  if (!safe_proposal(msg)) {
    pending_proposes_.erase(it);
    return;
  }
  // Lines 14-16.
  cur_val_ = msg.proposal.value;
  voted_ = true;
  proposal_ = msg;

  const Bytes alpha = crypto::sample_alpha(cur_view_, "prepare");
  auto sampled = crypto::vrf_sample(*cfg_.suite, cfg_.secret_key,
                                    ByteSpan(alpha.data(), alpha.size()),
                                    cfg_.n, cfg_.sample_size());
  PhaseMsg prepare;
  prepare.proposal = proposal_->proposal;
  prepare.sample = std::move(sampled.sample);
  prepare.vrf_proof = std::move(sampled.proof);
  prepare.sender = cfg_.id;
  prepare.sender_sig = cfg_.suite->sign(
      cfg_.secret_key, prepare.signing_bytes(MsgTag::kPrepare));
  multicast_phase(MsgTag::kPrepare, prepare.sample, prepare.to_bytes());
  // Early-arriving Prepares may already complete a quorum.
  try_prepare_quorum();
}

// ---------------- Leader path ----------------

void Replica::handle_new_leader(const Bytes& raw) {
  NewLeaderMsg msg = NewLeaderMsg::from_bytes(raw);
  if (msg.sender == 0 || msg.sender > cfg_.n) return;
  if (msg.view < cur_view_) return;
  if (leader_for(msg.view) != cfg_.id) return;
  const View view = msg.view;
  const ReplicaId sender = msg.sender;
  // One slot per sender; a re-sending replica can only RAISE its reported
  // prepared view (mirrors choose_value's dedup rule, so repetition can
  // never skew the mode count). Check the slot BEFORE the O(q)
  // signature/certificate verification so duplicate spam is nearly free;
  // find() (not operator[]) keeps unverified traffic from growing the map.
  const auto slot_it = new_leader_msgs_.find(view);
  if (slot_it != new_leader_msgs_.end()) {
    const auto existing = slot_it->second.find(sender);
    if (existing != slot_it->second.end() &&
        msg.prepared_view <= existing->second.prepared_view) {
      return;  // duplicate or stale report: nothing new to lead with
    }
  }
  if (!new_leader_sig_ok(msg)) return;
  if (!valid_new_leader(msg)) return;
  new_leader_msgs_[view].insert_or_assign(sender, std::move(msg));
  if (view == cur_view_) try_lead();
}

void Replica::try_lead() {
  if (cur_view_ <= 1 || proposed_this_view_ ||
      leader_for(cur_view_) != cfg_.id) {
    return;
  }
  const auto it = new_leader_msgs_.find(cur_view_);
  if (it == new_leader_msgs_.end() ||
      it->second.size() < cfg_.det_quorum()) {
    return;
  }
  // Lines 7-12: propose the value prepared in the highest view by the most
  // replicas, else our own value. The collected messages are MOVED into
  // the justification (each one drags a q-sized certificate along, so the
  // former deep copy here was O(n·√n) in signatures).
  std::vector<NewLeaderMsg> m_set;
  m_set.reserve(it->second.size());
  for (auto& [sender, msg] : it->second) m_set.push_back(std::move(msg));
  new_leader_msgs_.erase(it);

  const auto chosen = choose_value(m_set);
  SignedProposal prop;
  prop.view = cur_view_;
  prop.value = chosen.value_or(cfg_.my_value);
  prop.leader_sig = cfg_.suite->sign(
      cfg_.secret_key,
      SignedProposal::signing_bytes(cur_view_, prop.value));

  ProposeMsg msg;
  msg.proposal = std::move(prop);
  msg.justification = std::move(m_set);
  msg.sender = cfg_.id;
  msg.sender_sig = cfg_.suite->sign(cfg_.secret_key, msg.signing_bytes());
  host_.broadcast(tag_byte(MsgTag::kPropose), msg.to_bytes());
  proposed_this_view_ = true;
  pending_proposes_.emplace(cur_view_, std::move(msg));  // self-delivery
  try_vote();
}

// ---------------- Prepare / Commit path ----------------

void Replica::handle_phase(MsgTag tag, const Bytes& raw) {
  PhaseMsg msg = PhaseMsg::from_bytes(raw);
  if (msg.sender == 0 || msg.sender > cfg_.n) return;
  // Equivocation detection applies to any message carrying a leader-signed
  // tuple (lines 23-25), before the regular preconditions.
  if (check_equivocation(msg.proposal, static_cast<std::uint8_t>(tag), raw)) {
    return;
  }
  if (msg.proposal.view < cur_view_) return;
  if (!verify_phase_msg(tag, msg, cfg_.id)) return;

  const ValueKey key{msg.proposal.view, value_digest(msg.proposal.value)};
  auto& bucket = (tag == MsgTag::kPrepare ? prepares_ : commits_)[key];
  bucket.emplace(msg.sender, std::move(msg));

  if (tag == MsgTag::kPrepare) {
    try_prepare_quorum();
  } else {
    try_commit_quorum();
  }
}

void Replica::try_prepare_quorum() {
  // Lines 17-20.
  if (block_view_ || !voted_ || committed_this_view_) return;
  const ValueKey key{cur_view_, value_digest(cur_val_)};
  const auto it = prepares_.find(key);
  if (it == prepares_.end() || it->second.size() < cfg_.q()) return;

  prepared_view_ = cur_view_;
  prepared_value_ = cur_val_;
  prepared_cert_.clear();
  prepared_cert_.reserve(cfg_.q());
  for (const auto& [sender, msg] : it->second) {
    if (prepared_cert_.size() == cfg_.q()) break;
    prepared_cert_.push_back(std::make_shared<PhaseMsg>(msg));
  }

  const Bytes alpha = crypto::sample_alpha(cur_view_, "commit");
  auto sampled = crypto::vrf_sample(*cfg_.suite, cfg_.secret_key,
                                    ByteSpan(alpha.data(), alpha.size()),
                                    cfg_.n, cfg_.sample_size());
  PhaseMsg commit;
  commit.proposal = proposal_->proposal;
  commit.sample = std::move(sampled.sample);
  commit.vrf_proof = std::move(sampled.proof);
  commit.sender = cfg_.id;
  commit.sender_sig = cfg_.suite->sign(
      cfg_.secret_key, commit.signing_bytes(MsgTag::kCommit));
  committed_this_view_ = true;
  multicast_phase(MsgTag::kCommit, commit.sample, commit.to_bytes());
  try_commit_quorum();
}

void Replica::try_commit_quorum() {
  // Lines 21-22.
  if (block_view_ || decided_) return;
  if (prepared_view_ != cur_view_ || !committed_this_view_) return;
  const ValueKey key{cur_view_, value_digest(prepared_value_)};
  const auto it = commits_.find(key);
  if (it == commits_.end() || it->second.size() < cfg_.q()) return;
  decide(prepared_value_);
}

void Replica::decide(const Bytes& value) {
  if (decided_) return;
  decided_ = Decision{cur_view_, value};
  log::debug("replica %u decided in view %llu", cfg_.id,
             static_cast<unsigned long long>(cur_view_));
  if (cfg_.stop_sync_on_decide) synchronizer_->stop();
  if (host_.on_decide) host_.on_decide(cur_view_, value);
}

// ---------------- Equivocation (lines 23-25) ----------------

bool Replica::check_equivocation(const SignedProposal& p, std::uint8_t tag,
                                 const Bytes& raw) {
  // Only current-view tuples participate. While a view is blocked,
  // messages for FUTURE views must keep flowing into the buffers
  // (returning "drop" for them used to stall the next view: its proposal
  // and phase messages arriving early were silently discarded); past-view
  // messages are filtered by each handler's own view checks.
  if (p.view != cur_view_) return false;
  if (block_view_) return true;  // blocked: drop current-view traffic
  if (!voted_) return false;
  if (p.value == cur_val_) return false;
  if (!verify_leader_sig(p)) return false;  // not actually leader-signed
  // The leader signed two different values for this view: block the view
  // and gossip both leader-signed tuples (the offending message plus our
  // own accepted proposal).
  block_view_ = true;
  log::debug("replica %u blocked view %llu (leader equivocation)", cfg_.id,
             static_cast<unsigned long long>(cur_view_));
  host_.broadcast(tag, raw);
  if (proposal_) {
    host_.broadcast(tag_byte(MsgTag::kPropose), proposal_->to_bytes());
  }
  return true;
}

// ---------------- Wishes ----------------

void Replica::handle_wish(ReplicaId from, const Bytes& raw) {
  WishMsg msg = WishMsg::from_bytes(raw);
  if (msg.sender == 0 || msg.sender > cfg_.n || msg.sender != from) return;
  if (!cfg_.suite->verify(cfg_.public_keys[msg.sender], msg.signing_bytes(),
                          msg.sender_sig)) {
    return;
  }
  synchronizer_->on_wish(msg.sender, msg.view);
}

// ---------------- Predicates ----------------

std::optional<bool> Replica::cache_lookup(const Bytes& key) const {
  return cache_->lookup(key);
}

void Replica::cache_store(Bytes key, bool ok) const {
  cache_->store(std::move(key), ok);
}

bool Replica::propose_sender_sig_ok(const ProposeMsg& m) const {
  const Bytes msg = m.signing_bytes();
  if (!cfg_.fast_verify) {
    return cfg_.suite->verify(cfg_.public_keys[m.sender],
                              ByteSpan(msg.data(), msg.size()), m.sender_sig);
  }
  // Cached under 'R' so the verify pool can pre-warm it; the signing bytes
  // are digest-based, so rebuilding them here is cheap even for a Propose
  // carrying a large justification.
  Bytes key = VC::signed_key('R', ByteSpan(msg.data(), msg.size()),
                             m.sender_sig);
  if (const auto hit = cache_lookup(key)) return *hit;
  const bool ok = cfg_.suite->verify(
      cfg_.public_keys[m.sender], ByteSpan(msg.data(), msg.size()),
      m.sender_sig);
  cache_store(std::move(key), ok);
  return ok;
}

bool Replica::verify_leader_sig(const SignedProposal& p) const {
  const ReplicaId leader = leader_for(p.view);
  const Bytes msg = SignedProposal::signing_bytes(p.view, p.value);
  if (!cfg_.fast_verify) {
    return cfg_.suite->verify(cfg_.public_keys[leader],
                              ByteSpan(msg.data(), msg.size()), p.leader_sig);
  }
  Bytes key = VC::signed_key('L', ByteSpan(msg.data(), msg.size()),
                             p.leader_sig);
  if (const auto hit = cache_lookup(key)) return *hit;
  const bool ok = cfg_.suite->verify(
      cfg_.public_keys[leader], ByteSpan(msg.data(), msg.size()), p.leader_sig);
  cache_store(std::move(key), ok);
  return ok;
}

bool Replica::phase_vrf_ok(MsgTag tag, const PhaseMsg& m) const {
  const char* phase = tag == MsgTag::kPrepare ? "prepare" : "commit";
  const Bytes alpha = crypto::sample_alpha(m.proposal.view, phase);
  return crypto::vrf_sample_verify(
      *cfg_.suite, cfg_.public_keys[m.sender],
      ByteSpan(alpha.data(), alpha.size()), cfg_.n, cfg_.sample_size(),
      m.sample, m.vrf_proof);
}

bool Replica::phase_full_ok(MsgTag tag, const PhaseMsg& m) const {
  const auto compute = [&] {
    if (!verify_leader_sig(m.proposal)) return false;
    const Bytes msg = m.signing_bytes(tag);
    return cfg_.suite->verify(cfg_.public_keys[m.sender],
                              ByteSpan(msg.data(), msg.size()),
                              m.sender_sig) &&
           phase_vrf_ok(tag, m);
  };
  if (!cfg_.fast_verify) return compute();
  Bytes key = VC::digest_key(m.content_digest(), 'P',
                         static_cast<std::uint8_t>(tag));
  if (const auto hit = cache_lookup(key)) return *hit;
  const bool ok = compute();
  cache_store(std::move(key), ok);
  return ok;
}

bool Replica::new_leader_sig_ok(const NewLeaderMsg& m) const {
  if (!cfg_.fast_verify) {
    const Bytes msg = m.signing_bytes();
    return cfg_.suite->verify(cfg_.public_keys[m.sender],
                              ByteSpan(msg.data(), msg.size()), m.sender_sig);
  }
  Bytes key = VC::digest_key(m.content_digest(), 'N', 0);
  if (const auto hit = cache_lookup(key)) return *hit;
  const Bytes msg = m.signing_bytes();
  const bool ok = cfg_.suite->verify(
      cfg_.public_keys[m.sender], ByteSpan(msg.data(), msg.size()),
      m.sender_sig);
  cache_store(std::move(key), ok);
  return ok;
}

void Replica::prefetch_new_leaders(
    const std::vector<const NewLeaderMsg*>& msgs,
    bool include_sender_sigs) const {
  if (!cfg_.fast_verify) return;
  struct Pending {
    Bytes key;
    ReplicaId signer = 0;
    Bytes message;  // the signing bytes, built only for uncached items
    const Bytes* sig = nullptr;
    const PhaseMsg* pm = nullptr;  // non-null: a 'P' (full phase) verdict
    MsgTag tag = MsgTag::kPrepare;
  };
  std::vector<Pending> pending;
  // Keys collected this round (the cache itself only fills after the
  // batch). Digest-keyed like the cache, so reuse its hash.
  std::unordered_set<Bytes, VC::DigestHash> queued;
  const auto uncached = [&](const Bytes& key) {
    return !cache_->contains(key) && queued.insert(key).second;
  };
  for (const NewLeaderMsg* nl : msgs) {
    if (nl->sender == 0 || nl->sender > cfg_.n) continue;
    if (include_sender_sigs) {
      Bytes key = VC::digest_key(nl->content_digest(), 'N', 0);
      if (uncached(key)) {
        pending.push_back({std::move(key), nl->sender, nl->signing_bytes(),
                           &nl->sender_sig, nullptr, MsgTag::kPrepare});
      }
    }
    for (const PhaseMsgPtr& pmp : nl->cert) {
      const PhaseMsg& pm = *pmp;
      if (pm.sender == 0 || pm.sender > cfg_.n) continue;
      Bytes key = VC::digest_key(pm.content_digest(), 'P',
                             static_cast<std::uint8_t>(MsgTag::kPrepare));
      if (uncached(key)) {
        pending.push_back({std::move(key), pm.sender,
                           pm.signing_bytes(MsgTag::kPrepare),
                           &pm.sender_sig, &pm, MsgTag::kPrepare});
      }
    }
  }
  if (pending.empty()) return;

  std::vector<crypto::SigCheck> checks;
  checks.reserve(pending.size());
  for (const Pending& p : pending) {
    const Bytes& pk = cfg_.public_keys[p.signer];
    checks.push_back({ByteSpan(pk.data(), pk.size()),
                      ByteSpan(p.message.data(), p.message.size()),
                      ByteSpan(p.sig->data(), p.sig->size())});
  }
  // One combined check for every sender signature; on failure (at least
  // one bad signature somewhere) fall back to per-item verification so
  // every cached verdict stays exact. Leader signatures ride through the
  // cached verify_leader_sig (a justification has very few distinct
  // proposal tuples), and VRF proofs are per-item by nature.
  const bool all_sigs_ok = cfg_.suite->verify_batch(checks);
  for (std::size_t i = 0; i < pending.size(); ++i) {
    Pending& p = pending[i];
    bool ok = all_sigs_ok ||
              cfg_.suite->verify(checks[i].public_key, checks[i].message,
                                 checks[i].signature);
    if (ok && p.pm != nullptr) {
      ok = verify_leader_sig(p.pm->proposal) && phase_vrf_ok(p.tag, *p.pm);
    }
    cache_store(std::move(p.key), ok);
  }
}

bool Replica::verify_phase_msg(MsgTag tag, const PhaseMsg& m,
                               ReplicaId addressee) const {
  if (m.sender == 0 || m.sender > cfg_.n) return false;
  if (m.proposal.view == 0) return false;
  if (!std::binary_search(m.sample.begin(), m.sample.end(), addressee)) {
    return false;
  }
  return phase_full_ok(tag, m);
}

bool Replica::prepared_cert_valid(const std::vector<PhaseMsgPtr>& cert,
                                  View view, const Bytes& val,
                                  ReplicaId j) const {
  if (view == 0) return false;
  std::set<ReplicaId> senders;
  for (const auto& mp : cert) {
    const PhaseMsg& m = *mp;
    if (m.proposal.view != view || m.proposal.value != val) return false;
    if (!verify_phase_msg(MsgTag::kPrepare, m, j)) return false;
    senders.insert(m.sender);
  }
  return senders.size() >= cfg_.q();
}

bool Replica::valid_new_leader(const NewLeaderMsg& m) const {
  if (m.prepared_view >= m.view) return false;  // includes view != 0 => < v
  if (m.prepared_view == 0) return m.prepared_value.empty();
  prefetch_new_leaders({&m}, /*include_sender_sigs=*/false);
  return prepared_cert_valid(m.cert, m.prepared_view, m.prepared_value,
                             m.sender);
}

bool Replica::safe_proposal(const ProposeMsg& m) const {
  const View v = m.proposal.view;
  if (v < 1) return false;
  if (m.sender != leader_for(v)) return false;
  if (!verify_leader_sig(m.proposal)) return false;
  if (!cfg_.valid(m.proposal.value)) return false;
  if (v == 1) return true;

  // Fast path: resolve every not-yet-cached signature in the whole
  // justification with one batch-verify call, so the per-message walk
  // below (and its heavy certificate overlap) runs on cache hits.
  if (cfg_.fast_verify) {
    std::vector<const NewLeaderMsg*> refs;
    refs.reserve(m.justification.size());
    for (const auto& nl : m.justification) refs.push_back(&nl);
    prefetch_new_leaders(refs, /*include_sender_sigs=*/true);
  }

  // Deterministic quorum of valid NewLeader messages from distinct
  // senders. Duplicated senders are rejected outright: counting them (or
  // letting them into choose_value) would let a Byzantine leader pad the
  // quorum or skew the prepared-value mode by repeating one message.
  std::set<ReplicaId> senders;
  for (const auto& nl : m.justification) {
    if (nl.view != v) return false;
    if (nl.sender == 0 || nl.sender > cfg_.n) return false;
    if (!senders.insert(nl.sender).second) return false;
    if (!new_leader_sig_ok(nl)) return false;
    if (!valid_new_leader(nl)) return false;
  }
  if (senders.size() < cfg_.det_quorum()) return false;

  // Re-do the leader's computation (lines 7-8).
  const auto chosen = choose_value(m.justification);
  if (chosen.has_value()) return m.proposal.value == *chosen;
  return true;  // nothing prepared: leader may propose any valid value
}

// ---------------- Helpers ----------------

Bytes Replica::value_digest(const Bytes& value) const {
  return crypto::sha256(ByteSpan(value.data(), value.size()));
}

void Replica::multicast_phase(MsgTag tag, const std::vector<ReplicaId>& sample,
                              const Bytes& payload) {
  for (const ReplicaId to : sample) {
    host_.send(to, static_cast<std::uint8_t>(tag), payload);
  }
}

}  // namespace probft::core
