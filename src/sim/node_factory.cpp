#include "sim/node_factory.hpp"

#include "hotstuff/hotstuff_replica.hpp"
#include "pbft/pbft_replica.hpp"

namespace probft::sim {

std::unique_ptr<core::INode> make_honest_node(const NodeParams& params,
                                              core::ProtocolHost host) {
  switch (params.protocol) {
    case Protocol::kProbft: {
      core::ReplicaConfig rc;
      rc.id = params.id;
      rc.n = params.n;
      rc.f = params.f;
      rc.o = params.o;
      rc.l = params.l;
      rc.my_value = params.my_value;
      rc.stop_sync_on_decide = params.stop_sync_on_decide;
      rc.fast_verify = params.fast_verify;
      rc.suite = params.suite;
      rc.secret_key = params.secret_key;
      rc.public_keys = params.public_keys;
      rc.verdicts = params.verdicts;
      return std::make_unique<core::Replica>(std::move(rc), params.sync,
                                             std::move(host));
    }
    case Protocol::kPbft: {
      pbft::PbftConfig rc;
      rc.id = params.id;
      rc.n = params.n;
      rc.f = params.f;
      rc.my_value = params.my_value;
      rc.stop_sync_on_decide = params.stop_sync_on_decide;
      rc.suite = params.suite;
      rc.secret_key = params.secret_key;
      rc.public_keys = params.public_keys;
      return std::make_unique<pbft::PbftReplica>(std::move(rc), params.sync,
                                                 std::move(host));
    }
    case Protocol::kHotStuff: {
      hotstuff::HotStuffConfig rc;
      rc.id = params.id;
      rc.n = params.n;
      rc.f = params.f;
      rc.my_value = params.my_value;
      rc.stop_sync_on_decide = params.stop_sync_on_decide;
      rc.suite = params.suite;
      rc.secret_key = params.secret_key;
      rc.public_keys = params.public_keys;
      return std::make_unique<hotstuff::HotStuffReplica>(
          std::move(rc), params.sync, std::move(host));
    }
  }
  return nullptr;  // unreachable
}

std::unique_ptr<smr::SmrReplica> make_smr_node(const NodeParams& params,
                                               core::ProtocolHost host) {
  smr::SmrConfig cfg;
  cfg.id = params.id;
  cfg.n = params.n;
  cfg.f = params.f;
  cfg.o = params.o;
  cfg.l = params.l;
  cfg.pipeline = params.smr;
  cfg.fast_verify = params.fast_verify;
  cfg.suite = params.suite;
  cfg.secret_key = params.secret_key;
  cfg.public_keys = params.public_keys;
  cfg.verdicts = params.verdicts;
  cfg.sync = params.sync;
  cfg.wal = params.wal;
  cfg.on_execute = params.on_execute;
  return std::make_unique<smr::SmrReplica>(std::move(cfg), std::move(host));
}

Bytes default_node_value(const Bytes& prefix, ReplicaId id) {
  Bytes value = prefix.empty() ? to_bytes("value-") : prefix;
  value.push_back(static_cast<std::uint8_t>('0' + (id % 10)));
  value.push_back(static_cast<std::uint8_t>(id >> 8));
  value.push_back(static_cast<std::uint8_t>(id & 0xff));
  return value;
}

core::ProtocolHost transport_host(net::ITransport& transport, ReplicaId id,
                                  sync::Synchronizer::TimerSetter set_timer) {
  core::ProtocolHost host;
  host.send = [&transport, id](ReplicaId to, std::uint8_t tag,
                               const Bytes& m) {
    transport.send(id, to, tag, m);
  };
  host.broadcast = [&transport, id](std::uint8_t tag, const Bytes& m) {
    transport.broadcast(id, tag, m);
  };
  host.set_timer = std::move(set_timer);
  return host;
}

}  // namespace probft::sim
