// Sampling-level Monte-Carlo experiments matching the probabilistic model
// of the paper's proofs (Appendices B-D).
//
// Instead of simulating the full message-passing protocol, these experiments
// draw the VRF recipient samples directly and evaluate quorum formation —
// which is exactly the random experiment the theorems analyze. This scales
// to n = 300+ with 10^4..10^6 trials, producing smooth Figure 5 curves that
// the closed forms in quorum/analysis.hpp can be checked against.
#pragma once

#include <cstdint>

#include "quorum/analysis.hpp"

namespace probft::sim {

struct TerminationStats {
  double per_replica_rate = 0;  // fraction of (trial, replica) that decide
  double all_rate = 0;          // fraction of trials where EVERY correct
                                // replica decides
  double prepare_quorum_rate = 0;  // per-replica prepare-quorum formation
};

/// Correct leader after GST (Fig. 5 right panels): all n-f correct replicas
/// multicast Prepare to fresh s-of-n samples; correct replicas that form a
/// q-quorum multicast Commit to fresh samples; a replica decides when it
/// forms both quorums. Byzantine replicas stay silent (worst case for
/// termination, as in Theorem 2's statement).
[[nodiscard]] TerminationStats mc_termination(const quorum::Params& params,
                                              int trials, std::uint64_t seed);

struct AgreementStats {
  // Blocking-aware model (the protocol's actual defense): a correct replica
  // that receives even one conflicting Prepare is blocked before any commit
  // quorum can complete (a conflicting prepare is one network hop; a commit
  // quorum needs two), so it never decides.
  double violation_rate = 0;     // trials with opposite decisions
  double any_decision_rate = 0;  // trials where any correct replica decides
  // Quorum-formation-only model (the counting used by the paper's Lemma 5
  // Chernoff bound, which ignores the blocking rule): much larger — this is
  // the quantity the analysis bounds, not the protocol's real violation
  // rate.
  double violation_rate_quorum_only = 0;
  double any_decision_rate_quorum_only = 0;
  double blocked_rate = 0;  // avg fraction of correct replicas that would
                            // observe the equivocation (and block)
};

/// Byzantine leader running the optimal split attack (Fig. 4c, left panels
/// of Fig. 5): correct replicas split into halves receiving value A or B;
/// Byzantine replicas support both sides but only towards same-side
/// replicas. A correct replica is *blocked* the moment any message for the
/// other value reaches it (Alg. 1 lines 23-25) and then never decides.
[[nodiscard]] AgreementStats mc_agreement_optimal_split(
    const quorum::Params& params, int trials, std::uint64_t seed);

/// Lemma 6 experiment (cross-view safety, Theorem 8): exactly r replicas
/// multicast matching Commit messages to fresh s-of-n samples; returns the
/// empirical probability that a fixed replica forms a commit quorum —
/// comparable against quorum::decide_with_r_prepared_exact().
[[nodiscard]] double mc_quorum_with_r_senders(const quorum::Params& params,
                                              std::int64_t r, int trials,
                                              std::uint64_t seed);

}  // namespace probft::sim
