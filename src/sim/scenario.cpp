#include "sim/scenario.hpp"

#include <unistd.h>

#include <algorithm>
#include <filesystem>
#include <sstream>

#include "common/codec.hpp"
#include "shard/sharded_smr.hpp"
#include "store/wal.hpp"

namespace probft::sim {

bool ScenarioResult::all_agreement() const {
  return std::all_of(outcomes.begin(), outcomes.end(),
                     [](const ScenarioOutcome& o) { return o.agreement; });
}

bool ScenarioResult::all_terminated() const {
  return std::all_of(outcomes.begin(), outcomes.end(),
                     [](const ScenarioOutcome& o) { return o.terminated; });
}

const char* to_string(Protocol protocol) {
  switch (protocol) {
    case Protocol::kProbft: return "probft";
    case Protocol::kPbft: return "pbft";
    case Protocol::kHotStuff: return "hotstuff";
  }
  return "?";
}

const char* to_string(Fault fault) {
  switch (fault) {
    case Fault::kNone: return "happy";
    case Fault::kSilentLeader: return "silent-leader";
    case Fault::kSilentFollowers: return "silent-f";
    case Fault::kEquivocate: return "equivocate";
    case Fault::kFlood: return "flood";
    case Fault::kPartitionUntilGst: return "partition";
    case Fault::kChurnRecovery: return "churn";
    case Fault::kAsymmetricPartition: return "asym-partition";
    case Fault::kReorderAdversary: return "reorder";
    case Fault::kAdaptiveLeader: return "adaptive-leader";
    case Fault::kKillRestart: return "kill-restart";
    case Fault::kShardSilentLeader: return "shard-silent-leader";
  }
  return "?";
}

const char* to_string(LatencyModel model) {
  switch (model) {
    case LatencyModel::kSynchronous: return "synchronous";
    case LatencyModel::kPartialSynchrony: return "partial-synchrony";
    case LatencyModel::kLossyDuplicating: return "lossy-duplicating";
  }
  return "?";
}

const char* to_string(Workload workload) {
  switch (workload) {
    case Workload::kSingleShot: return "single-shot";
    case Workload::kSmr: return "smr";
    case Workload::kSmrReads: return "smr-reads";
  }
  return "?";
}

bool workload_from_string(const std::string& text, Workload& out) {
  for (const Workload w :
       {Workload::kSingleShot, Workload::kSmr, Workload::kSmrReads}) {
    if (text == to_string(w)) {
      out = w;
      return true;
    }
  }
  return false;
}

const std::vector<Protocol>& all_protocols() {
  static const std::vector<Protocol> kProtocols = {
      Protocol::kProbft, Protocol::kPbft, Protocol::kHotStuff};
  return kProtocols;
}

const std::vector<Fault>& all_faults() {
  static const std::vector<Fault> kFaults = {
      Fault::kNone,          Fault::kSilentLeader,
      Fault::kSilentFollowers, Fault::kEquivocate,
      Fault::kFlood,         Fault::kPartitionUntilGst,
      Fault::kChurnRecovery, Fault::kAsymmetricPartition,
      Fault::kReorderAdversary, Fault::kAdaptiveLeader,
      Fault::kKillRestart,      Fault::kShardSilentLeader};
  return kFaults;
}

bool protocol_from_string(const std::string& text, Protocol& out) {
  for (const Protocol p : all_protocols()) {
    if (text == to_string(p)) {
      out = p;
      return true;
    }
  }
  return false;
}

bool fault_from_string(const std::string& text, Fault& out) {
  for (const Fault f : all_faults()) {
    if (text == to_string(f)) {
      out = f;
      return true;
    }
  }
  return false;
}

std::string scenario_name(const ScenarioSpec& spec) {
  std::ostringstream name;
  name << to_string(spec.protocol) << "/n" << spec.n << "f" << spec.f << "/"
       << to_string(spec.fault) << "/" << to_string(spec.latency);
  if (spec.workload != Workload::kSingleShot) {
    name << "/" << to_string(spec.workload);
    if (spec.shards > 1) name << "/s" << spec.shards;
  }
  return name.str();
}

ScenarioSpec conformance_base_spec() {
  ScenarioSpec base;
  base.n = 16;
  base.f = 3;
  base.o = 1.7;
  base.l = 1.5;
  base.latency = LatencyModel::kSynchronous;
  base.deadline = 600'000'000;  // 600 s virtual
  return base;
}

bool smr_fault_supported(Fault fault) {
  switch (fault) {
    case Fault::kNone:
    case Fault::kSilentFollowers:
    case Fault::kChurnRecovery:
    case Fault::kPartitionUntilGst:
    case Fault::kAsymmetricPartition:
    case Fault::kReorderAdversary:
    case Fault::kKillRestart:
    case Fault::kShardSilentLeader:
      return true;
    case Fault::kSilentLeader:  // per-slot views rotate internally; the
                                // "view-1 leader" crash is silent-followers
                                // shaped at the fleet level
    case Fault::kEquivocate:
    case Fault::kFlood:
    case Fault::kAdaptiveLeader:
      return false;
  }
  return false;
}

bool fault_applicable(const ScenarioSpec& spec) {
  if (spec.workload != Workload::kSingleShot &&
      !smr_fault_supported(spec.fault)) {
    return false;
  }
  switch (spec.fault) {
    case Fault::kNone:
      return true;
    case Fault::kSilentLeader:
      return spec.f >= 1;
    case Fault::kSilentFollowers:
      return spec.f >= 1;
    case Fault::kEquivocate:
      // The equivocating leader crafts Propose-format messages that ProBFT
      // and PBFT replicas parse; HotStuff uses a different proposal path.
      return (spec.protocol == Protocol::kProbft ||
              spec.protocol == Protocol::kPbft) &&
             spec.f >= 1;
    case Fault::kFlood:
      // Forged-sample flooding targets the VRF sample check (§3.1).
      return spec.protocol == Protocol::kProbft && spec.f >= 1;
    case Fault::kPartitionUntilGst:
      return spec.n >= 2;
    case Fault::kChurnRecovery:
      // The fault budget doubles as the churn victim count.
      return spec.f >= 1 && spec.n >= 2;
    case Fault::kAsymmetricPartition:
      return spec.n >= 2;
    case Fault::kReorderAdversary:
      return true;
    case Fault::kAdaptiveLeader:
      // The corruption budget is the fault budget f.
      return spec.f >= 1;
    case Fault::kKillRestart:
      // Crash-restart durability only exists at the SMR layer (the WAL
      // lives under the replicated log); single-shot runs have no
      // persistent state to recover.
      return spec.workload != Workload::kSingleShot && spec.n >= 2;
    case Fault::kShardSilentLeader:
      // Needs a multiplexed fleet (the fault names a shard envelope) and
      // enough crash budget for group 0 to view-change past its leader.
      // spec.shards defaults to 1, so default-expanded matrices — and
      // with them every pinned transcript — never pick this fault up.
      return spec.workload == Workload::kSmr && spec.shards > 1 &&
             spec.f >= 1;
  }
  return false;
}

bool fault_expects_termination(Fault fault) {
  // Churn victims recover, the asymmetric partition heals at GST and the
  // reordering adversary only stretches delays within a bound — all three
  // are benign for liveness, like the crash/partition faults. Active
  // Byzantine attacks — equivocation, flooding and adaptive leader
  // corruption — can stall progress (and an adaptively corrupted replica
  // never decides), so only agreement is asserted for them.
  return fault != Fault::kEquivocate && fault != Fault::kFlood &&
         fault != Fault::kAdaptiveLeader;
}

net::LatencyConfig make_latency_config(LatencyModel model) {
  net::LatencyConfig latency;
  switch (model) {
    case LatencyModel::kSynchronous:
      break;  // defaults: GST = 0, delays within [1ms, 10ms]
    case LatencyModel::kPartialSynchrony:
      latency.gst = 300'000;  // 300 ms of adversarial scheduling
      latency.max_delay_pre = 200'000;
      latency.hold_until_gst_prob = 0.05;
      break;
    case LatencyModel::kLossyDuplicating:
      latency.gst = 300'000;
      latency.max_delay_pre = 200'000;
      latency.hold_until_gst_prob = 0.10;
      latency.duplicate_prob = 0.10;
      break;
  }
  return latency;
}

ClusterConfig make_cluster_config(const ScenarioSpec& spec,
                                  std::uint64_t seed) {
  ClusterConfig cfg;
  cfg.protocol = spec.protocol;
  cfg.n = spec.n;
  cfg.f = spec.f;
  cfg.o = spec.o;
  cfg.l = spec.l;
  cfg.seed = seed;
  cfg.latency = make_latency_config(spec.latency);
  cfg.smr = spec.smr;
  cfg.behaviors.assign(spec.n, Behavior::kHonest);

  switch (spec.fault) {
    case Fault::kNone:
    case Fault::kPartitionUntilGst:
    case Fault::kChurnRecovery:        // honest victims; dropped at the net
    case Fault::kAsymmetricPartition:  // realized as a network filter
    case Fault::kAdaptiveLeader:       // realized as a stateful filter
    case Fault::kKillRestart:          // realized in the SMR run path
    case Fault::kShardSilentLeader:    // realized as a payload filter
      break;
    case Fault::kReorderAdversary:
      cfg.latency.reorder_prob = 0.3;
      cfg.latency.reorder_delay_max = 50'000;  // Δ' = Δ + 50 ms
      break;
    case Fault::kSilentLeader:
      cfg.behaviors[0] = Behavior::kSilent;  // leader(1) = replica 1
      break;
    case Fault::kSilentFollowers:
      for (std::uint32_t i = 0; i < spec.f && i < spec.n; ++i) {
        cfg.behaviors[spec.n - 1 - i] = Behavior::kSilent;
      }
      break;
    case Fault::kEquivocate:
      cfg.split = SplitStrategy::kOptimal;
      cfg.behaviors[0] = Behavior::kEquivocateLeader;
      for (std::uint32_t i = 1; i < spec.f && i < spec.n; ++i) {
        cfg.behaviors[i] = Behavior::kColludeFollower;
      }
      break;
    case Fault::kFlood:
      cfg.behaviors[spec.n - 1] = Behavior::kFlood;
      break;
  }

  if ((spec.fault == Fault::kPartitionUntilGst ||
       spec.fault == Fault::kAsymmetricPartition) &&
      cfg.latency.gst == 0) {
    cfg.latency.gst = 300'000;  // the partition needs a healing point
  }
  return cfg;
}

ClusterConfig make_cluster_config(const ScenarioSpec& spec,
                                  std::uint64_t seed,
                                  const sync::SyncConfig& sync,
                                  const net::LatencyConfig& latency) {
  ClusterConfig cfg = make_cluster_config(spec, seed);
  cfg.sync = sync;
  cfg.latency = latency;
  return cfg;
}

namespace {

/// The wire tag only a view leader emits, per protocol — what the adaptive
/// adversary watches for.
std::vector<std::uint8_t> leadership_tags(Protocol protocol) {
  switch (protocol) {
    case Protocol::kProbft:
    case Protocol::kPbft:
      return {core::tag_byte(core::MsgTag::kPropose)};
    case Protocol::kHotStuff:
      return {static_cast<std::uint8_t>(hotstuff::HsTag::kProposal)};
  }
  return {};
}

std::string decision_transcript(const Cluster& cluster) {
  std::ostringstream out;
  for (const auto& d : cluster.decisions()) {
    out << d.replica << " " << d.view << " " << to_hex(d.value) << " "
        << d.at << "\n";
  }
  return out.str();
}

/// Realizes the network-level faults (partitions, churn, reordering,
/// adaptive corruption) as a filter on `network`. Shared by the
/// single-shot and SMR run paths so the fault semantics cannot drift
/// between workloads. `gst` is the healing point for the partition
/// shapes.
void apply_network_fault(net::Network& network, net::Simulator& sim,
                         const ScenarioSpec& spec, TimePoint gst,
                         std::uint64_t seed) {
  if (spec.fault == Fault::kPartitionUntilGst) {
    // Drop every cross-half message until GST; the scheduler heals after.
    const std::uint32_t half = spec.n / 2;
    auto* sim_ptr = &sim;
    network.set_filter(
        [half, gst, sim_ptr](ReplicaId from, ReplicaId to, std::uint8_t) {
          if (sim_ptr->now() >= gst) return false;
          return (from <= half) != (to <= half);
        });
  } else if (spec.fault == Fault::kAsymmetricPartition) {
    // One-directional outage: until GST, half B never hears half A (A→B
    // dropped) while B→A flows normally. Heals at GST.
    const std::uint32_t half = spec.n / 2;
    auto* sim_ptr = &sim;
    network.set_filter(
        [half, gst, sim_ptr](ReplicaId from, ReplicaId to, std::uint8_t) {
          if (sim_ptr->now() >= gst) return false;
          return from <= half && to > half;
        });
  } else if (spec.fault == Fault::kChurnRecovery) {
    // f honest replicas go network-dead for a while and rejoin; messages
    // to or from a down replica are lost (crash + recovery model).
    // Outages may start at t = 0 so churn overlaps the first-view decision
    // phase (happy-path decisions land within ~20 virtual ms), and every
    // victim recovers before the deadline — otherwise a short --deadline-ms
    // would turn the benign fault into a spurious liveness failure.
    const TimePoint recover_by =
        std::min<TimePoint>(400'000, spec.deadline / 2);
    const auto plan = std::make_shared<const ChurnPlan>(
        ChurnPlan::make(spec.n, spec.f, seed, /*earliest=*/0, recover_by));
    auto* sim_ptr = &sim;
    network.set_filter(
        [plan, sim_ptr](ReplicaId from, ReplicaId to, std::uint8_t) {
          const TimePoint now = sim_ptr->now();
          return plan->is_down(from, now) || plan->is_down(to, now);
        });
  } else if (spec.fault == Fault::kAdaptiveLeader) {
    // The adversary corrupts each new view's leader as it rotates in
    // (budget f); corruption manifests as total silence from the victim.
    const auto adversary = std::make_shared<AdaptiveLeaderAdversary>(
        spec.n, spec.f, leadership_tags(spec.protocol));
    network.set_filter(
        [adversary](ReplicaId from, ReplicaId /*to*/, std::uint8_t tag) {
          return adversary->should_drop(from, tag);
        });
  }
}

/// The sharded SMR run path: n shard::ShardedSmr nodes (spec.shards
/// consensus groups each) over the simulated network. Each workload
/// command is an independent client routed by the placement layer;
/// completion means every accountable replica executed the full workload
/// across its groups, agreement means per-shard log prefix-consistency.
/// Kept separate from the single-group path so the pinned S = 1
/// transcripts stay bit-for-bit untouched.
ScenarioOutcome run_scenario_smr_sharded(const ScenarioSpec& spec,
                                         std::uint64_t seed) {
  const ClusterConfig cfg = make_cluster_config(spec, seed);
  net::Simulator sim;
  net::Network network(sim, spec.n, seed, cfg.latency);
  const auto suite = crypto::make_sim_suite();

  std::vector<crypto::KeyPair> keys(spec.n + 1);
  std::vector<Bytes> key_table(spec.n + 1);
  for (ReplicaId id = 1; id <= spec.n; ++id) {
    keys[id] = suite->keygen(mix64(seed, id));
    key_table[id] = keys[id].public_key;
  }
  const crypto::PublicKeyDir public_keys(std::move(key_table));

  std::vector<bool> down(spec.n + 1, false);
  if (spec.fault == Fault::kSilentFollowers) {
    for (std::uint32_t i = 0; i < spec.f && i < spec.n; ++i) {
      down[spec.n - i] = true;
    }
  }
  // The shard-silenced leader keeps running (and its logs must still
  // agree) but cannot push its own shard-0 votes or pulls out, so it is
  // excused from the completion count — the regression this fault exists
  // for is that the SIBLING shards and replicas finish regardless.
  const ReplicaId silenced = spec.fault == Fault::kShardSilentLeader
                                 ? shard::lead_replica(0, spec.n)
                                 : 0;

  // Crash-restart shape: as in the single-group path, but the victim
  // persists one WAL per consensus group (matching the per-shard
  // directory layout the node binary uses).
  const ReplicaId victim = spec.fault == Fault::kKillRestart ? 2 : 0;
  smr::SmrOptions smr_opts = spec.smr;
  std::vector<std::unique_ptr<store::Wal>> victim_wals;
  std::filesystem::path wal_root;
  if (victim != 0) {
    smr_opts.checkpoint_interval = 2;
    wal_root = std::filesystem::temp_directory_path() /
               ("probft-skr-" + std::to_string(::getpid()) + "-" +
                std::to_string(seed));
    std::filesystem::remove_all(wal_root);
    for (std::uint32_t s = 0; s < spec.shards; ++s) {
      victim_wals.push_back(std::make_unique<store::Wal>(store::WalOptions{
          (wal_root / ("shard-" + std::to_string(s))).string(),
          /*fsync=*/false}));
    }
  }
  std::vector<std::uint64_t> epochs(spec.n + 1, 0);

  const std::uint64_t target = spec.smr_commands;
  std::size_t correct_total = 0;
  std::size_t done = 0;
  TimePoint last_execution_at = 0;
  std::vector<std::uint64_t> execd(spec.n + 1, 0);

  std::vector<std::unique_ptr<shard::ShardedSmr>> nodes(spec.n + 1);
  std::function<void(ReplicaId)> build_node = [&](ReplicaId id) {
    shard::ShardedSmrConfig sc;
    sc.base.id = id;
    sc.base.n = spec.n;
    sc.base.f = spec.f;
    sc.base.o = spec.o;
    sc.base.l = spec.l;
    sc.base.pipeline = smr_opts;
    sc.base.fast_verify = true;
    sc.base.suite = suite.get();
    sc.base.secret_key = keys[id].secret_key;
    sc.base.public_keys = public_keys;
    sc.map.version = 1;
    sc.map.shard_count = spec.shards;
    if (id == victim) {
      for (const auto& wal : victim_wals) sc.wals.push_back(wal.get());
    }
    sc.on_execute = [&execd, &done, &down, &last_execution_at, &sim, target,
                     silenced, id](shard::ShardId,
                                   const smr::ExecutedCommand&) {
      last_execution_at = sim.now();
      if (!down[id] && id != silenced && ++execd[id] == target) ++done;
    };
    core::ProtocolHost host = transport_host(
        network, id,
        [&sim, &epochs, id, guarded = victim != 0](Duration d,
                                                   std::function<void()> fn) {
          if (!guarded) {
            sim.schedule_after(d, std::move(fn));
            return;
          }
          const std::uint64_t epoch = epochs[id];
          sim.schedule_after(d, [&epochs, id, epoch, fn = std::move(fn)] {
            if (epochs[id] == epoch) fn();
          });
        });
    nodes[id] = std::make_unique<shard::ShardedSmr>(std::move(sc),
                                                    std::move(host));
    network.register_handler(
        id, [&nodes, id](ReplicaId from, std::uint8_t tag, const Bytes& m) {
          if (nodes[id]) nodes[id]->on_message(from, tag, m);
        });
  };
  for (ReplicaId id = 1; id <= spec.n; ++id) {
    if (!down[id] && id != silenced) ++correct_total;
    build_node(id);
  }

  if (victim != 0) {
    sim.schedule_after(250'000, [&epochs, &nodes, victim] {
      ++epochs[victim];
      nodes[victim].reset();
    });
    sim.schedule_after(450'000, [&build_node, &nodes, &victim_wals,
                                 &wal_root, &spec, victim] {
      // Re-open every per-shard log from disk (the Wal's recovery views
      // are fixed at open — reuse would replay nothing).
      for (std::uint32_t s = 0; s < spec.shards; ++s) {
        victim_wals[s].reset();
        victim_wals[s] = std::make_unique<store::Wal>(store::WalOptions{
            (wal_root / ("shard-" + std::to_string(s))).string(),
            /*fsync=*/false});
      }
      build_node(victim);
      nodes[victim]->start();
    });
  }

  if (spec.fault == Fault::kSilentFollowers) {
    network.set_filter([&down](ReplicaId from, ReplicaId to, std::uint8_t) {
      return down[from] || down[to];
    });
  } else if (spec.fault == Fault::kShardSilentLeader) {
    // Drop only the kShardTag frames the silenced replica sends for
    // shard 0: every other shard's traffic from the same replica flows,
    // which is exactly what "one group's leader went quiet" looks like.
    network.set_payload_filter(
        [silenced](ReplicaId from, ReplicaId /*to*/, std::uint8_t tag,
                   const Bytes& payload) {
          if (from != silenced || tag != shard::kShardTag) return false;
          try {
            Reader r{ByteSpan(payload.data(), payload.size())};
            return r.u32() == 0;
          } catch (const CodecError&) {
            return false;
          }
        });
  } else {
    apply_network_fault(network, sim, spec, cfg.latency.gst, seed);
  }

  // Two-wave workload, one independent client per command (a sharded
  // deployment routes many clients; per-client seq ordering is a
  // per-group property, so reusing one client across groups would make
  // the engine's "superseded seq" dedup eat reordered forwards). The
  // entry replica avoids the silenced shard-0 leader so wave requests
  // keep a live proposer path (the group view-changes to the entry's
  // local queue).
  const ReplicaId entry1 = silenced == 1 && spec.n >= 2 ? 2 : 1;
  const ReplicaId entry2 = spec.n >= 2 ? 2 : 1;
  const ReplicaId entry3 = spec.n >= 3 ? 3 : 1;
  const std::uint64_t wave1 = (target + 1) / 2;
  sim.schedule_after(1'000, [&nodes, wave1, entry1] {
    for (std::uint64_t i = 1; i <= wave1; ++i) {
      (void)nodes[entry1]->submit_request(9000 + i, 1,
                                          to_bytes("cmd-" + std::to_string(i)));
    }
  });
  sim.schedule_after(500'000, [&nodes, wave1, target, entry1, entry2,
                               entry3] {
    // A client retry of the first request against another replica: the
    // owning group's dedup must keep it from executing twice.
    (void)nodes[entry3]->submit_request(9001, 1, to_bytes("cmd-1"));
    for (std::uint64_t i = wave1 + 1; i <= target; ++i) {
      const ReplicaId entry = i == wave1 + 1 ? entry2 : entry1;
      (void)nodes[entry]->submit_request(9000 + i, 1,
                                         to_bytes("cmd-" + std::to_string(i)));
    }
  });

  for (ReplicaId id = 1; id <= spec.n; ++id) {
    if (!down[id]) nodes[id]->start();
  }
  std::size_t fired = 0;
  while (done < correct_total && fired < spec.max_events &&
         sim.now() < spec.deadline) {
    if (!sim.step()) break;
    ++fired;
  }

  // Recount from replica state (checkpoint adoption skips per-command
  // callbacks, exactly as in the single-group path).
  done = 0;
  for (ReplicaId id = 1; id <= spec.n; ++id) {
    if (down[id] || id == silenced || !nodes[id]) continue;
    if (nodes[id]->executed_commands() >= target) ++done;
  }

  ScenarioOutcome outcome;
  outcome.seed = seed;
  outcome.terminated = done == correct_total;
  outcome.decided = done;
  outcome.correct = correct_total;
  outcome.messages = network.stats().sends;
  outcome.bytes = network.stats().bytes_sent;
  outcome.events = sim.events_fired();
  outcome.last_decision_at = last_execution_at;

  // Agreement shard by shard: within each group, correct replicas'
  // retained slot logs must agree wherever they overlap with the
  // furthest-executed replica's, and equal-length logs must share the
  // chained digest.
  bool agreement = true;
  std::ostringstream transcript;
  for (std::uint32_t s = 0; s < spec.shards; ++s) {
    const smr::SmrReplica* longest = nullptr;
    for (ReplicaId id = 1; id <= spec.n; ++id) {
      if (down[id] || !nodes[id]) continue;
      const auto& g = nodes[id]->group(s);
      if (longest == nullptr ||
          g.committed_slots() > longest->committed_slots()) {
        longest = &g;
      }
    }
    for (ReplicaId id = 1; id <= spec.n; ++id) {
      if (down[id] || !nodes[id]) {
        if (s == 0) transcript << id << " down\n";
        continue;
      }
      const auto& g = nodes[id]->group(s);
      const auto& slot_log = g.slot_log();
      const std::uint64_t base = g.log_base();
      for (std::size_t i = 0; i < slot_log.size(); ++i) {
        const std::uint64_t slot = base + i;
        if (slot < longest->log_base() ||
            slot >= longest->committed_slots()) {
          continue;
        }
        if (slot_log[i] !=
            longest->slot_log()[slot - longest->log_base()]) {
          agreement = false;
        }
      }
      if (g.committed_slots() == longest->committed_slots() &&
          g.log_digest() != longest->log_digest()) {
        agreement = false;
      }
      transcript << id << " s" << s << " " << g.executed_commands() << " "
                 << g.committed_slots() << " " << g.log_base() << " "
                 << g.log_digest() << "\n";
    }
  }
  outcome.agreement = agreement;
  outcome.transcript = transcript.str();
  if (victim != 0) {
    std::error_code ec;
    victim_wals.clear();
    std::filesystem::remove_all(wal_root, ec);
  }
  return outcome;
}

}  // namespace

ScenarioOutcome run_scenario(const ScenarioSpec& spec, std::uint64_t seed) {
  if (spec.workload != Workload::kSingleShot) {
    return run_scenario_smr(spec, seed);
  }
  Cluster cluster(make_cluster_config(spec, seed));
  apply_network_fault(cluster.network(), cluster.simulator(), spec,
                      cluster.config().latency.gst, seed);

  cluster.start();
  const bool done = cluster.run_to_completion(spec.deadline, spec.max_events);

  ScenarioOutcome outcome;
  outcome.seed = seed;
  outcome.terminated = done;
  outcome.agreement = cluster.agreement_ok();
  outcome.decided = cluster.correct_decided_count();
  outcome.correct = cluster.correct_ids().size();
  outcome.messages = cluster.network().stats().sends;
  outcome.bytes = cluster.network().stats().bytes_sent;
  outcome.events = cluster.simulator().events_fired();
  for (const auto& d : cluster.decisions()) {
    outcome.max_view = std::max(outcome.max_view, d.view);
    outcome.last_decision_at = std::max(outcome.last_decision_at, d.at);
  }
  outcome.transcript = decision_transcript(cluster);
  return outcome;
}

ScenarioOutcome run_scenario_smr(const ScenarioSpec& spec,
                                 std::uint64_t seed) {
  if (spec.shards > 1) return run_scenario_smr_sharded(spec, seed);
  const ClusterConfig cfg = make_cluster_config(spec, seed);
  net::Simulator sim;
  net::Network network(sim, spec.n, seed, cfg.latency);
  const auto suite = crypto::make_sim_suite();

  std::vector<crypto::KeyPair> keys(spec.n + 1);
  std::vector<Bytes> key_table(spec.n + 1);
  for (ReplicaId id = 1; id <= spec.n; ++id) {
    keys[id] = suite->keygen(mix64(seed, id));
    key_table[id] = keys[id].public_key;
  }
  const crypto::PublicKeyDir public_keys(std::move(key_table));

  // Crash shape: the f highest ids never start and their links are dead
  // (the fleet has no Byzantine node kinds — network faults and crashes
  // are what the SMR conformance dimension covers).
  std::vector<bool> down(spec.n + 1, false);
  if (spec.fault == Fault::kSilentFollowers) {
    for (std::uint32_t i = 0; i < spec.f && i < spec.n; ++i) {
      down[spec.n - i] = true;
    }
  }

  // Crash-restart shape: replica 2 is killed mid-run (node object
  // destroyed, exactly what a kill -9 looks like to the others) and later
  // reconstructed from its write-ahead log. A small checkpoint interval
  // makes the fleet stabilize a checkpoint before the kill so recovery
  // starts from it rather than from genesis.
  const ReplicaId victim = spec.fault == Fault::kKillRestart ? 2 : 0;
  const bool with_reads = spec.workload == Workload::kSmrReads;
  smr::SmrOptions smr_opts = spec.smr;
  if (with_reads) {
    smr_opts.serve_reads = true;
    // Lease validity must be of the same order as the view-change
    // timeout: a promise defers wish/new-leader traffic for up to
    // duration + skew, and a deferral window far beyond the synchronizer
    // timeout lets later slots race ahead of a stalled one (their
    // batches execute first and the per-client dedup then supersedes the
    // stalled slot's requests). The defaults (2 s) are wall-clock knobs;
    // scale them to the harness's 100 ms virtual timeouts.
    smr_opts.lease_duration = 100'000;
    smr_opts.lease_skew = 25'000;
  }
  std::unique_ptr<store::Wal> victim_wal;
  std::filesystem::path wal_dir;
  if (victim != 0) {
    smr_opts.checkpoint_interval = 2;
    wal_dir = std::filesystem::temp_directory_path() /
              ("probft-kr-" + std::to_string(::getpid()) + "-" +
               std::to_string(seed));
    std::filesystem::remove_all(wal_dir);
    // The simulator only fakes the crash (object teardown, not process
    // death), so fsync buys nothing here — skip it for speed.
    victim_wal = std::make_unique<store::Wal>(
        store::WalOptions{wal_dir.string(), /*fsync=*/false});
  }
  // Timers scheduled by a killed node must not fire into freed memory:
  // under kill-restart every node's timer callbacks are epoch-guarded and
  // the victim's epoch is bumped at the kill.
  std::vector<std::uint64_t> epochs(spec.n + 1, 0);

  const std::uint64_t target = spec.smr_commands;
  std::size_t correct_total = 0;
  std::size_t done = 0;  // correct replicas that executed the full workload
  TimePoint last_execution_at = 0;

  std::vector<std::unique_ptr<smr::SmrReplica>> nodes(spec.n + 1);
  std::function<void(ReplicaId)> build_node = [&](ReplicaId id) {
    NodeParams params;
    params.id = id;
    params.n = spec.n;
    params.f = spec.f;
    params.o = spec.o;
    params.l = spec.l;
    params.smr = smr_opts;
    params.suite = suite.get();
    params.secret_key = keys[id].secret_key;
    params.public_keys = public_keys;
    if (id == victim) params.wal = victim_wal.get();
    core::ProtocolHost host = transport_host(
        network, id,
        [&sim, &epochs, id, guarded = victim != 0](Duration d,
                                                   std::function<void()> fn) {
          if (!guarded) {
            sim.schedule_after(d, std::move(fn));
            return;
          }
          const std::uint64_t epoch = epochs[id];
          sim.schedule_after(d, [&epochs, id, epoch, fn = std::move(fn)] {
            if (epochs[id] == epoch) fn();
          });
        });
    host.on_commit = [&done, &down, &last_execution_at, &sim, target, id](
                         std::uint64_t index, const Bytes&) {
      last_execution_at = sim.now();
      if (!down[id] && index + 1 == target) ++done;
    };
    nodes[id] = make_smr_node(params, std::move(host));
    network.register_handler(
        id, [&nodes, id](ReplicaId from, std::uint8_t tag, const Bytes& m) {
          if (nodes[id]) nodes[id]->on_message(from, tag, m);
        });
  };
  for (ReplicaId id = 1; id <= spec.n; ++id) {
    if (!down[id]) ++correct_total;
    build_node(id);
  }

  if (victim != 0) {
    // Kill between the waves, restart before wave 2 lands: peers keep
    // deciding while the victim is gone, the restarted node recovers its
    // prefix from the WAL and backfills the rest via signed hints.
    sim.schedule_after(250'000, [&epochs, &nodes, victim] {
      ++epochs[victim];
      nodes[victim].reset();
    });
    sim.schedule_after(450'000, [&build_node, &nodes, &victim_wal, wal_dir,
                                 victim] {
      // A real restart re-opens the log from disk; the Wal's recovery
      // views are fixed at open, so reusing the pre-kill object would
      // hand the "recovered" replica an empty record list.
      victim_wal.reset();
      victim_wal = std::make_unique<store::Wal>(
          store::WalOptions{wal_dir.string(), /*fsync=*/false});
      build_node(victim);
      nodes[victim]->start();
    });
  }

  if (spec.fault == Fault::kSilentFollowers) {
    network.set_filter([&down](ReplicaId from, ReplicaId to, std::uint8_t) {
      return down[from] || down[to];
    });
  } else {
    apply_network_fault(network, sim, spec, cfg.latency.gst, seed);
  }

  // Two-wave client workload. Wave 2 lands after every benign outage
  // cleared (partitions heal at GST ≤ 300 ms, churn victims recover by
  // 400 ms), so replicas that missed wave 1 see fresh slot traffic, open
  // the missed slots and backfill them via decided-value hints/pulls.
  //
  // Client shape: the historical smr workload pipelines one client
  // (9001) through consecutive seqs — every pinned transcript was
  // captured against it. The reads workload instead gives each command
  // its own client id: lease promises legitimately delay view changes
  // (a wish defers for up to duration + skew), so a stalled slot can
  // resolve empty after later slots already executed — and a pipelined
  // client's requeued low seqs would then be superseded by its executed
  // high seq under highest-seq dedup. Distinct clients make delayed
  // commands re-proposable instead of droppable.
  const ReplicaId entry2 = spec.n >= 2 ? 2 : 1;
  const ReplicaId entry3 = spec.n >= 3 ? 3 : 1;
  const std::uint64_t wave1 = (target + 1) / 2;
  const auto wave_client = [with_reads](std::uint64_t i) {
    return with_reads ? 9100 + i : 9001;
  };
  const auto wave_seq = [with_reads](std::uint64_t i) {
    return with_reads ? 1 : i;
  };
  sim.schedule_after(1'000, [&nodes, wave1, wave_client, wave_seq] {
    for (std::uint64_t i = 1; i <= wave1; ++i) {
      (void)nodes[1]->submit_request(wave_client(i), wave_seq(i),
                                     to_bytes("cmd-" + std::to_string(i)));
    }
  });
  sim.schedule_after(500'000, [&nodes, wave1, target, entry2, entry3,
                               wave_client, wave_seq] {
    // A client retry of the first request against another replica: the
    // dedup table must keep it from executing twice.
    (void)nodes[entry3]->submit_request(wave_client(1), wave_seq(1),
                                        to_bytes("cmd-1"));
    std::uint64_t next = wave1 + 1;
    if (next <= target) {
      // A second client entering at a non-leader replica (forwarded).
      (void)nodes[entry2]->submit_request(9002, 1, to_bytes("cmd-w2"));
      ++next;
    }
    for (; next <= target; ++next) {
      (void)nodes[1]->submit_request(
          wave_client(next - 1), wave_seq(next - 1),
          to_bytes("cmd-" + std::to_string(next - 1)));
    }
  });

  for (ReplicaId id = 1; id <= spec.n; ++id) {
    if (!down[id]) nodes[id]->start();
  }
  std::size_t fired = 0;
  while (done < correct_total && fired < spec.max_events &&
         sim.now() < spec.deadline) {
    if (!sim.step()) break;
    ++fired;
  }

  // Read phase (Workload::kSmrReads): once the write workload completed,
  // every up replica answers the known first write at all three
  // consistency levels. The pinned invariant is freedom from stale
  // reads, not universal service — a replica that recovered over a view
  // gap (WAL snapshot, adopted checkpoint) answers kRejected by design,
  // and that is counted but never stale.
  std::uint64_t reads_attempted = 0;
  std::uint64_t reads_executed = 0;
  std::uint64_t reads_rejected = 0;
  std::uint64_t stale_reads = 0;
  if (with_reads) {
    const Bytes expected = to_bytes("cmd-1");
    std::uint64_t reads_fired = 0;
    for (ReplicaId id = 1; id <= spec.n; ++id) {
      if (down[id] || !nodes[id]) continue;
      for (const net::ReadConsistency mode :
           {net::ReadConsistency::kLinearizable,
            net::ReadConsistency::kSequential,
            net::ReadConsistency::kStaleOk}) {
        ++reads_attempted;
        nodes[id]->submit_read(
            to_bytes("cmd-1"), mode, 0,
            [&reads_fired, &reads_executed, &reads_rejected, &stale_reads,
             &expected, mode](const smr::SmrReplica::ReadResult& r) {
              ++reads_fired;
              if (r.status != net::ReplyStatus::kExecuted) {
                ++reads_rejected;
                return;
              }
              ++reads_executed;
              // Stale-ok makes no freshness promise; the other two do.
              if (mode != net::ReadConsistency::kStaleOk &&
                  r.value != expected) {
                ++stale_reads;
              }
            });
      }
    }
    const TimePoint read_deadline = sim.now() + 5'000'000;
    while (reads_fired < reads_attempted && fired < spec.max_events &&
           sim.now() < read_deadline) {
      if (!sim.step()) break;
      ++fired;
    }
  }

  // Recount completion from replica state rather than trusting the
  // incremental counter: a replica that adopted a certified checkpoint
  // jumped past individual executions, so its on_commit callbacks never
  // saw the final index even though it holds the full workload.
  done = 0;
  for (ReplicaId id = 1; id <= spec.n; ++id) {
    if (!down[id] && nodes[id] && nodes[id]->executed_commands() >= target) {
      ++done;
    }
  }

  ScenarioOutcome outcome;
  outcome.seed = seed;
  outcome.terminated = done == correct_total;
  outcome.decided = done;
  outcome.correct = correct_total;
  outcome.messages = network.stats().sends;
  outcome.bytes = network.stats().bytes_sent;
  outcome.events = sim.events_fired();
  outcome.last_decision_at = last_execution_at;
  outcome.reads_attempted = reads_attempted;
  outcome.reads_executed = reads_executed;
  outcome.reads_rejected = reads_rejected;
  outcome.stale_reads = stale_reads;

  // Agreement at the log level: correct replicas' retained slot logs must
  // agree wherever they overlap (logs may start at different bases once
  // stable checkpoints truncate them). The reference is the replica that
  // executed furthest.
  const smr::SmrReplica* longest = nullptr;
  for (ReplicaId id = 1; id <= spec.n; ++id) {
    if (down[id] || !nodes[id]) continue;
    if (longest == nullptr ||
        nodes[id]->committed_slots() > longest->committed_slots()) {
      longest = nodes[id].get();
    }
  }
  bool agreement = true;
  std::ostringstream transcript;
  for (ReplicaId id = 1; id <= spec.n; ++id) {
    if (down[id] || !nodes[id]) {
      transcript << id << " down\n";
      continue;
    }
    const auto& slot_log = nodes[id]->slot_log();
    const std::uint64_t base = nodes[id]->log_base();
    for (std::size_t i = 0; i < slot_log.size(); ++i) {
      const std::uint64_t slot = base + i;
      if (slot < longest->log_base() ||
          slot >= longest->committed_slots()) {
        continue;  // outside the reference's retained range
      }
      if (slot_log[i] !=
          longest->slot_log()[slot - longest->log_base()]) {
        agreement = false;
      }
    }
    // Replicas that executed equally far must hold bit-identical logs:
    // the chained digest covers truncated slots too.
    if (nodes[id]->committed_slots() == longest->committed_slots() &&
        nodes[id]->log_digest() != longest->log_digest()) {
      agreement = false;
    }
    transcript << id << " " << nodes[id]->executed_commands() << " "
               << nodes[id]->committed_slots() << " "
               << nodes[id]->log_base() << " " << nodes[id]->log_digest()
               << "\n";
  }
  outcome.agreement = agreement;
  outcome.transcript = transcript.str();
  if (victim != 0) {
    std::error_code ec;
    victim_wal.reset();
    std::filesystem::remove_all(wal_dir, ec);
  }
  return outcome;
}

ScenarioResult run_scenario(const ScenarioSpec& spec) {
  ScenarioResult result;
  result.spec = spec;
  result.outcomes.reserve(spec.seeds.size());
  for (const std::uint64_t seed : spec.seeds) {
    result.outcomes.push_back(run_scenario(spec, seed));
  }
  return result;
}

std::vector<ScenarioSpec> expand_matrix(const std::vector<Protocol>& protocols,
                                        const std::vector<Fault>& faults,
                                        const std::vector<std::uint64_t>& seeds,
                                        const ScenarioSpec& base) {
  std::vector<ScenarioSpec> specs;
  for (const Protocol protocol : protocols) {
    for (const Fault fault : faults) {
      ScenarioSpec spec = base;
      spec.protocol = protocol;
      spec.fault = fault;
      spec.seeds = seeds;
      if (!fault_applicable(spec)) continue;
      spec.expect_termination = fault_expects_termination(fault);
      specs.push_back(std::move(spec));
    }
  }
  return specs;
}

std::vector<ScenarioResult> run_matrix(const std::vector<ScenarioSpec>& specs) {
  std::vector<ScenarioResult> results;
  results.reserve(specs.size());
  for (const ScenarioSpec& spec : specs) {
    results.push_back(run_scenario(spec));
  }
  return results;
}

}  // namespace probft::sim
