#include "sim/cluster.hpp"

#include <stdexcept>

namespace probft::sim {

namespace {

Bytes default_value_for(const ClusterConfig& cfg, ReplicaId id) {
  if (id <= cfg.my_values.size() && !cfg.my_values[id - 1].empty()) {
    return cfg.my_values[id - 1];
  }
  return default_node_value(cfg.value_prefix, id);
}

}  // namespace

Cluster::Cluster(ClusterConfig config) : cfg_(std::move(config)) {
  if (cfg_.n == 0) throw std::invalid_argument("Cluster: n must be > 0");
  if (cfg_.suite == nullptr) {
    owned_suite_ = crypto::make_sim_suite();
    suite_ = owned_suite_.get();
  } else {
    suite_ = cfg_.suite;
  }
  network_ = std::make_unique<net::Network>(sim_, cfg_.n, cfg_.seed,
                                            cfg_.latency);
  keys_.resize(cfg_.n + 1);
  for (ReplicaId id = 1; id <= cfg_.n; ++id) {
    keys_[id] = suite_->keygen(mix64(cfg_.seed, id));
  }
  decided_.assign(cfg_.n + 1, false);
  build_nodes();
}

Cluster::~Cluster() = default;

Behavior Cluster::behavior_of(ReplicaId id) const {
  if (id < cfg_.behaviors.size() + 1 && id >= 1) {
    return cfg_.behaviors[id - 1];
  }
  return Behavior::kHonest;
}

bool Cluster::is_byzantine(ReplicaId id) const {
  return behavior_of(id) != Behavior::kHonest;
}

void Cluster::build_nodes() {
  // One shared key directory for the whole cluster (configs copy the
  // handle, not the n keys).
  std::vector<Bytes> key_table(cfg_.n + 1);
  for (ReplicaId id = 1; id <= cfg_.n; ++id) {
    key_table[id] = keys_[id].public_key;
  }
  const crypto::PublicKeyDir public_keys(std::move(key_table));

  // Attack plan (shared by equivocating leader and colluders).
  std::vector<bool> byz(cfg_.n + 1, false);
  for (ReplicaId id = 1; id <= cfg_.n; ++id) byz[id] = is_byzantine(id);
  Bytes value_a = cfg_.attack_value_a.empty() ? to_bytes("attack-value-A")
                                              : cfg_.attack_value_a;
  Bytes value_b = cfg_.attack_value_b.empty() ? to_bytes("attack-value-B")
                                              : cfg_.attack_value_b;
  plan_ = std::make_shared<const AttackPlan>(
      AttackPlan::make(cfg_.split, cfg_.n, byz, value_a, value_b));

  nodes_.clear();
  nodes_.resize(cfg_.n + 1);

  // Nodes see the network only through the ITransport interface — the same
  // boundary the TCP backend implements — plus the simulator's clock.
  net::ITransport& transport = *network_;
  net::ITransport* transport_ptr = network_.get();

  for (ReplicaId id = 1; id <= cfg_.n; ++id) {
    auto set_timer = [this](Duration d, std::function<void()> fn) {
      sim_.schedule_after(d, std::move(fn));
    };
    auto on_decide = [this, id](View view, const Bytes& value) {
      if (!decided_[id]) {
        decided_[id] = true;
        if (!is_byzantine(id)) ++correct_decided_;
        decisions_.push_back(DecisionRecord{id, view, value, sim_.now()});
      }
    };

    const Behavior behavior = behavior_of(id);
    if (behavior == Behavior::kHonest) {
      NodeParams params;
      params.protocol = cfg_.protocol;
      params.id = id;
      params.n = cfg_.n;
      params.f = cfg_.f;
      params.o = cfg_.o;
      params.l = cfg_.l;
      params.my_value = default_value_for(cfg_, id);
      params.stop_sync_on_decide = cfg_.stop_sync_on_decide;
      params.fast_verify = cfg_.fast_verify;
      params.suite = suite_;
      params.secret_key = keys_[id].secret_key;
      params.public_keys = public_keys;
      params.sync = cfg_.sync;
      core::ProtocolHost host = transport_host(transport, id, set_timer);
      host.on_decide = on_decide;
      nodes_[id] = make_honest_node(params, std::move(host));
    } else {
      ByzantineEnv env;
      env.id = id;
      env.n = cfg_.n;
      env.f = cfg_.f;
      env.o = cfg_.o;
      env.l = cfg_.l;
      env.suite = suite_;
      env.secret_key = keys_[id].secret_key;
      env.public_keys = public_keys;
      env.send = [transport_ptr, id](ReplicaId to, std::uint8_t tag,
                                     const Bytes& m) {
        transport_ptr->send(id, to, tag, m);
      };
      env.broadcast = [transport_ptr, id](std::uint8_t tag, const Bytes& m) {
        transport_ptr->broadcast(id, tag, m);
      };
      switch (behavior) {
        case Behavior::kSilent:
          nodes_[id] = std::make_unique<SilentNode>(std::move(env));
          break;
        case Behavior::kEquivocateLeader:
          nodes_[id] = std::make_unique<EquivocatingLeaderNode>(
              std::move(env), plan_);
          break;
        case Behavior::kColludeFollower:
          nodes_[id] = std::make_unique<ColludingFollowerNode>(
              std::move(env), plan_);
          break;
        case Behavior::kFlood:
          nodes_[id] = std::make_unique<FloodingNode>(
              std::move(env), to_bytes("flood-value"));
          break;
        case Behavior::kHonest:
          break;  // unreachable
      }
    }

    network_->register_handler(
        id, [this, id](ReplicaId from, std::uint8_t tag, const Bytes& m) {
          nodes_[id]->on_message(from, tag, m);
        });
  }

  correct_total_ = 0;
  for (ReplicaId id = 1; id <= cfg_.n; ++id) {
    if (!is_byzantine(id)) ++correct_total_;
  }
}

void Cluster::start() {
  for (ReplicaId id = 1; id <= cfg_.n; ++id) {
    nodes_[id]->start();
  }
}

bool Cluster::run_to_completion(TimePoint deadline, std::size_t max_events) {
  std::size_t fired = 0;
  while (!all_correct_decided() && fired < max_events &&
         sim_.now() < deadline) {
    if (!sim_.step()) break;
    ++fired;
  }
  return all_correct_decided();
}

std::vector<ReplicaId> Cluster::correct_ids() const {
  std::vector<ReplicaId> out;
  for (ReplicaId id = 1; id <= cfg_.n; ++id) {
    if (!is_byzantine(id)) out.push_back(id);
  }
  return out;
}

std::size_t Cluster::correct_decided_count() const {
  return correct_decided_;
}

bool Cluster::all_correct_decided() const {
  return correct_decided_ == correct_total_;
}

std::set<Bytes> Cluster::decided_values() const {
  std::set<Bytes> values;
  for (const auto& d : decisions_) {
    if (!is_byzantine(d.replica)) values.insert(d.value);
  }
  return values;
}

const core::Replica* Cluster::probft(ReplicaId id) const {
  return dynamic_cast<const core::Replica*>(nodes_[id].get());
}

const pbft::PbftReplica* Cluster::pbft(ReplicaId id) const {
  return dynamic_cast<const pbft::PbftReplica*>(nodes_[id].get());
}

const hotstuff::HotStuffReplica* Cluster::hotstuff(ReplicaId id) const {
  return dynamic_cast<const hotstuff::HotStuffReplica*>(nodes_[id].get());
}

}  // namespace probft::sim
