// In-process TCP loopback cluster runner.
//
// Realizes a ScenarioSpec over the REAL socket backend: n TcpTransports
// bound to ephemeral 127.0.0.1 ports, one OS thread per replica driving
// its transport's event loop, replicas built through the same
// sim::make_honest_node factory the simulator uses. This is the smoke path
// for `scenario_runner --transport tcp-loopback` and the loopback
// conformance tests — small n, wall-clock bounded, asserting the same
// agreement/termination outcomes as the simulator path.
//
// Differences from the simulator path, by construction:
//  - time is real: the spec's virtual-µs deadline is reinterpreted as a
//    wall-clock budget (capped, so a mis-set spec cannot hang CI);
//  - latency presets and RNG-driven faults do not apply — the kernel's
//    loopback path is the network (tcp_fault_supported() gates specs);
//  - outcomes are not bit-reproducible across runs (real scheduling), so
//    no transcript-determinism claims are made, only protocol invariants.
#pragma once

#include "sim/scenario.hpp"

namespace probft::sim {

/// Faults realizable over real sockets: crash shapes (a silent replica is
/// one whose process never speaks) and the fault-free baseline. RNG-driven
/// network faults (partitions, churn, reordering, duplication) and
/// ProBFT-format attack traffic stay simulator-only.
[[nodiscard]] bool tcp_fault_supported(Fault fault);

/// Hard wall-clock cap for one loopback run (µs).
inline constexpr Duration kTcpMaxWallUs = 60'000'000;

/// Runs one (spec, seed) experiment over TCP loopback. The seed feeds key
/// generation and proposal values exactly like the simulator path.
/// Requires tcp_fault_supported(spec.fault).
[[nodiscard]] ScenarioOutcome run_scenario_tcp(const ScenarioSpec& spec,
                                               std::uint64_t seed);

}  // namespace probft::sim
