// Declarative scenario conformance harness.
//
// A ScenarioSpec names everything that defines one experiment — protocol,
// cluster size, fault injection, latency/partition model, and the seeds to
// sweep — and the harness turns it into ClusterConfigs, runs the cluster,
// and reports uniform outcomes (termination, agreement, decision
// transcript). This is the single source of truth for scenario → cluster
// wiring; examples/scenario_runner.cpp and the protocol tests build on it
// instead of duplicating per-protocol config code.
//
// The matrix runner executes the cross-product protocols × faults × seeds
// (skipping combinations where a fault does not apply to a protocol) so
// conformance tests can assert the paper's agreement/termination claims
// uniformly across ProBFT, PBFT and HotStuff.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/cluster.hpp"

namespace probft::sim {

/// Fault injected into a scenario. Faults are descriptions, not per-replica
/// behavior vectors; the harness derives the vector from (fault, n, f).
enum class Fault {
  kNone,               // all replicas honest
  kSilentLeader,       // the view-1 leader crashes
  kSilentFollowers,    // the f highest-id replicas crash
  kEquivocate,         // Fig. 4c optimal-split: leader + f-1 colluders
  kFlood,              // one replica floods forged-sample messages
  kPartitionUntilGst,  // network splits in half until GST, then heals
  kChurnRecovery,      // f replicas crash (network-dead) and rejoin
  kAsymmetricPartition,  // until GST half A hears half B but not vice versa
  kReorderAdversary,   // adversarial per-link message reordering
  kAdaptiveLeader,     // adversary corrupts each new view's leader (budget f)
  kKillRestart,        // SMR only: kill one replica mid-run, restart it from
                       // its write-ahead log (crash-restart durability)
  kShardSilentLeader,  // sharded SMR only: shard 0's view-1 leader goes
                       // silent for shard-0 traffic (its kShardTag frames
                       // naming shard 0 are dropped); sibling shards must
                       // keep committing while group 0 view-changes past it
};

/// Latency presets over net::LatencyConfig.
enum class LatencyModel {
  kSynchronous,       // GST = 0: every message within Δ
  kPartialSynchrony,  // adversarial delays (and held messages) before GST
  kLossyDuplicating,  // partial synchrony plus duplicate deliveries
};

/// What the cluster is asked to do. kSingleShot decides one value per
/// replica (the original conformance shape); kSmr drives a pipelined SMR
/// fleet through a client workload and asserts identical logs — the
/// conformance bar moves from "one agreed value" to "one agreed log".
/// kSmrReads is kSmr with the read fast path enabled: after the write
/// workload completes, every up replica answers a known key at all three
/// consistency levels and the outcome counts stale/rejected reads (the
/// pinned invariant is stale_reads == 0 under every supported fault).
enum class Workload {
  kSingleShot,
  kSmr,
  kSmrReads,
};

struct ScenarioSpec {
  Protocol protocol = Protocol::kProbft;
  std::uint32_t n = 4;
  std::uint32_t f = 0;
  double o = 1.7;  // ProBFT sample factor
  double l = 2.0;  // ProBFT quorum factor
  Fault fault = Fault::kNone;
  LatencyModel latency = LatencyModel::kSynchronous;
  Workload workload = Workload::kSingleShot;
  /// SMR workload shape: pipeline/batching options and how many client
  /// requests the harness submits (in two waves, so replicas cut off by a
  /// partition or churn outage see fresh traffic after healing).
  smr::SmrOptions smr;
  std::uint64_t smr_commands = 12;
  /// Consensus groups for the SMR workload. 1 = the plain SmrReplica
  /// fleet (the historical shape every pinned transcript was captured
  /// against); > 1 = a shard::ShardedSmr fleet with requests routed by
  /// the placement layer and per-shard log agreement asserted.
  std::uint32_t shards = 1;
  std::vector<std::uint64_t> seeds = {1};
  TimePoint deadline = 120'000'000;      // virtual μs
  std::size_t max_events = 50'000'000;
  /// Whether the spec expects every correct replica to decide. Faults that
  /// exceed the protocol's tolerance can set this to false and the matrix
  /// will only assert agreement (safety), not termination.
  bool expect_termination = true;
};

/// Uniform per-run outcome, one per (spec, seed).
struct ScenarioOutcome {
  std::uint64_t seed = 0;
  bool terminated = false;  // all correct replicas decided in time
  bool agreement = false;   // correct replicas decided ≤ 1 distinct value
  std::size_t decided = 0;
  std::size_t correct = 0;
  View max_view = 0;
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
  std::uint64_t events = 0;  // simulator events executed by the run
  TimePoint last_decision_at = 0;
  /// Canonical decision transcript: one "replica view valuehex at" line per
  /// decision in decision order. Equal transcripts ⇔ bit-identical runs,
  /// which is what the seed-determinism regression tests compare.
  std::string transcript;
  /// Read-phase accounting (Workload::kSmrReads only; zero otherwise).
  /// A "stale" read is an executed linearizable/sequential reply whose
  /// value is not the workload's known write — replicas that legitimately
  /// cannot serve (view gap after WAL/checkpoint recovery, no quorum)
  /// answer kRejected instead, which is counted but never stale.
  std::uint64_t reads_attempted = 0;
  std::uint64_t reads_executed = 0;
  std::uint64_t reads_rejected = 0;
  std::uint64_t stale_reads = 0;
};

struct ScenarioResult {
  ScenarioSpec spec;
  std::vector<ScenarioOutcome> outcomes;  // parallel to spec.seeds

  [[nodiscard]] bool all_agreement() const;
  [[nodiscard]] bool all_terminated() const;
};

[[nodiscard]] const char* to_string(Protocol protocol);
[[nodiscard]] const char* to_string(Fault fault);
[[nodiscard]] const char* to_string(LatencyModel model);
[[nodiscard]] const char* to_string(Workload workload);

/// Every protocol / fault in a stable order — the single enumeration the
/// matrix builders, CLI parsers and sweeps iterate, so adding an
/// enumerator means extending exactly one list (plus its to_string case).
[[nodiscard]] const std::vector<Protocol>& all_protocols();
[[nodiscard]] const std::vector<Fault>& all_faults();

/// Parses a protocol / fault name (the to_string spelling); returns false on
/// unknown input. Used by CLI front-ends.
bool protocol_from_string(const std::string& text, Protocol& out);
bool fault_from_string(const std::string& text, Fault& out);
bool workload_from_string(const std::string& text, Workload& out);

/// "probft/n32f3/equivocate/partial-synchrony" — stable id for reports.
[[nodiscard]] std::string scenario_name(const ScenarioSpec& spec);

/// The canonical conformance shape shared by the matrix test, the
/// determinism tests and the scenario-runner CLI defaults: n = 16, f = 3
/// with l = 1.5, so the ProBFT quorum (q = ⌈1.5·√16⌉ = 6) stays below the
/// 13 correct senders and every fault within tolerance can form quorums.
[[nodiscard]] ScenarioSpec conformance_base_spec();

/// Whether a fault can be injected under a protocol (equivocate/flood craft
/// ProBFT-format messages, so they only apply there) and cluster shape
/// (silent-followers and equivocate need f ≥ 1). For the SMR workload the
/// fault must additionally be realizable against a fleet
/// (smr_fault_supported).
[[nodiscard]] bool fault_applicable(const ScenarioSpec& spec);

/// Faults realizable against an SMR fleet: crash shapes and network
/// faults (silent followers, churn, partitions, reordering). The
/// ProBFT-format attack traffic (equivocate/flood) and the adaptive
/// leader corruption target single-shot wire tags and stay single-shot.
[[nodiscard]] bool smr_fault_supported(Fault fault);

/// Default termination expectation for a fault: active Byzantine attacks
/// can stall progress (the paper only claims agreement under them), every
/// benign fault must terminate.
[[nodiscard]] bool fault_expects_termination(Fault fault);

/// Expands the latency preset.
[[nodiscard]] net::LatencyConfig make_latency_config(LatencyModel model);

/// Translates (spec, seed) into the ClusterConfig the Cluster consumes —
/// behavior vector, attack split, latency model, quorum parameters.
[[nodiscard]] ClusterConfig make_cluster_config(const ScenarioSpec& spec,
                                                std::uint64_t seed);

/// Same, then overrides the timing knobs — integration tests keep their
/// historical latency/timeout settings while the fault shape still comes
/// from the spec.
[[nodiscard]] ClusterConfig make_cluster_config(
    const ScenarioSpec& spec, std::uint64_t seed,
    const sync::SyncConfig& sync, const net::LatencyConfig& latency);

/// Runs one (spec, seed) experiment to completion. Dispatches on
/// spec.workload: kSingleShot builds a Cluster, kSmr an SmrReplica fleet.
[[nodiscard]] ScenarioOutcome run_scenario(const ScenarioSpec& spec,
                                           std::uint64_t seed);

/// The SMR workload run path: n SmrReplicas over the simulated network,
/// a two-wave client workload of spec.smr_commands requests (including a
/// cross-replica retry that must execute once), fault filters from the
/// spec. `terminated` means every correct replica executed the full
/// workload; `agreement` means correct replicas' slot logs are
/// prefix-consistent; the transcript is one per-replica log-digest line.
[[nodiscard]] ScenarioOutcome run_scenario_smr(const ScenarioSpec& spec,
                                               std::uint64_t seed);

/// Runs every seed of one spec.
[[nodiscard]] ScenarioResult run_scenario(const ScenarioSpec& spec);

/// Cross-product builder: one spec per applicable (protocol, fault) pair,
/// each carrying the full seed list. `base` supplies n/f/o/l/latency/
/// deadline; termination expectations are derived per combination.
[[nodiscard]] std::vector<ScenarioSpec> expand_matrix(
    const std::vector<Protocol>& protocols, const std::vector<Fault>& faults,
    const std::vector<std::uint64_t>& seeds, const ScenarioSpec& base);

/// Runs every spec in order.
[[nodiscard]] std::vector<ScenarioResult> run_matrix(
    const std::vector<ScenarioSpec>& specs);

}  // namespace probft::sim
