#include "sim/byzantine.hpp"

#include <algorithm>
#include <cmath>

#include "common/rng.hpp"
#include "core/messages.hpp"

namespace probft::sim {

using core::MsgTag;
using core::PhaseMsg;
using core::ProposeMsg;
using core::SignedProposal;

std::uint32_t ByzantineEnv::q() const {
  return static_cast<std::uint32_t>(
      std::ceil(l * std::sqrt(static_cast<double>(n))));
}

std::uint32_t ByzantineEnv::sample_size() const {
  const auto raw =
      static_cast<std::uint32_t>(std::ceil(o * static_cast<double>(q())));
  return std::min(raw, n);
}

// ---------------- ChurnPlan ----------------

ChurnPlan ChurnPlan::make(std::uint32_t n, std::uint32_t victims,
                          std::uint64_t seed, TimePoint earliest,
                          TimePoint latest) {
  ChurnPlan plan;
  plan.window_.assign(n + 1, {0, 0});
  if (n == 0 || victims == 0 || latest <= earliest) return plan;
  victims = std::min(victims, n);

  Xoshiro256StarStar rng(mix64(seed, 0x636875726eULL));  // "churn"
  const TimePoint span = latest - earliest;
  // Crashes start in the first half of the window so every victim has room
  // to recover by `latest`; outage lengths span [span/8, span/2].
  const auto picks = sample_without_replacement(rng, n, victims);
  std::vector<ReplicaId> chosen(picks.size());
  for (std::size_t i = 0; i < picks.size(); ++i) {
    chosen[i] = static_cast<ReplicaId>(picks[i] + 1);
  }
  std::sort(chosen.begin(), chosen.end());

  for (const ReplicaId id : chosen) {
    const TimePoint down = earliest + rng.bounded(span / 2 + 1);
    const Duration length =
        span / 8 + rng.bounded(span / 2 - span / 8 + 1);
    const TimePoint up = std::min<TimePoint>(down + length, latest);
    plan.outages.push_back(Outage{id, down, up});
    plan.window_[id] = {down, up};
  }
  return plan;
}

bool ChurnPlan::is_down(ReplicaId id, TimePoint now) const {
  if (id >= window_.size()) return false;
  const auto& [down, up] = window_[id];
  return now >= down && now < up && up > down;
}

// ---------------- AttackPlan ----------------

AttackPlan AttackPlan::make(SplitStrategy strategy, std::uint32_t n,
                            const std::vector<bool>& is_byzantine,
                            Bytes value_a, Bytes value_b) {
  AttackPlan plan;
  plan.value_a = std::move(value_a);
  plan.value_b = std::move(value_b);
  plan.side.assign(n + 1, Side::kNone);

  switch (strategy) {
    case SplitStrategy::kOptimal: {
      // Fig. 4c: correct replicas split in half; Byzantine see both values.
      std::uint32_t correct_seen = 0;
      std::uint32_t correct_total = 0;
      for (ReplicaId id = 1; id <= n; ++id) {
        if (!is_byzantine[id]) ++correct_total;
      }
      for (ReplicaId id = 1; id <= n; ++id) {
        if (is_byzantine[id]) {
          plan.side[id] = Side::kBoth;
        } else {
          plan.side[id] =
              (correct_seen++ < correct_total / 2) ? Side::kA : Side::kB;
        }
      }
      break;
    }
    case SplitStrategy::kHalves: {
      // Fig. 4b: everyone (Byzantine included) split in half.
      for (ReplicaId id = 1; id <= n; ++id) {
        plan.side[id] = (id <= n / 2) ? Side::kA : Side::kB;
      }
      break;
    }
    case SplitStrategy::kGeneralThreeWay: {
      // A Fig. 4a instance: a third each gets A, B, or nothing at all.
      for (ReplicaId id = 1; id <= n; ++id) {
        switch (id % 3) {
          case 0: plan.side[id] = Side::kA; break;
          case 1: plan.side[id] = Side::kB; break;
          default: plan.side[id] = Side::kNone; break;
        }
      }
      break;
    }
  }
  return plan;
}

// ---------------- EquivocatingLeaderNode ----------------

EquivocatingLeaderNode::EquivocatingLeaderNode(
    ByzantineEnv env, std::shared_ptr<const AttackPlan> plan)
    : env_(std::move(env)), plan_(std::move(plan)) {}

core::ProposeMsg EquivocatingLeaderNode::make_propose(
    const Bytes& value) const {
  SignedProposal prop;
  prop.view = 1;
  prop.value = value;
  prop.leader_sig = env_.suite->sign(
      env_.secret_key, SignedProposal::signing_bytes(1, value));
  ProposeMsg msg;
  msg.proposal = std::move(prop);
  msg.sender = env_.id;
  msg.sender_sig = env_.suite->sign(env_.secret_key, msg.signing_bytes());
  return msg;
}

void EquivocatingLeaderNode::start() {
  const Bytes raw_a = make_propose(plan_->value_a).to_bytes();
  const Bytes raw_b = make_propose(plan_->value_b).to_bytes();
  for (ReplicaId to = 1; to <= env_.n; ++to) {
    if (to == env_.id) continue;
    switch (plan_->side[to]) {
      case AttackPlan::Side::kA:
        env_.send(to, core::tag_byte(MsgTag::kPropose), raw_a);
        break;
      case AttackPlan::Side::kB:
        env_.send(to, core::tag_byte(MsgTag::kPropose), raw_b);
        break;
      case AttackPlan::Side::kBoth:
        env_.send(to, core::tag_byte(MsgTag::kPropose), raw_a);
        env_.send(to, core::tag_byte(MsgTag::kPropose), raw_b);
        break;
      case AttackPlan::Side::kNone:
        break;
    }
  }
}

// ---------------- ColludingFollowerNode ----------------

ColludingFollowerNode::ColludingFollowerNode(
    ByzantineEnv env, std::shared_ptr<const AttackPlan> plan)
    : env_(std::move(env)), plan_(std::move(plan)) {}

void ColludingFollowerNode::start() {}

void ColludingFollowerNode::on_message(ReplicaId /*from*/, std::uint8_t tag,
                                       const Bytes& payload) {
  if (tag != core::tag_byte(MsgTag::kPropose)) return;
  core::ProposeMsg msg;
  try {
    msg = core::ProposeMsg::from_bytes(payload);
  } catch (const CodecError&) {
    return;
  }
  if (msg.proposal.view != 1) return;
  support(msg.proposal.view, msg.proposal.value, msg.proposal.leader_sig);
}

void ColludingFollowerNode::support(View view, const Bytes& value,
                                    const Bytes& leader_sig) {
  // Send one Prepare and one Commit for `value` to the members of our
  // (VRF-pinned) samples that belong to this value's partition. Never send
  // conflicting values to the same *correct* replica — that would expose
  // the leader (Alg. 1 lines 23-25).
  const AttackPlan::Side value_side =
      (value == plan_->value_a) ? AttackPlan::Side::kA : AttackPlan::Side::kB;

  for (const char* phase : {"prepare", "commit"}) {
    const Bytes alpha = crypto::sample_alpha(view, phase);
    auto sampled = crypto::vrf_sample(*env_.suite, env_.secret_key,
                                      ByteSpan(alpha.data(), alpha.size()),
                                      env_.n, env_.sample_size());
    PhaseMsg pm;
    pm.proposal.view = view;
    pm.proposal.value = value;
    pm.proposal.leader_sig = leader_sig;
    pm.sample = sampled.sample;
    pm.vrf_proof = sampled.proof;
    pm.sender = env_.id;
    const MsgTag tag = (phase[0] == 'p') ? MsgTag::kPrepare : MsgTag::kCommit;
    pm.sender_sig =
        env_.suite->sign(env_.secret_key, pm.signing_bytes(tag));
    const Bytes raw = pm.to_bytes();
    for (const ReplicaId to : pm.sample) {
      const auto to_side = plan_->side[to];
      if (to_side == value_side || to_side == AttackPlan::Side::kBoth) {
        env_.send(to, core::tag_byte(tag), raw);
      }
    }
  }
}

// ---------------- FloodingNode ----------------

FloodingNode::FloodingNode(ByzantineEnv env, Bytes value)
    : env_(std::move(env)), value_(std::move(value)) {}

void FloodingNode::start() {
  // Claim a fabricated sample that covers everyone and attach a proof for a
  // *different* (the real) sample. Correct replicas must reject it.
  for (const char* phase : {"prepare", "commit"}) {
    const Bytes alpha = crypto::sample_alpha(1, phase);
    auto real = crypto::vrf_sample(*env_.suite, env_.secret_key,
                                   ByteSpan(alpha.data(), alpha.size()),
                                   env_.n, env_.sample_size());
    PhaseMsg pm;
    pm.proposal.view = 1;
    pm.proposal.value = value_;
    // Self-signed "leader" tuple: only valid if this node IS the leader;
    // otherwise rejected even earlier (leader-signature check).
    pm.proposal.leader_sig = env_.suite->sign(
        env_.secret_key, SignedProposal::signing_bytes(1, value_));
    pm.sample.resize(env_.n);
    for (ReplicaId id = 1; id <= env_.n; ++id) pm.sample[id - 1] = id;
    pm.vrf_proof = real.proof;  // proof does not match the claimed sample
    pm.sender = env_.id;
    const MsgTag tag = (phase[0] == 'p') ? MsgTag::kPrepare : MsgTag::kCommit;
    pm.sender_sig =
        env_.suite->sign(env_.secret_key, pm.signing_bytes(tag));
    env_.broadcast(core::tag_byte(tag), pm.to_bytes());
  }
}

// ---------------- AdaptiveLeaderAdversary ----------------

AdaptiveLeaderAdversary::AdaptiveLeaderAdversary(
    std::uint32_t n, std::uint32_t budget,
    std::vector<std::uint8_t> leadership_tags)
    : corrupted_(n + 1, false),
      leadership_tags_(std::move(leadership_tags)),
      budget_(budget) {}

bool AdaptiveLeaderAdversary::should_drop(ReplicaId from, std::uint8_t tag) {
  if (from == 0 || from >= corrupted_.size()) return false;
  if (corrupted_[from]) return true;
  if (corrupted_count_ >= budget_) return false;
  for (const std::uint8_t leadership_tag : leadership_tags_) {
    if (tag == leadership_tag) {
      // A new leader just rotated in: corrupt it. The triggering proposal
      // is itself suppressed (a broadcast's remaining fan-out hits the
      // corrupted_[from] fast path above).
      corrupted_[from] = true;
      ++corrupted_count_;
      return true;
    }
  }
  return false;
}

}  // namespace probft::sim
