// Shared honest-node construction: one place that knows how to turn
// (protocol, parameters, ProtocolHost) into a running replica.
//
// Both deployment worlds build their nodes here — sim::Cluster wires hosts
// to the deterministic in-process network, and the TCP runners
// (src/sim/tcp_runner.*, examples/probft_node.cpp) wire them to real
// sockets — so protocol selection and config plumbing cannot drift between
// the simulator and production-style deployments.
#pragma once

#include <memory>

#include "common/bytes.hpp"
#include "common/types.hpp"
#include "core/protocol_host.hpp"
#include "core/replica.hpp"
#include "crypto/suite.hpp"
#include "net/transport.hpp"
#include "smr/smr_replica.hpp"
#include "sync/synchronizer.hpp"

namespace probft::sim {

enum class Protocol { kProbft, kPbft, kHotStuff };

/// Everything an honest replica of any protocol needs besides its host.
struct NodeParams {
  Protocol protocol = Protocol::kProbft;
  ReplicaId id = 0;
  std::uint32_t n = 0;
  std::uint32_t f = 0;
  double o = 1.7;  // ProBFT sample factor
  double l = 2.0;  // ProBFT quorum factor
  Bytes my_value;
  bool stop_sync_on_decide = false;
  /// ProBFT verification fast path (digest cache + batch verify); off =
  /// naive per-reference re-verification (determinism checks, benches).
  bool fast_verify = true;
  const crypto::CryptoSuite* suite = nullptr;
  Bytes secret_key;
  crypto::PublicKeyDir public_keys;
  /// Optional shared verdict cache (core::ReplicaConfig::verdicts /
  /// smr::SmrConfig::verdicts): hosts running a core::VerifyPool pass the
  /// pool's thread-safe cache so worker-warmed verdicts are consumed.
  /// Null = private per-instance caches (simulator default). ProBFT only;
  /// PBFT/HotStuff nodes ignore it.
  std::shared_ptr<core::VerdictCache> verdicts;
  sync::SyncConfig sync;  // n/f filled in by the replica constructors
  /// Pipeline/batching shape for SMR nodes (make_smr_node); ignored by
  /// the single-shot protocols.
  smr::SmrOptions smr;
  /// Optional write-ahead log for SMR nodes (non-owning; must outlive the
  /// node). The replica recovers from its contents at construction.
  store::Wal* wal = nullptr;
  /// Per-executed-request callback for SMR nodes (client reply path).
  std::function<void(const smr::ExecutedCommand&)> on_execute;
};

/// Builds an honest replica of the requested protocol against `host`.
[[nodiscard]] std::unique_ptr<core::INode> make_honest_node(
    const NodeParams& params, core::ProtocolHost host);

/// Builds a pipelined SMR replica (ProBFT-backed log) against `host`,
/// using the same key/suite/sync plumbing as the single-shot factory —
/// `params.protocol` and `params.my_value` are ignored. Both deployment
/// worlds (sim fleets, the TCP node binary) construct SMR nodes here.
[[nodiscard]] std::unique_ptr<smr::SmrReplica> make_smr_node(
    const NodeParams& params, core::ProtocolHost host);

/// The default per-replica proposal value: `prefix` (or "value-") plus an
/// id suffix. Shared by the simulator cluster and the TCP runners so both
/// worlds propose identical values for identical configurations.
[[nodiscard]] Bytes default_node_value(const Bytes& prefix, ReplicaId id);

/// Wires a ProtocolHost's I/O half to a transport: send/broadcast go to
/// `transport` stamped with `id`; set_timer comes from `set_timer`. The
/// decision callbacks stay empty for the caller to fill.
[[nodiscard]] core::ProtocolHost transport_host(
    net::ITransport& transport, ReplicaId id,
    sync::Synchronizer::TimerSetter set_timer);

}  // namespace probft::sim
