// Byzantine node behaviors for the simulation harness (paper §4.3, Fig. 4).
//
// Byzantine replicas hold legitimate keys (the adversary statically corrupts
// replicas, §2.1) but deviate from the protocol. Crucially they CANNOT forge
// other replicas' signatures nor bias their own VRF samples — the VRF pins
// each replica's recipient sample per (view, phase). What they can do is
// choose *which payload* (if any) goes to each member of that fixed sample.
//
// Implemented behaviors:
//   SilentNode             — sends nothing at all (crash-like worst case for
//                            liveness; also models a silent leader).
//   EquivocatingLeaderNode — the leader of view 1 sends different proposals
//                            to different partitions: the general case
//                            (m-way), the sub-optimal halves case (Fig. 4b)
//                            and the optimal split (Fig. 4c).
//   ColludingFollowerNode  — a Byzantine follower executing the Fig. 4c
//                            attack: it sends Prepare and Commit messages
//                            for value A to sample members in partition A
//                            and for value B to members in partition B,
//                            without ever revealing the equivocation to a
//                            correct replica (sending both values to the
//                            same correct replica would expose the leader).
//   FloodingNode           — tries to force quorums by sending Prepare and
//                            Commit messages to EVERY replica while claiming
//                            a fabricated recipient sample; correct replicas
//                            must reject these because the VRF proof does
//                            not match (tests benefit (1) of §3.1).
#pragma once

#include <map>
#include <memory>

#include "common/bytes.hpp"
#include "common/types.hpp"
#include "core/replica.hpp"
#include "crypto/sampler.hpp"
#include "crypto/suite.hpp"

namespace probft::sim {

/// Equivocation strategy (Fig. 4 a/b/c).
enum class SplitStrategy {
  kGeneralThreeWay,  // Fig. 4a flavor: three overlapping-ish groups
  kHalves,           // Fig. 4b: split everyone (incl. Byzantine) in halves
  kOptimal,          // Fig. 4c: split correct replicas; Byzantine get both
};

/// Shared description of the coordinated equivocation attack.
struct AttackPlan {
  Bytes value_a;
  Bytes value_b;
  /// 1-based; for each replica, which value its partition receives.
  /// kOptimal: Byzantine replicas are marked 'both'.
  enum class Side : std::uint8_t { kA, kB, kBoth, kNone };
  std::vector<Side> side;  // index 0 unused

  /// Builds the plan for n replicas where ids (1..f) — or a caller-chosen
  /// set — are Byzantine.
  static AttackPlan make(SplitStrategy strategy, std::uint32_t n,
                         const std::vector<bool>& is_byzantine,
                         Bytes value_a, Bytes value_b);
};

/// Deterministic churn schedule (crash + recovery): each victim replica is
/// network-dead during [down_from, up_at) — every message to or from it is
/// dropped, modeling a crash that loses in-flight and incoming traffic.
/// After up_at the replica rejoins with its pre-crash state and catches up
/// through the view synchronizer (decided peers keep answering NewLeader /
/// Wish traffic), so a benign churn scenario still terminates.
struct ChurnPlan {
  struct Outage {
    ReplicaId replica = 0;
    TimePoint down_from = 0;
    TimePoint up_at = 0;
  };
  std::vector<Outage> outages;  // one per victim, sorted by replica id

  /// Draws `victims` distinct replicas (of n) and per-victim outage windows
  /// inside [earliest, latest], all deterministically from `seed`.
  static ChurnPlan make(std::uint32_t n, std::uint32_t victims,
                        std::uint64_t seed, TimePoint earliest,
                        TimePoint latest);

  /// O(1) lookup used by the network drop filter.
  [[nodiscard]] bool is_down(ReplicaId id, TimePoint now) const;

 private:
  /// Dense per-replica [down_from, up_at) windows, index 0 unused.
  std::vector<std::pair<TimePoint, TimePoint>> window_;
};

/// Adaptive leader-corruption adversary (paper §2.1 discusses static
/// corruption; this models the stronger adaptive variant as a fault for
/// the scenario matrix). Instead of fixing the corrupt set up front, the
/// adversary watches the wire and corrupts each view's leader at the
/// moment it assumes leadership: the first proposal-tagged message a
/// not-yet-corrupted replica emits consumes one unit of corruption budget,
/// and that proposal plus every later message from the replica is dropped
/// (the corrupted node is adversary-controlled and chooses silence — the
/// worst case for liveness). Leaders rotate round-robin, so with budget f
/// the leaders of the first f views are struck down one by one as they
/// rotate in; the view-(f+1) leader proposes unharmed. A corrupted replica
/// still *receives* traffic, but no termination claim is made for it —
/// specs wire this fault as non-benign (agreement only), like the
/// equivocation and flooding attacks.
class AdaptiveLeaderAdversary {
 public:
  /// `leadership_tags` are the wire tags only a view leader emits (the
  /// Propose/Proposal tag of the protocol under test).
  AdaptiveLeaderAdversary(std::uint32_t n, std::uint32_t budget,
                          std::vector<std::uint8_t> leadership_tags);

  /// Network-filter hook: true drops the message. Mutates the corrupt set
  /// when an uncorrupted replica spends budget by emitting a leadership
  /// tag.
  [[nodiscard]] bool should_drop(ReplicaId from, std::uint8_t tag);

  [[nodiscard]] bool is_corrupted(ReplicaId id) const {
    return id < corrupted_.size() && corrupted_[id];
  }
  [[nodiscard]] std::uint32_t corrupted_count() const {
    return corrupted_count_;
  }
  [[nodiscard]] std::uint32_t budget() const { return budget_; }

 private:
  std::vector<bool> corrupted_;  // 1-based, index 0 unused
  std::vector<std::uint8_t> leadership_tags_;
  std::uint32_t budget_;
  std::uint32_t corrupted_count_ = 0;
};

struct ByzantineEnv {
  ReplicaId id = 0;
  std::uint32_t n = 0;
  std::uint32_t f = 0;
  double o = 1.7;
  double l = 2.0;
  const crypto::CryptoSuite* suite = nullptr;
  Bytes secret_key;
  crypto::PublicKeyDir public_keys;
  std::function<void(ReplicaId to, std::uint8_t tag, const Bytes&)> send;
  std::function<void(std::uint8_t tag, const Bytes&)> broadcast;

  [[nodiscard]] std::uint32_t q() const;
  [[nodiscard]] std::uint32_t sample_size() const;
};

/// Completely silent replica.
class SilentNode final : public core::INode {
 public:
  explicit SilentNode(ByzantineEnv env) : env_(std::move(env)) {}
  void start() override {}
  void on_message(ReplicaId, std::uint8_t, const Bytes&) override {}

 private:
  ByzantineEnv env_;
};

/// Byzantine leader of view 1 sending per-partition proposals.
class EquivocatingLeaderNode final : public core::INode {
 public:
  EquivocatingLeaderNode(ByzantineEnv env,
                         std::shared_ptr<const AttackPlan> plan);
  void start() override;
  void on_message(ReplicaId, std::uint8_t, const Bytes&) override {}

 private:
  [[nodiscard]] core::ProposeMsg make_propose(const Bytes& value) const;

  ByzantineEnv env_;
  std::shared_ptr<const AttackPlan> plan_;
};

/// Byzantine follower executing the Fig. 4c collusion.
class ColludingFollowerNode final : public core::INode {
 public:
  ColludingFollowerNode(ByzantineEnv env,
                        std::shared_ptr<const AttackPlan> plan);
  void start() override;
  void on_message(ReplicaId from, std::uint8_t tag,
                  const Bytes& payload) override;

 private:
  void support(View view, const Bytes& value, const Bytes& leader_sig);

  ByzantineEnv env_;
  std::shared_ptr<const AttackPlan> plan_;
  bool supported_ = false;
};

/// Sends Prepare/Commit for a fabricated value to everyone with a forged
/// (non-VRF) sample covering all replicas.
class FloodingNode final : public core::INode {
 public:
  explicit FloodingNode(ByzantineEnv env, Bytes value);
  void start() override;
  void on_message(ReplicaId, std::uint8_t, const Bytes&) override {}

 private:
  ByzantineEnv env_;
  Bytes value_;
};

}  // namespace probft::sim
