#include "sim/montecarlo.hpp"

#include <vector>

#include "common/rng.hpp"

namespace probft::sim {

namespace {

/// Increments `count[member]` for every member of a fresh s-of-n sample.
void splash_sample(Xoshiro256StarStar& rng, std::uint32_t n, std::uint32_t s,
                   std::vector<std::uint16_t>& count) {
  for (const auto member : sample_without_replacement(rng, n, s)) {
    ++count[member];
  }
}

}  // namespace

TerminationStats mc_termination(const quorum::Params& params, int trials,
                                std::uint64_t seed) {
  const auto n = static_cast<std::uint32_t>(params.n);
  const auto f = static_cast<std::uint32_t>(params.f);
  const auto q = static_cast<std::uint32_t>(params.q());
  const auto s = static_cast<std::uint32_t>(params.s());
  const std::uint32_t correct = n - f;

  std::uint64_t decided_total = 0;
  std::uint64_t prepared_total = 0;
  std::uint64_t all_decided_trials = 0;

  std::vector<std::uint16_t> prepare_count(n);
  std::vector<std::uint16_t> commit_count(n);

  for (int t = 0; t < trials; ++t) {
    Xoshiro256StarStar rng(mix64(seed, static_cast<std::uint64_t>(t)));
    prepare_count.assign(n, 0);
    commit_count.assign(n, 0);

    // Replicas 0..correct-1 are the correct ones (sampling is symmetric).
    for (std::uint32_t j = 0; j < correct; ++j) {
      splash_sample(rng, n, s, prepare_count);
    }
    std::uint32_t committers = 0;
    for (std::uint32_t j = 0; j < correct; ++j) {
      if (prepare_count[j] >= q) {
        ++committers;
        splash_sample(rng, n, s, commit_count);
      }
    }
    prepared_total += committers;

    std::uint32_t decided = 0;
    for (std::uint32_t i = 0; i < correct; ++i) {
      if (prepare_count[i] >= q && commit_count[i] >= q) ++decided;
    }
    decided_total += decided;
    if (decided == correct) ++all_decided_trials;
  }

  TerminationStats out;
  const double denom = static_cast<double>(trials) * correct;
  out.per_replica_rate = static_cast<double>(decided_total) / denom;
  out.prepare_quorum_rate = static_cast<double>(prepared_total) / denom;
  out.all_rate = static_cast<double>(all_decided_trials) / trials;
  return out;
}

AgreementStats mc_agreement_optimal_split(const quorum::Params& params,
                                          int trials, std::uint64_t seed) {
  const auto n = static_cast<std::uint32_t>(params.n);
  const auto f = static_cast<std::uint32_t>(params.f);
  const auto q = static_cast<std::uint32_t>(params.q());
  const auto s = static_cast<std::uint32_t>(params.s());
  const std::uint32_t correct = n - f;
  const std::uint32_t half = correct / 2;

  // Layout: replicas 0..half-1 -> side A, half..correct-1 -> side B,
  // correct..n-1 -> Byzantine (support both sides).
  const auto side_of = [&](std::uint32_t id) -> int {
    if (id < half) return 0;       // A
    if (id < correct) return 1;    // B
    return 2;                      // Byzantine
  };

  std::uint64_t violations = 0;
  std::uint64_t any_decisions = 0;
  std::uint64_t violations_quorum_only = 0;
  std::uint64_t any_decisions_quorum_only = 0;
  std::uint64_t blocked_total = 0;

  std::vector<std::uint16_t> prep[2];     // per-value prepare in-degree
  std::vector<std::uint16_t> comm[2];     // per-value commit in-degree
  std::vector<std::uint8_t> prep_conflict;  // saw the other value's Prepare
  std::vector<std::uint8_t> conflict;       // saw the other value at all

  for (int t = 0; t < trials; ++t) {
    Xoshiro256StarStar rng(mix64(seed ^ 0xa5a5a5a5ULL,
                                 static_cast<std::uint64_t>(t)));
    prep[0].assign(n, 0);
    prep[1].assign(n, 0);
    comm[0].assign(n, 0);
    comm[1].assign(n, 0);
    prep_conflict.assign(n, 0);
    conflict.assign(n, 0);

    // Prepare phase. Correct senders multicast their side's value to their
    // whole sample; Byzantine senders send value X only to members of side
    // X (plus other Byzantine members), never exposing the equivocation.
    for (std::uint32_t j = 0; j < n; ++j) {
      const int sj = side_of(j);
      const auto sample = sample_without_replacement(rng, n, s);
      for (const auto member : sample) {
        const int sm = side_of(member);
        if (sj < 2) {
          ++prep[sj][member];
          if (sm < 2 && sm != sj) {
            prep_conflict[member] = 1;
            conflict[member] = 1;
          }
        } else {
          // Byzantine: value matching the member's side (both to Byzantine).
          if (sm == 0 || sm == 2) ++prep[0][member];
          if (sm == 1 || sm == 2) ++prep[1][member];
        }
      }
    }

    // Commit phase: correct replicas that formed a prepare quorum for their
    // side commit; Byzantine commit both side-selectively.
    for (std::uint32_t j = 0; j < n; ++j) {
      const int sj = side_of(j);
      if (sj < 2 && prep[sj][j] < q) continue;  // no prepare quorum: silent
      const auto sample = sample_without_replacement(rng, n, s);
      for (const auto member : sample) {
        const int sm = side_of(member);
        if (sj < 2) {
          ++comm[sj][member];
          if (sm < 2 && sm != sj) conflict[member] = 1;
        } else {
          if (sm == 0 || sm == 2) ++comm[0][member];
          if (sm == 1 || sm == 2) ++comm[1][member];
        }
      }
    }

    // Decisions under both models (see montecarlo.hpp).
    bool decided_a = false, decided_b = false;        // blocking-aware
    bool decided_a_qo = false, decided_b_qo = false;  // quorum-only
    std::uint32_t blocked = 0;
    for (std::uint32_t i = 0; i < correct; ++i) {
      const int si = side_of(i);
      const bool quorums = prep[si][i] >= q && comm[si][i] >= q;
      if (quorums) {
        (si == 0 ? decided_a_qo : decided_b_qo) = true;
        if (!prep_conflict[i]) {
          (si == 0 ? decided_a : decided_b) = true;
        }
      }
      if (conflict[i]) ++blocked;
    }
    if (decided_a && decided_b) ++violations;
    if (decided_a || decided_b) ++any_decisions;
    if (decided_a_qo && decided_b_qo) ++violations_quorum_only;
    if (decided_a_qo || decided_b_qo) ++any_decisions_quorum_only;
    blocked_total += blocked;
  }

  AgreementStats out;
  out.violation_rate = static_cast<double>(violations) / trials;
  out.any_decision_rate = static_cast<double>(any_decisions) / trials;
  out.violation_rate_quorum_only =
      static_cast<double>(violations_quorum_only) / trials;
  out.any_decision_rate_quorum_only =
      static_cast<double>(any_decisions_quorum_only) / trials;
  out.blocked_rate = static_cast<double>(blocked_total) /
                     (static_cast<double>(trials) * correct);
  return out;
}

double mc_quorum_with_r_senders(const quorum::Params& params, std::int64_t r,
                                int trials, std::uint64_t seed) {
  const auto n = static_cast<std::uint32_t>(params.n);
  const auto q = static_cast<std::uint32_t>(params.q());
  const auto s = static_cast<std::uint32_t>(params.s());
  std::uint64_t quorums = 0;
  for (int t = 0; t < trials; ++t) {
    Xoshiro256StarStar rng(mix64(seed ^ 0xc3c3c3c3ULL,
                                 static_cast<std::uint64_t>(t)));
    // Count how many of the r senders include replica 0 in their sample.
    std::uint32_t in_degree = 0;
    for (std::int64_t j = 0; j < r; ++j) {
      for (const auto member : sample_without_replacement(rng, n, s)) {
        if (member == 0) {
          ++in_degree;
          break;
        }
      }
    }
    if (in_degree >= q) ++quorums;
  }
  return static_cast<double>(quorums) / trials;
}

}  // namespace probft::sim
