// Parallel, wall-clock-budgeted Monte-Carlo sweep engine.
//
// A sweep shards the (spec × seed) cross-product across a pool of worker
// threads. Each work item is one fully independent simulation — its own
// Cluster, network, RNG streams and crypto suite, all derived from the
// (spec, seed) pair — so the parallel engine produces bit-identical
// per-seed outcomes to the serial run_scenario() path regardless of worker
// count or scheduling (tests/test_sweep_parallel.cpp pins this).
//
// Wall-clock budget: when `budget_seconds` elapses, workers stop CLAIMING
// new items (in-flight simulations finish), and the report records how many
// items ran vs. were skipped. Work items are ordered seed-major
// (round-robin across specs), so an exhausted budget still leaves every
// spec with roughly the same number of completed seeds instead of starving
// the specs at the tail of the list.
//
// Aggregation: per-spec termination rate, agreement violations, message /
// byte / simulator-event totals and decision-latency quantiles (virtual μs,
// nearest-rank over terminated runs), serializable as a JSON stats report —
// the artifact the nightly CI sweep uploads.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/scenario.hpp"

namespace probft::sim {

struct SweepConfig {
  /// Worker threads; 0 resolves to std::thread::hardware_concurrency().
  unsigned jobs = 1;
  /// Wall-clock budget in seconds; 0 (or negative) means unlimited.
  double budget_seconds = 0.0;
  /// Keep per-run ScenarioOutcomes in the report (the determinism test and
  /// the CLI's RESULT lines need them; large sweeps can drop them).
  bool keep_outcomes = true;
};

/// Aggregate statistics for one spec over the runs that completed within
/// the budget.
struct SpecStats {
  ScenarioSpec spec;
  std::size_t seeds_scheduled = 0;  // spec.seeds.size()
  std::size_t runs = 0;             // completed before the budget expired
  std::size_t terminated = 0;
  std::size_t agreement_violations = 0;
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
  std::uint64_t events = 0;
  /// Nearest-rank quantiles of the last correct decision time (virtual μs)
  /// over terminated runs; all 0 when nothing terminated.
  TimePoint latency_p50 = 0;
  TimePoint latency_p90 = 0;
  TimePoint latency_p99 = 0;
  TimePoint latency_max = 0;
  /// Per completed run, in seed order (empty when !keep_outcomes).
  std::vector<ScenarioOutcome> outcomes;

  [[nodiscard]] double termination_rate() const {
    return runs == 0 ? 0.0 : static_cast<double>(terminated) /
                                 static_cast<double>(runs);
  }
};

struct SweepReport {
  std::vector<SpecStats> stats;  // parallel to the input spec list
  unsigned jobs = 1;             // resolved worker count
  double budget_seconds = 0.0;
  double wall_seconds = 0.0;
  std::size_t items_total = 0;    // (spec, seed) work items submitted
  std::size_t items_run = 0;      // completed
  std::size_t items_skipped = 0;  // never scheduled: budget exhausted

  /// No completed run violated agreement.
  [[nodiscard]] bool all_agreement() const;
  /// Every completed run of a spec with expect_termination terminated.
  [[nodiscard]] bool termination_expectations_met() const;
};

/// Runs the sweep. Deterministic per (spec, seed) independent of `jobs`.
[[nodiscard]] SweepReport run_sweep(const std::vector<ScenarioSpec>& specs,
                                    const SweepConfig& config = {});

/// Serializes the aggregate report (not the per-run outcomes) as JSON; the
/// schema is documented in README.md ("Parallel Monte-Carlo sweeps").
[[nodiscard]] std::string to_json(const SweepReport& report);

}  // namespace probft::sim
