// Cluster harness: builds a full simulated deployment of one protocol
// (ProBFT / PBFT / HotStuff) with per-replica behaviors, wires everything
// to the deterministic network, runs it, and exposes the outcome.
//
// This is the workhorse behind the protocol integration tests, the examples
// and the Figure 1/5 benches.
#pragma once

#include <memory>
#include <optional>
#include <set>
#include <vector>

#include "common/bytes.hpp"
#include "common/types.hpp"
#include "core/replica.hpp"
#include "crypto/suite.hpp"
#include "hotstuff/hotstuff_replica.hpp"
#include "net/network.hpp"
#include "net/simulator.hpp"
#include "net/transport.hpp"
#include "pbft/pbft_replica.hpp"
#include "sim/byzantine.hpp"
#include "sim/node_factory.hpp"
#include "sync/synchronizer.hpp"

namespace probft::sim {

enum class Behavior {
  kHonest,
  kSilent,             // crash-like: never sends anything
  kEquivocateLeader,   // ProBFT: view-1 leader sending split proposals
  kColludeFollower,    // ProBFT: Fig. 4c colluding Byzantine follower
  kFlood,              // ProBFT: forged-sample flooding attacker
};

struct ClusterConfig {
  Protocol protocol = Protocol::kProbft;
  std::uint32_t n = 4;
  std::uint32_t f = 0;     // number of Byzantine replicas (for quorum math)
  double o = 1.7;          // ProBFT sample factor
  double l = 2.0;          // ProBFT quorum factor
  std::uint64_t seed = 1;
  net::LatencyConfig latency;
  sync::SyncConfig sync;   // n/f filled in automatically
  /// Decided replicas keep participating in later views by default: with a
  /// probabilistic quorum a minority of correct replicas can fail to decide
  /// in a view and needs the others' NewLeader messages to finish later.
  bool stop_sync_on_decide = false;
  /// Crypto suite; nullptr selects the fast SimSuite.
  const crypto::CryptoSuite* suite = nullptr;
  /// ProBFT verification fast path (content-addressed verdict cache +
  /// batch signature verification); disable for fast-vs-slow determinism
  /// comparisons and the view-change benches.
  bool fast_verify = true;
  /// Per-replica behavior, 1-based; missing entries default to kHonest.
  std::vector<Behavior> behaviors;
  /// Equivocation attack setup (used by kEquivocateLeader/kColludeFollower).
  SplitStrategy split = SplitStrategy::kOptimal;
  Bytes attack_value_a;
  Bytes attack_value_b;
  /// Pipeline/batching shape used when this config drives an SMR fleet
  /// (scenario Workload::kSmr, the throughput bench); ignored by the
  /// single-shot protocols.
  smr::SmrOptions smr;
  /// Value proposed by honest replica `i` is value_prefix || i ...
  Bytes value_prefix;
  /// ... unless an explicit per-replica value is given here (1-based index
  /// i-1; empty entries fall back to the prefix scheme). Used by SMR-style
  /// applications that inject client commands via the leader.
  std::vector<Bytes> my_values;
};

struct DecisionRecord {
  ReplicaId replica = 0;
  View view = 0;
  Bytes value;
  TimePoint at = 0;
};

class Cluster {
 public:
  explicit Cluster(ClusterConfig config);
  ~Cluster();

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  /// Starts every node (leader of view 1 proposes, timers arm, ...).
  void start();

  /// Runs until every correct replica decided, the event queue drained, or
  /// `deadline` / `max_events` hit. Returns true iff all correct decided.
  bool run_to_completion(TimePoint deadline = 120'000'000,
                         std::size_t max_events = 50'000'000);

  // ---- accessors ----
  [[nodiscard]] net::Simulator& simulator() { return sim_; }
  [[nodiscard]] net::Network& network() { return *network_; }
  /// The replica-facing view of the network; nodes are built against this
  /// interface only (the concrete Network accessor above exists for
  /// sim-specific features: fault filters, latency config, stats reset).
  [[nodiscard]] net::ITransport& transport() { return *network_; }
  [[nodiscard]] const ClusterConfig& config() const { return cfg_; }

  [[nodiscard]] std::vector<ReplicaId> correct_ids() const;
  [[nodiscard]] bool is_byzantine(ReplicaId id) const;
  [[nodiscard]] bool all_correct_decided() const;
  [[nodiscard]] std::size_t correct_decided_count() const;
  /// Distinct values decided by correct replicas (agreement <=> size <= 1).
  [[nodiscard]] std::set<Bytes> decided_values() const;
  [[nodiscard]] bool agreement_ok() const { return decided_values().size() <= 1; }
  [[nodiscard]] const std::vector<DecisionRecord>& decisions() const {
    return decisions_;
  }

  /// Typed access to honest replicas (nullptr for Byzantine slots or other
  /// protocols).
  [[nodiscard]] const core::Replica* probft(ReplicaId id) const;
  [[nodiscard]] const pbft::PbftReplica* pbft(ReplicaId id) const;
  [[nodiscard]] const hotstuff::HotStuffReplica* hotstuff(ReplicaId id) const;

  [[nodiscard]] const crypto::CryptoSuite& suite() const { return *suite_; }
  [[nodiscard]] const std::vector<crypto::KeyPair>& keys() const {
    return keys_;
  }

 private:
  void build_nodes();
  [[nodiscard]] Behavior behavior_of(ReplicaId id) const;

  ClusterConfig cfg_;
  std::unique_ptr<crypto::CryptoSuite> owned_suite_;
  const crypto::CryptoSuite* suite_ = nullptr;
  net::Simulator sim_;
  std::unique_ptr<net::Network> network_;
  std::vector<crypto::KeyPair> keys_;          // 1-based
  std::vector<std::unique_ptr<core::INode>> nodes_;  // 1-based
  std::shared_ptr<const AttackPlan> plan_;
  std::vector<DecisionRecord> decisions_;
  std::vector<bool> decided_;  // per replica, 1-based
  // Decided-counter pair so the run loop's completion check is O(1) per
  // event instead of an O(n) scan — at n = 2000 the scan dominated runs.
  std::size_t correct_total_ = 0;
  std::size_t correct_decided_ = 0;
};

}  // namespace probft::sim
