#include "sim/sweep.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <sstream>
#include <thread>

namespace probft::sim {

namespace {

struct WorkItem {
  std::size_t spec_idx = 0;
  std::size_t seed_idx = 0;
};

/// Seed-major order: round-robin across specs so a budget cut leaves every
/// spec with comparable coverage.
std::vector<WorkItem> build_items(const std::vector<ScenarioSpec>& specs) {
  std::size_t max_seeds = 0;
  for (const auto& spec : specs) {
    max_seeds = std::max(max_seeds, spec.seeds.size());
  }
  std::vector<WorkItem> items;
  for (std::size_t seed_idx = 0; seed_idx < max_seeds; ++seed_idx) {
    for (std::size_t spec_idx = 0; spec_idx < specs.size(); ++spec_idx) {
      if (seed_idx < specs[spec_idx].seeds.size()) {
        items.push_back(WorkItem{spec_idx, seed_idx});
      }
    }
  }
  return items;
}

TimePoint nearest_rank(const std::vector<TimePoint>& sorted, double q) {
  if (sorted.empty()) return 0;
  // Nearest-rank: the ceil(q·N)-th smallest value (1-based), so e.g. the
  // p99 of 100 samples is the 99th-smallest, not the maximum.
  const auto rank = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(sorted.size())));
  return sorted[std::min(rank > 0 ? rank - 1 : 0, sorted.size() - 1)];
}

void json_escape(std::ostringstream& out, const std::string& text) {
  for (const char c : text) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out << buf;
        } else {
          out << c;
        }
    }
  }
}

std::string fmt_double(double value) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.6g", value);
  return buf;
}

}  // namespace

bool SweepReport::all_agreement() const {
  return std::all_of(stats.begin(), stats.end(), [](const SpecStats& s) {
    return s.agreement_violations == 0;
  });
}

bool SweepReport::termination_expectations_met() const {
  return std::all_of(stats.begin(), stats.end(), [](const SpecStats& s) {
    return !s.spec.expect_termination || s.terminated == s.runs;
  });
}

SweepReport run_sweep(const std::vector<ScenarioSpec>& specs,
                      const SweepConfig& config) {
  const auto t0 = std::chrono::steady_clock::now();

  SweepReport report;
  report.budget_seconds = config.budget_seconds;
  report.jobs = config.jobs != 0 ? config.jobs
                                 : std::max(1U, std::thread::hardware_concurrency());

  const std::vector<WorkItem> items = build_items(specs);
  report.items_total = items.size();

  // One pre-sized slot per item; each is written by exactly one worker
  // (slot i belongs to whichever worker claimed i off the atomic counter)
  // and read only after join, so no locking is needed anywhere in the
  // sweep — deliberately no Mutex/GUARDED_BY here: the thread-safety
  // capability layer (docs/STATIC_ANALYSIS.md) annotates shared mutable
  // state, and the sweep has none. The join is the only synchronization
  // point, and it is a full happens-before barrier.
  std::vector<ScenarioOutcome> slots(items.size());
  std::vector<std::uint8_t> done(items.size(), 0);
  std::atomic<std::size_t> next{0};

  const bool budgeted = config.budget_seconds > 0.0;
  auto out_of_budget = [&] {
    if (!budgeted) return false;
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - t0;
    return elapsed.count() >= config.budget_seconds;
  };

  auto worker = [&] {
    while (true) {
      if (out_of_budget()) return;
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= items.size()) return;
      const WorkItem& item = items[i];
      const ScenarioSpec& spec = specs[item.spec_idx];
      slots[i] = run_scenario(spec, spec.seeds[item.seed_idx]);
      done[i] = 1;
    }
  };

  // Never spawn more workers than there are items; report the worker count
  // that actually ran so wall-clock numbers stay interpretable.
  const unsigned jobs =
      static_cast<unsigned>(std::min<std::size_t>(report.jobs,
                                                  std::max<std::size_t>(
                                                      items.size(), 1)));
  report.jobs = jobs;
  if (jobs <= 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(jobs);
    for (unsigned t = 0; t < jobs; ++t) pool.emplace_back(worker);
    for (auto& thread : pool) thread.join();
  }

  report.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  // ---- aggregate (single-threaded, deterministic spec-then-seed order) ----
  report.stats.resize(specs.size());
  std::vector<std::vector<std::size_t>> spec_items(specs.size());
  for (std::size_t i = 0; i < items.size(); ++i) {
    spec_items[items[i].spec_idx].push_back(i);
  }
  for (std::size_t s = 0; s < specs.size(); ++s) {
    SpecStats& stats = report.stats[s];
    stats.spec = specs[s];
    stats.seeds_scheduled = specs[s].seeds.size();
    std::vector<TimePoint> latencies;
    // spec_items[s] is already in seed order: build_items pushes items in
    // ascending seed_idx, and the grouping pass above preserves that.
    for (const std::size_t i : spec_items[s]) {
      if (!done[i]) continue;
      const ScenarioOutcome& outcome = slots[i];
      ++stats.runs;
      ++report.items_run;
      if (outcome.terminated) {
        ++stats.terminated;
        latencies.push_back(outcome.last_decision_at);
      }
      if (!outcome.agreement) ++stats.agreement_violations;
      stats.messages += outcome.messages;
      stats.bytes += outcome.bytes;
      stats.events += outcome.events;
      if (config.keep_outcomes) stats.outcomes.push_back(outcome);
    }
    std::sort(latencies.begin(), latencies.end());
    stats.latency_p50 = nearest_rank(latencies, 0.50);
    stats.latency_p90 = nearest_rank(latencies, 0.90);
    stats.latency_p99 = nearest_rank(latencies, 0.99);
    stats.latency_max = latencies.empty() ? 0 : latencies.back();
  }
  report.items_skipped = report.items_total - report.items_run;
  return report;
}

std::string to_json(const SweepReport& report) {
  std::ostringstream out;
  out << "{\n"
      << "  \"jobs\": " << report.jobs << ",\n"
      << "  \"budget_seconds\": " << fmt_double(report.budget_seconds)
      << ",\n"
      << "  \"wall_seconds\": " << fmt_double(report.wall_seconds) << ",\n"
      << "  \"items\": {\"total\": " << report.items_total
      << ", \"run\": " << report.items_run
      << ", \"skipped\": " << report.items_skipped << "},\n"
      << "  \"specs\": [";
  for (std::size_t s = 0; s < report.stats.size(); ++s) {
    const SpecStats& stats = report.stats[s];
    out << (s == 0 ? "\n" : ",\n") << "    {\"name\": \"";
    json_escape(out, scenario_name(stats.spec));
    out << "\", \"protocol\": \"" << to_string(stats.spec.protocol)
        << "\", \"fault\": \"" << to_string(stats.spec.fault)
        << "\", \"latency_model\": \"" << to_string(stats.spec.latency)
        << "\",\n     \"n\": " << stats.spec.n
        << ", \"f\": " << stats.spec.f
        << ", \"o\": " << fmt_double(stats.spec.o)
        << ", \"l\": " << fmt_double(stats.spec.l)
        << ", \"expect_termination\": "
        << (stats.spec.expect_termination ? "true" : "false")
        << ",\n     \"seeds_scheduled\": " << stats.seeds_scheduled
        << ", \"runs\": " << stats.runs
        << ", \"terminated\": " << stats.terminated
        << ", \"termination_rate\": " << fmt_double(stats.termination_rate())
        << ", \"agreement_violations\": " << stats.agreement_violations
        << ",\n     \"messages\": " << stats.messages
        << ", \"bytes\": " << stats.bytes
        << ", \"events\": " << stats.events
        << ",\n     \"latency_us\": {\"p50\": " << stats.latency_p50
        << ", \"p90\": " << stats.latency_p90
        << ", \"p99\": " << stats.latency_p99
        << ", \"max\": " << stats.latency_max << "}}";
  }
  out << "\n  ]\n}\n";
  return out.str();
}

}  // namespace probft::sim
