#include "sim/tcp_runner.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <sstream>
#include <thread>
#include <vector>

#include "common/annotations.hpp"
#include "common/mutex.hpp"
#include "common/rng.hpp"
#include "net/tcp_transport.hpp"
#include "sim/node_factory.hpp"

namespace probft::sim {

bool tcp_fault_supported(Fault fault) {
  switch (fault) {
    case Fault::kNone:
    case Fault::kSilentLeader:
    case Fault::kSilentFollowers:
      return true;
    default:
      return false;
  }
}

ScenarioOutcome run_scenario_tcp(const ScenarioSpec& spec,
                                 std::uint64_t seed) {
  if (!tcp_fault_supported(spec.fault)) {
    throw std::invalid_argument("fault not supported over tcp-loopback");
  }
  // Reuse the spec→cluster translation for behaviors, quorum parameters
  // and sync pacing; only the transport differs.
  const ClusterConfig cfg = make_cluster_config(spec, seed);
  const std::uint32_t n = cfg.n;

  // Deterministic keys, exactly like sim::Cluster.
  const auto keygen_suite = crypto::make_sim_suite();
  std::vector<crypto::KeyPair> keys(n + 1);
  std::vector<Bytes> key_table(n + 1);
  for (ReplicaId id = 1; id <= n; ++id) {
    keys[id] = keygen_suite->keygen(mix64(seed, id));
    key_table[id] = keys[id].public_key;
  }
  const crypto::PublicKeyDir public_keys(std::move(key_table));

  // Build every transport first (ephemeral binds), then cross-wire the
  // discovered ports — after this, each transport is touched only by its
  // own loop thread.
  std::vector<std::unique_ptr<net::TcpTransport>> transports(n + 1);
  for (ReplicaId id = 1; id <= n; ++id) {
    net::TcpTransportConfig tc;
    tc.self = id;
    tc.n = n;
    tc.listen_host = "127.0.0.1";
    tc.listen_port = 0;
    transports[id] = std::make_unique<net::TcpTransport>(std::move(tc));
  }
  for (ReplicaId id = 1; id <= n; ++id) {
    for (ReplicaId peer = 1; peer <= n; ++peer) {
      transports[id]->set_peer(
          peer, net::PeerAddress{"127.0.0.1",
                                 transports[peer]->listen_port()});
    }
  }

  const auto behavior_of = [&cfg](ReplicaId id) {
    return id <= cfg.behaviors.size() ? cfg.behaviors[id - 1]
                                      : Behavior::kHonest;
  };
  std::size_t correct_total = 0;
  for (ReplicaId id = 1; id <= n; ++id) {
    if (behavior_of(id) == Behavior::kHonest) ++correct_total;
  }

  // Shared decision book: every node loop thread writes it under mu; the
  // harness thread reads it back after the joins — still under mu, which
  // is how the thread-safety analysis knows both sides are covered.
  struct DecisionBook {
    Mutex mu;
    std::vector<DecisionRecord> decisions PROBFT_GUARDED_BY(mu);
    std::vector<bool> decided PROBFT_GUARDED_BY(mu);
    std::size_t correct_decided PROBFT_GUARDED_BY(mu) = 0;
  };
  DecisionBook book;
  {
    MutexLock lock(book.mu);
    book.decided.assign(n + 1, false);
  }
  std::atomic<bool> all_done{false};
  const auto start = std::chrono::steady_clock::now();
  const auto wall_us_since_start = [start]() {
    return static_cast<TimePoint>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - start)
            .count());
  };

  // Per-node crypto suites: cheap, and keeps every thread's signing state
  // private by construction.
  std::vector<std::unique_ptr<crypto::CryptoSuite>> suites(n + 1);
  std::vector<std::unique_ptr<core::INode>> nodes(n + 1);
  for (ReplicaId id = 1; id <= n; ++id) {
    if (behavior_of(id) != Behavior::kHonest) continue;  // crashed process
    suites[id] = crypto::make_sim_suite();

    NodeParams params;
    params.protocol = cfg.protocol;
    params.id = id;
    params.n = n;
    params.f = cfg.f;
    params.o = cfg.o;
    params.l = cfg.l;
    params.my_value = default_node_value(cfg.value_prefix, id);
    params.stop_sync_on_decide = cfg.stop_sync_on_decide;
    params.suite = suites[id].get();
    params.secret_key = keys[id].secret_key;
    params.public_keys = public_keys;
    params.sync = cfg.sync;

    core::ProtocolHost host = transport_host(
        *transports[id], id, transports[id]->timer_setter());
    host.on_decide = [&, id](View view, const Bytes& value) {
      MutexLock lock(book.mu);
      if (book.decided[id]) return;
      book.decided[id] = true;
      book.decisions.push_back(
          DecisionRecord{id, view, value, wall_us_since_start()});
      if (++book.correct_decided == correct_total) {
        all_done.store(true, std::memory_order_release);
      }
    };
    nodes[id] = make_honest_node(params, std::move(host));

    core::INode* node = nodes[id].get();
    transports[id]->register_handler(
        id, [node](ReplicaId from, std::uint8_t tag, const Bytes& payload) {
          node->on_message(from, tag, payload);
        });
  }

  const Duration wall_budget =
      std::min<Duration>(spec.deadline, kTcpMaxWallUs);
  std::vector<std::thread> threads;
  threads.reserve(n);
  for (ReplicaId id = 1; id <= n; ++id) {
    // Silent replicas keep their transport alive (listener accepts, the
    // process is "up" but Byzantine-silent); honest ones start the replica
    // on the loop thread so all transport activity stays thread-confined.
    threads.emplace_back([&, id]() {
      if (nodes[id]) nodes[id]->start();
      transports[id]->run_until(
          [&all_done]() {
            return all_done.load(std::memory_order_acquire);
          },
          wall_budget);
    });
  }
  for (auto& thread : threads) thread.join();

  ScenarioOutcome outcome;
  outcome.seed = seed;
  outcome.correct = correct_total;
  std::set<Bytes> values;
  std::ostringstream transcript;
  {
    MutexLock lock(book.mu);
    outcome.terminated = book.correct_decided == correct_total;
    outcome.decided = book.correct_decided;
    for (const auto& d : book.decisions) {
      values.insert(d.value);
      outcome.max_view = std::max(outcome.max_view, d.view);
      outcome.last_decision_at = std::max(outcome.last_decision_at, d.at);
      transcript << d.replica << " " << d.view << " " << to_hex(d.value)
                 << " " << d.at << "\n";
    }
  }
  outcome.agreement = values.size() <= 1;
  outcome.transcript = transcript.str();
  for (ReplicaId id = 1; id <= n; ++id) {
    outcome.messages += transports[id]->stats().sends;
    outcome.bytes += transports[id]->stats().bytes_sent;
  }
  return outcome;  // nodes die before transports (declaration order)
}

}  // namespace probft::sim
