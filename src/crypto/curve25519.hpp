// edwards25519 curve arithmetic (field mod 2^255-19, scalars mod L, group
// operations in extended twisted-Edwards coordinates), implemented from
// scratch on top of U256. Shared by Ed25519 signatures and the ECVRF.
//
// Conventions follow RFC 8032: little-endian encodings, compressed points
// store y with the parity of x in the top bit.
#pragma once

#include <optional>

#include "crypto/u256.hpp"

namespace probft::crypto::curve {

// Re-export the bigint vocabulary so curve users can say curve::U256 etc.
using probft::crypto::U256;
using probft::crypto::U512;
using probft::crypto::u256_add;
using probft::crypto::u256_sub;
using probft::crypto::u256_cmp;
using probft::crypto::u256_mul;
using probft::crypto::u512_mod;
using probft::crypto::u256_from_le;
using probft::crypto::u256_to_le;
using probft::crypto::u256_bit;
using probft::crypto::u256_zero;
using probft::crypto::u256_one;
using probft::crypto::u256_is_zero;

/// The field prime p = 2^255 - 19.
const U256& field_prime();
/// The group order L = 2^252 + 27742317777372353535851937790883648493.
const U256& group_order();

// ---- Field element operations (inputs/outputs fully reduced mod p) ----

U256 fe_add(const U256& a, const U256& b);
U256 fe_sub(const U256& a, const U256& b);
U256 fe_mul(const U256& a, const U256& b);
U256 fe_sq(const U256& a);
U256 fe_neg(const U256& a);
U256 fe_pow(const U256& base, const U256& exponent);
U256 fe_invert(const U256& a);
/// sqrt(-1) mod p, i.e. 2^((p-1)/4).
const U256& fe_sqrt_m1();
/// Curve constant d = -121665/121666 mod p, and 2d.
const U256& fe_d();
const U256& fe_2d();

// ---- Group element operations (extended coordinates, a = -1) ----

struct Point {
  U256 X, Y, Z, T;
};

/// Neutral element (0 : 1 : 1 : 0).
Point point_identity();
/// The standard base point B (decompressed from its RFC 8032 encoding).
const Point& point_base();

Point point_add(const Point& p, const Point& q);
Point point_double(const Point& p);
Point point_negate(const Point& p);
/// scalar * p via double-and-add (not constant-time; see u256.hpp note).
Point point_scalar_mul(const U256& scalar, const Point& p);
/// Σ scalar_i * p_i via Straus interleaving: the 256 doublings are shared
/// across every term, so m-term sums cost ~256 doublings + Σ popcount(s_i)
/// additions instead of m independent double-and-add ladders. This is what
/// makes batch signature verification amortize (verification-only use; not
/// constant-time).
struct ScalarPoint {
  U256 scalar;
  Point point;
};
Point point_multi_scalar_mul(const std::vector<ScalarPoint>& terms);
/// Multiplies by the cofactor 8 (three doublings).
Point point_mul_cofactor(const Point& p);

/// Projective equality: X1*Z2 == X2*Z1 && Y1*Z2 == Y2*Z1.
bool point_eq(const Point& p, const Point& q);
bool point_is_identity(const Point& p);

/// RFC 8032 point compression: 32 bytes, y with sign(x) in bit 255.
void point_compress(const Point& p, std::uint8_t out[32]);
Bytes point_compress(const Point& p);
/// Decompression; std::nullopt if the encoding is not a curve point.
std::optional<Point> point_decompress(ByteSpan bytes32);

// ---- Scalar (mod L) operations ----

/// Reduces a 64-byte little-endian value mod L (for hash outputs).
U256 sc_reduce_wide(ByteSpan bytes64);
/// Reduces a 32-byte little-endian value mod L.
U256 sc_reduce(ByteSpan bytes32);
U256 sc_mul(const U256& a, const U256& b);
U256 sc_add(const U256& a, const U256& b);
/// (a * b + c) mod L.
U256 sc_muladd(const U256& a, const U256& b, const U256& c);
/// a - b mod L (inputs < L).
U256 sc_sub(const U256& a, const U256& b);

}  // namespace probft::crypto::curve
