#include "crypto/sampler.hpp"

#include <algorithm>

#include "common/rng.hpp"

namespace probft::crypto {

Bytes sample_alpha(std::uint64_t view, const char* phase) {
  Bytes alpha;
  for (int i = 0; i < 8; ++i) {
    alpha.push_back(static_cast<std::uint8_t>(view >> (8 * i)));
  }
  alpha.push_back('|');
  for (const char* p = phase; *p != '\0'; ++p) {
    alpha.push_back(static_cast<std::uint8_t>(*p));
  }
  return alpha;
}

std::vector<ReplicaId> expand_sample(ByteSpan randomness, std::uint32_t n,
                                     std::uint32_t k) {
  auto rng = Xoshiro256StarStar::from_bytes(randomness.data(),
                                            randomness.size());
  auto zero_based = sample_without_replacement(rng, n, k);
  std::vector<ReplicaId> sample(zero_based.size());
  std::transform(zero_based.begin(), zero_based.end(), sample.begin(),
                 [](std::uint32_t id) { return id + 1; });
  std::sort(sample.begin(), sample.end());
  return sample;
}

SampleResult vrf_sample(const CryptoSuite& suite, ByteSpan secret_key,
                        ByteSpan alpha, std::uint32_t n, std::uint32_t k) {
  auto vrf = suite.vrf_prove(secret_key, alpha);
  SampleResult out;
  out.sample = expand_sample(ByteSpan(vrf.output.data(), vrf.output.size()),
                             n, k);
  out.proof = std::move(vrf.proof);
  return out;
}

bool vrf_sample_verify(const CryptoSuite& suite, ByteSpan public_key,
                       ByteSpan alpha, std::uint32_t n, std::uint32_t k,
                       const std::vector<ReplicaId>& claimed, ByteSpan proof) {
  const auto output = suite.vrf_verify(public_key, alpha, proof);
  if (!output) return false;
  const auto expected =
      expand_sample(ByteSpan(output->data(), output->size()), n, k);
  return expected == claimed;
}

}  // namespace probft::crypto
