// ECVRF over edwards25519 in the style of RFC 9381's
// ECVRF-EDWARDS25519-SHA512-TAI ciphersuite (suite byte 0x03, try-and-
// increment hash-to-curve).
//
// Keys are shared with Ed25519 (the same 32-byte seed / compressed public
// key), so a replica uses one keypair for both signing and sampling —
// exactly the setup assumed in the paper's Section 2.4.
//
// Guarantees relied on by ProBFT (paper §2.4):
//   - Uniqueness: for a fixed (public key, seed) there is a single provable
//     output.
//   - Collision resistance: distinct seeds map to independent outputs.
//   - Pseudorandomness: outputs are unpredictable without the private key.
#pragma once

#include <optional>

#include "common/bytes.hpp"

namespace probft::crypto::ecvrf {

inline constexpr std::size_t kProofSize = 80;   // Gamma(32) || c(16) || s(32)
inline constexpr std::size_t kOutputSize = 64;  // SHA-512 output

struct Proof {
  Bytes proof;   // 80-byte pi
  Bytes output;  // 64-byte beta
};

/// Computes the VRF proof and output for `alpha` under the seed's key.
[[nodiscard]] Proof prove(ByteSpan seed, ByteSpan alpha);

/// Verifies `proof` for (public_key, alpha); returns beta when valid.
[[nodiscard]] std::optional<Bytes> verify(ByteSpan public_key, ByteSpan alpha,
                                          ByteSpan proof);

/// Derives beta from a proof without verifying (for the prover itself).
[[nodiscard]] Bytes proof_to_output(ByteSpan proof);

}  // namespace probft::crypto::ecvrf
