// CryptoSuite: the interface protocol code uses for signatures and VRFs.
//
// Two implementations exist:
//  - Ed25519Suite: real Ed25519 + ECVRF (crypto/ed25519.hpp, crypto/ecvrf.hpp)
//  - SimSuite:     fast, deterministic, NON-cryptographic stand-in for large
//                  Monte-Carlo sweeps. Its "signatures" and "VRF outputs" are
//                  plain hashes keyed by material that is derivable from the
//                  public key, so a real adversary could forge them — but the
//                  simulated adversaries in this repository never do, which
//                  preserves the protocol-visible behavior the paper assumes
//                  (see DESIGN.md substitution notes).
//
// Both suites share these shapes: keygen is deterministic from a 64-bit
// seed, sign/verify operate on raw byte strings, and vrf_prove/vrf_verify
// implement the paper's VRF_prove/VRF_verify pair (§2.4) with `output` as
// the pseudorandom value that seeds recipient sampling.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "crypto/ed25519.hpp"

namespace probft::crypto {

struct KeyPair {
  Bytes public_key;
  Bytes secret_key;
};

/// Immutable, shared directory of per-replica public keys (1-based, index 0
/// unused). Configs hold it by value and copies share storage, so an
/// n-replica cluster keeps ONE key table instead of n copies — the per-run
/// setup cost used to be O(n²) in key bytes, which dominated cluster
/// construction at n ≥ 500.
class PublicKeyDir {
 public:
  PublicKeyDir() = default;
  // NOLINTNEXTLINE(google-explicit-constructor): adopting a key vector is
  // the single intended conversion; call sites build the vector once and
  // share the resulting directory.
  PublicKeyDir(std::vector<Bytes> keys)
      : keys_(std::make_shared<const std::vector<Bytes>>(std::move(keys))) {}

  [[nodiscard]] const Bytes& operator[](std::size_t i) const {
    // Indexing an unconfigured directory is a caller bug; throw instead of
    // dereferencing null (configs validate size() at construction, but
    // default-constructed ByzantineEnv-style holders never do).
    static const std::vector<Bytes> kEmpty;
    return keys_ ? (*keys_)[i] : kEmpty.at(i);
  }
  [[nodiscard]] std::size_t size() const { return keys_ ? keys_->size() : 0; }
  [[nodiscard]] bool empty() const { return size() == 0; }

 private:
  std::shared_ptr<const std::vector<Bytes>> keys_;
};

struct VrfResult {
  Bytes output;  // pseudorandom bytes (>= 32)
  Bytes proof;   // verification string shipped in messages
};

/// One (public key, message, signature) triple for verify_batch. The spans
/// must outlive the call; callers typically keep the signing byte strings
/// in a side vector while the batch runs. Shared with the ed25519 batch
/// verifier so suites can pass batches through without conversion.
using SigCheck = ed25519::SigCheck;

class CryptoSuite {
 public:
  virtual ~CryptoSuite() = default;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Deterministically derives a keypair from a 64-bit seed.
  [[nodiscard]] virtual KeyPair keygen(std::uint64_t seed) const = 0;

  [[nodiscard]] virtual Bytes sign(ByteSpan secret_key,
                                   ByteSpan message) const = 0;
  [[nodiscard]] virtual bool verify(ByteSpan public_key, ByteSpan message,
                                    ByteSpan signature) const = 0;

  /// True iff EVERY triple verifies. The base implementation is a plain
  /// short-circuiting loop over verify() (what the sim suite uses); the
  /// Ed25519 suite overrides it with amortized random-linear-combination
  /// batching so an m-signature certificate costs far less than m
  /// independent verifications. All-or-nothing by design: the protocol's
  /// certificate checks need every member valid anyway, and a combined
  /// check cannot tell WHICH member failed without falling back to the
  /// loop.
  [[nodiscard]] virtual bool verify_batch(
      const std::vector<SigCheck>& checks) const;

  /// VRF_prove(sk, alpha): pseudorandom output plus proof.
  [[nodiscard]] virtual VrfResult vrf_prove(ByteSpan secret_key,
                                            ByteSpan alpha) const = 0;
  /// VRF_verify(pk, alpha, proof): the output when the proof is valid.
  [[nodiscard]] virtual std::optional<Bytes> vrf_verify(
      ByteSpan public_key, ByteSpan alpha, ByteSpan proof) const = 0;
};

/// Real Ed25519 + ECVRF suite.
[[nodiscard]] std::unique_ptr<CryptoSuite> make_ed25519_suite();

/// Fast deterministic simulation suite (not cryptographically secure).
[[nodiscard]] std::unique_ptr<CryptoSuite> make_sim_suite();

}  // namespace probft::crypto
