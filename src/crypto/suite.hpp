// CryptoSuite: the interface protocol code uses for signatures and VRFs.
//
// Two implementations exist:
//  - Ed25519Suite: real Ed25519 + ECVRF (crypto/ed25519.hpp, crypto/ecvrf.hpp)
//  - SimSuite:     fast, deterministic, NON-cryptographic stand-in for large
//                  Monte-Carlo sweeps. Its "signatures" and "VRF outputs" are
//                  plain hashes keyed by material that is derivable from the
//                  public key, so a real adversary could forge them — but the
//                  simulated adversaries in this repository never do, which
//                  preserves the protocol-visible behavior the paper assumes
//                  (see DESIGN.md substitution notes).
//
// Both suites share these shapes: keygen is deterministic from a 64-bit
// seed, sign/verify operate on raw byte strings, and vrf_prove/vrf_verify
// implement the paper's VRF_prove/VRF_verify pair (§2.4) with `output` as
// the pseudorandom value that seeds recipient sampling.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "common/bytes.hpp"

namespace probft::crypto {

struct KeyPair {
  Bytes public_key;
  Bytes secret_key;
};

struct VrfResult {
  Bytes output;  // pseudorandom bytes (>= 32)
  Bytes proof;   // verification string shipped in messages
};

class CryptoSuite {
 public:
  virtual ~CryptoSuite() = default;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Deterministically derives a keypair from a 64-bit seed.
  [[nodiscard]] virtual KeyPair keygen(std::uint64_t seed) const = 0;

  [[nodiscard]] virtual Bytes sign(ByteSpan secret_key,
                                   ByteSpan message) const = 0;
  [[nodiscard]] virtual bool verify(ByteSpan public_key, ByteSpan message,
                                    ByteSpan signature) const = 0;

  /// VRF_prove(sk, alpha): pseudorandom output plus proof.
  [[nodiscard]] virtual VrfResult vrf_prove(ByteSpan secret_key,
                                            ByteSpan alpha) const = 0;
  /// VRF_verify(pk, alpha, proof): the output when the proof is valid.
  [[nodiscard]] virtual std::optional<Bytes> vrf_verify(
      ByteSpan public_key, ByteSpan alpha, ByteSpan proof) const = 0;
};

/// Real Ed25519 + ECVRF suite.
[[nodiscard]] std::unique_ptr<CryptoSuite> make_ed25519_suite();

/// Fast deterministic simulation suite (not cryptographically secure).
[[nodiscard]] std::unique_ptr<CryptoSuite> make_sim_suite();

}  // namespace probft::crypto
