// VRF-driven recipient sampling (paper §2.4 / §3.1).
//
// VRF_prove(sk, seed, s) in the paper both proves and *selects* a uniform
// sample of s distinct replica IDs. We realize this by expanding the VRF's
// pseudorandom output into a k-of-n sample with a partial Fisher-Yates
// shuffle seeded from the output. The proof shipped in messages is the VRF
// proof; verifiers re-derive the sample from the verified output, so a
// Byzantine replica cannot bias its recipient sample (benefit (1) of §3.1).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "crypto/suite.hpp"

namespace probft::crypto {

using ReplicaId = std::uint32_t;

struct SampleResult {
  std::vector<ReplicaId> sample;  // sorted, 1-based replica IDs
  Bytes proof;
};

/// Builds the alpha string for a (view, phase) pair: the paper's `v || T`.
[[nodiscard]] Bytes sample_alpha(std::uint64_t view, const char* phase);

/// VRF_prove(K_p, alpha, k): selects k distinct IDs from {1..n}.
[[nodiscard]] SampleResult vrf_sample(const CryptoSuite& suite,
                                      ByteSpan secret_key, ByteSpan alpha,
                                      std::uint32_t n, std::uint32_t k);

/// VRF_verify(K_u, alpha, k, S, P): true iff `claimed` is exactly the sample
/// that `proof` commits to.
[[nodiscard]] bool vrf_sample_verify(const CryptoSuite& suite,
                                     ByteSpan public_key, ByteSpan alpha,
                                     std::uint32_t n, std::uint32_t k,
                                     const std::vector<ReplicaId>& claimed,
                                     ByteSpan proof);

/// Deterministically expands pseudorandom bytes into a sorted k-of-n sample
/// of 1-based IDs (shared by prover and verifier).
[[nodiscard]] std::vector<ReplicaId> expand_sample(ByteSpan randomness,
                                                   std::uint32_t n,
                                                   std::uint32_t k);

}  // namespace probft::crypto
