#include "crypto/u256.hpp"

#include <stdexcept>

namespace probft::crypto {

using u128 = unsigned __int128;

std::uint64_t u256_add(U256& out, const U256& a, const U256& b) {
  std::uint64_t carry = 0;
  for (int i = 0; i < 4; ++i) {
    const u128 sum = static_cast<u128>(a.w[i]) + b.w[i] + carry;
    out.w[i] = static_cast<std::uint64_t>(sum);
    carry = static_cast<std::uint64_t>(sum >> 64);
  }
  return carry;
}

std::uint64_t u256_sub(U256& out, const U256& a, const U256& b) {
  std::uint64_t borrow = 0;
  for (int i = 0; i < 4; ++i) {
    const u128 diff =
        static_cast<u128>(a.w[i]) - b.w[i] - borrow;
    out.w[i] = static_cast<std::uint64_t>(diff);
    borrow = static_cast<std::uint64_t>((diff >> 64) & 1);
  }
  return borrow;
}

int u256_cmp(const U256& a, const U256& b) {
  for (int i = 3; i >= 0; --i) {
    if (a.w[i] < b.w[i]) return -1;
    if (a.w[i] > b.w[i]) return 1;
  }
  return 0;
}

U512 u256_mul(const U256& a, const U256& b) {
  U512 out{};
  for (int i = 0; i < 4; ++i) {
    std::uint64_t carry = 0;
    for (int j = 0; j < 4; ++j) {
      const u128 cur = static_cast<u128>(a.w[i]) * b.w[j] +
                       out.w[i + j] + carry;
      out.w[i + j] = static_cast<std::uint64_t>(cur);
      carry = static_cast<std::uint64_t>(cur >> 64);
    }
    out.w[i + 4] = carry;
  }
  return out;
}

U256 u512_mod(const U512& x, const U256& m) {
  if (u256_is_zero(m)) throw std::invalid_argument("u512_mod: zero modulus");
  if (m.w[3] >> 63) {
    throw std::invalid_argument("u512_mod: modulus must be < 2^255");
  }
  U256 r{};
  for (int i = 511; i >= 0; --i) {
    // r = (r << 1) | bit_i(x); r stays < 2m < 2^256.
    std::uint64_t top = 0;
    for (int j = 0; j < 4; ++j) {
      const std::uint64_t next_top = r.w[j] >> 63;
      r.w[j] = (r.w[j] << 1) | top;
      top = next_top;
    }
    const int bit = static_cast<int>(
        (x.w[static_cast<std::size_t>(i) / 64] >>
         (static_cast<std::size_t>(i) % 64)) &
        1U);
    r.w[0] |= static_cast<std::uint64_t>(bit);
    if (u256_cmp(r, m) >= 0) {
      U256 tmp;
      u256_sub(tmp, r, m);
      r = tmp;
    }
  }
  return r;
}

U256 u256_mulmod(const U256& a, const U256& b, const U256& m) {
  return u512_mod(u256_mul(a, b), m);
}

U256 u256_addmod(const U256& a, const U256& b, const U256& m) {
  U256 sum;
  const std::uint64_t carry = u256_add(sum, a, b);
  if (carry != 0 || u256_cmp(sum, m) >= 0) {
    U256 tmp;
    u256_sub(tmp, sum, m);
    return tmp;
  }
  return sum;
}

U256 u256_from_le(ByteSpan bytes32) {
  if (bytes32.size() != 32) {
    throw std::invalid_argument("u256_from_le: need exactly 32 bytes");
  }
  U256 out{};
  for (int i = 0; i < 4; ++i) {
    std::uint64_t v = 0;
    for (int j = 7; j >= 0; --j) {
      v = (v << 8) | bytes32[static_cast<std::size_t>(8 * i + j)];
    }
    out.w[i] = v;
  }
  return out;
}

void u256_to_le(const U256& x, std::uint8_t out[32]) {
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 8; ++j) {
      out[8 * i + j] = static_cast<std::uint8_t>(x.w[i] >> (8 * j));
    }
  }
}

}  // namespace probft::crypto
