#include "crypto/hmac.hpp"

#include "crypto/sha256.hpp"

namespace probft::crypto {

Bytes hmac_sha256(ByteSpan key, ByteSpan message) {
  constexpr std::size_t kBlockSize = 64;

  Bytes key_block(kBlockSize, 0);
  if (key.size() > kBlockSize) {
    const auto digest = Sha256::hash(key);
    std::copy(digest.begin(), digest.end(), key_block.begin());
  } else {
    std::copy(key.begin(), key.end(), key_block.begin());
  }

  Bytes inner(kBlockSize), outer(kBlockSize);
  for (std::size_t i = 0; i < kBlockSize; ++i) {
    inner[i] = static_cast<std::uint8_t>(key_block[i] ^ 0x36);
    outer[i] = static_cast<std::uint8_t>(key_block[i] ^ 0x5c);
  }

  Sha256 h_inner;
  h_inner.update(ByteSpan(inner.data(), inner.size()));
  h_inner.update(message);
  const auto inner_digest = h_inner.finalize();

  Sha256 h_outer;
  h_outer.update(ByteSpan(outer.data(), outer.size()));
  h_outer.update(ByteSpan(inner_digest.data(), inner_digest.size()));
  const auto digest = h_outer.finalize();
  return Bytes(digest.begin(), digest.end());
}

}  // namespace probft::crypto
