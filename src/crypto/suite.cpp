#include "crypto/suite.hpp"

#include "common/rng.hpp"
#include "crypto/ecvrf.hpp"
#include "crypto/ed25519.hpp"
#include "crypto/sha256.hpp"

namespace probft::crypto {

namespace {

Bytes seed_bytes_from_u64(std::uint64_t seed, const char* domain) {
  Bytes material = to_bytes(domain);
  for (int i = 0; i < 8; ++i) {
    material.push_back(static_cast<std::uint8_t>(seed >> (8 * i)));
  }
  return sha256(ByteSpan(material.data(), material.size()));
}

class Ed25519Suite final : public CryptoSuite {
 public:
  [[nodiscard]] std::string name() const override { return "ed25519"; }

  [[nodiscard]] KeyPair keygen(std::uint64_t seed) const override {
    KeyPair kp;
    kp.secret_key = seed_bytes_from_u64(seed, "probft-ed25519-seed");
    kp.public_key = ed25519::derive_public(
        ByteSpan(kp.secret_key.data(), kp.secret_key.size()));
    return kp;
  }

  [[nodiscard]] Bytes sign(ByteSpan secret_key,
                           ByteSpan message) const override {
    return ed25519::sign(secret_key, message);
  }

  [[nodiscard]] bool verify(ByteSpan public_key, ByteSpan message,
                            ByteSpan signature) const override {
    return ed25519::verify(public_key, message, signature);
  }

  [[nodiscard]] bool verify_batch(
      const std::vector<SigCheck>& checks) const override {
    return ed25519::verify_batch(checks);
  }

  [[nodiscard]] VrfResult vrf_prove(ByteSpan secret_key,
                                    ByteSpan alpha) const override {
    auto proof = ecvrf::prove(secret_key, alpha);
    return VrfResult{std::move(proof.output), std::move(proof.proof)};
  }

  [[nodiscard]] std::optional<Bytes> vrf_verify(
      ByteSpan public_key, ByteSpan alpha, ByteSpan proof) const override {
    return ecvrf::verify(public_key, alpha, proof);
  }
};

// SimSuite derives everything from the public key. secret_key == public_key,
// so verification is recomputation. Fast and deterministic, secure only
// against the simulated (non-forging) adversary.
class SimSuite final : public CryptoSuite {
 public:
  [[nodiscard]] std::string name() const override { return "sim"; }

  [[nodiscard]] KeyPair keygen(std::uint64_t seed) const override {
    KeyPair kp;
    kp.secret_key = seed_bytes_from_u64(seed, "probft-sim-key");
    kp.public_key = kp.secret_key;
    return kp;
  }

  [[nodiscard]] Bytes sign(ByteSpan secret_key,
                           ByteSpan message) const override {
    return tag(secret_key, message, "sig");
  }

  [[nodiscard]] bool verify(ByteSpan public_key, ByteSpan message,
                            ByteSpan signature) const override {
    const Bytes expected = tag(public_key, message, "sig");
    return ct_equal(ByteSpan(expected.data(), expected.size()), signature);
  }

  [[nodiscard]] VrfResult vrf_prove(ByteSpan secret_key,
                                    ByteSpan alpha) const override {
    Bytes output = tag(secret_key, alpha, "vrf");
    return VrfResult{output, output};  // proof == output
  }

  [[nodiscard]] std::optional<Bytes> vrf_verify(
      ByteSpan public_key, ByteSpan alpha, ByteSpan proof) const override {
    const Bytes expected = tag(public_key, alpha, "vrf");
    if (!ct_equal(ByteSpan(expected.data(), expected.size()), proof)) {
      return std::nullopt;
    }
    return expected;
  }

 private:
  static Bytes tag(ByteSpan key, ByteSpan message, const char* domain) {
    Sha256 h;
    h.update(key);
    const Bytes domain_bytes = to_bytes(domain);
    h.update(ByteSpan(domain_bytes.data(), domain_bytes.size()));
    h.update(message);
    const auto digest = h.finalize();
    return Bytes(digest.begin(), digest.end());
  }
};

}  // namespace

bool CryptoSuite::verify_batch(const std::vector<SigCheck>& checks) const {
  for (const auto& c : checks) {
    if (!verify(c.public_key, c.message, c.signature)) return false;
  }
  return true;
}

std::unique_ptr<CryptoSuite> make_ed25519_suite() {
  return std::make_unique<Ed25519Suite>();
}

std::unique_ptr<CryptoSuite> make_sim_suite() {
  return std::make_unique<SimSuite>();
}

}  // namespace probft::crypto
