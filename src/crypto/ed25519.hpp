// Ed25519 signatures (RFC 8032), from scratch.
//
// Secret keys are the 32-byte seed; public keys and signatures use the
// standard RFC 8032 encodings, so outputs are interoperable with any
// conforming implementation.
#pragma once

#include "common/bytes.hpp"

namespace probft::crypto::ed25519 {

inline constexpr std::size_t kSeedSize = 32;
inline constexpr std::size_t kPublicKeySize = 32;
inline constexpr std::size_t kSignatureSize = 64;

/// Derives the public key from a 32-byte seed.
[[nodiscard]] Bytes derive_public(ByteSpan seed);

/// Produces a deterministic 64-byte signature (R || S).
[[nodiscard]] Bytes sign(ByteSpan seed, ByteSpan message);

/// Verifies a signature; tolerates (rejects) malformed inputs of any size.
[[nodiscard]] bool verify(ByteSpan public_key, ByteSpan message,
                          ByteSpan signature);

}  // namespace probft::crypto::ed25519
