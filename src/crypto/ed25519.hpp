// Ed25519 signatures (RFC 8032), from scratch.
//
// Secret keys are the 32-byte seed; public keys and signatures use the
// standard RFC 8032 encodings, so outputs are interoperable with any
// conforming implementation.
#pragma once

#include "common/bytes.hpp"

namespace probft::crypto::ed25519 {

inline constexpr std::size_t kSeedSize = 32;
inline constexpr std::size_t kPublicKeySize = 32;
inline constexpr std::size_t kSignatureSize = 64;

/// Derives the public key from a 32-byte seed.
[[nodiscard]] Bytes derive_public(ByteSpan seed);

/// Produces a deterministic 64-byte signature (R || S).
[[nodiscard]] Bytes sign(ByteSpan seed, ByteSpan message);

/// Verifies a signature; tolerates (rejects) malformed inputs of any size.
/// Uses the COFACTORED equation [8]sB == [8](R + kA) (RFC 8032 allows
/// either form) so that the per-item verdict is always consistent with
/// verify_batch — a cofactorless single check would reject small-order
/// tweaks of a signature that the batch equation sometimes accepts.
[[nodiscard]] bool verify(ByteSpan public_key, ByteSpan message,
                          ByteSpan signature);

/// One (public key, message, signature) triple for batch verification. The
/// spans must stay valid for the duration of the verify_batch call.
struct SigCheck {
  ByteSpan public_key;
  ByteSpan message;
  ByteSpan signature;
};

/// True iff every triple verifies, checked as ONE random-linear-combination
/// group equation: [8][Σ z_i s_i]B == [8](Σ [z_i]R_i + [z_i k_i]A_i) with
/// 128-bit coefficients z_i derived by hashing the whole batch (Fiat–Shamir
/// style, so an adversary cannot choose signatures against known
/// coefficients). The combined equation is evaluated with a shared-doubling
/// multi-scalar multiplication, which is what amortizes the per-signature
/// cost. Cofactored on both sides to match verify(): every individually
/// valid signature satisfies its cofactored equation exactly, so there are
/// no false rejections, and a false acceptance requires the adversary to
/// hit a random 128-bit linear relation (negligible).
[[nodiscard]] bool verify_batch(const std::vector<SigCheck>& checks);

}  // namespace probft::crypto::ed25519
