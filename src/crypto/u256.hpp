// Fixed-width 256/512-bit unsigned integer arithmetic.
//
// This is the arithmetic substrate for the from-scratch edwards25519
// implementation (field elements mod 2^255-19 and scalars mod the group
// order L). Representation is little-endian 64-bit limbs. The code favors
// obvious correctness over speed; the field layer adds a fast reduction for
// the special prime. Operations are NOT constant-time — this library is a
// research/simulation artifact, not a hardened crypto library (documented in
// README).
#pragma once

#include <array>
#include <cstdint>

#include "common/bytes.hpp"

namespace probft::crypto {

struct U256 {
  std::array<std::uint64_t, 4> w{};

  friend constexpr bool operator==(const U256&, const U256&) = default;
};

struct U512 {
  std::array<std::uint64_t, 8> w{};
};

/// out = a + b, returns the carry bit.
std::uint64_t u256_add(U256& out, const U256& a, const U256& b);

/// out = a - b, returns the borrow bit.
std::uint64_t u256_sub(U256& out, const U256& a, const U256& b);

/// Three-way comparison: -1, 0, or +1.
int u256_cmp(const U256& a, const U256& b);

/// Full 256x256 -> 512-bit product (schoolbook with 128-bit accumulators).
U512 u256_mul(const U256& a, const U256& b);

/// x mod m, via binary long division. Requires m != 0 and m < 2^255 so the
/// running remainder can be shifted without overflow.
U256 u512_mod(const U512& x, const U256& m);

/// (a * b) mod m. Requires m < 2^255.
U256 u256_mulmod(const U256& a, const U256& b, const U256& m);

/// (a + b) mod m. Requires a, b < m.
U256 u256_addmod(const U256& a, const U256& b, const U256& m);

/// Little-endian byte conversions.
U256 u256_from_le(ByteSpan bytes32);
void u256_to_le(const U256& x, std::uint8_t out[32]);

/// Extracts bit `i` (0 = least significant).
inline int u256_bit(const U256& x, int i) {
  return static_cast<int>((x.w[static_cast<std::size_t>(i) / 64] >>
                           (static_cast<std::size_t>(i) % 64)) &
                          1U);
}

constexpr U256 u256_zero() { return U256{}; }
constexpr U256 u256_one() { return U256{{1, 0, 0, 0}}; }
inline bool u256_is_zero(const U256& x) {
  return (x.w[0] | x.w[1] | x.w[2] | x.w[3]) == 0;
}

}  // namespace probft::crypto
