#include "crypto/curve25519.hpp"

#include <stdexcept>

#include "common/bytes.hpp"

namespace probft::crypto::curve {

namespace {

using u128 = unsigned __int128;

constexpr U256 kP{{0xffffffffffffffedULL, 0xffffffffffffffffULL,
                   0xffffffffffffffffULL, 0x7fffffffffffffffULL}};

constexpr U256 kL{{0x5812631a5cf5d3edULL, 0x14def9dea2f79cd6ULL,
                   0x0000000000000000ULL, 0x1000000000000000ULL}};

/// Reduces a 512-bit product mod p using 2^256 == 38 (mod p).
U256 fe_fold(const U512& t) {
  U256 r{};
  std::uint64_t carry = 0;
  for (int i = 0; i < 4; ++i) {
    const u128 v = static_cast<u128>(t.w[i]) +
                   static_cast<u128>(t.w[i + 4]) * 38 + carry;
    r.w[i] = static_cast<std::uint64_t>(v);
    carry = static_cast<std::uint64_t>(v >> 64);
  }
  // Fold the (small) carry back in: carry * 2^256 == carry * 38 (mod p).
  while (carry != 0) {
    u128 v = static_cast<u128>(r.w[0]) + static_cast<u128>(carry) * 38;
    r.w[0] = static_cast<std::uint64_t>(v);
    std::uint64_t c = static_cast<std::uint64_t>(v >> 64);
    for (int i = 1; i < 4 && c != 0; ++i) {
      v = static_cast<u128>(r.w[i]) + c;
      r.w[i] = static_cast<std::uint64_t>(v);
      c = static_cast<std::uint64_t>(v >> 64);
    }
    carry = c;
  }
  while (u256_cmp(r, kP) >= 0) {
    U256 tmp;
    u256_sub(tmp, r, kP);
    r = tmp;
  }
  return r;
}

U256 fe_from_u64(std::uint64_t v) {
  U256 out{};
  out.w[0] = v;
  return out;
}

struct CurveConstants {
  U256 d;
  U256 d2;
  U256 sqrt_m1;
  Point base;
};

const CurveConstants& constants();

}  // namespace

const U256& field_prime() { return kP; }
const U256& group_order() { return kL; }

U256 fe_add(const U256& a, const U256& b) { return u256_addmod(a, b, kP); }

U256 fe_sub(const U256& a, const U256& b) {
  U256 out;
  if (u256_sub(out, a, b) != 0) {
    U256 tmp;
    u256_add(tmp, out, kP);
    out = tmp;
  }
  return out;
}

U256 fe_mul(const U256& a, const U256& b) { return fe_fold(u256_mul(a, b)); }

U256 fe_sq(const U256& a) { return fe_mul(a, a); }

U256 fe_neg(const U256& a) { return fe_sub(u256_zero(), a); }

U256 fe_pow(const U256& base, const U256& exponent) {
  U256 result = u256_one();
  U256 acc = base;
  for (int i = 0; i < 256; ++i) {
    if (u256_bit(exponent, i)) result = fe_mul(result, acc);
    acc = fe_sq(acc);
  }
  return result;
}

U256 fe_invert(const U256& a) {
  // a^(p-2) mod p.
  U256 exp = kP;
  U256 two = fe_from_u64(2);
  U256 tmp;
  u256_sub(tmp, exp, two);
  return fe_pow(a, tmp);
}

namespace {

/// Square root mod p for p == 5 (mod 8): candidate a^((p+3)/8), fixed up by
/// sqrt(-1) when needed. Returns nullopt when `a` is a non-residue.
std::optional<U256> fe_sqrt(const U256& a) {
  // (p + 3) / 8.
  U256 exp{{0xfffffffffffffffeULL, 0xffffffffffffffffULL,
            0xffffffffffffffffULL, 0x0fffffffffffffffULL}};
  U256 x = fe_pow(a, exp);
  if (fe_sq(x) == a) return x;
  x = fe_mul(x, fe_sqrt_m1());
  if (fe_sq(x) == a) return x;
  return std::nullopt;
}

const CurveConstants& constants() {
  static const CurveConstants c = [] {
    CurveConstants out;
    // d = -121665 / 121666 mod p.
    const U256 num = fe_neg(fe_from_u64(121665));
    const U256 den = fe_invert(fe_from_u64(121666));
    out.d = fe_mul(num, den);
    out.d2 = fe_add(out.d, out.d);
    // sqrt(-1) = 2^((p-1)/4) mod p.
    U256 exp{{0xfffffffffffffffbULL, 0xffffffffffffffffULL,
              0xffffffffffffffffULL, 0x1fffffffffffffffULL}};
    out.sqrt_m1 = fe_pow(fe_from_u64(2), exp);
    // Base point decompressed from its canonical RFC 8032 encoding
    // (y = 4/5, x even).
    const Bytes encoded = from_hex(
        "5866666666666666666666666666666666666666666666666666666666666666");
    // point_decompress depends on sqrt_m1/d which are initialized above;
    // replicate the decompression inline to avoid re-entering constants().
    U256 y = u256_from_le(ByteSpan(encoded.data(), 32));
    const U256 y2 = fe_mul(y, y);
    const U256 u = fe_sub(y2, u256_one());
    const U256 v = fe_add(fe_mul(out.d, y2), u256_one());
    const U256 x2 = fe_mul(u, fe_invert(v));
    // Inline sqrt using out.sqrt_m1.
    U256 sqrt_exp{{0xfffffffffffffffeULL, 0xffffffffffffffffULL,
                   0xffffffffffffffffULL, 0x0fffffffffffffffULL}};
    U256 x = fe_pow(x2, sqrt_exp);
    if (!(fe_sq(x) == x2)) x = fe_mul(x, out.sqrt_m1);
    if (!(fe_sq(x) == x2)) {
      throw std::logic_error("curve25519: base point decompression failed");
    }
    if ((x.w[0] & 1) != 0) x = fe_neg(x);  // encoding has sign bit 0
    out.base.X = x;
    out.base.Y = y;
    out.base.Z = u256_one();
    out.base.T = fe_mul(x, y);
    return out;
  }();
  return c;
}

}  // namespace

const U256& fe_sqrt_m1() { return constants().sqrt_m1; }
const U256& fe_d() { return constants().d; }
const U256& fe_2d() { return constants().d2; }

Point point_identity() {
  return Point{u256_zero(), u256_one(), u256_one(), u256_zero()};
}

const Point& point_base() { return constants().base; }

Point point_add(const Point& p, const Point& q) {
  // RFC 8032 5.1.4 unified addition for a = -1.
  const U256 a = fe_mul(fe_sub(p.Y, p.X), fe_sub(q.Y, q.X));
  const U256 b = fe_mul(fe_add(p.Y, p.X), fe_add(q.Y, q.X));
  const U256 c = fe_mul(fe_mul(p.T, fe_2d()), q.T);
  const U256 d = fe_mul(fe_add(p.Z, p.Z), q.Z);
  const U256 e = fe_sub(b, a);
  const U256 f = fe_sub(d, c);
  const U256 g = fe_add(d, c);
  const U256 h = fe_add(b, a);
  return Point{fe_mul(e, f), fe_mul(g, h), fe_mul(f, g), fe_mul(e, h)};
}

Point point_double(const Point& p) {
  const U256 a = fe_sq(p.X);
  const U256 b = fe_sq(p.Y);
  const U256 c = fe_add(fe_sq(p.Z), fe_sq(p.Z));
  const U256 h = fe_add(a, b);
  const U256 xy = fe_add(p.X, p.Y);
  const U256 e = fe_sub(h, fe_sq(xy));
  const U256 g = fe_sub(a, b);
  const U256 f = fe_add(c, g);
  return Point{fe_mul(e, f), fe_mul(g, h), fe_mul(f, g), fe_mul(e, h)};
}

Point point_negate(const Point& p) {
  return Point{fe_neg(p.X), p.Y, p.Z, fe_neg(p.T)};
}

Point point_scalar_mul(const U256& scalar, const Point& p) {
  Point acc = point_identity();
  for (int i = 255; i >= 0; --i) {
    acc = point_double(acc);
    if (u256_bit(scalar, i)) acc = point_add(acc, p);
  }
  return acc;
}

Point point_multi_scalar_mul(const std::vector<ScalarPoint>& terms) {
  // Straus: one shared doubling chain, one conditional add per set bit.
  // Start below the highest set bit across all scalars so short (e.g.
  // 128-bit blinding) scalars don't pay for 255 empty doubling rounds.
  int top = -1;
  for (const auto& t : terms) {
    for (int i = 255; i > top; --i) {
      if (u256_bit(t.scalar, i)) {
        top = i;
        break;
      }
    }
  }
  Point acc = point_identity();
  for (int i = top; i >= 0; --i) {
    acc = point_double(acc);
    for (const auto& t : terms) {
      if (u256_bit(t.scalar, i)) acc = point_add(acc, t.point);
    }
  }
  return acc;
}

Point point_mul_cofactor(const Point& p) {
  return point_double(point_double(point_double(p)));
}

bool point_eq(const Point& p, const Point& q) {
  return fe_mul(p.X, q.Z) == fe_mul(q.X, p.Z) &&
         fe_mul(p.Y, q.Z) == fe_mul(q.Y, p.Z);
}

bool point_is_identity(const Point& p) {
  return u256_is_zero(p.X) && fe_mul(p.Y, u256_one()) == p.Z;
}

void point_compress(const Point& p, std::uint8_t out[32]) {
  const U256 zinv = fe_invert(p.Z);
  const U256 x = fe_mul(p.X, zinv);
  const U256 y = fe_mul(p.Y, zinv);
  u256_to_le(y, out);
  out[31] = static_cast<std::uint8_t>(out[31] |
                                      (static_cast<std::uint8_t>(x.w[0] & 1)
                                       << 7));
}

Bytes point_compress(const Point& p) {
  Bytes out(32);
  point_compress(p, out.data());
  return out;
}

std::optional<Point> point_decompress(ByteSpan bytes32) {
  if (bytes32.size() != 32) return std::nullopt;
  std::uint8_t buf[32];
  for (int i = 0; i < 32; ++i) buf[i] = bytes32[static_cast<std::size_t>(i)];
  const int sign = buf[31] >> 7;
  buf[31] &= 0x7f;
  const U256 y = u256_from_le(ByteSpan(buf, 32));
  if (u256_cmp(y, kP) >= 0) return std::nullopt;  // non-canonical
  const U256 y2 = fe_mul(y, y);
  const U256 u = fe_sub(y2, u256_one());
  const U256 v = fe_add(fe_mul(fe_d(), y2), u256_one());
  const auto x2 = fe_mul(u, fe_invert(v));
  auto x_opt = fe_sqrt(x2);
  if (!x_opt) return std::nullopt;
  U256 x = *x_opt;
  if (u256_is_zero(x) && sign == 1) return std::nullopt;  // -0 is invalid
  if (static_cast<int>(x.w[0] & 1) != sign) x = fe_neg(x);
  return Point{x, y, u256_one(), fe_mul(x, y)};
}

U256 sc_reduce_wide(ByteSpan bytes64) {
  if (bytes64.size() != 64) {
    throw std::invalid_argument("sc_reduce_wide: need exactly 64 bytes");
  }
  U512 x{};
  for (int i = 0; i < 8; ++i) {
    std::uint64_t v = 0;
    for (int j = 7; j >= 0; --j) {
      v = (v << 8) | bytes64[static_cast<std::size_t>(8 * i + j)];
    }
    x.w[i] = v;
  }
  return u512_mod(x, kL);
}

U256 sc_reduce(ByteSpan bytes32) {
  const U256 x = u256_from_le(bytes32);
  U512 wide{};
  for (int i = 0; i < 4; ++i) wide.w[i] = x.w[i];
  return u512_mod(wide, kL);
}

U256 sc_mul(const U256& a, const U256& b) { return u256_mulmod(a, b, kL); }

U256 sc_add(const U256& a, const U256& b) { return u256_addmod(a, b, kL); }

U256 sc_muladd(const U256& a, const U256& b, const U256& c) {
  return sc_add(sc_mul(a, b), c);
}

U256 sc_sub(const U256& a, const U256& b) {
  U256 out;
  if (u256_sub(out, a, b) != 0) {
    U256 tmp;
    u256_add(tmp, out, kL);
    out = tmp;
  }
  return out;
}

}  // namespace probft::crypto::curve
