// SHA-256 (FIPS 180-4), implemented from scratch.
#pragma once

#include <array>
#include <cstdint>

#include "common/bytes.hpp"

namespace probft::crypto {

class Sha256 {
 public:
  static constexpr std::size_t kDigestSize = 32;
  using Digest = std::array<std::uint8_t, kDigestSize>;

  Sha256();

  Sha256& update(ByteSpan data);
  [[nodiscard]] Digest finalize();

  /// One-shot convenience.
  [[nodiscard]] static Digest hash(ByteSpan data);

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint32_t, 8> state_{};
  std::array<std::uint8_t, 64> buffer_{};
  std::uint64_t total_bytes_ = 0;
  std::size_t buffer_len_ = 0;
};

/// Hash returning an owned Bytes (handy for codec-heavy call sites).
[[nodiscard]] Bytes sha256(ByteSpan data);

}  // namespace probft::crypto
