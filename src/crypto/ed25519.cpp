#include "crypto/ed25519.hpp"

#include <algorithm>
#include <stdexcept>

#include "crypto/curve25519.hpp"
#include "crypto/sha512.hpp"

namespace probft::crypto::ed25519 {

namespace curve = probft::crypto::curve;

namespace {

struct ExpandedKey {
  curve::U256 scalar;                 // clamped secret scalar a
  std::array<std::uint8_t, 32> prefix;  // nonce-derivation prefix
  Bytes public_key;                   // compressed A = a*B
};

ExpandedKey expand(ByteSpan seed) {
  if (seed.size() != kSeedSize) {
    throw std::invalid_argument("ed25519: seed must be 32 bytes");
  }
  const auto h = Sha512::hash(seed);
  std::uint8_t scalar_bytes[32];
  for (int i = 0; i < 32; ++i) scalar_bytes[i] = h[static_cast<std::size_t>(i)];
  scalar_bytes[0] &= 248;
  scalar_bytes[31] &= 127;
  scalar_bytes[31] |= 64;

  ExpandedKey out;
  out.scalar = curve::u256_from_le(ByteSpan(scalar_bytes, 32));
  for (int i = 0; i < 32; ++i) {
    out.prefix[static_cast<std::size_t>(i)] = h[static_cast<std::size_t>(32 + i)];
  }
  const curve::Point a_point =
      curve::point_scalar_mul(out.scalar, curve::point_base());
  out.public_key = curve::point_compress(a_point);
  return out;
}

}  // namespace

Bytes derive_public(ByteSpan seed) { return expand(seed).public_key; }

Bytes sign(ByteSpan seed, ByteSpan message) {
  const ExpandedKey key = expand(seed);

  Sha512 h_r;
  h_r.update(ByteSpan(key.prefix.data(), key.prefix.size()));
  h_r.update(message);
  const auto r_hash = h_r.finalize();
  const curve::U256 r =
      curve::sc_reduce_wide(ByteSpan(r_hash.data(), r_hash.size()));

  const curve::Point r_point =
      curve::point_scalar_mul(r, curve::point_base());
  const Bytes r_compressed = curve::point_compress(r_point);

  Sha512 h_k;
  h_k.update(ByteSpan(r_compressed.data(), r_compressed.size()));
  h_k.update(ByteSpan(key.public_key.data(), key.public_key.size()));
  h_k.update(message);
  const auto k_hash = h_k.finalize();
  const curve::U256 k =
      curve::sc_reduce_wide(ByteSpan(k_hash.data(), k_hash.size()));

  // S = (r + k * a) mod L.
  const curve::U256 s =
      curve::sc_muladd(k, curve::sc_reduce([&] {
        std::uint8_t buf[32];
        curve::u256_to_le(key.scalar, buf);
        return Bytes(buf, buf + 32);
      }()),
                       r);

  Bytes signature = r_compressed;
  std::uint8_t s_bytes[32];
  curve::u256_to_le(s, s_bytes);
  signature.insert(signature.end(), s_bytes, s_bytes + 32);
  return signature;
}

bool verify(ByteSpan public_key, ByteSpan message, ByteSpan signature) {
  if (public_key.size() != kPublicKeySize ||
      signature.size() != kSignatureSize) {
    return false;
  }
  const auto a_opt = curve::point_decompress(public_key);
  if (!a_opt) return false;
  const auto r_opt = curve::point_decompress(signature.subspan(0, 32));
  if (!r_opt) return false;

  const curve::U256 s = curve::u256_from_le(signature.subspan(32, 32));
  if (curve::u256_cmp(s, curve::group_order()) >= 0) return false;

  Sha512 h_k;
  h_k.update(signature.subspan(0, 32));
  h_k.update(public_key);
  h_k.update(message);
  const auto k_hash = h_k.finalize();
  const curve::U256 k =
      curve::sc_reduce_wide(ByteSpan(k_hash.data(), k_hash.size()));

  // Cofactored check: [8]S*B == [8](R + k*A). RFC 8032 permits either the
  // cofactored or cofactorless equation; the cofactored form is the one
  // consistent with batch verification (verify_batch below), because a
  // small-order defect T in a malicious R or A is annihilated by the
  // cofactor in BOTH checks, whereas a cofactorless single check would
  // reject a signature the batch equation accepts with probability
  // 1/ord(T) — a per-replica divergence a consensus protocol cannot
  // tolerate.
  const curve::Point lhs =
      curve::point_scalar_mul(s, curve::point_base());
  const curve::Point rhs =
      curve::point_add(*r_opt, curve::point_scalar_mul(k, *a_opt));
  return curve::point_eq(curve::point_mul_cofactor(lhs),
                         curve::point_mul_cofactor(rhs));
}

bool verify_batch(const std::vector<SigCheck>& checks) {
  if (checks.empty()) return true;
  if (checks.size() == 1) {
    return verify(checks[0].public_key, checks[0].message,
                  checks[0].signature);
  }

  struct Parsed {
    curve::Point a, r;
    curve::U256 s, k;
  };
  std::vector<Parsed> parsed;
  parsed.reserve(checks.size());
  Sha512 transcript;
  for (const auto& c : checks) {
    // Any malformed triple fails individually, so the batch answer is false.
    if (c.public_key.size() != kPublicKeySize ||
        c.signature.size() != kSignatureSize) {
      return false;
    }
    const auto a_opt = curve::point_decompress(c.public_key);
    if (!a_opt) return false;
    const auto r_opt = curve::point_decompress(c.signature.subspan(0, 32));
    if (!r_opt) return false;
    const curve::U256 s = curve::u256_from_le(c.signature.subspan(32, 32));
    if (curve::u256_cmp(s, curve::group_order()) >= 0) return false;

    Sha512 h_k;
    h_k.update(c.signature.subspan(0, 32));
    h_k.update(c.public_key);
    h_k.update(c.message);
    const auto k_hash = h_k.finalize();
    parsed.push_back({*a_opt, *r_opt, s,
                      curve::sc_reduce_wide(
                          ByteSpan(k_hash.data(), k_hash.size()))});
    transcript.update(c.public_key);
    transcript.update(c.signature);
    transcript.update(c.message);
  }
  const auto seed = transcript.finalize();

  // Combined equation with per-item 128-bit coefficients z_i:
  //   [Σ z_i s_i] B == Σ [z_i] R_i + [z_i k_i] A_i   (all scalars mod L)
  curve::U256 s_sum{};  // zero
  std::vector<curve::ScalarPoint> terms;
  terms.reserve(2 * parsed.size());
  for (std::size_t i = 0; i < parsed.size(); ++i) {
    Sha512 h_z;
    h_z.update(ByteSpan(seed.data(), seed.size()));
    std::uint8_t index_le[8];
    for (int b = 0; b < 8; ++b) {
      index_le[b] = static_cast<std::uint8_t>(i >> (8 * b));
    }
    h_z.update(ByteSpan(index_le, 8));
    const auto z_hash = h_z.finalize();
    std::uint8_t z_bytes[32] = {0};
    for (int b = 0; b < 16; ++b) z_bytes[b] = z_hash[static_cast<std::size_t>(b)];
    if (std::all_of(z_bytes, z_bytes + 16,
                    [](std::uint8_t v) { return v == 0; })) {
      z_bytes[0] = 1;  // z must be nonzero to keep item i in the relation
    }
    const curve::U256 z = curve::u256_from_le(ByteSpan(z_bytes, 32));

    s_sum = curve::sc_muladd(z, parsed[i].s, s_sum);
    terms.push_back({z, parsed[i].r});
    terms.push_back({curve::sc_mul(z, parsed[i].k), parsed[i].a});
  }
  // Cofactored, like the single check: each individually-valid signature
  // satisfies [8](s_i·B − R_i − k_i·A_i) = 0, so the combination holds
  // exactly (no false rejections); a signature failing its cofactored
  // equation survives only if the z_i-weighted sum cancels (negligible
  // with hash-derived 128-bit coefficients).
  const curve::Point lhs =
      curve::point_scalar_mul(s_sum, curve::point_base());
  const curve::Point rhs = curve::point_multi_scalar_mul(terms);
  return curve::point_eq(curve::point_mul_cofactor(lhs),
                         curve::point_mul_cofactor(rhs));
}

}  // namespace probft::crypto::ed25519
