#include "crypto/ed25519.hpp"

#include <stdexcept>

#include "crypto/curve25519.hpp"
#include "crypto/sha512.hpp"

namespace probft::crypto::ed25519 {

namespace curve = probft::crypto::curve;

namespace {

struct ExpandedKey {
  curve::U256 scalar;                 // clamped secret scalar a
  std::array<std::uint8_t, 32> prefix;  // nonce-derivation prefix
  Bytes public_key;                   // compressed A = a*B
};

ExpandedKey expand(ByteSpan seed) {
  if (seed.size() != kSeedSize) {
    throw std::invalid_argument("ed25519: seed must be 32 bytes");
  }
  const auto h = Sha512::hash(seed);
  std::uint8_t scalar_bytes[32];
  for (int i = 0; i < 32; ++i) scalar_bytes[i] = h[static_cast<std::size_t>(i)];
  scalar_bytes[0] &= 248;
  scalar_bytes[31] &= 127;
  scalar_bytes[31] |= 64;

  ExpandedKey out;
  out.scalar = curve::u256_from_le(ByteSpan(scalar_bytes, 32));
  for (int i = 0; i < 32; ++i) {
    out.prefix[static_cast<std::size_t>(i)] = h[static_cast<std::size_t>(32 + i)];
  }
  const curve::Point a_point =
      curve::point_scalar_mul(out.scalar, curve::point_base());
  out.public_key = curve::point_compress(a_point);
  return out;
}

}  // namespace

Bytes derive_public(ByteSpan seed) { return expand(seed).public_key; }

Bytes sign(ByteSpan seed, ByteSpan message) {
  const ExpandedKey key = expand(seed);

  Sha512 h_r;
  h_r.update(ByteSpan(key.prefix.data(), key.prefix.size()));
  h_r.update(message);
  const auto r_hash = h_r.finalize();
  const curve::U256 r =
      curve::sc_reduce_wide(ByteSpan(r_hash.data(), r_hash.size()));

  const curve::Point r_point =
      curve::point_scalar_mul(r, curve::point_base());
  const Bytes r_compressed = curve::point_compress(r_point);

  Sha512 h_k;
  h_k.update(ByteSpan(r_compressed.data(), r_compressed.size()));
  h_k.update(ByteSpan(key.public_key.data(), key.public_key.size()));
  h_k.update(message);
  const auto k_hash = h_k.finalize();
  const curve::U256 k =
      curve::sc_reduce_wide(ByteSpan(k_hash.data(), k_hash.size()));

  // S = (r + k * a) mod L.
  const curve::U256 s =
      curve::sc_muladd(k, curve::sc_reduce([&] {
        std::uint8_t buf[32];
        curve::u256_to_le(key.scalar, buf);
        return Bytes(buf, buf + 32);
      }()),
                       r);

  Bytes signature = r_compressed;
  std::uint8_t s_bytes[32];
  curve::u256_to_le(s, s_bytes);
  signature.insert(signature.end(), s_bytes, s_bytes + 32);
  return signature;
}

bool verify(ByteSpan public_key, ByteSpan message, ByteSpan signature) {
  if (public_key.size() != kPublicKeySize ||
      signature.size() != kSignatureSize) {
    return false;
  }
  const auto a_opt = curve::point_decompress(public_key);
  if (!a_opt) return false;
  const auto r_opt = curve::point_decompress(signature.subspan(0, 32));
  if (!r_opt) return false;

  const curve::U256 s = curve::u256_from_le(signature.subspan(32, 32));
  if (curve::u256_cmp(s, curve::group_order()) >= 0) return false;

  Sha512 h_k;
  h_k.update(signature.subspan(0, 32));
  h_k.update(public_key);
  h_k.update(message);
  const auto k_hash = h_k.finalize();
  const curve::U256 k =
      curve::sc_reduce_wide(ByteSpan(k_hash.data(), k_hash.size()));

  // Check S*B == R + k*A.
  const curve::Point lhs =
      curve::point_scalar_mul(s, curve::point_base());
  const curve::Point rhs =
      curve::point_add(*r_opt, curve::point_scalar_mul(k, *a_opt));
  return curve::point_eq(lhs, rhs);
}

}  // namespace probft::crypto::ed25519
