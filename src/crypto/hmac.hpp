// HMAC-SHA256 (RFC 2104), used for keyed derivations in tests and tools.
#pragma once

#include "common/bytes.hpp"

namespace probft::crypto {

[[nodiscard]] Bytes hmac_sha256(ByteSpan key, ByteSpan message);

}  // namespace probft::crypto
