#include "crypto/ecvrf.hpp"

#include <stdexcept>

#include "crypto/curve25519.hpp"
#include "crypto/sha512.hpp"

namespace probft::crypto::ecvrf {

namespace curve = probft::crypto::curve;

namespace {

constexpr std::uint8_t kSuite = 0x03;
constexpr std::uint8_t kDomainHashToCurve = 0x01;
constexpr std::uint8_t kDomainChallenge = 0x02;
constexpr std::uint8_t kDomainProofToHash = 0x03;
constexpr std::uint8_t kDomainBack = 0x00;

struct ExpandedKey {
  curve::U256 scalar;
  std::array<std::uint8_t, 32> prefix;
  Bytes public_key;
};

ExpandedKey expand(ByteSpan seed) {
  if (seed.size() != 32) {
    throw std::invalid_argument("ecvrf: seed must be 32 bytes");
  }
  const auto h = Sha512::hash(seed);
  std::uint8_t scalar_bytes[32];
  for (int i = 0; i < 32; ++i) scalar_bytes[i] = h[static_cast<std::size_t>(i)];
  scalar_bytes[0] &= 248;
  scalar_bytes[31] &= 127;
  scalar_bytes[31] |= 64;

  ExpandedKey out;
  out.scalar = curve::sc_reduce(ByteSpan(scalar_bytes, 32));
  for (int i = 0; i < 32; ++i) {
    out.prefix[static_cast<std::size_t>(i)] =
        h[static_cast<std::size_t>(32 + i)];
  }
  out.public_key = curve::point_compress(
      curve::point_scalar_mul(out.scalar, curve::point_base()));
  return out;
}

/// Try-and-increment hash-to-curve: hash (suite || 0x01 || Y || alpha || ctr)
/// until the first 32 bytes decompress to a curve point; clear the cofactor.
std::optional<curve::Point> hash_to_curve(ByteSpan public_key,
                                          ByteSpan alpha) {
  for (int ctr = 0; ctr < 256; ++ctr) {
    Sha512 h;
    const std::uint8_t head[2] = {kSuite, kDomainHashToCurve};
    h.update(ByteSpan(head, 2));
    h.update(public_key);
    h.update(alpha);
    const std::uint8_t tail[2] = {static_cast<std::uint8_t>(ctr),
                                  kDomainBack};
    h.update(ByteSpan(tail, 2));
    const auto digest = h.finalize();
    const auto candidate =
        curve::point_decompress(ByteSpan(digest.data(), 32));
    if (!candidate) continue;
    const curve::Point cleared = curve::point_mul_cofactor(*candidate);
    if (curve::point_is_identity(cleared)) continue;
    return cleared;
  }
  return std::nullopt;  // cryptographically unreachable
}

/// 16-byte challenge from four points.
Bytes hash_points(const curve::Point& p1, const curve::Point& p2,
                  const curve::Point& p3, const curve::Point& p4) {
  Sha512 h;
  const std::uint8_t head[2] = {kSuite, kDomainChallenge};
  h.update(ByteSpan(head, 2));
  for (const auto* p : {&p1, &p2, &p3, &p4}) {
    const Bytes compressed = curve::point_compress(*p);
    h.update(ByteSpan(compressed.data(), compressed.size()));
  }
  const std::uint8_t tail[1] = {kDomainBack};
  h.update(ByteSpan(tail, 1));
  const auto digest = h.finalize();
  return Bytes(digest.begin(), digest.begin() + 16);
}

curve::U256 challenge_to_scalar(ByteSpan c16) {
  std::uint8_t buf[32] = {};
  for (int i = 0; i < 16; ++i) buf[i] = c16[static_cast<std::size_t>(i)];
  return curve::u256_from_le(ByteSpan(buf, 32));
}

Bytes gamma_to_output(const curve::Point& gamma) {
  Sha512 h;
  const std::uint8_t head[2] = {kSuite, kDomainProofToHash};
  h.update(ByteSpan(head, 2));
  const Bytes cleared =
      curve::point_compress(curve::point_mul_cofactor(gamma));
  h.update(ByteSpan(cleared.data(), cleared.size()));
  const std::uint8_t tail[1] = {kDomainBack};
  h.update(ByteSpan(tail, 1));
  const auto digest = h.finalize();
  return Bytes(digest.begin(), digest.end());
}

}  // namespace

Proof prove(ByteSpan seed, ByteSpan alpha) {
  const ExpandedKey key = expand(seed);
  const auto h_opt =
      hash_to_curve(ByteSpan(key.public_key.data(), key.public_key.size()),
                    alpha);
  if (!h_opt) throw std::runtime_error("ecvrf: hash_to_curve failed");
  const curve::Point& h = *h_opt;

  const curve::Point gamma = curve::point_scalar_mul(key.scalar, h);

  // Deterministic nonce: SHA-512(prefix || H).
  Sha512 nonce_hash;
  nonce_hash.update(ByteSpan(key.prefix.data(), key.prefix.size()));
  const Bytes h_compressed = curve::point_compress(h);
  nonce_hash.update(ByteSpan(h_compressed.data(), h_compressed.size()));
  const auto nonce_digest = nonce_hash.finalize();
  const curve::U256 k = curve::sc_reduce_wide(
      ByteSpan(nonce_digest.data(), nonce_digest.size()));

  const curve::Point k_b = curve::point_scalar_mul(k, curve::point_base());
  const curve::Point k_h = curve::point_scalar_mul(k, h);
  const Bytes c16 = hash_points(h, gamma, k_b, k_h);
  const curve::U256 c = challenge_to_scalar(ByteSpan(c16.data(), c16.size()));

  const curve::U256 s = curve::sc_muladd(c, key.scalar, k);

  Proof out;
  out.proof = curve::point_compress(gamma);
  out.proof.insert(out.proof.end(), c16.begin(), c16.end());
  std::uint8_t s_bytes[32];
  curve::u256_to_le(s, s_bytes);
  out.proof.insert(out.proof.end(), s_bytes, s_bytes + 32);
  out.output = gamma_to_output(gamma);
  return out;
}

std::optional<Bytes> verify(ByteSpan public_key, ByteSpan alpha,
                            ByteSpan proof) {
  if (public_key.size() != 32 || proof.size() != kProofSize) {
    return std::nullopt;
  }
  const auto y_opt = curve::point_decompress(public_key);
  if (!y_opt) return std::nullopt;
  const auto gamma_opt = curve::point_decompress(proof.subspan(0, 32));
  if (!gamma_opt) return std::nullopt;

  const ByteSpan c16 = proof.subspan(32, 16);
  const curve::U256 c = challenge_to_scalar(c16);
  const curve::U256 s = curve::u256_from_le(proof.subspan(48, 32));
  if (curve::u256_cmp(s, curve::group_order()) >= 0) return std::nullopt;

  const auto h_opt = hash_to_curve(public_key, alpha);
  if (!h_opt) return std::nullopt;
  const curve::Point& h = *h_opt;

  // U = s*B - c*Y ; V = s*H - c*Gamma.
  const curve::Point u = curve::point_add(
      curve::point_scalar_mul(s, curve::point_base()),
      curve::point_negate(curve::point_scalar_mul(c, *y_opt)));
  const curve::Point v = curve::point_add(
      curve::point_scalar_mul(s, h),
      curve::point_negate(curve::point_scalar_mul(c, *gamma_opt)));

  const Bytes c_check = hash_points(h, *gamma_opt, u, v);
  if (!ct_equal(ByteSpan(c_check.data(), c_check.size()), c16)) {
    return std::nullopt;
  }
  return gamma_to_output(*gamma_opt);
}

Bytes proof_to_output(ByteSpan proof) {
  if (proof.size() != kProofSize) {
    throw std::invalid_argument("ecvrf: bad proof size");
  }
  const auto gamma_opt = curve::point_decompress(proof.subspan(0, 32));
  if (!gamma_opt) throw std::invalid_argument("ecvrf: bad gamma encoding");
  return gamma_to_output(*gamma_opt);
}

}  // namespace probft::crypto::ecvrf
