// SHA-512 (FIPS 180-4), implemented from scratch. Used by Ed25519 / ECVRF.
#pragma once

#include <array>
#include <cstdint>

#include "common/bytes.hpp"

namespace probft::crypto {

class Sha512 {
 public:
  static constexpr std::size_t kDigestSize = 64;
  using Digest = std::array<std::uint8_t, kDigestSize>;

  Sha512();

  Sha512& update(ByteSpan data);
  [[nodiscard]] Digest finalize();

  [[nodiscard]] static Digest hash(ByteSpan data);

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint64_t, 8> state_{};
  std::array<std::uint8_t, 128> buffer_{};
  std::uint64_t total_bytes_ = 0;  // messages < 2^64 bytes are plenty here
  std::size_t buffer_len_ = 0;
};

[[nodiscard]] Bytes sha512(ByteSpan data);

}  // namespace probft::crypto
