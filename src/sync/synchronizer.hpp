// View synchronizer in the style of Bravo, Chockler & Gotsman [6]
// ("Making Byzantine Consensus Live"), as assumed by the paper (§2.3, §3.2).
//
// Each replica advertises the highest view it wishes to enter (a Wish).
// With per-replica latest-wish bookkeeping:
//   - the (f+1)-th highest wish is adopted and re-broadcast (amplification:
//     at least one correct replica wants it), and
//   - the (2f+1)-th highest wish is entered (a quorum of replicas is there).
// A per-view timer with exponential back-off generates local wishes, which
// after GST guarantees all correct replicas eventually overlap in a view
// with a correct leader for long enough to decide.
//
// The synchronizer is transport-agnostic: the owner wires `broadcast_wish`
// to the network and feeds incoming wishes back via on_wish().
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/types.hpp"

namespace probft::sync {

struct SyncConfig {
  std::uint32_t n = 0;
  std::uint32_t f = 0;
  Duration base_timeout = 100'000;   // first view timeout (us)
  double backoff = 1.5;              // multiplicative per-view growth
  Duration max_timeout = 30'000'000; // cap
};

class Synchronizer {
 public:
  using WishBroadcaster = std::function<void(View)>;
  using ViewCallback = std::function<void(View)>;
  /// Schedules a callback after a delay (wired to the simulator).
  using TimerSetter = std::function<void(Duration, std::function<void()>)>;

  Synchronizer(ReplicaId self, SyncConfig config, WishBroadcaster wish,
               ViewCallback enter_view, TimerSetter set_timer);

  /// Enters view 1 and arms the first timer.
  void start();

  /// Feeds a Wish received from `from` (Byzantine senders included).
  void on_wish(ReplicaId from, View v);

  /// Local request to leave the current view (timeout already does this;
  /// protocols call it when they block a view on leader equivocation).
  void advance();

  /// Freezes the synchronizer once the replica decided.
  void stop();

  [[nodiscard]] View view() const { return current_; }
  [[nodiscard]] bool stopped() const { return stopped_; }
  [[nodiscard]] Duration timeout_for(View v) const;

 private:
  void wish_for(View v);
  void maybe_progress();
  void enter(View v);
  void arm_timer();
  /// k-th highest wish across replicas (k is 1-based).
  [[nodiscard]] View kth_highest_wish(std::uint32_t k) const;

  ReplicaId self_;
  SyncConfig cfg_;
  WishBroadcaster broadcast_wish_;
  ViewCallback enter_view_;
  TimerSetter set_timer_;

  View current_ = 0;
  View own_wish_ = 0;
  std::uint64_t generation_ = 0;  // invalidates stale timers
  bool stopped_ = false;
  std::vector<View> latest_wish_;  // per replica, index 0 unused
};

}  // namespace probft::sync
