#include "sync/synchronizer.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace probft::sync {

Synchronizer::Synchronizer(ReplicaId self, SyncConfig config,
                           WishBroadcaster wish, ViewCallback enter_view,
                           TimerSetter set_timer)
    : self_(self),
      cfg_(config),
      broadcast_wish_(std::move(wish)),
      enter_view_(std::move(enter_view)),
      set_timer_(std::move(set_timer)),
      latest_wish_(config.n + 1, 0) {
  if (cfg_.n == 0 || self_ == 0 || self_ > cfg_.n) {
    throw std::invalid_argument("Synchronizer: bad configuration");
  }
}

void Synchronizer::start() { enter(1); }

Duration Synchronizer::timeout_for(View v) const {
  double timeout = static_cast<double>(cfg_.base_timeout) *
                   std::pow(cfg_.backoff, static_cast<double>(v - 1));
  timeout = std::min(timeout, static_cast<double>(cfg_.max_timeout));
  return static_cast<Duration>(timeout);
}

void Synchronizer::on_wish(ReplicaId from, View v) {
  if (stopped_ || from == 0 || from > cfg_.n) return;
  if (v <= latest_wish_[from]) return;
  latest_wish_[from] = v;
  maybe_progress();
}

void Synchronizer::advance() {
  if (stopped_) return;
  if (own_wish_ <= current_) wish_for(current_ + 1);
}

void Synchronizer::stop() { stopped_ = true; }

void Synchronizer::wish_for(View v) {
  own_wish_ = v;
  latest_wish_[self_] = std::max(latest_wish_[self_], v);
  broadcast_wish_(v);
  maybe_progress();
}

View Synchronizer::kth_highest_wish(std::uint32_t k) const {
  std::vector<View> wishes(latest_wish_.begin() + 1, latest_wish_.end());
  std::sort(wishes.begin(), wishes.end(), std::greater<>());
  return k <= wishes.size() ? wishes[k - 1] : 0;
}

void Synchronizer::maybe_progress() {
  if (stopped_) return;
  // Amplification: the (f+1)-th highest wish is backed by at least one
  // correct replica; adopt it.
  const View amplify = kth_highest_wish(cfg_.f + 1);
  if (amplify > own_wish_) {
    wish_for(amplify);
    return;  // wish_for re-enters maybe_progress
  }
  // Entry: the (2f+1)-th highest wish has quorum support.
  const View enter_view = kth_highest_wish(2 * cfg_.f + 1);
  if (enter_view > current_) enter(enter_view);
}

void Synchronizer::enter(View v) {
  current_ = v;
  ++generation_;
  enter_view_(v);
  if (!stopped_) arm_timer();
}

void Synchronizer::arm_timer() {
  const std::uint64_t generation = generation_;
  set_timer_(timeout_for(current_), [this, generation] {
    if (stopped_ || generation != generation_) return;
    advance();
  });
}

}  // namespace probft::sync
