// SMR-aware preverification extractor for core::VerifyPool.
//
// SMR consensus traffic travels as kSmrTag envelopes: u64 slot ‖ inner tag
// ‖ inner core-protocol message. The verdict cache keys on message CONTENT
// (which already differs per slot through the proposed batch), so the pool
// just strips the envelope and recurses into the core extractor — one
// shared cache serves every slot. Everything else (forwards, hints, pulls,
// checkpoint votes, state transfer) carries either no signatures or
// signatures the SMR layer verifies inline and uncached today; those
// messages produce no tasks and flow straight through the pool's FIFO.
#pragma once

#include <cstdint>
#include <vector>

#include "common/bytes.hpp"
#include "core/verify_pool.hpp"

namespace probft::smr {

/// Drop-in PreverifyFn for a pool sitting in front of an SmrReplica.
[[nodiscard]] std::vector<core::VerifyTask> preverify_tasks(
    const core::PreverifyContext& ctx, std::uint8_t tag,
    const Bytes& payload);

}  // namespace probft::smr
