// Byzantine-certified checkpoints and the catch-up proofs built on them.
//
// The SMR engine used to let a straggler adopt a "decided" value once f+1
// distinct senders vouched for it, with sender identity supplied by the
// channel. That is fine inside the simulator, but over real sockets a
// single Byzantine peer who can forge sender ids forges f+1 vouchers and
// injects an arbitrary undecided value. This header replaces channel trust
// with signatures:
//
//  - A `CheckpointState` is the deterministic digest-able summary of an
//    executed prefix: next-exec slot, executed-command count, the chained
//    log digest at that slot, and the per-client dedup table. Every correct
//    replica that executed the same prefix produces bit-identical state.
//  - At each checkpoint-interval slot boundary a replica signs the state
//    digest and broadcasts a `CheckpointVote`; 2f+1 matching votes form a
//    `CheckpointCert` — at least f+1 correct replicas attest the prefix,
//    so a verified cert is adoptable by anyone, from anyone.
//  - Decided-value hints now carry a signature over (slot, value digest):
//    f+1 hints only count when they verify against f+1 DISTINCT signers'
//    public keys, so vouchers can no longer be forged by one peer.
//
// The chained log digest (d0 = 0^32, d_{i+1} = SHA-256(d_i ‖ len ‖ batch_i))
// replaces the flat whole-log hash so the digest survives log truncation:
// a replica that discarded slots below its stable checkpoint keeps hashing
// forward from the checkpoint's digest and stays comparable with peers.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/bytes.hpp"
#include "common/codec.hpp"
#include "common/types.hpp"
#include "crypto/suite.hpp"
#include "net/tags.hpp"

namespace probft::smr {

/// Wire tags for the certified catch-up path; values live in the central
/// registry (net/tags.hpp), these are local re-exports.
inline constexpr std::uint8_t kSmrCkptTag = net::tags::kSmrCkpt;
inline constexpr std::uint8_t kSmrStateTag = net::tags::kSmrState;

/// The chain's genesis digest: 32 zero bytes.
[[nodiscard]] Bytes zero_digest();

/// One chain step: SHA-256(prev ‖ u32 len ‖ value).
[[nodiscard]] Bytes chain_digest(const Bytes& prev, const Bytes& value);

/// Deterministic summary of an executed prefix. Two correct replicas that
/// executed the same slots produce identical encodings (last_exec is kept
/// sorted by client id), hence identical digests.
struct CheckpointState {
  std::uint64_t slot = 0;        // next slot to execute (= slots executed)
  std::uint64_t exec_count = 0;  // commands executed so far
  Bytes log_digest;              // 32-byte chained digest at `slot`
  /// Per-client last-executed seq, ascending by client id.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> last_exec;

  void encode(Writer& w) const;
  static CheckpointState decode(Reader& r);
  /// SHA-256 over the encoding — what votes and certs sign.
  [[nodiscard]] Bytes digest() const;
};

/// Domain-separated signing bytes for a checkpoint vote.
[[nodiscard]] Bytes checkpoint_signing_bytes(std::uint64_t slot,
                                             const Bytes& state_digest);

/// Domain-separated signing bytes for a decided-value hint: the signer
/// attests "slot `slot` decided the batch hashing to `value_digest`".
[[nodiscard]] Bytes hint_signing_bytes(std::uint64_t slot,
                                       const Bytes& value_digest);

struct CheckpointVote {
  std::uint64_t slot = 0;
  Bytes state_digest;
  ReplicaId signer = 0;
  Bytes signature;

  void encode(Writer& w) const;
  static CheckpointVote decode(Reader& r);
};

/// 2f+1 matching votes over one state digest.
struct CheckpointCert {
  std::uint64_t slot = 0;
  Bytes state_digest;
  /// (signer, signature), ascending by signer, no duplicates.
  std::vector<std::pair<ReplicaId, Bytes>> signatures;

  void encode(Writer& w) const;
  static CheckpointCert decode(Reader& r);
};

/// True iff `cert` carries >= 2f+1 signatures from distinct in-range
/// signers, each valid over checkpoint_signing_bytes(slot, digest).
[[nodiscard]] bool verify_checkpoint_cert(const CheckpointCert& cert,
                                          std::uint32_t n, std::uint32_t f,
                                          const crypto::CryptoSuite& suite,
                                          const crypto::PublicKeyDir& keys);

}  // namespace probft::smr
