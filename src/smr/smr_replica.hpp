// State machine replication on top of ProBFT (paper §7: "leveraging ProBFT
// for constructing a scalable state machine replication protocol").
//
// The replicated log is a sequence of slots; each slot is decided by an
// independent single-shot ProBFT instance. All instances of one replica
// share the node's keypair and network connection — wire messages are the
// ProBFT messages prefixed with the slot number.
//
// Pipelined, batched engine (PBFT-style water marks):
//
//  - A slot decides a `Batch` of client requests (smr/batch.hpp), not a
//    single opaque command; requests carry (client id, seq) so replayed
//    requests are deduplicated via a per-client last-executed table.
//  - Slots [exec, exec + window) run concurrently; execution is strictly
//    in slot order. Decisions that land out of order buffer until the gap
//    fills.
//  - Slot opening is demand-driven: a slot opens when this replica has a
//    full batch ready, when its pacing timer (batch_timeout) expires with
//    requests queued, or when consensus traffic for the slot arrives from
//    a peer. An idle system opens no slots and burns no no-op fillers.
//  - Submissions at a non-leader replica are forwarded to the round-robin
//    view-1 leader so they land in the next batch without waiting for a
//    view change; the local copy is kept as a liveness fallback.
//  - Executed slots are retired: the per-slot core::Replica is destroyed
//    once execution has moved `retire_tail` slots past it, so memory is
//    O(window + tail) instead of O(log length).
//
// Certified catch-up and durability (smr/checkpoint.hpp, store/wal.hpp):
//
//  - Late traffic for an executed slot is answered with a decided-value
//    hint SIGNED over (slot, value digest); a replica adopts a hinted
//    value once f + 1 hints verify against f + 1 distinct replicas' public
//    keys (at least one correct), so vouchers cannot be forged by a peer
//    that spoofs sender ids.
//  - Every `checkpoint_interval` executed slots the replica broadcasts a
//    signed vote over its state digest (chained log digest + dedup table
//    + next-exec slot); 2f + 1 matching votes form a CheckpointCert. The
//    stable checkpoint truncates the retained slot log (memory and, with
//    a WAL, disk stay O(interval + window) instead of O(log length)).
//  - A straggler whose gap starts below a peer's truncation point adopts
//    the peer's checkpoint only after verifying its 2f + 1 cert, then
//    fills the remaining slots from signed hints — state transfer needs
//    no channel trust at all.
//  - With a `store::Wal` attached, every decide is appended (CRC-framed,
//    fsync'd) before client-visible execution, and stable checkpoints
//    atomically replace the log's tail on disk; a kill -9'd replica
//    rejoins from its last stable checkpoint instead of genesis.
//
// Because each slot is a full ProBFT instance, the probabilistic agreement
// guarantee applies per slot, and the SMR inherits safety with probability
// (1 - exp(-Θ(√n)))^slots — still overwhelmingly close to 1 for realistic
// log lengths.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/bytes.hpp"
#include "common/types.hpp"
#include "core/protocol_host.hpp"
#include "core/replica.hpp"
#include "net/client.hpp"
#include "net/tags.hpp"
#include "smr/batch.hpp"
#include "smr/checkpoint.hpp"
#include "smr/read_view.hpp"
#include "smr/reads.hpp"
#include "store/wal.hpp"

namespace probft::smr {

/// Outer wire tags, so SMR traffic can share a network with other tags.
/// Values live in the central registry (net/tags.hpp); these are local
/// re-exports so call sites keep their historical names.
inline constexpr std::uint8_t kSmrTag = net::tags::kSmr;
inline constexpr std::uint8_t kSmrForwardTag = net::tags::kSmrForward;
inline constexpr std::uint8_t kSmrHintTag = net::tags::kSmrHint;
inline constexpr std::uint8_t kSmrPullTag = net::tags::kSmrPull;
// kSmrCkptTag and kSmrStateTag live in smr/checkpoint.hpp.

/// Pipeline shape: how many instances run in flight, how requests batch,
/// and how long executed instances linger. Plumbed through
/// sim::NodeParams / sim::ClusterConfig so the simulator, the TCP node
/// binary and the benches configure the engine identically.
struct SmrOptions {
  /// In-flight window W: slots [exec, exec + window) may be open at once.
  /// window = 1 reproduces the old serial open-one-slot-at-a-time engine.
  std::uint32_t window = 8;
  /// Batch caps: a slot proposal carries at most this many requests /
  /// encoded bytes. batch_max_commands = 1 reproduces one-command slots.
  std::uint32_t batch_max_commands = 64;
  std::size_t batch_max_bytes = 256 * 1024;
  /// Pacing: with a non-empty but not-full queue, a slot opens after this
  /// long (µs) instead of waiting for the batch to fill.
  Duration batch_timeout = 20'000;
  /// Executed slots keep their instance for this many further slots
  /// before retirement (late NewLeader traffic lands there); beyond it,
  /// traffic is answered with hints.
  std::uint32_t retire_tail = 2;
  /// While execution trails slots known to exist (opened locally, or
  /// merely observed in peer traffic — the gap may exceed the window),
  /// the replica broadcasts a pull for the oldest unexecuted slot at
  /// this period (µs); peers that already executed answer with signed
  /// decided-value hints for a window's worth of slots (and a certified
  /// checkpoint when the asked slot is below their truncation point).
  Duration catchup_timeout = 250'000;
  /// Cap on requests held in the intake queue (local submissions and
  /// peer forwards combined); beyond it, enqueue rejects — backpressure
  /// instead of unbounded memory under a forward flood.
  std::size_t max_pending_requests = 8192;
  /// Hard cap on the number of slots this replica will open (bounds the
  /// simulation; a production deployment would run unbounded).
  std::uint64_t max_slots = 1024;
  /// Checkpoint every this many executed slots (0 disables). A stable
  /// checkpoint (2f + 1 matching votes) truncates the retained slot log
  /// below it, in memory and in the WAL.
  std::uint64_t checkpoint_interval = 16;

  // ---- read fast path (smr/reads.hpp, smr/read_view.hpp) ----
  /// Serve reads from the local ReadView and participate in the lease /
  /// read-index protocols. Off (the default) rejects every submit_read
  /// and sends no read-path traffic, so the write path — and every
  /// pinned digest — is bit-identical to a build without reads.
  bool serve_reads = false;
  /// Use leader leases for linearizable reads; off = read-index only.
  bool read_leases = true;
  /// Leader-side lease validity (µs), clocked from the lease-request
  /// broadcast. Granters promise for lease_duration + lease_skew from
  /// the (strictly later) moment the request reaches them, so a deposed
  /// partitioned leader's validity always runs out before any granter's
  /// promise frees a view-change quorum.
  Duration lease_duration = 2'000'000;
  /// Extra granter-side margin absorbing clock-rate drift across nodes.
  Duration lease_skew = 500'000;
  /// A read that cannot complete within this window (µs) — execution
  /// stalled below its read index, or no attestation quorum — answers
  /// kRejected instead of parking forever.
  Duration read_timeout = 1'000'000;
};

/// One executed request, reported in execution order.
struct ExecutedCommand {
  std::uint64_t slot = 0;   // log slot the request was decided in
  std::uint64_t index = 0;  // global execution index (0-based)
  std::uint64_t client = 0;
  std::uint64_t seq = 0;
  Bytes payload;
};

struct SmrConfig {
  ReplicaId id = 0;
  std::uint32_t n = 0;
  std::uint32_t f = 0;
  double o = 1.7;
  double l = 2.0;

  SmrOptions pipeline;

  /// ProBFT verification fast path for the per-slot instances.
  bool fast_verify = true;

  /// Leader-rotation offset for every per-slot instance (see
  /// core::ReplicaConfig::leader_offset). Sharded SMR runs S engines with
  /// offsets 0..S-1 so their view-1 leaders spread across the fleet.
  View leader_offset = 0;

  /// Forward submissions at a non-leader to the view-1 leader over
  /// kSmrForwardTag (the single-group default). shard::ShardedSmr turns
  /// this off and forwards at its own layer (kShardForwardTag, which
  /// carries the ShardMap version); the local enqueue stays either way
  /// as the liveness fallback.
  bool forward_submissions = true;

  const crypto::CryptoSuite* suite = nullptr;
  Bytes secret_key;
  crypto::PublicKeyDir public_keys;

  /// Optional shared verdict cache handed to every per-slot instance
  /// (see core::ReplicaConfig::verdicts). One multicast Prepare verified
  /// for slot s is then free for every other slot that references the
  /// same content, and a core::VerifyPool can pre-warm verdicts off the
  /// network thread. Null = per-instance private caches (simulator
  /// default; bit-identical to the pre-sharing behavior).
  std::shared_ptr<core::VerdictCache> verdicts;

  /// Consensus pacing (per-slot synchronizer settings).
  sync::SyncConfig sync;

  /// Optional durability: decides are appended (and fsync'd) here before
  /// client-visible execution, and stable checkpoints truncate it. The
  /// replica recovers from the WAL's contents at construction. Non-owning;
  /// must outlive the replica.
  store::Wal* wal = nullptr;

  /// Called once per executed request, in execution order (after the
  /// host's coarser on_commit). This is where a serving node sends client
  /// replies. Not called for requests replayed from the WAL at recovery.
  std::function<void(const ExecutedCommand&)> on_execute;
};

class SmrReplica : public core::INode {
 public:
  /// The host's `on_commit` is called once per executed request as
  /// (global execution index, payload); `on_decide` is unused at this
  /// layer (per-slot decisions are internal). If `config.wal` holds a
  /// recoverable state (snapshot and/or decide records), it is installed
  /// here — before start() — and throws std::runtime_error when the
  /// snapshot fails certificate verification.
  SmrReplica(SmrConfig config, core::ProtocolHost host);

  /// Demand-driven: nothing happens until a request is submitted or peer
  /// traffic arrives. A replica that recovered a non-empty log announces
  /// itself with one catch-up pull so peers re-seed it with whatever it
  /// missed while down.
  void start() override;

  /// Local convenience client: wraps `command` as a request from client
  /// id `id()` with an auto-incremented seq. Throws on empty/oversized
  /// commands (they could never be batched).
  void submit(Bytes command);

  /// Client-path entry: enqueues (client, seq, payload) for ordering.
  /// Returns false — and enqueues nothing — for duplicates (seq not past
  /// the client's last executed or already pending) and for payloads that
  /// cannot fit a batch. Retries are therefore idempotent.
  bool submit_request(std::uint64_t client, std::uint64_t seq, Bytes payload);

  /// Outcome of a read served off the ordered log.
  struct ReadResult {
    net::ReplyStatus status = net::ReplyStatus::kRejected;
    std::uint64_t slot = 0;   // last-write slot of the key (0: unwritten)
    std::uint64_t index = 0;  // exec-slot watermark the answer reflects
    Bytes value;
  };
  using ReadCallback = std::function<void(const ReadResult&)>;

  /// Read-path entry: answer `key`'s last write at the requested
  /// consistency. kStaleOk answers immediately from the local ReadView;
  /// kSequential waits until exec_slots() >= min_index; kLinearizable
  /// serves locally under a held lease (read index = next_open_) or runs
  /// the quorum read-index protocol. The callback fires exactly once —
  /// possibly synchronously — with kRejected when reads are disabled,
  /// the local view has a state-transfer gap, or the read times out.
  void submit_read(Bytes key, net::ReadConsistency consistency,
                   std::uint64_t min_index, ReadCallback cb);

  void on_message(ReplicaId from, std::uint8_t tag,
                  const Bytes& payload) override;

  // ---- inspection ----
  /// Executed request payloads, in execution order. Locally-executed only:
  /// a replica that adopted a certified checkpoint has a gap below it.
  [[nodiscard]] const std::vector<Bytes>& log() const {
    return exec_payloads_;
  }
  /// Decided batch encodings for the RETAINED slots [log_base(), exec);
  /// index i holds slot log_base() + i. Slots below the stable checkpoint
  /// are truncated away.
  [[nodiscard]] const std::vector<Bytes>& slot_log() const { return log_; }
  /// First retained slot (== the stable checkpoint slot).
  [[nodiscard]] std::uint64_t log_base() const { return log_base_; }
  /// Executed slots, counting truncated ones.
  [[nodiscard]] std::uint64_t committed_slots() const { return exec_slots(); }
  [[nodiscard]] std::uint64_t executed_commands() const { return exec_count_; }
  /// Hex chained digest over ALL executed slots (truncation-invariant):
  /// d0 = 0^32, d_{i+1} = SHA-256(d_i ‖ len ‖ batch_i). The log identity
  /// every harness compares across replicas.
  [[nodiscard]] std::string log_digest() const { return to_hex(chain_); }
  /// Slot of the stable (2f+1-certified) checkpoint; 0 before the first.
  [[nodiscard]] std::uint64_t stable_checkpoint() const {
    return stable_slot_;
  }
  /// Executed slots restored from the WAL at construction (checkpoint
  /// base + replayed decide records); 0 when starting fresh.
  [[nodiscard]] std::uint64_t recovered_slots() const {
    return recovered_slots_;
  }
  /// Live per-slot consensus instances (bounded by window + tail).
  [[nodiscard]] std::size_t open_instances() const {
    return instances_.size();
  }
  [[nodiscard]] std::uint64_t next_unopened_slot() const {
    return next_open_;
  }
  /// Requests queued or assigned to an in-flight slot, not yet executed.
  [[nodiscard]] std::size_t pending_commands() const {
    return queue_.size() + assigned_count_;
  }
  [[nodiscard]] bool has_committed(const Bytes& payload) const;
  /// Last executed seq for `client` (0 if none) — the dedup table.
  [[nodiscard]] std::uint64_t last_executed_seq(std::uint64_t client) const;
  /// Whether (client, seq) is queued or assigned to an in-flight slot —
  /// i.e. a submit_request(...) == false was a retry of live work, not a
  /// rejection. Serving nodes use this to keep reply routes alive.
  [[nodiscard]] bool has_pending(std::uint64_t client,
                                 std::uint64_t seq) const {
    return pending_keys_.count({client, seq}) != 0;
  }
  /// The KV projection reads are answered from.
  [[nodiscard]] const ReadView& read_view() const { return read_view_; }
  /// Whether this replica currently holds a live, unpoisoned lease.
  [[nodiscard]] bool lease_held() const {
    return lease_granted_epoch_ > lease_expired_epoch_ && !lease_poisoned_;
  }
  /// Whether lease serving has been permanently disabled (a decide at
  /// view > 1, a state transfer, or WAL recovery broke the premise).
  [[nodiscard]] bool lease_poisoned() const { return lease_poisoned_; }
  [[nodiscard]] std::uint64_t reads_served() const { return reads_served_; }
  [[nodiscard]] std::uint64_t reads_rejected() const {
    return reads_rejected_;
  }
  /// Linearizable reads answered under the lease (no quorum round-trip).
  [[nodiscard]] std::uint64_t lease_reads() const { return lease_reads_; }

 private:
  struct Buffered {
    ReplicaId from;
    std::uint8_t tag;
    Bytes payload;
  };

  /// Executed slots: the retained log plus everything truncated below it.
  [[nodiscard]] std::uint64_t exec_slots() const {
    return log_base_ + log_.size();
  }

  [[nodiscard]] bool enqueue(Request request);
  [[nodiscard]] bool full_batch_ready() const;
  void maybe_open_slots(bool pace_expired);
  void open_slots_through(std::uint64_t slot);
  void open_next_slot();
  void arm_pacing();
  void handle_slot_envelope(ReplicaId from, const Bytes& payload);
  void handle_forward(ReplicaId from, const Bytes& payload);
  void handle_hint(ReplicaId from, const Bytes& payload);
  void handle_pull(ReplicaId from, const Bytes& payload);
  void handle_ckpt_vote(ReplicaId from, const Bytes& payload);
  void handle_state(ReplicaId from, const Bytes& payload);
  void handle_lease(ReplicaId from, const Bytes& payload);
  void handle_read_index(ReplicaId from, const Bytes& payload);
  void send_hint(ReplicaId to, std::uint64_t slot);
  void send_state(ReplicaId to);
  void arm_catchup();
  /// `view` is the consensus view the slot decided in; 0 when unknown
  /// (hint adoption, WAL replay) — anything but view 1 poisons a lease.
  void on_slot_decided(std::uint64_t slot, const Bytes& value, View view);
  void execute_ready_slots();

  // ---- read fast path ----
  [[nodiscard]] ReplicaId lease_leader() const {
    return leader_of(1 + cfg_.leader_offset, cfg_.n);
  }
  [[nodiscard]] bool is_lease_leader() const {
    return lease_leader() == cfg_.id;
  }
  /// Answer `cb` from the local ReadView right now.
  void answer_read(const Bytes& key, const ReadCallback& cb);
  void reject_read(const ReadCallback& cb);
  /// Park a read until exec_slots() >= wait_slots (answers immediately
  /// when already satisfied); a read_timeout timer rejects stuck parks.
  void park_read(Bytes key, std::uint64_t wait_slots, ReadCallback cb);
  void drain_parked_reads();
  /// Broadcast a lease request for the next epoch and arm validity +
  /// renewal timers (leader only; re-arms itself at duration/2).
  void request_lease();
  /// Start the quorum read-index protocol for one read.
  void begin_read_index(Bytes key, ReadCallback cb);
  void maybe_complete_read_index(std::uint64_t rid);
  void retire_executed_slots();
  void collect_retired();
  /// Upper bound (exclusive) on slots that may be open right now.
  [[nodiscard]] std::uint64_t open_limit() const;
  /// Horizon for buffering/hint state: slots beyond it are dropped.
  [[nodiscard]] std::uint64_t horizon() const;

  // ---- checkpoints / durability ----
  /// Deterministic summary of the executed prefix right now.
  [[nodiscard]] CheckpointState snapshot_state() const;
  /// At a checkpoint-interval boundary: snapshot, sign, broadcast a vote.
  void maybe_checkpoint();
  /// Books a verified vote; caller already checked signer and signature.
  void record_ckpt_vote(std::uint64_t slot, const Bytes& digest,
                        ReplicaId signer, Bytes signature);
  /// Promotes `slot` to stable if our own state there has 2f+1 votes.
  void try_stabilize(std::uint64_t slot);
  /// Installs a stable checkpoint this replica executed through: persists
  /// it (snapshot + retained tail) and truncates the log below it.
  void stabilize(CheckpointState state, CheckpointCert cert);
  /// Adopts a VERIFIED checkpoint ahead of our execution (state
  /// transfer): replaces the dedup table, jumps the log base, requeues
  /// own still-unexecuted assignments from skipped slots.
  void install_checkpoint(CheckpointState state, CheckpointCert cert);
  /// Restores state from cfg_.wal (constructor path).
  void recover_from_wal();
  [[nodiscard]] static Bytes encode_decide_record(std::uint64_t slot,
                                                  const Bytes& value);

  SmrConfig cfg_;
  core::ProtocolHost host_;
  BatchLimits limits_;

  // -- executed state --
  /// Decided batch per RETAINED slot: log_[i] is slot log_base_ + i.
  std::vector<Bytes> log_;
  std::uint64_t log_base_ = 0;        // slots below are truncated
  Bytes chain_;                        // chained digest at exec_slots()
  std::uint64_t exec_count_ = 0;       // commands executed (incl. recovery)
  std::vector<Bytes> exec_payloads_;  // locally executed payloads, in order
  std::map<std::uint64_t, std::uint64_t> last_exec_;  // client → seq

  // -- checkpoints --
  /// Own state snapshots at interval boundaries, awaiting 2f+1 votes:
  /// slot → (state, state digest).
  std::map<std::uint64_t, std::pair<CheckpointState, Bytes>> pending_states_;
  /// Verified votes per boundary slot; few distinct digests (linear scan).
  struct CkptTally {
    Bytes digest;
    std::map<ReplicaId, Bytes> sigs;  // signer → signature
  };
  std::map<std::uint64_t, std::vector<CkptTally>> ckpt_votes_;
  std::uint64_t stable_slot_ = 0;
  std::optional<std::pair<CheckpointState, CheckpointCert>> stable_;

  // -- recovery --
  bool recovering_ = false;       // replaying the WAL: no sends, no appends
  std::uint64_t recovered_slots_ = 0;

  // -- request intake --
  std::deque<Request> queue_;   // not yet assigned to a slot
  std::size_t queue_bytes_ = 0; // encoded size the queue would batch to
  std::set<std::pair<std::uint64_t, std::uint64_t>> pending_keys_;
  std::map<std::uint64_t, Batch> assigned_;  // slot → this replica's batch
  std::size_t assigned_count_ = 0;
  std::uint64_t local_seq_ = 0;
  bool pace_armed_ = false;
  bool catchup_armed_ = false;
  bool started_ = false;
  /// Exclusive upper bound on slots known to exist somewhere in the
  /// cluster (from peer traffic and hints). While exec_slots() is below
  /// it, this replica is behind and the catch-up pull keeps running —
  /// including when the gap is wider than the open window.
  std::uint64_t max_seen_slot_ = 0;

  // -- in-flight slots --
  std::uint64_t next_open_ = 0;  // lowest never-opened slot
  std::map<std::uint64_t, std::unique_ptr<core::Replica>> instances_;
  /// Retirement is deferred: an instance may be retired from inside its
  /// own decision callback, so it parks here and is destroyed at the next
  /// top-level event (message or timer) when no instance frame is live.
  std::vector<std::unique_ptr<core::Replica>> retired_;
  std::map<std::uint64_t, Bytes> decided_out_of_order_;
  std::map<std::uint64_t, std::vector<Buffered>> buffered_;
  // slot → hinted values with their vouching peers (few distinct values,
  // linear scan); f+1 distinct SIGNATURE-VERIFIED vouchers adopt.
  struct HintEntry {
    Bytes value;
    std::set<ReplicaId> vouchers;
  };
  std::map<std::uint64_t, std::vector<HintEntry>> hints_;
  /// Memoized signed hint wire encodings per retained slot: handle_pull
  /// answers a window's worth of slots per straggler, and several
  /// stragglers ask for the same stretch — encode + sign once, reuse the
  /// buffer. Entries below the stable checkpoint are erased with the log.
  std::map<std::uint64_t, Bytes> hint_wire_;

  // -- read fast path --
  ReadView read_view_;
  /// True once the executed prefix was jumped over (state transfer /
  /// WAL snapshot recovery): the ReadView is missing the skipped writes,
  /// so every read is rejected rather than answered from a partial view.
  bool read_view_gap_ = false;
  std::uint64_t reads_served_ = 0;
  std::uint64_t reads_rejected_ = 0;
  std::uint64_t lease_reads_ = 0;
  /// Reads waiting for execution to reach their read index, keyed by the
  /// exec-slot count that releases them.
  struct ParkedRead {
    std::uint64_t token = 0;  // timeout identity
    Bytes key;
    ReadCallback cb;
  };
  std::multimap<std::uint64_t, ParkedRead> parked_reads_;
  std::uint64_t next_read_token_ = 0;
  /// In-flight quorum read-index rounds: rid → collected watermarks.
  struct ReadIndexWait {
    Bytes key;
    ReadCallback cb;
    std::map<ReplicaId, std::uint64_t> marks;  // signer → watermark
  };
  std::map<std::uint64_t, ReadIndexWait> read_index_waits_;
  std::uint64_t next_rid_ = 0;
  // Leader-side lease state. The lease of epoch e is held while
  // lease_granted_epoch_ >= e > lease_expired_epoch_; validity clocks
  // from the request broadcast, so it is strictly shorter than any
  // granter's promise.
  std::uint64_t lease_epoch_ = 0;          // latest requested epoch
  std::uint64_t lease_granted_epoch_ = 0;  // latest epoch with 2f+1 grants
  std::uint64_t lease_expired_epoch_ = 0;  // latest epoch timed out
  bool lease_poisoned_ = false;
  std::set<ReplicaId> lease_grants_;  // granters of lease_epoch_
  // Granter-side promise state: while promise_live_ > 0 this replica
  // suppresses its own outgoing view-change traffic (kNewLeader/kWish)
  // for this engine — with 2f+1 promises live no view-change quorum can
  // form, which is exactly what makes the leader's lease sound.
  std::uint64_t promise_live_ = 0;
  std::uint64_t last_granted_epoch_ = 0;
  /// View-change frames generated while promises were live. The
  /// synchronizer broadcasts each wish exactly once (its view timer does
  /// not re-arm), so a suppressed frame must be DEFERRED, not dropped —
  /// it is flushed when the last promise expires, which is what lets a
  /// view change eventually depose a dead lease holder.
  struct DeferredFrame {
    ReplicaId to = 0;  // 0 = broadcast
    Bytes frame;
  };
  std::vector<DeferredFrame> deferred_vc_;
};

}  // namespace probft::smr
