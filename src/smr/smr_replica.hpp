// State machine replication on top of ProBFT (paper §7: "leveraging ProBFT
// for constructing a scalable state machine replication protocol").
//
// Design: the replicated log is a sequence of slots; each slot is decided
// by an independent single-shot ProBFT instance. All instances of one
// replica share the node's keypair and network connection — wire messages
// are the ProBFT messages prefixed with the slot number. A replica opens
// slot k+1 as soon as its slot-k instance decides, executes decided
// commands strictly in slot order, and proposes its oldest not-yet-
// committed client command whenever it leads a slot (a no-op filler
// otherwise).
//
// Because each slot is a full ProBFT instance, the probabilistic agreement
// guarantee applies per slot, and the SMR inherits safety with probability
// (1 - exp(-Θ(√n)))^slots — still overwhelmingly close to 1 for realistic
// log lengths.
#pragma once

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "common/bytes.hpp"
#include "common/types.hpp"
#include "core/protocol_host.hpp"
#include "core/replica.hpp"

namespace probft::smr {

/// The byte every SMR wire message starts with, so SMR traffic can share a
/// network with other tags if needed.
inline constexpr std::uint8_t kSmrTag = 0x20;

struct SmrConfig {
  ReplicaId id = 0;
  std::uint32_t n = 0;
  std::uint32_t f = 0;
  double o = 1.7;
  double l = 2.0;
  /// Hard cap on the number of slots this replica will open (bounds the
  /// simulation; a production deployment would run unbounded).
  std::uint64_t max_slots = 1024;

  const crypto::CryptoSuite* suite = nullptr;
  Bytes secret_key;
  crypto::PublicKeyDir public_keys;

  /// Consensus pacing (per-slot synchronizer settings).
  sync::SyncConfig sync;
};

class SmrReplica : public core::INode {
 public:
  /// The host's `on_commit` is called once per committed log entry, in
  /// slot order; `on_decide` is unused at this layer (per-slot decisions
  /// are internal).
  SmrReplica(SmrConfig config, core::ProtocolHost host);

  /// Opens slot 0.
  void start() override;

  /// Enqueues a client command; it will be proposed whenever this replica
  /// leads a slot and the command is still uncommitted.
  void submit(Bytes command);

  void on_message(ReplicaId from, std::uint8_t tag,
                  const Bytes& payload) override;

  // ---- inspection ----
  /// Committed commands, in slot order.
  [[nodiscard]] const std::vector<Bytes>& log() const { return log_; }
  [[nodiscard]] std::uint64_t committed_slots() const { return log_.size(); }
  [[nodiscard]] std::uint64_t open_slot() const { return next_slot_ - 1; }
  [[nodiscard]] std::size_t pending_commands() const { return queue_.size(); }
  [[nodiscard]] bool has_committed(const Bytes& command) const;

 private:
  void open_next_slot();
  void on_slot_decided(std::uint64_t slot, const Bytes& value);
  [[nodiscard]] Bytes proposal_for_next_slot() const;

  SmrConfig cfg_;
  core::ProtocolHost host_;

  std::uint64_t next_slot_ = 0;  // next slot to open
  std::map<std::uint64_t, std::unique_ptr<core::Replica>> instances_;
  std::map<std::uint64_t, Bytes> decided_out_of_order_;
  std::vector<Bytes> log_;
  std::deque<Bytes> queue_;

  // Messages for slots we have not opened yet.
  struct Buffered {
    ReplicaId from;
    std::uint8_t tag;
    Bytes payload;
  };
  std::map<std::uint64_t, std::vector<Buffered>> buffered_;
};

}  // namespace probft::smr
