#include "smr/read_view.hpp"

#include <algorithm>

namespace probft::smr {

namespace {

const std::uint8_t* find_eq(ByteSpan payload) {
  return std::find(payload.data(), payload.data() + payload.size(),
                   static_cast<std::uint8_t>('='));
}

}  // namespace

ByteSpan read_view_key(ByteSpan payload) {
  const std::uint8_t* eq = find_eq(payload);
  return ByteSpan(payload.data(),
                  static_cast<std::size_t>(eq - payload.data()));
}

ByteSpan read_view_value(ByteSpan payload) {
  const std::uint8_t* eq = find_eq(payload);
  const std::uint8_t* end = payload.data() + payload.size();
  if (eq == end) return payload;
  return ByteSpan(eq + 1, static_cast<std::size_t>(end - (eq + 1)));
}

void ReadView::apply(std::uint64_t slot, std::uint64_t index,
                     const Bytes& payload) {
  const ByteSpan span(payload.data(), payload.size());
  const ByteSpan key = read_view_key(span);
  const ByteSpan value = read_view_value(span);
  ReadViewEntry& entry =
      entries_[std::string(reinterpret_cast<const char*>(key.data()),
                           key.size())];
  entry.value.assign(value.data(), value.data() + value.size());
  entry.slot = slot;
  entry.index = index;
}

void ReadView::set_watermark(std::uint64_t exec_slots) {
  watermark_ = std::max(watermark_, exec_slots);
}

const ReadViewEntry* ReadView::lookup(ByteSpan key) const {
  const auto it = entries_.find(
      std::string(reinterpret_cast<const char*>(key.data()), key.size()));
  if (it == entries_.end()) return nullptr;
  return &it->second;
}

}  // namespace probft::smr
