// Single-worker bounded executor: moves SMR command execution and
// client-reply serialization off the network thread (probft_node
// --exec-offload) while trivially preserving execution order — one worker
// draining one FIFO is an ordered pipeline stage, not a thread pool.
//
// Backpressure instead of unbounded queueing: submit() refuses when the
// queue is full and the caller runs the job inline on its own thread.
// That keeps the decide path loss-free (a reply is never dropped, only
// occasionally serialized on the network thread again) and bounds memory
// under a flood of decides.
//
// WAL ordering note: the SmrReplica fsyncs the decide record BEFORE
// on_execute fires, so everything this executor runs is already durable;
// offloading cannot reorder execution against the WAL.
#pragma once

#include <cstddef>
#include <deque>
#include <functional>
#include <thread>

#include "common/annotations.hpp"
#include "common/mutex.hpp"

namespace probft::smr {

class AsyncExecutor {
 public:
  explicit AsyncExecutor(std::size_t max_queue = 4096);
  ~AsyncExecutor();  // drains the queue, then joins

  AsyncExecutor(const AsyncExecutor&) = delete;
  AsyncExecutor& operator=(const AsyncExecutor&) = delete;

  /// Enqueues `fn` for in-order execution on the worker. Returns false
  /// (without running or keeping fn) when the queue is full. Note that a
  /// caller must NOT react to `false` by running fn inline — that would
  /// reorder it ahead of the jobs still queued; use run_or_submit().
  [[nodiscard]] bool submit(std::function<void()> fn) PROBFT_EXCLUDES(mu_);

  /// The recommended entry point: submit, or — when the queue is full —
  /// block until there is room. Blocking (rather than running inline)
  /// preserves the strict FIFO order between this job and the queued ones.
  void run_or_submit(std::function<void()> fn) PROBFT_EXCLUDES(mu_);

  /// Blocks until every queued job has finished. Shutdown/linger barrier.
  void drain() PROBFT_EXCLUDES(mu_);

  [[nodiscard]] std::size_t queued() const PROBFT_EXCLUDES(mu_);

 private:
  void worker_loop() PROBFT_EXCLUDES(mu_);

  const std::size_t max_queue_;
  mutable Mutex mu_;
  CondVar cv_work_;   // worker: jobs or stop
  CondVar cv_space_;  // producers: queue has room
  CondVar cv_idle_;   // drain(): queue empty + worker idle
  std::deque<std::function<void()>> queue_ PROBFT_GUARDED_BY(mu_);
  bool running_job_ PROBFT_GUARDED_BY(mu_) = false;
  bool stop_ PROBFT_GUARDED_BY(mu_) = false;
  std::thread worker_;
};

}  // namespace probft::smr
