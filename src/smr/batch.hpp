// Command batches: the unit a log slot decides on.
//
// A slot no longer orders one opaque byte string — it orders a `Batch` of
// client requests, each tagged with the submitting client's id and a
// per-client sequence number. The (client, seq) pair is what makes retries
// idempotent: replicas keep a last-executed-seq table per client and skip
// any request whose seq is not beyond it, so a request that reaches the
// log twice (client retry, replica forwarding, view-change re-proposal)
// executes exactly once.
//
// The wire encoding rides the shared common/codec format; decode is strict
// (bounds-checked, trailing bytes rejected) so a Byzantine leader cannot
// smuggle an unparseable value past the per-slot validity predicate.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "common/codec.hpp"

namespace probft::smr {

/// One client command: (client id, client-local sequence number, payload).
struct Request {
  std::uint64_t client = 0;
  std::uint64_t seq = 0;
  Bytes payload;

  void encode(Writer& w) const;
  static Request decode(Reader& r);

  bool operator==(const Request& other) const = default;
};

/// The value a slot decides: zero or more requests, in execution order.
using Batch = std::vector<Request>;

/// Caps a batch must respect to be a valid proposal. `max_commands` bounds
/// the request count, `max_bytes` the encoded size — both are protocol
/// parameters (SmrOptions), shared by proposer and validity predicate.
struct BatchLimits {
  std::uint32_t max_commands = 64;
  std::size_t max_bytes = 256 * 1024;
};

[[nodiscard]] Bytes encode_batch(const Batch& batch);

/// Strict decode; throws CodecError on truncation, trailing bytes or a
/// request count above `limits.max_commands`.
[[nodiscard]] Batch decode_batch(ByteSpan data, const BatchLimits& limits);

/// The per-slot validity predicate: true iff `value` is a well-formed
/// batch within `limits` (the empty batch is valid — it is the pipelined
/// engine's no-op, proposed only when a slot was opened by peer demand).
[[nodiscard]] bool is_valid_batch(const Bytes& value,
                                  const BatchLimits& limits);

/// Hex SHA-256 over a slot log (length-prefixed concatenation of the
/// decided batch encodings) — the log-identity every harness compares
/// across replicas (scenario transcripts, probft_node's SMRLOG line,
/// the throughput bench). One definition so they can never drift.
[[nodiscard]] std::string log_digest(const std::vector<Bytes>& slot_log);

}  // namespace probft::smr
