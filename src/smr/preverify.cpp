#include "smr/preverify.hpp"

#include "common/codec.hpp"
#include "smr/smr_replica.hpp"

namespace probft::smr {

std::vector<core::VerifyTask> preverify_tasks(
    const core::PreverifyContext& ctx, std::uint8_t tag,
    const Bytes& payload) {
  if (tag != kSmrTag) return {};
  try {
    Reader r{ByteSpan(payload.data(), payload.size())};
    (void)r.u64();  // slot — content-keyed verdicts don't depend on it
    const std::uint8_t inner_tag = r.u8();
    const Bytes inner = r.raw(r.remaining());
    return core::preverify_tasks(ctx, inner_tag, inner);
  } catch (const CodecError&) {
    return {};  // malformed envelope: the replica drops it
  }
}

}  // namespace probft::smr
