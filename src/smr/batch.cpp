#include "smr/batch.hpp"

#include "crypto/sha256.hpp"

namespace probft::smr {

void Request::encode(Writer& w) const {
  w.u64(client);
  w.u64(seq);
  w.bytes(ByteSpan(payload.data(), payload.size()));
}

Request Request::decode(Reader& r) {
  Request req;
  req.client = r.u64();
  req.seq = r.u64();
  req.payload = r.bytes();
  return req;
}

Bytes encode_batch(const Batch& batch) {
  Writer w;
  w.vec(batch, [](Writer& ww, const Request& req) { req.encode(ww); });
  return std::move(w).take();
}

Batch decode_batch(ByteSpan data, const BatchLimits& limits) {
  if (data.size() > limits.max_bytes) {
    throw CodecError("batch: encoded size exceeds limit");
  }
  Reader r(data);
  auto batch = r.vec<Request>(
      [](Reader& rr) { return Request::decode(rr); }, limits.max_commands);
  r.expect_exhausted();
  return batch;
}

bool is_valid_batch(const Bytes& value, const BatchLimits& limits) {
  try {
    (void)decode_batch(ByteSpan(value.data(), value.size()), limits);
    return true;
  } catch (const CodecError&) {
    return false;
  }
}

std::string log_digest(const std::vector<Bytes>& slot_log) {
  Writer w;
  for (const Bytes& value : slot_log) {
    w.bytes(ByteSpan(value.data(), value.size()));
  }
  const Bytes blob = std::move(w).take();
  return to_hex(crypto::sha256(ByteSpan(blob.data(), blob.size())));
}

}  // namespace probft::smr
