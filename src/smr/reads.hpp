// Linearizable-read protocol messages: leader leases and quorum
// read-index attestations.
//
// Two protocols let a replica answer a linearizable read without pushing
// it through the ordered log:
//
//  - Leader lease (tag kSmrLease). The view-1 leader broadcasts a
//    LeaseRequest{epoch}; each follower replies with a signed
//    LeaseGrant{epoch, leader, granter} and, for the lease duration plus
//    a clock-skew bound, PROMISES not to help depose the leader (it
//    suppresses its own NewLeader/Wish traffic; with 2f+1 promises
//    outstanding no view-change quorum can form). Holding 2f+1 grants,
//    the leader serves linearizable reads locally — any write decided so
//    far was proposed by it, so its own next-open slot bounds the read
//    index. A decide arriving at view > 1 proves the lease's premise
//    wrong and poisons lease serving permanently (the regression test
//    pins this).
//
//  - Quorum read-index (tag kSmrReadIndex). Any replica broadcasts a
//    ReadIndexRequest{rid}; each peer answers with a signed
//    ReadIndexAttest carrying its exec-slot watermark. 2f+1 attestations
//    (self included) give a read index = max watermark: at least f+1
//    correct replicas executed up to their stated mark, so every write
//    linearized before the request is covered. The requester waits until
//    its own execution reaches the index, then answers from the local
//    ReadView.
//
// All codecs are strict (version byte, truncation/trailing/oversize
// checks throw CodecError) — these frames arrive from the network and
// must survive arbitrary bytes. Signatures are domain-separated from
// every other signing surface in the system.
#pragma once

#include <cstdint>

#include "common/bytes.hpp"
#include "common/codec.hpp"
#include "common/types.hpp"
#include "crypto/suite.hpp"
#include "net/tags.hpp"

namespace probft::smr {

/// Wire tags for the read fast path; values live in the central registry
/// (net/tags.hpp), these are local re-exports.
inline constexpr std::uint8_t kSmrLeaseTag = net::tags::kSmrLease;
inline constexpr std::uint8_t kSmrReadIndexTag = net::tags::kSmrReadIndex;

inline constexpr std::uint8_t kReadWireVersion = 1;

/// Message kinds inside the kSmrLease / kSmrReadIndex envelopes; the
/// second byte of every message (after the version byte).
inline constexpr std::uint8_t kLeaseRequestKind = 0;
inline constexpr std::uint8_t kLeaseGrantKind = 1;
inline constexpr std::uint8_t kReadIndexRequestKind = 2;
inline constexpr std::uint8_t kReadIndexAttestKind = 3;

/// Cap on signature bytes accepted off the wire (ed25519 uses 64).
inline constexpr std::size_t kMaxReadSigBytes = 256;

/// Kind byte of a versioned read-path message, without consuming it.
/// Throws CodecError on truncation or a version this build does not
/// speak, so dispatchers fail closed.
[[nodiscard]] std::uint8_t peek_read_msg_kind(ByteSpan data);

/// Domain-separated signing bytes for a lease grant: the granter attests
/// "I promise not to depose `leader` for lease epoch `epoch`".
[[nodiscard]] Bytes lease_signing_bytes(std::uint64_t epoch, ReplicaId leader,
                                        ReplicaId granter);

/// Domain-separated signing bytes for a read-index attestation, bound to
/// the requester and rid so an attestation cannot be replayed into a
/// different read.
[[nodiscard]] Bytes read_index_signing_bytes(ReplicaId requester,
                                             std::uint64_t rid,
                                             std::uint64_t watermark);

/// Leader → all: ask for (or renew) the lease with this epoch.
struct LeaseRequest {
  std::uint64_t epoch = 0;
  ReplicaId leader = 0;

  [[nodiscard]] Bytes encode() const;
  static LeaseRequest decode(ByteSpan data);

  bool operator==(const LeaseRequest& other) const = default;
};

/// Granter → leader: signed promise for one lease epoch.
struct LeaseGrant {
  std::uint64_t epoch = 0;
  ReplicaId leader = 0;
  ReplicaId granter = 0;
  Bytes signature;  // over lease_signing_bytes(epoch, leader, granter)

  [[nodiscard]] Bytes encode() const;
  static LeaseGrant decode(ByteSpan data);

  [[nodiscard]] bool verify(const crypto::CryptoSuite& suite,
                            const crypto::PublicKeyDir& keys,
                            std::uint32_t n) const;

  bool operator==(const LeaseGrant& other) const = default;
};

/// Requester → all: attest your exec-slot watermark for read `rid`.
struct ReadIndexRequest {
  std::uint64_t rid = 0;
  ReplicaId requester = 0;

  [[nodiscard]] Bytes encode() const;
  static ReadIndexRequest decode(ByteSpan data);

  bool operator==(const ReadIndexRequest& other) const = default;
};

/// Peer → requester: signed exec-slot watermark, bound to (requester,
/// rid) so it cannot be replayed into another read.
struct ReadIndexAttest {
  std::uint64_t rid = 0;
  ReplicaId requester = 0;
  std::uint64_t watermark = 0;  // exec-slot count at the signer
  ReplicaId signer = 0;
  Bytes signature;  // over read_index_signing_bytes(requester, rid, mark)

  [[nodiscard]] Bytes encode() const;
  static ReadIndexAttest decode(ByteSpan data);

  [[nodiscard]] bool verify(const crypto::CryptoSuite& suite,
                            const crypto::PublicKeyDir& keys,
                            std::uint32_t n) const;

  bool operator==(const ReadIndexAttest& other) const = default;
};

}  // namespace probft::smr
