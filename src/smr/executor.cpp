#include "smr/executor.hpp"

#include <utility>

namespace probft::smr {

AsyncExecutor::AsyncExecutor(std::size_t max_queue)
    : max_queue_(max_queue == 0 ? 1 : max_queue),
      worker_([this] { worker_loop(); }) {}

AsyncExecutor::~AsyncExecutor() {
  {
    MutexLock lock(mu_);
    stop_ = true;
  }
  cv_work_.notify_all();
  worker_.join();  // the loop finishes every queued job before exiting
}

bool AsyncExecutor::submit(std::function<void()> fn) {
  {
    MutexLock lock(mu_);
    if (stop_ || queue_.size() >= max_queue_) return false;
    queue_.push_back(std::move(fn));
  }
  cv_work_.notify_one();
  return true;
}

void AsyncExecutor::run_or_submit(std::function<void()> fn) {
  {
    MutexLock lock(mu_);
    while (!stop_ && queue_.size() >= max_queue_) cv_space_.wait(mu_);
    if (!stop_) {
      queue_.push_back(std::move(fn));
      fn = nullptr;
    }
  }
  if (fn) {
    fn();  // executor shut down: run on the caller (nothing else queued ahead
           // can exist — the worker drained everything before stopping)
    return;
  }
  cv_work_.notify_one();
}

void AsyncExecutor::drain() {
  MutexLock lock(mu_);
  while (!queue_.empty() || running_job_) cv_idle_.wait(mu_);
}

std::size_t AsyncExecutor::queued() const {
  MutexLock lock(mu_);
  return queue_.size();
}

void AsyncExecutor::worker_loop() {
  for (;;) {
    std::function<void()> job;
    {
      MutexLock lock(mu_);
      while (!stop_ && queue_.empty()) cv_work_.wait(mu_);
      if (queue_.empty()) return;  // stop_ and fully drained
      job = std::move(queue_.front());
      queue_.pop_front();
      running_job_ = true;
    }
    cv_space_.notify_one();
    job();
    {
      MutexLock lock(mu_);
      running_job_ = false;
    }
    cv_idle_.notify_all();
  }
}

}  // namespace probft::smr
