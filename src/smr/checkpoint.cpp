#include "smr/checkpoint.hpp"

#include <set>

#include "crypto/sha256.hpp"

namespace probft::smr {

namespace {

/// Domain separators keep checkpoint votes, hints and per-slot consensus
/// signatures mutually unforgeable from one another.
constexpr std::string_view kCkptDomain = "probft-ckpt-v1";
constexpr std::string_view kHintDomain = "probft-hint-v1";

/// Sanity cap on last_exec entries (a forged state cannot allocate
/// unboundedly); generous against any realistic client population here.
constexpr std::size_t kMaxDedupEntries = 1 << 20;

}  // namespace

Bytes zero_digest() { return Bytes(crypto::Sha256::kDigestSize, 0); }

Bytes chain_digest(const Bytes& prev, const Bytes& value) {
  Writer w;
  w.raw(ByteSpan(prev.data(), prev.size()));
  w.bytes(ByteSpan(value.data(), value.size()));
  const Bytes blob = std::move(w).take();
  return crypto::sha256(ByteSpan(blob.data(), blob.size()));
}

void CheckpointState::encode(Writer& w) const {
  w.u64(slot);
  w.u64(exec_count);
  w.bytes(ByteSpan(log_digest.data(), log_digest.size()));
  w.vec(last_exec,
        [](Writer& ww, const std::pair<std::uint64_t, std::uint64_t>& e) {
          ww.u64(e.first);
          ww.u64(e.second);
        });
}

CheckpointState CheckpointState::decode(Reader& r) {
  CheckpointState state;
  state.slot = r.u64();
  state.exec_count = r.u64();
  state.log_digest = r.bytes();
  if (state.log_digest.size() != crypto::Sha256::kDigestSize) {
    throw CodecError("checkpoint state: bad digest size");
  }
  state.last_exec =
      r.vec<std::pair<std::uint64_t, std::uint64_t>>(
          [](Reader& rr) {
            const std::uint64_t client = rr.u64();
            const std::uint64_t seq = rr.u64();
            return std::pair<std::uint64_t, std::uint64_t>{client, seq};
          },
          kMaxDedupEntries);
  for (std::size_t i = 1; i < state.last_exec.size(); ++i) {
    if (state.last_exec[i - 1].first >= state.last_exec[i].first) {
      throw CodecError("checkpoint state: dedup table not strictly sorted");
    }
  }
  return state;
}

Bytes CheckpointState::digest() const {
  Writer w;
  encode(w);
  const Bytes blob = std::move(w).take();
  return crypto::sha256(ByteSpan(blob.data(), blob.size()));
}

Bytes checkpoint_signing_bytes(std::uint64_t slot, const Bytes& state_digest) {
  Writer w;
  w.str(kCkptDomain);
  w.u64(slot);
  w.bytes(ByteSpan(state_digest.data(), state_digest.size()));
  return std::move(w).take();
}

Bytes hint_signing_bytes(std::uint64_t slot, const Bytes& value_digest) {
  Writer w;
  w.str(kHintDomain);
  w.u64(slot);
  w.bytes(ByteSpan(value_digest.data(), value_digest.size()));
  return std::move(w).take();
}

void CheckpointVote::encode(Writer& w) const {
  w.u64(slot);
  w.bytes(ByteSpan(state_digest.data(), state_digest.size()));
  w.u32(signer);
  w.bytes(ByteSpan(signature.data(), signature.size()));
}

CheckpointVote CheckpointVote::decode(Reader& r) {
  CheckpointVote vote;
  vote.slot = r.u64();
  vote.state_digest = r.bytes();
  vote.signer = r.u32();
  vote.signature = r.bytes();
  if (vote.state_digest.size() != crypto::Sha256::kDigestSize) {
    throw CodecError("checkpoint vote: bad digest size");
  }
  return vote;
}

void CheckpointCert::encode(Writer& w) const {
  w.u64(slot);
  w.bytes(ByteSpan(state_digest.data(), state_digest.size()));
  w.vec(signatures, [](Writer& ww, const std::pair<ReplicaId, Bytes>& s) {
    ww.u32(s.first);
    ww.bytes(ByteSpan(s.second.data(), s.second.size()));
  });
}

CheckpointCert CheckpointCert::decode(Reader& r) {
  CheckpointCert cert;
  cert.slot = r.u64();
  cert.state_digest = r.bytes();
  if (cert.state_digest.size() != crypto::Sha256::kDigestSize) {
    throw CodecError("checkpoint cert: bad digest size");
  }
  cert.signatures = r.vec<std::pair<ReplicaId, Bytes>>(
      [](Reader& rr) {
        const ReplicaId signer = rr.u32();
        Bytes sig = rr.bytes();
        return std::pair<ReplicaId, Bytes>{signer, std::move(sig)};
      },
      /*max_items=*/4096);
  return cert;
}

bool verify_checkpoint_cert(const CheckpointCert& cert, std::uint32_t n,
                            std::uint32_t f, const crypto::CryptoSuite& suite,
                            const crypto::PublicKeyDir& keys) {
  const std::size_t quorum = 2 * static_cast<std::size_t>(f) + 1;
  if (cert.signatures.size() < quorum) return false;
  const Bytes msg = checkpoint_signing_bytes(cert.slot, cert.state_digest);
  std::set<ReplicaId> seen;
  for (const auto& [signer, signature] : cert.signatures) {
    if (signer == 0 || signer > n) return false;
    if (!seen.insert(signer).second) return false;  // duplicate signer
    if (!suite.verify(ByteSpan(keys[signer].data(), keys[signer].size()),
                      ByteSpan(msg.data(), msg.size()),
                      ByteSpan(signature.data(), signature.size()))) {
      return false;
    }
  }
  return true;
}

}  // namespace probft::smr
