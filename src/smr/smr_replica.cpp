#include "smr/smr_replica.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/codec.hpp"
#include "crypto/sha256.hpp"

namespace probft::smr {

namespace {

/// Encoded size one request adds to a batch (client + seq + length prefix
/// + payload); the batch itself starts at 4 bytes (count prefix).
[[nodiscard]] std::size_t request_wire_size(const Request& req) {
  return 8 + 8 + 4 + req.payload.size();
}

/// Distinct hinted values tracked per slot before further ones are
/// ignored (a Byzantine peer cannot grow the table unboundedly).
constexpr std::size_t kMaxHintValues = 8;

/// Per-slot cap on buffered messages for not-yet-opened slots.
constexpr std::size_t kMaxBufferedPerSlot = 4096;

/// Boundary slots tracked for checkpoint votes / pending snapshots at
/// once; older ones are evicted in favor of newer (a straggler's ancient
/// boundary will be covered by a peer's state transfer anyway).
constexpr std::size_t kMaxTrackedCkpts = 8;

/// Distinct state digests tracked per boundary (Byzantine votes cannot
/// grow the tally unboundedly).
constexpr std::size_t kMaxCkptDigests = 4;

/// Cap on view-change frames deferred while lease promises are live (the
/// synchronizer wishes at most once per view per slot, so this is far
/// above any honest volume).
constexpr std::size_t kMaxDeferredVc = 4096;

[[nodiscard]] ByteSpan span(const Bytes& b) {
  return ByteSpan(b.data(), b.size());
}

}  // namespace

SmrReplica::SmrReplica(SmrConfig config, core::ProtocolHost host)
    : cfg_(std::move(config)), host_(std::move(host)) {
  if (cfg_.id == 0 || cfg_.id > cfg_.n || cfg_.suite == nullptr ||
      cfg_.public_keys.size() != cfg_.n + 1 ||
      cfg_.pipeline.max_slots == 0 || cfg_.pipeline.window == 0 ||
      cfg_.pipeline.batch_max_commands == 0 ||
      cfg_.pipeline.batch_max_bytes < 64) {
    throw std::invalid_argument("SmrReplica: bad configuration");
  }
  limits_.max_commands = cfg_.pipeline.batch_max_commands;
  limits_.max_bytes = cfg_.pipeline.batch_max_bytes;
  chain_ = zero_digest();
  if (cfg_.wal != nullptr) recover_from_wal();
}

void SmrReplica::start() {
  started_ = true;
  if (recovered_slots_ > 0) {
    // Rejoin announcement: ask the cluster what happened past the
    // recovered prefix (peers answer with signed hints / a certified
    // checkpoint if they moved further than our WAL knew).
    Writer w;
    w.u64(exec_slots());
    host_.broadcast(kSmrPullTag, std::move(w).take());
  }
  maybe_open_slots(/*pace_expired=*/false);
  request_lease();
}

void SmrReplica::submit(Bytes command) {
  if (command.empty()) {
    throw std::invalid_argument("submit: command must be non-empty");
  }
  Request req{cfg_.id, local_seq_ + 1, std::move(command)};
  if (4 + request_wire_size(req) > limits_.max_bytes) {
    throw std::invalid_argument("submit: command exceeds the batch byte cap");
  }
  ++local_seq_;
  const ReplicaId leader = leader_of(1 + cfg_.leader_offset, cfg_.n);
  Bytes forward;
  if (cfg_.forward_submissions && leader != cfg_.id) {
    Writer w;
    req.encode(w);
    forward = std::move(w).take();
  }
  if (!enqueue(std::move(req))) {
    // Local seqs are unique, so the only rejection is the intake cap.
    throw std::overflow_error("submit: request queue is full");
  }
  if (!forward.empty()) host_.send(leader, kSmrForwardTag, forward);
}

bool SmrReplica::submit_request(std::uint64_t client, std::uint64_t seq,
                                Bytes payload) {
  Request req{client, seq, std::move(payload)};
  const ReplicaId leader = leader_of(1 + cfg_.leader_offset, cfg_.n);
  Bytes forward;
  if (cfg_.forward_submissions && leader != cfg_.id) {
    Writer w;
    req.encode(w);
    forward = std::move(w).take();
  }
  if (!enqueue(std::move(req))) return false;
  if (!forward.empty()) host_.send(leader, kSmrForwardTag, forward);
  return true;
}

bool SmrReplica::enqueue(Request request) {
  if (request.payload.empty() ||
      4 + request_wire_size(request) > limits_.max_bytes) {
    return false;
  }
  if (queue_.size() >= cfg_.pipeline.max_pending_requests) {
    return false;  // backpressure: a forward flood must not grow memory
  }
  const auto last = last_exec_.find(request.client);
  if (last != last_exec_.end() && request.seq <= last->second) {
    return false;  // already executed (or superseded): retry is a no-op
  }
  if (!pending_keys_.insert({request.client, request.seq}).second) {
    return false;  // already queued or assigned to an in-flight slot
  }
  queue_bytes_ += request_wire_size(request);
  queue_.push_back(std::move(request));
  maybe_open_slots(/*pace_expired=*/false);
  return true;
}

bool SmrReplica::has_committed(const Bytes& payload) const {
  return std::find(exec_payloads_.begin(), exec_payloads_.end(), payload) !=
         exec_payloads_.end();
}

std::uint64_t SmrReplica::last_executed_seq(std::uint64_t client) const {
  const auto it = last_exec_.find(client);
  return it == last_exec_.end() ? 0 : it->second;
}

std::uint64_t SmrReplica::open_limit() const {
  return std::min<std::uint64_t>(cfg_.pipeline.max_slots,
                                 exec_slots() + cfg_.pipeline.window);
}

std::uint64_t SmrReplica::horizon() const {
  return std::min<std::uint64_t>(
      cfg_.pipeline.max_slots,
      exec_slots() + 2 * static_cast<std::uint64_t>(cfg_.pipeline.window));
}

bool SmrReplica::full_batch_ready() const {
  return queue_.size() >= limits_.max_commands ||
         4 + queue_bytes_ >= limits_.max_bytes;
}

void SmrReplica::maybe_open_slots(bool pace_expired) {
  if (!started_) return;
  if (next_open_ < exec_slots()) next_open_ = exec_slots();
  while (next_open_ < open_limit()) {
    if (decided_out_of_order_.count(next_open_) != 0) {
      ++next_open_;  // outcome already known (hints): no instance needed
      continue;
    }
    if (queue_.empty()) break;
    if (!full_batch_ready() && !pace_expired) break;
    pace_expired = false;  // one partial batch per pacing expiry
    open_next_slot();
  }
  if (!queue_.empty() && next_open_ < open_limit() && !pace_armed_) {
    arm_pacing();
  }
  if (exec_slots() < next_open_) arm_catchup();
}

void SmrReplica::open_slots_through(std::uint64_t slot) {
  if (!started_) return;
  if (next_open_ < exec_slots()) next_open_ = exec_slots();
  while (next_open_ <= slot && next_open_ < open_limit()) {
    if (decided_out_of_order_.count(next_open_) != 0) {
      ++next_open_;
      continue;
    }
    open_next_slot();
  }
  if (exec_slots() < next_open_) arm_catchup();
}

void SmrReplica::arm_pacing() {
  pace_armed_ = true;
  host_.set_timer(cfg_.pipeline.batch_timeout, [this] {
    collect_retired();
    pace_armed_ = false;
    maybe_open_slots(/*pace_expired=*/true);
  });
}

void SmrReplica::arm_catchup() {
  // Behind = execution trails either a locally opened slot or any slot a
  // peer has been seen working on (the gap may exceed the window — a
  // straggler that missed a whole stretch must still pull itself back).
  if (catchup_armed_ ||
      (exec_slots() >= next_open_ && exec_slots() >= max_seen_slot_)) {
    return;
  }
  catchup_armed_ = true;
  const std::uint64_t mark = exec_slots();
  host_.set_timer(cfg_.pipeline.catchup_timeout, [this, mark] {
    collect_retired();
    catchup_armed_ = false;
    if (exec_slots() >= next_open_ && exec_slots() >= max_seen_slot_) return;
    if (exec_slots() == mark) {
      // Execution is stuck on the same slot a full period later: ask
      // peers that already executed it for the decided value.
      Writer w;
      w.u64(exec_slots());
      host_.broadcast(kSmrPullTag, std::move(w).take());
    }
    arm_catchup();  // keep watching while behind
  });
}

void SmrReplica::open_next_slot() {
  const std::uint64_t slot = next_open_++;

  // Draw the slot's batch from the queue head; one request always fits
  // (enqueue rejects requests beyond the byte cap).
  Batch batch;
  std::size_t bytes = 4;
  while (!queue_.empty() && batch.size() < limits_.max_commands) {
    const std::size_t add = request_wire_size(queue_.front());
    if (!batch.empty() && bytes + add > limits_.max_bytes) break;
    bytes += add;
    queue_bytes_ -= add;
    batch.push_back(std::move(queue_.front()));
    queue_.pop_front();
  }

  core::ReplicaConfig rc;
  rc.id = cfg_.id;
  rc.n = cfg_.n;
  rc.f = cfg_.f;
  rc.o = cfg_.o;
  rc.l = cfg_.l;
  rc.leader_offset = cfg_.leader_offset;
  rc.my_value = encode_batch(batch);
  rc.valid = [limits = limits_](const Bytes& value) {
    return is_valid_batch(value, limits);
  };
  // A decided instance freezes its synchronizer; stragglers catch up via
  // decided-value hints, not via decided replicas' view changes.
  rc.stop_sync_on_decide = true;
  rc.fast_verify = cfg_.fast_verify;
  rc.suite = cfg_.suite;
  rc.secret_key = cfg_.secret_key;
  rc.public_keys = cfg_.public_keys;
  rc.verdicts = cfg_.verdicts;  // shared across slots (and the verify pool)

  assigned_count_ += batch.size();
  assigned_.emplace(slot, std::move(batch));

  // The per-slot instance talks to a derived host that prefixes wire
  // traffic with the slot number and funnels decisions into the log.
  core::ProtocolHost slot_host;
  slot_host.send = [this, slot](ReplicaId to, std::uint8_t tag,
                                const Bytes& m) {
    Writer w;
    w.u64(slot);
    w.u8(tag);
    w.raw(m);
    Bytes frame = std::move(w).take();
    // Lease promise: while this replica has promised not to depose the
    // lease holder, its own view-change traffic is deferred (NOT dropped
    // — the synchronizer wishes once, so a drop would wedge liveness).
    if (promise_live_ > 0 && (tag == net::tags::kNewLeader ||
                              tag == net::tags::kWish)) {
      if (deferred_vc_.size() < kMaxDeferredVc) {
        deferred_vc_.push_back(DeferredFrame{to, std::move(frame)});
      }
      return;
    }
    host_.send(to, kSmrTag, std::move(frame));
  };
  slot_host.broadcast = [this, slot](std::uint8_t tag, const Bytes& m) {
    Writer w;
    w.u64(slot);
    w.u8(tag);
    w.raw(m);
    Bytes frame = std::move(w).take();
    if (promise_live_ > 0 && (tag == net::tags::kNewLeader ||
                              tag == net::tags::kWish)) {
      if (deferred_vc_.size() < kMaxDeferredVc) {
        deferred_vc_.push_back(DeferredFrame{0, std::move(frame)});
      }
      return;
    }
    host_.broadcast(kSmrTag, std::move(frame));
  };
  // Retired instances are destroyed while their timers may still be in
  // flight; the wrapper drops a firing whose slot is gone.
  slot_host.set_timer = [this, slot](Duration delay,
                                     std::function<void()> fn) {
    host_.set_timer(delay, [this, slot, fn = std::move(fn)] {
      collect_retired();  // top-level event: no instance frame is live
      if (instances_.count(slot) != 0) fn();
    });
  };
  slot_host.on_decide = [this, slot](View view, const Bytes& value) {
    on_slot_decided(slot, value, view);
  };

  instances_.emplace(slot, std::make_unique<core::Replica>(
                               std::move(rc), cfg_.sync, slot_host));
  instances_.at(slot)->start();

  // Replay traffic that raced ahead of this slot.
  const auto it = buffered_.find(slot);
  if (it != buffered_.end()) {
    const auto pending = std::move(it->second);
    buffered_.erase(it);
    for (const auto& msg : pending) {
      const auto inst = instances_.find(slot);
      if (inst == instances_.end()) break;  // decided & executed mid-replay
      inst->second->on_message(msg.from, msg.tag, msg.payload);
    }
  }
}

void SmrReplica::on_slot_decided(std::uint64_t slot, const Bytes& value,
                                 View view) {
  // Lease poisoning: a decide at view > 1 proves a view change happened,
  // so the view-1 leader's "every decided write went through me" premise
  // is dead — it must stop serving lease reads AND every replica that saw
  // the decide must stop granting it fresh leases. A decide of unknown
  // view (hint adoption, view = 0) poisons only the leader itself: a
  // leader with a healthy lease never needs catch-up hints, and granters
  // routinely do.
  if (cfg_.pipeline.serve_reads &&
      (view > 1 || (view == 0 && is_lease_leader()))) {
    lease_poisoned_ = true;
  }
  if (slot < exec_slots()) return;  // already executed
  decided_out_of_order_.emplace(slot, value);
  execute_ready_slots();
}

Bytes SmrReplica::encode_decide_record(std::uint64_t slot,
                                       const Bytes& value) {
  Writer w;
  w.u64(slot);
  w.bytes(span(value));
  return std::move(w).take();
}

void SmrReplica::execute_ready_slots() {
  bool advanced = false;
  while (true) {
    const auto it = decided_out_of_order_.find(exec_slots());
    if (it == decided_out_of_order_.end()) break;
    const std::uint64_t slot = it->first;
    Bytes value = std::move(it->second);
    decided_out_of_order_.erase(it);

    // Durability point: the decide reaches the WAL (and disk, when fsync
    // is on) before any client-visible execution effect, so a crash after
    // a reply can always replay the slot. Recovery replays records that
    // are already on disk — no re-append.
    if (cfg_.wal != nullptr && !recovering_) {
      cfg_.wal->append(encode_decide_record(slot, value));
      cfg_.wal->sync();
    }

    Batch batch;
    try {
      batch = decode_batch(span(value), limits_);
    } catch (const CodecError&) {
      batch.clear();  // unreachable behind the validity predicate
    }
    for (Request& req : batch) {
      auto& last = last_exec_[req.client];
      if (req.seq <= last) continue;  // replayed request: execute once
      last = req.seq;
      ExecutedCommand exec;
      exec.slot = slot;
      exec.index = exec_count_;
      exec.client = req.client;
      exec.seq = req.seq;
      exec.payload = req.payload;
      ++exec_count_;
      exec_payloads_.push_back(std::move(req.payload));
      read_view_.apply(exec.slot, exec.index, exec.payload);
      if (!recovering_) {
        if (host_.on_commit) host_.on_commit(exec.index, exec.payload);
        if (cfg_.on_execute) cfg_.on_execute(exec);
      }
    }

    // This replica's own assignment for the slot: whatever the decided
    // batch did not cover goes back to the queue head for reproposal.
    const auto ait = assigned_.find(slot);
    if (ait != assigned_.end()) {
      Batch mine = std::move(ait->second);
      assigned_count_ -= mine.size();
      assigned_.erase(ait);
      for (auto rit = mine.rbegin(); rit != mine.rend(); ++rit) {
        const auto lit = last_exec_.find(rit->client);
        if (lit != last_exec_.end() && rit->seq <= lit->second) {
          pending_keys_.erase({rit->client, rit->seq});
          continue;
        }
        queue_bytes_ += request_wire_size(*rit);
        queue_.push_front(std::move(*rit));
      }
    }
    // Scrub queued requests another replica's batch just executed.
    for (auto qit = queue_.begin(); qit != queue_.end();) {
      const auto lit = last_exec_.find(qit->client);
      if (lit != last_exec_.end() && qit->seq <= lit->second) {
        pending_keys_.erase({qit->client, qit->seq});
        queue_bytes_ -= request_wire_size(*qit);
        qit = queue_.erase(qit);
      } else {
        ++qit;
      }
    }

    log_.push_back(std::move(value));
    chain_ = chain_digest(chain_, log_.back());
    read_view_.set_watermark(exec_slots());
    advanced = true;
    maybe_checkpoint();
  }
  if (advanced) {
    drain_parked_reads();
    retire_executed_slots();
    maybe_open_slots(/*pace_expired=*/false);
  }
}

void SmrReplica::retire_executed_slots() {
  const std::uint64_t exec = exec_slots();
  const std::uint64_t keep_from =
      exec > cfg_.pipeline.retire_tail ? exec - cfg_.pipeline.retire_tail : 0;
  const auto end = instances_.lower_bound(keep_from);
  for (auto it = instances_.begin(); it != end; ++it) {
    retired_.push_back(std::move(it->second));
  }
  instances_.erase(instances_.begin(), end);
  buffered_.erase(buffered_.begin(), buffered_.lower_bound(exec));
  hints_.erase(hints_.begin(), hints_.lower_bound(exec));
}

void SmrReplica::collect_retired() { retired_.clear(); }

// ---- checkpoints ----

CheckpointState SmrReplica::snapshot_state() const {
  CheckpointState state;
  state.slot = exec_slots();
  state.exec_count = exec_count_;
  state.log_digest = chain_;
  state.last_exec.assign(last_exec_.begin(), last_exec_.end());
  return state;
}

void SmrReplica::maybe_checkpoint() {
  const std::uint64_t interval = cfg_.pipeline.checkpoint_interval;
  const std::uint64_t slot = exec_slots();
  if (interval == 0 || slot % interval != 0) return;
  if (slot <= stable_slot_ || pending_states_.count(slot) != 0) return;
  CheckpointState state = snapshot_state();
  Bytes digest = state.digest();
  const Bytes msg = checkpoint_signing_bytes(slot, digest);
  Bytes sig = cfg_.suite->sign(span(cfg_.secret_key), span(msg));
  record_ckpt_vote(slot, digest, cfg_.id, sig);
  if (pending_states_.size() >= kMaxTrackedCkpts) {
    pending_states_.erase(pending_states_.begin());
  }
  pending_states_.emplace(slot, std::make_pair(std::move(state), digest));
  if (recovering_) return;  // replay: the cluster voted long ago
  CheckpointVote vote{slot, digest, cfg_.id, std::move(sig)};
  Writer w;
  vote.encode(w);
  host_.broadcast(kSmrCkptTag, std::move(w).take());
  try_stabilize(slot);
}

void SmrReplica::record_ckpt_vote(std::uint64_t slot, const Bytes& digest,
                                  ReplicaId signer, Bytes signature) {
  auto it = ckpt_votes_.find(slot);
  if (it == ckpt_votes_.end()) {
    if (ckpt_votes_.size() >= kMaxTrackedCkpts) {
      const auto lowest = ckpt_votes_.begin();
      if (lowest->first >= slot) return;  // older than everything tracked
      ckpt_votes_.erase(lowest);
    }
    it = ckpt_votes_.emplace(slot, std::vector<CkptTally>{}).first;
  }
  auto& tallies = it->second;
  auto tit = std::find_if(
      tallies.begin(), tallies.end(),
      [&digest](const CkptTally& t) { return t.digest == digest; });
  if (tit == tallies.end()) {
    if (tallies.size() >= kMaxCkptDigests) return;
    tallies.push_back(CkptTally{digest, {}});
    tit = std::prev(tallies.end());
  }
  tit->sigs.emplace(signer, std::move(signature));
}

void SmrReplica::try_stabilize(std::uint64_t slot) {
  const auto pit = pending_states_.find(slot);
  if (pit == pending_states_.end()) return;
  const auto vit = ckpt_votes_.find(slot);
  if (vit == ckpt_votes_.end()) return;
  const std::size_t quorum = 2 * static_cast<std::size_t>(cfg_.f) + 1;
  for (const CkptTally& tally : vit->second) {
    if (tally.digest != pit->second.second || tally.sigs.size() < quorum) {
      continue;
    }
    CheckpointCert cert;
    cert.slot = slot;
    cert.state_digest = tally.digest;
    cert.signatures.assign(tally.sigs.begin(), tally.sigs.end());
    stabilize(pit->second.first, std::move(cert));
    return;
  }
}

void SmrReplica::stabilize(CheckpointState state, CheckpointCert cert) {
  const std::uint64_t slot = state.slot;
  if (slot <= stable_slot_ && stable_.has_value()) return;
  // Persist before truncating memory: the WAL's new segment carries the
  // retained tail, the snapshot record carries state + cert.
  if (cfg_.wal != nullptr && !recovering_) {
    Writer w;
    state.encode(w);
    cert.encode(w);
    std::vector<Bytes> tail;
    tail.reserve(log_.size() - (slot - log_base_));
    for (std::size_t i = slot - log_base_; i < log_.size(); ++i) {
      tail.push_back(encode_decide_record(log_base_ + i, log_[i]));
    }
    cfg_.wal->checkpoint(slot, std::move(w).take(), tail);
  }
  log_.erase(log_.begin(),
             log_.begin() + static_cast<std::ptrdiff_t>(slot - log_base_));
  log_base_ = slot;
  hint_wire_.erase(hint_wire_.begin(), hint_wire_.lower_bound(slot));
  stable_slot_ = slot;
  stable_ = std::make_pair(std::move(state), std::move(cert));
  pending_states_.erase(pending_states_.begin(),
                        pending_states_.upper_bound(slot));
  ckpt_votes_.erase(ckpt_votes_.begin(), ckpt_votes_.upper_bound(slot));
}

void SmrReplica::install_checkpoint(CheckpointState state,
                                    CheckpointCert cert) {
  const std::uint64_t slot = state.slot;  // > exec_slots(), caller-checked

  // Our own in-flight assignments for skipped slots: requests the
  // checkpoint's dedup table does not cover go back to the queue head.
  std::map<std::uint64_t, std::uint64_t> last_new(state.last_exec.begin(),
                                                  state.last_exec.end());
  for (auto ait = assigned_.begin();
       ait != assigned_.end() && ait->first < slot;) {
    Batch mine = std::move(ait->second);
    assigned_count_ -= mine.size();
    ait = assigned_.erase(ait);
    for (auto rit = mine.rbegin(); rit != mine.rend(); ++rit) {
      const auto lit = last_new.find(rit->client);
      if (lit != last_new.end() && rit->seq <= lit->second) {
        pending_keys_.erase({rit->client, rit->seq});
        continue;
      }
      queue_bytes_ += request_wire_size(*rit);
      queue_.push_front(std::move(*rit));
    }
  }
  last_exec_ = std::move(last_new);
  for (auto qit = queue_.begin(); qit != queue_.end();) {
    const auto lit = last_exec_.find(qit->client);
    if (lit != last_exec_.end() && qit->seq <= lit->second) {
      pending_keys_.erase({qit->client, qit->seq});
      queue_bytes_ -= request_wire_size(*qit);
      qit = queue_.erase(qit);
    } else {
      ++qit;
    }
  }

  // Jump the log: everything below `slot` is summarized by the cert.
  // exec_payloads_ keeps only locally-executed payloads (documented gap).
  // The ReadView misses every write in the skipped stretch, so reads are
  // permanently rejected here (the checkpoint carries the dedup table,
  // not the KV image); and slots we never drove may have decided at
  // view > 1, so lease serving/granting is poisoned too.
  read_view_gap_ = true;
  if (cfg_.pipeline.serve_reads) lease_poisoned_ = true;
  read_view_.set_watermark(slot);
  exec_count_ = state.exec_count;
  chain_ = state.log_digest;
  log_.clear();
  log_base_ = slot;
  hint_wire_.erase(hint_wire_.begin(), hint_wire_.lower_bound(slot));
  next_open_ = std::max(next_open_, slot);
  max_seen_slot_ = std::max(max_seen_slot_, slot);

  for (auto iit = instances_.begin();
       iit != instances_.end() && iit->first < slot;) {
    retired_.push_back(std::move(iit->second));
    iit = instances_.erase(iit);
  }
  decided_out_of_order_.erase(decided_out_of_order_.begin(),
                              decided_out_of_order_.lower_bound(slot));
  buffered_.erase(buffered_.begin(), buffered_.lower_bound(slot));
  hints_.erase(hints_.begin(), hints_.lower_bound(slot));
  pending_states_.erase(pending_states_.begin(),
                        pending_states_.upper_bound(slot));
  ckpt_votes_.erase(ckpt_votes_.begin(), ckpt_votes_.upper_bound(slot));

  stable_slot_ = slot;
  stable_ = std::make_pair(std::move(state), std::move(cert));
  if (cfg_.wal != nullptr && !recovering_) {
    Writer w;
    stable_->first.encode(w);
    stable_->second.encode(w);
    cfg_.wal->checkpoint(slot, std::move(w).take(), {});
  }

  execute_ready_slots();  // buffered decisions above the base may be ready
  maybe_open_slots(/*pace_expired=*/false);
}

void SmrReplica::recover_from_wal() {
  recovering_ = true;
  const auto& snap = cfg_.wal->snapshot();
  if (snap.has_value()) {
    Reader r(span(*snap));
    CheckpointState state = CheckpointState::decode(r);
    CheckpointCert cert = CheckpointCert::decode(r);
    r.expect_exhausted();
    if (cert.slot != state.slot || cert.state_digest != state.digest() ||
        !verify_checkpoint_cert(cert, cfg_.n, cfg_.f, *cfg_.suite,
                                cfg_.public_keys)) {
      throw std::runtime_error("SmrReplica: WAL checkpoint fails its cert");
    }
    log_base_ = state.slot;
    chain_ = state.log_digest;
    exec_count_ = state.exec_count;
    last_exec_ =
        std::map<std::uint64_t, std::uint64_t>(state.last_exec.begin(),
                                               state.last_exec.end());
    next_open_ = state.slot;
    max_seen_slot_ = state.slot;
    stable_slot_ = state.slot;
    stable_ = std::make_pair(std::move(state), std::move(cert));
  }
  for (const Bytes& record : cfg_.wal->records()) {
    Reader r(span(record));
    const std::uint64_t slot = r.u64();
    Bytes value = r.bytes();
    r.expect_exhausted();
    if (slot != exec_slots()) continue;  // stale segment noise: skip
    if (!is_valid_batch(value, limits_)) {
      throw std::runtime_error("SmrReplica: corrupt decide record in WAL");
    }
    decided_out_of_order_.emplace(slot, std::move(value));
    execute_ready_slots();
  }
  recovered_slots_ = exec_slots();
  if (next_open_ < exec_slots()) next_open_ = exec_slots();
  if (snap.has_value()) {
    // The snapshot summarizes slots whose payloads are gone — the
    // ReadView cannot be rebuilt, so reads are rejected here for good.
    read_view_gap_ = true;
    read_view_.set_watermark(exec_slots());
  }
  if (recovered_slots_ > 0 && cfg_.pipeline.serve_reads) {
    // Replayed decides carry no view information: conservatively assume
    // one of them went through a view change and keep this replica out
    // of the lease protocol (serving and granting) after a restart.
    lease_poisoned_ = true;
  }
  recovering_ = false;
}

// ---- catch-up ----

void SmrReplica::send_hint(ReplicaId to, std::uint64_t slot) {
  // handle_pull answers a window's worth of slots per straggler, and
  // several stragglers typically ask for the same stretch — encode and
  // sign the hint once per slot and reuse the wire bytes (the signature
  // is deterministic, so the frame is bit-identical either way).
  auto it = hint_wire_.find(slot);
  if (it == hint_wire_.end()) {
    const Bytes& value = log_[slot - log_base_];
    const Bytes value_digest = crypto::sha256(span(value));
    const Bytes msg = hint_signing_bytes(slot, value_digest);
    Bytes sig = cfg_.suite->sign(span(cfg_.secret_key), span(msg));
    Writer w;
    w.u64(slot);
    w.bytes(span(value));
    w.bytes(span(sig));
    it = hint_wire_.emplace(slot, std::move(w).take()).first;
  }
  host_.send(to, kSmrHintTag, it->second);
}

void SmrReplica::send_state(ReplicaId to) {
  if (!stable_.has_value()) return;
  Writer w;
  stable_->first.encode(w);
  stable_->second.encode(w);
  host_.send(to, kSmrStateTag, std::move(w).take());
}

void SmrReplica::handle_slot_envelope(ReplicaId from, const Bytes& payload) {
  Reader r(span(payload));
  const std::uint64_t slot = r.u64();
  const std::uint8_t inner_tag = r.u8();
  Bytes inner = r.raw(r.remaining());
  if (slot >= cfg_.pipeline.max_slots) return;  // out of configured range
  max_seen_slot_ = std::max(max_seen_slot_, slot + 1);

  if (slot < log_base_) {
    // Truncated here: the sender is behind our stable checkpoint — the
    // certified summary is the only answer we still have.
    send_state(from);
    return;
  }
  if (slot < exec_slots()) {
    // Executed here: the sender is behind — answer with the outcome
    // instead of replaying a retired instance.
    send_hint(from, slot);
    return;
  }

  auto it = instances_.find(slot);
  if (it == instances_.end() && slot >= next_open_ && slot < open_limit()) {
    open_slots_through(slot);
    it = instances_.find(slot);
  }
  if (it != instances_.end()) {
    it->second->on_message(from, inner_tag, inner);
    return;
  }
  // Beyond the open window (or already hint-decided): buffer within the
  // horizon, bounded per slot to resist flooding. Either way the sender
  // is ahead of us — make sure the catch-up pull is running.
  arm_catchup();
  if (slot >= horizon()) return;
  auto& bucket = buffered_[slot];
  if (bucket.size() < kMaxBufferedPerSlot) {
    bucket.push_back(Buffered{from, inner_tag, std::move(inner)});
  }
}

void SmrReplica::handle_forward(ReplicaId from, const Bytes& payload) {
  (void)from;  // any replica may forward; dedup makes replays harmless
  Reader r(span(payload));
  Request req = Request::decode(r);
  r.expect_exhausted();
  (void)enqueue(std::move(req));
}

void SmrReplica::handle_hint(ReplicaId from, const Bytes& payload) {
  Reader r(span(payload));
  const std::uint64_t slot = r.u64();
  Bytes value = r.bytes();
  Bytes signature = r.bytes();
  r.expect_exhausted();
  if (slot >= cfg_.pipeline.max_slots) return;
  max_seen_slot_ = std::max(max_seen_slot_, slot + 1);
  if (slot < exec_slots() || slot >= horizon()) return;
  if (!is_valid_batch(value, limits_)) return;
  // A voucher only counts if the hint verifies under the claimed sender's
  // key: a peer that forges f+1 sender ids still commands one keypair, so
  // it can never assemble f+1 valid vouchers for an undecided value.
  const Bytes value_digest = crypto::sha256(span(value));
  const Bytes msg = hint_signing_bytes(slot, value_digest);
  if (!cfg_.suite->verify(span(cfg_.public_keys[from]), span(msg),
                          span(signature))) {
    return;
  }
  auto& slot_hints = hints_[slot];
  auto vit = std::find_if(
      slot_hints.begin(), slot_hints.end(),
      [&value](const HintEntry& entry) { return entry.value == value; });
  if (vit == slot_hints.end()) {
    if (slot_hints.size() >= kMaxHintValues) return;
    slot_hints.push_back(HintEntry{std::move(value), {}});
    vit = std::prev(slot_hints.end());
  }
  vit->vouchers.insert(from);
  // f + 1 distinct verified vouchers contain at least one correct replica
  // that executed the slot with this value.
  if (vit->vouchers.size() >= static_cast<std::size_t>(cfg_.f) + 1) {
    const Bytes decided = vit->value;
    on_slot_decided(slot, decided, /*view=*/0);
  }
}

void SmrReplica::handle_pull(ReplicaId from, const Bytes& payload) {
  Reader r(span(payload));
  const std::uint64_t slot = r.u64();
  r.expect_exhausted();
  if (slot < log_base_) {
    // The asked slot is below our truncation point: only the certified
    // checkpoint can cover it. Signed hints cover the retained stretch
    // above, so one answer advances the straggler past our base.
    send_state(from);
  }
  // Answer a window's worth of executed slots starting at the asked one,
  // so a straggler recovers window-per-round instead of slot-per-round.
  const std::uint64_t begin = std::max(slot, log_base_);
  const std::uint64_t upto = std::min<std::uint64_t>(
      exec_slots(), begin + cfg_.pipeline.window);
  for (std::uint64_t s = begin; s < upto; ++s) send_hint(from, s);
}

void SmrReplica::handle_ckpt_vote(ReplicaId from, const Bytes& payload) {
  Reader r(span(payload));
  CheckpointVote vote = CheckpointVote::decode(r);
  r.expect_exhausted();
  const std::uint64_t interval = cfg_.pipeline.checkpoint_interval;
  if (vote.signer != from) return;  // channel and signature must agree
  if (interval == 0 || vote.slot % interval != 0) return;
  if (vote.slot <= stable_slot_ || vote.slot > cfg_.pipeline.max_slots) {
    return;
  }
  const Bytes msg = checkpoint_signing_bytes(vote.slot, vote.state_digest);
  if (!cfg_.suite->verify(span(cfg_.public_keys[vote.signer]), span(msg),
                          span(vote.signature))) {
    return;
  }
  // A boundary vote also tells a straggler the cluster reached that slot.
  max_seen_slot_ = std::max(max_seen_slot_, vote.slot);
  record_ckpt_vote(vote.slot, vote.state_digest, vote.signer,
                   std::move(vote.signature));
  try_stabilize(vote.slot);
  arm_catchup();
}

void SmrReplica::handle_state(ReplicaId from, const Bytes& payload) {
  (void)from;  // trust comes from the cert, not the channel
  Reader r(span(payload));
  CheckpointState state = CheckpointState::decode(r);
  CheckpointCert cert = CheckpointCert::decode(r);
  r.expect_exhausted();
  if (state.slot <= exec_slots()) return;  // not ahead of us
  if (state.slot > cfg_.pipeline.max_slots) return;
  if (cert.slot != state.slot || cert.state_digest != state.digest()) return;
  if (!verify_checkpoint_cert(cert, cfg_.n, cfg_.f, *cfg_.suite,
                              cfg_.public_keys)) {
    return;
  }
  install_checkpoint(std::move(state), std::move(cert));
}

// ---- read fast path ----

void SmrReplica::answer_read(const Bytes& key, const ReadCallback& cb) {
  ReadResult result;
  result.status = net::ReplyStatus::kExecuted;
  result.index = read_view_.watermark();
  if (const ReadViewEntry* entry = read_view_.lookup(span(key))) {
    result.slot = entry->slot;
    result.value = entry->value;
  }
  ++reads_served_;
  if (cb) cb(result);
}

void SmrReplica::reject_read(const ReadCallback& cb) {
  ++reads_rejected_;
  if (cb) cb(ReadResult{});  // default-constructed = kRejected
}

void SmrReplica::park_read(Bytes key, std::uint64_t wait_slots,
                           ReadCallback cb) {
  if (exec_slots() >= wait_slots) {
    answer_read(key, cb);
    return;
  }
  const std::uint64_t token = ++next_read_token_;
  parked_reads_.emplace(wait_slots,
                        ParkedRead{token, std::move(key), std::move(cb)});
  arm_catchup();  // the wait point may already exist at peers — pull
  host_.set_timer(cfg_.pipeline.read_timeout, [this, token] {
    collect_retired();
    for (auto it = parked_reads_.begin(); it != parked_reads_.end(); ++it) {
      if (it->second.token != token) continue;
      const ReadCallback cb = std::move(it->second.cb);
      parked_reads_.erase(it);
      reject_read(cb);
      return;
    }
  });
}

void SmrReplica::drain_parked_reads() {
  while (!parked_reads_.empty() &&
         parked_reads_.begin()->first <= exec_slots()) {
    ParkedRead ready = std::move(parked_reads_.begin()->second);
    parked_reads_.erase(parked_reads_.begin());
    answer_read(ready.key, ready.cb);
  }
}

void SmrReplica::request_lease() {
  if (!started_ || lease_poisoned_ || !cfg_.pipeline.serve_reads ||
      !cfg_.pipeline.read_leases || !is_lease_leader()) {
    return;
  }
  const std::uint64_t epoch = ++lease_epoch_;
  lease_grants_.clear();
  host_.broadcast(kSmrLeaseTag, LeaseRequest{epoch, cfg_.id}.encode());
  // Validity clocks from the broadcast: every granter's promise starts
  // strictly later and runs lease_skew longer, so this timer fires first.
  host_.set_timer(cfg_.pipeline.lease_duration, [this, epoch] {
    collect_retired();
    lease_expired_epoch_ = std::max(lease_expired_epoch_, epoch);
  });
  if (cfg_.f == 0) {
    lease_granted_epoch_ = std::max(lease_granted_epoch_, epoch);
  }
  // Renew at half the validity so a healthy leader never drops the lease.
  host_.set_timer(std::max<Duration>(1, cfg_.pipeline.lease_duration / 2),
                  [this] {
                    collect_retired();
                    request_lease();
                  });
}

void SmrReplica::handle_lease(ReplicaId from, const Bytes& payload) {
  if (!cfg_.pipeline.serve_reads || !cfg_.pipeline.read_leases) return;
  const std::uint8_t kind = peek_read_msg_kind(span(payload));
  if (kind == kLeaseRequestKind) {
    const LeaseRequest req = LeaseRequest::decode(span(payload));
    // Only the engine's fixed view-1 leader may hold a lease, the channel
    // must agree with the claimed leader, and a replica that witnessed a
    // view > 1 decide refuses for good (lease_poisoned_).
    if (req.leader != from || from != lease_leader() || from == cfg_.id) {
      return;
    }
    if (lease_poisoned_ || req.epoch <= last_granted_epoch_) return;
    // A deferred frame means this replica already wants the leader
    // deposed; extending the promise would contradict that and wedge the
    // fleet (renewals at duration/2 would keep promise_live_ > 0 forever,
    // so the held-back wishes would never flush). Refuse the renewal —
    // refusing is always safe (grants only enable reads) — and let the
    // existing promises lapse, which releases the view-change traffic.
    if (!deferred_vc_.empty()) return;
    last_granted_epoch_ = req.epoch;
    // Promise window: strictly outlives the leader's validity (which
    // started at the broadcast, before this message arrived).
    ++promise_live_;
    host_.set_timer(
        cfg_.pipeline.lease_duration + cfg_.pipeline.lease_skew, [this] {
          collect_retired();
          if (--promise_live_ == 0 && !deferred_vc_.empty()) {
            // Last promise gone: release the view-change traffic the
            // promise window held back.
            std::vector<DeferredFrame> pending = std::move(deferred_vc_);
            deferred_vc_.clear();
            for (DeferredFrame& d : pending) {
              if (d.to == 0) {
                host_.broadcast(kSmrTag, std::move(d.frame));
              } else {
                host_.send(d.to, kSmrTag, std::move(d.frame));
              }
            }
          }
        });
    LeaseGrant grant;
    grant.epoch = req.epoch;
    grant.leader = req.leader;
    grant.granter = cfg_.id;
    const Bytes msg =
        lease_signing_bytes(grant.epoch, grant.leader, grant.granter);
    grant.signature = cfg_.suite->sign(span(cfg_.secret_key), span(msg));
    host_.send(from, kSmrLeaseTag, grant.encode());
  } else if (kind == kLeaseGrantKind) {
    const LeaseGrant grant = LeaseGrant::decode(span(payload));
    if (grant.leader != cfg_.id || grant.granter != from) return;
    if (grant.epoch != lease_epoch_ || lease_poisoned_) return;
    if (!grant.verify(*cfg_.suite, cfg_.public_keys, cfg_.n)) return;
    lease_grants_.insert(grant.granter);
    // 2f grants plus this leader itself = 2f+1 promises live.
    if (lease_grants_.size() >= 2 * static_cast<std::size_t>(cfg_.f)) {
      lease_granted_epoch_ = std::max(lease_granted_epoch_, grant.epoch);
    }
  }
}

void SmrReplica::begin_read_index(Bytes key, ReadCallback cb) {
  const std::uint64_t rid = ++next_rid_;
  ReadIndexWait& wait = read_index_waits_[rid];
  wait.key = std::move(key);
  wait.cb = std::move(cb);
  wait.marks.emplace(cfg_.id, exec_slots());
  ReadIndexRequest req;
  req.rid = rid;
  req.requester = cfg_.id;
  host_.broadcast(kSmrReadIndexTag, req.encode());
  host_.set_timer(cfg_.pipeline.read_timeout, [this, rid] {
    collect_retired();
    const auto it = read_index_waits_.find(rid);
    if (it == read_index_waits_.end()) return;
    const ReadCallback cb = std::move(it->second.cb);
    read_index_waits_.erase(it);
    reject_read(cb);
  });
  maybe_complete_read_index(rid);  // f = 0: the self-mark is the quorum
}

void SmrReplica::maybe_complete_read_index(std::uint64_t rid) {
  const auto it = read_index_waits_.find(rid);
  if (it == read_index_waits_.end()) return;
  const std::size_t quorum = 2 * static_cast<std::size_t>(cfg_.f) + 1;
  if (it->second.marks.size() < quorum) return;
  std::uint64_t read_index = 0;
  for (const auto& [signer, mark] : it->second.marks) {
    read_index = std::max(read_index, mark);
  }
  ReadIndexWait wait = std::move(it->second);
  read_index_waits_.erase(it);
  park_read(std::move(wait.key), read_index, std::move(wait.cb));
}

void SmrReplica::handle_read_index(ReplicaId from, const Bytes& payload) {
  if (!cfg_.pipeline.serve_reads) return;
  const std::uint8_t kind = peek_read_msg_kind(span(payload));
  if (kind == kReadIndexRequestKind) {
    const ReadIndexRequest req = ReadIndexRequest::decode(span(payload));
    if (req.requester != from) return;  // channel and claim must agree
    ReadIndexAttest attest;
    attest.rid = req.rid;
    attest.requester = req.requester;
    attest.watermark = exec_slots();
    attest.signer = cfg_.id;
    const Bytes msg = read_index_signing_bytes(attest.requester, attest.rid,
                                               attest.watermark);
    attest.signature = cfg_.suite->sign(span(cfg_.secret_key), span(msg));
    host_.send(from, kSmrReadIndexTag, attest.encode());
  } else if (kind == kReadIndexAttestKind) {
    const ReadIndexAttest attest = ReadIndexAttest::decode(span(payload));
    if (attest.requester != cfg_.id || attest.signer != from) return;
    // Byzantine inflation bound: a watermark beyond the configured slot
    // range could park the read forever; the timeout would clean it up,
    // but there is no reason to even count it.
    if (attest.watermark > cfg_.pipeline.max_slots) return;
    if (read_index_waits_.count(attest.rid) == 0) return;
    if (!attest.verify(*cfg_.suite, cfg_.public_keys, cfg_.n)) return;
    read_index_waits_[attest.rid].marks.emplace(attest.signer,
                                                attest.watermark);
    maybe_complete_read_index(attest.rid);
  }
}

void SmrReplica::submit_read(Bytes key, net::ReadConsistency consistency,
                             std::uint64_t min_index, ReadCallback cb) {
  if (!cfg_.pipeline.serve_reads || read_view_gap_) {
    reject_read(cb);
    return;
  }
  switch (consistency) {
    case net::ReadConsistency::kStaleOk:
      answer_read(key, cb);
      return;
    case net::ReadConsistency::kSequential:
      park_read(std::move(key), min_index, std::move(cb));
      return;
    case net::ReadConsistency::kLinearizable:
      if (lease_held()) {
        // Every write decided so far rode a slot this leader proposed,
        // and proposals only go out for slots below next_open_ — so
        // executing through next_open_ covers every write linearized
        // before this read arrived.
        ++lease_reads_;
        park_read(std::move(key), next_open_, std::move(cb));
        return;
      }
      begin_read_index(std::move(key), std::move(cb));
      return;
  }
  reject_read(cb);  // unreachable: decode validated the mode
}

void SmrReplica::on_message(ReplicaId from, std::uint8_t tag,
                            const Bytes& payload) {
  collect_retired();  // top-level event: no instance frame is live
  try {
    switch (tag) {
      case kSmrTag:
        handle_slot_envelope(from, payload);
        break;
      case kSmrForwardTag:
        handle_forward(from, payload);
        break;
      case kSmrHintTag:
        handle_hint(from, payload);
        break;
      case kSmrPullTag:
        handle_pull(from, payload);
        break;
      case kSmrCkptTag:
        handle_ckpt_vote(from, payload);
        break;
      case kSmrStateTag:
        handle_state(from, payload);
        break;
      case kSmrLeaseTag:
        handle_lease(from, payload);
        break;
      case kSmrReadIndexTag:
        handle_read_index(from, payload);
        break;
      default:
        break;  // not SMR traffic
    }
  } catch (const CodecError&) {
    // Malformed envelope: drop.
  }
}

}  // namespace probft::smr
