#include "smr/smr_replica.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/codec.hpp"

namespace probft::smr {

namespace {

const Bytes& noop_command() {
  static const Bytes noop = to_bytes("__noop__");
  return noop;
}

}  // namespace

SmrReplica::SmrReplica(SmrConfig config, core::ProtocolHost host)
    : cfg_(std::move(config)), host_(std::move(host)) {
  if (cfg_.id == 0 || cfg_.id > cfg_.n || cfg_.suite == nullptr ||
      cfg_.public_keys.size() != cfg_.n + 1 || cfg_.max_slots == 0) {
    throw std::invalid_argument("SmrReplica: bad configuration");
  }
}

void SmrReplica::start() { open_next_slot(); }

void SmrReplica::submit(Bytes command) {
  if (command.empty() || command == noop_command()) {
    throw std::invalid_argument("submit: command must be non-empty");
  }
  queue_.push_back(std::move(command));
}

bool SmrReplica::has_committed(const Bytes& command) const {
  return std::find(log_.begin(), log_.end(), command) != log_.end();
}

Bytes SmrReplica::proposal_for_next_slot() const {
  for (const auto& command : queue_) {
    if (!has_committed(command)) return command;
  }
  return noop_command();
}

void SmrReplica::open_next_slot() {
  if (next_slot_ >= cfg_.max_slots) return;
  const std::uint64_t slot = next_slot_++;

  core::ReplicaConfig rc;
  rc.id = cfg_.id;
  rc.n = cfg_.n;
  rc.f = cfg_.f;
  rc.o = cfg_.o;
  rc.l = cfg_.l;
  rc.my_value = proposal_for_next_slot();
  rc.suite = cfg_.suite;
  rc.secret_key = cfg_.secret_key;
  rc.public_keys = cfg_.public_keys;

  // The per-slot instance talks to a derived host that prefixes wire
  // traffic with the slot number and funnels decisions into the log.
  core::ProtocolHost slot_host;
  slot_host.send = [this, slot](ReplicaId to, std::uint8_t tag,
                                const Bytes& m) {
    Writer w;
    w.u64(slot);
    w.u8(tag);
    w.raw(m);
    host_.send(to, kSmrTag, std::move(w).take());
  };
  slot_host.broadcast = [this, slot](std::uint8_t tag, const Bytes& m) {
    Writer w;
    w.u64(slot);
    w.u8(tag);
    w.raw(m);
    host_.broadcast(kSmrTag, std::move(w).take());
  };
  slot_host.set_timer = host_.set_timer;
  slot_host.on_decide = [this, slot](View /*view*/, const Bytes& value) {
    on_slot_decided(slot, value);
  };

  instances_.emplace(slot, std::make_unique<core::Replica>(
                               std::move(rc), cfg_.sync, slot_host));
  instances_.at(slot)->start();

  // Replay traffic that raced ahead of this slot.
  const auto it = buffered_.find(slot);
  if (it != buffered_.end()) {
    const auto pending = std::move(it->second);
    buffered_.erase(it);
    for (const auto& msg : pending) {
      instances_.at(slot)->on_message(msg.from, msg.tag, msg.payload);
    }
  }
}

void SmrReplica::on_slot_decided(std::uint64_t slot, const Bytes& value) {
  decided_out_of_order_.emplace(slot, value);
  bool advanced = false;
  while (true) {
    const auto it = decided_out_of_order_.find(log_.size());
    if (it == decided_out_of_order_.end()) break;
    const Bytes command = it->second;
    decided_out_of_order_.erase(it);
    log_.push_back(command);
    advanced = true;
    // Committed commands leave the local client queue.
    queue_.erase(std::remove(queue_.begin(), queue_.end(), command),
                 queue_.end());
    if (host_.on_commit && command != to_bytes("__noop__")) {
      host_.on_commit(log_.size() - 1, command);
    }
  }
  if (advanced && log_.size() == next_slot_) {
    open_next_slot();
  }
}

void SmrReplica::on_message(ReplicaId from, std::uint8_t tag,
                            const Bytes& payload) {
  if (tag != kSmrTag) return;
  try {
    Reader r(ByteSpan(payload.data(), payload.size()));
    const std::uint64_t slot = r.u64();
    const std::uint8_t inner_tag = r.u8();
    Bytes inner = r.raw(r.remaining());
    if (slot >= cfg_.max_slots) return;  // out of configured range

    const auto it = instances_.find(slot);
    if (it != instances_.end()) {
      it->second->on_message(from, inner_tag, inner);
      return;
    }
    // Slot not opened yet: buffer (bounded per slot to resist flooding).
    auto& bucket = buffered_[slot];
    if (bucket.size() < 4096) {
      bucket.push_back(Buffered{from, inner_tag, std::move(inner)});
    }
  } catch (const CodecError&) {
    // Malformed envelope: drop.
  }
}

}  // namespace probft::smr
