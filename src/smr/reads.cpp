#include "smr/reads.hpp"

namespace probft::smr {

namespace {

/// Domain separators keep lease grants and read-index attestations
/// mutually unforgeable from each other and from every other signing
/// surface (consensus votes, checkpoint votes, hints).
constexpr std::string_view kLeaseDomain = "probft-lease-v1";
constexpr std::string_view kReadIndexDomain = "probft-readidx-v1";

void check_version(std::uint8_t version) {
  if (version != kReadWireVersion) {
    throw CodecError("read wire: unknown version");
  }
}

void check_kind(std::uint8_t got, std::uint8_t want) {
  if (got != want) throw CodecError("read wire: unexpected message kind");
}

Bytes read_sig(Reader& r) {
  Bytes sig = r.bytes();
  if (sig.size() > kMaxReadSigBytes) {
    throw CodecError("read wire: signature exceeds cap");
  }
  return sig;
}

bool verify_one(const crypto::CryptoSuite& suite,
                const crypto::PublicKeyDir& keys, std::uint32_t n,
                ReplicaId signer, const Bytes& msg, const Bytes& sig) {
  if (signer == 0 || signer > n) return false;
  return suite.verify(ByteSpan(keys[signer].data(), keys[signer].size()),
                      ByteSpan(msg.data(), msg.size()),
                      ByteSpan(sig.data(), sig.size()));
}

}  // namespace

std::uint8_t peek_read_msg_kind(ByteSpan data) {
  Reader r(data);
  check_version(r.u8());
  return r.u8();
}

Bytes lease_signing_bytes(std::uint64_t epoch, ReplicaId leader,
                          ReplicaId granter) {
  Writer w;
  w.str(kLeaseDomain);
  w.u64(epoch);
  w.u32(leader);
  w.u32(granter);
  return std::move(w).take();
}

Bytes read_index_signing_bytes(ReplicaId requester, std::uint64_t rid,
                               std::uint64_t watermark) {
  Writer w;
  w.str(kReadIndexDomain);
  w.u32(requester);
  w.u64(rid);
  w.u64(watermark);
  return std::move(w).take();
}

Bytes LeaseRequest::encode() const {
  Writer w;
  w.u8(kReadWireVersion);
  w.u8(kLeaseRequestKind);
  w.u64(epoch);
  w.u32(leader);
  return std::move(w).take();
}

LeaseRequest LeaseRequest::decode(ByteSpan data) {
  Reader r(data);
  check_version(r.u8());
  check_kind(r.u8(), kLeaseRequestKind);
  LeaseRequest req;
  req.epoch = r.u64();
  req.leader = r.u32();
  r.expect_exhausted();
  return req;
}

Bytes LeaseGrant::encode() const {
  Writer w;
  w.u8(kReadWireVersion);
  w.u8(kLeaseGrantKind);
  w.u64(epoch);
  w.u32(leader);
  w.u32(granter);
  w.bytes(ByteSpan(signature.data(), signature.size()));
  return std::move(w).take();
}

LeaseGrant LeaseGrant::decode(ByteSpan data) {
  Reader r(data);
  check_version(r.u8());
  check_kind(r.u8(), kLeaseGrantKind);
  LeaseGrant grant;
  grant.epoch = r.u64();
  grant.leader = r.u32();
  grant.granter = r.u32();
  grant.signature = read_sig(r);
  r.expect_exhausted();
  return grant;
}

bool LeaseGrant::verify(const crypto::CryptoSuite& suite,
                        const crypto::PublicKeyDir& keys,
                        std::uint32_t n) const {
  return verify_one(suite, keys, n, granter,
                    lease_signing_bytes(epoch, leader, granter), signature);
}

Bytes ReadIndexRequest::encode() const {
  Writer w;
  w.u8(kReadWireVersion);
  w.u8(kReadIndexRequestKind);
  w.u64(rid);
  w.u32(requester);
  return std::move(w).take();
}

ReadIndexRequest ReadIndexRequest::decode(ByteSpan data) {
  Reader r(data);
  check_version(r.u8());
  check_kind(r.u8(), kReadIndexRequestKind);
  ReadIndexRequest req;
  req.rid = r.u64();
  req.requester = r.u32();
  r.expect_exhausted();
  return req;
}

Bytes ReadIndexAttest::encode() const {
  Writer w;
  w.u8(kReadWireVersion);
  w.u8(kReadIndexAttestKind);
  w.u64(rid);
  w.u32(requester);
  w.u64(watermark);
  w.u32(signer);
  w.bytes(ByteSpan(signature.data(), signature.size()));
  return std::move(w).take();
}

ReadIndexAttest ReadIndexAttest::decode(ByteSpan data) {
  Reader r(data);
  check_version(r.u8());
  check_kind(r.u8(), kReadIndexAttestKind);
  ReadIndexAttest attest;
  attest.rid = r.u64();
  attest.requester = r.u32();
  attest.watermark = r.u64();
  attest.signer = r.u32();
  attest.signature = read_sig(r);
  r.expect_exhausted();
  return attest;
}

bool ReadIndexAttest::verify(const crypto::CryptoSuite& suite,
                             const crypto::PublicKeyDir& keys,
                             std::uint32_t n) const {
  return verify_one(suite, keys, n, signer,
                    read_index_signing_bytes(requester, rid, watermark),
                    signature);
}

}  // namespace probft::smr
