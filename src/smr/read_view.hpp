// Deterministic KV view over the executed log: the read fast path's
// answer source.
//
// Every executed command is projected onto a key/value store with the
// convention `key '=' value` (a payload without '=' is its own key and
// value — all historical workloads use such opaque payloads, so adding
// the projection changes no digest and no placement for them). The view
// tracks, per key, the last write and the (slot, exec-index) it landed
// at, plus an exec-slot watermark — O(1) per executed command, O(keys)
// memory.
//
// A replica can then answer:
//   stale-ok       — immediately from the local view;
//   sequential     — once its watermark reaches the client's floor;
//   linearizable   — once the lease / read-index protocol (smr/reads.hpp)
//                    proves the watermark covers every write decided
//                    before the read was issued.
//
// The view is maintained unconditionally on the execute path (it is two
// map operations per command); serving reads from it is opt-in.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>

#include "common/bytes.hpp"

namespace probft::smr {

/// Key under which a payload is written: the bytes before the first '=',
/// or the whole payload when it contains none. Shared by the read path
/// and shard placement so reads route to the shard that owns the writes.
[[nodiscard]] ByteSpan read_view_key(ByteSpan payload);

/// Value a payload writes: the bytes after the first '=', or the whole
/// payload when it contains none.
[[nodiscard]] ByteSpan read_view_value(ByteSpan payload);

struct ReadViewEntry {
  Bytes value;
  std::uint64_t slot = 0;   // log slot the write was decided in
  std::uint64_t index = 0;  // global exec index of the write
};

class ReadView {
 public:
  /// Project one executed command onto the view. `slot`/`index` are the
  /// command's log slot and global execution index.
  void apply(std::uint64_t slot, std::uint64_t index, const Bytes& payload);

  /// Advance the exec-slot watermark (= number of contiguously executed
  /// slots). Called after each slot finishes executing.
  void set_watermark(std::uint64_t exec_slots);

  /// Exec-slot watermark: every slot below it has been executed here.
  [[nodiscard]] std::uint64_t watermark() const { return watermark_; }

  /// Last write to `key`, or nullptr if the key was never written.
  [[nodiscard]] const ReadViewEntry* lookup(ByteSpan key) const;

  [[nodiscard]] std::size_t size() const { return entries_.size(); }

 private:
  std::unordered_map<std::string, ReadViewEntry> entries_;
  std::uint64_t watermark_ = 0;
};

}  // namespace probft::smr
