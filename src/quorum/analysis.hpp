// Closed-form analysis of ProBFT (paper §4, §5, Appendices B-D).
//
// For every quantity the paper derives we expose two flavors:
//   *_bound  — the paper's own Chernoff-style closed form (loose but
//              matches the theorem statements);
//   *_exact  — the same event computed with exact binomial tails under the
//              i.i.d.-sampling model of the proofs (each of r senders
//              includes a given replica in its s-of-n sample independently
//              with probability s/n).
// The Figure 5 benches print both plus Monte-Carlo estimates so the curve
// shapes can be compared against the paper.
#pragma once

#include <cstdint>

namespace probft::quorum {

/// Protocol parameters for one configuration point.
struct Params {
  std::int64_t n = 0;   // replicas
  std::int64_t f = 0;   // Byzantine replicas (f < n/3)
  double o = 1.7;       // sample over-provisioning factor (> 1)
  double l = 2.0;       // quorum size factor: q = l * sqrt(n)

  /// q = ceil(l * sqrt(n)) — probabilistic quorum size.
  [[nodiscard]] std::int64_t q() const;
  /// s = ceil(o * q) — per-replica sample size (capped at n).
  [[nodiscard]] std::int64_t s() const;
  /// Deterministic quorum used by NewLeader collection: ceil((n+f+1)/2).
  [[nodiscard]] std::int64_t det_quorum() const;
  [[nodiscard]] bool valid() const;
};

// ---------------------------------------------------------------------
// Quorum formation (Appendix B).
// ---------------------------------------------------------------------

/// Corollary 2: lower bound on the probability that a replica forms a
/// probabilistic quorum when all n-f correct replicas multicast to random
/// s-of-n samples: 1 - exp(-q (c-1)^2 / (2c)), c = o (n-f) / n.
/// Requires c > 1 (i.e. n < o (n-f)).
[[nodiscard]] double quorum_formation_bound(const Params& p);

/// Exact counterpart: P(Bin(n-f, s/n) >= q).
[[nodiscard]] double quorum_formation_exact(const Params& p);

/// Generalization used by Theorems 6/11: probability of forming a quorum
/// when exactly r replicas multicast. Exact binomial tail.
[[nodiscard]] double quorum_formation_exact_r(const Params& p,
                                              std::int64_t r);

/// Theorem 11 bound for r senders: 1 - exp(-(s r / 2n)(1 - n/(o r))^2),
/// valid when n < o r.
[[nodiscard]] double quorum_formation_bound_r(const Params& p,
                                              std::int64_t r);

/// Theorem 2's admissible range for o: [ (2-sqrt(3)) n/(n-f),
/// (2+sqrt(3)) n/(n-f) ] intersected with o >= 1. Returns the upper end
/// (the paper quotes 3.732 * n/(n-f)).
[[nodiscard]] double theorem2_max_o(std::int64_t n, std::int64_t f);

// ---------------------------------------------------------------------
// Termination (Appendix D.1).
// ---------------------------------------------------------------------

/// Lemma 3's alpha = (s/n)(n-f)(1 - exp(-sqrt(n))).
[[nodiscard]] double lemma3_alpha(const Params& p);

/// Lemma 4 bound: a correct replica decides (correct leader, after GST)
/// with probability >= 1 - exp(-(alpha-q)^2/(2 alpha)) - exp(-sqrt(n)).
[[nodiscard]] double replica_termination_bound(const Params& p);

/// Theorem 15 bound for ALL correct replicas deciding (union bound).
[[nodiscard]] double all_termination_bound(const Params& p);

/// Exact-model estimate of a single replica deciding: it must form a
/// prepare quorum (from n-f senders) and a commit quorum (from the
/// expected number of correct replicas that themselves formed prepare
/// quorums).
[[nodiscard]] double replica_termination_exact(const Params& p);

/// Exact-model estimate for all correct replicas (union bound over n-f).
[[nodiscard]] double all_termination_exact(const Params& p);

// ---------------------------------------------------------------------
// Agreement within a view (Appendix D.2, optimal split of Fig. 4c).
// ---------------------------------------------------------------------

/// Lemma 5/6 building block: bound on the probability that a replica forms
/// a quorum for one value when r = (n+f)/2 replicas send it:
/// exp(-delta^2 o q r / (n (delta+2))), delta = n/(o r) - 1, needs r <= n/o.
/// Returns 1.0 (trivial bound) when the precondition fails.
[[nodiscard]] double split_quorum_bound(const Params& p);

/// Theorem 7 bound on agreement violation in a view: split_quorum_bound^4.
[[nodiscard]] double view_disagreement_bound(const Params& p);
[[nodiscard]] double view_agreement_bound(const Params& p) ;

/// Exact-model estimate of the same event: both replicas of a fixed pair
/// form prepare AND commit quorums for opposite values, with each quorum
/// fed by r = (n+f)/2 senders, *and* neither replica receives a single
/// conflicting message from the (n-f)/2 correct senders of the other value
/// in either phase (receiving one blocks the view, Alg. 1 lines 23-25).
[[nodiscard]] double view_disagreement_exact(const Params& p);
[[nodiscard]] double view_agreement_exact(const Params& p);

// ---------------------------------------------------------------------
// Agreement across views (Appendix D.3).
// ---------------------------------------------------------------------

/// Lemma 6: probability a correct replica decides val when only r replicas
/// prepared it (exact binomial form P(Bin(r, s/n) >= q)).
[[nodiscard]] double decide_with_r_prepared_exact(const Params& p,
                                                  std::int64_t r);

/// Theorem 8/19 bound: probability that a different value gets proposed
/// after val was decided: 3 exp(-q delta^2/((delta+1)(delta+2))),
/// delta = 2n/(o (n+f)) - 1.
[[nodiscard]] double cross_view_violation_bound(const Params& p);
[[nodiscard]] double cross_view_safety_bound(const Params& p);

// ---------------------------------------------------------------------
// Message-count models (Figure 1).
// ---------------------------------------------------------------------

/// Communication steps in the good case (Figure 1a).
[[nodiscard]] int steps_pbft();
[[nodiscard]] int steps_probft();
[[nodiscard]] int steps_hotstuff();

/// Expected messages exchanged in the normal case (correct leader,
/// first view, no NewLeader traffic), counting each point-to-point send.
[[nodiscard]] double messages_pbft(std::int64_t n);
[[nodiscard]] double messages_probft(const Params& p);
[[nodiscard]] double messages_hotstuff(std::int64_t n);

}  // namespace probft::quorum
