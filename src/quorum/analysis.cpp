#include "quorum/analysis.hpp"

#include <algorithm>
#include <cmath>

#include "quorum/prob.hpp"

namespace probft::quorum {

namespace {
double clamp01(double x) { return std::clamp(x, 0.0, 1.0); }
}  // namespace

std::int64_t Params::q() const {
  return static_cast<std::int64_t>(
      std::ceil(l * std::sqrt(static_cast<double>(n))));
}

std::int64_t Params::s() const {
  const auto raw = static_cast<std::int64_t>(
      std::ceil(o * static_cast<double>(q())));
  return std::min(raw, n);
}

std::int64_t Params::det_quorum() const { return (n + f + 2) / 2; }

bool Params::valid() const {
  return n > 0 && f >= 0 && 3 * f < n && o > 1.0 && l >= 1.0 && q() <= n;
}

// ---------------- Quorum formation ----------------

double quorum_formation_bound(const Params& p) {
  const double c = p.o * static_cast<double>(p.n - p.f) /
                   static_cast<double>(p.n);
  if (c <= 1.0) return 0.0;  // bound precondition n < o (n-f) violated
  const double q = static_cast<double>(p.q());
  return clamp01(1.0 - std::exp(-q * (c - 1.0) * (c - 1.0) / (2.0 * c)));
}

double quorum_formation_exact(const Params& p) {
  return quorum_formation_exact_r(p, p.n - p.f);
}

double quorum_formation_exact_r(const Params& p, std::int64_t r) {
  const double hit = static_cast<double>(p.s()) / static_cast<double>(p.n);
  return binom_tail_ge(r, hit, p.q());
}

double quorum_formation_bound_r(const Params& p, std::int64_t r) {
  const double n = static_cast<double>(p.n);
  const double s = static_cast<double>(p.s());
  const double rr = static_cast<double>(r);
  if (!(n < p.o * rr)) return 0.0;
  const double delta = 1.0 - n / (p.o * rr);
  return clamp01(1.0 - std::exp(-(s * rr / (2.0 * n)) * delta * delta));
}

double theorem2_max_o(std::int64_t n, std::int64_t f) {
  return (2.0 + std::sqrt(3.0)) * static_cast<double>(n) /
         static_cast<double>(n - f);
}

// ---------------- Termination ----------------

double lemma3_alpha(const Params& p) {
  const double n = static_cast<double>(p.n);
  const double s = static_cast<double>(p.s());
  return (s / n) * static_cast<double>(p.n - p.f) *
         (1.0 - std::exp(-std::sqrt(n)));
}

double replica_termination_bound(const Params& p) {
  const double alpha = lemma3_alpha(p);
  const double q = static_cast<double>(p.q());
  if (alpha <= q) return 0.0;
  const double commit_fail =
      std::exp(-(alpha - q) * (alpha - q) / (2.0 * alpha));
  const double prepare_fail = std::exp(-std::sqrt(static_cast<double>(p.n)));
  return clamp01(1.0 - commit_fail - prepare_fail);
}

double all_termination_bound(const Params& p) {
  const double alpha = lemma3_alpha(p);
  const double q = static_cast<double>(p.q());
  if (alpha <= q) return 0.0;
  const double commit_fail =
      std::exp(-(alpha - q) * (alpha - q) / (2.0 * alpha));
  const double prepare_fail = std::exp(-std::sqrt(static_cast<double>(p.n)));
  return clamp01(1.0 - static_cast<double>(p.n - p.f) *
                           (commit_fail + prepare_fail));
}

double replica_termination_exact(const Params& p) {
  // Prepare phase: all n-f correct replicas multicast.
  const double p_prepare = quorum_formation_exact_r(p, p.n - p.f);
  // Commit phase: only correct replicas that formed a prepare quorum send.
  const auto committers = static_cast<std::int64_t>(
      std::floor(static_cast<double>(p.n - p.f) * p_prepare));
  const double p_commit = quorum_formation_exact_r(p, committers);
  return clamp01(p_prepare * p_commit);
}

double all_termination_exact(const Params& p) {
  const double per_replica = replica_termination_exact(p);
  return clamp01(1.0 -
                 static_cast<double>(p.n - p.f) * (1.0 - per_replica));
}

// ---------------- Agreement within a view ----------------

double split_quorum_bound(const Params& p) {
  const double n = static_cast<double>(p.n);
  const double r = static_cast<double>(p.n + p.f) / 2.0;
  if (r > n / p.o) return 1.0;  // Chernoff precondition fails: trivial bound
  const double delta = n / (p.o * r) - 1.0;
  const double q = static_cast<double>(p.q());
  return clamp01(
      std::exp(-delta * delta * p.o * q * r / (n * (delta + 2.0))));
}

double view_disagreement_bound(const Params& p) {
  const double b = split_quorum_bound(p);
  return clamp01(b * b * b * b);
}

double view_agreement_bound(const Params& p) {
  return clamp01(1.0 - view_disagreement_bound(p));
}

double view_disagreement_exact(const Params& p) {
  const double n = static_cast<double>(p.n);
  const double hit = static_cast<double>(p.s()) / n;
  // Optimal split (Fig. 4c): each value is backed by half the correct
  // replicas plus all Byzantine ones.
  const auto r = static_cast<std::int64_t>(
      std::floor(static_cast<double>(p.n + p.f) / 2.0));
  const auto other_correct = static_cast<std::int64_t>(
      std::floor(static_cast<double>(p.n - p.f) / 2.0));
  const double p_form = binom_tail_ge(r, hit, p.q());
  // Probability a replica receives no message at all from the other side's
  // correct senders in one phase (one such message blocks the view).
  const double p_clean =
      std::pow(1.0 - hit, static_cast<double>(other_correct));
  // One replica decides one value: quorum + clean in both phases.
  const double p_decide = std::pow(p_form * p_clean, 2.0);
  // Disagreement: both replicas of the pair decide opposite values.
  return clamp01(p_decide * p_decide);
}

double view_agreement_exact(const Params& p) {
  return clamp01(1.0 - view_disagreement_exact(p));
}

// ---------------- Agreement across views ----------------

double decide_with_r_prepared_exact(const Params& p, std::int64_t r) {
  const double hit = static_cast<double>(p.s()) / static_cast<double>(p.n);
  return binom_tail_ge(r, hit, p.q());
}

double cross_view_violation_bound(const Params& p) {
  const double n = static_cast<double>(p.n);
  const double delta = 2.0 * n / (p.o * static_cast<double>(p.n + p.f)) - 1.0;
  if (delta <= 0.0) return 1.0;  // bound vacuous
  const double q = static_cast<double>(p.q());
  return clamp01(3.0 * std::exp(-q * delta * delta /
                                ((delta + 1.0) * (delta + 2.0))));
}

double cross_view_safety_bound(const Params& p) {
  return clamp01(1.0 - cross_view_violation_bound(p));
}

// ---------------- Message-count models ----------------

int steps_pbft() { return 3; }
int steps_probft() { return 3; }
int steps_hotstuff() { return 7; }

double messages_pbft(std::int64_t n) {
  // Propose broadcast + all-to-all Prepare + all-to-all Commit.
  const double nn = static_cast<double>(n);
  return (nn - 1.0) + 2.0 * nn * (nn - 1.0);
}

double messages_probft(const Params& p) {
  // Propose broadcast + per-replica multicasts of size s in each of the
  // prepare and commit phases (normal case: every replica participates).
  const double nn = static_cast<double>(p.n);
  return (nn - 1.0) + 2.0 * nn * static_cast<double>(p.s());
}

double messages_hotstuff(std::int64_t n) {
  // Single-shot chained pattern: leader broadcast + votes to leader across
  // prepare / pre-commit / commit, plus the final decide broadcast:
  // 4 leader->all + 3 all->leader = 7 (n-1) message flows, plus the initial
  // new-view collection (n-1).
  return 8.0 * (static_cast<double>(n) - 1.0);
}

}  // namespace probft::quorum
