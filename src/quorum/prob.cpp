#include "quorum/prob.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace probft::quorum {

namespace {
constexpr double kNegInf = -std::numeric_limits<double>::infinity();
}

double ln_choose(std::int64_t n, std::int64_t k) {
  if (k < 0 || k > n || n < 0) return kNegInf;
  return std::lgamma(static_cast<double>(n) + 1.0) -
         std::lgamma(static_cast<double>(k) + 1.0) -
         std::lgamma(static_cast<double>(n - k) + 1.0);
}

double binom_pmf(std::int64_t n, double p, std::int64_t k) {
  if (k < 0 || k > n) return 0.0;
  if (p <= 0.0) return k == 0 ? 1.0 : 0.0;
  if (p >= 1.0) return k == n ? 1.0 : 0.0;
  const double ln_p = ln_choose(n, k) +
                      static_cast<double>(k) * std::log(p) +
                      static_cast<double>(n - k) * std::log1p(-p);
  return std::exp(ln_p);
}

double binom_cdf(std::int64_t n, double p, std::int64_t k) {
  if (k < 0) return 0.0;
  if (k >= n) return 1.0;
  // Sum the smaller tail for accuracy.
  const double mean = static_cast<double>(n) * p;
  if (static_cast<double>(k) < mean) {
    double sum = 0.0;
    for (std::int64_t i = 0; i <= k; ++i) sum += binom_pmf(n, p, i);
    return std::min(1.0, sum);
  }
  double upper = 0.0;
  for (std::int64_t i = k + 1; i <= n; ++i) upper += binom_pmf(n, p, i);
  return std::max(0.0, 1.0 - upper);
}

double binom_tail_ge(std::int64_t n, double p, std::int64_t k) {
  if (k <= 0) return 1.0;
  if (k > n) return 0.0;
  return std::max(0.0, 1.0 - binom_cdf(n, p, k - 1));
}

double hypergeom_pmf(std::int64_t N, std::int64_t M, std::int64_t r,
                     std::int64_t k) {
  if (N < 0 || M < 0 || M > N || r < 0 || r > N) {
    throw std::invalid_argument("hypergeom_pmf: bad parameters");
  }
  const double ln_p =
      ln_choose(M, k) + ln_choose(N - M, r - k) - ln_choose(N, r);
  return std::isfinite(ln_p) ? std::exp(ln_p) : 0.0;
}

double hypergeom_tail_ge(std::int64_t N, std::int64_t M, std::int64_t r,
                         std::int64_t k) {
  const std::int64_t hi = std::min(M, r);
  double sum = 0.0;
  for (std::int64_t i = std::max<std::int64_t>(k, 0); i <= hi; ++i) {
    sum += hypergeom_pmf(N, M, r, i);
  }
  return std::min(1.0, sum);
}

double chernoff_lower(double delta, double mean) {
  if (delta <= 0.0 || delta >= 1.0 || mean <= 0.0) {
    throw std::invalid_argument("chernoff_lower: need delta in (0,1), mean>0");
  }
  return std::exp(-delta * delta * mean / 2.0);
}

double chernoff_upper(double delta, double mean) {
  if (delta < 0.0 || mean <= 0.0) {
    throw std::invalid_argument("chernoff_upper: need delta>=0, mean>0");
  }
  return std::exp(-delta * delta * mean / (2.0 + delta));
}

double hypergeom_chvatal_bound(std::int64_t r, double t) {
  if (r <= 0 || t <= 0.0) {
    throw std::invalid_argument("hypergeom_chvatal_bound: need r>0, t>0");
  }
  return std::exp(-2.0 * static_cast<double>(r) * t * t);
}

}  // namespace probft::quorum
