// Probability primitives used in the ProBFT analysis (paper Appendix A).
//
// Everything is computed in log space with std::lgamma, so binomial and
// hypergeometric tails stay accurate for the paper's parameter ranges
// (n up to several hundred, probabilities down to ~1e-300).
#pragma once

#include <cstdint>

namespace probft::quorum {

/// ln C(n, k); returns -inf for k < 0 or k > n.
[[nodiscard]] double ln_choose(std::int64_t n, std::int64_t k);

/// Binomial pmf P(X = k), X ~ Bin(n, p).
[[nodiscard]] double binom_pmf(std::int64_t n, double p, std::int64_t k);

/// Binomial CDF P(X <= k).
[[nodiscard]] double binom_cdf(std::int64_t n, double p, std::int64_t k);

/// Upper tail P(X >= k).
[[nodiscard]] double binom_tail_ge(std::int64_t n, double p, std::int64_t k);

/// Hypergeometric pmf: P(X = k) when drawing r items from a population of
/// size N containing M marked items.
[[nodiscard]] double hypergeom_pmf(std::int64_t N, std::int64_t M,
                                   std::int64_t r, std::int64_t k);

/// Hypergeometric upper tail P(X >= k).
[[nodiscard]] double hypergeom_tail_ge(std::int64_t N, std::int64_t M,
                                       std::int64_t r, std::int64_t k);

/// Chernoff lower-tail bound (Appendix A, inequality (1)):
/// P(X <= (1-delta) E[X]) <= exp(-delta^2 E[X] / 2), delta in (0,1).
[[nodiscard]] double chernoff_lower(double delta, double mean);

/// Chernoff upper-tail bound (Appendix A, inequality (2)):
/// P(X >= (1+delta) E[X]) <= exp(-delta^2 E[X] / (2 + delta)), delta >= 0.
[[nodiscard]] double chernoff_upper(double delta, double mean);

/// Hypergeometric tail bound (Appendix A, inequality (3)):
/// P(X <= E[X] - r t) <= exp(-2 r t^2).
[[nodiscard]] double hypergeom_chvatal_bound(std::int64_t r, double t);

}  // namespace probft::quorum
