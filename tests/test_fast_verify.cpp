// Verification fast path (content-addressed verdict cache + batched
// signature verification + wire-level cert dedup) must be semantically
// invisible: every predicate verdict and every cluster decision has to be
// bit-identical between fast_verify on and off. These tests pin that, at
// the predicate level on crafted (including adversarial) justifications
// and at the cluster level on full view-change runs.
#include <gtest/gtest.h>

#include "protocol_test_util.hpp"
#include "sim/cluster.hpp"

namespace probft::core {
namespace {

using testutil::TestBed;

class FastVerifyTest : public ::testing::Test {
 protected:
  // s == n == 9 keeps certificate construction deterministic.
  FastVerifyTest() : bed_(9, 2, 1.7, 3.0) {
    fast_ = bed_.make_replica(5, to_bytes("own-value"), /*fast_verify=*/true);
    slow_ = bed_.make_replica(5, to_bytes("own-value"), /*fast_verify=*/false);
    fast_->start();
    slow_->start();
  }

  void expect_same_verdict(const ProposeMsg& m, const char* label) {
    EXPECT_EQ(fast_->safe_proposal(m), slow_->safe_proposal(m)) << label;
    // Re-query to exercise the warm-cache path too.
    EXPECT_EQ(fast_->safe_proposal(m), slow_->safe_proposal(m))
        << label << " (warm)";
  }

  TestBed bed_;
  std::unique_ptr<Replica> fast_;
  std::unique_ptr<Replica> slow_;
};

TEST_F(FastVerifyTest, SafeProposalVerdictsMatchSlowPath) {
  const Bytes locked = to_bytes("locked");
  const Bytes evil = to_bytes("evil");

  // Valid justification: one prepared report + five empty ones.
  std::vector<NewLeaderMsg> good;
  good.push_back(
      bed_.make_new_leader(2, 4, 1, locked, bed_.make_cert(1, locked, 4, 1)));
  for (ReplicaId s = 5; s <= 9; ++s) {
    good.push_back(bed_.make_new_leader(2, s));
  }
  expect_same_verdict(bed_.make_propose(2, locked, 2, good), "good/locked");
  expect_same_verdict(bed_.make_propose(2, evil, 2, good), "good/evil");

  // Duplicate senders.
  std::vector<NewLeaderMsg> dup = good;
  dup.push_back(good[0]);
  expect_same_verdict(bed_.make_propose(2, locked, 2, dup), "dup-sender");

  // Forged certificate: report "evil" backed by a cert for another value.
  std::vector<NewLeaderMsg> forged;
  forged.push_back(bed_.make_new_leader(2, 4, 1, evil,
                                        bed_.make_cert(1, locked, 4, 1)));
  for (ReplicaId s = 5; s <= 9; ++s) {
    forged.push_back(bed_.make_new_leader(2, s));
  }
  expect_same_verdict(bed_.make_propose(2, evil, 2, forged), "forged-cert");

  // Corrupted signature inside one certificate member.
  std::vector<NewLeaderMsg> corrupt = good;
  ASSERT_FALSE(corrupt[0].cert.empty());
  // Cert entries are shared immutable handles: clone before tampering
  // (which also resets the clone's digest memo).
  auto bad_member = TestBed::clone_cert_entry(corrupt[0].cert[0]);
  bad_member->sender_sig[0] ^= 1;
  corrupt[0].cert[0] = bad_member;
  corrupt[0].digest_memo_.clear();  // re-sign over the mutated cert
  corrupt[0].sender_sig =
      bed_.suite().sign(bed_.secret(4), corrupt[0].signing_bytes());
  expect_same_verdict(bed_.make_propose(2, locked, 2, corrupt),
                      "corrupt-member-sig");

  // Below the deterministic quorum.
  std::vector<NewLeaderMsg> few(good.begin(), good.begin() + 5);
  expect_same_verdict(bed_.make_propose(2, locked, 2, few), "sub-quorum");
}

TEST_F(FastVerifyTest, NegativeVerdictsAreCachedExactly) {
  // A justification rejected once must be rejected identically on every
  // re-delivery (the cache stores negative verdicts too).
  const Bytes locked = to_bytes("locked");
  std::vector<NewLeaderMsg> bad;
  bad.push_back(bed_.make_new_leader(2, 4, 1, locked,
                                     bed_.make_cert(1, locked, 4, 1)));
  ASSERT_FALSE(bad[0].cert.empty());
  auto poisoned = TestBed::clone_cert_entry(bad[0].cert[0]);
  poisoned->vrf_proof[0] ^= 1;  // poison one VRF proof
  bad[0].cert[0] = poisoned;
  bad[0].digest_memo_.clear();
  bad[0].sender_sig =
      bed_.suite().sign(bed_.secret(4), bad[0].signing_bytes());
  for (ReplicaId s = 5; s <= 9; ++s) {
    bad.push_back(bed_.make_new_leader(2, s));
  }
  const auto m = bed_.make_propose(2, locked, 2, bad);
  for (int i = 0; i < 3; ++i) {
    EXPECT_FALSE(fast_->safe_proposal(m));
    EXPECT_FALSE(slow_->safe_proposal(m));
  }
}

/// Full-cluster determinism: a forced view-change run (view 1 prepares,
/// commits held until the first timeout) must produce bit-identical
/// decision records with the fast path on and off, seed by seed.
TEST(FastVerifyCluster, ViewChangeDecisionsBitIdentical) {
  using namespace probft::sim;
  for (std::uint64_t seed : {1ULL, 2ULL, 3ULL, 4ULL, 5ULL}) {
    std::vector<DecisionRecord> per_mode[2];
    for (int fast = 0; fast < 2; ++fast) {
      ClusterConfig cfg;
      cfg.protocol = Protocol::kProbft;
      cfg.n = 30;
      cfg.f = 3;
      cfg.l = 1.5;
      cfg.o = 1.7;
      cfg.seed = seed;
      cfg.fast_verify = fast == 1;
      cfg.sync.base_timeout = 200'000;
      Cluster cluster(cfg);
      net::Simulator& sim = cluster.simulator();
      const TimePoint hold = cfg.sync.base_timeout;
      cluster.network().set_filter(
          [&sim, hold](ReplicaId, ReplicaId, std::uint8_t tag) {
            return tag == tag_byte(MsgTag::kCommit) && sim.now() < hold;
          });
      cluster.start();
      EXPECT_TRUE(cluster.run_to_completion(/*deadline=*/600'000'000))
          << "seed " << seed << " fast " << fast;
      EXPECT_TRUE(cluster.agreement_ok()) << "seed " << seed;
      per_mode[fast] = cluster.decisions();
      for (const auto& d : per_mode[fast]) {
        EXPECT_GE(d.view, 2U) << "seed " << seed;  // view 1 must not decide
      }
    }
    ASSERT_EQ(per_mode[0].size(), per_mode[1].size()) << "seed " << seed;
    for (std::size_t i = 0; i < per_mode[0].size(); ++i) {
      EXPECT_EQ(per_mode[0][i].replica, per_mode[1][i].replica);
      EXPECT_EQ(per_mode[0][i].view, per_mode[1][i].view);
      EXPECT_EQ(per_mode[0][i].value, per_mode[1][i].value);
      EXPECT_EQ(per_mode[0][i].at, per_mode[1][i].at);
    }
  }
}

}  // namespace
}  // namespace probft::core
