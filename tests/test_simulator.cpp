#include "net/simulator.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace probft::net {
namespace {

TEST(Simulator, StartsAtZero) {
  Simulator sim;
  EXPECT_EQ(sim.now(), 0U);
  EXPECT_TRUE(sim.empty());
}

TEST(Simulator, FiresInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(30, [&] { order.push_back(3); });
  sim.schedule_at(10, [&] { order.push_back(1); });
  sim.schedule_at(20, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 30U);
}

TEST(Simulator, TiesBreakInScheduleOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(5, [&] { order.push_back(1); });
  sim.schedule_at(5, [&] { order.push_back(2); });
  sim.schedule_at(5, [&] { order.push_back(3); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Simulator, ScheduleAfterUsesCurrentTime) {
  Simulator sim;
  TimePoint inner_fire = 0;
  sim.schedule_at(100, [&] {
    sim.schedule_after(50, [&] { inner_fire = sim.now(); });
  });
  sim.run();
  EXPECT_EQ(inner_fire, 150U);
}

TEST(Simulator, PastEventsClampToNow) {
  Simulator sim;
  sim.schedule_at(100, [] {});
  sim.run();
  TimePoint fired_at = 0;
  sim.schedule_at(10, [&] { fired_at = sim.now(); });  // in the past
  sim.run();
  EXPECT_EQ(fired_at, 100U);  // clamped, time never goes backwards
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator sim;
  bool fired = false;
  const auto id = sim.schedule_at(10, [&] { fired = true; });
  sim.cancel(id);
  sim.run();
  EXPECT_FALSE(fired);
  EXPECT_TRUE(sim.empty());
}

TEST(Simulator, CancelUnknownIdIsNoop) {
  Simulator sim;
  sim.cancel(9999);
  EXPECT_TRUE(sim.empty());
}

TEST(Simulator, PendingCountExcludesCancelled) {
  Simulator sim;
  const auto a = sim.schedule_at(1, [] {});
  sim.schedule_at(2, [] {});
  EXPECT_EQ(sim.pending(), 2U);
  sim.cancel(a);
  EXPECT_EQ(sim.pending(), 1U);
}

TEST(Simulator, RunMaxEventsStops) {
  Simulator sim;
  int fired = 0;
  for (int i = 0; i < 10; ++i) {
    sim.schedule_at(static_cast<TimePoint>(i), [&] { ++fired; });
  }
  EXPECT_EQ(sim.run(4), 4U);
  EXPECT_EQ(fired, 4);
  EXPECT_EQ(sim.pending(), 6U);
}

TEST(Simulator, RunUntilStopsBeforeDeadline) {
  Simulator sim;
  std::vector<TimePoint> fired;
  sim.schedule_at(10, [&] { fired.push_back(10); });
  sim.schedule_at(20, [&] { fired.push_back(20); });
  sim.schedule_at(30, [&] { fired.push_back(30); });
  sim.run_until(25);
  EXPECT_EQ(fired, (std::vector<TimePoint>{10, 20}));
  EXPECT_EQ(sim.now(), 25U);
  sim.run();
  EXPECT_EQ(fired.size(), 3U);
}

TEST(Simulator, EventsCanScheduleMoreEvents) {
  Simulator sim;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 5) sim.schedule_after(10, chain);
  };
  sim.schedule_at(0, chain);
  sim.run();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(sim.now(), 40U);
}

TEST(Simulator, EventsFiredCounter) {
  Simulator sim;
  for (int i = 0; i < 7; ++i) sim.schedule_at(1, [] {});
  sim.run();
  EXPECT_EQ(sim.events_fired(), 7U);
}

}  // namespace
}  // namespace probft::net
