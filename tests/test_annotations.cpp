// The annotation layer must be exactly two things: (1) attribute sugar that
// clang's -Wthread-safety proves theorems about, and (2) NOTHING, under any
// other compiler or when explicitly disabled. This file compiles the
// primitives with the analysis force-stripped (the macro below neutralizes
// every PROBFT_* attribute even under clang) and checks the runtime
// semantics are unchanged: a stripped build must behave bit-identically to
// an annotated one, or gcc builds and clang builds would diverge.
#define PROBFT_DISABLE_THREAD_SAFETY_ANALYSIS 1

#include <gtest/gtest.h>

#include <thread>
#include <type_traits>
#include <vector>

#include "common/annotations.hpp"
#include "common/mutex.hpp"

namespace probft {
namespace {

// With the analysis stripped, every macro must expand to nothing — a class
// carrying them is a plain class. This is a compile-time fact; the
// static_assert just pins it.
class PROBFT_CAPABILITY("test") StrippedTag {};
static_assert(std::is_empty_v<StrippedTag>,
              "stripped annotation macros must not inject members");

TEST(Annotations, MutexStillMutuallyExcludes) {
  Mutex mu;
  int counter = 0;
  std::vector<std::thread> workers;
  workers.reserve(4);
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&]() {
      for (int i = 0; i < 10'000; ++i) {
        MutexLock lock(mu);
        ++counter;
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(counter, 40'000);
}

TEST(Annotations, CondVarWaitReleasesAndReacquires) {
  Mutex mu;
  CondVar cv;
  bool ready = false;
  std::thread signaller([&]() {
    MutexLock lock(mu);
    ready = true;
    cv.notify_one();
  });
  {
    MutexLock lock(mu);
    while (!ready) cv.wait(mu);
    EXPECT_TRUE(ready);
  }
  signaller.join();
}

TEST(Annotations, SharedMutexAllowsConcurrentReaders) {
  SharedMutex mu;
  int value = 7;
  {
    SharedWriterLock w(mu);
    value = 42;
  }
  std::vector<std::thread> readers;
  readers.reserve(3);
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&]() {
      SharedReaderLock r(mu);
      EXPECT_EQ(value, 42);
    });
  }
  for (auto& r : readers) r.join();
}

TEST(Annotations, ThreadRoleBindsAndReleases) {
  ThreadRole role;
  role.assert_held();  // unbound: any thread passes
  {
    ThreadRoleGuard guard(role);
    role.assert_held();  // bound to us: passes
  }
  // Released: another thread may now take the role.
  std::thread other([&]() {
    ThreadRoleGuard guard(role);
    role.assert_held();
  });
  other.join();
}

TEST(Annotations, ThreadRoleAdoptsFirstCaller) {
  ThreadRole role;
  role.assert_held_or_adopt();  // binds this thread
  role.assert_held();           // and stays bound to it
}

}  // namespace
}  // namespace probft
