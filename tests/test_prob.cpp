#include "quorum/prob.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace probft::quorum {
namespace {

TEST(LnChoose, SmallValues) {
  EXPECT_NEAR(std::exp(ln_choose(5, 2)), 10.0, 1e-9);
  EXPECT_NEAR(std::exp(ln_choose(10, 0)), 1.0, 1e-9);
  EXPECT_NEAR(std::exp(ln_choose(10, 10)), 1.0, 1e-9);
  EXPECT_NEAR(std::exp(ln_choose(52, 5)), 2598960.0, 1e-3);
}

TEST(LnChoose, OutOfRangeIsMinusInf) {
  EXPECT_TRUE(std::isinf(ln_choose(5, 6)));
  EXPECT_TRUE(std::isinf(ln_choose(5, -1)));
}

TEST(BinomPmf, MatchesHandComputation) {
  // Bin(4, 0.5): P(X=2) = 6/16.
  EXPECT_NEAR(binom_pmf(4, 0.5, 2), 0.375, 1e-12);
  // Bin(3, 0.2): P(X=0) = 0.512.
  EXPECT_NEAR(binom_pmf(3, 0.2, 0), 0.512, 1e-12);
}

TEST(BinomPmf, DegenerateProbabilities) {
  EXPECT_EQ(binom_pmf(5, 0.0, 0), 1.0);
  EXPECT_EQ(binom_pmf(5, 0.0, 1), 0.0);
  EXPECT_EQ(binom_pmf(5, 1.0, 5), 1.0);
  EXPECT_EQ(binom_pmf(5, 1.0, 4), 0.0);
}

TEST(BinomPmf, SumsToOne) {
  double total = 0;
  for (int k = 0; k <= 30; ++k) total += binom_pmf(30, 0.37, k);
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(BinomCdf, MonotoneAndBounded) {
  double prev = 0;
  for (int k = 0; k <= 50; ++k) {
    const double c = binom_cdf(50, 0.3, k);
    EXPECT_GE(c, prev - 1e-12);
    EXPECT_LE(c, 1.0 + 1e-12);
    prev = c;
  }
  EXPECT_NEAR(binom_cdf(50, 0.3, 50), 1.0, 1e-12);
}

TEST(BinomTail, ComplementsCdf) {
  for (int k = 0; k <= 20; ++k) {
    EXPECT_NEAR(binom_tail_ge(20, 0.4, k) + binom_cdf(20, 0.4, k - 1), 1.0,
                1e-9)
        << "k=" << k;
  }
}

TEST(BinomTail, EdgeCases) {
  EXPECT_EQ(binom_tail_ge(10, 0.5, 0), 1.0);
  EXPECT_EQ(binom_tail_ge(10, 0.5, 11), 0.0);
}

TEST(Hypergeom, PmfMatchesHandComputation) {
  // Draw 2 from 5 (2 marked): P(X=1) = C(2,1)C(3,1)/C(5,2) = 6/10.
  EXPECT_NEAR(hypergeom_pmf(5, 2, 2, 1), 0.6, 1e-12);
  EXPECT_NEAR(hypergeom_pmf(5, 2, 2, 2), 0.1, 1e-12);
  EXPECT_NEAR(hypergeom_pmf(5, 2, 2, 0), 0.3, 1e-12);
}

TEST(Hypergeom, PmfSumsToOne) {
  double total = 0;
  for (int k = 0; k <= 10; ++k) total += hypergeom_pmf(30, 10, 10, k);
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(Hypergeom, TailComplementsSum) {
  const double tail = hypergeom_tail_ge(30, 10, 10, 4);
  double direct = 0;
  for (int k = 4; k <= 10; ++k) direct += hypergeom_pmf(30, 10, 10, k);
  EXPECT_NEAR(tail, direct, 1e-12);
}

TEST(Hypergeom, RejectsBadParameters) {
  EXPECT_THROW((void)hypergeom_pmf(5, 6, 2, 1), std::invalid_argument);
  EXPECT_THROW((void)hypergeom_pmf(5, 2, 6, 1), std::invalid_argument);
}

TEST(Chernoff, LowerBoundDominatesExactTail) {
  // For X ~ Bin(n, p), P(X <= (1-d) E[X]) <= exp(-d^2 E[X]/2).
  const int n = 200;
  const double p = 0.3;
  const double mean = n * p;
  for (double d : {0.1, 0.3, 0.5, 0.8}) {
    const auto k = static_cast<std::int64_t>(std::floor((1 - d) * mean));
    const double exact = binom_cdf(n, p, k);
    EXPECT_LE(exact, chernoff_lower(d, mean) + 1e-12) << "d=" << d;
  }
}

TEST(Chernoff, UpperBoundDominatesExactTail) {
  const int n = 200;
  const double p = 0.3;
  const double mean = n * p;
  for (double d : {0.1, 0.5, 1.0, 1.5}) {
    const auto k = static_cast<std::int64_t>(std::ceil((1 + d) * mean));
    const double exact = binom_tail_ge(n, p, k);
    EXPECT_LE(exact, chernoff_upper(d, mean) + 1e-12) << "d=" << d;
  }
}

TEST(Chernoff, RejectsBadArguments) {
  EXPECT_THROW((void)chernoff_lower(0.0, 10), std::invalid_argument);
  EXPECT_THROW((void)chernoff_lower(1.0, 10), std::invalid_argument);
  EXPECT_THROW((void)chernoff_lower(0.5, 0), std::invalid_argument);
  EXPECT_THROW((void)chernoff_upper(-0.1, 10), std::invalid_argument);
}

TEST(ChvatalBound, DominatesHypergeometricTail) {
  // P(X <= E[X] - r t) <= exp(-2 r t^2) for X ~ HG(N, M, r).
  const std::int64_t N = 100, M = 60, r = 30;
  const double mean = static_cast<double>(r) * M / N;
  for (double t : {0.05, 0.1, 0.2}) {
    const auto cutoff = static_cast<std::int64_t>(std::floor(mean - r * t));
    double exact = 0;
    for (std::int64_t k = 0; k <= cutoff; ++k) {
      exact += hypergeom_pmf(N, M, r, k);
    }
    EXPECT_LE(exact, hypergeom_chvatal_bound(r, t) + 1e-12) << "t=" << t;
  }
}

}  // namespace
}  // namespace probft::quorum
