#include "crypto/suite.hpp"

#include <gtest/gtest.h>

#include "common/bytes.hpp"

namespace probft::crypto {
namespace {

// Both suites must satisfy the same contract; run every test against each.
class SuiteTest : public ::testing::TestWithParam<const char*> {
 protected:
  std::unique_ptr<CryptoSuite> suite() const {
    if (std::string(GetParam()) == "ed25519") return make_ed25519_suite();
    return make_sim_suite();
  }
};

TEST_P(SuiteTest, KeygenIsDeterministic) {
  const auto s = suite();
  const auto a = s->keygen(7);
  const auto b = s->keygen(7);
  EXPECT_EQ(a.public_key, b.public_key);
  EXPECT_EQ(a.secret_key, b.secret_key);
}

TEST_P(SuiteTest, KeygenDistinctSeedsDistinctKeys) {
  const auto s = suite();
  EXPECT_NE(s->keygen(1).public_key, s->keygen(2).public_key);
}

TEST_P(SuiteTest, SignVerifyRoundtrip) {
  const auto s = suite();
  const auto kp = s->keygen(3);
  const Bytes msg = to_bytes("propose view=1 value=tx-batch");
  const auto sig = s->sign(kp.secret_key, msg);
  EXPECT_TRUE(s->verify(kp.public_key, msg, sig));
}

TEST_P(SuiteTest, VerifyRejectsTamperedMessage) {
  const auto s = suite();
  const auto kp = s->keygen(3);
  Bytes msg = to_bytes("payload");
  const auto sig = s->sign(kp.secret_key, msg);
  msg[0] ^= 1;
  EXPECT_FALSE(s->verify(kp.public_key, msg, sig));
}

TEST_P(SuiteTest, VerifyRejectsWrongSigner) {
  const auto s = suite();
  const auto kp1 = s->keygen(1);
  const auto kp2 = s->keygen(2);
  const Bytes msg = to_bytes("payload");
  const auto sig = s->sign(kp1.secret_key, msg);
  EXPECT_FALSE(s->verify(kp2.public_key, msg, sig));
}

TEST_P(SuiteTest, VrfProveVerifyRoundtrip) {
  const auto s = suite();
  const auto kp = s->keygen(9);
  const Bytes alpha = to_bytes("4|commit");
  const auto result = s->vrf_prove(kp.secret_key, alpha);
  const auto verified = s->vrf_verify(kp.public_key, alpha, result.proof);
  ASSERT_TRUE(verified.has_value());
  EXPECT_EQ(*verified, result.output);
  EXPECT_GE(result.output.size(), 32U);
}

TEST_P(SuiteTest, VrfIsDeterministic) {
  const auto s = suite();
  const auto kp = s->keygen(9);
  const Bytes alpha = to_bytes("alpha");
  EXPECT_EQ(s->vrf_prove(kp.secret_key, alpha).output,
            s->vrf_prove(kp.secret_key, alpha).output);
}

TEST_P(SuiteTest, VrfRejectsWrongAlpha) {
  const auto s = suite();
  const auto kp = s->keygen(9);
  const auto result = s->vrf_prove(kp.secret_key, to_bytes("a1"));
  EXPECT_FALSE(
      s->vrf_verify(kp.public_key, to_bytes("a2"), result.proof).has_value());
}

TEST_P(SuiteTest, VrfRejectsWrongKey) {
  const auto s = suite();
  const auto kp1 = s->keygen(1);
  const auto kp2 = s->keygen(2);
  const Bytes alpha = to_bytes("alpha");
  const auto result = s->vrf_prove(kp1.secret_key, alpha);
  EXPECT_FALSE(
      s->vrf_verify(kp2.public_key, alpha, result.proof).has_value());
}

TEST_P(SuiteTest, VrfOutputsDifferAcrossKeys) {
  const auto s = suite();
  const Bytes alpha = to_bytes("alpha");
  EXPECT_NE(s->vrf_prove(s->keygen(1).secret_key, alpha).output,
            s->vrf_prove(s->keygen(2).secret_key, alpha).output);
}

TEST_P(SuiteTest, BatchVerifyMatchesPerItemLoop) {
  const auto s = suite();
  std::vector<KeyPair> keys;
  std::vector<Bytes> msgs, sigs;
  for (std::uint64_t i = 0; i < 5; ++i) {
    keys.push_back(s->keygen(100 + i));
    msgs.push_back(to_bytes("batch-msg-" + std::to_string(i)));
    sigs.push_back(s->sign(keys.back().secret_key,
                           ByteSpan(msgs.back().data(), msgs.back().size())));
  }
  const auto checks = [&] {
    std::vector<SigCheck> out;
    for (std::size_t i = 0; i < keys.size(); ++i) {
      out.push_back(
          {ByteSpan(keys[i].public_key.data(), keys[i].public_key.size()),
           ByteSpan(msgs[i].data(), msgs[i].size()),
           ByteSpan(sigs[i].data(), sigs[i].size())});
    }
    return out;
  };
  EXPECT_TRUE(s->verify_batch(checks()));
  EXPECT_TRUE(s->verify_batch({}));
  sigs[3][7] ^= 1;  // one bad member fails the whole batch in every suite
  EXPECT_FALSE(s->verify_batch(checks()));
}

INSTANTIATE_TEST_SUITE_P(AllSuites, SuiteTest,
                         ::testing::Values("ed25519", "sim"),
                         [](const auto& info) { return info.param; });

TEST(SuiteNames, AreDistinct) {
  EXPECT_EQ(make_ed25519_suite()->name(), "ed25519");
  EXPECT_EQ(make_sim_suite()->name(), "sim");
}

}  // namespace
}  // namespace probft::crypto
