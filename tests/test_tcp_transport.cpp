// TCP transport tests over real loopback sockets: basic delivery, late
// peer startup (reconnect-on-failure), and full n=4 consensus runs through
// the same run_scenario_tcp() harness `scenario_runner --transport
// tcp-loopback` uses. All wall-clock bounded well below the ctest timeout.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>
#include <utility>
#include <vector>

#include "net/frame.hpp"
#include "net/tcp_transport.hpp"
#include "sim/tcp_runner.hpp"

namespace probft {
namespace {

using net::PeerAddress;
using net::TcpTransport;
using net::TcpTransportConfig;

std::unique_ptr<TcpTransport> make_node(ReplicaId self, std::uint32_t n) {
  TcpTransportConfig cfg;
  cfg.self = self;
  cfg.n = n;
  cfg.listen_host = "127.0.0.1";
  cfg.listen_port = 0;  // ephemeral
  return std::make_unique<TcpTransport>(std::move(cfg));
}

void cross_wire(std::vector<std::unique_ptr<TcpTransport>>& nodes) {
  for (std::size_t i = 1; i < nodes.size(); ++i) {
    for (std::size_t j = 1; j < nodes.size(); ++j) {
      nodes[i]->set_peer(static_cast<ReplicaId>(j),
                         PeerAddress{"127.0.0.1", nodes[j]->listen_port()});
    }
  }
}

TEST(TcpTransport, PairDelivery) {
  std::vector<std::unique_ptr<TcpTransport>> nodes(3);
  nodes[1] = make_node(1, 2);
  nodes[2] = make_node(2, 2);
  cross_wire(nodes);

  std::atomic<int> received{0};
  Bytes seen;
  nodes[2]->register_handler(
      2, [&](ReplicaId from, std::uint8_t tag, const Bytes& payload) {
        EXPECT_EQ(from, 1U);
        EXPECT_EQ(tag, 7);
        seen = payload;
        received.fetch_add(1);
      });

  std::thread receiver([&]() {
    nodes[2]->run_until([&]() { return received.load() >= 1; },
                        /*max_wall=*/10'000'000);
  });
  nodes[1]->send(1, 2, 7, to_bytes("over-the-wire"));
  nodes[1]->run_until([&]() { return received.load() >= 1; }, 10'000'000);
  receiver.join();

  EXPECT_EQ(received.load(), 1);
  EXPECT_EQ(seen, to_bytes("over-the-wire"));
  EXPECT_EQ(nodes[1]->stats().sends, 1U);
  EXPECT_EQ(nodes[2]->stats().delivered, 1U);
}

// Regression (lock-discipline audit): stop() used to only flip the atomic,
// so a loop parked in poll(2) with no timers kept sleeping until the 50 ms
// idle timeout expired. stop() now also writes the wake pipe; a freshly
// parked loop must return well before that timeout. Best-of-N guards
// against a scheduler hiccup failing the test spuriously.
TEST(TcpTransport, CrossThreadStopWakesParkedLoop) {
  using Clock = std::chrono::steady_clock;
  auto best = std::chrono::milliseconds(1000);
  for (int run = 0; run < 3; ++run) {
    auto node = make_node(1, 1);
    std::thread loop([&]() {
      node->run_until([]() { return false; }, /*max_wall=*/5'000'000);
    });
    // Let the loop enter poll(2); with no timers its idle timeout is 50 ms,
    // so after 10 ms it still has ~40 ms of sleep left ahead of it.
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    const auto t0 = Clock::now();
    node->stop();
    loop.join();
    const auto elapsed =
        std::chrono::duration_cast<std::chrono::milliseconds>(Clock::now() -
                                                              t0);
    best = std::min(best, elapsed);
  }
  EXPECT_LT(best.count(), 25);
}

TEST(TcpTransport, SelfSendIsAsynchronousButDelivered) {
  auto node = make_node(1, 2);
  node->set_peer(1, PeerAddress{"127.0.0.1", node->listen_port()});
  bool got = false;
  node->register_handler(1,
                         [&](ReplicaId from, std::uint8_t tag, const Bytes&) {
                           EXPECT_EQ(from, 1U);
                           EXPECT_EQ(tag, 1);
                           got = true;
                         });
  node->send(1, 1, 1, to_bytes("note-to-self"));
  EXPECT_FALSE(got);  // never delivered reentrantly
  node->run_until([&]() { return got; }, 5'000'000);
  EXPECT_TRUE(got);
}

TEST(TcpTransport, QueuesUntilPeerComesUpLate) {
  // Node 1 sends while node 2 does not exist yet: the message queues, the
  // dial fails, and a later retry delivers once node 2 binds and runs.
  auto first = make_node(1, 2);
  // A port that is almost certainly closed right now: bind+close one.
  std::uint16_t port = 0;
  {
    auto probe = make_node(2, 2);
    port = probe->listen_port();
  }
  first->set_peer(2, PeerAddress{"127.0.0.1", port});
  first->send(1, 2, 9, to_bytes("early"));
  // Give the first dial time to fail (reconnect timer arms).
  first->run_until(nullptr, 150'000);

  // Now bring node 2 up on that exact port.
  TcpTransportConfig cfg;
  cfg.self = 2;
  cfg.n = 2;
  cfg.listen_host = "127.0.0.1";
  cfg.listen_port = port;
  TcpTransport second(std::move(cfg));
  std::atomic<bool> got{false};
  second.register_handler(
      2, [&](ReplicaId from, std::uint8_t, const Bytes& payload) {
        EXPECT_EQ(from, 1U);
        EXPECT_EQ(payload, to_bytes("early"));
        got.store(true);
      });

  std::thread receiver([&]() {
    second.run_until([&]() { return got.load(); }, 10'000'000);
  });
  first->run_until([&]() { return got.load(); }, 10'000'000);
  receiver.join();
  EXPECT_TRUE(got.load());
  EXPECT_GE(first->connects(), 1U);
}

TEST(TcpTransport, OversizePayloadIsDroppedAtTheSender) {
  // A frame the receiver's decoder would poison on must never be sent:
  // the sender counts it dropped instead of livelocking the link with
  // endless reconnect + identical-resend cycles.
  TcpTransportConfig cfg;
  cfg.self = 1;
  cfg.n = 2;
  cfg.listen_host = "127.0.0.1";
  cfg.max_frame_payload = 1024;
  TcpTransport node(std::move(cfg));
  node.set_peer(2, PeerAddress{"127.0.0.1", 1});
  node.send(1, 2, 1, Bytes(2048, 0xaa));
  EXPECT_EQ(node.stats().sends, 1U);  // the logical send was attempted
  EXPECT_EQ(node.stats().dropped, 1U);
  node.send(1, 2, 1, Bytes(512, 0xbb));  // within the cap: queues fine
  EXPECT_EQ(node.stats().dropped, 1U);
}

// ---- sender binding (anti-spoofing) ----

// Dials the node's peer listener with a raw socket, as a hostile process
// that is not a well-behaved TcpTransport would.
int raw_dial(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  timeval tv{5, 0};
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  return fd;
}

TEST(TcpTransport, InboundConnectionIsBoundToFirstClaimedSender) {
  // One socket may not speak for several replica ids. Before the binding
  // fix, a single Byzantine peer could stamp frames with every id over one
  // connection and counterfeit "f+1 distinct senders" for unsigned
  // traffic; now the first valid frame pins the connection and any later
  // mismatch kills the stream.
  auto node = make_node(1, 4);
  std::vector<std::pair<ReplicaId, Bytes>> got;
  node->register_handler(
      1, [&](ReplicaId from, std::uint8_t, const Bytes& payload) {
        got.emplace_back(from, payload);
      });

  const int fd = raw_dial(node->listen_port());
  ASSERT_GE(fd, 0);

  Bytes stream;
  const auto push = [&](ReplicaId sender, const char* text) {
    const Bytes payload = to_bytes(text);
    const Bytes frame = net::encode_frame(
        sender, 7, ByteSpan(payload.data(), payload.size()));
    stream.insert(stream.end(), frame.begin(), frame.end());
  };
  push(2, "voucher-a");      // first valid frame: binds the stream to 2
  push(2, "voucher-b");      // same claimed sender: delivered
  push(3, "forged");         // impersonates another replica: kills the stream
  push(2, "after-forgery");  // even the bound id gets nothing afterwards
  ASSERT_EQ(::send(fd, stream.data(), stream.size(), 0),
            static_cast<ssize_t>(stream.size()));

  node->run_until([&]() { return node->stats().dropped >= 1; }, 10'000'000);

  ASSERT_EQ(got.size(), 2U);
  EXPECT_EQ(got[0].first, 2U);
  EXPECT_EQ(got[0].second, to_bytes("voucher-a"));
  EXPECT_EQ(got[1].first, 2U);
  EXPECT_EQ(got[1].second, to_bytes("voucher-b"));
  EXPECT_EQ(node->stats().delivered, 2U);
  EXPECT_EQ(node->stats().dropped, 1U);

  // The transport hung up on the mismatch: the attacker sees EOF.
  char buf[16];
  EXPECT_EQ(::recv(fd, buf, sizeof(buf), 0), 0);
  ::close(fd);
}

TEST(TcpTransport, InboundFrameWithBogusSenderIsRejectedOutright) {
  // A first frame claiming the receiver's own id, id 0, or an id beyond n
  // never binds and never reaches the handler.
  for (const std::uint32_t claimed : {1U, 0U, 9U}) {
    auto node = make_node(1, 4);
    std::atomic<int> delivered{0};
    node->register_handler(
        1, [&](ReplicaId, std::uint8_t, const Bytes&) { ++delivered; });

    const int fd = raw_dial(node->listen_port());
    ASSERT_GE(fd, 0);
    const Bytes payload = to_bytes("spoof");
    const Bytes frame = net::encode_frame(
        claimed, 7, ByteSpan(payload.data(), payload.size()));
    ASSERT_EQ(::send(fd, frame.data(), frame.size(), 0),
              static_cast<ssize_t>(frame.size()));

    node->run_until([&]() { return node->stats().dropped >= 1; },
                    10'000'000);
    EXPECT_EQ(delivered.load(), 0) << "claimed sender " << claimed;
    EXPECT_EQ(node->stats().dropped, 1U) << "claimed sender " << claimed;

    char buf[8];
    EXPECT_EQ(::recv(fd, buf, sizeof(buf), 0), 0)
        << "claimed sender " << claimed;
    ::close(fd);
  }
}

TEST(TcpTransport, TimersFireInOrder) {
  auto node = make_node(1, 2);
  std::vector<int> order;
  node->set_timer(30'000, [&]() { order.push_back(3); });
  node->set_timer(10'000, [&]() { order.push_back(1); });
  node->set_timer(20'000, [&]() { order.push_back(2); });
  node->run_until([&]() { return order.size() == 3; }, 5'000'000);
  ASSERT_EQ(order.size(), 3U);
  EXPECT_EQ(order[0], 1);
  EXPECT_EQ(order[1], 2);
  EXPECT_EQ(order[2], 3);
}

// ---- full consensus over real sockets ----

sim::ScenarioSpec loopback_spec(sim::Protocol protocol) {
  sim::ScenarioSpec spec;
  spec.protocol = protocol;
  spec.n = 4;
  spec.f = 0;
  spec.l = 1.2;  // q = ceil(1.2·2) = 3 of 4: satisfiable sample
  spec.fault = sim::Fault::kNone;
  spec.deadline = 20'000'000;  // 20 s wall cap, typical run ≪ 1 s
  return spec;
}

TEST(TcpCluster, FourNodeProbftDecidesOverRealSockets) {
  const auto outcome = sim::run_scenario_tcp(loopback_spec(
      sim::Protocol::kProbft), /*seed=*/1);
  EXPECT_TRUE(outcome.terminated)
      << outcome.decided << "/" << outcome.correct << " decided";
  EXPECT_TRUE(outcome.agreement);
  EXPECT_EQ(outcome.decided, 4U);
  EXPECT_GT(outcome.messages, 0U);
  EXPECT_GT(outcome.bytes, 0U);
}

TEST(TcpCluster, FourNodePbftAndHotstuffDecide) {
  for (const auto protocol :
       {sim::Protocol::kPbft, sim::Protocol::kHotStuff}) {
    const auto outcome =
        sim::run_scenario_tcp(loopback_spec(protocol), /*seed=*/1);
    EXPECT_TRUE(outcome.terminated);
    EXPECT_TRUE(outcome.agreement);
  }
}

TEST(TcpCluster, SilentLeaderViewChangesOverRealSockets) {
  sim::ScenarioSpec spec = loopback_spec(sim::Protocol::kProbft);
  spec.f = 1;
  spec.fault = sim::Fault::kSilentLeader;
  const auto outcome = sim::run_scenario_tcp(spec, /*seed=*/1);
  EXPECT_TRUE(outcome.terminated);
  EXPECT_TRUE(outcome.agreement);
  EXPECT_EQ(outcome.decided, 3U);  // the silent leader never decides
  EXPECT_GE(outcome.max_view, 2U);  // a real view change happened
}

TEST(TcpRunner, RejectsSimulatorOnlyFaults) {
  sim::ScenarioSpec spec = loopback_spec(sim::Protocol::kProbft);
  spec.fault = sim::Fault::kEquivocate;
  EXPECT_FALSE(sim::tcp_fault_supported(spec.fault));
  EXPECT_THROW((void)sim::run_scenario_tcp(spec, 1), std::invalid_argument);
}

// ---- write batching (sendmsg/iovec coalescing) ----

TEST(TcpBatching, BurstCoalescesIntoFewSyscallsInOrder) {
  constexpr int kFrames = 200;
  std::vector<std::unique_ptr<TcpTransport>> nodes(3);
  nodes[1] = make_node(1, 2);
  nodes[2] = make_node(2, 2);
  cross_wire(nodes);

  std::atomic<int> received{0};
  int misordered = 0;
  nodes[2]->register_handler(
      2, [&](ReplicaId, std::uint8_t tag, const Bytes& payload) {
        const int expect = received.load();
        if (tag != static_cast<std::uint8_t>(expect & 0xff) ||
            payload != to_bytes("frame-" + std::to_string(expect))) {
          ++misordered;
        }
        received.fetch_add(1);
      });

  // Queue the whole burst inside one loop iteration (a timer callback),
  // the way a protocol broadcast fan-out queues frames: flush_dirty then
  // writes the burst with a handful of gathered sendmsg calls.
  nodes[1]->set_timer(0, [&]() {
    for (int i = 0; i < kFrames; ++i) {
      nodes[1]->send(1, 2, static_cast<std::uint8_t>(i & 0xff),
                     to_bytes("frame-" + std::to_string(i)));
    }
  });

  std::thread receiver([&]() {
    nodes[2]->run_until([&]() { return received.load() >= kFrames; },
                        20'000'000);
  });
  nodes[1]->run_until([&]() { return received.load() >= kFrames; },
                      20'000'000);
  receiver.join();

  EXPECT_EQ(received.load(), kFrames);
  EXPECT_EQ(misordered, 0);
  EXPECT_EQ(nodes[1]->frames_flushed(), static_cast<std::uint64_t>(kFrames));
  // 200 small frames queued in one iteration must not cost 200 syscalls;
  // with 64-iovec gathers the burst fits in a handful.
  EXPECT_LE(nodes[1]->flush_syscalls(), 20U);
}

TEST(TcpBatching, PartialWriteMidIovecLosesNothing) {
  // Frames far larger than the socket buffer force sendmsg to stop
  // mid-iovec; the progress accounting must resume exactly where the
  // kernel stopped — every frame arrives intact, in order, exactly once.
  constexpr int kFrames = 40;
  constexpr std::size_t kFrameLen = 128u << 10;  // 5 MiB total
  std::vector<std::unique_ptr<TcpTransport>> nodes(3);
  nodes[1] = make_node(1, 2);
  nodes[2] = make_node(2, 2);
  cross_wire(nodes);

  std::atomic<int> received{0};
  int corrupted = 0;
  nodes[2]->register_handler(
      2, [&](ReplicaId, std::uint8_t, const Bytes& payload) {
        const int i = received.load();
        bool ok = payload.size() == kFrameLen;
        for (std::size_t j = 0; ok && j < payload.size(); j += 4097) {
          ok = payload[j] == static_cast<std::uint8_t>(i * 31 + j);
        }
        if (!ok) ++corrupted;
        received.fetch_add(1);
      });

  nodes[1]->set_timer(0, [&]() {
    for (int i = 0; i < kFrames; ++i) {
      Bytes payload(kFrameLen);
      for (std::size_t j = 0; j < kFrameLen; ++j) {
        payload[j] = static_cast<std::uint8_t>(i * 31 + j);
      }
      nodes[1]->send(1, 2, 5, std::move(payload));
    }
  });

  std::thread receiver([&]() {
    nodes[2]->run_until([&]() { return received.load() >= kFrames; },
                        30'000'000);
  });
  nodes[1]->run_until([&]() { return received.load() >= kFrames; },
                      30'000'000);
  receiver.join();

  EXPECT_EQ(received.load(), kFrames);
  EXPECT_EQ(corrupted, 0);
  EXPECT_EQ(nodes[1]->frames_flushed(), static_cast<std::uint64_t>(kFrames));
}

TEST(TcpBatching, PostWakesTheLoopFromAnotherThread) {
  auto node = make_node(1, 2);
  std::atomic<bool> ran{false};
  std::thread poster([&]() {
    // Let the loop park in poll() first, then post from outside.
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    node->post([&ran]() { ran.store(true); });
  });
  const bool done =
      node->run_until([&]() { return ran.load(); }, 5'000'000);
  poster.join();
  EXPECT_TRUE(done);
  EXPECT_TRUE(ran.load());
}

}  // namespace
}  // namespace probft
