#include "crypto/sampler.hpp"

#include <gtest/gtest.h>

#include <set>

#include "common/bytes.hpp"

namespace probft::crypto {
namespace {

class SamplerTest : public ::testing::TestWithParam<const char*> {
 protected:
  std::unique_ptr<CryptoSuite> suite() const {
    if (std::string(GetParam()) == "ed25519") return make_ed25519_suite();
    return make_sim_suite();
  }
};

TEST_P(SamplerTest, SampleHasRequestedShape) {
  const auto s = suite();
  const auto kp = s->keygen(5);
  const auto alpha = sample_alpha(3, "prepare");
  const auto result = vrf_sample(*s, kp.secret_key, alpha, 100, 20);
  EXPECT_EQ(result.sample.size(), 20U);
  std::set<ReplicaId> unique(result.sample.begin(), result.sample.end());
  EXPECT_EQ(unique.size(), 20U);
  for (auto id : result.sample) {
    EXPECT_GE(id, 1U);
    EXPECT_LE(id, 100U);
  }
  EXPECT_TRUE(std::is_sorted(result.sample.begin(), result.sample.end()));
}

TEST_P(SamplerTest, SampleVerifies) {
  const auto s = suite();
  const auto kp = s->keygen(5);
  const auto alpha = sample_alpha(3, "prepare");
  const auto result = vrf_sample(*s, kp.secret_key, alpha, 50, 10);
  EXPECT_TRUE(vrf_sample_verify(*s, kp.public_key, alpha, 50, 10,
                                result.sample, result.proof));
}

TEST_P(SamplerTest, VerifyRejectsAlteredSample) {
  const auto s = suite();
  const auto kp = s->keygen(5);
  const auto alpha = sample_alpha(3, "prepare");
  auto result = vrf_sample(*s, kp.secret_key, alpha, 50, 10);
  // Swap one member for another id not in the sample.
  std::set<ReplicaId> members(result.sample.begin(), result.sample.end());
  for (ReplicaId candidate = 1; candidate <= 50; ++candidate) {
    if (!members.contains(candidate)) {
      result.sample[0] = candidate;
      break;
    }
  }
  std::sort(result.sample.begin(), result.sample.end());
  EXPECT_FALSE(vrf_sample_verify(*s, kp.public_key, alpha, 50, 10,
                                 result.sample, result.proof));
}

TEST_P(SamplerTest, VerifyRejectsWrongPhaseAlpha) {
  const auto s = suite();
  const auto kp = s->keygen(5);
  const auto result =
      vrf_sample(*s, kp.secret_key, sample_alpha(3, "prepare"), 50, 10);
  EXPECT_FALSE(vrf_sample_verify(*s, kp.public_key, sample_alpha(3, "commit"),
                                 50, 10, result.sample, result.proof));
}

TEST_P(SamplerTest, VerifyRejectsForeignProof) {
  const auto s = suite();
  const auto kp1 = s->keygen(1);
  const auto kp2 = s->keygen(2);
  const auto alpha = sample_alpha(1, "commit");
  const auto result = vrf_sample(*s, kp1.secret_key, alpha, 50, 10);
  // A Byzantine replica cannot claim another replica's sample as its own.
  EXPECT_FALSE(vrf_sample_verify(*s, kp2.public_key, alpha, 50, 10,
                                 result.sample, result.proof));
}

TEST_P(SamplerTest, PhasesProduceDifferentSamples) {
  const auto s = suite();
  const auto kp = s->keygen(5);
  const auto prep =
      vrf_sample(*s, kp.secret_key, sample_alpha(9, "prepare"), 200, 30);
  const auto comm =
      vrf_sample(*s, kp.secret_key, sample_alpha(9, "commit"), 200, 30);
  EXPECT_NE(prep.sample, comm.sample);
}

TEST_P(SamplerTest, ViewsProduceDifferentSamples) {
  const auto s = suite();
  const auto kp = s->keygen(5);
  const auto v1 =
      vrf_sample(*s, kp.secret_key, sample_alpha(1, "prepare"), 200, 30);
  const auto v2 =
      vrf_sample(*s, kp.secret_key, sample_alpha(2, "prepare"), 200, 30);
  EXPECT_NE(v1.sample, v2.sample);
}

INSTANTIATE_TEST_SUITE_P(AllSuites, SamplerTest,
                         ::testing::Values("ed25519", "sim"),
                         [](const auto& info) { return info.param; });

TEST(SampleAlpha, EncodesViewAndPhase) {
  EXPECT_NE(sample_alpha(1, "prepare"), sample_alpha(2, "prepare"));
  EXPECT_NE(sample_alpha(1, "prepare"), sample_alpha(1, "commit"));
}

TEST(ExpandSample, DeterministicAndUniform) {
  const Bytes randomness(32, 0x42);
  const auto a = expand_sample(randomness, 100, 15);
  const auto b = expand_sample(randomness, 100, 15);
  EXPECT_EQ(a, b);

  // Inclusion frequency across many distinct randomness values ~ k/n.
  constexpr std::uint32_t n = 30, k = 6;
  constexpr int kTrials = 6000;
  std::vector<int> counts(n + 1, 0);
  for (int t = 0; t < kTrials; ++t) {
    Bytes r(32, 0);
    r[0] = static_cast<std::uint8_t>(t);
    r[1] = static_cast<std::uint8_t>(t >> 8);
    r[2] = static_cast<std::uint8_t>(t >> 16);
    for (auto id : expand_sample(r, n, k)) counts[id]++;
  }
  const double expected = static_cast<double>(kTrials) * k / n;
  for (std::uint32_t id = 1; id <= n; ++id) {
    EXPECT_GT(counts[id], expected * 0.85) << "id " << id;
    EXPECT_LT(counts[id], expected * 1.15) << "id " << id;
  }
}

}  // namespace
}  // namespace probft::crypto
