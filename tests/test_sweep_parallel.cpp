// Parallel Monte-Carlo sweep engine (src/sim/sweep.hpp).
//
// The load-bearing property: the parallel runner must produce the SAME
// per-seed outcome as the serial run_scenario() path — bit-identical
// decision transcripts and message/byte counts — for any worker count.
// Plus: wall-clock-budget accounting stays consistent, and the JSON stats
// report carries the documented schema.
#include <gtest/gtest.h>

#include "sim/sweep.hpp"

namespace probft::sim {
namespace {

std::vector<ScenarioSpec> small_matrix() {
  ScenarioSpec base = conformance_base_spec();
  base.n = 8;
  base.f = 1;
  const std::vector<Fault> faults = {Fault::kNone, Fault::kSilentLeader,
                                     Fault::kChurnRecovery,
                                     Fault::kReorderAdversary};
  return expand_matrix(all_protocols(), faults, {1, 2, 3}, base);
}

TEST(SweepParallel, ParallelMatchesSerialPerSeed) {
  const auto specs = small_matrix();
  ASSERT_FALSE(specs.empty());

  SweepConfig config;
  config.jobs = 4;
  const SweepReport report = run_sweep(specs, config);
  ASSERT_EQ(report.stats.size(), specs.size());
  EXPECT_EQ(report.items_run, report.items_total);
  EXPECT_EQ(report.items_skipped, 0U);

  for (std::size_t s = 0; s < specs.size(); ++s) {
    const SpecStats& stats = report.stats[s];
    ASSERT_EQ(stats.outcomes.size(), specs[s].seeds.size())
        << scenario_name(specs[s]);
    for (std::size_t i = 0; i < specs[s].seeds.size(); ++i) {
      const ScenarioOutcome serial =
          run_scenario(specs[s], specs[s].seeds[i]);
      const ScenarioOutcome& parallel = stats.outcomes[i];
      EXPECT_EQ(parallel.seed, serial.seed);
      EXPECT_EQ(parallel.transcript, serial.transcript)
          << scenario_name(specs[s]) << " seed " << serial.seed;
      EXPECT_EQ(parallel.messages, serial.messages);
      EXPECT_EQ(parallel.bytes, serial.bytes);
      EXPECT_EQ(parallel.events, serial.events);
      EXPECT_EQ(parallel.terminated, serial.terminated);
      EXPECT_EQ(parallel.agreement, serial.agreement);
    }
  }
}

TEST(SweepParallel, SingleJobMatchesManyJobs) {
  ScenarioSpec spec = conformance_base_spec();
  spec.n = 8;
  spec.f = 1;
  spec.seeds = {5, 6, 7, 8};

  SweepConfig serial_cfg;
  serial_cfg.jobs = 1;
  SweepConfig parallel_cfg;
  parallel_cfg.jobs = 8;

  const SweepReport a = run_sweep({spec}, serial_cfg);
  const SweepReport b = run_sweep({spec}, parallel_cfg);
  ASSERT_EQ(a.stats.size(), 1U);
  ASSERT_EQ(b.stats.size(), 1U);
  ASSERT_EQ(a.stats[0].outcomes.size(), b.stats[0].outcomes.size());
  for (std::size_t i = 0; i < a.stats[0].outcomes.size(); ++i) {
    EXPECT_EQ(a.stats[0].outcomes[i].transcript,
              b.stats[0].outcomes[i].transcript);
  }
  EXPECT_EQ(a.stats[0].messages, b.stats[0].messages);
  EXPECT_EQ(a.stats[0].latency_p50, b.stats[0].latency_p50);
  EXPECT_EQ(a.stats[0].latency_max, b.stats[0].latency_max);
}

TEST(SweepParallel, AggregatesTerminationAndLatency) {
  ScenarioSpec spec = conformance_base_spec();
  spec.n = 8;
  spec.f = 1;
  spec.seeds = {1, 2, 3, 4, 5};

  const SweepReport report = run_sweep({spec}, SweepConfig{});
  ASSERT_EQ(report.stats.size(), 1U);
  const SpecStats& stats = report.stats[0];
  EXPECT_EQ(stats.runs, 5U);
  EXPECT_EQ(stats.terminated, 5U);
  EXPECT_DOUBLE_EQ(stats.termination_rate(), 1.0);
  EXPECT_EQ(stats.agreement_violations, 0U);
  EXPECT_GT(stats.messages, 0U);
  EXPECT_GT(stats.events, 0U);
  // Quantiles are drawn from the observed latencies, so they are ordered
  // and bracketed by the max.
  EXPECT_GT(stats.latency_p50, 0U);
  EXPECT_LE(stats.latency_p50, stats.latency_p90);
  EXPECT_LE(stats.latency_p90, stats.latency_p99);
  EXPECT_LE(stats.latency_p99, stats.latency_max);
  EXPECT_TRUE(report.all_agreement());
  EXPECT_TRUE(report.termination_expectations_met());
}

TEST(SweepParallel, BudgetAccountingStaysConsistent) {
  ScenarioSpec spec = conformance_base_spec();
  spec.n = 8;
  spec.f = 1;
  spec.seeds.assign(64, 0);
  for (std::size_t i = 0; i < spec.seeds.size(); ++i) spec.seeds[i] = i + 1;

  SweepConfig config;
  config.jobs = 2;
  config.budget_seconds = 1e-9;  // expires immediately: nothing scheduled
  const SweepReport report = run_sweep({spec}, config);
  EXPECT_EQ(report.items_total, 64U);
  EXPECT_EQ(report.items_run + report.items_skipped, report.items_total);
  EXPECT_EQ(report.stats[0].runs, report.items_run);
  EXPECT_EQ(report.stats[0].outcomes.size(), report.items_run);
  EXPECT_GT(report.budget_seconds, 0.0);
}

TEST(SweepParallel, ZeroBudgetMeansUnlimited) {
  ScenarioSpec spec = conformance_base_spec();
  spec.n = 8;
  spec.f = 1;
  spec.seeds = {1, 2};

  SweepConfig config;
  config.budget_seconds = 0.0;
  const SweepReport report = run_sweep({spec}, config);
  EXPECT_EQ(report.items_run, 2U);
  EXPECT_EQ(report.items_skipped, 0U);
}

TEST(SweepParallel, ZeroJobsResolvesToHardwareConcurrency) {
  ScenarioSpec spec = conformance_base_spec();
  spec.n = 8;
  spec.f = 1;
  spec.seeds = {1};

  SweepConfig config;
  config.jobs = 0;
  const SweepReport report = run_sweep({spec}, config);
  EXPECT_GE(report.jobs, 1U);
  EXPECT_EQ(report.items_run, 1U);
}

TEST(SweepParallel, DropOutcomesKeepsAggregates) {
  ScenarioSpec spec = conformance_base_spec();
  spec.n = 8;
  spec.f = 1;
  spec.seeds = {1, 2};

  SweepConfig config;
  config.keep_outcomes = false;
  const SweepReport report = run_sweep({spec}, config);
  EXPECT_TRUE(report.stats[0].outcomes.empty());
  EXPECT_EQ(report.stats[0].runs, 2U);
  EXPECT_GT(report.stats[0].messages, 0U);
}

TEST(SweepParallel, JsonReportCarriesSchema) {
  ScenarioSpec spec = conformance_base_spec();
  spec.n = 8;
  spec.f = 1;
  spec.seeds = {1};

  const SweepReport report = run_sweep({spec}, SweepConfig{});
  const std::string json = to_json(report);
  for (const char* key :
       {"\"jobs\"", "\"budget_seconds\"", "\"wall_seconds\"", "\"items\"",
        "\"specs\"", "\"name\"", "\"termination_rate\"",
        "\"agreement_violations\"", "\"latency_us\"", "\"p50\"", "\"p99\"",
        "\"events\"", "\"expect_termination\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << "missing " << key;
  }
  EXPECT_NE(json.find("probft/n8f1/happy/synchronous"), std::string::npos);
}

}  // namespace
}  // namespace probft::sim
