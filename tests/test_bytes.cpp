#include "common/bytes.hpp"

#include <gtest/gtest.h>

namespace probft {
namespace {

TEST(Bytes, HexRoundtrip) {
  const Bytes data = {0x00, 0x01, 0xab, 0xff, 0x7f};
  EXPECT_EQ(to_hex(data), "0001abff7f");
  EXPECT_EQ(from_hex("0001abff7f"), data);
  EXPECT_EQ(from_hex("0001ABFF7F"), data);
}

TEST(Bytes, HexEmpty) {
  EXPECT_EQ(to_hex(Bytes{}), "");
  EXPECT_TRUE(from_hex("").empty());
}

TEST(Bytes, HexRejectsOddLength) {
  EXPECT_THROW(from_hex("abc"), std::invalid_argument);
}

TEST(Bytes, HexRejectsNonHexDigits) {
  EXPECT_THROW(from_hex("zz"), std::invalid_argument);
  EXPECT_THROW(from_hex("0g"), std::invalid_argument);
}

TEST(Bytes, ToBytes) {
  const Bytes expected = {'h', 'i'};
  EXPECT_EQ(to_bytes("hi"), expected);
}

TEST(Bytes, Concatenation) {
  const Bytes a = {1, 2};
  const Bytes b = {3};
  const Bytes expected = {1, 2, 3};
  EXPECT_EQ(a + b, expected);
}

TEST(Bytes, CtEqual) {
  const Bytes a = {1, 2, 3};
  const Bytes b = {1, 2, 3};
  const Bytes c = {1, 2, 4};
  const Bytes d = {1, 2};
  EXPECT_TRUE(ct_equal(a, b));
  EXPECT_FALSE(ct_equal(a, c));
  EXPECT_FALSE(ct_equal(a, d));
}

}  // namespace
}  // namespace probft
