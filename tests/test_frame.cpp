// Wire-framing tests: round-trips, hostile streams (truncation, oversize
// lengths, garbage versions) and partial-read reassembly — the properties
// the TCP transport relies on to survive arbitrary bytes from the network.
#include <gtest/gtest.h>

#include "net/frame.hpp"

namespace probft::net {
namespace {

Bytes payload_of(std::size_t size, std::uint8_t fill = 0xab) {
  return Bytes(size, fill);
}

TEST(Frame, EncodeLayout) {
  const Bytes payload = to_bytes("hi");
  const Bytes wire = encode_frame(/*sender=*/7, /*tag=*/3,
                                  ByteSpan(payload.data(), payload.size()));
  ASSERT_EQ(wire.size(), 4 + kFrameHeaderBytes + 2);
  // Length covers version + sender + tag + payload, little-endian.
  EXPECT_EQ(wire[0], kFrameHeaderBytes + 2);
  EXPECT_EQ(wire[1], 0);
  EXPECT_EQ(wire[2], 0);
  EXPECT_EQ(wire[3], 0);
  EXPECT_EQ(wire[4], kFrameVersion);
  EXPECT_EQ(wire[5], 7);  // sender LE
  EXPECT_EQ(wire[9], 3);  // tag
  EXPECT_EQ(wire[10], 'h');
}

TEST(Frame, RoundTripSingle) {
  const Bytes payload = to_bytes("payload-bytes");
  const Bytes wire = encode_frame(42, 9, ByteSpan(payload.data(),
                                                  payload.size()));
  FrameDecoder decoder;
  decoder.feed(ByteSpan(wire.data(), wire.size()));
  Frame frame;
  ASSERT_EQ(decoder.next(frame), FrameDecoder::Status::kFrame);
  EXPECT_EQ(frame.sender, 42U);
  EXPECT_EQ(frame.tag, 9);
  EXPECT_EQ(frame.payload, payload);
  EXPECT_EQ(decoder.next(frame), FrameDecoder::Status::kNeedMore);
  EXPECT_EQ(decoder.buffered(), 0U);
}

TEST(Frame, RoundTripEmptyPayload) {
  const Bytes wire = encode_frame(1, 0, {});
  FrameDecoder decoder;
  decoder.feed(ByteSpan(wire.data(), wire.size()));
  Frame frame;
  ASSERT_EQ(decoder.next(frame), FrameDecoder::Status::kFrame);
  EXPECT_EQ(frame.sender, 1U);
  EXPECT_TRUE(frame.payload.empty());
}

TEST(Frame, ManyFramesOneFeed) {
  Bytes wire;
  for (std::uint8_t i = 0; i < 10; ++i) {
    const Bytes payload = payload_of(i * 17, i);
    const Bytes one =
        encode_frame(i + 1, i, ByteSpan(payload.data(), payload.size()));
    wire.insert(wire.end(), one.begin(), one.end());
  }
  FrameDecoder decoder;
  decoder.feed(ByteSpan(wire.data(), wire.size()));
  Frame frame;
  for (std::uint8_t i = 0; i < 10; ++i) {
    ASSERT_EQ(decoder.next(frame), FrameDecoder::Status::kFrame) << int(i);
    EXPECT_EQ(frame.sender, i + 1U);
    EXPECT_EQ(frame.tag, i);
    EXPECT_EQ(frame.payload.size(), i * 17U);
  }
  EXPECT_EQ(decoder.next(frame), FrameDecoder::Status::kNeedMore);
}

TEST(Frame, PartialReadReassembly) {
  // Feed one frame a single byte at a time: no prefix may yield a frame,
  // the full stream must yield exactly the original.
  const Bytes payload = payload_of(100, 0x5c);
  const Bytes wire = encode_frame(3, 8, ByteSpan(payload.data(),
                                                 payload.size()));
  FrameDecoder decoder;
  Frame frame;
  for (std::size_t i = 0; i + 1 < wire.size(); ++i) {
    decoder.feed(ByteSpan(&wire[i], 1));
    ASSERT_EQ(decoder.next(frame), FrameDecoder::Status::kNeedMore) << i;
  }
  decoder.feed(ByteSpan(&wire[wire.size() - 1], 1));
  ASSERT_EQ(decoder.next(frame), FrameDecoder::Status::kFrame);
  EXPECT_EQ(frame.sender, 3U);
  EXPECT_EQ(frame.payload, payload);
}

TEST(Frame, ReassemblyAcrossChunkBoundaries) {
  // Two frames split at an arbitrary mid-frame boundary.
  const Bytes a = encode_frame(1, 1, payload_of(33, 1));
  const Bytes b = encode_frame(2, 2, payload_of(77, 2));
  Bytes wire = a;
  wire.insert(wire.end(), b.begin(), b.end());

  for (std::size_t split = 1; split < wire.size(); split += 7) {
    FrameDecoder decoder;
    decoder.feed(ByteSpan(wire.data(), split));
    decoder.feed(ByteSpan(wire.data() + split, wire.size() - split));
    Frame frame;
    ASSERT_EQ(decoder.next(frame), FrameDecoder::Status::kFrame) << split;
    EXPECT_EQ(frame.sender, 1U);
    ASSERT_EQ(decoder.next(frame), FrameDecoder::Status::kFrame) << split;
    EXPECT_EQ(frame.sender, 2U);
    EXPECT_EQ(decoder.next(frame), FrameDecoder::Status::kNeedMore);
  }
}

TEST(Frame, TruncatedStreamNeverYields) {
  // A frame cut anywhere stays kNeedMore forever — truncation is loss, not
  // corruption (the connection owner decides what to do on EOF).
  const Bytes wire = encode_frame(5, 5, payload_of(64));
  FrameDecoder decoder;
  decoder.feed(ByteSpan(wire.data(), wire.size() - 1));
  Frame frame;
  EXPECT_EQ(decoder.next(frame), FrameDecoder::Status::kNeedMore);
  EXPECT_FALSE(decoder.corrupted());
  EXPECT_GT(decoder.buffered(), 0U);
}

TEST(Frame, UndersizeLengthPoisons) {
  // length < header size can never frame a valid message.
  Bytes wire = {5, 0, 0, 0, kFrameVersion, 1, 0, 0, 0};
  FrameDecoder decoder;
  decoder.feed(ByteSpan(wire.data(), wire.size()));
  Frame frame;
  EXPECT_EQ(decoder.next(frame), FrameDecoder::Status::kError);
  EXPECT_TRUE(decoder.corrupted());
}

TEST(Frame, OversizeLengthPoisons) {
  // A hostile length field (here ~4 GiB) must poison the stream before any
  // allocation of that size happens.
  Bytes wire = {0xff, 0xff, 0xff, 0xff, kFrameVersion};
  FrameDecoder decoder;
  decoder.feed(ByteSpan(wire.data(), wire.size()));
  Frame frame;
  EXPECT_EQ(decoder.next(frame), FrameDecoder::Status::kError);
  EXPECT_TRUE(decoder.corrupted());
  // Poisoned decoders stay poisoned: feeding more changes nothing.
  const Bytes good = encode_frame(1, 1, {});
  decoder.feed(ByteSpan(good.data(), good.size()));
  EXPECT_EQ(decoder.next(frame), FrameDecoder::Status::kError);
}

TEST(Frame, PayloadCapIsConfigurable) {
  const Bytes payload = payload_of(1024);
  const Bytes wire =
      encode_frame(1, 1, ByteSpan(payload.data(), payload.size()));
  FrameDecoder tight(/*max_payload=*/512);
  tight.feed(ByteSpan(wire.data(), wire.size()));
  Frame frame;
  EXPECT_EQ(tight.next(frame), FrameDecoder::Status::kError);

  FrameDecoder roomy(/*max_payload=*/2048);
  roomy.feed(ByteSpan(wire.data(), wire.size()));
  EXPECT_EQ(roomy.next(frame), FrameDecoder::Status::kFrame);
}

TEST(Frame, GarbageVersionPoisons) {
  Bytes wire = encode_frame(1, 1, payload_of(8));
  wire[4] = kFrameVersion + 1;
  FrameDecoder decoder;
  decoder.feed(ByteSpan(wire.data(), wire.size()));
  Frame frame;
  EXPECT_EQ(decoder.next(frame), FrameDecoder::Status::kError);
  EXPECT_TRUE(decoder.corrupted());
}

TEST(Frame, GarbageBytesPoison) {
  // Random noise: overwhelmingly likely to hit the length/version checks.
  Bytes wire(64);
  std::uint32_t x = 0xdeadbeef;
  for (auto& b : wire) {
    x = x * 1664525 + 1013904223;
    b = static_cast<std::uint8_t>(x >> 24);
  }
  // Force a plausible length so the version check is what trips.
  wire[0] = 32;
  wire[1] = wire[2] = wire[3] = 0;
  wire[4] = 0x77;  // not kFrameVersion
  FrameDecoder decoder;
  decoder.feed(ByteSpan(wire.data(), wire.size()));
  Frame frame;
  EXPECT_EQ(decoder.next(frame), FrameDecoder::Status::kError);
}

}  // namespace
}  // namespace probft::net
