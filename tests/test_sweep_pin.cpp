// Simulator determinism PIN: the SHA-256 of canonical decision transcripts
// for fixed (spec, seed) pairs, captured from the build immediately before
// the multi-core-replica PR landed. The multi-core work (shared verdict
// cache, verification worker pool, batched socket writes) must be
// invisible to the single-threaded simulator — not merely "deterministic",
// but bit-identical to what the pre-PR tree produced. A pin failure means
// protocol-visible behavior changed; if that is ever intentional, the new
// digests must be re-captured and the change called out in the PR.
//
// The pinned shapes mirror the nightly n = 500 sweep (o = 1.7, l = 2.0,
// f = n/10) plus the SMR fleet workload, covering the happy path, a forced
// view change, and the windowed SMR engine.
#include <gtest/gtest.h>

#include "common/bytes.hpp"
#include "crypto/sha256.hpp"
#include "sim/scenario.hpp"

namespace probft::sim {
namespace {

std::string transcript_sha256(const ScenarioSpec& spec, std::uint64_t seed) {
  const ScenarioOutcome out = run_scenario(spec, seed);
  EXPECT_TRUE(out.terminated) << scenario_name(spec) << " seed " << seed;
  crypto::Sha256 h;
  h.update(ByteSpan(
      reinterpret_cast<const std::uint8_t*>(out.transcript.data()),
      out.transcript.size()));
  const auto digest = h.finalize();
  return to_hex(Bytes(digest.begin(), digest.end()));
}

ScenarioSpec sweep_spec() {
  ScenarioSpec spec;
  spec.protocol = Protocol::kProbft;
  spec.n = 500;
  spec.f = 50;
  spec.o = 1.7;
  spec.l = 2.0;
  spec.fault = Fault::kNone;
  spec.latency = LatencyModel::kSynchronous;
  return spec;
}

TEST(SweepPin, N500HappyPathTranscriptsUnchanged) {
  const ScenarioSpec spec = sweep_spec();
  EXPECT_EQ(
      transcript_sha256(spec, 1),
      "823a2514f79e00c76699d4b29360e75076a7f8069c1c258c59fcfc80b92d9b60");
  EXPECT_EQ(
      transcript_sha256(spec, 2),
      "1d4e564ae90f3242703563ab7d4e3a9373ec4c931d6140864ca24b552dfb8513");
}

TEST(SweepPin, N500ViewChangeTranscriptUnchanged) {
  ScenarioSpec spec = sweep_spec();
  spec.fault = Fault::kSilentLeader;  // view-1 leader crashes: real VC path
  EXPECT_EQ(
      transcript_sha256(spec, 1),
      "84bc39c7d269931d9c9d6527623e6a83cdbc45ce43cc521c313907ea47ebaf9f");
}

TEST(SweepPin, SmrFleetTranscriptUnchanged) {
  ScenarioSpec spec;
  spec.protocol = Protocol::kProbft;
  spec.n = 32;
  spec.f = 3;
  spec.fault = Fault::kNone;
  spec.workload = Workload::kSmr;
  EXPECT_EQ(
      transcript_sha256(spec, 1),
      "69f2fe25f46c75cbc6ed649e632473d8d57423ea023c38b9e582a3dc36273bcf");
}

}  // namespace
}  // namespace probft::sim
