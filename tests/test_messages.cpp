#include "core/messages.hpp"

#include <gtest/gtest.h>

#include "core/replica.hpp"
#include "crypto/suite.hpp"

namespace probft::core {
namespace {

SignedProposal make_proposal() {
  SignedProposal p;
  p.view = 7;
  p.value = to_bytes("tx-batch-123");
  p.leader_sig = Bytes(64, 0xaa);
  return p;
}

PhaseMsg make_phase() {
  PhaseMsg m;
  m.proposal = make_proposal();
  m.sample = {1, 3, 9, 12};
  m.vrf_proof = Bytes(80, 0xbb);
  m.sender = 4;
  m.sender_sig = Bytes(64, 0xcc);
  return m;
}

TEST(Messages, SignedProposalRoundtrip) {
  const auto original = make_proposal();
  Writer w;
  original.encode(w);
  Reader r(ByteSpan(w.data().data(), w.data().size()));
  const auto decoded = SignedProposal::decode(r);
  EXPECT_EQ(decoded, original);
  EXPECT_TRUE(r.exhausted());
}

TEST(Messages, SignedProposalSigningBytesBindViewAndValue) {
  EXPECT_NE(SignedProposal::signing_bytes(1, to_bytes("a")),
            SignedProposal::signing_bytes(2, to_bytes("a")));
  EXPECT_NE(SignedProposal::signing_bytes(1, to_bytes("a")),
            SignedProposal::signing_bytes(1, to_bytes("b")));
}

TEST(Messages, PhaseMsgRoundtrip) {
  const auto original = make_phase();
  const auto decoded = PhaseMsg::from_bytes(original.to_bytes());
  EXPECT_EQ(decoded.proposal, original.proposal);
  EXPECT_EQ(decoded.sample, original.sample);
  EXPECT_EQ(decoded.vrf_proof, original.vrf_proof);
  EXPECT_EQ(decoded.sender, original.sender);
  EXPECT_EQ(decoded.sender_sig, original.sender_sig);
}

TEST(Messages, PhaseMsgSigningDomainSeparatesPrepareCommit) {
  const auto m = make_phase();
  EXPECT_NE(m.signing_bytes(MsgTag::kPrepare),
            m.signing_bytes(MsgTag::kCommit));
}

TEST(Messages, PhaseMsgSigningExcludesSignature) {
  auto a = make_phase();
  auto b = make_phase();
  b.sender_sig = Bytes(64, 0xdd);
  EXPECT_EQ(a.signing_bytes(MsgTag::kPrepare),
            b.signing_bytes(MsgTag::kPrepare));
}

TEST(Messages, NewLeaderRoundtripWithCert) {
  NewLeaderMsg original;
  original.view = 9;
  original.prepared_view = 4;
  original.prepared_value = to_bytes("prepared-value");
  auto second = make_phase();
  second.sender = 8;
  original.cert = {std::make_shared<PhaseMsg>(make_phase()),
                   std::make_shared<PhaseMsg>(std::move(second))};
  original.sender = 2;
  original.sender_sig = Bytes(64, 0x11);

  const auto decoded = NewLeaderMsg::from_bytes(original.to_bytes());
  EXPECT_EQ(decoded.view, original.view);
  EXPECT_EQ(decoded.prepared_view, original.prepared_view);
  EXPECT_EQ(decoded.prepared_value, original.prepared_value);
  ASSERT_EQ(decoded.cert.size(), 2U);
  EXPECT_EQ(decoded.cert[1]->sender, 8U);
  EXPECT_EQ(decoded.sender, original.sender);
}

TEST(Messages, NewLeaderRoundtripEmptyCert) {
  NewLeaderMsg original;
  original.view = 2;
  original.sender = 5;
  original.sender_sig = Bytes(32, 0x22);
  const auto decoded = NewLeaderMsg::from_bytes(original.to_bytes());
  EXPECT_EQ(decoded.prepared_view, 0U);
  EXPECT_TRUE(decoded.prepared_value.empty());
  EXPECT_TRUE(decoded.cert.empty());
}

TEST(Messages, ProposeRoundtripNested) {
  ProposeMsg original;
  original.proposal = make_proposal();
  NewLeaderMsg nl;
  nl.view = 7;
  nl.prepared_view = 3;
  nl.prepared_value = to_bytes("old");
  nl.cert = {std::make_shared<PhaseMsg>(make_phase())};
  nl.sender = 1;
  nl.sender_sig = Bytes(64, 0x33);
  original.justification = {nl};
  original.sender = 7;
  original.sender_sig = Bytes(64, 0x44);

  const auto decoded = ProposeMsg::from_bytes(original.to_bytes());
  EXPECT_EQ(decoded.proposal, original.proposal);
  ASSERT_EQ(decoded.justification.size(), 1U);
  EXPECT_EQ(decoded.justification[0].prepared_value, to_bytes("old"));
  ASSERT_EQ(decoded.justification[0].cert.size(), 1U);
  EXPECT_EQ(decoded.sender, 7U);
}

TEST(Messages, ProposePoolsSharedCertEntriesOnTheWire) {
  // Two NewLeader messages whose certificates share the same two Prepares
  // (the common case: a multicast Prepare lands in every sample member's
  // cert). The wire must carry each distinct PhaseMsg once.
  const auto shared_a = std::make_shared<PhaseMsg>(make_phase());
  auto b = make_phase();
  b.sender = 9;
  const auto shared_b = std::make_shared<PhaseMsg>(std::move(b));

  const auto make_nl = [&](ReplicaId sender) {
    NewLeaderMsg nl;
    nl.view = 2;
    nl.prepared_view = 1;
    nl.prepared_value = to_bytes("v");
    nl.cert = {shared_a, shared_b};
    nl.sender = sender;
    nl.sender_sig = Bytes(64, 0x21);
    return nl;
  };
  ProposeMsg shared;
  shared.proposal = make_proposal();
  shared.justification = {make_nl(1), make_nl(2), make_nl(3)};
  shared.sender = 7;
  shared.sender_sig = Bytes(64, 0x42);

  const Bytes wire = shared.to_bytes();
  // Overlap-free reference: same shape but every cert entry distinct.
  ProposeMsg distinct = shared;
  for (std::size_t i = 0; i < distinct.justification.size(); ++i) {
    for (auto& entry : distinct.justification[i].cert) {
      auto clone = std::make_shared<PhaseMsg>(*entry);
      clone->sender = static_cast<ReplicaId>(10 + i);  // force distinctness
      clone->digest_memo_.clear();
      entry = std::move(clone);
    }
  }
  EXPECT_LT(wire.size(), distinct.to_bytes().size());

  const auto decoded = ProposeMsg::from_bytes(wire);
  ASSERT_EQ(decoded.justification.size(), 3U);
  for (const auto& nl : decoded.justification) {
    ASSERT_EQ(nl.cert.size(), 2U);
    EXPECT_EQ(nl.cert[0]->sender, shared_a->sender);
    EXPECT_EQ(nl.cert[1]->sender, 9U);
  }
  // Shared entries decode to shared pointers (one pool object per distinct
  // message, referenced by every cert).
  EXPECT_EQ(decoded.justification[0].cert[0].get(),
            decoded.justification[2].cert[0].get());
  // Round-tripping the decoded message reproduces identical wire bytes.
  EXPECT_EQ(decoded.to_bytes(), wire);
}

TEST(Messages, ProposeRejectsOutOfRangeCertBackReference) {
  // Hand-assemble a pooled Propose whose cert references index 5 while the
  // pool holds a single entry: decode must throw, not read out of bounds.
  Writer w;
  make_proposal().encode(w);
  w.u32(1);  // pool size
  make_phase().encode(w);
  w.u32(1);               // one justification entry
  w.u64(2);               // view
  w.u64(1);               // prepared_view
  w.bytes(to_bytes("v"));  // prepared_value
  w.u32(1);               // one cert ref
  w.u32(5);               // out-of-range back-reference
  w.u32(4);               // nl sender
  w.bytes(Bytes(64, 0x01));  // nl sig
  w.u32(7);               // propose sender
  w.bytes(Bytes(64, 0x02));  // propose sig
  const Bytes wire = std::move(w).take();
  EXPECT_THROW((void)ProposeMsg::from_bytes(ByteSpan(wire.data(),
                                                     wire.size())),
               CodecError);
}

TEST(Messages, WishRoundtrip) {
  WishMsg original;
  original.view = 42;
  original.sender = 3;
  original.sender_sig = Bytes(16, 0x55);
  const auto decoded = WishMsg::from_bytes(original.to_bytes());
  EXPECT_EQ(decoded.view, 42U);
  EXPECT_EQ(decoded.sender, 3U);
  EXPECT_EQ(decoded.sender_sig, original.sender_sig);
}

TEST(Messages, FromBytesRejectsTrailingGarbage) {
  auto raw = make_phase().to_bytes();
  raw.push_back(0x00);
  EXPECT_THROW(PhaseMsg::from_bytes(raw), CodecError);
}

TEST(Messages, FromBytesRejectsTruncation) {
  const auto raw = make_phase().to_bytes();
  for (std::size_t cut : {raw.size() - 1, raw.size() / 2, std::size_t{1}}) {
    EXPECT_THROW(
        PhaseMsg::from_bytes(ByteSpan(raw.data(), cut)), CodecError)
        << "cut=" << cut;
  }
}

TEST(Messages, SignaturesVerifyOverSigningBytes) {
  // End-to-end: sign the signing bytes with a real suite and verify.
  const auto suite = crypto::make_sim_suite();
  const auto kp = suite->keygen(1);
  auto m = make_phase();
  m.sender_sig = suite->sign(kp.secret_key,
                             m.signing_bytes(MsgTag::kPrepare));
  const auto decoded = PhaseMsg::from_bytes(m.to_bytes());
  EXPECT_TRUE(suite->verify(kp.public_key,
                            decoded.signing_bytes(MsgTag::kPrepare),
                            decoded.sender_sig));
}

TEST(Messages, TagBytesAreStable) {
  EXPECT_EQ(tag_byte(MsgTag::kPropose), 1);
  EXPECT_EQ(tag_byte(MsgTag::kPrepare), 2);
  EXPECT_EQ(tag_byte(MsgTag::kCommit), 3);
  EXPECT_EQ(tag_byte(MsgTag::kNewLeader), 4);
  EXPECT_EQ(tag_byte(MsgTag::kWish), 5);
}

}  // namespace
}  // namespace probft::core
