// ProBFT replica edge cases: buffering across views, vote-once semantics,
// and resilience to stale/mis-addressed traffic.
#include <gtest/gtest.h>

#include "protocol_test_util.hpp"

namespace probft::core {
namespace {

using testutil::TestBed;

class ReplicaEdgeTest : public ::testing::Test {
 protected:
  // s == n == 9, q == 9, det quorum 6 (f = 2).
  ReplicaEdgeTest() : bed_(9, 2, 1.7, 3.0) {
    replica_ = bed_.make_replica(3);
    replica_->start();
  }

  void force_view(View v) {
    for (ReplicaId s = 1; s <= 9; ++s) {
      if (s == 3) continue;
      WishMsg wish;
      wish.view = v;
      wish.sender = s;
      wish.sender_sig =
          bed_.suite().sign(bed_.secret(s), wish.signing_bytes());
      replica_->on_message(s, tag_byte(MsgTag::kWish), wish.to_bytes());
    }
  }

  TestBed bed_;
  std::unique_ptr<Replica> replica_;
};

TEST_F(ReplicaEdgeTest, FutureViewProposalBufferedUntilEntry) {
  // A valid view-2 proposal (with justification) arrives while we are
  // still in view 1; it must be consumed upon entering view 2.
  std::vector<NewLeaderMsg> m_set;
  for (ReplicaId s = 4; s <= 9; ++s) {
    m_set.push_back(bed_.make_new_leader(2, s));
  }
  const auto propose = bed_.make_propose(2, to_bytes("future"), 2, m_set);
  replica_->on_message(2, tag_byte(MsgTag::kPropose), propose.to_bytes());
  EXPECT_FALSE(replica_->voted());  // still view 1
  force_view(2);
  EXPECT_EQ(replica_->current_view(), 2U);
  EXPECT_TRUE(replica_->voted());  // buffered proposal applied
}

TEST_F(ReplicaEdgeTest, FuturePreparesBufferedUntilVote) {
  const Bytes value = to_bytes("v");
  // All prepares land before the proposal.
  for (ReplicaId s = 1; s <= 9; ++s) {
    replica_->on_message(
        s, tag_byte(MsgTag::kPrepare),
        bed_.make_phase(MsgTag::kPrepare, 1, value, s, 1).to_bytes());
  }
  EXPECT_EQ(replica_->prepared_view(), 0U);
  replica_->on_message(1, tag_byte(MsgTag::kPropose),
                       bed_.make_propose(1, value, 1).to_bytes());
  EXPECT_TRUE(replica_->voted());
  EXPECT_EQ(replica_->prepared_view(), 1U);  // buffered prepares counted
}

TEST_F(ReplicaEdgeTest, VotesOnlyOncePerView) {
  bed_.outbox.clear();
  replica_->on_message(1, tag_byte(MsgTag::kPropose),
                       bed_.make_propose(1, to_bytes("v"), 1).to_bytes());
  const auto first_sends = bed_.outbox.size();
  // Re-delivering the same proposal must not multicast prepares again.
  replica_->on_message(1, tag_byte(MsgTag::kPropose),
                       bed_.make_propose(1, to_bytes("v"), 1).to_bytes());
  EXPECT_EQ(bed_.outbox.size(), first_sends);
}

TEST_F(ReplicaEdgeTest, CommitsAloneNeverDecide) {
  const Bytes value = to_bytes("v");
  replica_->on_message(1, tag_byte(MsgTag::kPropose),
                       bed_.make_propose(1, value, 1).to_bytes());
  for (ReplicaId s = 1; s <= 9; ++s) {
    replica_->on_message(
        s, tag_byte(MsgTag::kCommit),
        bed_.make_phase(MsgTag::kCommit, 1, value, s, 1).to_bytes());
  }
  // Commit quorum present, but the replica never prepared (no prepares):
  // Algorithm 1 line 21 requires curView = preparedView.
  EXPECT_FALSE(replica_->decided());
}

TEST_F(ReplicaEdgeTest, DecidesOnlyOnce) {
  const Bytes value = to_bytes("v");
  bed_.decisions.clear();
  bed_.drive_to_decision(*replica_, 1, value, 1);
  // Self-prepare missing: complete it manually.
  replica_->on_message(
      3, tag_byte(MsgTag::kPrepare),
      bed_.make_phase(MsgTag::kPrepare, 1, value, 3, 1).to_bytes());
  replica_->on_message(
      3, tag_byte(MsgTag::kCommit),
      bed_.make_phase(MsgTag::kCommit, 1, value, 3, 1).to_bytes());
  ASSERT_TRUE(replica_->decided());
  const auto decisions_after_first = bed_.decisions.size();
  EXPECT_EQ(decisions_after_first, 1U);
  // Extra commits change nothing.
  replica_->on_message(
      5, tag_byte(MsgTag::kCommit),
      bed_.make_phase(MsgTag::kCommit, 1, value, 5, 1).to_bytes());
  EXPECT_EQ(bed_.decisions.size(), 1U);
}

TEST_F(ReplicaEdgeTest, NewLeaderForWrongRecipientDropped) {
  // Replica 3 is not the leader of view 2 (replica 2 is); NewLeader
  // messages addressed to it must be ignored even after entering view 2.
  force_view(2);
  bed_.outbox.clear();
  for (ReplicaId s = 4; s <= 9; ++s) {
    replica_->on_message(s, tag_byte(MsgTag::kNewLeader),
                         bed_.make_new_leader(2, s).to_bytes());
  }
  for (const auto& sent : bed_.outbox) {
    EXPECT_NE(sent.tag, tag_byte(MsgTag::kPropose));
  }
}

TEST_F(ReplicaEdgeTest, WishWithForgedSignatureIgnored) {
  for (ReplicaId s = 1; s <= 9; ++s) {
    if (s == 3) continue;
    WishMsg wish;
    wish.view = 5;
    wish.sender = s;
    wish.sender_sig = Bytes(32, 0x42);  // junk
    replica_->on_message(s, tag_byte(MsgTag::kWish), wish.to_bytes());
  }
  EXPECT_EQ(replica_->current_view(), 1U);
}

TEST_F(ReplicaEdgeTest, WishSenderMismatchIgnored) {
  // Wish signed by replica 5 but delivered as "from 6": dropped (prevents
  // replay-based wish inflation).
  WishMsg wish;
  wish.view = 5;
  wish.sender = 5;
  wish.sender_sig = bed_.suite().sign(bed_.secret(5), wish.signing_bytes());
  for (int i = 0; i < 8; ++i) {
    replica_->on_message(6, tag_byte(MsgTag::kWish), wish.to_bytes());
  }
  EXPECT_EQ(replica_->current_view(), 1U);
}

TEST_F(ReplicaEdgeTest, OldViewPreparesPrunedAfterViewChange) {
  const Bytes value = to_bytes("v");
  // Partial prepares in view 1 (no proposal: buffered).
  for (ReplicaId s = 1; s <= 4; ++s) {
    replica_->on_message(
        s, tag_byte(MsgTag::kPrepare),
        bed_.make_phase(MsgTag::kPrepare, 1, value, s, 1).to_bytes());
  }
  force_view(2);
  // Late view-1 proposal + remaining prepares: all stale, no vote.
  replica_->on_message(1, tag_byte(MsgTag::kPropose),
                       bed_.make_propose(1, value, 1).to_bytes());
  for (ReplicaId s = 5; s <= 9; ++s) {
    replica_->on_message(
        s, tag_byte(MsgTag::kPrepare),
        bed_.make_phase(MsgTag::kPrepare, 1, value, s, 1).to_bytes());
  }
  EXPECT_FALSE(replica_->voted());
  EXPECT_EQ(replica_->prepared_view(), 0U);
}

TEST_F(ReplicaEdgeTest, SendersOutsideUniverseRejected) {
  // Craft a syntactically valid prepare claiming sender id 99.
  auto m = bed_.make_phase(MsgTag::kPrepare, 1, to_bytes("v"), 5, 1);
  m.sender = 99;
  replica_->on_message(99, tag_byte(MsgTag::kPrepare), m.to_bytes());
  EXPECT_EQ(replica_->current_view(), 1U);  // no crash, no effect
}

TEST_F(ReplicaEdgeTest, RejectsBadReplicaConfig) {
  ReplicaConfig rc;  // id = 0, no suite
  sync::SyncConfig sc;
  EXPECT_THROW(Replica(rc, sc, {}), std::invalid_argument);
}

TEST_F(ReplicaEdgeTest, ConfigDerivedSizes) {
  const auto& cfg = replica_->config();
  EXPECT_EQ(cfg.q(), 9U);            // ceil(3 * 3)
  EXPECT_EQ(cfg.sample_size(), 9U);  // capped at n
  EXPECT_EQ(cfg.det_quorum(), 6U);   // ceil((9+2+1)/2)
}

}  // namespace
}  // namespace probft::core
