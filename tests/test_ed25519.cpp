#include "crypto/ed25519.hpp"

#include <gtest/gtest.h>

#include <string>

#include "common/bytes.hpp"
#include "crypto/curve25519.hpp"
#include "crypto/sha256.hpp"
#include "crypto/sha512.hpp"

namespace probft::crypto::ed25519 {
namespace {

// RFC 8032 section 7.1, TEST 1.
const char* kSeed1 =
    "9d61b19deffd5a60ba844af492ec2cc44449c5697b326919703bac031cae7f60";
const char* kPub1 =
    "d75a980182b10ab7d54bfed3c964073a0ee172f3daa62325af021a68f707511a";

// RFC 8032 section 7.1, TEST 2.
const char* kSeed2 =
    "4ccd089b28ff96da9db6c346ec114e0f5b8a319f35aba624da8cf6ed4fb8a6fb";
const char* kPub2 =
    "3d4017c3e843895a92b70aa74d1b7ebc9c982ccf2ec4968cc0cd55f12af4660c";

TEST(Ed25519, Rfc8032Test1PublicKey) {
  EXPECT_EQ(to_hex(derive_public(from_hex(kSeed1))), kPub1);
}

TEST(Ed25519, Rfc8032Test2PublicKey) {
  EXPECT_EQ(to_hex(derive_public(from_hex(kSeed2))), kPub2);
}

TEST(Ed25519, Rfc8032Test1Signature) {
  const auto sig = sign(from_hex(kSeed1), Bytes{});
  EXPECT_EQ(to_hex(sig),
            "e5564300c360ac729086e2cc806e828a84877f1eb8e5d974d873e06522490155"
            "5fb8821590a33bacc61e39701cf9b46bd25bf5f0595bbe24655141438e7a100b");
}

TEST(Ed25519, Rfc8032Test2Signature) {
  const Bytes msg = {0x72};
  const auto sig = sign(from_hex(kSeed2), msg);
  EXPECT_EQ(to_hex(sig),
            "92a009a9f0d4cab8720e820b5f642540a2b27b5416503f8fb3762223ebdb69da"
            "085ac1e43e15996e458f3613d0f11d8c387b2eaeb4302aeeb00d291612bb0c00");
}

TEST(Ed25519, SignVerifyRoundtrip) {
  const auto seed = from_hex(kSeed1);
  const auto pk = derive_public(seed);
  const Bytes msg = to_bytes("probft consensus message");
  const auto sig = sign(seed, msg);
  EXPECT_TRUE(verify(pk, msg, sig));
}

TEST(Ed25519, VerifyRejectsTamperedMessage) {
  const auto seed = from_hex(kSeed1);
  const auto pk = derive_public(seed);
  Bytes msg = to_bytes("original");
  const auto sig = sign(seed, msg);
  msg[0] ^= 1;
  EXPECT_FALSE(verify(pk, msg, sig));
}

TEST(Ed25519, VerifyRejectsTamperedSignature) {
  const auto seed = from_hex(kSeed1);
  const auto pk = derive_public(seed);
  const Bytes msg = to_bytes("message");
  auto sig = sign(seed, msg);
  for (std::size_t i : {0UL, 31UL, 32UL, 63UL}) {
    Bytes bad = sig;
    bad[i] ^= 0x40;
    EXPECT_FALSE(verify(pk, msg, bad)) << "byte " << i;
  }
}

TEST(Ed25519, VerifyRejectsWrongKey) {
  const auto sig = sign(from_hex(kSeed1), to_bytes("m"));
  EXPECT_FALSE(verify(from_hex(kPub2), to_bytes("m"), sig));
}

TEST(Ed25519, VerifyRejectsMalformedSizes) {
  const auto seed = from_hex(kSeed1);
  const auto pk = derive_public(seed);
  const Bytes msg = to_bytes("m");
  const auto sig = sign(seed, msg);
  EXPECT_FALSE(verify(Bytes(31, 0), msg, sig));
  EXPECT_FALSE(verify(pk, msg, Bytes(63, 0)));
  EXPECT_FALSE(verify(pk, msg, Bytes{}));
}

TEST(Ed25519, VerifyRejectsOversizedS) {
  const auto seed = from_hex(kSeed1);
  const auto pk = derive_public(seed);
  const Bytes msg = to_bytes("m");
  auto sig = sign(seed, msg);
  // Force S >= L by setting its top byte to 0xff (L < 2^253).
  sig[63] = 0xff;
  EXPECT_FALSE(verify(pk, msg, sig));
}

TEST(Ed25519, SigningIsDeterministic) {
  const auto seed = from_hex(kSeed2);
  const Bytes msg = to_bytes("same message");
  EXPECT_EQ(sign(seed, msg), sign(seed, msg));
}

TEST(Ed25519, DistinctMessagesDistinctSignatures) {
  const auto seed = from_hex(kSeed2);
  EXPECT_NE(sign(seed, to_bytes("a")), sign(seed, to_bytes("b")));
}

TEST(Ed25519, LargeMessage) {
  const auto seed = from_hex(kSeed1);
  const auto pk = derive_public(seed);
  const Bytes msg(4096, 0x5c);
  EXPECT_TRUE(verify(pk, msg, sign(seed, msg)));
}

// ---- batch verification ----

struct BatchFixture {
  std::vector<Bytes> pks, msgs, sigs;
  void add(const Bytes& seed, Bytes msg) {
    pks.push_back(derive_public(seed));
    sigs.push_back(sign(seed, msg));
    msgs.push_back(std::move(msg));
  }
  [[nodiscard]] std::vector<SigCheck> checks() const {
    std::vector<SigCheck> out;
    for (std::size_t i = 0; i < pks.size(); ++i) {
      out.push_back({ByteSpan(pks[i].data(), pks[i].size()),
                     ByteSpan(msgs[i].data(), msgs[i].size()),
                     ByteSpan(sigs[i].data(), sigs[i].size())});
    }
    return out;
  }
};

TEST(Ed25519Batch, EmptyBatchIsVacuouslyTrue) {
  EXPECT_TRUE(verify_batch({}));
}

TEST(Ed25519Batch, AllValidSignaturesPass) {
  BatchFixture b;
  b.add(from_hex(kSeed1), Bytes{});
  b.add(from_hex(kSeed2), Bytes{0x72});
  for (int i = 0; i < 6; ++i) {
    b.add(from_hex(kSeed1), to_bytes("message-" + std::to_string(i)));
  }
  EXPECT_TRUE(verify_batch(b.checks()));
}

TEST(Ed25519Batch, OneTamperedSignatureFailsTheBatch) {
  BatchFixture b;
  for (int i = 0; i < 8; ++i) {
    b.add(from_hex(kSeed1), to_bytes("message-" + std::to_string(i)));
  }
  b.sigs[5][40] ^= 1;
  EXPECT_FALSE(verify_batch(b.checks()));
}

TEST(Ed25519Batch, OneTamperedMessageFailsTheBatch) {
  BatchFixture b;
  for (int i = 0; i < 4; ++i) {
    b.add(from_hex(kSeed2), to_bytes("message-" + std::to_string(i)));
  }
  b.msgs[2][0] ^= 1;
  EXPECT_FALSE(verify_batch(b.checks()));
}

TEST(Ed25519Batch, SwappedSignaturesFailTheBatch) {
  // Both signatures are individually valid for the OTHER item; a naive
  // sum-only check without per-item random coefficients would cancel.
  BatchFixture b;
  b.add(from_hex(kSeed1), to_bytes("alpha"));
  b.add(from_hex(kSeed1), to_bytes("beta"));
  std::swap(b.sigs[0], b.sigs[1]);
  EXPECT_FALSE(verify_batch(b.checks()));
}

TEST(Ed25519Batch, MalformedMemberFailsTheBatch) {
  BatchFixture b;
  b.add(from_hex(kSeed1), to_bytes("x"));
  b.add(from_hex(kSeed2), to_bytes("y"));
  b.sigs[1].resize(10);  // truncated signature
  EXPECT_FALSE(verify_batch(b.checks()));
}

TEST(Ed25519Batch, SingleItemMatchesIndividualVerify) {
  BatchFixture good;
  good.add(from_hex(kSeed1), to_bytes("solo"));
  EXPECT_TRUE(verify_batch(good.checks()));
  good.sigs[0][3] ^= 1;
  EXPECT_FALSE(verify_batch(good.checks()));
}

TEST(Ed25519Batch, SmallOrderDefectVerdictMatchesSingleVerify) {
  // A Byzantine signer with an ordinary keypair can publish a signature
  // whose only flaw is a small-order (torsion) component: pick R' = R + T
  // up front and compute s against k = H(R' ‖ A ‖ M), so the defect in
  // the verification equation is exactly −T. With a cofactorless single
  // check and a randomized batch equation, the batch used to accept such
  // a signature with probability ~1/ord(T) while verify() always
  // rejected — per-replica divergence. Both checks are cofactored now and
  // must agree (accept) on every batch composition.
  namespace curve = probft::crypto::curve;

  // Find a torsion point: [L]P for any curve point P lies in the 8-torsion
  // subgroup; retry candidates until it is not the identity.
  curve::Point torsion = curve::point_identity();
  for (std::uint8_t c = 1; c != 0 && curve::point_is_identity(torsion); ++c) {
    const Bytes candidate = sha256(ByteSpan(&c, 1));
    const auto p =
        curve::point_decompress(ByteSpan(candidate.data(), candidate.size()));
    if (!p) continue;
    torsion = curve::point_scalar_mul(curve::group_order(), *p);
  }
  ASSERT_FALSE(curve::point_is_identity(torsion));

  // Re-derive the RFC 8032 secret scalar for kSeed1 (expand + clamp).
  const Bytes seed = from_hex(kSeed1);
  const auto h = Sha512::hash(ByteSpan(seed.data(), seed.size()));
  std::uint8_t scalar_bytes[32];
  for (int i = 0; i < 32; ++i) scalar_bytes[i] = h[static_cast<std::size_t>(i)];
  scalar_bytes[0] &= 248;
  scalar_bytes[31] &= 127;
  scalar_bytes[31] |= 64;
  const curve::U256 a = curve::sc_reduce(ByteSpan(scalar_bytes, 32));
  const Bytes pub = derive_public(seed);
  const Bytes msg = to_bytes("torsion-defect-message");

  // Attacker-crafted signature: R' = R + T, s = r + H(R'‖A‖M)·a mod L.
  const curve::U256 r = curve::sc_reduce_wide(ByteSpan(h.data(), h.size()));
  const curve::Point r_point =
      curve::point_scalar_mul(r, curve::point_base());
  const Bytes r_prime =
      curve::point_compress(curve::point_add(r_point, torsion));
  Sha512 h_k;
  h_k.update(ByteSpan(r_prime.data(), r_prime.size()));
  h_k.update(ByteSpan(pub.data(), pub.size()));
  h_k.update(ByteSpan(msg.data(), msg.size()));
  const auto k_hash = h_k.finalize();
  const curve::U256 k =
      curve::sc_reduce_wide(ByteSpan(k_hash.data(), k_hash.size()));
  const curve::U256 s = curve::sc_muladd(k, a, r);
  Bytes sig = r_prime;
  std::uint8_t s_bytes[32];
  curve::u256_to_le(s, s_bytes);
  sig.insert(sig.end(), s_bytes, s_bytes + 32);

  EXPECT_TRUE(verify(pub, msg, sig));  // cofactored single check accepts
  // Batch verdict must match across many compositions (each changes the
  // Fiat–Shamir coefficients z_i).
  for (int round = 0; round < 16; ++round) {
    BatchFixture b;
    b.pks.push_back(pub);
    b.msgs.push_back(msg);
    b.sigs.push_back(sig);
    for (int extra = 0; extra <= round; ++extra) {
      b.add(from_hex(kSeed2),
            to_bytes("filler-" + std::to_string(round) + "-" +
                     std::to_string(extra)));
    }
    EXPECT_TRUE(verify_batch(b.checks())) << "round " << round;
  }
  // A genuinely bad signature (large-order defect) stays rejected by both.
  Bytes bad = sig;
  bad[40] ^= 1;
  EXPECT_FALSE(verify(pub, msg, bad));
  BatchFixture bb;
  bb.pks.push_back(pub);
  bb.msgs.push_back(msg);
  bb.sigs.push_back(bad);
  EXPECT_FALSE(verify_batch(bb.checks()));
}

}  // namespace
}  // namespace probft::crypto::ed25519
