#include "crypto/ed25519.hpp"

#include <gtest/gtest.h>

#include "common/bytes.hpp"

namespace probft::crypto::ed25519 {
namespace {

// RFC 8032 section 7.1, TEST 1.
const char* kSeed1 =
    "9d61b19deffd5a60ba844af492ec2cc44449c5697b326919703bac031cae7f60";
const char* kPub1 =
    "d75a980182b10ab7d54bfed3c964073a0ee172f3daa62325af021a68f707511a";

// RFC 8032 section 7.1, TEST 2.
const char* kSeed2 =
    "4ccd089b28ff96da9db6c346ec114e0f5b8a319f35aba624da8cf6ed4fb8a6fb";
const char* kPub2 =
    "3d4017c3e843895a92b70aa74d1b7ebc9c982ccf2ec4968cc0cd55f12af4660c";

TEST(Ed25519, Rfc8032Test1PublicKey) {
  EXPECT_EQ(to_hex(derive_public(from_hex(kSeed1))), kPub1);
}

TEST(Ed25519, Rfc8032Test2PublicKey) {
  EXPECT_EQ(to_hex(derive_public(from_hex(kSeed2))), kPub2);
}

TEST(Ed25519, Rfc8032Test1Signature) {
  const auto sig = sign(from_hex(kSeed1), Bytes{});
  EXPECT_EQ(to_hex(sig),
            "e5564300c360ac729086e2cc806e828a84877f1eb8e5d974d873e06522490155"
            "5fb8821590a33bacc61e39701cf9b46bd25bf5f0595bbe24655141438e7a100b");
}

TEST(Ed25519, Rfc8032Test2Signature) {
  const Bytes msg = {0x72};
  const auto sig = sign(from_hex(kSeed2), msg);
  EXPECT_EQ(to_hex(sig),
            "92a009a9f0d4cab8720e820b5f642540a2b27b5416503f8fb3762223ebdb69da"
            "085ac1e43e15996e458f3613d0f11d8c387b2eaeb4302aeeb00d291612bb0c00");
}

TEST(Ed25519, SignVerifyRoundtrip) {
  const auto seed = from_hex(kSeed1);
  const auto pk = derive_public(seed);
  const Bytes msg = to_bytes("probft consensus message");
  const auto sig = sign(seed, msg);
  EXPECT_TRUE(verify(pk, msg, sig));
}

TEST(Ed25519, VerifyRejectsTamperedMessage) {
  const auto seed = from_hex(kSeed1);
  const auto pk = derive_public(seed);
  Bytes msg = to_bytes("original");
  const auto sig = sign(seed, msg);
  msg[0] ^= 1;
  EXPECT_FALSE(verify(pk, msg, sig));
}

TEST(Ed25519, VerifyRejectsTamperedSignature) {
  const auto seed = from_hex(kSeed1);
  const auto pk = derive_public(seed);
  const Bytes msg = to_bytes("message");
  auto sig = sign(seed, msg);
  for (std::size_t i : {0UL, 31UL, 32UL, 63UL}) {
    Bytes bad = sig;
    bad[i] ^= 0x40;
    EXPECT_FALSE(verify(pk, msg, bad)) << "byte " << i;
  }
}

TEST(Ed25519, VerifyRejectsWrongKey) {
  const auto sig = sign(from_hex(kSeed1), to_bytes("m"));
  EXPECT_FALSE(verify(from_hex(kPub2), to_bytes("m"), sig));
}

TEST(Ed25519, VerifyRejectsMalformedSizes) {
  const auto seed = from_hex(kSeed1);
  const auto pk = derive_public(seed);
  const Bytes msg = to_bytes("m");
  const auto sig = sign(seed, msg);
  EXPECT_FALSE(verify(Bytes(31, 0), msg, sig));
  EXPECT_FALSE(verify(pk, msg, Bytes(63, 0)));
  EXPECT_FALSE(verify(pk, msg, Bytes{}));
}

TEST(Ed25519, VerifyRejectsOversizedS) {
  const auto seed = from_hex(kSeed1);
  const auto pk = derive_public(seed);
  const Bytes msg = to_bytes("m");
  auto sig = sign(seed, msg);
  // Force S >= L by setting its top byte to 0xff (L < 2^253).
  sig[63] = 0xff;
  EXPECT_FALSE(verify(pk, msg, sig));
}

TEST(Ed25519, SigningIsDeterministic) {
  const auto seed = from_hex(kSeed2);
  const Bytes msg = to_bytes("same message");
  EXPECT_EQ(sign(seed, msg), sign(seed, msg));
}

TEST(Ed25519, DistinctMessagesDistinctSignatures) {
  const auto seed = from_hex(kSeed2);
  EXPECT_NE(sign(seed, to_bytes("a")), sign(seed, to_bytes("b")));
}

TEST(Ed25519, LargeMessage) {
  const auto seed = from_hex(kSeed1);
  const auto pk = derive_public(seed);
  const Bytes msg(4096, 0x5c);
  EXPECT_TRUE(verify(pk, msg, sign(seed, msg)));
}

}  // namespace
}  // namespace probft::crypto::ed25519
