// Edge-case hardening tests for the curve/Ed25519 layer: pathological
// encodings and inputs a Byzantine peer could ship.
#include <gtest/gtest.h>

#include "common/bytes.hpp"
#include "crypto/curve25519.hpp"
#include "crypto/ed25519.hpp"

namespace probft::crypto::curve {
namespace {

TEST(CurveEdge, IdentityEncodingDecodesToIdentity) {
  // y = 1, sign 0: 0x01 || 0x00...
  Bytes enc(32, 0);
  enc[0] = 1;
  const auto point = point_decompress(enc);
  ASSERT_TRUE(point.has_value());
  EXPECT_TRUE(point_is_identity(*point));
}

TEST(CurveEdge, IdentityCompressesCanonically) {
  const Bytes enc = point_compress(point_identity());
  Bytes expected(32, 0);
  expected[0] = 1;
  EXPECT_EQ(enc, expected);
}

TEST(CurveEdge, MinusZeroXRejected) {
  // y with x = 0 but sign bit set ("negative zero") must be rejected.
  Bytes enc(32, 0);
  enc[0] = 1;      // y = 1 -> x = 0
  enc[31] = 0x80;  // claim x is odd
  EXPECT_FALSE(point_decompress(enc).has_value());
}

TEST(CurveEdge, NonCanonicalFieldElementRejected) {
  // y = p (= 0 mod p but non-canonical bytes).
  std::uint8_t p_bytes[32];
  u256_to_le(field_prime(), p_bytes);
  EXPECT_FALSE(point_decompress(ByteSpan(p_bytes, 32)).has_value());
}

TEST(CurveEdge, ScalarMulByZeroIsIdentity) {
  EXPECT_TRUE(
      point_is_identity(point_scalar_mul(u256_zero(), point_base())));
}

TEST(CurveEdge, ScalarMulByOneIsSame) {
  EXPECT_TRUE(
      point_eq(point_scalar_mul(u256_one(), point_base()), point_base()));
}

TEST(CurveEdge, LMinusOneTimesBaseIsNegBase) {
  U256 l_minus_1;
  u256_sub(l_minus_1, group_order(), u256_one());
  const Point p = point_scalar_mul(l_minus_1, point_base());
  EXPECT_TRUE(point_eq(p, point_negate(point_base())));
}

TEST(CurveEdge, DoubleOfIdentityIsIdentity) {
  EXPECT_TRUE(point_is_identity(point_double(point_identity())));
}

TEST(CurveEdge, CompressDecompressRandomPoints) {
  // Walk a few multiples of B through compression roundtrips.
  Point acc = point_base();
  for (int i = 0; i < 16; ++i) {
    const Bytes enc = point_compress(acc);
    const auto back = point_decompress(enc);
    ASSERT_TRUE(back.has_value()) << "multiple " << i;
    EXPECT_TRUE(point_eq(*back, acc)) << "multiple " << i;
    acc = point_add(acc, point_base());
  }
}

TEST(CurveEdge, NegationIsInvolution) {
  const Point b2 = point_double(point_base());
  EXPECT_TRUE(point_eq(point_negate(point_negate(b2)), b2));
}

}  // namespace
}  // namespace probft::crypto::curve

namespace probft::crypto::ed25519 {
namespace {

TEST(Ed25519Edge, RejectsIdentityEncodedR) {
  // Signature whose R is the identity encoding but S mismatched.
  const Bytes seed = from_hex(
      "9d61b19deffd5a60ba844af492ec2cc44449c5697b326919703bac031cae7f60");
  const auto pk = derive_public(seed);
  Bytes sig(64, 0);
  sig[0] = 1;  // R = identity
  EXPECT_FALSE(verify(pk, to_bytes("m"), sig));
}

TEST(Ed25519Edge, RejectsAllZeroSignature) {
  const Bytes seed = from_hex(
      "9d61b19deffd5a60ba844af492ec2cc44449c5697b326919703bac031cae7f60");
  const auto pk = derive_public(seed);
  EXPECT_FALSE(verify(pk, to_bytes("m"), Bytes(64, 0)));
}

TEST(Ed25519Edge, RejectsNonCanonicalPk) {
  Bytes bad_pk(32, 0xff);
  bad_pk[31] = 0x7f;  // y >= p
  EXPECT_FALSE(verify(bad_pk, to_bytes("m"), Bytes(64, 1)));
}

TEST(Ed25519Edge, SignRejectsBadSeedSize) {
  EXPECT_THROW((void)sign(Bytes(31, 0), to_bytes("m")),
               std::invalid_argument);
  EXPECT_THROW((void)derive_public(Bytes(33, 0)), std::invalid_argument);
}

TEST(Ed25519Edge, EmptyMessageRoundtrip) {
  const Bytes seed = from_hex(
      "4ccd089b28ff96da9db6c346ec114e0f5b8a319f35aba624da8cf6ed4fb8a6fb");
  const auto pk = derive_public(seed);
  EXPECT_TRUE(verify(pk, Bytes{}, sign(seed, Bytes{})));
}

TEST(Ed25519Edge, CrossMessageSignatureReuseFails) {
  const Bytes seed = from_hex(
      "4ccd089b28ff96da9db6c346ec114e0f5b8a319f35aba624da8cf6ed4fb8a6fb");
  const auto pk = derive_public(seed);
  const auto sig = sign(seed, to_bytes("message-1"));
  EXPECT_FALSE(verify(pk, to_bytes("message-2"), sig));
}

}  // namespace
}  // namespace probft::crypto::ed25519
