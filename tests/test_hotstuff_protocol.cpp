// Single-shot HotStuff baseline integration tests.
#include <gtest/gtest.h>

#include "sim/cluster.hpp"
#include "sim/scenario.hpp"

namespace probft::sim {
namespace {

ClusterConfig base_config(std::uint32_t n, std::uint32_t f,
                          std::uint64_t seed = 1) {
  ClusterConfig cfg;
  cfg.protocol = Protocol::kHotStuff;
  cfg.n = n;
  cfg.f = f;
  cfg.seed = seed;
  cfg.sync.base_timeout = 200'000;  // more steps: allow a longer view
  cfg.latency.min_delay = 500;
  cfg.latency.max_delay_post = 5'000;
  return cfg;
}

/// Fault shapes come from the scenario harness; only the timing knobs of
/// base_config are layered on top.
ClusterConfig fault_config(std::uint32_t n, std::uint32_t f, Fault fault,
                           std::uint64_t seed) {
  ScenarioSpec spec;
  spec.protocol = Protocol::kHotStuff;
  spec.n = n;
  spec.f = f;
  spec.fault = fault;
  const ClusterConfig timing = base_config(n, f);
  return make_cluster_config(spec, seed, timing.sync, timing.latency);
}

TEST(HotStuffProtocol, HappyPathDecides) {
  Cluster cluster(base_config(4, 1));
  cluster.start();
  EXPECT_TRUE(cluster.run_to_completion());
  EXPECT_TRUE(cluster.agreement_ok());
  for (const auto& d : cluster.decisions()) {
    EXPECT_EQ(d.view, 1U);
  }
}

TEST(HotStuffProtocol, ToleratesFSilent) {
  Cluster cluster(fault_config(10, 3, Fault::kSilentFollowers, 5));
  cluster.start();
  EXPECT_TRUE(cluster.run_to_completion());
  EXPECT_TRUE(cluster.agreement_ok());
  EXPECT_EQ(cluster.correct_decided_count(), 7U);
}

TEST(HotStuffProtocol, SilentLeaderViewChange) {
  Cluster cluster(fault_config(7, 2, Fault::kSilentLeader, 9));
  cluster.start();
  EXPECT_TRUE(cluster.run_to_completion());
  EXPECT_TRUE(cluster.agreement_ok());
  for (const auto& d : cluster.decisions()) {
    EXPECT_GE(d.view, 2U);
  }
}

TEST(HotStuffProtocol, LinearMessageComplexity) {
  Cluster cluster(base_config(20, 0, 3));
  cluster.start();
  ASSERT_TRUE(cluster.run_to_completion());
  // All flows are leader-to-all or all-to-leader: total messages must be
  // O(n), far below PBFT's 2n^2 (= 800 here). 8 flows of <= n-1 messages.
  EXPECT_LE(cluster.network().stats().sends, 8U * 19U);
  EXPECT_GT(cluster.network().stats().sends, 4U * 19U);
}

TEST(HotStuffProtocol, FewerMessagesThanProbftAndPbft) {
  const std::uint32_t n = 30;
  std::uint64_t counts[3];
  int i = 0;
  for (Protocol proto :
       {Protocol::kHotStuff, Protocol::kProbft, Protocol::kPbft}) {
    auto cfg = base_config(n, 0, 3);
    cfg.protocol = proto;
    Cluster cluster(cfg);
    cluster.start();
    EXPECT_TRUE(cluster.run_to_completion());
    counts[i++] = cluster.network().stats().sends;
  }
  EXPECT_LT(counts[0], counts[1]);  // HotStuff < ProBFT
  EXPECT_LT(counts[1], counts[2]);  // ProBFT < PBFT
}

TEST(HotStuffProtocol, LockedQcSetAfterDecision) {
  Cluster cluster(base_config(4, 1, 2));
  cluster.start();
  ASSERT_TRUE(cluster.run_to_completion());
  for (ReplicaId id = 1; id <= 4; ++id) {
    const auto* replica = cluster.hotstuff(id);
    ASSERT_NE(replica, nullptr);
    EXPECT_TRUE(replica->decided());
    EXPECT_FALSE(replica->locked_qc().is_null());
  }
}

TEST(HotStuffProtocol, DeterministicGivenSeed) {
  auto run_once = [](std::uint64_t seed) {
    Cluster cluster(base_config(7, 2, seed));
    cluster.start();
    cluster.run_to_completion();
    std::vector<TimePoint> times;
    for (const auto& d : cluster.decisions()) times.push_back(d.at);
    return times;
  };
  EXPECT_EQ(run_once(4), run_once(4));
}

TEST(HotStuffProtocol, SurvivesPreGstAsynchrony) {
  auto cfg = base_config(7, 2, 13);
  cfg.latency.gst = 400'000;
  cfg.latency.max_delay_pre = 200'000;
  Cluster cluster(cfg);
  cluster.start();
  EXPECT_TRUE(cluster.run_to_completion(/*deadline=*/300'000'000));
  EXPECT_TRUE(cluster.agreement_ok());
}

}  // namespace
}  // namespace probft::sim
