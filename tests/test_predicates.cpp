// Unit tests for the paper's predicates (§3.2): safeProposal,
// validNewLeader, prepared. Uses n = 9, l = 3 so q = 9 = n and s = n: every
// VRF sample covers every replica, making certificate construction
// deterministic.
#include <gtest/gtest.h>

#include "protocol_test_util.hpp"

namespace probft::core {
namespace {

using testutil::TestBed;

class PredicateTest : public ::testing::Test {
 protected:
  PredicateTest() : bed_(9, 2, /*o=*/1.7, /*l=*/3.0) {
    replica_ = bed_.make_replica(2);
    replica_->start();  // enters view 1
  }

  TestBed bed_;
  std::unique_ptr<Replica> replica_;
};

TEST_F(PredicateTest, ViewOneProposalFromLeaderIsSafe) {
  const auto m = bed_.make_propose(1, to_bytes("v"), 1);
  EXPECT_TRUE(replica_->safe_proposal(m));
}

TEST_F(PredicateTest, RejectsNonLeaderSender) {
  // leader(1) = 1; replica 3 proposing is unsafe.
  const auto m = bed_.make_propose(1, to_bytes("v"), 3);
  EXPECT_FALSE(replica_->safe_proposal(m));
}

TEST_F(PredicateTest, RejectsInvalidValue) {
  const auto m = bed_.make_propose(1, Bytes{}, 1);  // empty fails valid()
  EXPECT_FALSE(replica_->safe_proposal(m));
}

TEST_F(PredicateTest, RejectsForgedLeaderSignature) {
  auto m = bed_.make_propose(1, to_bytes("v"), 1);
  m.proposal.leader_sig[0] ^= 1;
  EXPECT_FALSE(replica_->safe_proposal(m));
}

TEST_F(PredicateTest, ViewTwoNeedsJustification) {
  const auto m = bed_.make_propose(2, to_bytes("v"), 2);
  EXPECT_FALSE(replica_->safe_proposal(m));  // |M| = 0 < det quorum
}

TEST_F(PredicateTest, ViewTwoAcceptsQuorumOfEmptyNewLeaders) {
  // det quorum for n=9, f=2 is ceil(12/2) = 6.
  std::vector<NewLeaderMsg> m_set;
  for (ReplicaId s = 1; s <= 6; ++s) {
    m_set.push_back(bed_.make_new_leader(2, s));
  }
  const auto m = bed_.make_propose(2, to_bytes("fresh"), 2, m_set);
  EXPECT_TRUE(replica_->safe_proposal(m));
}

TEST_F(PredicateTest, ViewTwoRejectsDuplicateSenders) {
  std::vector<NewLeaderMsg> m_set;
  for (int i = 0; i < 6; ++i) {
    m_set.push_back(bed_.make_new_leader(2, 1));  // same sender six times
  }
  const auto m = bed_.make_propose(2, to_bytes("fresh"), 2, m_set);
  EXPECT_FALSE(replica_->safe_proposal(m));
}

TEST_F(PredicateTest, ViewTwoEnforcesPreparedValue) {
  // One NewLeader reports value "locked" prepared in view 1 with a valid
  // certificate: the leader MUST propose "locked".
  const Bytes locked = to_bytes("locked");
  auto cert = bed_.make_cert(1, locked, /*target=*/4, /*leader=*/1);
  std::vector<NewLeaderMsg> m_set;
  m_set.push_back(bed_.make_new_leader(2, 4, 1, locked, cert));
  for (ReplicaId s = 5; s <= 9; ++s) {
    m_set.push_back(bed_.make_new_leader(2, s));
  }
  const auto good = bed_.make_propose(2, locked, 2, m_set);
  EXPECT_TRUE(replica_->safe_proposal(good));
  const auto bad = bed_.make_propose(2, to_bytes("other"), 2, m_set);
  EXPECT_FALSE(replica_->safe_proposal(bad));
}

TEST_F(PredicateTest, ModePicksMostFrequentValueOfHighestView) {
  // Two values prepared in view 1: "a" by two replicas, "b" by one. The
  // leader must propose "a".
  const Bytes a = to_bytes("a"), b = to_bytes("b");
  std::vector<NewLeaderMsg> m_set;
  m_set.push_back(
      bed_.make_new_leader(2, 3, 1, a, bed_.make_cert(1, a, 3, 1)));
  m_set.push_back(
      bed_.make_new_leader(2, 4, 1, a, bed_.make_cert(1, a, 4, 1)));
  m_set.push_back(
      bed_.make_new_leader(2, 5, 1, b, bed_.make_cert(1, b, 5, 1)));
  for (ReplicaId s = 6; s <= 8; ++s) {
    m_set.push_back(bed_.make_new_leader(2, s));
  }
  EXPECT_TRUE(
      replica_->safe_proposal(bed_.make_propose(2, a, 2, m_set)));
  EXPECT_FALSE(
      replica_->safe_proposal(bed_.make_propose(2, b, 2, m_set)));
}

TEST_F(PredicateTest, ValidNewLeaderEmptyPrepared) {
  EXPECT_TRUE(replica_->valid_new_leader(bed_.make_new_leader(2, 3)));
}

TEST_F(PredicateTest, ValidNewLeaderWithCert) {
  const Bytes val = to_bytes("x");
  const auto cert = bed_.make_cert(1, val, 3, 1);
  EXPECT_TRUE(replica_->valid_new_leader(
      bed_.make_new_leader(2, 3, 1, val, cert)));
}

TEST_F(PredicateTest, ValidNewLeaderRejectsFuturePreparedView) {
  const Bytes val = to_bytes("x");
  const auto cert = bed_.make_cert(1, val, 3, 1);
  // prepared_view (2) >= view (2) must be rejected.
  EXPECT_FALSE(replica_->valid_new_leader(
      bed_.make_new_leader(2, 3, 2, val, cert)));
}

TEST_F(PredicateTest, ValidNewLeaderRejectsCertForOtherReplica) {
  // Certificate addressed to replica 4 cannot be claimed by replica 3
  // unless every sample happens to include 3 — break it by dropping the
  // cert check target: craft cert for target 4, claim as sender 5 whose
  // membership is not guaranteed... with s == n all samples cover everyone,
  // so instead corrupt one prepare's sample membership directly.
  const Bytes val = to_bytes("x");
  auto cert = bed_.make_cert(1, val, 4, 1);
  ASSERT_FALSE(cert.empty());
  // Remove replica 4 from the first prepare's claimed sample: the VRF proof
  // no longer matches the claimed sample.
  auto tampered = TestBed::clone_cert_entry(cert[0]);
  auto& sample = tampered->sample;
  sample.erase(std::remove(sample.begin(), sample.end(), 4), sample.end());
  cert[0] = tampered;
  EXPECT_FALSE(replica_->valid_new_leader(
      bed_.make_new_leader(2, 4, 1, val, cert)));
}

TEST_F(PredicateTest, PreparedCertValidHappyPath) {
  const Bytes val = to_bytes("x");
  const auto cert = bed_.make_cert(1, val, 7, 1);
  EXPECT_TRUE(replica_->prepared_cert_valid(cert, 1, val, 7));
}

TEST_F(PredicateTest, PreparedCertRejectsTooFew) {
  const Bytes val = to_bytes("x");
  auto cert = bed_.make_cert(1, val, 7, 1);
  cert.pop_back();
  EXPECT_FALSE(replica_->prepared_cert_valid(cert, 1, val, 7));
}

TEST_F(PredicateTest, PreparedCertRejectsMixedValues) {
  const Bytes val = to_bytes("x");
  auto cert = bed_.make_cert(1, val, 7, 1);
  auto other = bed_.make_cert(1, to_bytes("y"), 7, 1);
  cert[0] = other[0];
  EXPECT_FALSE(replica_->prepared_cert_valid(cert, 1, val, 7));
}

TEST_F(PredicateTest, PreparedCertRejectsDuplicateSenders) {
  const Bytes val = to_bytes("x");
  auto cert = bed_.make_cert(1, val, 7, 1);
  for (auto& m : cert) m = cert[0];  // all from the same sender
  EXPECT_FALSE(replica_->prepared_cert_valid(cert, 1, val, 7));
}

TEST_F(PredicateTest, PreparedCertRejectsWrongView) {
  const Bytes val = to_bytes("x");
  const auto cert = bed_.make_cert(1, val, 7, 1);
  EXPECT_FALSE(replica_->prepared_cert_valid(cert, 2, val, 7));
}

TEST_F(PredicateTest, PreparedCertRejectsViewZero) {
  EXPECT_FALSE(replica_->prepared_cert_valid({}, 0, to_bytes("x"), 7));
}

}  // namespace
}  // namespace probft::core
