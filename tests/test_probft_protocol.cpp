// End-to-end ProBFT integration tests on the simulated network.
#include <gtest/gtest.h>

#include <cmath>

#include "sim/cluster.hpp"
#include "sim/scenario.hpp"

namespace probft::sim {
namespace {

ClusterConfig base_config(std::uint32_t n, std::uint32_t f,
                          std::uint64_t seed = 1) {
  ClusterConfig cfg;
  cfg.protocol = Protocol::kProbft;
  cfg.n = n;
  cfg.f = f;
  cfg.seed = seed;
  cfg.sync.base_timeout = 100'000;
  cfg.latency.min_delay = 500;
  cfg.latency.max_delay_post = 5'000;
  return cfg;
}

/// Fault shapes come from the scenario harness; only the timing knobs of
/// base_config (and the per-test quorum factor) are layered on top.
ClusterConfig fault_config(std::uint32_t n, std::uint32_t f, Fault fault,
                           std::uint64_t seed, double l) {
  ScenarioSpec spec;
  spec.protocol = Protocol::kProbft;
  spec.n = n;
  spec.f = f;
  spec.l = l;
  spec.fault = fault;
  const ClusterConfig timing = base_config(n, f);
  return make_cluster_config(spec, seed, timing.sync, timing.latency);
}

TEST(ProbftProtocol, HappyPathSmallCluster) {
  // n = 4, l = 2 -> q = 4 = n, s = 4: every replica needs everyone's
  // messages; works because all replicas are honest.
  Cluster cluster(base_config(4, 0));
  cluster.start();
  EXPECT_TRUE(cluster.run_to_completion());
  EXPECT_TRUE(cluster.agreement_ok());
  for (const auto& d : cluster.decisions()) {
    EXPECT_EQ(d.view, 1U);
  }
}

TEST(ProbftProtocol, HappyPathMediumCluster) {
  Cluster cluster(base_config(30, 0, 7));
  cluster.start();
  EXPECT_TRUE(cluster.run_to_completion());
  EXPECT_TRUE(cluster.agreement_ok());
  EXPECT_EQ(cluster.correct_decided_count(), 30U);
}

TEST(ProbftProtocol, DecidedValueIsTheLeaders) {
  Cluster cluster(base_config(10, 0, 3));
  cluster.start();
  ASSERT_TRUE(cluster.run_to_completion());
  const auto values = cluster.decided_values();
  ASSERT_EQ(values.size(), 1U);
  // Leader of view 1 is replica 1: my_value ends with id bytes (0,1).
  const Bytes& v = *values.begin();
  EXPECT_EQ(v[v.size() - 1], 1);
  EXPECT_EQ(v[v.size() - 2], 0);
}

TEST(ProbftProtocol, DeterministicGivenSeed) {
  auto run_once = [](std::uint64_t seed) {
    Cluster cluster(base_config(12, 0, seed));
    cluster.start();
    cluster.run_to_completion();
    std::vector<std::pair<ReplicaId, TimePoint>> trace;
    for (const auto& d : cluster.decisions()) {
      trace.emplace_back(d.replica, d.at);
    }
    return trace;
  };
  EXPECT_EQ(run_once(5), run_once(5));
  EXPECT_NE(run_once(5), run_once(6));
}

TEST(ProbftProtocol, SilentByzantineFollowersTolerated) {
  // n = 16, f = 3 silent followers; l = 1.5 keeps q = 6 well below the 13
  // correct senders, so quorums still form.
  Cluster cluster(
      fault_config(16, 3, Fault::kSilentFollowers, 21, /*l=*/1.5));
  cluster.start();
  EXPECT_TRUE(cluster.run_to_completion());
  EXPECT_TRUE(cluster.agreement_ok());
  EXPECT_EQ(cluster.correct_decided_count(), 13U);
}

TEST(ProbftProtocol, SilentLeaderTriggersViewChange) {
  // Replica 1 (leader of view 1) is silent: the synchronizer must move
  // everyone to view 2 whose leader (replica 2) then drives a decision.
  // l = 1.5: q = 5 <= 9 correct senders.
  Cluster cluster(fault_config(10, 2, Fault::kSilentLeader, 33, /*l=*/1.5));
  cluster.start();
  EXPECT_TRUE(cluster.run_to_completion());
  EXPECT_TRUE(cluster.agreement_ok());
  for (const auto& d : cluster.decisions()) {
    EXPECT_GE(d.view, 2U);
  }
  const auto values = cluster.decided_values();
  ASSERT_EQ(values.size(), 1U);
  const Bytes& v = *values.begin();
  EXPECT_EQ(v[v.size() - 1], 2);  // view-2 leader's value
}

TEST(ProbftProtocol, SurvivesPreGstAsynchrony) {
  // Messages are arbitrarily delayed (up to 300ms) before GST at 500ms;
  // liveness must resume after GST.
  auto cfg = base_config(10, 0, 44);
  cfg.latency.gst = 500'000;
  cfg.latency.max_delay_pre = 300'000;
  cfg.latency.hold_until_gst_prob = 0.3;
  cfg.sync.base_timeout = 50'000;
  Cluster cluster(cfg);
  cluster.start();
  EXPECT_TRUE(cluster.run_to_completion(/*deadline=*/300'000'000));
  EXPECT_TRUE(cluster.agreement_ok());
}

TEST(ProbftProtocol, MessageCountsMatchAnalyticModel) {
  // Normal case (correct leader, view 1): Propose = n-1 sends, Prepare and
  // Commit = one s-sized multicast per replica.
  Cluster cluster(base_config(25, 0, 9));
  cluster.start();
  ASSERT_TRUE(cluster.run_to_completion());
  const auto& stats = cluster.network().stats();
  const std::uint32_t n = 25;
  const auto q = static_cast<std::uint32_t>(std::ceil(2.0 * 5.0));  // l√n
  const auto s = static_cast<std::uint32_t>(std::ceil(1.7 * q));
  EXPECT_EQ(stats.sends_for(core::tag_byte(core::MsgTag::kPropose)), n - 1U);
  EXPECT_EQ(stats.sends_for(core::tag_byte(core::MsgTag::kPrepare)),
            static_cast<std::uint64_t>(n) * s);
  EXPECT_LE(stats.sends_for(core::tag_byte(core::MsgTag::kCommit)),
            static_cast<std::uint64_t>(n) * s);
  EXPECT_GT(stats.sends_for(core::tag_byte(core::MsgTag::kCommit)), 0U);
  EXPECT_EQ(stats.sends_for(core::tag_byte(core::MsgTag::kNewLeader)), 0U);
}

TEST(ProbftProtocol, FarFewerMessagesThanPbft) {
  auto probft_cfg = base_config(40, 0, 13);
  Cluster probft_cluster(probft_cfg);
  probft_cluster.start();
  ASSERT_TRUE(probft_cluster.run_to_completion());

  auto pbft_cfg = base_config(40, 0, 13);
  pbft_cfg.protocol = Protocol::kPbft;
  Cluster pbft_cluster(pbft_cfg);
  pbft_cluster.start();
  ASSERT_TRUE(pbft_cluster.run_to_completion());

  // At n = 40 ProBFT already uses well under 70% of PBFT's messages; the
  // gap widens with n (the Figure 1b bench covers the paper's n >= 100
  // range where it reaches ~18-25%).
  EXPECT_LT(static_cast<double>(probft_cluster.network().stats().sends),
            0.7 * static_cast<double>(pbft_cluster.network().stats().sends));
}

TEST(ProbftProtocol, RunStopsAtDeadlineWithoutProgress) {
  // Three of four replicas silent: no quorum possible; the run must
  // terminate at the deadline rather than loop forever.
  auto cfg = base_config(4, 1, 1);
  cfg.behaviors = {Behavior::kHonest, Behavior::kSilent, Behavior::kSilent,
                   Behavior::kSilent};
  Cluster cluster(cfg);
  cluster.start();
  EXPECT_FALSE(cluster.run_to_completion(/*deadline=*/2'000'000));
  EXPECT_FALSE(cluster.all_correct_decided());
}

TEST(ProbftProtocol, ValidityDecidedValueWasProposed) {
  Cluster cluster(base_config(8, 0, 17));
  cluster.start();
  ASSERT_TRUE(cluster.run_to_completion());
  for (const auto& d : cluster.decisions()) {
    const std::string prefix(d.value.begin(), d.value.begin() + 6);
    EXPECT_EQ(prefix, "value-");
  }
}

TEST(ProbftProtocol, DecideOncePerReplica) {
  Cluster cluster(base_config(12, 0, 19));
  cluster.start();
  ASSERT_TRUE(cluster.run_to_completion());
  std::set<ReplicaId> seen;
  for (const auto& d : cluster.decisions()) {
    EXPECT_TRUE(seen.insert(d.replica).second)
        << "replica " << d.replica << " decided twice";
  }
}

TEST(ProbftProtocol, ReplicaStateInspection) {
  Cluster cluster(base_config(6, 0, 23));
  cluster.start();
  ASSERT_TRUE(cluster.run_to_completion());
  for (ReplicaId id = 1; id <= 6; ++id) {
    const auto* replica = cluster.probft(id);
    ASSERT_NE(replica, nullptr);
    EXPECT_TRUE(replica->decided());
    EXPECT_GE(replica->prepared_view(), 1U);
    EXPECT_FALSE(replica->view_blocked());
  }
}

}  // namespace
}  // namespace probft::sim
