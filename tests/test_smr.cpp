// State machine replication over ProBFT (src/smr): a fleet of SmrReplicas
// on the simulated network must produce identical logs.
#include <gtest/gtest.h>

#include <memory>

#include "common/rng.hpp"
#include "net/network.hpp"
#include "smr/smr_replica.hpp"

namespace probft::smr {
namespace {

struct Fleet {
  net::Simulator sim;
  std::unique_ptr<net::Network> net;
  std::unique_ptr<crypto::CryptoSuite> suite;
  std::vector<crypto::KeyPair> keys;
  std::vector<std::unique_ptr<SmrReplica>> replicas;  // 1-based
  std::vector<std::vector<Bytes>> commits;            // per replica

  explicit Fleet(std::uint32_t n, std::uint64_t max_slots = 8,
                 std::uint64_t seed = 1) {
    net::LatencyConfig latency;
    latency.min_delay = 500;
    latency.max_delay_post = 4'000;
    net = std::make_unique<net::Network>(sim, n, seed, latency);
    suite = crypto::make_sim_suite();
    keys.resize(n + 1);
    std::vector<Bytes> key_table(n + 1);
    for (ReplicaId id = 1; id <= n; ++id) {
      keys[id] = suite->keygen(mix64(seed, id));
      key_table[id] = keys[id].public_key;
    }
    const crypto::PublicKeyDir public_keys(std::move(key_table));
    commits.resize(n + 1);
    replicas.resize(n + 1);
    for (ReplicaId id = 1; id <= n; ++id) {
      SmrConfig cfg;
      cfg.id = id;
      cfg.n = n;
      cfg.f = 0;
      cfg.max_slots = max_slots;
      cfg.suite = suite.get();
      cfg.secret_key = keys[id].secret_key;
      cfg.public_keys = public_keys;
      cfg.sync.base_timeout = 100'000;
      core::ProtocolHost hooks;
      hooks.send = [this, id](ReplicaId to, std::uint8_t tag, const Bytes& m) {
        net->send(id, to, tag, m);
      };
      hooks.broadcast = [this, id](std::uint8_t tag, const Bytes& m) {
        net->broadcast(id, tag, m);
      };
      hooks.set_timer = [this](Duration d, std::function<void()> fn) {
        sim.schedule_after(d, std::move(fn));
      };
      hooks.on_commit = [this, id](std::uint64_t, const Bytes& command) {
        commits[id].push_back(command);
      };
      replicas[id] = std::make_unique<SmrReplica>(std::move(cfg), hooks);
      net->register_handler(
          id, [this, id](ReplicaId from, std::uint8_t tag, const Bytes& m) {
            replicas[id]->on_message(from, tag, m);
          });
    }
  }

  void start_all() {
    for (std::size_t id = 1; id < replicas.size(); ++id) {
      replicas[id]->start();
    }
  }

  /// Runs until every replica committed `slots` slots (or deadline).
  bool run_until_committed(std::uint64_t slots,
                           TimePoint deadline = 300'000'000) {
    while (sim.now() < deadline) {
      bool all = true;
      for (std::size_t id = 1; id < replicas.size(); ++id) {
        if (replicas[id]->committed_slots() < slots) {
          all = false;
          break;
        }
      }
      if (all) return true;
      if (!sim.step()) break;
    }
    return false;
  }
};

TEST(Smr, SingleSlotCommits) {
  Fleet fleet(6, /*max_slots=*/1);
  fleet.replicas[1]->submit(to_bytes("cmd-1"));
  fleet.start_all();
  ASSERT_TRUE(fleet.run_until_committed(1));
  for (ReplicaId id = 1; id <= 6; ++id) {
    ASSERT_EQ(fleet.replicas[id]->log().size(), 1U);
    EXPECT_EQ(fleet.replicas[id]->log()[0], to_bytes("cmd-1"));
  }
}

TEST(Smr, LogsAreIdenticalAcrossReplicas) {
  Fleet fleet(6, /*max_slots=*/5);
  // Several clients submit to different replicas.
  fleet.replicas[1]->submit(to_bytes("a"));
  fleet.replicas[2]->submit(to_bytes("b"));
  fleet.replicas[3]->submit(to_bytes("c"));
  fleet.start_all();
  ASSERT_TRUE(fleet.run_until_committed(5));
  const auto& reference = fleet.replicas[1]->log();
  ASSERT_EQ(reference.size(), 5U);
  for (ReplicaId id = 2; id <= 6; ++id) {
    EXPECT_EQ(fleet.replicas[id]->log(), reference) << "replica " << id;
  }
}

TEST(Smr, SubmittedCommandsEventuallyCommit) {
  // Slot leaders rotate with views (leader(1) = 1 for every slot's view 1
  // here), so replica 1's commands commit first; with enough slots every
  // submitted command lands.
  Fleet fleet(4, /*max_slots=*/4);
  fleet.replicas[1]->submit(to_bytes("first"));
  fleet.replicas[1]->submit(to_bytes("second"));
  fleet.start_all();
  ASSERT_TRUE(fleet.run_until_committed(4));
  EXPECT_TRUE(fleet.replicas[2]->has_committed(to_bytes("first")));
  EXPECT_TRUE(fleet.replicas[2]->has_committed(to_bytes("second")));
  EXPECT_EQ(fleet.replicas[1]->pending_commands(), 0U);
}

TEST(Smr, NoopsFillSlotsWithoutCommands) {
  Fleet fleet(4, /*max_slots=*/2);
  fleet.start_all();  // nobody submits anything
  ASSERT_TRUE(fleet.run_until_committed(2));
  // Slots decided on no-ops; the commit callback skips them.
  for (ReplicaId id = 1; id <= 4; ++id) {
    EXPECT_EQ(fleet.replicas[id]->committed_slots(), 2U);
    EXPECT_TRUE(fleet.commits[id].empty());
  }
}

TEST(Smr, CommitCallbackFiresInSlotOrder) {
  Fleet fleet(4, /*max_slots=*/3);
  fleet.replicas[1]->submit(to_bytes("x"));
  fleet.replicas[1]->submit(to_bytes("y"));
  fleet.replicas[1]->submit(to_bytes("z"));
  fleet.start_all();
  ASSERT_TRUE(fleet.run_until_committed(3));
  for (ReplicaId id = 1; id <= 4; ++id) {
    ASSERT_EQ(fleet.commits[id].size(), 3U);
    EXPECT_EQ(fleet.commits[id][0], to_bytes("x"));
    EXPECT_EQ(fleet.commits[id][1], to_bytes("y"));
    EXPECT_EQ(fleet.commits[id][2], to_bytes("z"));
  }
}

TEST(Smr, MaxSlotsBoundsTheLog) {
  Fleet fleet(4, /*max_slots=*/2);
  fleet.replicas[1]->submit(to_bytes("a"));
  fleet.start_all();
  ASSERT_TRUE(fleet.run_until_committed(2));
  fleet.sim.run_until(fleet.sim.now() + 1'000'000);
  for (ReplicaId id = 1; id <= 4; ++id) {
    EXPECT_EQ(fleet.replicas[id]->committed_slots(), 2U);
  }
}

TEST(Smr, RejectsEmptyAndReservedCommands) {
  Fleet fleet(4, 1);
  EXPECT_THROW(fleet.replicas[1]->submit(Bytes{}), std::invalid_argument);
  EXPECT_THROW(fleet.replicas[1]->submit(to_bytes("__noop__")),
               std::invalid_argument);
}

TEST(Smr, RejectsBadConfig) {
  SmrConfig cfg;  // id = 0
  EXPECT_THROW(SmrReplica(cfg, {}), std::invalid_argument);
}

TEST(Smr, MalformedEnvelopesAreDropped) {
  Fleet fleet(4, 1);
  fleet.start_all();
  fleet.replicas[1]->on_message(2, kSmrTag, Bytes{0x01});        // truncated
  fleet.replicas[1]->on_message(2, 0x33, to_bytes("whatever"));  // wrong tag
  EXPECT_EQ(fleet.replicas[1]->committed_slots(), 0U);
}

TEST(Smr, DeterministicAcrossRuns) {
  auto run_once = [](std::uint64_t seed) {
    Fleet fleet(5, 3, seed);
    fleet.replicas[1]->submit(to_bytes("p"));
    fleet.replicas[2]->submit(to_bytes("q"));
    fleet.start_all();
    fleet.run_until_committed(3);
    return fleet.replicas[1]->log();
  };
  EXPECT_EQ(run_once(42), run_once(42));
}

}  // namespace
}  // namespace probft::smr
