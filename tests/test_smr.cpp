// Pipelined, batched state machine replication over ProBFT (src/smr): a
// fleet of SmrReplicas on the simulated network must produce identical
// logs, execute each (client, seq) exactly once, keep at most
// window + retire_tail consensus instances alive, and open no slots while
// idle.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "common/rng.hpp"
#include "net/network.hpp"
#include "smr/smr_replica.hpp"

namespace probft::smr {
namespace {

struct Fleet {
  net::Simulator sim;
  std::unique_ptr<net::Network> net;
  std::unique_ptr<crypto::CryptoSuite> suite;
  std::vector<crypto::KeyPair> keys;
  std::vector<std::unique_ptr<SmrReplica>> replicas;  // 1-based
  std::vector<std::vector<Bytes>> commits;            // per replica

  explicit Fleet(std::uint32_t n, SmrOptions options = {},
                 std::uint64_t seed = 1) {
    net::LatencyConfig latency;
    latency.min_delay = 500;
    latency.max_delay_post = 4'000;
    net = std::make_unique<net::Network>(sim, n, seed, latency);
    suite = crypto::make_sim_suite();
    keys.resize(n + 1);
    std::vector<Bytes> key_table(n + 1);
    for (ReplicaId id = 1; id <= n; ++id) {
      keys[id] = suite->keygen(mix64(seed, id));
      key_table[id] = keys[id].public_key;
    }
    const crypto::PublicKeyDir public_keys(std::move(key_table));
    commits.resize(n + 1);
    replicas.resize(n + 1);
    for (ReplicaId id = 1; id <= n; ++id) {
      SmrConfig cfg;
      cfg.id = id;
      cfg.n = n;
      cfg.f = 0;
      cfg.pipeline = options;
      cfg.suite = suite.get();
      cfg.secret_key = keys[id].secret_key;
      cfg.public_keys = public_keys;
      cfg.sync.base_timeout = 100'000;
      core::ProtocolHost hooks;
      hooks.send = [this, id](ReplicaId to, std::uint8_t tag, const Bytes& m) {
        net->send(id, to, tag, m);
      };
      hooks.broadcast = [this, id](std::uint8_t tag, const Bytes& m) {
        net->broadcast(id, tag, m);
      };
      hooks.set_timer = [this](Duration d, std::function<void()> fn) {
        sim.schedule_after(d, std::move(fn));
      };
      hooks.on_commit = [this, id](std::uint64_t, const Bytes& command) {
        commits[id].push_back(command);
      };
      replicas[id] = std::make_unique<SmrReplica>(std::move(cfg), hooks);
      net->register_handler(
          id, [this, id](ReplicaId from, std::uint8_t tag, const Bytes& m) {
            replicas[id]->on_message(from, tag, m);
          });
    }
  }

  void start_all() {
    for (std::size_t id = 1; id < replicas.size(); ++id) {
      replicas[id]->start();
    }
  }

  /// Runs until every replica executed `commands` requests (or deadline).
  bool run_until_executed(std::uint64_t commands,
                          TimePoint deadline = 300'000'000) {
    while (sim.now() < deadline) {
      bool all = true;
      for (std::size_t id = 1; id < replicas.size(); ++id) {
        if (replicas[id]->executed_commands() < commands) {
          all = false;
          break;
        }
      }
      if (all) return true;
      if (!sim.step()) break;
    }
    return false;
  }
};

TEST(Smr, SingleCommandCommitsEverywhere) {
  Fleet fleet(6);
  fleet.replicas[1]->submit(to_bytes("cmd-1"));
  fleet.start_all();
  ASSERT_TRUE(fleet.run_until_executed(1));
  for (ReplicaId id = 1; id <= 6; ++id) {
    ASSERT_EQ(fleet.replicas[id]->log().size(), 1U);
    EXPECT_EQ(fleet.replicas[id]->log()[0], to_bytes("cmd-1"));
  }
}

TEST(Smr, LogsAreIdenticalAcrossReplicas) {
  Fleet fleet(6);
  // Several clients submit to different replicas; non-leader submissions
  // are forwarded to the round-robin view-1 leader.
  fleet.replicas[1]->submit(to_bytes("a"));
  fleet.replicas[2]->submit(to_bytes("b"));
  fleet.replicas[3]->submit(to_bytes("c"));
  fleet.start_all();
  ASSERT_TRUE(fleet.run_until_executed(3));
  const auto& reference = fleet.replicas[1]->log();
  ASSERT_EQ(reference.size(), 3U);
  for (ReplicaId id = 2; id <= 6; ++id) {
    EXPECT_EQ(fleet.replicas[id]->log(), reference) << "replica " << id;
    EXPECT_EQ(fleet.replicas[id]->slot_log(), fleet.replicas[1]->slot_log())
        << "replica " << id;
  }
  EXPECT_TRUE(fleet.replicas[4]->has_committed(to_bytes("b")));
}

TEST(Smr, BatchingAmortizesSlots) {
  SmrOptions options;
  options.batch_max_commands = 16;
  options.window = 4;
  Fleet fleet(4, options);
  for (int i = 0; i < 32; ++i) {
    fleet.replicas[1]->submit(to_bytes("op-" + std::to_string(i)));
  }
  fleet.start_all();
  ASSERT_TRUE(fleet.run_until_executed(32));
  // 32 commands in batches of 16: exactly 2 slots.
  EXPECT_EQ(fleet.replicas[1]->committed_slots(), 2U);
  EXPECT_EQ(fleet.replicas[1]->log().size(), 32U);
}

TEST(Smr, WindowRunsSlotsConcurrently) {
  SmrOptions options;
  options.window = 4;
  options.batch_max_commands = 1;
  Fleet fleet(4, options);
  for (int i = 0; i < 8; ++i) {
    fleet.replicas[1]->submit(to_bytes("op-" + std::to_string(i)));
  }
  fleet.start_all();
  // The leader must have slots 0..3 in flight before anything executed.
  bool saw_full_window = false;
  while (fleet.sim.now() < 300'000'000) {
    if (fleet.replicas[1]->next_unopened_slot() -
            fleet.replicas[1]->committed_slots() >=
        4) {
      saw_full_window = true;
      break;
    }
    if (!fleet.sim.step()) break;
  }
  EXPECT_TRUE(saw_full_window);
  ASSERT_TRUE(fleet.run_until_executed(8));
  EXPECT_EQ(fleet.replicas[1]->committed_slots(), 8U);
}

TEST(Smr, SerialWindowMatchesPipelinedLog) {
  // Acceptance: per-seed logs are bit-identical across window sizes for
  // fault-free runs — the pipeline only changes scheduling, not content.
  auto run = [](std::uint32_t window) {
    SmrOptions options;
    options.window = window;
    options.batch_max_commands = 4;
    Fleet fleet(5, options, /*seed=*/7);
    for (int i = 0; i < 16; ++i) {
      fleet.replicas[1]->submit(to_bytes("cmd-" + std::to_string(i)));
    }
    fleet.start_all();
    EXPECT_TRUE(fleet.run_until_executed(16));
    return fleet.replicas[1]->slot_log();
  };
  const auto serial = run(1);
  const auto pipelined = run(8);
  EXPECT_EQ(serial, pipelined);
}

TEST(Smr, IdleFleetOpensNoSlots) {
  Fleet fleet(4);
  fleet.start_all();  // nobody submits anything
  fleet.sim.run_until(5'000'000);
  for (ReplicaId id = 1; id <= 4; ++id) {
    EXPECT_EQ(fleet.replicas[id]->committed_slots(), 0U);
    EXPECT_EQ(fleet.replicas[id]->next_unopened_slot(), 0U);
    EXPECT_EQ(fleet.replicas[id]->open_instances(), 0U);
  }
  // Demand-driven opening: an idle fleet sends nothing at all.
  EXPECT_EQ(fleet.net->stats().sends, 0U);
}

TEST(Smr, PacingTimerFlushesPartialBatch) {
  SmrOptions options;
  options.batch_max_commands = 64;  // never fills
  options.batch_timeout = 10'000;
  Fleet fleet(4, options);
  fleet.replicas[1]->submit(to_bytes("lonely"));
  fleet.start_all();
  ASSERT_TRUE(fleet.run_until_executed(1));
  EXPECT_EQ(fleet.replicas[2]->log()[0], to_bytes("lonely"));
}

TEST(Smr, RetriedRequestExecutesExactlyOnce) {
  Fleet fleet(4);
  const std::uint64_t client = 4242;
  // The client submits to replica 1, then retries the same request at
  // replica 2 (e.g. after a timeout): the request must execute once.
  EXPECT_TRUE(fleet.replicas[1]->submit_request(client, 1, to_bytes("pay")));
  EXPECT_TRUE(fleet.replicas[2]->submit_request(client, 1, to_bytes("pay")));
  fleet.start_all();
  ASSERT_TRUE(fleet.run_until_executed(1));
  fleet.sim.run_until(fleet.sim.now() + 2'000'000);
  for (ReplicaId id = 1; id <= 4; ++id) {
    EXPECT_EQ(fleet.replicas[id]->executed_commands(), 1U) << "replica " << id;
    EXPECT_EQ(fleet.replicas[id]->last_executed_seq(client), 1U);
    EXPECT_EQ(fleet.commits[id].size(), 1U);
  }
}

TEST(Smr, DuplicateSubmitRejectedLocally) {
  Fleet fleet(4);
  EXPECT_TRUE(fleet.replicas[1]->submit_request(7, 3, to_bytes("x")));
  EXPECT_FALSE(fleet.replicas[1]->submit_request(7, 3, to_bytes("x")));
  fleet.start_all();
  ASSERT_TRUE(fleet.run_until_executed(1));
  // Post-execution retry is also a no-op.
  EXPECT_FALSE(fleet.replicas[1]->submit_request(7, 3, to_bytes("x")));
  EXPECT_FALSE(fleet.replicas[1]->submit_request(7, 2, to_bytes("old")));
}

TEST(Smr, RetirementBoundsLiveInstances) {
  // Regression for the unbounded instances_ map: a long log (max_slots ≫
  // window) must not keep every decided core::Replica alive.
  SmrOptions options;
  options.window = 4;
  options.batch_max_commands = 1;
  options.retire_tail = 2;
  options.max_slots = 1024;
  Fleet fleet(4, options);
  for (int i = 0; i < 48; ++i) {
    fleet.replicas[1]->submit(to_bytes("op-" + std::to_string(i)));
  }
  fleet.start_all();
  const std::size_t bound = options.window + options.retire_tail;
  while (fleet.sim.now() < 300'000'000) {
    bool all = true;
    for (ReplicaId id = 1; id <= 4; ++id) {
      EXPECT_LE(fleet.replicas[id]->open_instances(), bound)
          << "replica " << id << " at " << fleet.sim.now();
      if (fleet.replicas[id]->executed_commands() < 48) all = false;
    }
    if (all) break;
    if (!fleet.sim.step()) break;
  }
  for (ReplicaId id = 1; id <= 4; ++id) {
    ASSERT_EQ(fleet.replicas[id]->executed_commands(), 48U);
    EXPECT_EQ(fleet.replicas[id]->committed_slots(), 48U);
    EXPECT_LE(fleet.replicas[id]->open_instances(), bound);
  }
}

TEST(Smr, StragglerCatchesUpViaHints) {
  // Replica 6 is partitioned while the first command decides (at n = 6
  // the q = ⌈2√6⌉ = 5 quorum is reachable without it); the others
  // execute, retire the slot, and freeze its instance. New traffic after
  // the heal makes replica 6 open the missed slot, and decided-value
  // hints from its peers let it catch up.
  SmrOptions options;
  options.window = 2;
  options.retire_tail = 0;
  Fleet fleet(6, options);
  fleet.net->set_filter([](ReplicaId from, ReplicaId to, std::uint8_t) {
    return from == 6 || to == 6;
  });
  fleet.replicas[1]->submit(to_bytes("first"));
  fleet.start_all();
  while (fleet.sim.now() < 100'000'000 &&
         (fleet.replicas[1]->executed_commands() < 1 ||
          fleet.replicas[2]->executed_commands() < 1 ||
          fleet.replicas[5]->executed_commands() < 1)) {
    if (!fleet.sim.step()) break;
  }
  ASSERT_EQ(fleet.replicas[1]->executed_commands(), 1U);
  ASSERT_EQ(fleet.replicas[6]->executed_commands(), 0U);

  fleet.net->clear_filter();
  fleet.replicas[1]->submit(to_bytes("second"));
  ASSERT_TRUE(fleet.run_until_executed(2));
  EXPECT_EQ(fleet.replicas[6]->log(), fleet.replicas[1]->log());
}

TEST(Smr, StragglerCatchesUpFromBeyondTheWindow) {
  // Regression: a replica that misses MORE slots than the open window
  // (here 8 decided slots vs window 2) must still recover — traffic for
  // far-future slots cannot be opened or buffered, so recovery rides
  // entirely on the catch-up pull → hint protocol.
  SmrOptions options;
  options.window = 2;
  options.batch_max_commands = 1;
  options.retire_tail = 0;
  options.catchup_timeout = 50'000;
  Fleet fleet(6, options);
  fleet.net->set_filter([](ReplicaId from, ReplicaId to, std::uint8_t) {
    return from == 6 || to == 6;
  });
  for (int i = 0; i < 8; ++i) {
    fleet.replicas[1]->submit(to_bytes("op-" + std::to_string(i)));
  }
  fleet.start_all();
  while (fleet.sim.now() < 150'000'000 &&
         fleet.replicas[1]->executed_commands() < 8) {
    if (!fleet.sim.step()) break;
  }
  ASSERT_EQ(fleet.replicas[1]->executed_commands(), 8U);
  ASSERT_EQ(fleet.replicas[6]->executed_commands(), 0U);

  fleet.net->clear_filter();
  fleet.replicas[1]->submit(to_bytes("after-heal"));
  ASSERT_TRUE(fleet.run_until_executed(9));
  EXPECT_EQ(fleet.replicas[6]->log(), fleet.replicas[1]->log());
  EXPECT_EQ(fleet.replicas[6]->committed_slots(), 9U);
}

TEST(Smr, ForwardFloodIsBounded) {
  // Regression: a Byzantine peer spamming unique forwarded requests must
  // hit the intake cap, not grow the queue without bound.
  SmrOptions options;
  options.max_pending_requests = 16;
  Fleet fleet(4, options);
  for (std::uint64_t i = 0; i < 200; ++i) {
    Writer w;
    Request{/*client=*/100'000 + i, /*seq=*/1, to_bytes("flood")}.encode(w);
    fleet.replicas[1]->on_message(2, kSmrForwardTag, std::move(w).take());
  }
  EXPECT_LE(fleet.replicas[1]->pending_commands(), 16U);
  // Local submissions see the same backpressure, loudly.
  Fleet small(4, options);
  for (int i = 0; i < 16; ++i) {
    small.replicas[1]->submit(to_bytes("fill-" + std::to_string(i)));
  }
  EXPECT_THROW(small.replicas[1]->submit(to_bytes("one-too-many")),
               std::overflow_error);
}

TEST(Smr, RejectsEmptyAndOversizedCommands) {
  SmrOptions options;
  options.batch_max_bytes = 256;
  Fleet fleet(4, options);
  EXPECT_THROW(fleet.replicas[1]->submit(Bytes{}), std::invalid_argument);
  EXPECT_THROW(fleet.replicas[1]->submit(Bytes(512, 0xaa)),
               std::invalid_argument);
  EXPECT_FALSE(fleet.replicas[1]->submit_request(1, 1, Bytes{}));
  EXPECT_FALSE(fleet.replicas[1]->submit_request(1, 1, Bytes(512, 0xaa)));
}

TEST(Smr, RejectsBadConfig) {
  SmrConfig cfg;  // id = 0
  EXPECT_THROW(SmrReplica(cfg, {}), std::invalid_argument);
  Fleet fleet(1);  // n = 1 just to borrow key material
  SmrConfig zero_window;
  zero_window.id = 1;
  zero_window.n = 1;
  zero_window.suite = fleet.suite.get();
  zero_window.secret_key = fleet.keys[1].secret_key;
  zero_window.public_keys = crypto::PublicKeyDir(
      std::vector<Bytes>{Bytes{}, fleet.keys[1].public_key});
  zero_window.pipeline.window = 0;
  EXPECT_THROW(SmrReplica(zero_window, {}), std::invalid_argument);
}

TEST(Smr, MalformedEnvelopesAreDropped) {
  Fleet fleet(4);
  fleet.start_all();
  fleet.replicas[1]->on_message(2, kSmrTag, Bytes{0x01});        // truncated
  fleet.replicas[1]->on_message(2, kSmrHintTag, Bytes{0x01});    // truncated
  fleet.replicas[1]->on_message(2, kSmrForwardTag, Bytes{0x01});  // truncated
  fleet.replicas[1]->on_message(2, kSmrPullTag, Bytes{0x01});    // truncated
  fleet.replicas[1]->on_message(2, 0x33, to_bytes("whatever"));  // wrong tag
  EXPECT_EQ(fleet.replicas[1]->committed_slots(), 0U);
  EXPECT_EQ(fleet.replicas[1]->next_unopened_slot(), 0U);
}

TEST(Smr, DeterministicAcrossRuns) {
  auto run_once = [](std::uint64_t seed) {
    SmrOptions options;
    options.window = 4;
    options.batch_max_commands = 2;
    Fleet fleet(5, options, seed);
    fleet.replicas[1]->submit(to_bytes("p"));
    fleet.replicas[2]->submit(to_bytes("q"));
    fleet.replicas[1]->submit(to_bytes("r"));
    fleet.start_all();
    fleet.run_until_executed(3);
    return fleet.replicas[1]->log();
  };
  EXPECT_EQ(run_once(42), run_once(42));
}

}  // namespace
}  // namespace probft::smr
