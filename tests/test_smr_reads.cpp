// Read fast path tests (smr/read_view.hpp, smr/reads.hpp, the
// submit_read paths in smr/smr_replica.cpp and the client read wire
// messages in net/client.hpp):
//
//  - ReadView projection: key/value split, overwrite, watermark.
//  - Hostile buffers for every new wire message — LeaseRequest,
//    LeaseGrant, ReadIndexRequest, ReadIndexAttest, ReadRequest,
//    ReadReply: truncation at every prefix, trailing bytes, garbage
//    versions, wrong kind bytes, oversize signatures/payloads must all
//    throw CodecError, never misparse.
//  - Fleet behavior on the simulated network: stale-ok/sequential/
//    linearizable semantics, lease serving at the leader, quorum
//    read-index at followers, read timeouts under partition, and the
//    pinned regression — a deposed, partitioned lease holder must NEVER
//    serve a stale linearizable read after a view change decides a
//    conflicting write behind its back.
//  - The same regression over real TCP sockets (thread-per-transport
//    loopback cluster, sender/receiver-side partition filter).
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <chrono>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "net/client.hpp"
#include "net/network.hpp"
#include "net/tcp_transport.hpp"
#include "sim/scenario.hpp"
#include "smr/read_view.hpp"
#include "smr/reads.hpp"
#include "smr/smr_replica.hpp"

namespace probft::smr {
namespace {

// ---- ReadView projection ----

TEST(ReadView, KeySplitsAtFirstEquals) {
  const Bytes kv = to_bytes("account=100");
  EXPECT_EQ(Bytes(read_view_key(ByteSpan(kv.data(), kv.size())).begin(),
                  read_view_key(ByteSpan(kv.data(), kv.size())).end()),
            to_bytes("account"));
  EXPECT_EQ(Bytes(read_view_value(ByteSpan(kv.data(), kv.size())).begin(),
                  read_view_value(ByteSpan(kv.data(), kv.size())).end()),
            to_bytes("100"));
  // '=' in the value stays in the value (split at the FIRST '=').
  const Bytes nested = to_bytes("k=a=b");
  EXPECT_EQ(Bytes(read_view_value(ByteSpan(nested.data(), nested.size()))
                      .begin(),
                  read_view_value(ByteSpan(nested.data(), nested.size()))
                      .end()),
            to_bytes("a=b"));
  // No '=': the whole payload is both key and value — the historical
  // opaque-payload workloads keep their digests and shard placement.
  const Bytes opaque = to_bytes("req-9001-3");
  EXPECT_EQ(Bytes(read_view_key(ByteSpan(opaque.data(), opaque.size()))
                      .begin(),
                  read_view_key(ByteSpan(opaque.data(), opaque.size()))
                      .end()),
            opaque);
  EXPECT_EQ(Bytes(read_view_value(ByteSpan(opaque.data(), opaque.size()))
                      .begin(),
                  read_view_value(ByteSpan(opaque.data(), opaque.size()))
                      .end()),
            opaque);
}

TEST(ReadView, LastWriteWinsAndWatermarkIsMonotonic) {
  ReadView view;
  EXPECT_EQ(view.lookup(ByteSpan{}), nullptr);
  view.apply(0, 0, to_bytes("k=v1"));
  view.apply(0, 1, to_bytes("other=x"));
  view.set_watermark(1);
  const Bytes k = to_bytes("k");
  const ReadViewEntry* entry = view.lookup(ByteSpan(k.data(), k.size()));
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->value, to_bytes("v1"));
  EXPECT_EQ(entry->slot, 0U);
  EXPECT_EQ(entry->index, 0U);

  view.apply(3, 7, to_bytes("k=v2"));
  view.set_watermark(4);
  entry = view.lookup(ByteSpan(k.data(), k.size()));
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->value, to_bytes("v2"));
  EXPECT_EQ(entry->slot, 3U);
  EXPECT_EQ(entry->index, 7U);
  EXPECT_EQ(view.watermark(), 4U);
  // set_watermark never regresses.
  view.set_watermark(2);
  EXPECT_EQ(view.watermark(), 4U);
  EXPECT_EQ(view.size(), 2U);

  const Bytes missing = to_bytes("nope");
  EXPECT_EQ(view.lookup(ByteSpan(missing.data(), missing.size())), nullptr);
}

// ---- hostile buffers: read-path wire messages ----

/// No strict prefix of `wire` may decode, and one trailing byte must be
/// rejected too: truncation/corruption throws, never misparses.
template <typename T>
void expect_strict_codec(const Bytes& wire) {
  for (std::size_t len = 0; len < wire.size(); ++len) {
    EXPECT_THROW((void)T::decode(ByteSpan(wire.data(), len)), CodecError)
        << "truncated prefix length " << len;
  }
  Bytes trailing = wire;
  trailing.push_back(0x00);
  EXPECT_THROW(
      (void)T::decode(ByteSpan(trailing.data(), trailing.size())),
      CodecError)
      << "trailing byte accepted";
}

/// Garbage version bytes must be rejected (valid = `good`).
template <typename T>
void expect_version_checked(const Bytes& wire, std::uint8_t good) {
  Bytes mutated = wire;
  for (const std::uint8_t version : {0x00, 0x02, 0x03, 0x7f, 0xff}) {
    if (version == good) continue;
    mutated[0] = version;
    EXPECT_THROW(
        (void)T::decode(ByteSpan(mutated.data(), mutated.size())),
        CodecError)
        << "garbage version " << int(version);
  }
}

TEST(ReadWire, LeaseRequestRoundTripAndHostileBuffers) {
  LeaseRequest request;
  request.epoch = 0x0102030405060708ULL;
  request.leader = 3;
  const Bytes wire = request.encode();
  EXPECT_EQ(wire[0], kReadWireVersion);
  EXPECT_EQ(peek_read_msg_kind(ByteSpan(wire.data(), wire.size())),
            kLeaseRequestKind);
  EXPECT_EQ(LeaseRequest::decode(ByteSpan(wire.data(), wire.size())),
            request);
  expect_strict_codec<LeaseRequest>(wire);
  expect_version_checked<LeaseRequest>(wire, kReadWireVersion);
  // Wrong kind byte: a LeaseGrant frame must not decode as a request.
  Bytes wrong_kind = wire;
  wrong_kind[1] = kLeaseGrantKind;
  EXPECT_THROW((void)LeaseRequest::decode(
                   ByteSpan(wrong_kind.data(), wrong_kind.size())),
               CodecError);
}

TEST(ReadWire, LeaseGrantRoundTripAndHostileBuffers) {
  LeaseGrant grant;
  grant.epoch = 42;
  grant.leader = 1;
  grant.granter = 4;
  grant.signature = Bytes(64, 0xab);
  const Bytes wire = grant.encode();
  EXPECT_EQ(peek_read_msg_kind(ByteSpan(wire.data(), wire.size())),
            kLeaseGrantKind);
  EXPECT_EQ(LeaseGrant::decode(ByteSpan(wire.data(), wire.size())), grant);
  expect_strict_codec<LeaseGrant>(wire);
  expect_version_checked<LeaseGrant>(wire, kReadWireVersion);
  Bytes wrong_kind = wire;
  wrong_kind[1] = kReadIndexAttestKind;
  EXPECT_THROW((void)LeaseGrant::decode(
                   ByteSpan(wrong_kind.data(), wrong_kind.size())),
               CodecError);
  // Oversize signature: the length prefix must be capped before any
  // allocation is honored.
  LeaseGrant fat = grant;
  fat.signature = Bytes(kMaxReadSigBytes + 1, 0xcd);
  const Bytes fat_wire = fat.encode();
  EXPECT_THROW((void)LeaseGrant::decode(
                   ByteSpan(fat_wire.data(), fat_wire.size())),
               CodecError);
}

TEST(ReadWire, ReadIndexRequestRoundTripAndHostileBuffers) {
  ReadIndexRequest request;
  request.rid = 7;
  request.requester = 2;
  const Bytes wire = request.encode();
  EXPECT_EQ(peek_read_msg_kind(ByteSpan(wire.data(), wire.size())),
            kReadIndexRequestKind);
  EXPECT_EQ(ReadIndexRequest::decode(ByteSpan(wire.data(), wire.size())),
            request);
  expect_strict_codec<ReadIndexRequest>(wire);
  expect_version_checked<ReadIndexRequest>(wire, kReadWireVersion);
  Bytes wrong_kind = wire;
  wrong_kind[1] = kLeaseRequestKind;
  EXPECT_THROW((void)ReadIndexRequest::decode(
                   ByteSpan(wrong_kind.data(), wrong_kind.size())),
               CodecError);
}

TEST(ReadWire, ReadIndexAttestRoundTripAndHostileBuffers) {
  ReadIndexAttest attest;
  attest.rid = 9;
  attest.requester = 3;
  attest.watermark = 17;
  attest.signer = 5;
  attest.signature = Bytes(64, 0x11);
  const Bytes wire = attest.encode();
  EXPECT_EQ(peek_read_msg_kind(ByteSpan(wire.data(), wire.size())),
            kReadIndexAttestKind);
  EXPECT_EQ(ReadIndexAttest::decode(ByteSpan(wire.data(), wire.size())),
            attest);
  expect_strict_codec<ReadIndexAttest>(wire);
  expect_version_checked<ReadIndexAttest>(wire, kReadWireVersion);
  ReadIndexAttest fat = attest;
  fat.signature = Bytes(kMaxReadSigBytes + 1, 0x22);
  const Bytes fat_wire = fat.encode();
  EXPECT_THROW((void)ReadIndexAttest::decode(
                   ByteSpan(fat_wire.data(), fat_wire.size())),
               CodecError);
}

TEST(ReadWire, PeekKindFailsClosed) {
  EXPECT_THROW((void)peek_read_msg_kind(ByteSpan{}), CodecError);
  const Bytes version_only = {kReadWireVersion};
  EXPECT_THROW((void)peek_read_msg_kind(
                   ByteSpan(version_only.data(), version_only.size())),
               CodecError);
  const Bytes garbage = {0x7f, 0x00};
  EXPECT_THROW(
      (void)peek_read_msg_kind(ByteSpan(garbage.data(), garbage.size())),
      CodecError);
}

TEST(ReadWire, SignaturesAreDomainSeparatedAndVerified) {
  const auto suite = crypto::make_sim_suite();
  std::vector<Bytes> key_table(5);
  std::vector<crypto::KeyPair> keys(5);
  for (ReplicaId id = 1; id <= 4; ++id) {
    keys[id] = suite->keygen(mix64(99, id));
    key_table[id] = keys[id].public_key;
  }
  const crypto::PublicKeyDir dir(std::move(key_table));

  LeaseGrant grant;
  grant.epoch = 5;
  grant.leader = 1;
  grant.granter = 2;
  const Bytes msg = lease_signing_bytes(grant.epoch, grant.leader,
                                        grant.granter);
  grant.signature = suite->sign(
      ByteSpan(keys[2].secret_key.data(), keys[2].secret_key.size()),
      ByteSpan(msg.data(), msg.size()));
  EXPECT_TRUE(grant.verify(*suite, dir, 4));
  // Claiming another replica's identity fails (signature is bound to the
  // granter id inside the signed bytes).
  LeaseGrant spoofed = grant;
  spoofed.granter = 3;
  EXPECT_FALSE(spoofed.verify(*suite, dir, 4));
  LeaseGrant out_of_range = grant;
  out_of_range.granter = 9;
  EXPECT_FALSE(out_of_range.verify(*suite, dir, 4));
  LeaseGrant corrupt = grant;
  corrupt.signature[0] ^= 0x01;
  EXPECT_FALSE(corrupt.verify(*suite, dir, 4));

  ReadIndexAttest attest;
  attest.rid = 11;
  attest.requester = 3;
  attest.watermark = 6;
  attest.signer = 4;
  const Bytes attest_msg = read_index_signing_bytes(
      attest.requester, attest.rid, attest.watermark);
  attest.signature = suite->sign(
      ByteSpan(keys[4].secret_key.data(), keys[4].secret_key.size()),
      ByteSpan(attest_msg.data(), attest_msg.size()));
  EXPECT_TRUE(attest.verify(*suite, dir, 4));
  // An attestation cannot be replayed into a different read: rid and
  // requester are inside the signed bytes.
  ReadIndexAttest replayed = attest;
  replayed.rid = 12;
  EXPECT_FALSE(replayed.verify(*suite, dir, 4));
  ReadIndexAttest inflated = attest;
  inflated.watermark = 1000;
  EXPECT_FALSE(inflated.verify(*suite, dir, 4));
  // Lease and read-index domains never cross-verify.
  EXPECT_NE(lease_signing_bytes(5, 1, 2), read_index_signing_bytes(1, 5, 2));
}

// ---- hostile buffers: client read wire messages ----

TEST(ClientReadWire, ReadRequestRoundTripAndHostileBuffers) {
  net::ReadRequest request;
  request.client_id = 9001;
  request.read_id = 3;
  request.consistency = net::ReadConsistency::kSequential;
  request.min_index = 17;
  request.key = to_bytes("account");
  const Bytes wire = request.encode();
  EXPECT_EQ(wire[0], net::kClientWireVersion);
  EXPECT_EQ(net::ReadRequest::decode(ByteSpan(wire.data(), wire.size())),
            request);
  expect_strict_codec<net::ReadRequest>(wire);
  // Garbage versions (valid = kClientWireVersion = 2).
  Bytes mutated = wire;
  for (const std::uint8_t version : {0x00, 0x01, 0x7f, 0xff}) {
    mutated[0] = version;
    EXPECT_THROW((void)net::ReadRequest::decode(
                     ByteSpan(mutated.data(), mutated.size())),
                 CodecError)
        << "garbage version " << int(version);
  }
  // Out-of-range consistency byte.
  Bytes bad_mode = wire;
  bad_mode[17] = 0x09;  // version(1) + client_id(8) + read_id(8)
  EXPECT_THROW((void)net::ReadRequest::decode(
                   ByteSpan(bad_mode.data(), bad_mode.size())),
               CodecError);
  // Oversize key.
  net::ReadRequest fat = request;
  fat.key = Bytes(net::kMaxClientPayload + 1, 0xab);
  const Bytes fat_wire = fat.encode();
  EXPECT_THROW((void)net::ReadRequest::decode(
                   ByteSpan(fat_wire.data(), fat_wire.size())),
               CodecError);
}

TEST(ClientReadWire, ReadReplyRoundTripAndHostileBuffers) {
  net::ReadReply reply;
  reply.client_id = 9001;
  reply.read_id = 3;
  reply.status = net::ReplyStatus::kExecuted;
  reply.slot = 5;
  reply.index = 8;
  reply.value = to_bytes("100");
  const Bytes wire = reply.encode();
  EXPECT_EQ(net::ReadReply::decode(ByteSpan(wire.data(), wire.size())),
            reply);
  expect_strict_codec<net::ReadReply>(wire);
  Bytes mutated = wire;
  for (const std::uint8_t version : {0x00, 0x01, 0x7f, 0xff}) {
    mutated[0] = version;
    EXPECT_THROW((void)net::ReadReply::decode(
                     ByteSpan(mutated.data(), mutated.size())),
                 CodecError)
        << "garbage version " << int(version);
  }
  // Out-of-range status byte.
  Bytes bad_status = wire;
  bad_status[17] = 0x07;
  EXPECT_THROW((void)net::ReadReply::decode(
                   ByteSpan(bad_status.data(), bad_status.size())),
               CodecError);
  net::ReadReply fat = reply;
  fat.value = Bytes(net::kMaxClientPayload + 1, 0xcd);
  const Bytes fat_wire = fat.encode();
  EXPECT_THROW((void)net::ReadReply::decode(
                   ByteSpan(fat_wire.data(), fat_wire.size())),
               CodecError);
}

TEST(ClientReadWire, ClientReplyStatusByteIsStrict) {
  net::ClientReply reply;
  reply.client_id = 7;
  reply.seq = 2;
  reply.status = net::ReplyStatus::kRedirect;
  reply.slot = 1;
  reply.result = to_bytes("x");
  const Bytes wire = reply.encode();
  EXPECT_EQ(net::ClientReply::decode(ByteSpan(wire.data(), wire.size()))
                .status,
            net::ReplyStatus::kRedirect);
  Bytes corrupt = wire;
  corrupt[17] = 0x03;  // first value past the ReplyStatus range
  EXPECT_THROW((void)net::ClientReply::decode(
                   ByteSpan(corrupt.data(), corrupt.size())),
               CodecError);
}

// ---- fleet behavior on the simulated network ----

struct ReadFleet {
  net::Simulator sim;
  std::unique_ptr<net::Network> net;
  std::unique_ptr<crypto::CryptoSuite> suite;
  std::vector<crypto::KeyPair> keys;
  std::vector<std::unique_ptr<SmrReplica>> replicas;  // 1-based

  ReadFleet(std::uint32_t n, std::uint32_t f, double l,
            SmrOptions options = {}, std::uint64_t seed = 1) {
    net::LatencyConfig latency;
    latency.min_delay = 500;
    latency.max_delay_post = 4'000;
    net = std::make_unique<net::Network>(sim, n, seed, latency);
    suite = crypto::make_sim_suite();
    keys.resize(n + 1);
    std::vector<Bytes> key_table(n + 1);
    for (ReplicaId id = 1; id <= n; ++id) {
      keys[id] = suite->keygen(mix64(seed, id));
      key_table[id] = keys[id].public_key;
    }
    const crypto::PublicKeyDir public_keys(std::move(key_table));
    replicas.resize(n + 1);
    for (ReplicaId id = 1; id <= n; ++id) {
      SmrConfig cfg;
      cfg.id = id;
      cfg.n = n;
      cfg.f = f;
      cfg.l = l;
      cfg.pipeline = options;
      cfg.suite = suite.get();
      cfg.secret_key = keys[id].secret_key;
      cfg.public_keys = public_keys;
      cfg.sync.base_timeout = 100'000;
      core::ProtocolHost hooks;
      hooks.send = [this, id](ReplicaId to, std::uint8_t tag,
                              const Bytes& m) {
        net->send(id, to, tag, m);
      };
      hooks.broadcast = [this, id](std::uint8_t tag, const Bytes& m) {
        net->broadcast(id, tag, m);
      };
      hooks.set_timer = [this](Duration d, std::function<void()> fn) {
        sim.schedule_after(d, std::move(fn));
      };
      hooks.on_commit = [](std::uint64_t, const Bytes&) {};
      replicas[id] = std::make_unique<SmrReplica>(std::move(cfg), hooks);
      net->register_handler(
          id, [this, id](ReplicaId from, std::uint8_t tag, const Bytes& m) {
            replicas[id]->on_message(from, tag, m);
          });
    }
  }

  void start_all() {
    for (std::size_t id = 1; id < replicas.size(); ++id) {
      replicas[id]->start();
    }
  }

  /// Steps the simulation until `done()` (or deadline). Lease renewal
  /// timers re-arm forever, so every loop must be time-bounded.
  bool run_until(const std::function<bool()>& done,
                 TimePoint deadline = 300'000'000) {
    while (sim.now() < deadline) {
      if (done()) return true;
      if (!sim.step()) break;
    }
    return done();
  }

  bool run_until_executed(std::uint64_t commands,
                          TimePoint deadline = 300'000'000) {
    return run_until(
        [this, commands] {
          for (std::size_t id = 1; id < replicas.size(); ++id) {
            if (replicas[id]->executed_commands() < commands) return false;
          }
          return true;
        },
        deadline);
  }
};

SmrOptions read_options() {
  SmrOptions options;
  options.serve_reads = true;
  options.lease_duration = 400'000;
  options.lease_skew = 100'000;
  options.read_timeout = 1'000'000;
  return options;
}

using ReadResult = SmrReplica::ReadResult;

TEST(SmrReads, DisabledConfigRejectsEveryRead) {
  ReadFleet fleet(4, 0, 2.0);  // default SmrOptions: serve_reads = false
  fleet.replicas[1]->submit(to_bytes("k=v1"));
  fleet.start_all();
  ASSERT_TRUE(fleet.run_until_executed(1));
  for (const auto mode :
       {net::ReadConsistency::kLinearizable,
        net::ReadConsistency::kSequential, net::ReadConsistency::kStaleOk}) {
    std::optional<ReadResult> result;
    fleet.replicas[1]->submit_read(to_bytes("k"), mode, 0,
                                   [&](const ReadResult& r) { result = r; });
    ASSERT_TRUE(result.has_value());
    EXPECT_EQ(result->status, net::ReplyStatus::kRejected);
  }
  EXPECT_EQ(fleet.replicas[1]->reads_rejected(), 3U);
  // No read-path traffic at all: the write path of a reads-off build is
  // bit-identical to one without the feature.
  EXPECT_EQ(fleet.net->stats().sends_for(kSmrLeaseTag), 0U);
  EXPECT_EQ(fleet.net->stats().sends_for(kSmrReadIndexTag), 0U);
}

TEST(SmrReads, StaleOkServesTheLocalView) {
  ReadFleet fleet(4, 0, 2.0, read_options());
  fleet.replicas[1]->submit(to_bytes("k=v1"));
  fleet.start_all();
  ASSERT_TRUE(fleet.run_until_executed(1));
  // Every replica — leader or not — answers stale-ok immediately.
  for (ReplicaId id = 1; id <= 4; ++id) {
    std::optional<ReadResult> result;
    fleet.replicas[id]->submit_read(to_bytes("k"),
                                    net::ReadConsistency::kStaleOk, 0,
                                    [&](const ReadResult& r) { result = r; });
    ASSERT_TRUE(result.has_value()) << "replica " << id;
    EXPECT_EQ(result->status, net::ReplyStatus::kExecuted);
    EXPECT_EQ(result->value, to_bytes("v1"));
    EXPECT_GE(result->index, 1U);
  }
  // An unwritten key answers kExecuted with an empty value and slot 0.
  std::optional<ReadResult> miss;
  fleet.replicas[2]->submit_read(to_bytes("unwritten"),
                                 net::ReadConsistency::kStaleOk, 0,
                                 [&](const ReadResult& r) { miss = r; });
  ASSERT_TRUE(miss.has_value());
  EXPECT_EQ(miss->status, net::ReplyStatus::kExecuted);
  EXPECT_TRUE(miss->value.empty());
  EXPECT_EQ(miss->slot, 0U);
}

TEST(SmrReads, SequentialReadParksUntilMinIndex) {
  SmrOptions options = read_options();
  options.batch_max_commands = 1;
  ReadFleet fleet(4, 0, 2.0, options);
  fleet.replicas[1]->submit(to_bytes("a=1"));
  fleet.start_all();
  ASSERT_TRUE(fleet.run_until_executed(1));

  // min_index = 2 is ahead of execution: the read parks.
  std::optional<ReadResult> result;
  fleet.replicas[1]->submit_read(to_bytes("b"),
                                 net::ReadConsistency::kSequential, 2,
                                 [&](const ReadResult& r) { result = r; });
  EXPECT_FALSE(result.has_value());
  // The second write releases it — and the read observes that write.
  fleet.replicas[1]->submit(to_bytes("b=2"));
  ASSERT_TRUE(fleet.run_until([&] { return result.has_value(); }));
  EXPECT_EQ(result->status, net::ReplyStatus::kExecuted);
  EXPECT_EQ(result->value, to_bytes("2"));
  EXPECT_GE(result->index, 2U);

  // A min_index already covered answers synchronously.
  std::optional<ReadResult> immediate;
  fleet.replicas[1]->submit_read(to_bytes("a"),
                                 net::ReadConsistency::kSequential, 1,
                                 [&](const ReadResult& r) { immediate = r; });
  ASSERT_TRUE(immediate.has_value());
  EXPECT_EQ(immediate->value, to_bytes("1"));
}

TEST(SmrReads, LeaseLeaderServesLinearizableReadsLocally) {
  ReadFleet fleet(4, 1, 1.5, read_options());
  fleet.replicas[1]->submit(to_bytes("k=v1"));
  fleet.start_all();
  ASSERT_TRUE(fleet.run_until_executed(1));
  ASSERT_TRUE(
      fleet.run_until([&] { return fleet.replicas[1]->lease_held(); }));

  const auto lease_traffic = fleet.net->stats().sends_for(kSmrLeaseTag);
  EXPECT_GT(lease_traffic, 0U);
  std::optional<ReadResult> result;
  fleet.replicas[1]->submit_read(to_bytes("k"),
                                 net::ReadConsistency::kLinearizable, 0,
                                 [&](const ReadResult& r) { result = r; });
  ASSERT_TRUE(fleet.run_until([&] { return result.has_value(); }));
  EXPECT_EQ(result->status, net::ReplyStatus::kExecuted);
  EXPECT_EQ(result->value, to_bytes("v1"));
  EXPECT_GE(fleet.replicas[1]->lease_reads(), 1U);
  // A lease read never runs the quorum protocol.
  EXPECT_EQ(fleet.net->stats().sends_for(kSmrReadIndexTag), 0U);

  // Read-your-writes across a second write.
  fleet.replicas[1]->submit(to_bytes("k=v2"));
  ASSERT_TRUE(fleet.run_until_executed(2));
  std::optional<ReadResult> second;
  fleet.replicas[1]->submit_read(to_bytes("k"),
                                 net::ReadConsistency::kLinearizable, 0,
                                 [&](const ReadResult& r) { second = r; });
  ASSERT_TRUE(fleet.run_until([&] { return second.has_value(); }));
  EXPECT_EQ(second->status, net::ReplyStatus::kExecuted);
  EXPECT_EQ(second->value, to_bytes("v2"));
  EXPECT_GE(second->index, result->index);
}

TEST(SmrReads, FollowerUsesQuorumReadIndex) {
  ReadFleet fleet(4, 1, 1.5, read_options());
  fleet.replicas[1]->submit(to_bytes("k=v1"));
  fleet.start_all();
  ASSERT_TRUE(fleet.run_until_executed(1));

  std::optional<ReadResult> result;
  fleet.replicas[3]->submit_read(to_bytes("k"),
                                 net::ReadConsistency::kLinearizable, 0,
                                 [&](const ReadResult& r) { result = r; });
  ASSERT_TRUE(fleet.run_until([&] { return result.has_value(); }));
  EXPECT_EQ(result->status, net::ReplyStatus::kExecuted);
  EXPECT_EQ(result->value, to_bytes("v1"));
  // The follower holds no lease: the answer came from the attestation
  // quorum, not a local shortcut.
  EXPECT_EQ(fleet.replicas[3]->lease_reads(), 0U);
  EXPECT_GT(fleet.net->stats().sends_for(kSmrReadIndexTag), 0U);
}

TEST(SmrReads, LinearizableReadTimesOutWithoutAQuorum) {
  ReadFleet fleet(4, 1, 1.5, read_options());
  fleet.replicas[1]->submit(to_bytes("k=v1"));
  fleet.start_all();
  ASSERT_TRUE(fleet.run_until_executed(1));

  // Fully partition follower 3: its read-index broadcast reaches nobody,
  // so the read must answer kRejected at read_timeout — never hang, never
  // answer from the unproven local view.
  fleet.net->set_filter([](ReplicaId from, ReplicaId to, std::uint8_t) {
    return from == 3 || to == 3;
  });
  std::optional<ReadResult> result;
  fleet.replicas[3]->submit_read(to_bytes("k"),
                                 net::ReadConsistency::kLinearizable, 0,
                                 [&](const ReadResult& r) { result = r; });
  const TimePoint probe_deadline = fleet.sim.now() + 3'000'000;
  fleet.run_until([&] { return result.has_value(); }, probe_deadline);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->status, net::ReplyStatus::kRejected);
  EXPECT_GE(fleet.replicas[3]->reads_rejected(), 1U);
}

TEST(SmrReads, MalformedReadFramesAreDropped) {
  ReadFleet fleet(4, 0, 2.0, read_options());
  fleet.start_all();
  // Arbitrary garbage on both read-path tags must be swallowed.
  const Bytes garbage = {0xff, 0x00, 0x01, 0x02};
  EXPECT_NO_THROW(fleet.replicas[1]->on_message(2, kSmrLeaseTag, garbage));
  EXPECT_NO_THROW(
      fleet.replicas[1]->on_message(2, kSmrReadIndexTag, garbage));
  // Truncated but well-formed prefixes of real frames too.
  LeaseRequest request;
  request.epoch = 1;
  request.leader = 2;
  const Bytes wire = request.encode();
  for (std::size_t len = 0; len < wire.size(); ++len) {
    EXPECT_NO_THROW(fleet.replicas[1]->on_message(
        2, kSmrLeaseTag, Bytes(wire.begin(),
                               wire.begin() + static_cast<std::ptrdiff_t>(
                                                  len))));
  }
  // An attestation for a rid nobody asked for is ignored.
  ReadIndexAttest stray;
  stray.rid = 999;
  stray.requester = 1;
  stray.signer = 2;
  stray.signature = Bytes(64, 0x00);
  EXPECT_NO_THROW(
      fleet.replicas[1]->on_message(2, kSmrReadIndexTag, stray.encode()));
  // The fleet still makes progress afterwards.
  fleet.replicas[1]->submit(to_bytes("k=v1"));
  ASSERT_TRUE(fleet.run_until_executed(1));
}

// The pinned regression: a deposed, partitioned lease holder must NEVER
// serve a stale linearizable read after a view change decides a
// conflicting write behind its back.
//
// Timeline (µs, lease_duration = 400ms / skew = 100ms):
//   - "k=v1" decides at view 1; leader 1 acquires the lease and serves a
//     linearizable read locally.
//   - Leader 1 is fully partitioned. Its validity timer expires at most
//     400ms after its last request broadcast; every granter's promise
//     runs strictly longer (500ms from a later receipt), so the lease is
//     dead BEFORE any deferred view-change traffic flushes.
//   - A fresh "k=v2" submitted at replica 2 opens slot 1 there; the
//     deferred wishes flush at promise expiry, replicas 2..6 change to
//     view 2, and replica 2 proposes and decides "k=v2" — which poisons
//     lease serving on every replica that saw the view-2 decide.
//   - A linearizable read at the deposed leader must answer kRejected
//     (no lease, no attestation quorum through the partition) — it must
//     not answer "v1" as if nothing happened.
//   - After healing, leader 1 catches up from signed hints (a decide
//     with unknown view), which poisons ITS lease serving permanently;
//     its next linearizable read runs the quorum read-index and returns
//     the post-view-change value.
TEST(SmrReads, LeaseNeverServesStaleReadAcrossViewChange) {
  // l = 1.5 at n = 6 gives q = 4: one replica of slack among the 5 still
  // connected, so consensus proceeds behind the partition.
  ReadFleet fleet(6, 1, 1.5, read_options(), /*seed=*/7);
  fleet.replicas[1]->submit(to_bytes("k=v1"));
  fleet.start_all();
  ASSERT_TRUE(fleet.run_until_executed(1));
  ASSERT_TRUE(
      fleet.run_until([&] { return fleet.replicas[1]->lease_held(); }));

  std::optional<ReadResult> before;
  fleet.replicas[1]->submit_read(to_bytes("k"),
                                 net::ReadConsistency::kLinearizable, 0,
                                 [&](const ReadResult& r) { before = r; });
  ASSERT_TRUE(fleet.run_until([&] { return before.has_value(); }));
  EXPECT_EQ(before->status, net::ReplyStatus::kExecuted);
  EXPECT_EQ(before->value, to_bytes("v1"));
  EXPECT_GE(fleet.replicas[1]->lease_reads(), 1U);

  // Partition the lease holder and decide a conflicting write without it.
  fleet.net->set_filter([](ReplicaId from, ReplicaId to, std::uint8_t) {
    return from == 1 || to == 1;
  });
  fleet.replicas[2]->submit(to_bytes("k=v2"));
  ASSERT_TRUE(fleet.run_until([&] {
    for (ReplicaId id = 2; id <= 6; ++id) {
      if (fleet.replicas[id]->executed_commands() < 2) return false;
    }
    return true;
  }));
  // The view-2 decide proves the lease premise wrong on every replica
  // that saw it.
  for (ReplicaId id = 2; id <= 6; ++id) {
    EXPECT_TRUE(fleet.replicas[id]->lease_poisoned()) << "replica " << id;
  }
  // The deposed leader's validity ran out strictly before the wishes that
  // deposed it could flush: by the time "k=v2" exists, no lease is held.
  EXPECT_FALSE(fleet.replicas[1]->lease_held());

  // THE invariant: a linearizable read at the deposed leader must not
  // return the stale "v1". Without a lease it needs an attestation
  // quorum, which the partition denies — so it answers kRejected.
  std::optional<ReadResult> stale_probe;
  fleet.replicas[1]->submit_read(
      to_bytes("k"), net::ReadConsistency::kLinearizable, 0,
      [&](const ReadResult& r) { stale_probe = r; });
  const TimePoint probe_deadline = fleet.sim.now() + 3'000'000;
  fleet.run_until([&] { return stale_probe.has_value(); }, probe_deadline);
  ASSERT_TRUE(stale_probe.has_value());
  EXPECT_EQ(stale_probe->status, net::ReplyStatus::kRejected);

  // Heal. Fresh traffic catches the old leader up via signed hints — a
  // decide with unknown view, which poisons its lease serving for good.
  fleet.net->clear_filter();
  fleet.replicas[2]->submit(to_bytes("k2=v3"));
  ASSERT_TRUE(fleet.run_until_executed(3));
  EXPECT_TRUE(fleet.replicas[1]->lease_poisoned());
  EXPECT_FALSE(fleet.replicas[1]->lease_held());

  // Its next linearizable read goes through the quorum read-index and
  // sees the post-view-change value.
  std::optional<ReadResult> fresh;
  fleet.replicas[1]->submit_read(to_bytes("k"),
                                 net::ReadConsistency::kLinearizable, 0,
                                 [&](const ReadResult& r) { fresh = r; });
  ASSERT_TRUE(fleet.run_until([&] { return fresh.has_value(); }));
  EXPECT_EQ(fresh->status, net::ReplyStatus::kExecuted);
  EXPECT_EQ(fresh->value, to_bytes("v2"));

  // And the write path stayed correct throughout: identical logs.
  for (ReplicaId id = 2; id <= 6; ++id) {
    EXPECT_EQ(fleet.replicas[id]->log_digest(),
              fleet.replicas[1]->log_digest())
        << "replica " << id;
  }
}

// ---- the Workload::kSmrReads scenario dimension ----

TEST(SmrReadsScenario, NoStaleReadsUnderSupportedFaults) {
  for (const sim::Fault fault :
       {sim::Fault::kNone, sim::Fault::kPartitionUntilGst,
        sim::Fault::kKillRestart}) {
    sim::ScenarioSpec spec;
    // n = 6 leaves a replica of slack above the q = ⌈1.5·√6⌉ = 4 quorum,
    // so the partition halves can make progress once healed even when
    // the VRF sample keeps picking a cut-off replica.
    spec.n = 6;
    spec.f = 1;
    spec.l = 1.5;
    spec.workload = sim::Workload::kSmrReads;
    spec.fault = fault;
    spec.latency = fault == sim::Fault::kPartitionUntilGst
                       ? sim::LatencyModel::kPartialSynchrony
                       : sim::LatencyModel::kSynchronous;
    spec.smr_commands = 6;
    ASSERT_TRUE(sim::fault_applicable(spec)) << sim::to_string(fault);
    const sim::ScenarioOutcome outcome = sim::run_scenario(spec, 1);
    EXPECT_TRUE(outcome.terminated) << sim::to_string(fault);
    EXPECT_TRUE(outcome.agreement) << sim::to_string(fault);
    // Every up replica probed in all three modes; every probe answered.
    EXPECT_EQ(outcome.reads_attempted, 18U) << sim::to_string(fault);
    EXPECT_EQ(outcome.reads_executed + outcome.reads_rejected,
              outcome.reads_attempted)
        << sim::to_string(fault);
    EXPECT_GT(outcome.reads_executed, 0U) << sim::to_string(fault);
    // THE invariant the workload exists for.
    EXPECT_EQ(outcome.stale_reads, 0U) << sim::to_string(fault);
  }
}

TEST(SmrReadsScenario, WorkloadNameRoundTrips) {
  EXPECT_STREQ(sim::to_string(sim::Workload::kSmrReads), "smr-reads");
  sim::Workload workload = sim::Workload::kSingleShot;
  ASSERT_TRUE(sim::workload_from_string("smr-reads", workload));
  EXPECT_EQ(workload, sim::Workload::kSmrReads);
}

// ---- the same regression over real TCP sockets ----

/// Thread-per-transport loopback cluster with a flippable partition
/// around replica 1 (applied symmetrically at every sender AND receiver,
/// so in-flight frames cannot leak through the flip).
struct TcpReadCluster {
  static constexpr std::uint32_t kN = 6;
  static constexpr Duration kWallBudget = 120'000'000;  // 120 s cap

  std::vector<std::unique_ptr<net::TcpTransport>> transports;  // 1-based
  std::vector<std::unique_ptr<SmrReplica>> replicas;           // 1-based
  std::unique_ptr<crypto::CryptoSuite> suite;
  std::atomic<bool> partitioned{false};
  std::atomic<bool> stop{false};
  std::array<std::atomic<std::uint64_t>, kN + 1> executed{};
  std::vector<std::thread> threads;

  TcpReadCluster() {
    transports.resize(kN + 1);
    replicas.resize(kN + 1);
    for (ReplicaId id = 1; id <= kN; ++id) {
      net::TcpTransportConfig tcfg;
      tcfg.self = id;
      tcfg.n = kN;
      transports[id] = std::make_unique<net::TcpTransport>(tcfg);
    }
    for (ReplicaId id = 1; id <= kN; ++id) {
      for (ReplicaId peer = 1; peer <= kN; ++peer) {
        if (peer == id) continue;
        transports[id]->set_peer(
            peer,
            net::PeerAddress{"127.0.0.1", transports[peer]->listen_port()});
      }
    }
    suite = crypto::make_sim_suite();
    std::vector<crypto::KeyPair> keys(kN + 1);
    std::vector<Bytes> key_table(kN + 1);
    for (ReplicaId id = 1; id <= kN; ++id) {
      keys[id] = suite->keygen(mix64(17, id));
      key_table[id] = keys[id].public_key;
    }
    const crypto::PublicKeyDir public_keys(std::move(key_table));
    for (ReplicaId id = 1; id <= kN; ++id) {
      SmrConfig cfg;
      cfg.id = id;
      cfg.n = kN;
      cfg.f = 1;
      cfg.l = 1.5;
      cfg.pipeline = read_options();
      cfg.suite = suite.get();
      cfg.secret_key = keys[id].secret_key;
      cfg.public_keys = public_keys;
      cfg.sync.base_timeout = 100'000;
      net::TcpTransport* transport = transports[id].get();
      core::ProtocolHost hooks;
      // Sender-side partition filter; broadcast fans out through the
      // same per-link check so the to == 1 leg can be dropped alone.
      hooks.send = [this, transport, id](ReplicaId to, std::uint8_t tag,
                                         const Bytes& m) {
        if (partitioned.load() && (id == 1 || to == 1)) return;
        transport->send(id, to, tag, Bytes(m));
      };
      hooks.broadcast = [this, transport, id](std::uint8_t tag,
                                              const Bytes& m) {
        for (ReplicaId to = 1; to <= kN; ++to) {
          if (to == id) continue;
          if (partitioned.load() && (id == 1 || to == 1)) continue;
          transport->send(id, to, tag, Bytes(m));
        }
      };
      hooks.set_timer = transport->timer_setter();
      hooks.on_commit = [this, id](std::uint64_t, const Bytes&) {
        executed[id].fetch_add(1, std::memory_order_relaxed);
      };
      replicas[id] = std::make_unique<SmrReplica>(std::move(cfg), hooks);
      transports[id]->register_handler(
          id, [this, id](ReplicaId from, std::uint8_t tag, const Bytes& m) {
            if (partitioned.load() && (id == 1 || from == 1)) return;
            replicas[id]->on_message(from, tag, m);
          });
      transports[id]->post([this, id] { replicas[id]->start(); });
    }
    for (ReplicaId id = 1; id <= kN; ++id) {
      threads.emplace_back([this, id] {
        transports[id]->run_until([this] { return stop.load(); },
                                  kWallBudget);
      });
    }
  }

  ~TcpReadCluster() { shutdown(); }

  void shutdown() {
    stop.store(true);
    for (ReplicaId id = 1; id <= kN; ++id) transports[id]->stop();
    for (auto& thread : threads) {
      if (thread.joinable()) thread.join();
    }
    threads.clear();
  }

  /// Polls `done()` from the test thread (loop threads keep running).
  static bool wait_wall(const std::function<bool()>& done,
                        int timeout_ms = 60'000) {
    for (int waited = 0; waited < timeout_ms; waited += 20) {
      if (done()) return true;
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    return done();
  }

  bool wait_executed(std::uint64_t commands, ReplicaId first = 1,
                     ReplicaId last = kN) {
    return wait_wall([this, commands, first, last] {
      for (ReplicaId id = first; id <= last; ++id) {
        if (executed[id].load(std::memory_order_relaxed) < commands) {
          return false;
        }
      }
      return true;
    });
  }

  void submit(ReplicaId id, const std::string& command) {
    transports[id]->post(
        [this, id, command] { replicas[id]->submit(to_bytes(command)); });
  }

  /// Runs `probe` against replica `id` on its loop thread; returns the
  /// probed value once the loop has executed it.
  bool probe_flag(ReplicaId id,
                  const std::function<bool(const SmrReplica&)>& probe) {
    auto state = std::make_shared<std::atomic<int>>(-1);
    transports[id]->post([this, id, probe, state] {
      state->store(probe(*replicas[id]) ? 1 : 0);
    });
    wait_wall([state] { return state->load() >= 0; });
    return state->load() == 1;
  }

  /// Issues a read on replica `id`'s loop thread; the outcome lands in a
  /// mutex-guarded slot the test thread polls.
  struct ReadProbe {
    std::mutex mu;
    std::optional<ReadResult> result;
    bool ready() {
      const std::lock_guard<std::mutex> lock(mu);
      return result.has_value();
    }
    ReadResult get() {
      const std::lock_guard<std::mutex> lock(mu);
      return *result;
    }
  };
  std::shared_ptr<ReadProbe> read(ReplicaId id, const std::string& key,
                                  net::ReadConsistency mode) {
    auto probe = std::make_shared<ReadProbe>();
    transports[id]->post([this, id, key, mode, probe] {
      replicas[id]->submit_read(to_bytes(key), mode, 0,
                                [probe](const ReadResult& r) {
                                  const std::lock_guard<std::mutex> lock(
                                      probe->mu);
                                  probe->result = r;
                                });
    });
    return probe;
  }
};

TEST(TcpSmrReads, LeaseNeverServesStaleReadAcrossViewChangeOverTcp) {
  TcpReadCluster cluster;

  cluster.submit(1, "k=v1");
  ASSERT_TRUE(cluster.wait_executed(1));
  ASSERT_TRUE(TcpReadCluster::wait_wall([&] {
    return cluster.probe_flag(
        1, [](const SmrReplica& r) { return r.lease_held(); });
  }));

  auto before = cluster.read(1, "k", net::ReadConsistency::kLinearizable);
  ASSERT_TRUE(TcpReadCluster::wait_wall([&] { return before->ready(); }));
  EXPECT_EQ(before->get().status, net::ReplyStatus::kExecuted);
  EXPECT_EQ(before->get().value, to_bytes("v1"));

  // Partition the lease holder; decide a conflicting write without it.
  cluster.partitioned.store(true);
  cluster.submit(2, "k=v2");
  ASSERT_TRUE(cluster.wait_executed(2, /*first=*/2));

  // Real time passed the 400ms validity bound long ago; the deposed
  // leader must reject — not serve the stale "v1".
  EXPECT_FALSE(cluster.probe_flag(
      1, [](const SmrReplica& r) { return r.lease_held(); }));
  auto stale = cluster.read(1, "k", net::ReadConsistency::kLinearizable);
  ASSERT_TRUE(TcpReadCluster::wait_wall([&] { return stale->ready(); }));
  EXPECT_EQ(stale->get().status, net::ReplyStatus::kRejected);

  // Heal; the old leader catches up from signed hints (poisoning its
  // lease) and its next linearizable read sees the new value.
  cluster.partitioned.store(false);
  cluster.submit(2, "k2=v3");
  ASSERT_TRUE(cluster.wait_executed(3));
  EXPECT_TRUE(cluster.probe_flag(
      1, [](const SmrReplica& r) { return r.lease_poisoned(); }));
  auto fresh = cluster.read(1, "k", net::ReadConsistency::kLinearizable);
  ASSERT_TRUE(TcpReadCluster::wait_wall([&] { return fresh->ready(); }));
  EXPECT_EQ(fresh->get().status, net::ReplyStatus::kExecuted);
  EXPECT_EQ(fresh->get().value, to_bytes("v2"));

  // Loop threads are down after shutdown(): direct state access is safe.
  cluster.shutdown();
  for (ReplicaId id = 2; id <= TcpReadCluster::kN; ++id) {
    EXPECT_EQ(cluster.replicas[id]->log_digest(),
              cluster.replicas[1]->log_digest())
        << "replica " << id;
  }
}

}  // namespace
}  // namespace probft::smr
