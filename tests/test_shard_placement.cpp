// Placement layer (src/shard/placement): key → shard assignment must be
// a pure, pinned function — stable across processes, architectures and
// map versions — and the ShardMap codec must reject every hostile buffer
// shape instead of letting a peer under a different (or forged) map land
// frames in the wrong group.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "common/codec.hpp"
#include "shard/placement.hpp"

namespace probft::shard {
namespace {

ByteSpan span_of(const Bytes& b) { return ByteSpan(b.data(), b.size()); }

Bytes key(const std::string& s) { return to_bytes(s); }

// Pinned hash values: the first 8 bytes of SHA-256(key), big-endian.
// These constants are the wire contract with every client ever shipped —
// if one of them moves, routing silently splits the keyspace between old
// and new binaries.
TEST(Placement, KeyHashIsPinned) {
  EXPECT_EQ(key_hash(span_of(key("alpha"))), 0x8ed3f6ad685b959eULL);
  EXPECT_EQ(key_hash(span_of(key("bravo"))), 0xf144a6907dc4284dULL);
  EXPECT_EQ(key_hash(span_of(key("probft-key"))), 0x71a2b2dbc3073324ULL);
}

TEST(Placement, ShardOfIsPinnedAcrossShardCounts) {
  const ShardMap s4{.version = 1, .shard_count = 4};
  EXPECT_EQ(shard_of(s4, span_of(key("alpha"))), 2u);
  EXPECT_EQ(shard_of(s4, span_of(key("bravo"))), 3u);
  EXPECT_EQ(shard_of(s4, span_of(key("probft-key"))), 1u);

  const ShardMap s8{.version = 1, .shard_count = 8};
  EXPECT_EQ(shard_of(s8, span_of(key("alpha"))), 4u);
  EXPECT_EQ(shard_of(s8, span_of(key("bravo"))), 7u);
  EXPECT_EQ(shard_of(s8, span_of(key("probft-key"))), 3u);

  const ShardMap wide{.version = 1, .shard_count = kMaxShards};
  EXPECT_EQ(shard_of(wide, span_of(key("alpha"))), 571u);
  EXPECT_EQ(shard_of(wide, span_of(key("bravo"))), 965u);
  EXPECT_EQ(shard_of(wide, span_of(key("probft-key"))), 454u);
}

// Placement depends only on (key, shard_count): the map version — bumped
// on every reconfiguration — must never perturb routing.
TEST(Placement, VersionDoesNotAffectPlacement) {
  for (std::uint64_t version : {1ULL, 2ULL, 999ULL}) {
    const ShardMap map{.version = version, .shard_count = 4};
    EXPECT_EQ(shard_of(map, span_of(key("alpha"))), 2u);
  }
}

TEST(Placement, EveryKeyLandsInRangeAndEveryShardIsHit) {
  const ShardMap map{.version = 1, .shard_count = 8};
  std::set<ShardId> hit;
  for (int i = 0; i < 512; ++i) {
    const ShardId s = shard_of(map, span_of(key("k-" + std::to_string(i))));
    ASSERT_LT(s, map.shard_count);
    hit.insert(s);
  }
  EXPECT_EQ(hit.size(), map.shard_count);
}

TEST(Placement, SingleShardMapOwnsEverything) {
  const ShardMap map{.version = 1, .shard_count = 1};
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(shard_of(map, span_of(key("k-" + std::to_string(i)))), 0u);
  }
}

// The S view-1 leaders must spread round-robin across the fleet — piling
// them onto replica 1 would serialize every group behind one node.
TEST(Placement, LeadReplicasSpreadRoundRobin) {
  const std::uint32_t n = 4;
  std::set<ReplicaId> leaders;
  for (ShardId s = 0; s < n; ++s) {
    const ReplicaId lead = lead_replica(s, n);
    ASSERT_GE(lead, 1u);
    ASSERT_LE(lead, n);
    leaders.insert(lead);
    EXPECT_EQ(lead, leader_of(1 + s, n));
  }
  EXPECT_EQ(leaders.size(), n) << "4 shards on 4 replicas: distinct leaders";
  // Wraps past n: shard n takes the same leader as shard 0.
  EXPECT_EQ(lead_replica(n, n), lead_replica(0, n));
}

TEST(ShardMapCodec, RoundTrip) {
  for (const ShardMap map :
       {ShardMap{.version = 1, .shard_count = 1},
        ShardMap{.version = 42, .shard_count = 7},
        ShardMap{.version = ~0ULL, .shard_count = kMaxShards}}) {
    EXPECT_EQ(ShardMap::from_bytes(span_of(map.to_bytes())), map);
  }
}

TEST(ShardMapCodec, RejectsEveryTruncation) {
  const Bytes full = ShardMap{.version = 3, .shard_count = 5}.to_bytes();
  ASSERT_EQ(full.size(), 13u);  // u8 wire ‖ u64 version ‖ u32 count
  for (std::size_t len = 0; len < full.size(); ++len) {
    EXPECT_THROW((void)ShardMap::from_bytes(ByteSpan(full.data(), len)),
                 CodecError)
        << "prefix of " << len << " bytes must not decode";
  }
}

TEST(ShardMapCodec, RejectsTrailingBytes) {
  Bytes raw = ShardMap{.version = 3, .shard_count = 5}.to_bytes();
  raw.push_back(0x00);
  EXPECT_THROW((void)ShardMap::from_bytes(span_of(raw)), CodecError);
}

TEST(ShardMapCodec, RejectsUnknownWireVersion) {
  Bytes raw = ShardMap{.version = 3, .shard_count = 5}.to_bytes();
  raw[0] = 2;  // future wire version
  EXPECT_THROW((void)ShardMap::from_bytes(span_of(raw)), CodecError);
}

TEST(ShardMapCodec, RejectsZeroShards) {
  Writer w;
  w.u8(1);
  w.u64(7);
  w.u32(0);
  const Bytes raw = std::move(w).take();
  EXPECT_THROW((void)ShardMap::from_bytes(span_of(raw)), CodecError);
}

TEST(ShardMapCodec, RejectsShardCountBeyondLimit) {
  Writer w;
  w.u8(1);
  w.u64(7);
  w.u32(kMaxShards + 1);
  const Bytes raw = std::move(w).take();
  EXPECT_THROW((void)ShardMap::from_bytes(span_of(raw)), CodecError);

  Writer hostile;
  hostile.u8(1);
  hostile.u64(7);
  hostile.u32(0xffffffffu);  // 2^32 groups: must not allocate, must throw
  const Bytes worst = std::move(hostile).take();
  EXPECT_THROW((void)ShardMap::from_bytes(span_of(worst)), CodecError);
}

TEST(ShardMapCodec, AcceptsExactlyMaxShards) {
  const ShardMap map{.version = 9, .shard_count = kMaxShards};
  EXPECT_EQ(ShardMap::from_bytes(span_of(map.to_bytes())), map);
}

}  // namespace
}  // namespace probft::shard
