#include "crypto/curve25519.hpp"

#include <gtest/gtest.h>

#include "common/bytes.hpp"
#include "crypto/u256.hpp"

namespace probft::crypto::curve {
namespace {

U256 from_u64(std::uint64_t v) {
  U256 out{};
  out.w[0] = v;
  return out;
}

TEST(U256, AddSubRoundtrip) {
  const U256 a{{0xffffffffffffffffULL, 1, 2, 3}};
  const U256 b{{5, 6, 7, 8}};
  U256 sum, diff;
  u256_add(sum, a, b);
  u256_sub(diff, sum, b);
  EXPECT_EQ(diff, a);
}

TEST(U256, AddCarryPropagates) {
  const U256 a{{~0ULL, ~0ULL, ~0ULL, ~0ULL}};
  U256 sum;
  const auto carry = u256_add(sum, a, u256_one());
  EXPECT_EQ(carry, 1ULL);
  EXPECT_TRUE(u256_is_zero(sum));
}

TEST(U256, SubBorrow) {
  U256 out;
  EXPECT_EQ(u256_sub(out, u256_zero(), u256_one()), 1ULL);
  EXPECT_EQ(out.w[0], ~0ULL);
}

TEST(U256, CompareOrdering) {
  const U256 small{{1, 0, 0, 0}};
  const U256 big{{0, 0, 0, 1}};
  EXPECT_LT(u256_cmp(small, big), 0);
  EXPECT_GT(u256_cmp(big, small), 0);
  EXPECT_EQ(u256_cmp(big, big), 0);
}

TEST(U256, MulMatchesSmallProducts) {
  const auto prod = u256_mul(from_u64(1000000007ULL), from_u64(998244353ULL));
  EXPECT_EQ(prod.w[0], 1000000007ULL * 998244353ULL);
  for (int i = 1; i < 8; ++i) EXPECT_EQ(prod.w[i], 0ULL);
}

TEST(U256, ModSmallValues) {
  U512 x{};
  x.w[0] = 100;
  EXPECT_EQ(u512_mod(x, from_u64(7)).w[0], 2ULL);
}

TEST(U256, MulModAgainstKnownValue) {
  // (2^64 - 1)^2 mod 1000000007 computed independently:
  // 2^64 mod p = 582344008, so (2^64-1)^2 mod p = (582344008-1)^2 mod p.
  const std::uint64_t p = 1000000007ULL;
  const U256 a = from_u64(~0ULL);
  const auto r = u256_mulmod(a, a, from_u64(p));
  const unsigned __int128 expected =
      static_cast<unsigned __int128>(582344008ULL - 1) * (582344008ULL - 1) %
      p;
  EXPECT_EQ(r.w[0], static_cast<std::uint64_t>(expected));
}

TEST(U256, ByteRoundtrip) {
  Bytes b(32);
  for (int i = 0; i < 32; ++i) b[i] = static_cast<std::uint8_t>(i * 7 + 1);
  const U256 x = u256_from_le(ByteSpan(b.data(), 32));
  std::uint8_t out[32];
  u256_to_le(x, out);
  EXPECT_EQ(Bytes(out, out + 32), b);
}

TEST(Field, AddSubInverse) {
  const U256 a = fe_mul(from_u64(12345), from_u64(67890));
  const U256 b = fe_mul(from_u64(555), from_u64(777));
  EXPECT_EQ(fe_sub(fe_add(a, b), b), a);
}

TEST(Field, NegSumsToZero) {
  const U256 a = from_u64(42);
  EXPECT_TRUE(u256_is_zero(fe_add(a, fe_neg(a))));
}

TEST(Field, MulCommutesAndDistributes) {
  const U256 a = fe_mul(from_u64(0xdeadbeef), from_u64(0x12345678));
  const U256 b = from_u64(0xcafebabe);
  const U256 c = from_u64(0x87654321);
  EXPECT_EQ(fe_mul(a, b), fe_mul(b, a));
  EXPECT_EQ(fe_mul(a, fe_add(b, c)), fe_add(fe_mul(a, b), fe_mul(a, c)));
}

TEST(Field, InvertIsMultiplicativeInverse) {
  const U256 a = fe_mul(from_u64(987654321), from_u64(123456789));
  EXPECT_EQ(fe_mul(a, fe_invert(a)), u256_one());
}

TEST(Field, SqrtM1Squared) {
  // (sqrt(-1))^2 == p - 1.
  const U256 m1 = fe_neg(u256_one());
  EXPECT_EQ(fe_sq(fe_sqrt_m1()), m1);
}

TEST(Field, FoldHandlesMaxProduct) {
  // (p-1)^2 mod p == 1.
  const U256 p_minus_1 = fe_neg(u256_one());
  EXPECT_EQ(fe_sq(p_minus_1), u256_one());
}

TEST(Point, BasePointOnCurve) {
  // -x^2 + y^2 = 1 + d*x^2*y^2 for affine base point.
  const Point& b = point_base();
  EXPECT_EQ(b.Z, u256_one());
  const U256 x2 = fe_sq(b.X);
  const U256 y2 = fe_sq(b.Y);
  const U256 lhs = fe_sub(y2, x2);
  const U256 rhs = fe_add(u256_one(), fe_mul(fe_d(), fe_mul(x2, y2)));
  EXPECT_EQ(lhs, rhs);
}

TEST(Point, CompressDecompressBase) {
  const Bytes compressed = point_compress(point_base());
  EXPECT_EQ(to_hex(compressed),
            "5866666666666666666666666666666666666666666666666666666666666666");
  const auto decompressed = point_decompress(compressed);
  ASSERT_TRUE(decompressed.has_value());
  EXPECT_TRUE(point_eq(*decompressed, point_base()));
}

TEST(Point, IdentityProperties) {
  const Point id = point_identity();
  EXPECT_TRUE(point_is_identity(id));
  EXPECT_TRUE(point_eq(point_add(id, point_base()), point_base()));
  EXPECT_TRUE(point_eq(point_add(point_base(), id), point_base()));
}

TEST(Point, DoubleMatchesAdd) {
  const Point& b = point_base();
  EXPECT_TRUE(point_eq(point_double(b), point_add(b, b)));
}

TEST(Point, AdditionAssociates) {
  const Point b2 = point_double(point_base());
  const Point b3 = point_add(b2, point_base());
  const Point lhs = point_add(b3, b2);             // (3B) + 2B
  const Point rhs = point_add(point_add(b2, b2), point_base());  // 4B + B
  EXPECT_TRUE(point_eq(lhs, rhs));
}

TEST(Point, NegateCancels) {
  const Point& b = point_base();
  EXPECT_TRUE(point_is_identity(point_add(b, point_negate(b))));
}

TEST(Point, ScalarMulMatchesRepeatedAdd) {
  const U256 five = from_u64(5);
  Point acc = point_identity();
  for (int i = 0; i < 5; ++i) acc = point_add(acc, point_base());
  EXPECT_TRUE(point_eq(point_scalar_mul(five, point_base()), acc));
}

TEST(Point, ScalarMulDistributes) {
  // (a+b)*P == a*P + b*P for small a, b.
  const U256 a = from_u64(123);
  const U256 b = from_u64(456);
  const U256 ab = from_u64(579);
  const Point lhs = point_scalar_mul(ab, point_base());
  const Point rhs = point_add(point_scalar_mul(a, point_base()),
                              point_scalar_mul(b, point_base()));
  EXPECT_TRUE(point_eq(lhs, rhs));
}

TEST(Point, OrderLTimesBaseIsIdentity) {
  EXPECT_TRUE(
      point_is_identity(point_scalar_mul(group_order(), point_base())));
}

TEST(Point, CofactorMulIsThreeDoublings) {
  const Point b8 = point_mul_cofactor(point_base());
  EXPECT_TRUE(point_eq(b8, point_scalar_mul(from_u64(8), point_base())));
}

TEST(Point, DecompressRejectsNonCanonicalY) {
  // y >= p is non-canonical.
  Bytes bad(32, 0xff);
  bad[31] = 0x7f;  // y = p + something
  EXPECT_FALSE(point_decompress(bad).has_value());
}

TEST(Point, DecompressRejectsNonResidue) {
  // Hunt for an encoding that fails: y = 2 gives x^2 = (y^2-1)/(dy^2+1);
  // scan a few small y values — at least one must be rejected because only
  // about half of field elements are squares.
  int rejected = 0;
  for (std::uint8_t y = 2; y < 40; ++y) {
    Bytes enc(32, 0);
    enc[0] = y;
    if (!point_decompress(enc).has_value()) ++rejected;
  }
  EXPECT_GT(rejected, 0);
}

TEST(Scalar, ReduceWideMatchesMod) {
  Bytes wide(64, 0);
  wide[0] = 1;  // value 1
  EXPECT_EQ(sc_reduce_wide(wide), u256_one());
}

TEST(Scalar, AddWrapsAtL) {
  const U256& l = group_order();
  U256 l_minus_1;
  u256_sub(l_minus_1, l, u256_one());
  EXPECT_TRUE(u256_is_zero(sc_add(l_minus_1, u256_one())));
}

TEST(Scalar, MulAddConsistency) {
  const U256 a = from_u64(1234567);
  const U256 b = from_u64(7654321);
  const U256 c = from_u64(999);
  EXPECT_EQ(sc_muladd(a, b, c), sc_add(sc_mul(a, b), c));
}

TEST(Scalar, SubIsAddInverse) {
  const U256 a = from_u64(100);
  const U256 b = from_u64(300);
  EXPECT_EQ(sc_add(sc_sub(a, b), b), a);
}

}  // namespace
}  // namespace probft::crypto::curve
