// Synchronizer unit tests driving a small fleet of synchronizers over the
// simulated network-less harness (wishes relayed directly).
#include "sync/synchronizer.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "net/simulator.hpp"

namespace probft::sync {
namespace {

/// N synchronizers wired to each other through the simulator with a fixed
/// wish-propagation delay.
struct Fleet {
  net::Simulator sim;
  std::vector<std::unique_ptr<Synchronizer>> nodes;  // 1-based
  std::vector<View> entered;                         // last view entered
  std::vector<std::vector<View>> history;
  Duration wish_delay = 1'000;
  std::vector<bool> silent;

  Fleet(std::uint32_t n, std::uint32_t f, SyncConfig base = {}) {
    base.n = n;
    base.f = f;
    if (base.base_timeout == 100'000 && base.backoff == 1.5) {
      base.base_timeout = 50'000;
    }
    entered.assign(n + 1, 0);
    history.resize(n + 1);
    silent.assign(n + 1, false);
    nodes.resize(n + 1);
    for (ReplicaId id = 1; id <= n; ++id) {
      nodes[id] = std::make_unique<Synchronizer>(
          id, base,
          /*wish=*/
          [this, id, n](View v) {
            if (silent[id]) return;
            for (ReplicaId to = 1; to <= n; ++to) {
              if (to == id) continue;
              sim.schedule_after(wish_delay, [this, to, id, v] {
                nodes[to]->on_wish(id, v);
              });
            }
          },
          /*enter=*/
          [this, id](View v) {
            entered[id] = v;
            history[id].push_back(v);
          },
          /*timer=*/
          [this](Duration d, std::function<void()> fn) {
            sim.schedule_after(d, std::move(fn));
          });
    }
  }

  void start_all() {
    for (std::size_t id = 1; id < nodes.size(); ++id) nodes[id]->start();
  }
};

TEST(Synchronizer, StartEntersViewOne) {
  Fleet fleet(4, 1);
  fleet.start_all();
  for (ReplicaId id = 1; id <= 4; ++id) {
    EXPECT_EQ(fleet.entered[id], 1U);
    EXPECT_EQ(fleet.nodes[id]->view(), 1U);
  }
}

TEST(Synchronizer, TimeoutAdvancesAllToViewTwo) {
  Fleet fleet(4, 1);
  fleet.start_all();
  fleet.sim.run_until(1'000'000);
  for (ReplicaId id = 1; id <= 4; ++id) {
    EXPECT_GE(fleet.entered[id], 2U) << "replica " << id;
  }
}

TEST(Synchronizer, ViewsAreMonotonic) {
  Fleet fleet(4, 1);
  fleet.start_all();
  fleet.sim.run_until(3'000'000);
  for (ReplicaId id = 1; id <= 4; ++id) {
    for (std::size_t i = 1; i < fleet.history[id].size(); ++i) {
      EXPECT_GT(fleet.history[id][i], fleet.history[id][i - 1]);
    }
  }
}

TEST(Synchronizer, StoppedNodeDoesNotAdvance) {
  Fleet fleet(4, 1);
  fleet.start_all();
  fleet.nodes[1]->stop();
  fleet.sim.run_until(2'000'000);
  EXPECT_EQ(fleet.entered[1], 1U);
  EXPECT_TRUE(fleet.nodes[1]->stopped());
}

TEST(Synchronizer, AdvanceTriggersWishAndEventualEntry) {
  Fleet fleet(4, 1);
  fleet.start_all();
  // All four ask to advance immediately (e.g. blocked views).
  for (ReplicaId id = 1; id <= 4; ++id) fleet.nodes[id]->advance();
  fleet.sim.run_until(40'000);  // before the view-2 timeout fires
  for (ReplicaId id = 1; id <= 4; ++id) {
    EXPECT_EQ(fleet.entered[id], 2U) << "replica " << id;
  }
}

TEST(Synchronizer, FPlusOneWishesAreAmplified) {
  // Only f+1 = 2 nodes ask to advance; amplification must pull the other
  // two along without waiting for their timeouts.
  Fleet fleet(4, 1);
  fleet.start_all();
  fleet.nodes[1]->advance();
  fleet.nodes[2]->advance();
  fleet.sim.run_until(49'000);  // strictly before the first timeout
  for (ReplicaId id = 1; id <= 4; ++id) {
    EXPECT_EQ(fleet.entered[id], 2U) << "replica " << id;
  }
}

TEST(Synchronizer, FWishesAreNotEnough) {
  // Only f = 1 node wishes: nobody may enter view 2 before timeouts.
  Fleet fleet(4, 1);
  fleet.start_all();
  fleet.nodes[1]->advance();
  fleet.sim.run_until(40'000);  // before the 50ms base timeout
  EXPECT_EQ(fleet.entered[2], 1U);
  EXPECT_EQ(fleet.entered[3], 1U);
  EXPECT_EQ(fleet.entered[4], 1U);
}

TEST(Synchronizer, ByzantineWishesAloneCannotForceViewChange) {
  // A single Byzantine replica (f=1) wishes an enormous view; correct
  // replicas must not jump: one wish is below the f+1 amplification bar.
  Fleet fleet(4, 1);
  fleet.start_all();
  for (ReplicaId id = 2; id <= 4; ++id) {
    fleet.nodes[id]->on_wish(1, 1'000'000);
  }
  fleet.sim.run_until(40'000);
  for (ReplicaId id = 2; id <= 4; ++id) {
    EXPECT_EQ(fleet.entered[id], 1U) << "replica " << id;
  }
}

TEST(Synchronizer, SilentMinorityDoesNotBlockProgress) {
  // One silent (crashed) node out of 4 with f=1: the rest still advance
  // past view 2 via timeouts (2f+1 = 3 wishes reachable).
  Fleet fleet(4, 1);
  fleet.silent[4] = true;
  fleet.start_all();
  fleet.sim.run_until(2'000'000);
  for (ReplicaId id = 1; id <= 3; ++id) {
    EXPECT_GE(fleet.entered[id], 2U) << "replica " << id;
  }
}

TEST(Synchronizer, TimeoutsGrowExponentially) {
  SyncConfig cfg;
  cfg.n = 4;
  cfg.f = 1;
  cfg.base_timeout = 1000;
  cfg.backoff = 2.0;
  cfg.max_timeout = 100'000;
  Fleet fleet(4, 1, cfg);
  EXPECT_EQ(fleet.nodes[1]->timeout_for(1), 1000U);
  EXPECT_EQ(fleet.nodes[1]->timeout_for(2), 2000U);
  EXPECT_EQ(fleet.nodes[1]->timeout_for(5), 16000U);
  EXPECT_EQ(fleet.nodes[1]->timeout_for(50), 100'000U);  // capped
}

TEST(Synchronizer, WishesFromUnknownRepilcasIgnored) {
  Fleet fleet(4, 1);
  fleet.start_all();
  fleet.nodes[1]->on_wish(0, 5);
  fleet.nodes[1]->on_wish(99, 5);
  fleet.sim.run_until(10'000);
  EXPECT_EQ(fleet.entered[1], 1U);
}

TEST(Synchronizer, RejectsBadConfig) {
  SyncConfig cfg;
  cfg.n = 0;
  EXPECT_THROW(Synchronizer(1, cfg, nullptr, nullptr, nullptr),
               std::invalid_argument);
}

TEST(Synchronizer, ConvergesDespiteScatteredWishes) {
  // Nodes wish different views; everyone must converge to a common one.
  Fleet fleet(7, 2);
  fleet.start_all();
  fleet.nodes[1]->on_wish(2, 3);
  fleet.nodes[1]->on_wish(3, 4);
  fleet.nodes[1]->on_wish(4, 5);  // f+1 = 3 distinct wishes >= 3
  fleet.sim.run_until(2'000'000);
  // All correct nodes end in the same view eventually.
  for (ReplicaId id = 2; id <= 7; ++id) {
    EXPECT_EQ(fleet.nodes[id]->view(), fleet.nodes[1]->view())
        << "replica " << id;
  }
}

}  // namespace
}  // namespace probft::sync
