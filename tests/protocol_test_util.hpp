// Shared helpers for driving protocol replicas directly (no network):
// captures outgoing messages in an outbox and crafts correctly-signed
// protocol messages from arbitrary (including Byzantine) senders.
#pragma once

#include <algorithm>
#include <cmath>
#include <functional>
#include <memory>
#include <vector>

#include "common/bytes.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"
#include "core/messages.hpp"
#include "core/replica.hpp"
#include "crypto/sampler.hpp"
#include "crypto/suite.hpp"
#include "pbft/pbft_replica.hpp"

namespace probft::testutil {

using core::MsgTag;
using core::NewLeaderMsg;
using core::PhaseMsg;
using core::ProposeMsg;
using core::SignedProposal;

struct SentMessage {
  ReplicaId to = 0;  // 0 = broadcast
  std::uint8_t tag = 0;
  Bytes payload;
};

/// A keyed universe of n replicas plus message-crafting helpers.
class TestBed {
 public:
  TestBed(std::uint32_t n, std::uint32_t f, double o = 1.7, double l = 2.0,
          std::uint64_t seed = 1)
      : n_(n), f_(f), o_(o), l_(l), suite_(crypto::make_sim_suite()) {
    keys_.resize(n + 1);
    std::vector<Bytes> key_table(n + 1);
    for (ReplicaId id = 1; id <= n; ++id) {
      keys_[id] = suite_->keygen(mix64(seed, id));
      key_table[id] = keys_[id].public_key;
    }
    public_keys_ = crypto::PublicKeyDir(std::move(key_table));
  }

  [[nodiscard]] std::uint32_t n() const { return n_; }
  [[nodiscard]] const crypto::CryptoSuite& suite() const { return *suite_; }
  [[nodiscard]] const Bytes& secret(ReplicaId id) const {
    return keys_[id].secret_key;
  }
  [[nodiscard]] const crypto::PublicKeyDir& public_keys() const {
    return public_keys_;
  }

  /// Builds a ProBFT replica whose sends land in `outbox` and whose timers
  /// land in `timers` (fire manually with fire_timers()). `verdicts`
  /// optionally shares a verdict cache (e.g. one a VerifyPool pre-warms).
  std::unique_ptr<core::Replica> make_replica(
      ReplicaId id, Bytes my_value = to_bytes("own-value"),
      bool fast_verify = true,
      std::shared_ptr<core::VerdictCache> verdicts = nullptr) {
    core::ReplicaConfig rc;
    rc.id = id;
    rc.n = n_;
    rc.f = f_;
    rc.o = o_;
    rc.l = l_;
    rc.fast_verify = fast_verify;
    rc.my_value = std::move(my_value);
    rc.suite = suite_.get();
    rc.secret_key = keys_[id].secret_key;
    rc.public_keys = public_keys_;
    rc.verdicts = std::move(verdicts);
    core::ProtocolHost hooks;
    hooks.send = [this](ReplicaId to, std::uint8_t tag, const Bytes& m) {
      outbox.push_back({to, tag, m});
    };
    hooks.broadcast = [this](std::uint8_t tag, const Bytes& m) {
      outbox.push_back({0, tag, m});
    };
    hooks.set_timer = [this](Duration d, std::function<void()> fn) {
      timers.push_back({d, std::move(fn)});
    };
    hooks.on_decide = [this](View v, const Bytes& value) {
      decisions.push_back({v, value});
    };
    sync::SyncConfig sc;
    sc.base_timeout = 100'000;
    return std::make_unique<core::Replica>(std::move(rc), sc, hooks);
  }

  /// Builds a PBFT replica with the same outbox/timers wiring.
  std::unique_ptr<pbft::PbftReplica> make_pbft_replica(
      ReplicaId id, Bytes my_value = to_bytes("own-value")) {
    pbft::PbftConfig rc;
    rc.id = id;
    rc.n = n_;
    rc.f = f_;
    rc.my_value = std::move(my_value);
    rc.suite = suite_.get();
    rc.secret_key = keys_[id].secret_key;
    rc.public_keys = public_keys_;
    core::ProtocolHost hooks;
    hooks.send = [this](ReplicaId to, std::uint8_t tag, const Bytes& m) {
      outbox.push_back({to, tag, m});
    };
    hooks.broadcast = [this](std::uint8_t tag, const Bytes& m) {
      outbox.push_back({0, tag, m});
    };
    hooks.set_timer = [this](Duration d, std::function<void()> fn) {
      timers.push_back({d, std::move(fn)});
    };
    hooks.on_decide = [this](View v, const Bytes& value) {
      decisions.push_back({v, value});
    };
    sync::SyncConfig sc;
    sc.base_timeout = 100'000;
    return std::make_unique<pbft::PbftReplica>(std::move(rc), sc, hooks);
  }

  /// A PBFT-style PhaseMsg: no VRF sample/proof, just the signed tuple.
  [[nodiscard]] PhaseMsg make_plain_phase(MsgTag tag, View v,
                                          const Bytes& value,
                                          ReplicaId sender,
                                          ReplicaId leader) const {
    PhaseMsg m;
    m.proposal = sign_proposal(v, value, leader);
    m.sender = sender;
    m.sender_sig =
        suite_->sign(keys_[sender].secret_key, m.signing_bytes(tag));
    return m;
  }

  // ---- message crafting (correctly signed by arbitrary replicas) ----

  [[nodiscard]] SignedProposal sign_proposal(View v, const Bytes& value,
                                             ReplicaId signer) const {
    SignedProposal p;
    p.view = v;
    p.value = value;
    p.leader_sig = suite_->sign(keys_[signer].secret_key,
                                SignedProposal::signing_bytes(v, value));
    return p;
  }

  [[nodiscard]] ProposeMsg make_propose(
      View v, const Bytes& value, ReplicaId sender,
      std::vector<NewLeaderMsg> justification = {}) const {
    ProposeMsg m;
    m.proposal = sign_proposal(v, value, sender);
    m.justification = std::move(justification);
    m.sender = sender;
    m.sender_sig =
        suite_->sign(keys_[sender].secret_key, m.signing_bytes());
    return m;
  }

  [[nodiscard]] PhaseMsg make_phase(MsgTag tag, View v, const Bytes& value,
                                    ReplicaId sender,
                                    ReplicaId leader) const {
    PhaseMsg m;
    m.proposal = sign_proposal(v, value, leader);
    const char* phase = tag == MsgTag::kPrepare ? "prepare" : "commit";
    const Bytes alpha = crypto::sample_alpha(v, phase);
    auto sampled = crypto::vrf_sample(*suite_, keys_[sender].secret_key,
                                      ByteSpan(alpha.data(), alpha.size()),
                                      n_, sample_size());
    m.sample = std::move(sampled.sample);
    m.vrf_proof = std::move(sampled.proof);
    m.sender = sender;
    m.sender_sig =
        suite_->sign(keys_[sender].secret_key, m.signing_bytes(tag));
    return m;
  }

  [[nodiscard]] NewLeaderMsg make_new_leader(
      View v, ReplicaId sender, View prepared_view = 0,
      Bytes prepared_value = {},
      std::vector<core::PhaseMsgPtr> cert = {}) const {
    NewLeaderMsg m;
    m.view = v;
    m.prepared_view = prepared_view;
    m.prepared_value = std::move(prepared_value);
    m.cert = std::move(cert);
    m.sender = sender;
    m.sender_sig =
        suite_->sign(keys_[sender].secret_key, m.signing_bytes());
    return m;
  }

  /// A prepared certificate for (view, value) addressed to `target`: uses
  /// prepares from senders whose VRF sample includes `target`. Requires the
  /// configuration to yield enough such senders (use s == n in tests).
  /// Entries are shared immutable handles; tests that tamper with one must
  /// clone it first (see clone_cert_entry).
  [[nodiscard]] std::vector<core::PhaseMsgPtr> make_cert(
      View v, const Bytes& value, ReplicaId target, ReplicaId leader) const {
    std::vector<core::PhaseMsgPtr> cert;
    for (ReplicaId sender = 1; sender <= n_ && cert.size() < q(); ++sender) {
      auto m = make_phase(MsgTag::kPrepare, v, value, sender, leader);
      if (std::binary_search(m.sample.begin(), m.sample.end(), target)) {
        cert.push_back(std::make_shared<PhaseMsg>(std::move(m)));
      }
    }
    return cert;
  }

  /// Mutable deep copy of one certificate entry with its digest memo
  /// cleared, for crafting tampered certificates.
  [[nodiscard]] static std::shared_ptr<PhaseMsg> clone_cert_entry(
      const core::PhaseMsgPtr& entry) {
    auto copy = std::make_shared<PhaseMsg>(*entry);
    copy->digest_memo_.clear();
    return copy;
  }

  [[nodiscard]] std::uint32_t q() const {
    return static_cast<std::uint32_t>(
        std::ceil(l_ * std::sqrt(static_cast<double>(n_))));
  }
  [[nodiscard]] std::uint32_t sample_size() const {
    return std::min(
        static_cast<std::uint32_t>(std::ceil(o_ * static_cast<double>(q()))),
        n_);
  }

  /// Delivers every prepare/commit needed for `replica` to decide in view 1
  /// on `value` proposed by `leader`.
  void drive_to_decision(core::Replica& replica, View v, const Bytes& value,
                         ReplicaId leader) {
    replica.on_message(leader, core::tag_byte(MsgTag::kPropose),
                       make_propose(v, value, leader).to_bytes());
    for (ReplicaId sender = 1; sender <= n_; ++sender) {
      if (sender == replica.config().id) continue;
      replica.on_message(sender, core::tag_byte(MsgTag::kPrepare),
                         make_phase(MsgTag::kPrepare, v, value, sender,
                                    leader)
                             .to_bytes());
    }
    for (ReplicaId sender = 1; sender <= n_; ++sender) {
      if (sender == replica.config().id) continue;
      replica.on_message(sender, core::tag_byte(MsgTag::kCommit),
                         make_phase(MsgTag::kCommit, v, value, sender,
                                    leader)
                             .to_bytes());
    }
  }

  struct Timer {
    Duration delay;
    std::function<void()> fn;
  };
  struct DecisionRec {
    View view;
    Bytes value;
  };

  std::vector<SentMessage> outbox;
  std::vector<Timer> timers;
  std::vector<DecisionRec> decisions;

 private:
  std::uint32_t n_, f_;
  double o_, l_;
  std::unique_ptr<crypto::CryptoSuite> suite_;
  std::vector<crypto::KeyPair> keys_;
  crypto::PublicKeyDir public_keys_;
};

}  // namespace probft::testutil
