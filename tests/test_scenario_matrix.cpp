// Cross-protocol scenario conformance matrix.
//
// Sweeps protocols × faults × seeds through the declarative scenario
// harness and asserts the paper's correctness claims uniformly:
//   - agreement: correct replicas never decide two different values
//     (always asserted, including under Byzantine attacks);
//   - termination: every correct replica decides before the deadline
//     (asserted for every benign-fault combination).
#include <gtest/gtest.h>

#include "sim/scenario.hpp"

namespace probft::sim {
namespace {

ScenarioSpec matrix_base() { return conformance_base_spec(); }

TEST(ScenarioMatrix, BenignFaultsTerminateWithAgreement) {
  const std::vector<Fault> faults = {
      Fault::kNone,          Fault::kSilentLeader,
      Fault::kSilentFollowers, Fault::kPartitionUntilGst,
      Fault::kChurnRecovery, Fault::kAsymmetricPartition,
      Fault::kReorderAdversary};
  const std::vector<std::uint64_t> seeds = {1, 2};

  const auto specs = expand_matrix(all_protocols(), faults, seeds, matrix_base());
  ASSERT_EQ(specs.size(), 21U);  // 3 protocols × 7 applicable faults

  std::size_t combinations = 0;
  for (const auto& result : run_matrix(specs)) {
    EXPECT_TRUE(result.spec.expect_termination)
        << scenario_name(result.spec);
    for (const auto& outcome : result.outcomes) {
      ++combinations;
      EXPECT_TRUE(outcome.agreement)
          << scenario_name(result.spec) << " seed " << outcome.seed;
      EXPECT_TRUE(outcome.terminated)
          << scenario_name(result.spec) << " seed " << outcome.seed << ": "
          << outcome.decided << "/" << outcome.correct << " decided";
      EXPECT_EQ(outcome.decided, outcome.correct)
          << scenario_name(result.spec) << " seed " << outcome.seed;
    }
  }
  // The acceptance bar for this matrix: ≥ 18 (protocol, fault, seed)
  // combinations asserting both invariants.
  EXPECT_GE(combinations, 18U);
}

TEST(ScenarioMatrix, ByzantineAttacksNeverViolateAgreement) {
  const std::vector<Fault> faults = {Fault::kEquivocate, Fault::kFlood};
  const std::vector<std::uint64_t> seeds = {1, 2, 3};

  const auto specs = expand_matrix(all_protocols(), faults, seeds, matrix_base());
  // Equivocation applies to ProBFT + PBFT; flooding is ProBFT-only.
  ASSERT_EQ(specs.size(), 3U);

  for (const auto& result : run_matrix(specs)) {
    EXPECT_FALSE(result.spec.expect_termination)
        << scenario_name(result.spec);
    for (const auto& outcome : result.outcomes) {
      EXPECT_TRUE(outcome.agreement)
          << scenario_name(result.spec) << " seed " << outcome.seed;
    }
  }
}

TEST(ScenarioMatrix, AsynchronyPresetsStillTerminate) {
  // Partial synchrony (and duplicate deliveries) delay but never prevent
  // liveness once GST passes.
  ScenarioSpec spec = matrix_base();
  for (const LatencyModel model :
       {LatencyModel::kPartialSynchrony, LatencyModel::kLossyDuplicating}) {
    for (const Protocol protocol : all_protocols()) {
      spec.protocol = protocol;
      spec.latency = model;
      const auto outcome = run_scenario(spec, /*seed=*/7);
      EXPECT_TRUE(outcome.terminated)
          << scenario_name(spec) << ": " << outcome.decided << "/"
          << outcome.correct;
      EXPECT_TRUE(outcome.agreement) << scenario_name(spec);
    }
  }
}

TEST(ScenarioMatrix, SmrWorkloadKeepsLogsIdenticalUnderFaults) {
  // The SMR workload dimension: a pipelined SmrReplica fleet driven
  // through a two-wave client workload (including a cross-replica retry)
  // must end with every correct replica executing the full workload and
  // prefix-consistent slot logs — under crash and churn faults at
  // minimum, plus the partition/reorder network faults.
  ScenarioSpec base = matrix_base();
  base.workload = Workload::kSmr;
  base.smr_commands = 10;
  base.smr.window = 4;
  base.smr.batch_max_commands = 4;
  const std::vector<Fault> faults = {
      Fault::kNone, Fault::kSilentFollowers, Fault::kChurnRecovery,
      Fault::kPartitionUntilGst, Fault::kReorderAdversary};
  const auto specs =
      expand_matrix({Protocol::kProbft}, faults, {1, 2}, base);
  ASSERT_EQ(specs.size(), 5U);
  for (const auto& result : run_matrix(specs)) {
    for (const auto& outcome : result.outcomes) {
      EXPECT_TRUE(outcome.agreement)
          << scenario_name(result.spec) << " seed " << outcome.seed << "\n"
          << outcome.transcript;
      EXPECT_TRUE(outcome.terminated)
          << scenario_name(result.spec) << " seed " << outcome.seed << ": "
          << outcome.decided << "/" << outcome.correct << "\n"
          << outcome.transcript;
    }
  }
}

TEST(ScenarioMatrix, SmrWorkloadIsSeedDeterministic) {
  ScenarioSpec spec = matrix_base();
  spec.workload = Workload::kSmr;
  spec.fault = Fault::kChurnRecovery;
  spec.smr_commands = 8;
  const auto a = run_scenario_smr(spec, /*seed=*/5);
  const auto b = run_scenario_smr(spec, /*seed=*/5);
  EXPECT_EQ(a.transcript, b.transcript);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.messages, b.messages);
}

// ---- Harness unit tests ----

TEST(ScenarioSpecTest, FaultApplicability) {
  ScenarioSpec spec = matrix_base();

  spec.fault = Fault::kEquivocate;
  spec.protocol = Protocol::kProbft;
  EXPECT_TRUE(fault_applicable(spec));
  spec.protocol = Protocol::kHotStuff;
  EXPECT_FALSE(fault_applicable(spec));

  spec.fault = Fault::kFlood;
  EXPECT_FALSE(fault_applicable(spec));
  spec.protocol = Protocol::kProbft;
  EXPECT_TRUE(fault_applicable(spec));

  // Crash faults need a fault budget.
  spec.fault = Fault::kSilentLeader;
  spec.f = 0;
  EXPECT_FALSE(fault_applicable(spec));
  spec.f = 1;
  EXPECT_TRUE(fault_applicable(spec));

  // The SMR workload narrows applicability to fleet-realizable faults.
  spec.workload = Workload::kSmr;
  spec.fault = Fault::kSilentFollowers;
  EXPECT_TRUE(fault_applicable(spec));
  spec.fault = Fault::kChurnRecovery;
  EXPECT_TRUE(fault_applicable(spec));
  spec.fault = Fault::kEquivocate;
  spec.protocol = Protocol::kProbft;
  EXPECT_FALSE(fault_applicable(spec));
  spec.fault = Fault::kAdaptiveLeader;
  EXPECT_FALSE(fault_applicable(spec));
  EXPECT_FALSE(smr_fault_supported(Fault::kFlood));
}

TEST(ScenarioSpecTest, MakeClusterConfigDerivesBehaviors) {
  ScenarioSpec spec = matrix_base();

  spec.fault = Fault::kSilentLeader;
  auto cfg = make_cluster_config(spec, 42);
  ASSERT_EQ(cfg.behaviors.size(), 16U);
  EXPECT_EQ(cfg.behaviors[0], Behavior::kSilent);
  EXPECT_EQ(cfg.behaviors[1], Behavior::kHonest);
  EXPECT_EQ(cfg.seed, 42U);

  spec.fault = Fault::kSilentFollowers;
  cfg = make_cluster_config(spec, 1);
  for (std::uint32_t i = 13; i < 16; ++i) {
    EXPECT_EQ(cfg.behaviors[i], Behavior::kSilent) << i;
  }
  EXPECT_EQ(cfg.behaviors[12], Behavior::kHonest);

  spec.fault = Fault::kEquivocate;
  cfg = make_cluster_config(spec, 1);
  EXPECT_EQ(cfg.behaviors[0], Behavior::kEquivocateLeader);
  EXPECT_EQ(cfg.behaviors[1], Behavior::kColludeFollower);
  EXPECT_EQ(cfg.behaviors[2], Behavior::kColludeFollower);
  EXPECT_EQ(cfg.behaviors[3], Behavior::kHonest);
  EXPECT_EQ(cfg.split, SplitStrategy::kOptimal);

  spec.fault = Fault::kPartitionUntilGst;
  cfg = make_cluster_config(spec, 1);
  EXPECT_GT(cfg.latency.gst, 0U);  // healing point forced for partitions
}

TEST(ScenarioSpecTest, NamesAndRoundTrips) {
  ScenarioSpec spec = matrix_base();
  spec.protocol = Protocol::kPbft;
  spec.fault = Fault::kSilentFollowers;
  spec.latency = LatencyModel::kPartialSynchrony;
  EXPECT_EQ(scenario_name(spec), "pbft/n16f3/silent-f/partial-synchrony");

  Protocol protocol{};
  EXPECT_TRUE(protocol_from_string("hotstuff", protocol));
  EXPECT_EQ(protocol, Protocol::kHotStuff);
  EXPECT_FALSE(protocol_from_string("raft", protocol));

  Fault fault{};
  EXPECT_TRUE(fault_from_string("equivocate", fault));
  EXPECT_EQ(fault, Fault::kEquivocate);
  EXPECT_FALSE(fault_from_string("unknown", fault));

  spec.workload = Workload::kSmr;
  EXPECT_EQ(scenario_name(spec), "pbft/n16f3/silent-f/partial-synchrony/smr");
  Workload workload{};
  EXPECT_TRUE(workload_from_string("smr", workload));
  EXPECT_EQ(workload, Workload::kSmr);
  EXPECT_FALSE(workload_from_string("raft", workload));
}

TEST(ScenarioSpecTest, ExpandMatrixSkipsInapplicable) {
  const auto specs = expand_matrix(
      all_protocols(),
      {Fault::kNone, Fault::kEquivocate, Fault::kFlood},
      {1}, matrix_base());
  // kNone everywhere (3) + equivocate (probft, pbft) + flood (probft).
  ASSERT_EQ(specs.size(), 6U);
  for (const auto& spec : specs) {
    EXPECT_TRUE(fault_applicable(spec)) << scenario_name(spec);
  }
}

}  // namespace
}  // namespace probft::sim
