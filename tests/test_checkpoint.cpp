// Byzantine-certified checkpoints, signed catch-up vouchers and certified
// state transfer (smr/checkpoint.hpp + the SmrReplica catch-up path).
//
// The headline regression lives here: a single Byzantine peer used to be
// able to forge f+1 "distinct senders" vouching for an undecided value
// (sender ids were channel-trusted), injecting arbitrary values into an
// honest replica's log. Hints are now signed per claimed sender, so the
// flood must bounce off.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "common/rng.hpp"
#include "crypto/sha256.hpp"
#include "net/network.hpp"
#include "sim/scenario.hpp"
#include "smr/checkpoint.hpp"
#include "smr/smr_replica.hpp"

namespace probft::smr {
namespace {

ByteSpan span(const Bytes& bytes) {
  return ByteSpan(bytes.data(), bytes.size());
}

// ---- primitive unit tests ----

TEST(Checkpoint, ChainDigestIsOrderSensitiveAndDeterministic) {
  const Bytes a = to_bytes("batch-a");
  const Bytes b = to_bytes("batch-b");
  const Bytes d0 = zero_digest();
  ASSERT_EQ(d0.size(), 32u);
  const Bytes d_ab = chain_digest(chain_digest(d0, a), b);
  const Bytes d_ba = chain_digest(chain_digest(d0, b), a);
  EXPECT_NE(d_ab, d_ba);
  EXPECT_EQ(d_ab, chain_digest(chain_digest(d0, a), b));
  EXPECT_NE(chain_digest(d0, a), d0);
}

TEST(Checkpoint, StateRoundTripsAndDigestCoversEverything) {
  CheckpointState state;
  state.slot = 16;
  state.exec_count = 40;
  state.log_digest = chain_digest(zero_digest(), to_bytes("x"));
  state.last_exec = {{1, 7}, {5, 2}, {9, 11}};
  Writer w;
  state.encode(w);
  const Bytes encoded = std::move(w).take();
  Reader r(span(encoded));
  const CheckpointState back = CheckpointState::decode(r);
  EXPECT_EQ(back.slot, state.slot);
  EXPECT_EQ(back.exec_count, state.exec_count);
  EXPECT_EQ(back.log_digest, state.log_digest);
  EXPECT_EQ(back.last_exec, state.last_exec);
  EXPECT_EQ(back.digest(), state.digest());

  CheckpointState tweaked = state;
  tweaked.last_exec[1].second = 3;
  EXPECT_NE(tweaked.digest(), state.digest());
}

TEST(Checkpoint, StateDecodeRejectsUnsortedDedupTable) {
  CheckpointState state;
  state.slot = 4;
  state.log_digest = zero_digest();
  state.last_exec = {{5, 1}, {2, 1}};  // descending client ids: invalid
  Writer w;
  state.encode(w);
  const Bytes encoded = std::move(w).take();
  Reader r(span(encoded));
  EXPECT_THROW(CheckpointState::decode(r), CodecError);
}

TEST(Checkpoint, VoteRoundTripsAndRejectsTruncatedBuffers) {
  CheckpointVote vote;
  vote.slot = 12;
  vote.state_digest = chain_digest(zero_digest(), to_bytes("prefix"));
  vote.signer = 3;
  vote.signature = to_bytes("sig-bytes");
  Writer w;
  vote.encode(w);
  const Bytes encoded = std::move(w).take();

  Reader r(span(encoded));
  const CheckpointVote back = CheckpointVote::decode(r);
  EXPECT_EQ(back.slot, vote.slot);
  EXPECT_EQ(back.state_digest, vote.state_digest);
  EXPECT_EQ(back.signer, vote.signer);
  EXPECT_EQ(back.signature, vote.signature);

  // A hostile peer truncating the vote at ANY byte boundary must get a
  // CodecError, never a partially-initialized vote.
  for (std::size_t cut = 0; cut < encoded.size(); ++cut) {
    Reader hostile(ByteSpan(encoded.data(), cut));
    EXPECT_THROW(CheckpointVote::decode(hostile), CodecError) << cut;
  }
}

class CertTest : public ::testing::Test {
 protected:
  void SetUp() override {
    suite_ = crypto::make_sim_suite();
    std::vector<Bytes> table(n_ + 1);
    keys_.resize(n_ + 1);
    for (ReplicaId id = 1; id <= n_; ++id) {
      keys_[id] = suite_->keygen(mix64(7, id));
      table[id] = keys_[id].public_key;
    }
    dir_ = crypto::PublicKeyDir(std::move(table));
    state_.slot = 8;
    state_.exec_count = 8;
    state_.log_digest = chain_digest(zero_digest(), to_bytes("b"));
    digest_ = state_.digest();
  }

  [[nodiscard]] CheckpointCert make_cert(
      const std::vector<ReplicaId>& signers) const {
    CheckpointCert cert;
    cert.slot = state_.slot;
    cert.state_digest = digest_;
    const Bytes msg = checkpoint_signing_bytes(cert.slot, digest_);
    for (ReplicaId id : signers) {
      cert.signatures.emplace_back(
          id, suite_->sign(span(keys_[id].secret_key), span(msg)));
    }
    return cert;
  }

  std::uint32_t n_ = 4, f_ = 1;  // 2f+1 = 3
  std::unique_ptr<crypto::CryptoSuite> suite_;
  std::vector<crypto::KeyPair> keys_;
  crypto::PublicKeyDir dir_;
  CheckpointState state_;
  Bytes digest_;
};

TEST_F(CertTest, QuorumOfDistinctSignersVerifies) {
  EXPECT_TRUE(verify_checkpoint_cert(make_cert({1, 2, 3}), n_, f_, *suite_,
                                     dir_));
  EXPECT_TRUE(verify_checkpoint_cert(make_cert({2, 3, 4}), n_, f_, *suite_,
                                     dir_));
}

TEST_F(CertTest, TooFewSignersRejected) {
  EXPECT_FALSE(
      verify_checkpoint_cert(make_cert({1, 2}), n_, f_, *suite_, dir_));
}

TEST_F(CertTest, DuplicateSignersDoNotCount) {
  // One keypair signing thrice is still one voucher — the forged-voucher
  // attack shape, applied to certs.
  auto cert = make_cert({2, 2, 2});
  EXPECT_FALSE(verify_checkpoint_cert(cert, n_, f_, *suite_, dir_));
}

TEST_F(CertTest, SignatureFromWrongKeyRejected) {
  auto cert = make_cert({1, 2, 3});
  // Replica 3's slot in the cert, signed by 4's key: claimed and actual
  // signer disagree.
  const Bytes msg = checkpoint_signing_bytes(cert.slot, digest_);
  cert.signatures[2].second =
      suite_->sign(span(keys_[4].secret_key), span(msg));
  EXPECT_FALSE(verify_checkpoint_cert(cert, n_, f_, *suite_, dir_));
}

TEST_F(CertTest, OutOfRangeSignerRejected) {
  auto cert = make_cert({1, 2, 3});
  cert.signatures[0].first = 9;  // no such replica
  EXPECT_FALSE(verify_checkpoint_cert(cert, n_, f_, *suite_, dir_));
}

// ---- fleet tests ----

struct Fleet {
  net::Simulator sim;
  std::unique_ptr<net::Network> net;
  std::unique_ptr<crypto::CryptoSuite> suite;
  std::vector<crypto::KeyPair> keys;
  std::vector<std::unique_ptr<SmrReplica>> replicas;  // 1-based

  explicit Fleet(std::uint32_t n, std::uint32_t f, SmrOptions options = {},
                 std::uint64_t seed = 1) {
    net::LatencyConfig latency;
    latency.min_delay = 500;
    latency.max_delay_post = 4'000;
    net = std::make_unique<net::Network>(sim, n, seed, latency);
    suite = crypto::make_sim_suite();
    keys.resize(n + 1);
    std::vector<Bytes> key_table(n + 1);
    for (ReplicaId id = 1; id <= n; ++id) {
      keys[id] = suite->keygen(mix64(seed, id));
      key_table[id] = keys[id].public_key;
    }
    const crypto::PublicKeyDir public_keys(std::move(key_table));
    replicas.resize(n + 1);
    for (ReplicaId id = 1; id <= n; ++id) {
      SmrConfig cfg;
      cfg.id = id;
      cfg.n = n;
      cfg.f = f;
      cfg.l = 1.5;  // q = 3 at n = 4: quorums survive one silent replica
      cfg.pipeline = options;
      cfg.suite = suite.get();
      cfg.secret_key = keys[id].secret_key;
      cfg.public_keys = public_keys;
      cfg.sync.base_timeout = 100'000;
      core::ProtocolHost hooks;
      hooks.send = [this, id](ReplicaId to, std::uint8_t tag, const Bytes& m) {
        net->send(id, to, tag, m);
      };
      hooks.broadcast = [this, id](std::uint8_t tag, const Bytes& m) {
        net->broadcast(id, tag, m);
      };
      hooks.set_timer = [this](Duration d, std::function<void()> fn) {
        sim.schedule_after(d, std::move(fn));
      };
      replicas[id] = std::make_unique<SmrReplica>(std::move(cfg), hooks);
      net->register_handler(
          id, [this, id](ReplicaId from, std::uint8_t tag, const Bytes& m) {
            replicas[id]->on_message(from, tag, m);
          });
    }
  }

  void start_all() {
    for (std::size_t id = 1; id < replicas.size(); ++id) {
      replicas[id]->start();
    }
  }

  bool run_until_executed(std::uint64_t commands,
                          TimePoint deadline = 300'000'000) {
    while (sim.now() < deadline) {
      bool all = true;
      for (std::size_t id = 1; id < replicas.size(); ++id) {
        if (replicas[id]->executed_commands() < commands) {
          all = false;
          break;
        }
      }
      if (all) return true;
      if (!sim.step()) break;
    }
    return false;
  }
};

Bytes one_request_batch(const std::string& payload, std::uint64_t client,
                        std::uint64_t seq) {
  return encode_batch({Request{client, seq, to_bytes(payload)}});
}

/// A hint frame as send_hint produces it, signed with `key`.
Bytes forge_hint(const crypto::CryptoSuite& suite, const Bytes& secret_key,
                 std::uint64_t slot, const Bytes& value) {
  const Bytes digest = crypto::sha256(span(value));
  const Bytes msg = hint_signing_bytes(slot, digest);
  Bytes sig = suite.sign(span(secret_key), span(msg));
  Writer w;
  w.u64(slot);
  w.bytes(span(value));
  w.bytes(span(sig));
  return std::move(w).take();
}

TEST(CheckpointFleet, ForgedVoucherFloodCannotInjectUndecidedValue) {
  // n = 4, f = 1: adoption needs f+1 = 2 distinct VERIFIED vouchers.
  Fleet fleet(4, 1);
  fleet.start_all();
  const Bytes evil = one_request_batch("evil-undecided", 666, 1);

  // Replica 4 (one Byzantine keypair) floods replica 1 with vouchers for
  // an undecided slot-0 value, claiming every sender id on the channel —
  // exactly what a sender-spoofing TCP peer could do before the transport
  // bound connections. All carry signatures from 4's key.
  const Bytes hint =
      forge_hint(*fleet.suite, fleet.keys[4].secret_key, 0, evil);
  for (ReplicaId claimed = 2; claimed <= 4; ++claimed) {
    for (int repeat = 0; repeat < 8; ++repeat) {
      fleet.replicas[1]->on_message(claimed, kSmrHintTag, hint);
    }
  }
  // No adoption: the signature only verifies under key 4, so the forged
  // claims from 2 and 3 are discarded and the voucher count stays 1.
  EXPECT_EQ(fleet.replicas[1]->committed_slots(), 0u);
  EXPECT_EQ(fleet.replicas[1]->executed_commands(), 0u);
  EXPECT_FALSE(fleet.replicas[1]->has_committed(to_bytes("evil-undecided")));

  // The cluster must still be able to decide slot 0 normally afterwards.
  fleet.replicas[1]->submit(to_bytes("legit"));
  ASSERT_TRUE(fleet.run_until_executed(1));
  EXPECT_FALSE(fleet.replicas[1]->has_committed(to_bytes("evil-undecided")));
  EXPECT_TRUE(fleet.replicas[1]->has_committed(to_bytes("legit")));
}

TEST(CheckpointFleet, ProperlySignedVouchersFromDistinctPeersAdopt) {
  Fleet fleet(4, 1);
  fleet.start_all();
  const Bytes value = one_request_batch("decided-elsewhere", 7, 1);
  // Two hints signed by the replicas they claim to come from: at least
  // one of f+1 = 2 distinct signers is correct, so adoption is sound.
  fleet.replicas[1]->on_message(
      2, kSmrHintTag,
      forge_hint(*fleet.suite, fleet.keys[2].secret_key, 0, value));
  EXPECT_EQ(fleet.replicas[1]->committed_slots(), 0u);  // one is not enough
  fleet.replicas[1]->on_message(
      3, kSmrHintTag,
      forge_hint(*fleet.suite, fleet.keys[3].secret_key, 0, value));
  EXPECT_EQ(fleet.replicas[1]->committed_slots(), 1u);
  EXPECT_TRUE(fleet.replicas[1]->has_committed(to_bytes("decided-elsewhere")));
  EXPECT_EQ(fleet.replicas[1]->last_executed_seq(7), 1u);
}

TEST(CheckpointFleet, MismatchedChannelSenderVoucherIsDiscarded) {
  // A hint signed by 4 but delivered as from = 2 must verify under 2's
  // key (and fail) — the signature cannot be "borrowed".
  Fleet fleet(4, 1);
  fleet.start_all();
  const Bytes value = one_request_batch("x", 1, 1);
  const Bytes signed_by_4 =
      forge_hint(*fleet.suite, fleet.keys[4].secret_key, 0, value);
  fleet.replicas[1]->on_message(2, kSmrHintTag, signed_by_4);
  fleet.replicas[1]->on_message(3, kSmrHintTag, signed_by_4);
  fleet.replicas[1]->on_message(4, kSmrHintTag, signed_by_4);  // 1 valid
  EXPECT_EQ(fleet.replicas[1]->committed_slots(), 0u);
}

TEST(CheckpointFleet, CheckpointsStabilizeAndTruncateTheLog) {
  SmrOptions options;
  options.batch_max_commands = 1;
  options.checkpoint_interval = 2;
  Fleet fleet(4, 1, options);
  for (int i = 0; i < 8; ++i) {
    fleet.replicas[1]->submit(to_bytes("op-" + std::to_string(i)));
  }
  fleet.start_all();
  ASSERT_TRUE(fleet.run_until_executed(8));
  // Let trailing checkpoint votes drain.
  for (int i = 0; i < 20'000 && fleet.sim.step(); ++i) {
  }
  const std::string reference = fleet.replicas[1]->log_digest();
  for (ReplicaId id = 1; id <= 4; ++id) {
    auto& rep = *fleet.replicas[id];
    EXPECT_GE(rep.stable_checkpoint(), 2u) << "replica " << id;
    EXPECT_EQ(rep.stable_checkpoint() % 2, 0u);
    EXPECT_EQ(rep.log_base(), rep.stable_checkpoint());
    // The retained log holds only [base, exec): truncation really frees.
    EXPECT_EQ(rep.slot_log().size(), rep.committed_slots() - rep.log_base());
    EXPECT_EQ(rep.log_digest(), reference) << "replica " << id;
  }
}

TEST(CheckpointFleet, CertifiedStateTransferJumpsAStraggler) {
  // Hand a fresh replica a certified checkpoint for slot 8: with a valid
  // 2f+1 cert it must install the state; with a too-small or mismatched
  // cert it must not.
  Fleet fleet(4, 1);
  fleet.start_all();

  CheckpointState state;
  state.slot = 8;
  state.exec_count = 11;
  state.log_digest = chain_digest(zero_digest(), to_bytes("fake-history"));
  state.last_exec = {{3, 4}};
  const Bytes digest = state.digest();
  const Bytes msg = checkpoint_signing_bytes(state.slot, digest);
  const auto cert_of = [&](std::vector<ReplicaId> signers) {
    CheckpointCert cert;
    cert.slot = state.slot;
    cert.state_digest = digest;
    for (ReplicaId id : signers) {
      cert.signatures.emplace_back(
          id, fleet.suite->sign(span(fleet.keys[id].secret_key), span(msg)));
    }
    return cert;
  };
  const auto encode_state = [&](const CheckpointCert& cert) {
    Writer w;
    state.encode(w);
    cert.encode(w);
    return std::move(w).take();
  };

  // f+1 signatures only: rejected, nothing installs.
  fleet.replicas[1]->on_message(4, kSmrStateTag,
                                encode_state(cert_of({2, 4})));
  EXPECT_EQ(fleet.replicas[1]->committed_slots(), 0u);
  EXPECT_EQ(fleet.replicas[1]->stable_checkpoint(), 0u);

  // 2f+1 distinct signers: installed, even when relayed by a single
  // (possibly Byzantine) peer — trust rides the cert, not the channel.
  fleet.replicas[1]->on_message(4, kSmrStateTag,
                                encode_state(cert_of({1, 2, 3})));
  EXPECT_EQ(fleet.replicas[1]->committed_slots(), 8u);
  EXPECT_EQ(fleet.replicas[1]->executed_commands(), 11u);
  EXPECT_EQ(fleet.replicas[1]->log_base(), 8u);
  EXPECT_EQ(fleet.replicas[1]->stable_checkpoint(), 8u);
  EXPECT_EQ(fleet.replicas[1]->last_executed_seq(3), 4u);
  EXPECT_EQ(fleet.replicas[1]->log_digest(), to_hex(state.log_digest));
}

// ---- scenario-level crash-restart (simulated kill -9 + WAL rejoin) ----

TEST(CheckpointScenario, KillRestartRecoversAndConverges) {
  sim::ScenarioSpec spec = sim::conformance_base_spec();
  spec.n = 4;
  spec.f = 1;
  spec.l = 1.5;
  spec.workload = sim::Workload::kSmr;
  spec.fault = sim::Fault::kKillRestart;
  spec.smr.batch_max_commands = 1;
  spec.smr_commands = 12;
  spec.seeds = {1, 2};
  ASSERT_TRUE(sim::fault_applicable(spec));
  const sim::ScenarioResult result = sim::run_scenario(spec);
  for (const auto& outcome : result.outcomes) {
    EXPECT_TRUE(outcome.agreement) << "seed " << outcome.seed;
    EXPECT_TRUE(outcome.terminated) << "seed " << outcome.seed;
  }
}

}  // namespace
}  // namespace probft::smr
