#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

namespace probft {
namespace {

TEST(Rng, SplitMixIsDeterministic) {
  SplitMix64 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, SplitMixDiffersAcrossSeeds) {
  SplitMix64 a(1), b(2);
  EXPECT_NE(a.next(), b.next());
}

TEST(Rng, XoshiroIsDeterministic) {
  Xoshiro256StarStar a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, XoshiroFromBytesDeterministic) {
  const std::uint8_t seed[32] = {1, 2, 3, 4, 5};
  auto a = Xoshiro256StarStar::from_bytes(seed, 32);
  auto b = Xoshiro256StarStar::from_bytes(seed, 32);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, XoshiroFromBytesSensitiveToInput) {
  const std::uint8_t seed_a[32] = {1};
  const std::uint8_t seed_b[32] = {2};
  auto a = Xoshiro256StarStar::from_bytes(seed_a, 32);
  auto b = Xoshiro256StarStar::from_bytes(seed_b, 32);
  EXPECT_NE(a.next(), b.next());
}

TEST(Rng, BoundedStaysInRange) {
  Xoshiro256StarStar rng(123);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.bounded(17), 17ULL);
  }
}

TEST(Rng, BoundedRejectsZero) {
  Xoshiro256StarStar rng(1);
  EXPECT_THROW(rng.bounded(0), std::invalid_argument);
}

TEST(Rng, BoundedIsRoughlyUniform) {
  Xoshiro256StarStar rng(99);
  constexpr int kBuckets = 10;
  constexpr int kDraws = 100000;
  std::array<int, kBuckets> counts{};
  for (int i = 0; i < kDraws; ++i) {
    counts[rng.bounded(kBuckets)]++;
  }
  for (int c : counts) {
    EXPECT_GT(c, kDraws / kBuckets * 0.9);
    EXPECT_LT(c, kDraws / kBuckets * 1.1);
  }
}

TEST(Rng, Uniform01Range) {
  Xoshiro256StarStar rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform01();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, SampleWithoutReplacementDistinct) {
  Xoshiro256StarStar rng(11);
  const auto sample = sample_without_replacement(rng, 100, 30);
  EXPECT_EQ(sample.size(), 30U);
  std::set<std::uint32_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 30U);
  for (auto v : sample) EXPECT_LT(v, 100U);
}

TEST(Rng, SampleFullPopulation) {
  Xoshiro256StarStar rng(13);
  auto sample = sample_without_replacement(rng, 10, 10);
  std::sort(sample.begin(), sample.end());
  for (std::uint32_t i = 0; i < 10; ++i) EXPECT_EQ(sample[i], i);
}

TEST(Rng, SampleRejectsOversizedRequest) {
  Xoshiro256StarStar rng(1);
  EXPECT_THROW(sample_without_replacement(rng, 5, 6), std::invalid_argument);
}

TEST(Rng, SampleInclusionIsUniform) {
  // Each of n items should appear in a k-of-n sample with probability k/n.
  constexpr std::uint32_t n = 20, k = 5;
  constexpr int kTrials = 20000;
  std::array<int, n> counts{};
  Xoshiro256StarStar rng(77);
  for (int t = 0; t < kTrials; ++t) {
    for (auto v : sample_without_replacement(rng, n, k)) counts[v]++;
  }
  const double expected = static_cast<double>(kTrials) * k / n;
  for (int c : counts) {
    EXPECT_GT(c, expected * 0.9);
    EXPECT_LT(c, expected * 1.1);
  }
}

TEST(Rng, Mix64Deterministic) {
  EXPECT_EQ(mix64(1, 2), mix64(1, 2));
  EXPECT_NE(mix64(1, 2), mix64(2, 1));
}

}  // namespace
}  // namespace probft
