// Cross-view safety mechanics (paper §4.3 "Probabilistic Agreement with
// view change", Theorem 8): once a value is decided, later views must
// re-propose it. These tests drive replicas directly through view changes
// using crafted messages (TestBed; s == n keeps certificates deterministic)
// and also exercise the full cluster path.
#include <gtest/gtest.h>

#include "protocol_test_util.hpp"
#include "sim/cluster.hpp"

namespace probft::core {
namespace {

using testutil::TestBed;

class ViewChangeTest : public ::testing::Test {
 protected:
  // n = 9, l = 3 -> q = 9 = s = n; det quorum = 6 (f = 2).
  ViewChangeTest() : bed_(9, 2, 1.7, 3.0) {}

  /// Brings a replica to "prepared" state in view 1 on `value`. Delivers a
  /// crafted Prepare from every replica (including one under the target's
  /// own id — the TestBed does not loop its multicasts back, so the
  /// replica's own Prepare never arrives otherwise and q = n needs all
  /// nine senders).
  void prepare_replica(Replica& replica, const Bytes& value) {
    replica.on_message(1, tag_byte(MsgTag::kPropose),
                       bed_.make_propose(1, value, 1).to_bytes());
    for (ReplicaId s = 1; s <= 9; ++s) {
      replica.on_message(
          s, tag_byte(MsgTag::kPrepare),
          bed_.make_phase(MsgTag::kPrepare, 1, value, s, 1).to_bytes());
    }
  }

  /// Sends enough signed wishes for view `v` to move the replica there.
  void force_view(Replica& replica, View v) {
    for (ReplicaId s = 1; s <= 9; ++s) {
      if (s == replica.config().id) continue;
      WishMsg wish;
      wish.view = v;
      wish.sender = s;
      wish.sender_sig =
          bed_.suite().sign(bed_.secret(s), wish.signing_bytes());
      replica.on_message(s, tag_byte(MsgTag::kWish), wish.to_bytes());
    }
  }

  TestBed bed_;
};

TEST_F(ViewChangeTest, PreparedReplicaDecidesAfterCommits) {
  auto replica = bed_.make_replica(3);
  replica->start();
  const Bytes value = to_bytes("locked-value");
  prepare_replica(*replica, value);
  EXPECT_EQ(replica->prepared_view(), 1U);
  EXPECT_EQ(replica->prepared_value(), value);
  for (ReplicaId s = 1; s <= 9; ++s) {
    replica->on_message(
        s, tag_byte(MsgTag::kCommit),
        bed_.make_phase(MsgTag::kCommit, 1, value, s, 1).to_bytes());
  }
  ASSERT_TRUE(replica->decided());
  EXPECT_EQ(replica->decided_value(), value);
}

TEST_F(ViewChangeTest, NewLeaderMessageCarriesPreparedState) {
  auto replica = bed_.make_replica(3);
  replica->start();
  prepare_replica(*replica, to_bytes("locked-value"));
  bed_.outbox.clear();
  force_view(*replica, 2);
  EXPECT_EQ(replica->current_view(), 2U);
  // The replica must have sent NewLeader to leader(2) = replica 2.
  bool found = false;
  for (const auto& sent : bed_.outbox) {
    if (sent.tag != tag_byte(MsgTag::kNewLeader)) continue;
    EXPECT_EQ(sent.to, 2U);
    const auto msg = NewLeaderMsg::from_bytes(sent.payload);
    EXPECT_EQ(msg.view, 2U);
    EXPECT_EQ(msg.prepared_view, 1U);
    EXPECT_EQ(msg.prepared_value, to_bytes("locked-value"));
    EXPECT_GE(msg.cert.size(), bed_.q());
    found = true;
  }
  EXPECT_TRUE(found);
}

TEST_F(ViewChangeTest, UnpreparedReplicaSendsEmptyNewLeader) {
  auto replica = bed_.make_replica(3);
  replica->start();
  bed_.outbox.clear();
  force_view(*replica, 2);
  for (const auto& sent : bed_.outbox) {
    if (sent.tag != tag_byte(MsgTag::kNewLeader)) continue;
    const auto msg = NewLeaderMsg::from_bytes(sent.payload);
    EXPECT_EQ(msg.prepared_view, 0U);
    EXPECT_TRUE(msg.prepared_value.empty());
    EXPECT_TRUE(msg.cert.empty());
  }
}

TEST_F(ViewChangeTest, LeaderReproposesPreparedValue) {
  // Replica 2 becomes leader of view 2 and receives NewLeader messages:
  // one reports "locked" prepared in view 1; it must re-propose "locked".
  auto leader = bed_.make_replica(2);
  leader->start();
  force_view(*leader, 2);
  bed_.outbox.clear();

  const Bytes locked = to_bytes("locked");
  leader->on_message(
      4, tag_byte(MsgTag::kNewLeader),
      bed_.make_new_leader(2, 4, 1, locked, bed_.make_cert(1, locked, 4, 1))
          .to_bytes());
  for (ReplicaId s = 5; s <= 9; ++s) {
    leader->on_message(s, tag_byte(MsgTag::kNewLeader),
                       bed_.make_new_leader(2, s).to_bytes());
  }
  // 6 distinct NewLeader senders reached det quorum: Propose must be out.
  bool proposed = false;
  for (const auto& sent : bed_.outbox) {
    if (sent.tag != tag_byte(MsgTag::kPropose)) continue;
    const auto msg = ProposeMsg::from_bytes(sent.payload);
    EXPECT_EQ(msg.proposal.view, 2U);
    EXPECT_EQ(msg.proposal.value, locked);
    EXPECT_GE(msg.justification.size(), 6U);
    proposed = true;
  }
  EXPECT_TRUE(proposed);
}

TEST_F(ViewChangeTest, LeaderUsesOwnValueWhenNothingPrepared) {
  auto leader = bed_.make_replica(2, to_bytes("leaders-own"));
  leader->start();
  force_view(*leader, 2);
  bed_.outbox.clear();
  for (ReplicaId s = 4; s <= 9; ++s) {
    leader->on_message(s, tag_byte(MsgTag::kNewLeader),
                       bed_.make_new_leader(2, s).to_bytes());
  }
  bool proposed = false;
  for (const auto& sent : bed_.outbox) {
    if (sent.tag != tag_byte(MsgTag::kPropose)) continue;
    const auto msg = ProposeMsg::from_bytes(sent.payload);
    EXPECT_EQ(msg.proposal.value, to_bytes("leaders-own"));
    proposed = true;
  }
  EXPECT_TRUE(proposed);
}

TEST_F(ViewChangeTest, LeaderIgnoresInsufficientNewLeaders) {
  auto leader = bed_.make_replica(2);
  leader->start();
  force_view(*leader, 2);
  bed_.outbox.clear();
  for (ReplicaId s = 4; s <= 8; ++s) {  // only 5 < det quorum 6
    leader->on_message(s, tag_byte(MsgTag::kNewLeader),
                       bed_.make_new_leader(2, s).to_bytes());
  }
  for (const auto& sent : bed_.outbox) {
    EXPECT_NE(sent.tag, tag_byte(MsgTag::kPropose));
  }
}

TEST_F(ViewChangeTest, LeaderRejectsForgedNewLeaderCert) {
  auto leader = bed_.make_replica(2);
  leader->start();
  force_view(*leader, 2);
  bed_.outbox.clear();

  // Byzantine replica 4 claims "evil" was prepared but its certificate
  // carries mismatched prepares (for a different value).
  auto bogus_cert = bed_.make_cert(1, to_bytes("other"), 4, 1);
  leader->on_message(4, tag_byte(MsgTag::kNewLeader),
                     bed_.make_new_leader(2, 4, 1, to_bytes("evil"),
                                          bogus_cert)
                         .to_bytes());
  for (ReplicaId s = 5; s <= 9; ++s) {
    leader->on_message(s, tag_byte(MsgTag::kNewLeader),
                       bed_.make_new_leader(2, s).to_bytes());
  }
  // Only 5 valid messages: no proposal yet.
  for (const auto& sent : bed_.outbox) {
    EXPECT_NE(sent.tag, tag_byte(MsgTag::kPropose));
  }
}

TEST_F(ViewChangeTest, FollowerRejectsLeaderDroppingPreparedValue) {
  // A Byzantine view-2 leader proposes its own value even though the
  // justification shows "locked" was prepared: safeProposal must fail at
  // every correct replica.
  auto replica = bed_.make_replica(5);
  replica->start();
  force_view(*replica, 2);

  const Bytes locked = to_bytes("locked");
  std::vector<NewLeaderMsg> m_set;
  m_set.push_back(
      bed_.make_new_leader(2, 4, 1, locked, bed_.make_cert(1, locked, 4, 1)));
  for (ReplicaId s = 5; s <= 9; ++s) {
    m_set.push_back(bed_.make_new_leader(2, s));
  }
  const auto bad = bed_.make_propose(2, to_bytes("evil"), 2, m_set);
  EXPECT_FALSE(replica->safe_proposal(bad));
  replica->on_message(2, tag_byte(MsgTag::kPropose), bad.to_bytes());
  EXPECT_FALSE(replica->voted());
}

TEST_F(ViewChangeTest, HigherPreparedViewWins) {
  // Value "new" prepared in view 2 dominates "old" prepared in view 1
  // regardless of counts (vmax rule).
  auto replica = bed_.make_replica(5);
  replica->start();
  force_view(*replica, 3);

  const Bytes old_val = to_bytes("old"), new_val = to_bytes("new");
  std::vector<NewLeaderMsg> m_set;
  m_set.push_back(bed_.make_new_leader(3, 4, 1, old_val,
                                       bed_.make_cert(1, old_val, 4, 1)));
  m_set.push_back(bed_.make_new_leader(3, 6, 1, old_val,
                                       bed_.make_cert(1, old_val, 6, 1)));
  m_set.push_back(bed_.make_new_leader(3, 7, 2, new_val,
                                       bed_.make_cert(2, new_val, 7, 2)));
  for (ReplicaId s : {8, 9, 1}) {
    m_set.push_back(bed_.make_new_leader(3, static_cast<ReplicaId>(s)));
  }
  EXPECT_TRUE(
      replica->safe_proposal(bed_.make_propose(3, new_val, 3, m_set)));
  EXPECT_FALSE(
      replica->safe_proposal(bed_.make_propose(3, old_val, 3, m_set)));
}

TEST_F(ViewChangeTest, StaleViewMessagesIgnoredAfterViewChange) {
  auto replica = bed_.make_replica(3);
  replica->start();
  force_view(*replica, 2);
  ASSERT_EQ(replica->current_view(), 2U);
  // A view-1 proposal arriving late must not make the replica vote.
  replica->on_message(1, tag_byte(MsgTag::kPropose),
                      bed_.make_propose(1, to_bytes("late"), 1).to_bytes());
  EXPECT_FALSE(replica->voted());
}

// Full-cluster check of the Theorem 8 scenario: decide in view 1 at some
// replicas, force a view change, verify the later view re-decides the same
// value.
TEST(ViewChangeCluster, DecidedValuePersistsAcrossViews) {
  using namespace probft::sim;
  for (std::uint64_t seed : {1ULL, 2ULL, 3ULL, 4ULL, 5ULL}) {
    ClusterConfig cfg;
    cfg.protocol = Protocol::kProbft;
    cfg.n = 12;
    cfg.f = 0;
    cfg.l = 1.5;
    cfg.seed = seed;
    // Aggressive timeouts + slow network => decisions and view changes
    // interleave; agreement must survive.
    cfg.sync.base_timeout = 12'000;
    cfg.latency.min_delay = 1'000;
    cfg.latency.max_delay_post = 9'000;
    Cluster cluster(cfg);
    cluster.start();
    cluster.run_to_completion(/*deadline=*/120'000'000);
    EXPECT_TRUE(cluster.agreement_ok()) << "seed " << seed;
  }
}

}  // namespace
}  // namespace probft::core
