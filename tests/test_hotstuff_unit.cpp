// Direct-drive unit tests for the HotStuff baseline: QC validation, the
// safeNode rule, and vote handling under adversarial input.
#include <gtest/gtest.h>

#include <memory>

#include "common/rng.hpp"
#include "hotstuff/hotstuff_replica.hpp"

namespace probft::hotstuff {
namespace {

struct Bed {
  std::unique_ptr<crypto::CryptoSuite> suite = crypto::make_sim_suite();
  std::uint32_t n = 7, f = 2;  // quorum = ceil((7+2+1)/2) = 5
  std::vector<crypto::KeyPair> keys;
  crypto::PublicKeyDir public_keys;
  std::vector<std::pair<std::uint8_t, Bytes>> outbox;  // (tag, payload)

  Bed() {
    keys.resize(n + 1);
    std::vector<Bytes> key_table(n + 1);
    for (ReplicaId id = 1; id <= n; ++id) {
      keys[id] = suite->keygen(mix64(7, id));
      key_table[id] = keys[id].public_key;
    }
    public_keys = crypto::PublicKeyDir(std::move(key_table));
  }

  std::unique_ptr<HotStuffReplica> make(ReplicaId id) {
    HotStuffConfig cfg;
    cfg.id = id;
    cfg.n = n;
    cfg.f = f;
    cfg.my_value = to_bytes("hs-value");
    cfg.suite = suite.get();
    cfg.secret_key = keys[id].secret_key;
    cfg.public_keys = public_keys;
    core::ProtocolHost hooks;
    hooks.send = [this](ReplicaId, std::uint8_t tag, const Bytes& m) {
      outbox.emplace_back(tag, m);
    };
    hooks.broadcast = [this](std::uint8_t tag, const Bytes& m) {
      outbox.emplace_back(tag, m);
    };
    hooks.set_timer = [](Duration, std::function<void()>) {};
    sync::SyncConfig sc;
    return std::make_unique<HotStuffReplica>(std::move(cfg), sc, hooks);
  }

  HsProposal make_proposal(View v, const Bytes& value, ReplicaId sender,
                           QuorumCert high_qc = {}) {
    HsProposal p;
    p.view = v;
    p.value = value;
    p.high_qc = std::move(high_qc);
    p.sender = sender;
    p.sender_sig = suite->sign(keys[sender].secret_key, p.signing_bytes());
    return p;
  }

  HsVote make_vote(HsPhase phase, View v, const Bytes& value,
                   ReplicaId sender) {
    HsVote vote;
    vote.phase = phase;
    vote.view = v;
    vote.value = value;
    vote.sender = sender;
    vote.sender_sig = suite->sign(
        keys[sender].secret_key,
        QuorumCert::vote_signing_bytes(phase, v, value));
    return vote;
  }

  QuorumCert make_qc(HsPhase phase, View v, const Bytes& value,
                     std::uint32_t signers) {
    QuorumCert qc;
    qc.phase = phase;
    qc.view = v;
    qc.value = value;
    for (ReplicaId s = 1; s <= signers; ++s) {
      qc.signers.push_back(s);
      qc.sigs.push_back(suite->sign(
          keys[s].secret_key,
          QuorumCert::vote_signing_bytes(phase, v, value)));
    }
    return qc;
  }

  HsQcMsg wrap_qc(QuorumCert qc, ReplicaId sender) {
    HsQcMsg msg;
    msg.qc = std::move(qc);
    msg.sender = sender;
    msg.sender_sig = suite->sign(keys[sender].secret_key,
                                 msg.signing_bytes());
    return msg;
  }
};

TEST(HotStuffUnit, LeaderProposesOnStartOfViewOne) {
  Bed bed;
  auto leader = bed.make(1);
  leader->start();
  bool proposed = false;
  for (const auto& [tag, payload] : bed.outbox) {
    if (tag == static_cast<std::uint8_t>(HsTag::kProposal)) proposed = true;
  }
  EXPECT_TRUE(proposed);
}

TEST(HotStuffUnit, FollowerVotesOnValidProposal) {
  Bed bed;
  auto follower = bed.make(2);
  follower->start();
  bed.outbox.clear();
  follower->on_message(1, static_cast<std::uint8_t>(HsTag::kProposal),
                       bed.make_proposal(1, to_bytes("v"), 1).to_bytes());
  bool voted = false;
  for (const auto& [tag, payload] : bed.outbox) {
    if (tag == static_cast<std::uint8_t>(HsTag::kVote)) {
      const auto vote = HsVote::from_bytes(payload);
      EXPECT_EQ(vote.phase, HsPhase::kPrepare);
      EXPECT_EQ(vote.value, to_bytes("v"));
      voted = true;
    }
  }
  EXPECT_TRUE(voted);
}

TEST(HotStuffUnit, FollowerRejectsNonLeaderProposal) {
  Bed bed;
  auto follower = bed.make(2);
  follower->start();
  bed.outbox.clear();
  follower->on_message(3, static_cast<std::uint8_t>(HsTag::kProposal),
                       bed.make_proposal(1, to_bytes("v"), 3).to_bytes());
  EXPECT_TRUE(bed.outbox.empty());
}

TEST(HotStuffUnit, QcWithTooFewSignersRejected) {
  Bed bed;
  auto follower = bed.make(2);
  follower->start();
  follower->on_message(1, static_cast<std::uint8_t>(HsTag::kProposal),
                       bed.make_proposal(1, to_bytes("v"), 1).to_bytes());
  bed.outbox.clear();
  const auto qc = bed.make_qc(HsPhase::kPrepare, 1, to_bytes("v"), 4);  // < 5
  follower->on_message(1, static_cast<std::uint8_t>(HsTag::kQc),
                       bed.wrap_qc(qc, 1).to_bytes());
  EXPECT_TRUE(bed.outbox.empty());  // no pre-commit vote
}

TEST(HotStuffUnit, QcWithDuplicateSignersRejected) {
  Bed bed;
  auto follower = bed.make(2);
  follower->start();
  follower->on_message(1, static_cast<std::uint8_t>(HsTag::kProposal),
                       bed.make_proposal(1, to_bytes("v"), 1).to_bytes());
  bed.outbox.clear();
  auto qc = bed.make_qc(HsPhase::kPrepare, 1, to_bytes("v"), 5);
  // Replace all signers with replica 1 (signatures stay valid per-entry).
  const auto sig1 = qc.sigs[0];
  for (std::size_t i = 0; i < qc.signers.size(); ++i) {
    qc.signers[i] = 1;
    qc.sigs[i] = sig1;
  }
  follower->on_message(1, static_cast<std::uint8_t>(HsTag::kQc),
                       bed.wrap_qc(qc, 1).to_bytes());
  EXPECT_TRUE(bed.outbox.empty());
}

TEST(HotStuffUnit, QcWithForgedSignatureRejected) {
  Bed bed;
  auto follower = bed.make(2);
  follower->start();
  follower->on_message(1, static_cast<std::uint8_t>(HsTag::kProposal),
                       bed.make_proposal(1, to_bytes("v"), 1).to_bytes());
  bed.outbox.clear();
  auto qc = bed.make_qc(HsPhase::kPrepare, 1, to_bytes("v"), 5);
  qc.sigs[2][0] ^= 1;
  follower->on_message(1, static_cast<std::uint8_t>(HsTag::kQc),
                       bed.wrap_qc(qc, 1).to_bytes());
  EXPECT_TRUE(bed.outbox.empty());
}

TEST(HotStuffUnit, FullPhaseCascadeDecides) {
  Bed bed;
  auto follower = bed.make(2);
  follower->start();
  const Bytes value = to_bytes("v");
  follower->on_message(1, static_cast<std::uint8_t>(HsTag::kProposal),
                       bed.make_proposal(1, value, 1).to_bytes());
  for (HsPhase phase :
       {HsPhase::kPrepare, HsPhase::kPreCommit, HsPhase::kCommit}) {
    const auto qc = bed.make_qc(phase, 1, value, 5);
    follower->on_message(1, static_cast<std::uint8_t>(HsTag::kQc),
                         bed.wrap_qc(qc, 1).to_bytes());
  }
  ASSERT_TRUE(follower->decided());
  EXPECT_EQ(follower->decided_value(), value);
  EXPECT_FALSE(follower->locked_qc().is_null());
  EXPECT_EQ(follower->locked_qc().phase, HsPhase::kPreCommit);
}

TEST(HotStuffUnit, LockedReplicaRejectsConflictingLowProposal) {
  Bed bed;
  auto follower = bed.make(2);
  follower->start();
  const Bytes value = to_bytes("locked");
  follower->on_message(1, static_cast<std::uint8_t>(HsTag::kProposal),
                       bed.make_proposal(1, value, 1).to_bytes());
  follower->on_message(
      1, static_cast<std::uint8_t>(HsTag::kQc),
      bed.wrap_qc(bed.make_qc(HsPhase::kPrepare, 1, value, 5), 1).to_bytes());
  follower->on_message(
      1, static_cast<std::uint8_t>(HsTag::kQc),
      bed.wrap_qc(bed.make_qc(HsPhase::kPreCommit, 1, value, 5), 1)
          .to_bytes());
  ASSERT_FALSE(follower->locked_qc().is_null());
  // Manually move to view 2 is not possible without wishes; instead verify
  // the safeNode logic indirectly: a view-1 proposal for another value is
  // already rejected because voted_prepare_ is set; the lock survives.
  EXPECT_EQ(follower->locked_qc().value, value);
}

TEST(HotStuffUnit, VotesForWrongValueDoNotFormQc) {
  Bed bed;
  auto leader = bed.make(1);
  leader->start();  // proposes "hs-value"
  bed.outbox.clear();
  // 5 votes for a DIFFERENT value must not produce any QC broadcast.
  for (ReplicaId s = 2; s <= 6; ++s) {
    leader->on_message(
        s, static_cast<std::uint8_t>(HsTag::kVote),
        bed.make_vote(HsPhase::kPrepare, 1, to_bytes("other"), s).to_bytes());
  }
  for (const auto& [tag, payload] : bed.outbox) {
    EXPECT_NE(tag, static_cast<std::uint8_t>(HsTag::kQc));
  }
}

TEST(HotStuffUnit, LeaderFormsQcFromMatchingVotes) {
  Bed bed;
  auto leader = bed.make(1);
  leader->start();
  bed.outbox.clear();
  for (ReplicaId s = 2; s <= 5; ++s) {  // 4 + leader's own vote = 5
    leader->on_message(
        s, static_cast<std::uint8_t>(HsTag::kVote),
        bed.make_vote(HsPhase::kPrepare, 1, to_bytes("hs-value"), s)
            .to_bytes());
  }
  bool qc_out = false;
  for (const auto& [tag, payload] : bed.outbox) {
    if (tag == static_cast<std::uint8_t>(HsTag::kQc)) {
      const auto msg = HsQcMsg::from_bytes(payload);
      EXPECT_EQ(msg.qc.phase, HsPhase::kPrepare);
      EXPECT_GE(msg.qc.signers.size(), 5U);
      qc_out = true;
    }
  }
  EXPECT_TRUE(qc_out);
}

TEST(HotStuffUnit, GarbageDropped) {
  Bed bed;
  auto follower = bed.make(2);
  follower->start();
  follower->on_message(1, static_cast<std::uint8_t>(HsTag::kProposal),
                       Bytes{1, 2});
  follower->on_message(1, static_cast<std::uint8_t>(HsTag::kQc),
                       Bytes(64, 0xaa));
  follower->on_message(1, 200, Bytes{});
  EXPECT_FALSE(follower->decided());
}

TEST(HotStuffUnit, NewViewCodecRejectsTruncationAndTrailingBytes) {
  Bed bed;
  HsNewView nv;
  nv.view = 2;
  nv.prepare_qc = bed.make_qc(HsPhase::kPrepare, 1, to_bytes("value"), 5);
  nv.sender = 3;
  nv.sender_sig = to_bytes("sig");
  const Bytes encoded = nv.to_bytes();

  const HsNewView back = HsNewView::from_bytes(
      ByteSpan(encoded.data(), encoded.size()));
  EXPECT_EQ(back.view, nv.view);
  EXPECT_EQ(back.prepare_qc.view, nv.prepare_qc.view);
  EXPECT_EQ(back.prepare_qc.signers, nv.prepare_qc.signers);
  EXPECT_EQ(back.sender, nv.sender);
  EXPECT_EQ(back.sender_sig, nv.sender_sig);

  // Hostile buffers: truncation at every byte boundary throws, and so do
  // trailing garbage bytes (from_bytes demands exact consumption).
  for (std::size_t cut = 0; cut < encoded.size(); ++cut) {
    EXPECT_THROW(HsNewView::from_bytes(ByteSpan(encoded.data(), cut)),
                 CodecError)
        << cut;
  }
  Bytes padded = encoded;
  padded.push_back(0x00);
  EXPECT_THROW(
      HsNewView::from_bytes(ByteSpan(padded.data(), padded.size())),
      CodecError);
}

TEST(HotStuffUnit, QuorumCertCodecRoundtrip) {
  Bed bed;
  const auto qc = bed.make_qc(HsPhase::kCommit, 3, to_bytes("value"), 5);
  Writer w;
  qc.encode(w);
  Reader r(ByteSpan(w.data().data(), w.data().size()));
  const auto decoded = QuorumCert::decode(r);
  EXPECT_EQ(decoded.phase, qc.phase);
  EXPECT_EQ(decoded.view, qc.view);
  EXPECT_EQ(decoded.value, qc.value);
  EXPECT_EQ(decoded.signers, qc.signers);
  EXPECT_EQ(decoded.sigs, qc.sigs);
}

}  // namespace
}  // namespace probft::hotstuff
