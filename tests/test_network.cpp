#include "net/network.hpp"

#include <gtest/gtest.h>

#include <map>
#include <vector>

namespace probft::net {
namespace {

struct Delivery {
  ReplicaId from;
  ReplicaId to;
  std::uint8_t tag;
  Bytes payload;
  TimePoint at;
};

struct Harness {
  Simulator sim;
  Network net;
  std::vector<Delivery> deliveries;

  explicit Harness(std::uint32_t n, LatencyConfig cfg = {},
                   std::uint64_t seed = 42)
      : net(sim, n, seed, cfg) {
    for (ReplicaId id = 1; id <= n; ++id) {
      net.register_handler(
          id, [this, id](ReplicaId from, std::uint8_t tag, const Bytes& m) {
            deliveries.push_back({from, id, tag, m, sim.now()});
          });
    }
  }
};

TEST(Network, DeliversPointToPoint) {
  Harness h(3);
  h.net.send(1, 2, 7, {0xab});
  h.sim.run();
  ASSERT_EQ(h.deliveries.size(), 1U);
  EXPECT_EQ(h.deliveries[0].from, 1U);
  EXPECT_EQ(h.deliveries[0].to, 2U);
  EXPECT_EQ(h.deliveries[0].tag, 7);
  EXPECT_EQ(h.deliveries[0].payload, Bytes{0xab});
}

TEST(Network, DelaysRespectPostGstBound) {
  LatencyConfig cfg;
  cfg.gst = 0;
  cfg.min_delay = 100;
  cfg.max_delay_post = 1000;
  Harness h(2, cfg);
  for (int i = 0; i < 200; ++i) h.net.send(1, 2, 0, {});
  h.sim.run();
  for (const auto& d : h.deliveries) {
    EXPECT_GE(d.at, 100U);
    EXPECT_LE(d.at, 1000U);
  }
}

TEST(Network, PreGstDelaysCanExceedDelta) {
  LatencyConfig cfg;
  cfg.gst = 1'000'000;
  cfg.min_delay = 100;
  cfg.max_delay_post = 1000;
  cfg.max_delay_pre = 500'000;
  Harness h(2, cfg);
  for (int i = 0; i < 200; ++i) h.net.send(1, 2, 0, {});
  h.sim.run();
  bool some_exceed_delta = false;
  for (const auto& d : h.deliveries) {
    if (d.at > 1000U) some_exceed_delta = true;
    EXPECT_LE(d.at, 500'000U);
  }
  EXPECT_TRUE(some_exceed_delta);
}

TEST(Network, HoldUntilGstDeliversAfterGst) {
  LatencyConfig cfg;
  cfg.gst = 1'000'000;
  cfg.min_delay = 100;
  cfg.max_delay_post = 1000;
  cfg.max_delay_pre = 5000;
  cfg.hold_until_gst_prob = 1.0;  // everything held
  Harness h(2, cfg);
  for (int i = 0; i < 50; ++i) h.net.send(1, 2, 0, {});
  h.sim.run();
  ASSERT_EQ(h.deliveries.size(), 50U);  // never lost, only delayed
  for (const auto& d : h.deliveries) {
    EXPECT_GT(d.at, cfg.gst);
  }
}

TEST(Network, BroadcastReachesEveryoneElse) {
  Harness h(5);
  h.net.broadcast(3, 1, {0x01});
  h.sim.run();
  EXPECT_EQ(h.deliveries.size(), 4U);
  for (const auto& d : h.deliveries) {
    EXPECT_NE(d.to, 3U);
    EXPECT_EQ(d.from, 3U);
  }
}

TEST(Network, BroadcastIncludeSelf) {
  Harness h(3);
  h.net.broadcast(2, 1, {0x01}, /*include_self=*/true);
  h.sim.run();
  EXPECT_EQ(h.deliveries.size(), 3U);
}

TEST(Network, MulticastHitsExactlyTheSample) {
  Harness h(6);
  h.net.multicast(1, {2, 4, 6}, 9, {0x02});
  h.sim.run();
  ASSERT_EQ(h.deliveries.size(), 3U);
  std::set<ReplicaId> tos;
  for (const auto& d : h.deliveries) tos.insert(d.to);
  EXPECT_EQ(tos, (std::set<ReplicaId>{2, 4, 6}));
}

TEST(Network, SelfSendWorks) {
  Harness h(2);
  h.net.send(1, 1, 0, {0x03});
  h.sim.run();
  ASSERT_EQ(h.deliveries.size(), 1U);
  EXPECT_EQ(h.deliveries[0].to, 1U);
}

TEST(Network, StatsCountSendsByTag) {
  Harness h(4);
  h.net.send(1, 2, 5, {1, 2, 3});
  h.net.broadcast(1, 6, {9});
  h.sim.run();
  EXPECT_EQ(h.net.stats().sends, 4U);
  EXPECT_EQ(h.net.stats().delivered, 4U);
  EXPECT_EQ(h.net.stats().sends_for(5), 1U);
  EXPECT_EQ(h.net.stats().sends_for(6), 3U);
  EXPECT_EQ(h.net.stats().sends_for(77), 0U);
  EXPECT_EQ(h.net.stats().bytes_sent, 3U + 3U);
}

TEST(Network, StatsCountPerTagBytes) {
  Harness h(4);
  h.net.send(1, 2, 5, {1, 2, 3});
  h.net.broadcast(1, 6, {9});
  h.sim.run();
  EXPECT_EQ(h.net.stats().bytes_for(5), 3U);
  EXPECT_EQ(h.net.stats().bytes_for(6), 3U);
  EXPECT_EQ(h.net.stats().bytes_for(77), 0U);
}

TEST(Network, DuplicateDeliveriesCountTheirBytes) {
  // A duplicated message crosses the wire twice, so its bytes must land in
  // bytes_sent and the per-tag byte counters both times — while `sends`
  // keeps counting logical protocol sends. Pinned: bytes_sent must always
  // equal the sum over bytes_by_tag.
  LatencyConfig cfg;
  cfg.duplicate_prob = 1.0;
  Harness h(2, cfg);
  for (int i = 0; i < 10; ++i) h.net.send(1, 2, 4, {1, 2, 3, 4, 5});
  h.sim.run();
  const auto& stats = h.net.stats();
  EXPECT_EQ(stats.sends, 10U);
  EXPECT_EQ(stats.sends_for(4), 10U);
  EXPECT_EQ(stats.duplicates, 10U);
  EXPECT_EQ(stats.delivered, 20U);
  EXPECT_EQ(stats.bytes_sent, 2U * 10U * 5U);
  EXPECT_EQ(stats.bytes_for(4), 2U * 10U * 5U);

  std::uint64_t tag_total = 0;
  for (const auto& [tag, bytes] : stats.bytes_by_tag) tag_total += bytes;
  EXPECT_EQ(stats.bytes_sent, tag_total);
}

TEST(Network, DroppedMessagesDoNotDuplicate) {
  // The filter fires before the duplicate draw: a dropped message must not
  // add duplicate transmissions or their bytes.
  LatencyConfig cfg;
  cfg.duplicate_prob = 1.0;
  Harness h(2, cfg);
  h.net.set_filter(
      [](ReplicaId, ReplicaId, std::uint8_t) { return true; });
  h.net.send(1, 2, 4, {1, 2, 3});
  h.sim.run();
  EXPECT_EQ(h.net.stats().dropped, 1U);
  EXPECT_EQ(h.net.stats().duplicates, 0U);
  // The logical send is still accounted (it was attempted)...
  EXPECT_EQ(h.net.stats().sends, 1U);
  EXPECT_EQ(h.net.stats().bytes_sent, 3U);
  // ...but nothing was delivered.
  EXPECT_TRUE(h.deliveries.empty());
}

TEST(Network, ResetStatsClears) {
  Harness h(2);
  h.net.send(1, 2, 0, {});
  h.net.reset_stats();
  EXPECT_EQ(h.net.stats().sends, 0U);
}

TEST(Network, FilterDropsMatchingMessages) {
  Harness h(3);
  h.net.set_filter([](ReplicaId from, ReplicaId, std::uint8_t) {
    return from == 1;  // partition replica 1's outbound links
  });
  h.net.send(1, 2, 0, {});
  h.net.send(2, 3, 0, {});
  h.sim.run();
  ASSERT_EQ(h.deliveries.size(), 1U);
  EXPECT_EQ(h.deliveries[0].from, 2U);
  EXPECT_EQ(h.net.stats().dropped, 1U);
}

TEST(Network, ClearFilterRestoresDelivery) {
  Harness h(2);
  h.net.set_filter([](ReplicaId, ReplicaId, std::uint8_t) { return true; });
  h.net.send(1, 2, 0, {});
  h.net.clear_filter();
  h.net.send(1, 2, 0, {});
  h.sim.run();
  EXPECT_EQ(h.deliveries.size(), 1U);
}

TEST(Network, DeterministicAcrossRuns) {
  auto run_once = [](std::uint64_t seed) {
    LatencyConfig cfg;
    cfg.max_delay_post = 10'000;
    Harness h(4, cfg, seed);
    for (int i = 0; i < 20; ++i) h.net.broadcast(1, 0, {});
    h.sim.run();
    std::vector<TimePoint> times;
    for (const auto& d : h.deliveries) times.push_back(d.at);
    return times;
  };
  EXPECT_EQ(run_once(7), run_once(7));
  EXPECT_NE(run_once(7), run_once(8));
}

TEST(Network, RejectsBadRecipient) {
  Harness h(2);
  EXPECT_THROW(h.net.send(1, 0, 0, {}), std::out_of_range);
  EXPECT_THROW(h.net.send(1, 3, 0, {}), std::out_of_range);
}

}  // namespace
}  // namespace probft::net
