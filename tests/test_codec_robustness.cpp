// Adversarial decoding robustness and quorum-math edge cases.
//
// Byzantine senders control every byte of the payloads they ship, so each
// protocol message decoder must reject truncated or corrupted buffers with
// CodecError — never crash, hang, or silently accept garbage. We exercise
// every prefix of every message kind plus systematic single-byte
// corruption, and pin the q = ⌈l·√n⌉ quorum math at its boundary points.
#include <gtest/gtest.h>

#include <cstddef>

#include "core/messages.hpp"
#include "quorum/analysis.hpp"

namespace probft {
namespace {

using core::NewLeaderMsg;
using core::PhaseMsg;
using core::ProposeMsg;
using core::SignedProposal;
using core::WishMsg;

SignedProposal sample_proposal() {
  SignedProposal p;
  p.view = 3;
  p.value = to_bytes("proposal-value");
  p.leader_sig = to_bytes("leader-signature-bytes");
  return p;
}

PhaseMsg sample_phase() {
  PhaseMsg m;
  m.proposal = sample_proposal();
  m.sample = {1, 4, 7, 9};
  m.vrf_proof = to_bytes("vrf-proof-bytes");
  m.sender = 4;
  m.sender_sig = to_bytes("sender-signature");
  return m;
}

NewLeaderMsg sample_new_leader() {
  NewLeaderMsg m;
  m.view = 5;
  m.prepared_view = 3;
  m.prepared_value = to_bytes("prepared-value");
  m.cert = {std::make_shared<PhaseMsg>(sample_phase()),
            std::make_shared<PhaseMsg>(sample_phase())};
  m.sender = 2;
  m.sender_sig = to_bytes("nl-signature");
  return m;
}

ProposeMsg sample_propose() {
  ProposeMsg m;
  m.proposal = sample_proposal();
  m.justification = {sample_new_leader()};
  m.sender = 1;
  m.sender_sig = to_bytes("propose-signature");
  return m;
}

WishMsg sample_wish() {
  WishMsg m;
  m.view = 9;
  m.sender = 6;
  m.sender_sig = to_bytes("wish-signature");
  return m;
}

/// Every strict prefix of a valid encoding must be rejected with
/// CodecError (and must not crash).
template <typename Msg>
void expect_rejects_all_truncations(const Msg& msg) {
  const Bytes encoded = msg.to_bytes();
  ASSERT_FALSE(encoded.empty());
  for (std::size_t len = 0; len < encoded.size(); ++len) {
    EXPECT_THROW((void)Msg::from_bytes(ByteSpan(encoded.data(), len)),
                 CodecError)
        << "prefix length " << len << " of " << encoded.size();
  }
  EXPECT_NO_THROW(
      (void)Msg::from_bytes(ByteSpan(encoded.data(), encoded.size())));
}

/// Flipping any single byte must never crash the decoder: it either throws
/// CodecError or yields some (garbage) message the signature check will
/// reject later.
template <typename Msg>
void expect_corruption_never_crashes(const Msg& msg) {
  const Bytes encoded = msg.to_bytes();
  for (std::size_t i = 0; i < encoded.size(); ++i) {
    Bytes corrupted = encoded;
    corrupted[i] ^= 0xff;
    try {
      (void)Msg::from_bytes(ByteSpan(corrupted.data(), corrupted.size()));
    } catch (const CodecError&) {
      // rejection is the expected outcome for most positions
    }
  }
}

TEST(CodecRobustness, PhaseMsgTruncation) {
  expect_rejects_all_truncations(sample_phase());
}

TEST(CodecRobustness, NewLeaderMsgTruncation) {
  expect_rejects_all_truncations(sample_new_leader());
}

TEST(CodecRobustness, ProposeMsgTruncation) {
  expect_rejects_all_truncations(sample_propose());
}

TEST(CodecRobustness, WishMsgTruncation) {
  expect_rejects_all_truncations(sample_wish());
}

TEST(CodecRobustness, SingleByteCorruptionNeverCrashes) {
  expect_corruption_never_crashes(sample_phase());
  expect_corruption_never_crashes(sample_new_leader());
  expect_corruption_never_crashes(sample_propose());
  expect_corruption_never_crashes(sample_wish());
}

TEST(CodecRobustness, TrailingGarbageRejected) {
  Bytes encoded = sample_wish().to_bytes();
  encoded.push_back(0x5a);
  EXPECT_THROW(
      (void)WishMsg::from_bytes(ByteSpan(encoded.data(), encoded.size())),
      CodecError);
}

TEST(CodecRobustness, RoundTripPreservesFields) {
  const PhaseMsg original = sample_phase();
  const Bytes encoded = original.to_bytes();
  const PhaseMsg decoded =
      PhaseMsg::from_bytes(ByteSpan(encoded.data(), encoded.size()));
  EXPECT_EQ(decoded.proposal, original.proposal);
  EXPECT_EQ(decoded.sample, original.sample);
  EXPECT_EQ(decoded.vrf_proof, original.vrf_proof);
  EXPECT_EQ(decoded.sender, original.sender);
  EXPECT_EQ(decoded.sender_sig, original.sender_sig);
}

// ---- q = ⌈l·√n⌉ edge cases ----

TEST(QuorumMathEdge, SingleReplica) {
  quorum::Params p;
  p.n = 1;
  p.f = 0;
  p.l = 1.0;
  p.o = 1.7;
  EXPECT_EQ(p.q(), 1);           // ceil(1·√1)
  EXPECT_EQ(p.s(), 1);           // capped at n
  EXPECT_EQ(p.det_quorum(), 1);  // ceil((1+0+1)/2)
  EXPECT_TRUE(p.valid());
}

TEST(QuorumMathEdge, SmallestPaperCluster) {
  // n = 4, l = 2 → q = ceil(2·2) = 4 = n: the probabilistic quorum
  // degenerates to "hear from everyone".
  quorum::Params p;
  p.n = 4;
  p.f = 1;
  p.l = 2.0;
  p.o = 1.7;
  EXPECT_EQ(p.q(), 4);
  EXPECT_EQ(p.s(), 4);  // ceil(1.7·4) = 7, capped at n = 4
  EXPECT_TRUE(p.valid());
  // One more replica of quorum factor and q would exceed n.
  p.l = 2.1;
  EXPECT_EQ(p.q(), 5);
  EXPECT_FALSE(p.valid());
}

TEST(QuorumMathEdge, LargeNSublinearQuorum) {
  quorum::Params p;
  p.n = 1'000'000;
  p.f = 333'332;
  p.l = 2.0;
  p.o = 1.7;
  EXPECT_EQ(p.q(), 2'000);   // 2·√(10^6), far below n
  EXPECT_EQ(p.s(), 3'400);   // 1.7·q, uncapped
  EXPECT_EQ(p.det_quorum(), 666'667);
  EXPECT_TRUE(p.valid());
  // q/n → 0: the paper's core scalability claim.
  EXPECT_LT(static_cast<double>(p.q()) / static_cast<double>(p.n), 0.01);
}

TEST(QuorumMathEdge, CeilingIsExactAtPerfectSquares) {
  // √n integral: no ceiling slack; one replica more and q steps up.
  quorum::Params p;
  p.n = 10'000;
  p.f = 0;
  p.l = 1.5;
  p.o = 1.7;
  EXPECT_EQ(p.q(), 150);  // 1.5·100 exactly
  p.n = 10'001;
  EXPECT_EQ(p.q(), 151);  // ceil kicks in
}

}  // namespace
}  // namespace probft
