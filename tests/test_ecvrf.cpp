#include "crypto/ecvrf.hpp"

#include <gtest/gtest.h>

#include "common/bytes.hpp"
#include "crypto/ed25519.hpp"

namespace probft::crypto::ecvrf {
namespace {

Bytes seed_a() { return from_hex(
    "9d61b19deffd5a60ba844af492ec2cc44449c5697b326919703bac031cae7f60"); }
Bytes seed_b() { return from_hex(
    "4ccd089b28ff96da9db6c346ec114e0f5b8a319f35aba624da8cf6ed4fb8a6fb"); }

TEST(Ecvrf, ProveVerifyRoundtrip) {
  const auto seed = seed_a();
  const auto pk = ed25519::derive_public(seed);
  const Bytes alpha = to_bytes("view-7|prepare");
  const auto proof = prove(seed, alpha);
  EXPECT_EQ(proof.proof.size(), kProofSize);
  EXPECT_EQ(proof.output.size(), kOutputSize);
  const auto verified = verify(pk, alpha, proof.proof);
  ASSERT_TRUE(verified.has_value());
  EXPECT_EQ(*verified, proof.output);
}

TEST(Ecvrf, OutputIsDeterministic) {
  const auto seed = seed_a();
  const Bytes alpha = to_bytes("alpha");
  EXPECT_EQ(prove(seed, alpha).output, prove(seed, alpha).output);
  EXPECT_EQ(prove(seed, alpha).proof, prove(seed, alpha).proof);
}

TEST(Ecvrf, DistinctAlphasDistinctOutputs) {
  const auto seed = seed_a();
  EXPECT_NE(prove(seed, to_bytes("1|prepare")).output,
            prove(seed, to_bytes("1|commit")).output);
}

TEST(Ecvrf, DistinctKeysDistinctOutputs) {
  const Bytes alpha = to_bytes("1|prepare");
  EXPECT_NE(prove(seed_a(), alpha).output, prove(seed_b(), alpha).output);
}

TEST(Ecvrf, VerifyRejectsWrongKey) {
  const Bytes alpha = to_bytes("x");
  const auto proof = prove(seed_a(), alpha);
  const auto other_pk = ed25519::derive_public(seed_b());
  EXPECT_FALSE(verify(other_pk, alpha, proof.proof).has_value());
}

TEST(Ecvrf, VerifyRejectsWrongAlpha) {
  const auto seed = seed_a();
  const auto pk = ed25519::derive_public(seed);
  const auto proof = prove(seed, to_bytes("alpha-1"));
  EXPECT_FALSE(verify(pk, to_bytes("alpha-2"), proof.proof).has_value());
}

TEST(Ecvrf, VerifyRejectsTamperedProof) {
  const auto seed = seed_a();
  const auto pk = ed25519::derive_public(seed);
  const Bytes alpha = to_bytes("alpha");
  const auto proof = prove(seed, alpha);
  for (std::size_t i : {0UL, 32UL, 47UL, 48UL, 79UL}) {
    Bytes bad = proof.proof;
    bad[i] ^= 0x20;
    EXPECT_FALSE(verify(pk, alpha, bad).has_value()) << "byte " << i;
  }
}

TEST(Ecvrf, VerifyRejectsBadSizes) {
  const auto pk = ed25519::derive_public(seed_a());
  EXPECT_FALSE(verify(pk, to_bytes("a"), Bytes(79, 0)).has_value());
  EXPECT_FALSE(verify(pk, to_bytes("a"), Bytes{}).has_value());
  EXPECT_FALSE(verify(Bytes(31, 0), to_bytes("a"), Bytes(80, 0)).has_value());
}

TEST(Ecvrf, ProofToOutputMatchesProve) {
  const auto proof = prove(seed_a(), to_bytes("alpha"));
  EXPECT_EQ(proof_to_output(proof.proof), proof.output);
}

TEST(Ecvrf, UniquenessSameInputsSameProof) {
  // VRF uniqueness: the prover cannot produce two different verifying
  // outputs for one (key, alpha). Deterministic prove covers the honest
  // path; here we additionally check a mauled proof never verifies to a
  // *different* output.
  const auto seed = seed_a();
  const auto pk = ed25519::derive_public(seed);
  const Bytes alpha = to_bytes("unique");
  const auto honest = prove(seed, alpha);
  int verified_differently = 0;
  for (int i = 0; i < 80; ++i) {
    Bytes mauled = honest.proof;
    mauled[static_cast<std::size_t>(i)] ^= 1;
    const auto out = verify(pk, alpha, mauled);
    if (out.has_value() && *out != honest.output) ++verified_differently;
  }
  EXPECT_EQ(verified_differently, 0);
}

TEST(Ecvrf, EmptyAlphaSupported) {
  const auto seed = seed_b();
  const auto pk = ed25519::derive_public(seed);
  const auto proof = prove(seed, Bytes{});
  EXPECT_TRUE(verify(pk, Bytes{}, proof.proof).has_value());
}

}  // namespace
}  // namespace probft::crypto::ecvrf
