// Sampling-level Monte-Carlo vs closed-form analysis cross-checks.
#include <gtest/gtest.h>

#include "sim/montecarlo.hpp"

namespace probft::sim {
namespace {

quorum::Params paper_point(std::int64_t n, double f_ratio, double o) {
  quorum::Params p;
  p.n = n;
  p.f = static_cast<std::int64_t>(n * f_ratio);
  p.o = o;
  p.l = 2.0;
  return p;
}

TEST(MonteCarlo, TerminationMatchesExactFormula) {
  // The MC prepare-quorum rate must track the exact binomial tail within
  // Monte-Carlo noise (sampling without replacement vs binomial is a small
  // correction at these sizes).
  const auto p = paper_point(100, 0.2, 1.7);
  const auto stats = mc_termination(p, 4000, 42);
  const double exact = quorum::quorum_formation_exact(p);
  EXPECT_NEAR(stats.prepare_quorum_rate, exact, 0.03);
}

TEST(MonteCarlo, TerminationPerReplicaTracksAnalysis) {
  const auto p = paper_point(100, 0.2, 1.7);
  const auto stats = mc_termination(p, 4000, 42);
  const double analytic = quorum::replica_termination_exact(p);
  EXPECT_NEAR(stats.per_replica_rate, analytic, 0.05);
}

TEST(MonteCarlo, TerminationImprovesWithO) {
  const auto lo = mc_termination(paper_point(100, 0.2, 1.6), 2000, 1);
  const auto hi = mc_termination(paper_point(100, 0.2, 1.8), 2000, 1);
  EXPECT_GT(hi.per_replica_rate, lo.per_replica_rate);
}

TEST(MonteCarlo, TerminationImprovesWithN) {
  const auto small = mc_termination(paper_point(100, 0.2, 1.7), 2000, 2);
  const auto large = mc_termination(paper_point(256, 0.2, 1.7), 1000, 2);
  EXPECT_GT(large.per_replica_rate, small.per_replica_rate);
}

TEST(MonteCarlo, TerminationDegradesWithF) {
  const auto lo = mc_termination(paper_point(100, 0.1, 1.7), 2000, 3);
  const auto hi = mc_termination(paper_point(100, 0.3, 1.7), 2000, 3);
  EXPECT_GT(lo.per_replica_rate, hi.per_replica_rate);
}

TEST(MonteCarlo, TerminationDeterministicPerSeed) {
  const auto p = paper_point(64, 0.2, 1.7);
  const auto a = mc_termination(p, 500, 9);
  const auto b = mc_termination(p, 500, 9);
  EXPECT_EQ(a.per_replica_rate, b.per_replica_rate);
  EXPECT_EQ(a.all_rate, b.all_rate);
}

TEST(MonteCarlo, AllRateBelowPerReplicaRate) {
  const auto stats = mc_termination(paper_point(100, 0.2, 1.6), 2000, 5);
  EXPECT_LE(stats.all_rate, stats.per_replica_rate + 1e-12);
}

TEST(MonteCarlo, AgreementViolationsAreRareAtPaperScale) {
  // Fig. 5 left panels: at n = 100, f/n = 0.2 the real (blocking-aware)
  // violation probability is far below MC resolution — expect zero
  // violations in 2000 trials.
  const auto stats =
      mc_agreement_optimal_split(paper_point(100, 0.2, 1.7), 2000, 7);
  EXPECT_EQ(stats.violation_rate, 0.0);
}

TEST(MonteCarlo, BlockingRuleIsTheDefense) {
  // Without the blocking rule (pure quorum counting, the model of the
  // paper's Lemma 5), the optimal split DOES form opposite quorums often —
  // the protocol's safety at these parameters rests on equivocation
  // detection, not on quorums failing to form.
  const auto stats =
      mc_agreement_optimal_split(paper_point(100, 0.2, 1.7), 1000, 7);
  EXPECT_GT(stats.violation_rate_quorum_only, 0.1);
  EXPECT_EQ(stats.violation_rate, 0.0);
}

TEST(MonteCarlo, SplitAttackMostlyBlocksReplicas) {
  // Cross-partition samples make most correct replicas observe both
  // values: the equivocation is detected almost surely.
  const auto stats =
      mc_agreement_optimal_split(paper_point(100, 0.2, 1.7), 500, 11);
  EXPECT_GT(stats.blocked_rate, 0.95);
}

TEST(MonteCarlo, SplitAttackRarelyYieldsSurvivingDecisions) {
  // Blocking-aware: almost every correct replica sees the conflicting value
  // before completing a commit quorum, so surviving decisions are rare.
  const auto attack =
      mc_agreement_optimal_split(paper_point(100, 0.2, 1.7), 1000, 13);
  EXPECT_LT(attack.any_decision_rate, 0.05);
  // The quorum-only counting is much larger (see BlockingRuleIsTheDefense).
  EXPECT_GT(attack.any_decision_rate_quorum_only,
            attack.any_decision_rate);
}

TEST(MonteCarlo, AgreementDeterministicPerSeed) {
  const auto p = paper_point(64, 0.2, 1.7);
  const auto a = mc_agreement_optimal_split(p, 300, 9);
  const auto b = mc_agreement_optimal_split(p, 300, 9);
  EXPECT_EQ(a.violation_rate, b.violation_rate);
  EXPECT_EQ(a.blocked_rate, b.blocked_rate);
}

TEST(MonteCarlo, SmallQuorumFactorAdmitsSplitDecisions) {
  // Sanity: with an absurdly small quorum (l = 0.5 -> q = 4 at n = 64) and
  // a large sample factor, the attack DOES produce decisions — the defense
  // comes from quorum sizing, not from test construction.
  quorum::Params p;
  p.n = 64;
  p.f = 20;
  p.o = 3.0;
  p.l = 0.5;
  const auto stats = mc_agreement_optimal_split(p, 500, 17);
  EXPECT_GT(stats.any_decision_rate_quorum_only, 0.5);
}


TEST(MonteCarlo, QuorumWithRSendersTracksLemma6Exact) {
  const auto p = paper_point(100, 0.2, 1.7);
  // r = (n+f)/2 = 60 senders: the Theorem 8 scenario.
  const double mc = mc_quorum_with_r_senders(p, 60, 4000, 21);
  const double exact = quorum::decide_with_r_prepared_exact(p, 60);
  EXPECT_NEAR(mc, exact, 0.04);
}

TEST(MonteCarlo, QuorumWithRSendersMonotoneInR) {
  const auto p = paper_point(100, 0.2, 1.7);
  const double lo = mc_quorum_with_r_senders(p, 40, 2000, 22);
  const double hi = mc_quorum_with_r_senders(p, 80, 2000, 22);
  EXPECT_LT(lo, hi);
}

TEST(MonteCarlo, QuorumWithFewSendersNearZero) {
  const auto p = paper_point(100, 0.2, 1.7);
  EXPECT_LT(mc_quorum_with_r_senders(p, p.q(), 1000, 23), 0.01);
}

}  // namespace
}  // namespace probft::sim
