// ProBFT under active Byzantine attacks (paper §4.3, Figure 4).
#include <gtest/gtest.h>

#include "protocol_test_util.hpp"
#include "sim/cluster.hpp"

namespace probft::sim {
namespace {

using testutil::TestBed;

ClusterConfig attack_config(std::uint32_t n, std::uint32_t f,
                            SplitStrategy split, std::uint64_t seed) {
  ClusterConfig cfg;
  cfg.protocol = Protocol::kProbft;
  cfg.n = n;
  cfg.f = f;
  cfg.seed = seed;
  cfg.l = 1.5;
  cfg.split = split;
  cfg.sync.base_timeout = 100'000;
  cfg.latency.min_delay = 500;
  cfg.latency.max_delay_post = 5'000;
  cfg.behaviors.assign(n, Behavior::kHonest);
  cfg.behaviors[0] = Behavior::kEquivocateLeader;  // replica 1 leads view 1
  for (std::uint32_t i = 1; i < f; ++i) {
    cfg.behaviors[i] = Behavior::kColludeFollower;
  }
  return cfg;
}

TEST(ProbftByzantine, OptimalSplitNeverViolatesAgreement) {
  // Fig. 4c attack across many seeds: correct replicas must never decide
  // two different values.
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    auto cfg = attack_config(13, 4, SplitStrategy::kOptimal, seed);
    Cluster cluster(cfg);
    cluster.start();
    cluster.run_to_completion(/*deadline=*/60'000'000);
    EXPECT_TRUE(cluster.agreement_ok()) << "seed " << seed;
  }
}

TEST(ProbftByzantine, HalvesSplitNeverViolatesAgreement) {
  for (std::uint64_t seed = 1; seed <= 15; ++seed) {
    auto cfg = attack_config(13, 4, SplitStrategy::kHalves, seed);
    Cluster cluster(cfg);
    cluster.start();
    cluster.run_to_completion(/*deadline=*/60'000'000);
    EXPECT_TRUE(cluster.agreement_ok()) << "seed " << seed;
  }
}

TEST(ProbftByzantine, GeneralSplitNeverViolatesAgreement) {
  for (std::uint64_t seed = 1; seed <= 15; ++seed) {
    auto cfg = attack_config(13, 4, SplitStrategy::kGeneralThreeWay, seed);
    Cluster cluster(cfg);
    cluster.start();
    cluster.run_to_completion(/*deadline=*/60'000'000);
    EXPECT_TRUE(cluster.agreement_ok()) << "seed " << seed;
  }
}

TEST(ProbftByzantine, EquivocationEventuallyDetectedAndResolved) {
  // The attack may stall view 1, but a later correct leader must finish the
  // consensus: liveness despite the equivocating leader.
  auto cfg = attack_config(13, 4, SplitStrategy::kOptimal, 7);
  Cluster cluster(cfg);
  cluster.start();
  EXPECT_TRUE(cluster.run_to_completion(/*deadline=*/120'000'000));
  EXPECT_TRUE(cluster.agreement_ok());
}

TEST(ProbftByzantine, SomeReplicaBlocksViewOnEquivocation) {
  // With cross-partition samples, at least one correct replica should see
  // both leader-signed values while still in view 1 and block.
  auto cfg = attack_config(13, 1, SplitStrategy::kHalves, 3);
  Cluster cluster(cfg);
  cluster.start();
  // Run only a short window so view 1 is still active on most replicas.
  cluster.simulator().run_until(50'000);
  int blocked = 0;
  for (ReplicaId id = 2; id <= 13; ++id) {
    const auto* replica = cluster.probft(id);
    if (replica != nullptr && replica->current_view() == 1 &&
        replica->view_blocked()) {
      ++blocked;
    }
  }
  EXPECT_GT(blocked, 0);
}

TEST(ProbftByzantine, FloodingCannotForgeQuorums) {
  // A flooder claims a fabricated all-replicas sample: correct replicas
  // must reject every flooded message (VRF proof mismatch), so nobody
  // decides the flooded value.
  ClusterConfig cfg;
  cfg.protocol = Protocol::kProbft;
  cfg.n = 7;
  cfg.f = 1;
  cfg.seed = 5;
  cfg.behaviors.assign(7, Behavior::kHonest);
  cfg.behaviors[3] = Behavior::kFlood;  // replica 4 floods; leader 1 honest
  Cluster cluster(cfg);
  cluster.start();
  cluster.run_to_completion(/*deadline=*/60'000'000);
  for (const auto& value : cluster.decided_values()) {
    EXPECT_NE(value, to_bytes("flood-value"));
  }
}

// ---- Direct replica-level adversarial message tests ----

class ByzantineUnitTest : public ::testing::Test {
 protected:
  // s == n so certificate construction is deterministic.
  ByzantineUnitTest() : bed_(9, 2, 1.7, 3.0) {
    replica_ = bed_.make_replica(2);
    replica_->start();
  }

  TestBed bed_;
  std::unique_ptr<core::Replica> replica_;
};

TEST_F(ByzantineUnitTest, EquivocationBlocksView) {
  using core::MsgTag;
  const Bytes a = to_bytes("value-A");
  const Bytes b = to_bytes("value-B");
  replica_->on_message(1, core::tag_byte(MsgTag::kPropose),
                       bed_.make_propose(1, a, 1).to_bytes());
  EXPECT_TRUE(replica_->voted());
  EXPECT_FALSE(replica_->view_blocked());
  replica_->on_message(1, core::tag_byte(MsgTag::kPropose),
                       bed_.make_propose(1, b, 1).to_bytes());
  EXPECT_TRUE(replica_->view_blocked());
  EXPECT_FALSE(replica_->decided());
}

TEST_F(ByzantineUnitTest, EquivocationViaPrepareAlsoBlocks) {
  using core::MsgTag;
  const Bytes a = to_bytes("value-A");
  const Bytes b = to_bytes("value-B");
  replica_->on_message(1, core::tag_byte(MsgTag::kPropose),
                       bed_.make_propose(1, a, 1).to_bytes());
  // A Prepare from replica 5 carrying the leader-signed OTHER value.
  replica_->on_message(
      5, core::tag_byte(MsgTag::kPrepare),
      bed_.make_phase(MsgTag::kPrepare, 1, b, 5, 1).to_bytes());
  EXPECT_TRUE(replica_->view_blocked());
}

TEST_F(ByzantineUnitTest, EquivocationGossipsBothTuples) {
  using core::MsgTag;
  bed_.outbox.clear();
  replica_->on_message(1, core::tag_byte(MsgTag::kPropose),
                       bed_.make_propose(1, to_bytes("A"), 1).to_bytes());
  const auto before = bed_.outbox.size();
  replica_->on_message(1, core::tag_byte(MsgTag::kPropose),
                       bed_.make_propose(1, to_bytes("B"), 1).to_bytes());
  // Blocking broadcasts the offending message plus our own proposal.
  ASSERT_GE(bed_.outbox.size(), before + 2);
  EXPECT_EQ(bed_.outbox[before].to, 0U);      // broadcast
  EXPECT_EQ(bed_.outbox[before + 1].to, 0U);  // broadcast
}

TEST_F(ByzantineUnitTest, BlockedViewIgnoresFurtherMessages) {
  using core::MsgTag;
  const Bytes a = to_bytes("value-A");
  replica_->on_message(1, core::tag_byte(MsgTag::kPropose),
                       bed_.make_propose(1, a, 1).to_bytes());
  replica_->on_message(1, core::tag_byte(MsgTag::kPropose),
                       bed_.make_propose(1, to_bytes("value-B"), 1).to_bytes());
  ASSERT_TRUE(replica_->view_blocked());
  // Deliver a full set of prepares and commits for A: must NOT decide.
  for (ReplicaId s = 1; s <= 9; ++s) {
    replica_->on_message(
        s, core::tag_byte(MsgTag::kPrepare),
        bed_.make_phase(MsgTag::kPrepare, 1, a, s, 1).to_bytes());
    replica_->on_message(
        s, core::tag_byte(MsgTag::kCommit),
        bed_.make_phase(MsgTag::kCommit, 1, a, s, 1).to_bytes());
  }
  EXPECT_FALSE(replica_->decided());
}

TEST_F(ByzantineUnitTest, FramingWithInvalidLeaderSigDoesNotBlock) {
  using core::MsgTag;
  const Bytes a = to_bytes("value-A");
  replica_->on_message(1, core::tag_byte(MsgTag::kPropose),
                       bed_.make_propose(1, a, 1).to_bytes());
  // Byzantine replica 5 fabricates a conflicting tuple with a bogus
  // "leader" signature (its own): must not fool the equivocation check.
  auto fake = bed_.make_phase(MsgTag::kPrepare, 1, to_bytes("value-B"), 5,
                              /*leader=*/5);
  replica_->on_message(5, core::tag_byte(MsgTag::kPrepare), fake.to_bytes());
  EXPECT_FALSE(replica_->view_blocked());
}

TEST_F(ByzantineUnitTest, GarbageMessagesAreDropped) {
  replica_->on_message(3, 2, Bytes{0x01, 0x02});
  replica_->on_message(3, 99, Bytes{});
  replica_->on_message(3, 1, Bytes(1000, 0xff));
  EXPECT_FALSE(replica_->view_blocked());
  EXPECT_EQ(replica_->current_view(), 1U);
}

TEST_F(ByzantineUnitTest, PrepareFromNonSampleMemberRejected) {
  using core::MsgTag;
  const Bytes a = to_bytes("value-A");
  replica_->on_message(1, core::tag_byte(MsgTag::kPropose),
                       bed_.make_propose(1, a, 1).to_bytes());
  // Craft a prepare whose claimed sample excludes replica 2 (us).
  auto m = bed_.make_phase(MsgTag::kPrepare, 1, a, 5, 1);
  auto& sample = m.sample;
  sample.erase(std::remove(sample.begin(), sample.end(), 2), sample.end());
  m.sender_sig = bed_.suite().sign(bed_.secret(5),
                                   m.signing_bytes(MsgTag::kPrepare));
  replica_->on_message(5, core::tag_byte(MsgTag::kPrepare), m.to_bytes());
  // Not counted: we cannot know internal counts directly, but a quorum of
  // 9 such messages must NOT make the replica prepare/commit.
  EXPECT_FALSE(replica_->decided());
}

TEST_F(ByzantineUnitTest, DuplicateJustificationSendersRejected) {
  // A Byzantine view-2 leader duplicates one NewLeaderMsg to inflate its
  // value's mode count: sender 4 prepared "evil" (repeated 3×) vs honest
  // senders 5 and 6 who prepared "locked". Per-message counting used to
  // make "evil" the mode (3 > 2) while the distinct-sender check still
  // passed (6 distinct); the fix rejects any justification with duplicate
  // senders outright.
  using core::MsgTag;
  auto replica = bed_.make_replica(5);
  replica->start();
  const Bytes evil = to_bytes("evil");
  const Bytes locked = to_bytes("locked");

  const auto nl_evil =
      bed_.make_new_leader(2, 4, 1, evil, bed_.make_cert(1, evil, 4, 1));
  std::vector<core::NewLeaderMsg> dup_set = {nl_evil, nl_evil, nl_evil};
  dup_set.push_back(
      bed_.make_new_leader(2, 5, 1, locked, bed_.make_cert(1, locked, 5, 1)));
  dup_set.push_back(
      bed_.make_new_leader(2, 6, 1, locked, bed_.make_cert(1, locked, 6, 1)));
  for (ReplicaId s = 7; s <= 9; ++s) {
    dup_set.push_back(bed_.make_new_leader(2, s));
  }
  // 8 messages, 6 distinct senders: duplicates must poison the whole
  // justification, for the skewed value AND for any other value.
  EXPECT_FALSE(replica->safe_proposal(bed_.make_propose(2, evil, 2, dup_set)));
  EXPECT_FALSE(
      replica->safe_proposal(bed_.make_propose(2, locked, 2, dup_set)));

  // The same reports without duplicates: the honest mode ("locked") is the
  // only safe proposal.
  std::vector<core::NewLeaderMsg> clean_set = {dup_set[0], dup_set[3],
                                               dup_set[4]};
  for (ReplicaId s = 7; s <= 9; ++s) {
    clean_set.push_back(bed_.make_new_leader(2, s));
  }
  EXPECT_TRUE(
      replica->safe_proposal(bed_.make_propose(2, locked, 2, clean_set)));
  EXPECT_FALSE(
      replica->safe_proposal(bed_.make_propose(2, evil, 2, clean_set)));
}

TEST_F(ByzantineUnitTest, LeaderCountsDistinctNewLeaderSendersOnly) {
  // Leader side of the same bug: re-sent NewLeader messages must not count
  // toward the deterministic quorum.
  using core::MsgTag;
  auto leader = bed_.make_replica(2);
  leader->start();
  for (ReplicaId s = 1; s <= 9; ++s) {
    if (s == 2) continue;
    core::WishMsg wish;
    wish.view = 2;
    wish.sender = s;
    wish.sender_sig = bed_.suite().sign(bed_.secret(s), wish.signing_bytes());
    leader->on_message(s, core::tag_byte(MsgTag::kWish), wish.to_bytes());
  }
  ASSERT_EQ(leader->current_view(), 2U);
  bed_.outbox.clear();
  // Three senders, one of them spamming: 3 distinct < det quorum 6.
  const auto spam = bed_.make_new_leader(2, 4);
  for (int i = 0; i < 5; ++i) {
    leader->on_message(4, core::tag_byte(MsgTag::kNewLeader),
                       spam.to_bytes());
  }
  leader->on_message(5, core::tag_byte(MsgTag::kNewLeader),
                     bed_.make_new_leader(2, 5).to_bytes());
  leader->on_message(6, core::tag_byte(MsgTag::kNewLeader),
                     bed_.make_new_leader(2, 6).to_bytes());
  for (const auto& sent : bed_.outbox) {
    EXPECT_NE(sent.tag, core::tag_byte(MsgTag::kPropose));
  }
  // Three more distinct senders complete the quorum: now it proposes.
  for (ReplicaId s = 7; s <= 9; ++s) {
    leader->on_message(s, core::tag_byte(MsgTag::kNewLeader),
                       bed_.make_new_leader(2, s).to_bytes());
  }
  bool proposed = false;
  for (const auto& sent : bed_.outbox) {
    if (sent.tag == core::tag_byte(MsgTag::kPropose)) proposed = true;
  }
  EXPECT_TRUE(proposed);
}

TEST_F(ByzantineUnitTest, FutureViewProposeFromNonLeaderCannotShadow) {
  // Replica 5 (NOT the leader of view 2) sends a garbage view-2 Propose
  // while we are still in view 1. It used to occupy the one buffer slot
  // for view 2, so the real leader's proposal arriving later was never
  // buffered and the view stalled. Now non-leader proposals are dropped.
  using core::MsgTag;
  auto replica = bed_.make_replica(3);
  replica->start();
  replica->on_message(
      5, core::tag_byte(MsgTag::kPropose),
      bed_.make_propose(2, to_bytes("shadow"), 5).to_bytes());

  std::vector<core::NewLeaderMsg> m_set;
  for (ReplicaId s = 4; s <= 9; ++s) {
    m_set.push_back(bed_.make_new_leader(2, s));
  }
  const Bytes real = to_bytes("real-proposal");
  replica->on_message(2, core::tag_byte(MsgTag::kPropose),
                      bed_.make_propose(2, real, 2, m_set).to_bytes());

  for (ReplicaId s = 1; s <= 9; ++s) {
    if (s == 3) continue;
    core::WishMsg wish;
    wish.view = 2;
    wish.sender = s;
    wish.sender_sig = bed_.suite().sign(bed_.secret(s), wish.signing_bytes());
    replica->on_message(s, core::tag_byte(MsgTag::kWish), wish.to_bytes());
  }
  ASSERT_EQ(replica->current_view(), 2U);
  EXPECT_TRUE(replica->voted());
  // The Prepare it multicast must carry the real leader's value.
  bool prepared_real = false;
  for (const auto& sent : bed_.outbox) {
    if (sent.tag != core::tag_byte(MsgTag::kPrepare)) continue;
    const auto m = core::PhaseMsg::from_bytes(sent.payload);
    if (m.proposal.view == 2) {
      EXPECT_EQ(m.proposal.value, real);
      prepared_real = true;
    }
  }
  EXPECT_TRUE(prepared_real);
}

TEST_F(ByzantineUnitTest, BlockedViewStillBuffersFutureViewMessages) {
  // Equivocation blocks view 1; messages for view 2 arriving while blocked
  // (the new leader's Propose AND its Prepares) must be buffered, not
  // dropped, so the replica can vote and prepare immediately on entering
  // view 2. Dropping them used to stall the next view.
  using core::MsgTag;
  auto replica = bed_.make_replica(3);
  replica->start();
  replica->on_message(1, core::tag_byte(MsgTag::kPropose),
                      bed_.make_propose(1, to_bytes("A"), 1).to_bytes());
  replica->on_message(1, core::tag_byte(MsgTag::kPropose),
                      bed_.make_propose(1, to_bytes("B"), 1).to_bytes());
  ASSERT_TRUE(replica->view_blocked());

  std::vector<core::NewLeaderMsg> m_set;
  for (ReplicaId s = 4; s <= 9; ++s) {
    m_set.push_back(bed_.make_new_leader(2, s));
  }
  const Bytes next = to_bytes("next-view-value");
  replica->on_message(2, core::tag_byte(MsgTag::kPropose),
                      bed_.make_propose(2, next, 2, m_set).to_bytes());
  for (ReplicaId s = 1; s <= 9; ++s) {
    replica->on_message(
        s, core::tag_byte(MsgTag::kPrepare),
        bed_.make_phase(MsgTag::kPrepare, 2, next, s, 2).to_bytes());
  }
  // Still blocked in view 1 (the view-2 traffic is only buffered).
  EXPECT_EQ(replica->current_view(), 1U);
  EXPECT_TRUE(replica->view_blocked());

  for (ReplicaId s = 1; s <= 9; ++s) {
    if (s == 3) continue;
    core::WishMsg wish;
    wish.view = 2;
    wish.sender = s;
    wish.sender_sig = bed_.suite().sign(bed_.secret(s), wish.signing_bytes());
    replica->on_message(s, core::tag_byte(MsgTag::kWish), wish.to_bytes());
  }
  ASSERT_EQ(replica->current_view(), 2U);
  EXPECT_FALSE(replica->view_blocked());
  EXPECT_TRUE(replica->voted());
  // The buffered prepares must have counted: the replica is prepared on
  // the new value in view 2.
  EXPECT_EQ(replica->prepared_view(), 2U);
  EXPECT_EQ(replica->prepared_value(), next);
}

TEST_F(ByzantineUnitTest, WrongPhaseSeedRejected) {
  using core::MsgTag;
  const Bytes a = to_bytes("value-A");
  replica_->on_message(1, core::tag_byte(MsgTag::kPropose),
                       bed_.make_propose(1, a, 1).to_bytes());
  // A "commit"-seeded sample shipped in a Prepare message: VRF check fails.
  auto m = bed_.make_phase(MsgTag::kCommit, 1, a, 5, 1);
  core::PhaseMsg forged = m;
  forged.sender_sig = bed_.suite().sign(
      bed_.secret(5), forged.signing_bytes(MsgTag::kPrepare));
  for (ReplicaId s = 1; s <= 9; ++s) {
    replica_->on_message(5, core::tag_byte(MsgTag::kPrepare),
                         forged.to_bytes());
  }
  EXPECT_FALSE(replica_->decided());
}

}  // namespace
}  // namespace probft::sim
