#include "common/codec.hpp"

#include <gtest/gtest.h>

namespace probft {
namespace {

TEST(Codec, IntegersRoundtrip) {
  Writer w;
  w.u8(0xab);
  w.u16(0x1234);
  w.u32(0xdeadbeef);
  w.u64(0x0123456789abcdefULL);

  Reader r(ByteSpan(w.data().data(), w.data().size()));
  EXPECT_EQ(r.u8(), 0xab);
  EXPECT_EQ(r.u16(), 0x1234);
  EXPECT_EQ(r.u32(), 0xdeadbeefU);
  EXPECT_EQ(r.u64(), 0x0123456789abcdefULL);
  EXPECT_TRUE(r.exhausted());
}

TEST(Codec, LittleEndianLayout) {
  Writer w;
  w.u32(0x01020304);
  const Bytes expected = {0x04, 0x03, 0x02, 0x01};
  EXPECT_EQ(w.data(), expected);
}

TEST(Codec, BytesRoundtrip) {
  Writer w;
  const Bytes payload = {9, 8, 7};
  w.bytes(payload);
  Reader r(ByteSpan(w.data().data(), w.data().size()));
  EXPECT_EQ(r.bytes(), payload);
  EXPECT_TRUE(r.exhausted());
}

TEST(Codec, StringRoundtrip) {
  Writer w;
  w.str("prepare");
  Reader r(ByteSpan(w.data().data(), w.data().size()));
  EXPECT_EQ(r.str(), "prepare");
}

TEST(Codec, VectorRoundtrip) {
  Writer w;
  const std::vector<std::uint32_t> items = {1, 5, 9};
  w.vec(items, [](Writer& out, std::uint32_t v) { out.u32(v); });
  Reader r(ByteSpan(w.data().data(), w.data().size()));
  const auto decoded =
      r.vec<std::uint32_t>([](Reader& in) { return in.u32(); });
  EXPECT_EQ(decoded, items);
}

TEST(Codec, OptionalRoundtrip) {
  Writer w;
  w.opt(std::optional<std::uint32_t>(42),
        [](Writer& out, std::uint32_t v) { out.u32(v); });
  w.opt(std::optional<std::uint32_t>(),
        [](Writer& out, std::uint32_t v) { out.u32(v); });
  Reader r(ByteSpan(w.data().data(), w.data().size()));
  const auto present = r.opt<std::uint32_t>([](Reader& in) { return in.u32(); });
  const auto absent = r.opt<std::uint32_t>([](Reader& in) { return in.u32(); });
  ASSERT_TRUE(present.has_value());
  EXPECT_EQ(*present, 42U);
  EXPECT_FALSE(absent.has_value());
}

TEST(Codec, TruncatedBufferThrows) {
  Writer w;
  w.u32(7);
  Reader r(ByteSpan(w.data().data(), 3));
  EXPECT_THROW((void)r.u32(), CodecError);
}

TEST(Codec, TruncatedBytesThrows) {
  Writer w;
  w.u32(100);  // claims 100 bytes follow, none do
  Reader r(ByteSpan(w.data().data(), w.data().size()));
  EXPECT_THROW((void)r.bytes(), CodecError);
}

TEST(Codec, InvalidBooleanThrows) {
  const Bytes raw = {2};
  Reader r(ByteSpan(raw.data(), raw.size()));
  EXPECT_THROW((void)r.boolean(), CodecError);
}

TEST(Codec, VectorCountLimit) {
  Writer w;
  w.u32(1U << 30);  // absurd element count
  Reader r(ByteSpan(w.data().data(), w.data().size()));
  EXPECT_THROW(
      (void)r.vec<std::uint32_t>([](Reader& in) { return in.u32(); }),
      CodecError);
}

TEST(Codec, ExpectExhausted) {
  Writer w;
  w.u8(1);
  w.u8(2);
  Reader r(ByteSpan(w.data().data(), w.data().size()));
  (void)r.u8();
  EXPECT_THROW(r.expect_exhausted(), CodecError);
  (void)r.u8();
  EXPECT_NO_THROW(r.expect_exhausted());
}

TEST(Codec, RawRoundtrip) {
  Writer w;
  const Bytes fixed = {1, 2, 3, 4};
  w.raw(fixed);
  Reader r(ByteSpan(w.data().data(), w.data().size()));
  EXPECT_EQ(r.raw(4), fixed);
}

}  // namespace
}  // namespace probft
