#include <gtest/gtest.h>

#include "common/bytes.hpp"
#include "crypto/hmac.hpp"
#include "crypto/sha256.hpp"
#include "crypto/sha512.hpp"

namespace probft::crypto {
namespace {

Bytes digest_bytes(const Sha256::Digest& d) { return Bytes(d.begin(), d.end()); }
Bytes digest_bytes(const Sha512::Digest& d) { return Bytes(d.begin(), d.end()); }

// FIPS 180-4 test vectors.
TEST(Sha256, EmptyString) {
  EXPECT_EQ(to_hex(digest_bytes(Sha256::hash(Bytes{}))),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, Abc) {
  EXPECT_EQ(to_hex(digest_bytes(Sha256::hash(to_bytes("abc")))),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockMessage) {
  EXPECT_EQ(to_hex(digest_bytes(Sha256::hash(to_bytes(
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")))),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionA) {
  Bytes msg(1000000, 'a');
  EXPECT_EQ(to_hex(digest_bytes(Sha256::hash(msg))),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, IncrementalMatchesOneShot) {
  const Bytes msg = to_bytes("the quick brown fox jumps over the lazy dog");
  for (std::size_t split = 0; split <= msg.size(); ++split) {
    Sha256 h;
    h.update(ByteSpan(msg.data(), split));
    h.update(ByteSpan(msg.data() + split, msg.size() - split));
    EXPECT_EQ(h.finalize(), Sha256::hash(msg)) << "split=" << split;
  }
}

TEST(Sha256, BoundaryLengths) {
  // Exercise padding around the 55/56/64-byte block boundaries.
  for (std::size_t len : {55U, 56U, 57U, 63U, 64U, 65U, 119U, 120U, 128U}) {
    Bytes msg(len, 'x');
    Sha256 incremental;
    for (std::size_t i = 0; i < len; ++i) {
      incremental.update(ByteSpan(&msg[i], 1));
    }
    EXPECT_EQ(incremental.finalize(), Sha256::hash(msg)) << "len=" << len;
  }
}

TEST(Sha512, EmptyString) {
  EXPECT_EQ(to_hex(digest_bytes(Sha512::hash(Bytes{}))),
            "cf83e1357eefb8bdf1542850d66d8007d620e4050b5715dc83f4a921d36ce9ce"
            "47d0d13c5d85f2b0ff8318d2877eec2f63b931bd47417a81a538327af927da3e");
}

TEST(Sha512, Abc) {
  EXPECT_EQ(to_hex(digest_bytes(Sha512::hash(to_bytes("abc")))),
            "ddaf35a193617abacc417349ae20413112e6fa4e89a97ea20a9eeee64b55d39a"
            "2192992a274fc1a836ba3c23a3feebbd454d4423643ce80e2a9ac94fa54ca49f");
}

TEST(Sha512, TwoBlockMessage) {
  EXPECT_EQ(
      to_hex(digest_bytes(Sha512::hash(to_bytes(
          "abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmnhijklmno"
          "ijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu")))),
      "8e959b75dae313da8cf4f72814fc143f8f7779c6eb9f7fa17299aeadb6889018"
      "501d289e4900f7e4331b99dec4b5433ac7d329eeb6dd26545e96e55b874be909");
}

TEST(Sha512, IncrementalMatchesOneShot) {
  const Bytes msg(300, 0x5a);
  Sha512 h;
  h.update(ByteSpan(msg.data(), 100));
  h.update(ByteSpan(msg.data() + 100, 200));
  EXPECT_EQ(h.finalize(), Sha512::hash(msg));
}

TEST(Sha512, BoundaryLengths) {
  for (std::size_t len : {111U, 112U, 113U, 127U, 128U, 129U, 255U, 256U}) {
    Bytes msg(len, 'y');
    Sha512 incremental;
    for (std::size_t i = 0; i < len; ++i) {
      incremental.update(ByteSpan(&msg[i], 1));
    }
    EXPECT_EQ(incremental.finalize(), Sha512::hash(msg)) << "len=" << len;
  }
}

// RFC 4231 test case 2 (short key, short message).
TEST(Hmac, Rfc4231Case2) {
  const Bytes key = to_bytes("Jefe");
  const Bytes msg = to_bytes("what do ya want for nothing?");
  EXPECT_EQ(to_hex(hmac_sha256(key, msg)),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

// RFC 4231 test case 1.
TEST(Hmac, Rfc4231Case1) {
  const Bytes key(20, 0x0b);
  const Bytes msg = to_bytes("Hi There");
  EXPECT_EQ(to_hex(hmac_sha256(key, msg)),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

// RFC 4231 test case 3 (key = 20 x 0xaa, data = 50 x 0xdd).
TEST(Hmac, Rfc4231Case3) {
  const Bytes key(20, 0xaa);
  const Bytes msg(50, 0xdd);
  EXPECT_EQ(to_hex(hmac_sha256(key, msg)),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
}

TEST(Hmac, LongKeyIsHashedFirst) {
  const Bytes key(131, 0xaa);
  const Bytes msg = to_bytes("Test Using Larger Than Block-Size Key - Hash Key First");
  EXPECT_EQ(to_hex(hmac_sha256(key, msg)),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

}  // namespace
}  // namespace probft::crypto
