// Single-shot PBFT baseline integration tests.
#include <gtest/gtest.h>

#include "sim/cluster.hpp"
#include "sim/scenario.hpp"

namespace probft::sim {
namespace {

ClusterConfig base_config(std::uint32_t n, std::uint32_t f,
                          std::uint64_t seed = 1) {
  ClusterConfig cfg;
  cfg.protocol = Protocol::kPbft;
  cfg.n = n;
  cfg.f = f;
  cfg.seed = seed;
  cfg.sync.base_timeout = 100'000;
  cfg.latency.min_delay = 500;
  cfg.latency.max_delay_post = 5'000;
  return cfg;
}

/// Fault shapes come from the scenario harness; only the timing knobs of
/// base_config are layered on top.
ClusterConfig fault_config(std::uint32_t n, std::uint32_t f, Fault fault,
                           std::uint64_t seed) {
  ScenarioSpec spec;
  spec.protocol = Protocol::kPbft;
  spec.n = n;
  spec.f = f;
  spec.fault = fault;
  const ClusterConfig timing = base_config(n, f);
  return make_cluster_config(spec, seed, timing.sync, timing.latency);
}

TEST(PbftProtocol, HappyPathDecidesInViewOne) {
  Cluster cluster(base_config(4, 1));
  cluster.start();
  EXPECT_TRUE(cluster.run_to_completion());
  EXPECT_TRUE(cluster.agreement_ok());
  for (const auto& d : cluster.decisions()) {
    EXPECT_EQ(d.view, 1U);
  }
}

TEST(PbftProtocol, ToleratesFSilentReplicas) {
  // n = 3f+1 = 10, f = 3 silent: classical BFT resilience bound.
  Cluster cluster(fault_config(10, 3, Fault::kSilentFollowers, 5));
  cluster.start();
  EXPECT_TRUE(cluster.run_to_completion());
  EXPECT_TRUE(cluster.agreement_ok());
  EXPECT_EQ(cluster.correct_decided_count(), 7U);
}

TEST(PbftProtocol, SilentLeaderViewChange) {
  Cluster cluster(fault_config(7, 2, Fault::kSilentLeader, 9));
  cluster.start();
  EXPECT_TRUE(cluster.run_to_completion());
  EXPECT_TRUE(cluster.agreement_ok());
  for (const auto& d : cluster.decisions()) {
    EXPECT_GE(d.view, 2U);
  }
}

TEST(PbftProtocol, QuadraticMessageComplexity) {
  Cluster cluster(base_config(20, 0, 3));
  cluster.start();
  ASSERT_TRUE(cluster.run_to_completion());
  const auto& stats = cluster.network().stats();
  // Propose: n-1. Prepare/Commit: each replica broadcasts to n-1 others.
  EXPECT_EQ(stats.sends_for(core::tag_byte(core::MsgTag::kPropose)), 19U);
  EXPECT_EQ(stats.sends_for(core::tag_byte(core::MsgTag::kPrepare)),
            20U * 19U);
  EXPECT_EQ(stats.sends_for(core::tag_byte(core::MsgTag::kCommit)),
            20U * 19U);
}

TEST(PbftProtocol, DeterministicGivenSeed) {
  auto run_once = [](std::uint64_t seed) {
    Cluster cluster(base_config(7, 2, seed));
    cluster.start();
    cluster.run_to_completion();
    std::vector<TimePoint> times;
    for (const auto& d : cluster.decisions()) times.push_back(d.at);
    return times;
  };
  EXPECT_EQ(run_once(3), run_once(3));
}

TEST(PbftProtocol, EquivocatingLeaderCannotSplitDecision) {
  // PBFT under the same Fig. 4 attack: deterministic quorums intersect, so
  // no two correct replicas can decide differently — and typically nobody
  // decides in view 1, with a later view resolving.
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    auto cfg = base_config(10, 3, seed);
    cfg.behaviors.assign(10, Behavior::kHonest);
    cfg.behaviors[0] = Behavior::kEquivocateLeader;
    cfg.split = SplitStrategy::kHalves;
    Cluster cluster(cfg);
    cluster.start();
    cluster.run_to_completion(/*deadline=*/60'000'000);
    EXPECT_TRUE(cluster.agreement_ok()) << "seed " << seed;
  }
}

TEST(PbftProtocol, SurvivesPreGstAsynchrony) {
  auto cfg = base_config(7, 2, 13);
  cfg.latency.gst = 400'000;
  cfg.latency.max_delay_pre = 200'000;
  cfg.latency.hold_until_gst_prob = 0.25;
  Cluster cluster(cfg);
  cluster.start();
  EXPECT_TRUE(cluster.run_to_completion(/*deadline=*/300'000'000));
  EXPECT_TRUE(cluster.agreement_ok());
}

TEST(PbftProtocol, PreparedViewTracksProgress) {
  Cluster cluster(base_config(4, 1, 2));
  cluster.start();
  ASSERT_TRUE(cluster.run_to_completion());
  for (ReplicaId id = 1; id <= 4; ++id) {
    const auto* replica = cluster.pbft(id);
    ASSERT_NE(replica, nullptr);
    EXPECT_TRUE(replica->decided());
    EXPECT_GE(replica->prepared_view(), 1U);
  }
}

}  // namespace
}  // namespace probft::sim
