// Direct-drive unit tests for the PBFT baseline replica: adversarial
// messages, quorum thresholds, and view-change value selection.
#include <gtest/gtest.h>

#include "protocol_test_util.hpp"

namespace probft::pbft {
namespace {

using core::MsgTag;
using core::tag_byte;
using testutil::TestBed;

class PbftUnitTest : public ::testing::Test {
 protected:
  // n = 9, f = 2 -> quorum = ceil((9+2+1)/2) = 6.
  PbftUnitTest() : bed_(9, 2) {
    replica_ = bed_.make_pbft_replica(3);
    replica_->start();
  }

  void deliver_prepares(const Bytes& value, int count) {
    int sent = 0;
    for (ReplicaId s = 1; s <= 9 && sent < count; ++s) {
      if (s == 3) continue;  // own prepare is counted internally
      replica_->on_message(
          s, tag_byte(MsgTag::kPrepare),
          bed_.make_plain_phase(MsgTag::kPrepare, 1, value, s, 1).to_bytes());
      ++sent;
    }
  }

  void deliver_commits(const Bytes& value, int count) {
    int sent = 0;
    for (ReplicaId s = 1; s <= 9 && sent < count; ++s) {
      if (s == 3) continue;
      replica_->on_message(
          s, tag_byte(MsgTag::kCommit),
          bed_.make_plain_phase(MsgTag::kCommit, 1, value, s, 1).to_bytes());
      ++sent;
    }
  }

  TestBed bed_;
  std::unique_ptr<PbftReplica> replica_;
};

TEST_F(PbftUnitTest, DecidesAfterQuorumOfPreparesAndCommits) {
  const Bytes value = to_bytes("v");
  replica_->on_message(1, tag_byte(MsgTag::kPropose),
                       bed_.make_propose(1, value, 1).to_bytes());
  deliver_prepares(value, 5);  // + own prepare = 6 = quorum
  EXPECT_EQ(replica_->prepared_view(), 1U);
  EXPECT_FALSE(replica_->decided());
  deliver_commits(value, 5);  // + own commit = 6
  ASSERT_TRUE(replica_->decided());
  EXPECT_EQ(replica_->decided_value(), value);
}

TEST_F(PbftUnitTest, SubQuorumPreparesDoNotPrepare) {
  const Bytes value = to_bytes("v");
  replica_->on_message(1, tag_byte(MsgTag::kPropose),
                       bed_.make_propose(1, value, 1).to_bytes());
  deliver_prepares(value, 4);  // + own = 5 < 6
  EXPECT_EQ(replica_->prepared_view(), 0U);
}

TEST_F(PbftUnitTest, CommitsBeforePreparedDoNotDecide) {
  const Bytes value = to_bytes("v");
  replica_->on_message(1, tag_byte(MsgTag::kPropose),
                       bed_.make_propose(1, value, 1).to_bytes());
  deliver_commits(value, 8);
  EXPECT_FALSE(replica_->decided());  // never prepared, commits buffered
  deliver_prepares(value, 5);
  EXPECT_TRUE(replica_->decided());  // buffered commits now apply
}

TEST_F(PbftUnitTest, MismatchedValuePreparesIgnored) {
  replica_->on_message(1, tag_byte(MsgTag::kPropose),
                       bed_.make_propose(1, to_bytes("good"), 1).to_bytes());
  deliver_prepares(to_bytes("evil"), 8);
  EXPECT_EQ(replica_->prepared_view(), 0U);
}

TEST_F(PbftUnitTest, SecondProposalFromLeaderIgnored) {
  // PBFT accepts only the first proposal per view (no blocking needed:
  // deterministic quorums cannot split).
  replica_->on_message(1, tag_byte(MsgTag::kPropose),
                       bed_.make_propose(1, to_bytes("first"), 1).to_bytes());
  replica_->on_message(1, tag_byte(MsgTag::kPropose),
                       bed_.make_propose(1, to_bytes("second"), 1).to_bytes());
  deliver_prepares(to_bytes("first"), 5);
  deliver_commits(to_bytes("first"), 5);
  ASSERT_TRUE(replica_->decided());
  EXPECT_EQ(replica_->decided_value(), to_bytes("first"));
}

TEST_F(PbftUnitTest, ForgedSignaturesRejectedEverywhere) {
  const Bytes value = to_bytes("v");
  auto propose = bed_.make_propose(1, value, 1);
  propose.sender_sig[0] ^= 1;
  replica_->on_message(1, tag_byte(MsgTag::kPropose), propose.to_bytes());
  EXPECT_EQ(replica_->current_view(), 1U);

  replica_->on_message(1, tag_byte(MsgTag::kPropose),
                       bed_.make_propose(1, value, 1).to_bytes());
  auto prepare = bed_.make_plain_phase(MsgTag::kPrepare, 1, value, 4, 1);
  prepare.sender_sig[1] ^= 1;
  for (int i = 0; i < 8; ++i) {
    replica_->on_message(4, tag_byte(MsgTag::kPrepare), prepare.to_bytes());
  }
  EXPECT_EQ(replica_->prepared_view(), 0U);
}

TEST_F(PbftUnitTest, DuplicatePreparesCountOnce) {
  const Bytes value = to_bytes("v");
  replica_->on_message(1, tag_byte(MsgTag::kPropose),
                       bed_.make_propose(1, value, 1).to_bytes());
  const auto prepare =
      bed_.make_plain_phase(MsgTag::kPrepare, 1, value, 4, 1);
  for (int i = 0; i < 10; ++i) {
    replica_->on_message(4, tag_byte(MsgTag::kPrepare), prepare.to_bytes());
  }
  EXPECT_EQ(replica_->prepared_view(), 0U);  // 1 distinct + own = 2 < 6
}

TEST_F(PbftUnitTest, NonLeaderProposalRejected) {
  replica_->on_message(5, tag_byte(MsgTag::kPropose),
                       bed_.make_propose(1, to_bytes("v"), 5).to_bytes());
  deliver_prepares(to_bytes("v"), 8);
  EXPECT_EQ(replica_->prepared_view(), 0U);  // never voted
}

TEST_F(PbftUnitTest, GarbageMessagesDropped) {
  replica_->on_message(2, tag_byte(MsgTag::kPropose), Bytes{1, 2, 3});
  replica_->on_message(2, tag_byte(MsgTag::kPrepare), Bytes(500, 0xee));
  replica_->on_message(2, 77, Bytes{});
  EXPECT_EQ(replica_->current_view(), 1U);
  EXPECT_FALSE(replica_->decided());
}

TEST_F(PbftUnitTest, PreparesBroadcastAfterVote) {
  bed_.outbox.clear();
  replica_->on_message(1, tag_byte(MsgTag::kPropose),
                       bed_.make_propose(1, to_bytes("v"), 1).to_bytes());
  bool prepare_broadcast = false;
  for (const auto& sent : bed_.outbox) {
    if (sent.tag == tag_byte(MsgTag::kPrepare) && sent.to == 0) {
      prepare_broadcast = true;
      // PBFT phase messages carry no VRF fields.
      const auto msg = core::PhaseMsg::from_bytes(sent.payload);
      EXPECT_TRUE(msg.sample.empty());
      EXPECT_TRUE(msg.vrf_proof.empty());
    }
  }
  EXPECT_TRUE(prepare_broadcast);
}

TEST_F(PbftUnitTest, ViewChangeSelectsHighestPreparedView) {
  // Drive replica 2 as leader of view 2 with NewLeader messages claiming
  // different prepared views: the freshest certificate must win.
  auto leader = bed_.make_pbft_replica(2);
  leader->start();
  // Force into view 2.
  for (ReplicaId s = 1; s <= 9; ++s) {
    if (s == 2) continue;
    core::WishMsg wish;
    wish.view = 2;
    wish.sender = s;
    wish.sender_sig = bed_.suite().sign(bed_.secret(s), wish.signing_bytes());
    leader->on_message(s, tag_byte(MsgTag::kWish), wish.to_bytes());
  }
  ASSERT_EQ(leader->current_view(), 2U);
  bed_.outbox.clear();

  // Build PBFT prepared certs: quorum-many plain prepares.
  auto make_cert = [this](View v, const Bytes& val) {
    std::vector<core::PhaseMsgPtr> cert;
    for (ReplicaId s = 1; s <= 6; ++s) {
      cert.push_back(std::make_shared<core::PhaseMsg>(
          bed_.make_plain_phase(MsgTag::kPrepare, v, val, s,
                                leader_of(v, 9))));
    }
    return cert;
  };
  leader->on_message(
      4, tag_byte(MsgTag::kNewLeader),
      bed_.make_new_leader(2, 4, 1, to_bytes("old"),
                           make_cert(1, to_bytes("old")))
          .to_bytes());
  for (ReplicaId s = 5; s <= 9; ++s) {
    leader->on_message(s, tag_byte(MsgTag::kNewLeader),
                       bed_.make_new_leader(2, s).to_bytes());
  }
  bool proposed = false;
  for (const auto& sent : bed_.outbox) {
    if (sent.tag != tag_byte(MsgTag::kPropose)) continue;
    const auto msg = core::ProposeMsg::from_bytes(sent.payload);
    EXPECT_EQ(msg.proposal.value, to_bytes("old"));
    proposed = true;
  }
  EXPECT_TRUE(proposed);
}

}  // namespace
}  // namespace probft::pbft
