#include "common/log.hpp"

#include <gtest/gtest.h>

namespace probft::log {
namespace {

class LogTest : public ::testing::Test {
 protected:
  void TearDown() override { set_level(Level::kOff); }
};

TEST_F(LogTest, DefaultLevelIsOff) {
  EXPECT_EQ(level(), Level::kOff);
}

TEST_F(LogTest, SetLevelRoundtrips) {
  set_level(Level::kDebug);
  EXPECT_EQ(level(), Level::kDebug);
  set_level(Level::kError);
  EXPECT_EQ(level(), Level::kError);
}

TEST_F(LogTest, LevelsAreOrdered) {
  EXPECT_LT(Level::kTrace, Level::kDebug);
  EXPECT_LT(Level::kDebug, Level::kInfo);
  EXPECT_LT(Level::kInfo, Level::kWarn);
  EXPECT_LT(Level::kWarn, Level::kError);
  EXPECT_LT(Level::kError, Level::kOff);
}

TEST_F(LogTest, FormattingDoesNotCrash) {
  set_level(Level::kTrace);
  trace("plain message");
  debug("value=%d", 42);
  info("two %s and %u", "strings", 7U);
  warn("float %.2f", 3.14);
  error("large buffer %s", std::string(300, 'x').c_str());
}

TEST_F(LogTest, SuppressedLevelsDoNotFormat) {
  set_level(Level::kError);
  // These must be cheap no-ops (no observable behavior to assert beyond
  // not crashing, but exercises the guard path).
  trace("suppressed %d", 1);
  debug("suppressed %d", 2);
  info("suppressed %d", 3);
  warn("suppressed %d", 4);
}

TEST_F(LogTest, DetailFormatHandlesNoArgs) {
  EXPECT_EQ(detail::format("hello"), "hello");
}

TEST_F(LogTest, DetailFormatSubstitutes) {
  EXPECT_EQ(detail::format("%d-%s", 5, "x"), "5-x");
}

}  // namespace
}  // namespace probft::log
