// Fixture: healthy registry; the defect is THREAD-side (see cache.cpp).
#pragma once

#include <cstdint>

namespace probft::net::tags {

inline constexpr std::uint8_t kAlpha = 0x01;

namespace detail {

inline constexpr std::uint8_t kAll[] = {kAlpha};

}  // namespace detail

}  // namespace probft::net::tags
