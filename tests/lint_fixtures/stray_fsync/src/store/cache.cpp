// Fixture defect: an fsync(2) call site outside src/store/wal.cpp. Durable
// writes must flow through the WAL so sync ordering stays in one place.
#include <unistd.h>

namespace probft::store {

void flush_cache(int fd) {
  ::fsync(fd);
}

}  // namespace probft::store
