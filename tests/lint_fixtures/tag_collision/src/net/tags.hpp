// Fixture: kBeta collides with kAlpha, and kGamma is declared but missing
// from detail::kAll (so the C++ static_assert would never see it).
#pragma once

#include <cstdint>

namespace probft::net::tags {

inline constexpr std::uint8_t kAlpha = 0x01;
inline constexpr std::uint8_t kBeta = 0x01;
inline constexpr std::uint8_t kGamma = 0x03;

namespace detail {

inline constexpr std::uint8_t kAll[] = {kAlpha, kBeta};

}  // namespace detail

}  // namespace probft::net::tags
