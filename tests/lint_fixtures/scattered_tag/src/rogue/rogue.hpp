// Fixture defect: a module minting its own wire tag value instead of
// declaring it in the registry and re-exporting. This is how silent tag
// collisions between subsystems are born.
#pragma once

#include <cstdint>

namespace probft::rogue {

inline constexpr std::uint8_t kRogueTag = 0x42;

}  // namespace probft::rogue
