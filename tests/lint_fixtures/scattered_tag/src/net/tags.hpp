// Fixture: a perfectly healthy registry — the defect lives in
// src/rogue/rogue.hpp, which mints its own numeric tag.
#pragma once

#include <cstdint>

namespace probft::net::tags {

inline constexpr std::uint8_t kAlpha = 0x01;
inline constexpr std::uint8_t kBeta = 0x02;

namespace detail {

inline constexpr std::uint8_t kAll[] = {kAlpha, kBeta};

}  // namespace detail

}  // namespace probft::net::tags
