// Fixture defect: WireRecord decodes attacker-controlled bytes but the
// fixture's only test is an honest round-trip — nothing ever feeds it a
// truncated or padded buffer.
#pragma once

#include <cstdint>

namespace probft::wire {

struct WireRecord {
  std::uint64_t id = 0;

  void encode(Writer& w) const;
  static WireRecord decode(Reader& r);
};

}  // namespace probft::wire
