// Fixture: honest round-trip only — no hostile-buffer coverage, which is
// exactly what the DECODE rule must flag.
#include "wire/record.hpp"

namespace probft::wire {

void test_roundtrip() {
  WireRecord rec;
  rec.id = 7;
  Writer w;
  rec.encode(w);
  Reader r(w.take());
  const WireRecord back = WireRecord::decode(r);
  (void)back;
}

}  // namespace probft::wire
