// Unit tests for the simulation harness itself (sim/cluster.hpp).
#include <gtest/gtest.h>

#include "sim/cluster.hpp"

namespace probft::sim {
namespace {

TEST(Cluster, RejectsZeroReplicas) {
  ClusterConfig cfg;
  cfg.n = 0;
  EXPECT_THROW(Cluster cluster(cfg), std::invalid_argument);
}

TEST(Cluster, DefaultsToHonestBehaviors) {
  ClusterConfig cfg;
  cfg.n = 5;
  Cluster cluster(cfg);
  for (ReplicaId id = 1; id <= 5; ++id) {
    EXPECT_FALSE(cluster.is_byzantine(id));
  }
  EXPECT_EQ(cluster.correct_ids().size(), 5U);
}

TEST(Cluster, BehaviorsMarkByzantine) {
  ClusterConfig cfg;
  cfg.n = 4;
  cfg.behaviors = {Behavior::kHonest, Behavior::kSilent, Behavior::kHonest,
                   Behavior::kFlood};
  Cluster cluster(cfg);
  EXPECT_FALSE(cluster.is_byzantine(1));
  EXPECT_TRUE(cluster.is_byzantine(2));
  EXPECT_FALSE(cluster.is_byzantine(3));
  EXPECT_TRUE(cluster.is_byzantine(4));
  EXPECT_EQ(cluster.correct_ids(), (std::vector<ReplicaId>{1, 3}));
}

TEST(Cluster, KeysAreDeterministicPerSeed) {
  ClusterConfig cfg;
  cfg.n = 3;
  cfg.seed = 77;
  Cluster a(cfg);
  Cluster b(cfg);
  for (ReplicaId id = 1; id <= 3; ++id) {
    EXPECT_EQ(a.keys()[id].public_key, b.keys()[id].public_key);
  }
  cfg.seed = 78;
  Cluster c(cfg);
  EXPECT_NE(a.keys()[1].public_key, c.keys()[1].public_key);
}

TEST(Cluster, TypedAccessorsMatchProtocol) {
  ClusterConfig cfg;
  cfg.n = 4;
  cfg.protocol = Protocol::kProbft;
  Cluster cluster(cfg);
  EXPECT_NE(cluster.probft(1), nullptr);
  EXPECT_EQ(cluster.pbft(1), nullptr);
  EXPECT_EQ(cluster.hotstuff(1), nullptr);

  cfg.protocol = Protocol::kPbft;
  Cluster pbft_cluster(cfg);
  EXPECT_EQ(pbft_cluster.probft(1), nullptr);
  EXPECT_NE(pbft_cluster.pbft(1), nullptr);
}

TEST(Cluster, ByzantineSlotsHaveNoTypedReplica) {
  ClusterConfig cfg;
  cfg.n = 4;
  cfg.behaviors = {Behavior::kSilent, Behavior::kHonest, Behavior::kHonest,
                   Behavior::kHonest};
  Cluster cluster(cfg);
  EXPECT_EQ(cluster.probft(1), nullptr);
  EXPECT_NE(cluster.probft(2), nullptr);
}

TEST(Cluster, DecisionsRecordTimeAndView) {
  ClusterConfig cfg;
  cfg.n = 4;
  Cluster cluster(cfg);
  cluster.start();
  ASSERT_TRUE(cluster.run_to_completion());
  ASSERT_EQ(cluster.decisions().size(), 4U);
  for (const auto& d : cluster.decisions()) {
    EXPECT_GE(d.view, 1U);
    EXPECT_GT(d.at, 0U);
    EXPECT_FALSE(d.value.empty());
  }
}

TEST(Cluster, MyValuesOverrideProposals) {
  ClusterConfig cfg;
  cfg.n = 4;
  cfg.my_values.assign(4, Bytes{});
  cfg.my_values[0] = to_bytes("CUSTOM-COMMAND");
  Cluster cluster(cfg);
  cluster.start();
  ASSERT_TRUE(cluster.run_to_completion());
  const auto values = cluster.decided_values();
  ASSERT_EQ(values.size(), 1U);
  EXPECT_EQ(*values.begin(), to_bytes("CUSTOM-COMMAND"));
}

TEST(Cluster, ValuePrefixShapesDefaults) {
  ClusterConfig cfg;
  cfg.n = 4;
  cfg.value_prefix = to_bytes("xyz-");
  Cluster cluster(cfg);
  cluster.start();
  ASSERT_TRUE(cluster.run_to_completion());
  const auto values = cluster.decided_values();
  ASSERT_EQ(values.size(), 1U);
  const Bytes& v = *values.begin();
  EXPECT_EQ(std::string(v.begin(), v.begin() + 4), "xyz-");
}

TEST(Cluster, AgreementOkOnEmptyDecisions) {
  ClusterConfig cfg;
  cfg.n = 4;
  Cluster cluster(cfg);
  EXPECT_TRUE(cluster.agreement_ok());  // vacuously
  EXPECT_FALSE(cluster.all_correct_decided());
  EXPECT_EQ(cluster.correct_decided_count(), 0U);
}

TEST(Cluster, ExternalSuiteIsUsed) {
  const auto suite = crypto::make_ed25519_suite();
  ClusterConfig cfg;
  cfg.n = 4;
  cfg.suite = suite.get();
  Cluster cluster(cfg);
  EXPECT_EQ(cluster.suite().name(), "ed25519");
  // Keys must be Ed25519-shaped (32-byte compressed points != secrets).
  EXPECT_EQ(cluster.keys()[1].public_key.size(), 32U);
  EXPECT_NE(cluster.keys()[1].public_key, cluster.keys()[1].secret_key);
}

TEST(Cluster, FullRunWithRealCrypto) {
  // Small cluster end-to-end on real Ed25519 + ECVRF: slower but must work
  // identically.
  const auto suite = crypto::make_ed25519_suite();
  ClusterConfig cfg;
  cfg.n = 4;
  cfg.f = 0;
  cfg.suite = suite.get();
  Cluster cluster(cfg);
  cluster.start();
  EXPECT_TRUE(cluster.run_to_completion());
  EXPECT_TRUE(cluster.agreement_ok());
}

TEST(Cluster, MaxEventsBoundsTheRun) {
  ClusterConfig cfg;
  cfg.n = 10;
  Cluster cluster(cfg);
  cluster.start();
  cluster.run_to_completion(/*deadline=*/120'000'000, /*max_events=*/5);
  EXPECT_FALSE(cluster.all_correct_decided());
}

TEST(AttackPlan, OptimalSplitsCorrectInHalves) {
  std::vector<bool> byz(11, false);
  byz[1] = byz[2] = true;  // replicas 1,2 Byzantine of n=10
  const auto plan = AttackPlan::make(SplitStrategy::kOptimal, 10, byz,
                                     to_bytes("A"), to_bytes("B"));
  int a = 0, b = 0, both = 0;
  for (ReplicaId id = 1; id <= 10; ++id) {
    switch (plan.side[id]) {
      case AttackPlan::Side::kA: ++a; break;
      case AttackPlan::Side::kB: ++b; break;
      case AttackPlan::Side::kBoth: ++both; break;
      case AttackPlan::Side::kNone: break;
    }
  }
  EXPECT_EQ(both, 2);  // the Byzantine pair
  EXPECT_EQ(a, 4);     // half of 8 correct
  EXPECT_EQ(b, 4);
}

TEST(AttackPlan, GeneralCaseLeavesSomeWithNothing) {
  std::vector<bool> byz(10, false);
  const auto plan = AttackPlan::make(SplitStrategy::kGeneralThreeWay, 9, byz,
                                     to_bytes("A"), to_bytes("B"));
  int none = 0;
  for (ReplicaId id = 1; id <= 9; ++id) {
    if (plan.side[id] == AttackPlan::Side::kNone) ++none;
  }
  EXPECT_GT(none, 0);  // Fig. 4a's Π0 is non-empty
}

}  // namespace
}  // namespace probft::sim
