// The verification worker pool must be semantically invisible: a replica
// consuming messages through pool → drain (with its verdict cache warmed
// by worker threads) must behave bit-for-bit like a replica verifying
// inline, for valid, invalid and garbage traffic alike — and the drain
// order must be exactly the submission order (which preserves per-sender
// ordering trivially). These tests run identically under ASan and TSan;
// the TSan CI job exists largely to race the pool's workers for real.
#include <gtest/gtest.h>

#include <future>
#include <stdexcept>
#include <thread>
#include <vector>

#include "core/verify_pool.hpp"
#include "protocol_test_util.hpp"
#include "smr/executor.hpp"

namespace probft::core {
namespace {

using testutil::TestBed;

PreverifyContext context_for(const TestBed& bed) {
  PreverifyContext ctx;
  ctx.n = bed.n();
  ctx.sample_size = bed.sample_size();
  ctx.suite = &bed.suite();
  ctx.public_keys = bed.public_keys();
  return ctx;
}

struct Inbound {
  ReplicaId from = 0;
  std::uint8_t tag = 0;
  Bytes payload;
  bool operator==(const Inbound& other) const {
    return from == other.from && tag == other.tag &&
           payload == other.payload;
  }
};

/// A traffic mix exercising every extractor path: a valid decision
/// round, tampered signatures, a poisoned VRF proof, a NewLeader with a
/// certificate, and outright garbage.
std::vector<Inbound> make_traffic(const TestBed& bed, ReplicaId self) {
  const Bytes value = to_bytes("pool-value");
  std::vector<Inbound> msgs;
  msgs.push_back({1, tag_byte(MsgTag::kPropose),
                  bed.make_propose(1, value, 1).to_bytes()});
  for (ReplicaId s = 1; s <= bed.n(); ++s) {
    msgs.push_back({s, tag_byte(MsgTag::kPrepare),
                    bed.make_phase(MsgTag::kPrepare, 1, value, s, 1)
                        .to_bytes()});
  }
  // Tampered sender signature on a prepare.
  {
    auto m = bed.make_phase(MsgTag::kPrepare, 1, value, 2, 1);
    m.sender_sig[0] ^= 1;
    msgs.push_back({2, tag_byte(MsgTag::kPrepare), m.to_bytes()});
  }
  // Poisoned VRF proof on a commit.
  {
    auto m = bed.make_phase(MsgTag::kCommit, 1, value, 3, 1);
    m.vrf_proof[0] ^= 1;
    msgs.push_back({3, tag_byte(MsgTag::kCommit), m.to_bytes()});
  }
  // Forged leader signature inside a propose.
  {
    auto m = bed.make_propose(1, value, 1);
    m.proposal.leader_sig[0] ^= 1;
    msgs.push_back({1, tag_byte(MsgTag::kPropose), m.to_bytes()});
  }
  // NewLeader with a prepared certificate (batch-verified path).
  msgs.push_back(
      {4, tag_byte(MsgTag::kNewLeader),
       bed.make_new_leader(2, 4, 1, value, bed.make_cert(1, value, self, 1))
           .to_bytes()});
  // Garbage: must pass through untouched and be rejected by the replica.
  msgs.push_back({5, tag_byte(MsgTag::kPrepare), to_bytes("not a message")});
  msgs.push_back({6, 0x7f, to_bytes("unknown tag")});
  for (ReplicaId s = 1; s <= bed.n(); ++s) {
    msgs.push_back({s, tag_byte(MsgTag::kCommit),
                    bed.make_phase(MsgTag::kCommit, 1, value, s, 1)
                        .to_bytes()});
  }
  return msgs;
}

/// Pumps every message through the pool and returns the delivered
/// sequence (drained strictly in submission order, possibly in chunks).
std::vector<Inbound> pump(VerifyPool& pool, const std::vector<Inbound>& in) {
  for (const auto& m : in) pool.submit(m.from, m.tag, m.payload);
  std::vector<Inbound> out;
  while (out.size() < in.size()) {
    pool.wait_ready();
    pool.drain([&out](ReplicaId from, std::uint8_t tag, const Bytes& m) {
      out.push_back({from, tag, m});
    });
  }
  EXPECT_TRUE(pool.idle());
  return out;
}

// Regression (lock-discipline audit): a threaded pool used to silently
// accept a single-owner VerdictCache, handing an unsynchronized map to N
// worker threads — a data race TSan flagged only under the right
// interleaving. The constructor now refuses outright.
TEST(VerifyPoolGuards, ThreadedPoolRejectsUnsynchronizedCache) {
  TestBed bed(9, 2, 1.7, 3.0);
  auto unsafe = std::make_shared<VerdictCache>(/*thread_safe=*/false);
  EXPECT_THROW(VerifyPool(context_for(bed), unsafe, /*threads=*/2),
               std::invalid_argument);
  EXPECT_THROW(VerifyPool(context_for(bed), nullptr, /*threads=*/2),
               std::invalid_argument);
  // threads == 0 is the inline path: any cache (or none) stays legal.
  VerifyPool inline_pool(context_for(bed), unsafe, /*threads=*/0);
  EXPECT_TRUE(inline_pool.idle());
}

class VerifyPoolTest : public ::testing::TestWithParam<unsigned> {};

/// Pool-warmed replica vs inline replica, same traffic: identical outbox,
/// identical decisions, byte for byte.
TEST_P(VerifyPoolTest, WarmedReplicaMatchesInline) {
  const ReplicaId self = 5;
  // s == n == 9 keeps certificate construction deterministic.
  TestBed pool_bed(9, 2, 1.7, 3.0);
  TestBed inline_bed(9, 2, 1.7, 3.0);
  const auto traffic = make_traffic(pool_bed, self);

  auto cache = std::make_shared<VerdictCache>(/*thread_safe=*/true);
  VerifyPool pool(context_for(pool_bed), cache, GetParam());
  auto warmed =
      pool_bed.make_replica(self, to_bytes("own-value"), true, cache);
  auto plain = inline_bed.make_replica(self, to_bytes("own-value"), true);
  warmed->start();
  plain->start();

  const auto delivered = pump(pool, traffic);
  ASSERT_EQ(delivered.size(), traffic.size());
  for (std::size_t i = 0; i < traffic.size(); ++i) {
    EXPECT_EQ(delivered[i], traffic[i]) << "reordered at " << i;
  }

  for (const auto& m : delivered) {
    warmed->on_message(m.from, m.tag, m.payload);
  }
  for (const auto& m : traffic) {
    plain->on_message(m.from, m.tag, m.payload);
  }

  ASSERT_EQ(pool_bed.decisions.size(), inline_bed.decisions.size());
  for (std::size_t i = 0; i < pool_bed.decisions.size(); ++i) {
    EXPECT_EQ(pool_bed.decisions[i].view, inline_bed.decisions[i].view);
    EXPECT_EQ(pool_bed.decisions[i].value, inline_bed.decisions[i].value);
  }
  ASSERT_EQ(pool_bed.outbox.size(), inline_bed.outbox.size());
  for (std::size_t i = 0; i < pool_bed.outbox.size(); ++i) {
    EXPECT_EQ(pool_bed.outbox[i].to, inline_bed.outbox[i].to);
    EXPECT_EQ(pool_bed.outbox[i].tag, inline_bed.outbox[i].tag);
    EXPECT_EQ(pool_bed.outbox[i].payload, inline_bed.outbox[i].payload);
  }
  EXPECT_FALSE(pool_bed.decisions.empty());  // the valid round decided
}

/// Workers actually store verdicts: after pumping, the cache holds the
/// leader-signature verdict for the round's proposal.
TEST_P(VerifyPoolTest, WorkersWarmTheCache) {
  TestBed bed(9, 2, 1.7, 3.0);
  const Bytes value = to_bytes("pool-value");
  auto cache = std::make_shared<VerdictCache>(/*thread_safe=*/true);
  VerifyPool pool(context_for(bed), cache, GetParam());
  pump(pool, make_traffic(bed, 5));
  const auto proposal = bed.sign_proposal(1, value, 1);
  const Bytes msg = SignedProposal::signing_bytes(1, value);
  EXPECT_TRUE(cache->contains(VerdictCache::signed_key(
      'L', ByteSpan(msg.data(), msg.size()), proposal.leader_sig)));
}

INSTANTIATE_TEST_SUITE_P(Threads, VerifyPoolTest,
                         ::testing::Values(0u, 1u, 3u));

/// Heavier reordering pressure: many cheap-but-unequal-cost messages
/// through 3 workers must still drain in exact submission order.
TEST(VerifyPoolOrder, SubmissionOrderSurvivesConcurrency) {
  TestBed bed(9, 2, 1.7, 3.0);
  const auto base = make_traffic(bed, 5);
  std::vector<Inbound> traffic;
  for (int round = 0; round < 8; ++round) {
    traffic.insert(traffic.end(), base.begin(), base.end());
  }
  auto cache = std::make_shared<VerdictCache>(/*thread_safe=*/true);
  VerifyPool pool(context_for(bed), cache, 3);
  const auto delivered = pump(pool, traffic);
  ASSERT_EQ(delivered.size(), traffic.size());
  for (std::size_t i = 0; i < traffic.size(); ++i) {
    ASSERT_EQ(delivered[i], traffic[i]) << "reordered at " << i;
  }
}

// ---- AsyncExecutor (the --exec-offload stage) ----

TEST(AsyncExecutor, RunsJobsInSubmissionOrder) {
  std::vector<int> ran;
  {
    smr::AsyncExecutor exec;
    for (int i = 0; i < 1000; ++i) {
      exec.run_or_submit([&ran, i] { ran.push_back(i); });
    }
    exec.drain();
  }
  ASSERT_EQ(ran.size(), 1000u);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(ran[i], i);
}

TEST(AsyncExecutor, SubmitRefusesWhenFullWithoutRunningInline) {
  smr::AsyncExecutor exec(/*max_queue=*/1);
  std::promise<void> release;
  auto gate = release.get_future().share();
  ASSERT_TRUE(exec.submit([gate] { gate.wait(); }));
  // Wait for the worker to claim the blocker so exactly one slot exists.
  while (exec.queued() > 0) std::this_thread::yield();
  bool second_ran = false;
  ASSERT_TRUE(exec.submit([&second_ran] { second_ran = true; }));
  bool third_ran = false;
  EXPECT_FALSE(exec.submit([&third_ran] { third_ran = true; }));
  release.set_value();
  exec.drain();
  EXPECT_TRUE(second_ran);
  EXPECT_FALSE(third_ran);  // refused jobs are dropped, never run late
}

TEST(AsyncExecutor, RunOrSubmitBlocksToPreserveOrder) {
  smr::AsyncExecutor exec(/*max_queue=*/1);
  std::promise<void> release;
  auto gate = release.get_future().share();
  std::vector<int> ran;
  exec.run_or_submit([gate] { gate.wait(); });
  while (exec.queued() > 0) std::this_thread::yield();
  exec.run_or_submit([&ran] { ran.push_back(1); });  // fills the queue
  std::thread producer([&exec, &ran] {
    exec.run_or_submit([&ran] { ran.push_back(2); });  // must block, not run
  });
  // The producer must not have executed job 2 inline while job 1 queues.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_TRUE(ran.empty());
  release.set_value();
  producer.join();
  exec.drain();
  ASSERT_EQ(ran.size(), 2u);
  EXPECT_EQ(ran[0], 1);
  EXPECT_EQ(ran[1], 2);
}

}  // namespace
}  // namespace probft::core
