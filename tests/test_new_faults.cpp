// Unit + small-n integration tests for the churn/recovery, asymmetric
// partition and reordering-adversary faults (ISSUE 2).
//
// All three are benign for the paper's claims: churn victims recover, the
// asymmetric partition heals at GST and the reordering adversary only
// stretches delays within a bound — so every protocol must keep BOTH
// agreement and termination under them.
#include <gtest/gtest.h>

#include "sim/byzantine.hpp"
#include "sim/scenario.hpp"

namespace probft::sim {
namespace {

ScenarioSpec small_base() {
  ScenarioSpec base = conformance_base_spec();
  base.n = 8;
  base.f = 1;
  return base;
}

// ---- ChurnPlan ----

TEST(ChurnPlan, DeterministicFromSeed) {
  const auto a = ChurnPlan::make(16, 3, /*seed=*/42, 0, 400'000);
  const auto b = ChurnPlan::make(16, 3, /*seed=*/42, 0, 400'000);
  ASSERT_EQ(a.outages.size(), 3U);
  ASSERT_EQ(b.outages.size(), 3U);
  for (std::size_t i = 0; i < a.outages.size(); ++i) {
    EXPECT_EQ(a.outages[i].replica, b.outages[i].replica);
    EXPECT_EQ(a.outages[i].down_from, b.outages[i].down_from);
    EXPECT_EQ(a.outages[i].up_at, b.outages[i].up_at);
  }
}

TEST(ChurnPlan, SeedsDrawDifferentSchedules) {
  const auto a = ChurnPlan::make(64, 8, 1, 0, 400'000);
  const auto b = ChurnPlan::make(64, 8, 2, 0, 400'000);
  bool differs = false;
  for (std::size_t i = 0; i < a.outages.size(); ++i) {
    differs = differs || a.outages[i].replica != b.outages[i].replica ||
              a.outages[i].down_from != b.outages[i].down_from;
  }
  EXPECT_TRUE(differs);
}

TEST(ChurnPlan, WindowsAreWellFormedAndQueryable) {
  const TimePoint latest = 400'000;
  const auto plan = ChurnPlan::make(16, 3, 7, 0, latest);
  ASSERT_EQ(plan.outages.size(), 3U);
  for (const auto& outage : plan.outages) {
    EXPECT_GE(outage.replica, 1U);
    EXPECT_LE(outage.replica, 16U);
    EXPECT_LT(outage.down_from, outage.up_at);
    EXPECT_LE(outage.up_at, latest);
    // is_down agrees with the window bounds (half-open interval).
    EXPECT_TRUE(plan.is_down(outage.replica, outage.down_from));
    EXPECT_TRUE(plan.is_down(outage.replica, outage.up_at - 1));
    EXPECT_FALSE(plan.is_down(outage.replica, outage.up_at));
  }
  // Non-victims and out-of-range ids are never down.
  EXPECT_FALSE(plan.is_down(0, 100));
  EXPECT_FALSE(plan.is_down(999, 100));
  // Every victim recovers: nobody is down at/after `latest`.
  for (ReplicaId id = 1; id <= 16; ++id) {
    EXPECT_FALSE(plan.is_down(id, latest));
  }
}

TEST(ChurnPlan, VictimCountClampsToN) {
  const auto plan = ChurnPlan::make(4, 100, 1, 0, 400'000);
  EXPECT_EQ(plan.outages.size(), 4U);
  const auto empty = ChurnPlan::make(8, 0, 1, 0, 400'000);
  EXPECT_TRUE(empty.outages.empty());
  EXPECT_FALSE(empty.is_down(1, 100));
}

// ---- spec derivation ----

TEST(NewFaults, ApplicabilityAndNames) {
  ScenarioSpec spec = small_base();

  spec.fault = Fault::kChurnRecovery;
  EXPECT_TRUE(fault_applicable(spec));
  spec.f = 0;
  EXPECT_FALSE(fault_applicable(spec));  // churn victims come from f
  spec.f = 1;

  spec.fault = Fault::kAsymmetricPartition;
  EXPECT_TRUE(fault_applicable(spec));

  spec.fault = Fault::kReorderAdversary;
  EXPECT_TRUE(fault_applicable(spec));

  // All three are benign: termination stays asserted.
  EXPECT_TRUE(fault_expects_termination(Fault::kChurnRecovery));
  EXPECT_TRUE(fault_expects_termination(Fault::kAsymmetricPartition));
  EXPECT_TRUE(fault_expects_termination(Fault::kReorderAdversary));

  // Name round-trips (the CLI spellings).
  for (const Fault fault : {Fault::kChurnRecovery,
                            Fault::kAsymmetricPartition,
                            Fault::kReorderAdversary}) {
    Fault parsed{};
    EXPECT_TRUE(fault_from_string(to_string(fault), parsed));
    EXPECT_EQ(parsed, fault);
  }
}

TEST(NewFaults, ClusterConfigDerivation) {
  ScenarioSpec spec = small_base();

  // Reorder: realized as latency-model knobs, everyone honest.
  spec.fault = Fault::kReorderAdversary;
  auto cfg = make_cluster_config(spec, 1);
  EXPECT_GT(cfg.latency.reorder_prob, 0.0);
  EXPECT_GT(cfg.latency.reorder_delay_max, 0U);
  for (const auto behavior : cfg.behaviors) {
    EXPECT_EQ(behavior, Behavior::kHonest);
  }

  // Asymmetric partition: needs a healing point (GST forced on).
  spec.fault = Fault::kAsymmetricPartition;
  cfg = make_cluster_config(spec, 1);
  EXPECT_GT(cfg.latency.gst, 0U);
  for (const auto behavior : cfg.behaviors) {
    EXPECT_EQ(behavior, Behavior::kHonest);
  }

  // Churn: honest behaviors; the outage lives in the network filter.
  spec.fault = Fault::kChurnRecovery;
  cfg = make_cluster_config(spec, 1);
  for (const auto behavior : cfg.behaviors) {
    EXPECT_EQ(behavior, Behavior::kHonest);
  }
}

// ---- small-n integration: agreement AND termination per protocol ----

class NewFaultConformance : public ::testing::TestWithParam<Fault> {};

TEST_P(NewFaultConformance, AllProtocolsTerminateWithAgreement) {
  ScenarioSpec spec = small_base();
  spec.fault = GetParam();
  for (const Protocol protocol : all_protocols()) {
    spec.protocol = protocol;
    if (!fault_applicable(spec)) continue;
    for (const std::uint64_t seed : {1ULL, 2ULL}) {
      const ScenarioOutcome outcome = run_scenario(spec, seed);
      EXPECT_TRUE(outcome.agreement)
          << scenario_name(spec) << " seed " << seed;
      EXPECT_TRUE(outcome.terminated)
          << scenario_name(spec) << " seed " << seed << ": "
          << outcome.decided << "/" << outcome.correct << " decided";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Faults, NewFaultConformance,
                         ::testing::Values(Fault::kChurnRecovery,
                                           Fault::kAsymmetricPartition,
                                           Fault::kReorderAdversary),
                         [](const auto& info) {
                           switch (info.param) {
                             case Fault::kChurnRecovery: return "Churn";
                             case Fault::kAsymmetricPartition:
                               return "AsymPartition";
                             default: return "Reorder";
                           }
                         });

// The churn filter must actually drop traffic: a run whose victim windows
// overlap the decision phase reports dropped messages in the stats, which
// shows up as the same sends but a transcript that differs from happy.
TEST(NewFaults, ChurnActuallyPerturbsTheRun) {
  ScenarioSpec happy = small_base();
  ScenarioSpec churn = small_base();
  churn.fault = Fault::kChurnRecovery;

  bool any_difference = false;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const auto a = run_scenario(happy, seed);
    const auto b = run_scenario(churn, seed);
    any_difference =
        any_difference || a.transcript != b.transcript ||
        a.messages != b.messages || a.last_decision_at != b.last_decision_at;
  }
  EXPECT_TRUE(any_difference)
      << "churn windows never perturbed any of 8 seeds";
}

// ---- adaptive leader corruption (ISSUE 3) ----

TEST(AdaptiveLeader, CorruptsOnLeadershipTagAndSilencesForever) {
  AdaptiveLeaderAdversary adversary(/*n=*/8, /*budget=*/2,
                                    /*leadership_tags=*/{1});
  // Ordinary traffic from an uncorrupted replica passes.
  EXPECT_FALSE(adversary.should_drop(3, /*tag=*/2));
  EXPECT_EQ(adversary.corrupted_count(), 0U);

  // The first propose-tagged message corrupts its sender and is dropped.
  EXPECT_TRUE(adversary.should_drop(1, /*tag=*/1));
  EXPECT_TRUE(adversary.is_corrupted(1));
  EXPECT_EQ(adversary.corrupted_count(), 1U);

  // From then on EVERYTHING the victim sends is dropped (it is silenced),
  // while other replicas' non-leadership traffic still flows.
  EXPECT_TRUE(adversary.should_drop(1, /*tag=*/2));
  EXPECT_TRUE(adversary.should_drop(1, /*tag=*/5));
  EXPECT_FALSE(adversary.should_drop(4, /*tag=*/2));
}

TEST(AdaptiveLeader, BudgetBoundsTheCorruptions) {
  AdaptiveLeaderAdversary adversary(8, /*budget=*/2, {1});
  EXPECT_TRUE(adversary.should_drop(1, 1));   // view-1 leader: corrupted
  EXPECT_TRUE(adversary.should_drop(2, 1));   // view-2 leader: corrupted
  EXPECT_FALSE(adversary.should_drop(3, 1));  // budget exhausted: passes
  EXPECT_EQ(adversary.corrupted_count(), 2U);
  EXPECT_FALSE(adversary.is_corrupted(3));
  // Out-of-range senders never match bookkeeping.
  EXPECT_FALSE(adversary.should_drop(0, 1));
  EXPECT_FALSE(adversary.should_drop(999, 1));
}

TEST(AdaptiveLeader, SpecDerivationIsNonBenign) {
  ScenarioSpec spec = small_base();
  spec.fault = Fault::kAdaptiveLeader;
  EXPECT_TRUE(fault_applicable(spec));
  spec.f = 0;
  EXPECT_FALSE(fault_applicable(spec));  // corruption budget comes from f
  spec.f = 1;

  // Non-benign: the matrix asserts agreement only (a corrupted replica
  // may never decide).
  EXPECT_FALSE(fault_expects_termination(Fault::kAdaptiveLeader));

  Fault parsed{};
  EXPECT_TRUE(fault_from_string("adaptive-leader", parsed));
  EXPECT_EQ(parsed, Fault::kAdaptiveLeader);

  // Everyone starts honest; corruption happens adaptively at the network.
  const auto cfg = make_cluster_config(spec, 1);
  for (const auto behavior : cfg.behaviors) {
    EXPECT_EQ(behavior, Behavior::kHonest);
  }
}

TEST(AdaptiveLeader, AgreementHoldsAndViewsAdvancePastTheBudget) {
  ScenarioSpec spec = small_base();  // n = 8, f = 1
  spec.fault = Fault::kAdaptiveLeader;
  spec.f = 2;
  for (const Protocol protocol : all_protocols()) {
    spec.protocol = protocol;
    for (const std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
      const ScenarioOutcome outcome = run_scenario(spec, seed);
      EXPECT_TRUE(outcome.agreement)
          << scenario_name(spec) << " seed " << seed;
      // Leaders of the first f views were struck down as they rotated in,
      // so whoever decided did it in a later view.
      if (outcome.decided > 0) {
        EXPECT_GE(outcome.max_view, spec.f + 1)
            << scenario_name(spec) << " seed " << seed;
      }
      // The surviving majority still gets through (liveness holds for the
      // uncorrupted replicas even though the spec does not assert it).
      EXPECT_GE(outcome.decided, outcome.correct - spec.f)
          << scenario_name(spec) << " seed " << seed;
    }
  }
}

}  // namespace
}  // namespace probft::sim
