#include "quorum/analysis.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace probft::quorum {
namespace {

Params paper_point(std::int64_t n, double f_ratio, double o) {
  Params p;
  p.n = n;
  p.f = static_cast<std::int64_t>(n * f_ratio);
  p.o = o;
  p.l = 2.0;
  return p;
}

TEST(Params, DerivedSizes) {
  Params p = paper_point(100, 0.2, 1.7);
  EXPECT_EQ(p.q(), 20);          // 2 * sqrt(100)
  EXPECT_EQ(p.s(), 34);          // 1.7 * 20
  EXPECT_EQ(p.det_quorum(), 61); // ceil((100+20+1)/2)
  EXPECT_TRUE(p.valid());
}

TEST(Params, PaperExampleL2N100) {
  // §1: "for l = 2 and n = 100, a replica can make progress after receiving
  // 20 matching messages ... compared with the 67 messages in PBFT."
  Params p;
  p.n = 100;
  p.f = 33;
  p.l = 2.0;
  p.o = 1.7;
  EXPECT_EQ(p.q(), 20);
  EXPECT_EQ(p.det_quorum(), 67);
}

TEST(Params, InvalidConfigsDetected) {
  Params p = paper_point(100, 0.2, 1.7);
  p.f = 34;  // 3f >= n
  EXPECT_FALSE(p.valid());
  p = paper_point(100, 0.2, 0.9);  // o <= 1
  EXPECT_FALSE(p.valid());
  p = paper_point(4, 0.0, 1.7);
  p.l = 3.0;  // q = 6 > n
  EXPECT_FALSE(p.valid());
}

TEST(QuorumFormation, BoundBelowExact) {
  // The Chernoff-style Corollary 2 bound must lower-bound the exact
  // binomial probability.
  for (double o : {1.6, 1.7, 1.8}) {
    for (std::int64_t n : {100, 200, 300}) {
      Params p = paper_point(n, 0.2, o);
      EXPECT_LE(quorum_formation_bound(p), quorum_formation_exact(p) + 1e-12)
          << "n=" << n << " o=" << o;
    }
  }
}

TEST(QuorumFormation, ExactIncreasesWithO) {
  Params lo = paper_point(100, 0.2, 1.6);
  Params hi = paper_point(100, 0.2, 1.8);
  EXPECT_LT(quorum_formation_exact(lo), quorum_formation_exact(hi));
}

TEST(QuorumFormation, ExactDecreasesWithF) {
  Params lo = paper_point(100, 0.1, 1.7);
  Params hi = paper_point(100, 0.3, 1.7);
  EXPECT_GT(quorum_formation_exact(lo), quorum_formation_exact(hi));
}

TEST(QuorumFormation, MonotoneInSenders) {
  // Theorem 6: more senders => higher quorum-formation probability.
  Params p = paper_point(100, 0.2, 1.7);
  double prev = 0;
  for (std::int64_t r = 40; r <= 100; r += 10) {
    const double cur = quorum_formation_exact_r(p, r);
    EXPECT_GE(cur, prev - 1e-12) << "r=" << r;
    prev = cur;
  }
}

TEST(QuorumFormation, BoundRequiresPrecondition) {
  // c <= 1 (n >= o(n-f)) makes the bound vacuous: must return 0.
  Params p = paper_point(100, 0.45, 1.7);  // invalid f but bound math only
  p.f = 45;
  EXPECT_EQ(quorum_formation_bound(p), 0.0);
}

TEST(Termination, ExactRatesAreProbabilities) {
  for (std::int64_t n : {100, 200, 300}) {
    Params p = paper_point(n, 0.2, 1.7);
    const double per = replica_termination_exact(p);
    EXPECT_GE(per, 0.0);
    EXPECT_LE(per, 1.0);
    EXPECT_LE(all_termination_exact(p), per + 1e-12);
  }
}

TEST(Termination, ImprovesWithN) {
  // Figure 5 top-right: termination probability grows with n.
  Params small = paper_point(100, 0.2, 1.7);
  Params large = paper_point(300, 0.2, 1.7);
  EXPECT_LT(replica_termination_exact(small),
            replica_termination_exact(large));
}

TEST(Termination, DegradesWithF) {
  // Figure 5 bottom-right: termination probability shrinks as f/n grows.
  Params lo = paper_point(100, 0.1, 1.7);
  Params hi = paper_point(100, 0.3, 1.7);
  EXPECT_GT(replica_termination_exact(lo), replica_termination_exact(hi));
}

TEST(Termination, BoundBelowExactWhenMeaningful) {
  Params p = paper_point(300, 0.2, 1.8);
  const double bound = replica_termination_bound(p);
  if (bound > 0.0) {
    EXPECT_LE(bound, replica_termination_exact(p) + 0.05);
  }
}

TEST(Agreement, ViolationRatesAreTiny) {
  // Figure 5 left panels: agreement probability ~ 1 for paper parameters.
  for (std::int64_t n : {100, 200, 300}) {
    Params p = paper_point(n, 0.2, 1.7);
    EXPECT_LT(view_disagreement_exact(p), 1e-3) << "n=" << n;
    EXPECT_GT(view_agreement_exact(p), 0.999) << "n=" << n;
  }
}

TEST(Agreement, ViolationShrinksWithN) {
  Params small = paper_point(100, 0.2, 1.7);
  Params large = paper_point(300, 0.2, 1.7);
  EXPECT_GT(view_disagreement_exact(small), view_disagreement_exact(large));
}

TEST(Agreement, ViolationGrowsWithF) {
  Params lo = paper_point(100, 0.1, 1.7);
  Params hi = paper_point(100, 0.3, 1.7);
  EXPECT_LT(view_disagreement_exact(lo), view_disagreement_exact(hi));
}

TEST(Agreement, BoundIsAProbability) {
  for (std::int64_t n : {100, 200, 300}) {
    Params p = paper_point(n, 0.2, 1.6);
    const double b = view_disagreement_bound(p);
    EXPECT_GE(b, 0.0);
    EXPECT_LE(b, 1.0);
    EXPECT_NEAR(view_agreement_bound(p), 1.0 - b, 1e-12);
  }
}

TEST(CrossView, BoundIsAProbabilityAndShrinksWithN) {
  Params small = paper_point(100, 0.2, 1.2);
  Params large = paper_point(400, 0.2, 1.2);
  const double b_small = cross_view_violation_bound(small);
  const double b_large = cross_view_violation_bound(large);
  EXPECT_GE(b_small, 0.0);
  EXPECT_LE(b_small, 1.0);
  EXPECT_LE(b_large, b_small + 1e-12);
}

TEST(CrossView, DecideWithFewPreparersIsUnlikely) {
  // Lemma 6 mechanism: deciding with r = q preparers is far less likely
  // than with all n-f.
  Params p = paper_point(100, 0.2, 1.7);
  EXPECT_LT(decide_with_r_prepared_exact(p, p.q()),
            decide_with_r_prepared_exact(p, p.n - p.f));
}

TEST(Messages, Figure1bShape) {
  // PBFT quadratic, ProBFT ~ n^1.5, HotStuff linear; at n = 400 the paper's
  // figure shows PBFT ~ 320k messages.
  EXPECT_NEAR(messages_pbft(400), 319'599.0, 1.0);
  Params p = paper_point(400, 0.2, 1.7);
  const double probft = messages_probft(p);
  EXPECT_GT(probft, messages_hotstuff(400));
  EXPECT_LT(probft, messages_pbft(400));
}

TEST(Messages, ProbftFractionOfPbft) {
  // §5: with o = 1.7, ProBFT uses a small fraction (paper: 18-25% over its
  // plotted range) of PBFT's messages; the ratio improves with n.
  Params p100 = paper_point(100, 0.2, 1.7);
  Params p400 = paper_point(400, 0.2, 1.7);
  const double r100 = messages_probft(p100) / messages_pbft(100);
  const double r400 = messages_probft(p400) / messages_pbft(400);
  EXPECT_LT(r400, r100);
  EXPECT_LT(r400, 0.25);
  EXPECT_GT(r400, 0.10);
}

TEST(Messages, GrowthOrders) {
  // Doubling n roughly quadruples PBFT, ~2.8x ProBFT, 2x HotStuff.
  const double pbft_ratio = messages_pbft(400) / messages_pbft(200);
  EXPECT_NEAR(pbft_ratio, 4.0, 0.1);
  Params p200 = paper_point(200, 0.2, 1.7);
  Params p400 = paper_point(400, 0.2, 1.7);
  const double probft_ratio = messages_probft(p400) / messages_probft(p200);
  EXPECT_NEAR(probft_ratio, std::pow(2.0, 1.5), 0.25);
  EXPECT_NEAR(messages_hotstuff(400) / messages_hotstuff(200), 2.0, 0.05);
}

TEST(Steps, GoodCaseLatency) {
  // Figure 1a: PBFT and ProBFT share the optimal 3 steps; HotStuff needs
  // more.
  EXPECT_EQ(steps_pbft(), 3);
  EXPECT_EQ(steps_probft(), 3);
  EXPECT_GT(steps_hotstuff(), 3);
}


TEST(Theorem2, MaxORangeMatchesPaperConstant) {
  // Paper: o in [1, 3.732 (n/(n-f))]; 2 + sqrt(3) = 3.7320...
  EXPECT_NEAR(theorem2_max_o(100, 0), 3.732, 0.001);
  EXPECT_NEAR(theorem2_max_o(100, 20), 3.732 * 100.0 / 80.0, 0.002);
  // More faults widen the admissible o range upper end.
  EXPECT_GT(theorem2_max_o(100, 30), theorem2_max_o(100, 10));
}

}  // namespace
}  // namespace probft::quorum
