// Write-ahead log unit tests: framing, recovery, torn-tail truncation and
// the crash-safe checkpoint installation ordering.
#include "store/wal.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "common/bytes.hpp"

namespace probft::store {
namespace {

namespace fs = std::filesystem;

class WalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("probft-wal-test-" +
            std::to_string(::getpid()) + "-" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  [[nodiscard]] WalOptions opts() const { return WalOptions{dir_.string(), false}; }

  fs::path dir_;
};

TEST_F(WalTest, Crc32KnownVector) {
  // The classic IEEE CRC-32 check value.
  const Bytes data = to_bytes("123456789");
  EXPECT_EQ(crc32(ByteSpan(data.data(), data.size())), 0xCBF43926u);
  EXPECT_EQ(crc32(ByteSpan{}), 0u);
}

TEST_F(WalTest, EmptyDirRecoversEmpty) {
  Wal wal(opts());
  EXPECT_FALSE(wal.snapshot().has_value());
  EXPECT_EQ(wal.mark(), 0u);
  EXPECT_TRUE(wal.records().empty());
}

TEST_F(WalTest, AppendsSurviveReopen) {
  {
    Wal wal(opts());
    wal.append(to_bytes("alpha"));
    wal.append(to_bytes("beta"));
    wal.sync();
  }
  Wal wal(opts());
  ASSERT_EQ(wal.records().size(), 2u);
  EXPECT_EQ(wal.records()[0], to_bytes("alpha"));
  EXPECT_EQ(wal.records()[1], to_bytes("beta"));
  EXPECT_EQ(wal.mark(), 0u);
}

TEST_F(WalTest, CheckpointReplacesPrefixAndKeepsTail) {
  {
    Wal wal(opts());
    wal.append(to_bytes("old-1"));
    wal.append(to_bytes("old-2"));
    wal.checkpoint(8, to_bytes("snap@8"), {to_bytes("tail-8")});
    wal.append(to_bytes("tail-9"));
  }
  Wal wal(opts());
  ASSERT_TRUE(wal.snapshot().has_value());
  EXPECT_EQ(*wal.snapshot(), to_bytes("snap@8"));
  EXPECT_EQ(wal.mark(), 8u);
  ASSERT_EQ(wal.records().size(), 2u);
  EXPECT_EQ(wal.records()[0], to_bytes("tail-8"));
  EXPECT_EQ(wal.records()[1], to_bytes("tail-9"));
  // Older segments are gone: exactly one ckpt and one log file remain.
  std::size_t files = 0;
  for (const auto& e : fs::directory_iterator(dir_)) {
    (void)e;
    ++files;
  }
  EXPECT_EQ(files, 2u);
}

TEST_F(WalTest, TornTailIsTruncatedNotFatal) {
  {
    Wal wal(opts());
    wal.append(to_bytes("good"));
    wal.sync();
  }
  // Simulate a crash mid-write: append garbage (a partial frame) to the
  // live segment.
  {
    std::ofstream out(dir_ / "log-0.dat",
                      std::ios::binary | std::ios::app);
    const char torn[] = {0x20, 0x00, 0x00, 0x00, 0x01, 0x02};
    out.write(torn, sizeof(torn));
  }
  Wal wal(opts());
  ASSERT_EQ(wal.records().size(), 1u);
  EXPECT_EQ(wal.records()[0], to_bytes("good"));
  // The torn bytes were physically truncated, so the next append starts
  // at a valid frame boundary and a re-open still sees both records.
  wal.append(to_bytes("after"));
  wal.sync();
  Wal again(opts());
  ASSERT_EQ(again.records().size(), 2u);
  EXPECT_EQ(again.records()[1], to_bytes("after"));
}

TEST_F(WalTest, CorruptedRecordStopsReplayAtLastValidPrefix) {
  {
    Wal wal(opts());
    wal.append(to_bytes("keep"));
    wal.append(to_bytes("casualty"));
    wal.sync();
  }
  // Flip one payload byte of the last record: its CRC no longer matches,
  // so recovery must cut the log just before it.
  {
    std::fstream f(dir_ / "log-0.dat",
                   std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(-1, std::ios::end);
    f.put('X');
  }
  Wal wal(opts());
  ASSERT_EQ(wal.records().size(), 1u);
  EXPECT_EQ(wal.records()[0], to_bytes("keep"));
}

TEST_F(WalTest, CorruptCheckpointFallsBackToOlderOne) {
  {
    Wal wal(opts());
    wal.checkpoint(4, to_bytes("snap@4"), {});
    wal.append(to_bytes("r4"));
    wal.checkpoint(8, to_bytes("snap@8"), {});
  }
  // Corrupt the newest checkpoint file; recovery must fall back to the
  // older mark... but installation already deleted it. Re-create the
  // older pair the way a crash between steps would leave them: write a
  // fresh WAL stack and corrupt only the newest snapshot.
  fs::remove_all(dir_);
  {
    Wal wal(opts());
    wal.checkpoint(4, to_bytes("snap@4"), {to_bytes("r4")});
  }
  // Hand-install a "newer" checkpoint whose snapshot record is torn,
  // as if the process died between writing ckpt-8.tmp and completing it.
  {
    std::ofstream out(dir_ / "ckpt-8.dat", std::ios::binary);
    out.write("\x10\x00\x00\x00", 4);  // length with no payload: torn
  }
  Wal wal(opts());
  ASSERT_TRUE(wal.snapshot().has_value());
  EXPECT_EQ(*wal.snapshot(), to_bytes("snap@4"));
  EXPECT_EQ(wal.mark(), 4u);
  ASSERT_EQ(wal.records().size(), 1u);
  EXPECT_EQ(wal.records()[0], to_bytes("r4"));
}

TEST_F(WalTest, LargeRecordRoundTrip) {
  Bytes big(1 << 18);
  for (std::size_t i = 0; i < big.size(); ++i) {
    big[i] = static_cast<std::uint8_t>(i * 7 + 13);
  }
  {
    Wal wal(opts());
    wal.append(big);
    wal.sync();
  }
  Wal wal(opts());
  ASSERT_EQ(wal.records().size(), 1u);
  EXPECT_EQ(wal.records()[0], big);
}

}  // namespace
}  // namespace probft::store
