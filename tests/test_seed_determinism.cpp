// Seed-determinism regression tests: the simulator contract is that a
// (ClusterConfig seed, scenario) pair replays bit-for-bit. The canonical
// decision transcript (replica, view, value, timestamp per decision, in
// decision order) must therefore be identical across two independent runs
// — for every protocol, under benign faults and under attack.
#include <gtest/gtest.h>

#include <algorithm>

#include "sim/scenario.hpp"

namespace probft::sim {
namespace {

ScenarioSpec base_spec(Protocol protocol, Fault fault) {
  ScenarioSpec spec = conformance_base_spec();
  spec.protocol = protocol;
  spec.fault = fault;
  return spec;
}

TEST(SeedDeterminism, SameSeedSameTranscriptAllProtocols) {
  for (const Protocol protocol : all_protocols()) {
    const ScenarioSpec spec = base_spec(protocol, Fault::kNone);
    for (const std::uint64_t seed : {1ULL, 9ULL}) {
      const auto first = run_scenario(spec, seed);
      const auto second = run_scenario(spec, seed);
      ASSERT_TRUE(first.terminated)
          << scenario_name(spec) << " seed " << seed;
      ASSERT_FALSE(first.transcript.empty()) << scenario_name(spec);
      EXPECT_EQ(first.transcript, second.transcript)
          << scenario_name(spec) << " seed " << seed;
    }
  }
}

TEST(SeedDeterminism, SameSeedSameTranscriptUnderFaults) {
  for (const Protocol protocol : all_protocols()) {
    for (const Fault fault :
         {Fault::kSilentLeader, Fault::kPartitionUntilGst}) {
      const ScenarioSpec spec = base_spec(protocol, fault);
      const auto first = run_scenario(spec, 3);
      const auto second = run_scenario(spec, 3);
      EXPECT_EQ(first.transcript, second.transcript) << scenario_name(spec);
      EXPECT_EQ(first.messages, second.messages) << scenario_name(spec);
      EXPECT_EQ(first.bytes, second.bytes) << scenario_name(spec);
    }
  }
}

TEST(SeedDeterminism, DifferentSeedsDiverge) {
  // Different seeds re-key every replica and re-draw every network delay;
  // at least the decision timestamps must differ.
  for (const Protocol protocol : all_protocols()) {
    const ScenarioSpec spec = base_spec(protocol, Fault::kNone);
    const auto a = run_scenario(spec, 1);
    const auto b = run_scenario(spec, 2);
    ASSERT_TRUE(a.terminated && b.terminated) << scenario_name(spec);
    EXPECT_NE(a.transcript, b.transcript) << scenario_name(spec);
  }
}

TEST(SeedDeterminism, TranscriptCoversEveryCorrectReplica) {
  const ScenarioSpec spec = base_spec(Protocol::kProbft, Fault::kNone);
  const auto outcome = run_scenario(spec, 5);
  ASSERT_TRUE(outcome.terminated);
  // One transcript line per decision, every correct replica decided once.
  const auto lines = static_cast<std::size_t>(
      std::count(outcome.transcript.begin(), outcome.transcript.end(), '\n'));
  EXPECT_EQ(lines, outcome.correct);
}

}  // namespace
}  // namespace probft::sim
