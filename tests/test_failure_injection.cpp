// Failure injection on the full ProBFT protocol: partitions, message
// duplication, and hostile pre-GST scheduling. Safety must hold in every
// scenario; liveness must resume once the fault clears / GST passes.
#include <gtest/gtest.h>

#include "sim/cluster.hpp"

namespace probft::sim {
namespace {

ClusterConfig base_config(std::uint32_t n, std::uint64_t seed) {
  ClusterConfig cfg;
  cfg.protocol = Protocol::kProbft;
  cfg.n = n;
  cfg.f = 0;
  cfg.seed = seed;
  cfg.sync.base_timeout = 80'000;
  cfg.latency.min_delay = 500;
  cfg.latency.max_delay_post = 4'000;
  return cfg;
}

TEST(FailureInjection, MessageDuplicationIsHarmless) {
  // Every message duplicated with 50% probability: quorum counting is
  // per-sender, so duplicates must not create phantom quorums or double
  // decisions.
  auto cfg = base_config(12, 5);
  cfg.latency.duplicate_prob = 0.5;
  Cluster cluster(cfg);
  cluster.start();
  EXPECT_TRUE(cluster.run_to_completion());
  EXPECT_TRUE(cluster.agreement_ok());
  std::set<ReplicaId> deciders;
  for (const auto& d : cluster.decisions()) {
    EXPECT_TRUE(deciders.insert(d.replica).second);
  }
}

TEST(FailureInjection, FullDuplicationStillOneDecisionEach) {
  auto cfg = base_config(8, 6);
  cfg.latency.duplicate_prob = 1.0;
  Cluster cluster(cfg);
  cluster.start();
  EXPECT_TRUE(cluster.run_to_completion());
  EXPECT_EQ(cluster.decisions().size(), 8U);
  EXPECT_TRUE(cluster.agreement_ok());
}

TEST(FailureInjection, TemporaryPartitionHealsAndDecides) {
  // Replicas {1..4} and {5..10} are partitioned for the first 200 ms (the
  // filter drops cross-partition traffic); after healing, consensus must
  // complete with agreement.
  auto cfg = base_config(10, 7);
  cfg.l = 1.5;
  Cluster cluster(cfg);
  auto& net = cluster.network();
  auto& sim = cluster.simulator();
  net.set_filter([&sim](ReplicaId from, ReplicaId to, std::uint8_t) {
    if (sim.now() >= 200'000) return false;  // healed
    const bool from_a = from <= 4, to_a = to <= 4;
    return from_a != to_a;
  });
  cluster.start();
  EXPECT_TRUE(cluster.run_to_completion(/*deadline=*/300'000'000));
  EXPECT_TRUE(cluster.agreement_ok());
}

TEST(FailureInjection, MinorityPartitionCannotDecideAlone) {
  // Isolate replicas {1, 2, 3} of 12 (including the view-1 leader) for a
  // long window; with l = 2 -> q = 7 > 3 no quorum can form inside the
  // minority side.
  auto cfg = base_config(12, 8);
  Cluster cluster(cfg);
  auto& net = cluster.network();
  net.set_filter([](ReplicaId from, ReplicaId to, std::uint8_t) {
    const bool from_minority = from <= 3, to_minority = to <= 3;
    return from_minority != to_minority;
  });
  cluster.start();
  cluster.simulator().run_until(500'000);
  for (ReplicaId id = 1; id <= 3; ++id) {
    const auto* replica = cluster.probft(id);
    ASSERT_NE(replica, nullptr);
    EXPECT_FALSE(replica->decided()) << "minority replica " << id;
  }
  // Heal and finish.
  net.clear_filter();
  EXPECT_TRUE(cluster.run_to_completion(/*deadline=*/300'000'000));
  EXPECT_TRUE(cluster.agreement_ok());
}

TEST(FailureInjection, LossyPreGstPeriodThenRecovery) {
  // Before GST, 40% of messages are held back until after GST and the rest
  // take up to 150 ms; ProBFT must still terminate after GST with
  // agreement intact.
  auto cfg = base_config(10, 9);
  cfg.latency.gst = 400'000;
  cfg.latency.max_delay_pre = 150'000;
  cfg.latency.hold_until_gst_prob = 0.4;
  Cluster cluster(cfg);
  cluster.start();
  EXPECT_TRUE(cluster.run_to_completion(/*deadline=*/400'000'000));
  EXPECT_TRUE(cluster.agreement_ok());
}

TEST(FailureInjection, DuplicationPlusAttackStillSafe) {
  // Equivocation attack combined with duplicated messages (duplicates make
  // conflicting evidence spread faster, never slower).
  for (std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
    auto cfg = base_config(13, seed);
    cfg.f = 4;
    cfg.l = 1.5;
    cfg.latency.duplicate_prob = 0.4;
    cfg.split = SplitStrategy::kOptimal;
    cfg.behaviors.assign(13, Behavior::kHonest);
    cfg.behaviors[0] = Behavior::kEquivocateLeader;
    for (int i = 1; i < 4; ++i) {
      cfg.behaviors[i] = Behavior::kColludeFollower;
    }
    Cluster cluster(cfg);
    cluster.start();
    cluster.run_to_completion(/*deadline=*/120'000'000);
    EXPECT_TRUE(cluster.agreement_ok()) << "seed " << seed;
  }
}

TEST(FailureInjection, DropAllPrepareFromOneReplica) {
  // A targeted outage: replica 5's Prepare messages all vanish. With n=12
  // and q = ceil(1.5*sqrt(12)) = 6 <= 11 remaining senders, consensus
  // still completes.
  auto cfg = base_config(12, 10);
  cfg.l = 1.5;
  Cluster cluster(cfg);
  cluster.network().set_filter([](ReplicaId from, ReplicaId, std::uint8_t tag) {
    return from == 5 && tag == core::tag_byte(core::MsgTag::kPrepare);
  });
  cluster.start();
  EXPECT_TRUE(cluster.run_to_completion(/*deadline=*/120'000'000));
  EXPECT_TRUE(cluster.agreement_ok());
}

TEST(FailureInjection, PbftSurvivesDuplication) {
  auto cfg = base_config(7, 11);
  cfg.protocol = Protocol::kPbft;
  cfg.f = 2;
  cfg.latency.duplicate_prob = 0.7;
  Cluster cluster(cfg);
  cluster.start();
  EXPECT_TRUE(cluster.run_to_completion());
  EXPECT_TRUE(cluster.agreement_ok());
}

TEST(FailureInjection, HotStuffSurvivesDuplication) {
  auto cfg = base_config(7, 12);
  cfg.protocol = Protocol::kHotStuff;
  cfg.f = 2;
  cfg.sync.base_timeout = 200'000;
  cfg.latency.duplicate_prob = 0.7;
  Cluster cluster(cfg);
  cluster.start();
  EXPECT_TRUE(cluster.run_to_completion());
  EXPECT_TRUE(cluster.agreement_ok());
}

TEST(FailureInjection, NetworkDuplicationStats) {
  // Duplication inflates deliveries, not sends.
  net::Simulator sim;
  net::LatencyConfig cfg;
  cfg.duplicate_prob = 1.0;
  net::Network net(sim, 2, 1, cfg);
  int received = 0;
  net.register_handler(2, [&](ReplicaId, std::uint8_t, const Bytes&) {
    ++received;
  });
  for (int i = 0; i < 10; ++i) net.send(1, 2, 0, {});
  sim.run();
  EXPECT_EQ(net.stats().sends, 10U);
  EXPECT_EQ(received, 20);
}

}  // namespace
}  // namespace probft::sim
