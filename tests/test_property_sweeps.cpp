// Parameterized property sweeps (TEST_P) across protocol configurations and
// seeds: safety must hold in EVERY run; liveness in every run with a
// correct leader after GST and honest-majority parameters.
#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "sim/cluster.hpp"
#include "sim/montecarlo.hpp"

namespace probft::sim {
namespace {

// ---------------------------------------------------------------------
// Sweep 1: happy-path liveness + agreement across (protocol, n, seed).
// ---------------------------------------------------------------------

using HappyParams = std::tuple<Protocol, std::uint32_t, std::uint64_t>;

std::string happy_name(const ::testing::TestParamInfo<HappyParams>& info) {
  const Protocol protocol = std::get<0>(info.param);
  const char* name = protocol == Protocol::kProbft ? "probft"
                     : protocol == Protocol::kPbft ? "pbft"
                                                   : "hotstuff";
  return std::string(name) + "_n" + std::to_string(std::get<1>(info.param)) +
         "_s" + std::to_string(std::get<2>(info.param));
}

class HappyPathSweep : public ::testing::TestWithParam<HappyParams> {};

TEST_P(HappyPathSweep, DecidesWithAgreement) {
  const auto [protocol, n, seed] = GetParam();
  ClusterConfig cfg;
  cfg.protocol = protocol;
  cfg.n = n;
  cfg.f = 0;
  cfg.seed = seed;
  cfg.latency.max_delay_post = 5'000;
  cfg.sync.base_timeout = 150'000;
  Cluster cluster(cfg);
  cluster.start();
  ASSERT_TRUE(cluster.run_to_completion()) << "n=" << n << " seed=" << seed;
  EXPECT_TRUE(cluster.agreement_ok());
  EXPECT_EQ(cluster.correct_decided_count(), n);
}

INSTANTIATE_TEST_SUITE_P(
    Protocols, HappyPathSweep,
    ::testing::Combine(::testing::Values(Protocol::kProbft, Protocol::kPbft,
                                         Protocol::kHotStuff),
                       ::testing::Values(7U, 13U, 21U),
                       ::testing::Values(1ULL, 2ULL, 3ULL)),
    happy_name);

// ---------------------------------------------------------------------
// Sweep 2: ProBFT agreement under the optimal split attack, many seeds.
// ---------------------------------------------------------------------

class AttackSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AttackSweep, NoDisagreementUnderOptimalSplit) {
  const std::uint64_t seed = GetParam();
  ClusterConfig cfg;
  cfg.protocol = Protocol::kProbft;
  cfg.n = 16;
  cfg.f = 5;
  cfg.l = 1.5;
  cfg.seed = seed;
  cfg.split = SplitStrategy::kOptimal;
  cfg.behaviors.assign(16, Behavior::kHonest);
  cfg.behaviors[0] = Behavior::kEquivocateLeader;
  for (int i = 1; i < 5; ++i) cfg.behaviors[i] = Behavior::kColludeFollower;
  Cluster cluster(cfg);
  cluster.start();
  cluster.run_to_completion(/*deadline=*/90'000'000);
  EXPECT_TRUE(cluster.agreement_ok()) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, AttackSweep,
                         ::testing::Range(std::uint64_t{1},
                                          std::uint64_t{26}));

// ---------------------------------------------------------------------
// Sweep 3: ProBFT liveness with f silent replicas across (n, f, seed).
// ---------------------------------------------------------------------

using SilentParams = std::tuple<std::uint32_t, std::uint32_t, std::uint64_t>;

std::string silent_name(const ::testing::TestParamInfo<SilentParams>& info) {
  return "n" + std::to_string(std::get<0>(info.param)) + "_f" +
         std::to_string(std::get<1>(info.param)) + "_s" +
         std::to_string(std::get<2>(info.param));
}

class SilentSweep : public ::testing::TestWithParam<SilentParams> {};

TEST_P(SilentSweep, LivenessDespiteSilentReplicas) {
  const auto [n, f, seed] = GetParam();
  ClusterConfig cfg;
  cfg.protocol = Protocol::kProbft;
  cfg.n = n;
  cfg.f = f;
  cfg.l = 1.2;  // keep q comfortably below n - f for small clusters
  cfg.seed = seed;
  cfg.sync.base_timeout = 150'000;
  cfg.behaviors.assign(n, Behavior::kHonest);
  for (std::uint32_t i = 0; i < f; ++i) {
    cfg.behaviors[n - 1 - i] = Behavior::kSilent;  // keep leader 1 honest
  }
  Cluster cluster(cfg);
  cluster.start();
  ASSERT_TRUE(cluster.run_to_completion(/*deadline=*/120'000'000))
      << "n=" << n << " f=" << f << " seed=" << seed;
  EXPECT_TRUE(cluster.agreement_ok());
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SilentSweep,
    ::testing::Combine(::testing::Values(10U, 16U), ::testing::Values(1U, 3U),
                       ::testing::Values(11ULL, 12ULL)),
    silent_name);

// ---------------------------------------------------------------------
// Sweep 4: analytic invariants across the full paper parameter grid.
// ---------------------------------------------------------------------

using GridParams = std::tuple<std::int64_t, double, double>;

std::string grid_name(const ::testing::TestParamInfo<GridParams>& info) {
  return "n" + std::to_string(std::get<0>(info.param)) + "_f" +
         std::to_string(static_cast<int>(std::get<1>(info.param) * 100)) +
         "_o" +
         std::to_string(static_cast<int>(std::get<2>(info.param) * 10));
}

class AnalysisSweep : public ::testing::TestWithParam<GridParams> {};

TEST_P(AnalysisSweep, BoundsAndExactsAreConsistent) {
  const auto [n, f_ratio, o] = GetParam();
  quorum::Params p;
  p.n = n;
  p.f = static_cast<std::int64_t>(n * f_ratio);
  p.o = o;
  p.l = 2.0;
  ASSERT_TRUE(p.valid());

  // All quantities are probabilities.
  for (double v :
       {quorum::quorum_formation_bound(p), quorum::quorum_formation_exact(p),
        quorum::replica_termination_exact(p),
        quorum::all_termination_exact(p), quorum::view_agreement_exact(p),
        quorum::view_disagreement_exact(p),
        quorum::cross_view_violation_bound(p)}) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
  }
  EXPECT_LE(quorum::quorum_formation_bound(p),
            quorum::quorum_formation_exact(p) + 1e-12);
  EXPECT_LE(quorum::all_termination_exact(p),
            quorum::replica_termination_exact(p) + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    PaperGrid, AnalysisSweep,
    ::testing::Combine(::testing::Values(100L, 150L, 200L, 250L, 300L),
                       ::testing::Values(0.1, 0.2, 0.3),
                       ::testing::Values(1.6, 1.7, 1.8)),
    grid_name);

// ---------------------------------------------------------------------
// Sweep 5: Monte-Carlo vs exact formula over a parameter grid.
// ---------------------------------------------------------------------

class McConsistencySweep : public ::testing::TestWithParam<GridParams> {};

TEST_P(McConsistencySweep, PrepareQuorumRateTracksBinomialTail) {
  const auto [n, f_ratio, o] = GetParam();
  quorum::Params p;
  p.n = n;
  p.f = static_cast<std::int64_t>(n * f_ratio);
  p.o = o;
  p.l = 2.0;
  const auto stats = mc_termination(p, 1500, 99);
  EXPECT_NEAR(stats.prepare_quorum_rate, quorum::quorum_formation_exact(p),
              0.05);
}

INSTANTIATE_TEST_SUITE_P(
    McGrid, McConsistencySweep,
    ::testing::Combine(::testing::Values(64L, 100L, 144L),
                       ::testing::Values(0.1, 0.25),
                       ::testing::Values(1.6, 1.8)),
    grid_name);


// ---------------------------------------------------------------------
// Sweep 6: full-protocol happy path across the paper's (o, l) grid.
// ---------------------------------------------------------------------

using OlParams = std::tuple<double, double, std::uint64_t>;

std::string ol_name(const ::testing::TestParamInfo<OlParams>& info) {
  return "o" + std::to_string(static_cast<int>(std::get<0>(info.param) * 10)) +
         "_l" + std::to_string(static_cast<int>(std::get<1>(info.param) * 10)) +
         "_s" + std::to_string(std::get<2>(info.param));
}

class OlGridSweep : public ::testing::TestWithParam<OlParams> {};

TEST_P(OlGridSweep, ProbftDecidesAcrossParameterGrid) {
  const auto [o, l, seed] = GetParam();
  ClusterConfig cfg;
  cfg.protocol = Protocol::kProbft;
  cfg.n = 25;
  cfg.f = 0;
  cfg.o = o;
  cfg.l = l;
  cfg.seed = seed;
  cfg.sync.base_timeout = 120'000;
  Cluster cluster(cfg);
  cluster.start();
  ASSERT_TRUE(cluster.run_to_completion(/*deadline=*/200'000'000))
      << "o=" << o << " l=" << l << " seed=" << seed;
  EXPECT_TRUE(cluster.agreement_ok());
  EXPECT_EQ(cluster.correct_decided_count(), 25U);
}

INSTANTIATE_TEST_SUITE_P(
    OlGrid, OlGridSweep,
    ::testing::Combine(::testing::Values(1.6, 1.7, 1.8),
                       ::testing::Values(1.5, 2.0),
                       ::testing::Values(1ULL, 2ULL)),
    ol_name);

}  // namespace
}  // namespace probft::sim
