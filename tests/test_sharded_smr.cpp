// Sharded SMR service (src/shard): S consensus groups multiplexed over
// one simulated connection per node must (1) route every request to the
// group owning its payload bytes and agree per shard across the fleet,
// (2) produce per-shard logs bit-identical to an S = 1-equivalent plain
// SmrReplica fleet run with the same leader offset — multiplexing is
// scheduling, never content, (3) commit cross-shard transactions
// atomically and reconstruct dtx state from the per-shard WALs after a
// crash, and (4) keep sibling shards committing while shard 0's leader
// goes silent (the view change is per group, not fleet-wide).
#include <gtest/gtest.h>

#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "net/network.hpp"
#include "shard/dtx.hpp"
#include "shard/sharded_smr.hpp"
#include "sim/scenario.hpp"
#include "smr/smr_replica.hpp"
#include "store/wal.hpp"

namespace probft::shard {
namespace {

/// n ShardedSmr nodes (each S groups) over the simulated network, with a
/// DtxCoordinator per node driving off its execution stream — the same
/// wiring the node binary uses, minus sockets.
struct ShardedFleet {
  net::Simulator sim;
  std::unique_ptr<net::Network> net;
  std::unique_ptr<crypto::CryptoSuite> suite;
  std::vector<crypto::KeyPair> keys;
  std::vector<std::unique_ptr<ShardedSmr>> nodes;       // 1-based
  std::vector<std::unique_ptr<DtxCoordinator>> dtx;     // 1-based

  ShardedFleet(std::uint32_t n, std::uint32_t shards,
               smr::SmrOptions options = {}, std::uint64_t seed = 1,
               net::LatencyConfig latency = {},
               const std::vector<std::vector<store::Wal*>>& wals = {}) {
    net = std::make_unique<net::Network>(sim, n, seed, latency);
    suite = crypto::make_sim_suite();
    keys.resize(n + 1);
    std::vector<Bytes> key_table(n + 1);
    for (ReplicaId id = 1; id <= n; ++id) {
      keys[id] = suite->keygen(mix64(seed, id));
      key_table[id] = keys[id].public_key;
    }
    const crypto::PublicKeyDir public_keys(std::move(key_table));
    nodes.resize(n + 1);
    dtx.resize(n + 1);
    for (ReplicaId id = 1; id <= n; ++id) {
      ShardedSmrConfig cfg;
      cfg.base.id = id;
      cfg.base.n = n;
      cfg.base.f = 0;
      cfg.base.pipeline = options;
      cfg.base.suite = suite.get();
      cfg.base.secret_key = keys[id].secret_key;
      cfg.base.public_keys = public_keys;
      cfg.base.sync.base_timeout = 100'000;
      cfg.map.shard_count = shards;
      if (id < wals.size()) cfg.wals = wals[id];
      cfg.on_execute = [this, id](ShardId s,
                                  const smr::ExecutedCommand& cmd) {
        if (dtx[id]) dtx[id]->on_execute(s, cmd);
      };
      core::ProtocolHost host;
      host.send = [this, id](ReplicaId to, std::uint8_t tag,
                             const Bytes& m) {
        net->send(id, to, tag, m);
      };
      host.broadcast = [this, id](std::uint8_t tag, const Bytes& m) {
        net->broadcast(id, tag, m);
      };
      host.set_timer = [this](Duration d, std::function<void()> fn) {
        sim.schedule_after(d, std::move(fn));
      };
      nodes[id] = std::make_unique<ShardedSmr>(std::move(cfg), host);
      dtx[id] = std::make_unique<DtxCoordinator>(
          *nodes[id], [this](Duration d, std::function<void()> fn) {
            sim.schedule_after(d, std::move(fn));
          });
      net->register_handler(
          id, [this, id](ReplicaId from, std::uint8_t tag, const Bytes& m) {
            nodes[id]->on_message(from, tag, m);
          });
    }
  }

  void start_all() {
    for (std::size_t id = 1; id < nodes.size(); ++id) nodes[id]->start();
  }

  /// Runs until every node's aggregate execution count reaches `expect`.
  bool run_until_executed(std::uint64_t expect,
                          TimePoint deadline = 120'000'000) {
    while (sim.now() < deadline) {
      bool all = true;
      for (std::size_t id = 1; id < nodes.size(); ++id) {
        if (nodes[id]->executed_commands() < expect) {
          all = false;
          break;
        }
      }
      if (all) return true;
      if (!sim.step()) return false;
    }
    return false;
  }

  void expect_per_shard_agreement() {
    const std::uint32_t shards = nodes[1]->shard_count();
    for (ShardId s = 0; s < shards; ++s) {
      for (std::size_t id = 2; id < nodes.size(); ++id) {
        EXPECT_EQ(nodes[id]->log_digest(s), nodes[1]->log_digest(s))
            << "shard " << s << " diverged at replica " << id;
      }
    }
  }
};

Bytes dtx_payload(const ShardMap& map, std::uint32_t shards,
                  const std::string& stem) {
  std::vector<Bytes> keys;
  for (ShardId s = 0; s < shards; ++s) {
    for (std::uint64_t nonce = 0;; ++nonce) {
      Bytes key = to_bytes(stem + "-" + std::to_string(nonce));
      if (shard_of(map, ByteSpan(key.data(), key.size())) == s) {
        keys.push_back(std::move(key));
        break;
      }
    }
  }
  Writer w;
  w.raw(ByteSpan(reinterpret_cast<const std::uint8_t*>("DTX1"), 4));
  w.vec(keys, [](Writer& wr, const Bytes& key) {
    wr.bytes(ByteSpan(key.data(), key.size()));
  });
  return std::move(w).take();
}

// Requests submitted at ONE node must land in the group owning their
// payload bytes — on every node — and sibling groups' logs must agree
// fleet-wide.
TEST(ShardedSmr, DemuxRoutesEveryRequestToItsOwningGroup) {
  const std::uint32_t n = 4, shards = 4;
  const std::uint64_t commands = 24;
  ShardedFleet fleet(n, shards);
  const Placement& placement = fleet.nodes[1]->placement();
  std::map<ShardId, std::uint64_t> owned;
  for (std::uint64_t i = 1; i <= commands; ++i) {
    Bytes payload = to_bytes("op-" + std::to_string(i));
    ++owned[placement.shard_of(ByteSpan(payload.data(), payload.size()))];
    ASSERT_TRUE(
        fleet.nodes[1]->submit_request(9000 + i, 1, std::move(payload)));
  }
  fleet.start_all();
  ASSERT_TRUE(fleet.run_until_executed(commands));
  for (ShardId s = 0; s < shards; ++s) {
    for (ReplicaId id = 1; id <= n; ++id) {
      EXPECT_EQ(fleet.nodes[id]->group(s).executed_commands(), owned[s])
          << "replica " << id << " shard " << s;
    }
  }
  fleet.expect_per_shard_agreement();
}

// The acceptance-bar bit-identity property: each shard's log under the
// multiplexed service equals the log of a plain single-group SmrReplica
// fleet run with the same leader offset and the shard's slice of the
// workload. Zero-jitter latency (min == max, no reorder/duplicate) makes
// every link FIFO, so arrival order — and therefore log content — is
// submission order in both runs; the multiplexer may interleave
// scheduling but must never perturb content.
TEST(ShardedSmr, PerShardLogsBitIdenticalToPlainSingleGroupFleet) {
  const std::uint32_t n = 4, shards = 2;
  const std::uint64_t commands = 16;
  net::LatencyConfig fifo;
  fifo.min_delay = 1'000;
  fifo.max_delay_post = 1'000;  // zero jitter: per-link FIFO delivery

  smr::SmrOptions options;
  options.batch_max_commands = 1;  // one slot per command: log = arrivals

  ShardedFleet fleet(n, shards, options, /*seed=*/1, fifo);
  const ShardMap map = fleet.nodes[1]->placement().map();
  std::vector<std::vector<std::pair<std::uint64_t, Bytes>>> slice(shards);
  for (std::uint64_t i = 1; i <= commands; ++i) {
    Bytes payload = to_bytes("op-" + std::to_string(i));
    const ShardId s =
        shard_of(map, ByteSpan(payload.data(), payload.size()));
    slice[s].emplace_back(9000 + i, payload);
    ASSERT_TRUE(
        fleet.nodes[1]->submit_request(9000 + i, 1, std::move(payload)));
  }
  fleet.start_all();
  ASSERT_TRUE(fleet.run_until_executed(commands));
  fleet.expect_per_shard_agreement();

  for (ShardId s = 0; s < shards; ++s) {
    // S = 1-equivalent: a plain fleet with this group's leader offset,
    // fed only this shard's commands in the same relative order.
    net::Simulator sim;
    net::Network plain_net(sim, n, /*seed=*/1, fifo);
    const auto suite = crypto::make_sim_suite();
    std::vector<crypto::KeyPair> keys(n + 1);
    std::vector<Bytes> key_table(n + 1);
    for (ReplicaId id = 1; id <= n; ++id) {
      keys[id] = suite->keygen(mix64(1, id));
      key_table[id] = keys[id].public_key;
    }
    const crypto::PublicKeyDir public_keys(std::move(key_table));
    std::vector<std::unique_ptr<smr::SmrReplica>> replicas(n + 1);
    for (ReplicaId id = 1; id <= n; ++id) {
      smr::SmrConfig cfg;
      cfg.id = id;
      cfg.n = n;
      cfg.f = 0;
      cfg.pipeline = options;
      cfg.leader_offset = s;
      cfg.suite = suite.get();
      cfg.secret_key = keys[id].secret_key;
      cfg.public_keys = public_keys;
      cfg.sync.base_timeout = 100'000;
      core::ProtocolHost host;
      host.send = [&plain_net, id](ReplicaId to, std::uint8_t tag,
                                   const Bytes& m) {
        plain_net.send(id, to, tag, m);
      };
      host.broadcast = [&plain_net, id](std::uint8_t tag, const Bytes& m) {
        plain_net.broadcast(id, tag, m);
      };
      host.set_timer = [&sim](Duration d, std::function<void()> fn) {
        sim.schedule_after(d, std::move(fn));
      };
      replicas[id] = std::make_unique<smr::SmrReplica>(std::move(cfg), host);
      plain_net.register_handler(
          id, [&replicas, id](ReplicaId from, std::uint8_t tag,
                              const Bytes& m) {
            replicas[id]->on_message(from, tag, m);
          });
    }
    for (const auto& [client, payload] : slice[s]) {
      ASSERT_TRUE(replicas[1]->submit_request(client, 1, payload));
    }
    for (ReplicaId id = 1; id <= n; ++id) replicas[id]->start();
    while (sim.now() < 120'000'000 &&
           replicas[1]->executed_commands() < slice[s].size()) {
      if (!sim.step()) break;
    }
    ASSERT_GE(replicas[1]->executed_commands(), slice[s].size())
        << "plain fleet for shard " << s << " did not finish";
    EXPECT_EQ(fleet.nodes[1]->log_digest(s), replicas[1]->log_digest())
        << "shard " << s
        << ": multiplexed log diverged from the single-group fleet";
  }
}

// Cross-shard transactions: every participant group commits the APPLY
// entry (2 + 2S entries per tx, fleet-wide agreement), and a replica
// rebuilt from its per-shard WALs reconstructs both the logs and the
// coordinator's view of every finished transaction.
TEST(ShardedSmr, DtxCommitsAtomicallyAndSurvivesWalRecovery) {
  const std::uint32_t n = 4, shards = 2;
  const std::uint64_t commands = 8, dtx_count = 2;
  const auto root = std::filesystem::temp_directory_path() /
                    ("probft-shard-test-" + std::to_string(::getpid()));
  std::filesystem::remove_all(root);

  // Replica 1 runs durable; everyone else is memory-only.
  std::vector<std::unique_ptr<store::Wal>> wal_store;
  std::vector<std::vector<store::Wal*>> wals(2);
  for (ShardId s = 0; s < shards; ++s) {
    wal_store.push_back(std::make_unique<store::Wal>(store::WalOptions{
        .dir = (root / ("shard-" + std::to_string(s))).string(),
        .fsync = false}));
    wals[1].push_back(wal_store.back().get());
  }

  std::uint64_t committed_cb = 0;
  {
    ShardedFleet fleet(n, shards, {}, /*seed=*/1, {}, wals);
    const ShardMap map = fleet.nodes[1]->placement().map();
    fleet.dtx[1]->set_on_complete(
        [&committed_cb](std::uint64_t, bool committed, std::uint64_t,
                        std::uint64_t) {
          if (committed) ++committed_cb;
        });
    for (std::uint64_t i = 1; i <= commands; ++i) {
      ASSERT_TRUE(fleet.nodes[1]->submit_request(
          9000 + i, 1, to_bytes("op-" + std::to_string(i))));
    }
    fleet.start_all();
    for (std::uint64_t j = 0; j < dtx_count; ++j) {
      ASSERT_TRUE(fleet.dtx[1]->submit(
          88'000 + j, 1,
          dtx_payload(map, shards, "dtx-" + std::to_string(j))));
    }
    const std::uint64_t expect = commands + dtx_count * (2 + 2 * shards);
    ASSERT_TRUE(fleet.run_until_executed(expect));
    fleet.expect_per_shard_agreement();
    for (ReplicaId id = 1; id <= n; ++id) {
      EXPECT_EQ(fleet.dtx[id]->committed(), dtx_count) << "replica " << id;
      EXPECT_EQ(fleet.dtx[id]->aborted(), 0u) << "replica " << id;
      EXPECT_EQ(fleet.dtx[id]->in_flight(), 0u) << "replica " << id;
    }
    EXPECT_EQ(committed_cb, dtx_count);

    // Crash-equivalent: record the digests, then drop the fleet (the
    // WALs keep replica 1's history).
    std::vector<std::string> digests(shards);
    for (ShardId s = 0; s < shards; ++s) {
      digests[s] = fleet.nodes[1]->log_digest(s);
    }
    for (auto& wal : wal_store) wal.reset();
    wal_store.clear();

    // Restart: fresh WAL handles over the same directories, a fresh
    // service recovered from them, dtx state rebuilt from the logs.
    std::vector<std::unique_ptr<store::Wal>> reopened;
    ShardedSmrConfig cfg;
    cfg.base.id = 1;
    cfg.base.n = n;
    cfg.base.f = 0;
    cfg.base.suite = fleet.suite.get();
    cfg.base.secret_key = fleet.keys[1].secret_key;
    std::vector<Bytes> key_table(n + 1);
    for (ReplicaId id = 1; id <= n; ++id) {
      key_table[id] = fleet.keys[id].public_key;
    }
    cfg.base.public_keys = crypto::PublicKeyDir(std::move(key_table));
    cfg.map.shard_count = shards;
    for (ShardId s = 0; s < shards; ++s) {
      reopened.push_back(std::make_unique<store::Wal>(store::WalOptions{
          .dir = (root / ("shard-" + std::to_string(s))).string(),
          .fsync = false}));
      cfg.wals.push_back(reopened.back().get());
    }
    core::ProtocolHost host;  // offline: no peers, no timers needed
    host.send = [](ReplicaId, std::uint8_t, const Bytes&) {};
    host.broadcast = [](std::uint8_t, const Bytes&) {};
    host.set_timer = [](Duration, std::function<void()>) {};
    ShardedSmr revived(std::move(cfg), host);
    for (ShardId s = 0; s < shards; ++s) {
      EXPECT_EQ(revived.log_digest(s), digests[s])
          << "shard " << s << " recovered a different history";
    }
    DtxCoordinator revived_dtx(
        revived, [](Duration, std::function<void()>) {});
    revived_dtx.rebuild_from_logs();
    EXPECT_EQ(revived_dtx.committed(), dtx_count);
    EXPECT_EQ(revived_dtx.aborted(), 0u);
    EXPECT_EQ(revived_dtx.in_flight(), 0u);
  }
  std::filesystem::remove_all(root);
}

// Regression for the silent shard-0 leader: dropping every shard-0 frame
// from that group's view-1 leader must stall only group 0 (until its view
// change passes the leader by) — sibling shards share the node's
// connection but must keep committing throughout.
TEST(ShardedSmr, SilentShardZeroLeaderDoesNotStallSiblingShards) {
  sim::ScenarioSpec spec;
  spec.protocol = sim::Protocol::kProbft;
  spec.workload = sim::Workload::kSmr;
  spec.fault = sim::Fault::kShardSilentLeader;
  spec.n = 4;
  spec.f = 1;
  // l = 1.5 makes the ProBFT quorum 3-of-4 (the spec default 2.0 needs
  // all four replicas at n = 4, which tolerates no silent leader at all
  // — the same shape run_tcp_cluster.sh uses for its kill-restart mode).
  spec.l = 1.5;
  spec.shards = 4;
  spec.smr_commands = 12;
  const auto outcome = sim::run_scenario_smr(spec, /*seed=*/1);
  EXPECT_TRUE(outcome.terminated)
      << "sibling shards stalled behind shard 0's silent leader: decided="
      << outcome.decided << "/" << outcome.correct << "\n"
      << outcome.transcript;
  EXPECT_TRUE(outcome.agreement);
}

}  // namespace
}  // namespace probft::shard
