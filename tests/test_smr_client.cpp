// Client wire protocol (net/client.hpp) and batch codec (smr/batch.hpp)
// tests: round-trips, hostile buffers (truncation, oversize payloads,
// garbage versions, trailing bytes) and duplicate-seq replay — the
// properties the SMR client path relies on to survive arbitrary bytes
// from clients and to keep retries idempotent. Mirrors test_frame.cpp.
#include <gtest/gtest.h>

#include "net/client.hpp"
#include "smr/batch.hpp"

namespace probft {
namespace {

// ---- ClientRequest / ClientReply wire format ----

TEST(ClientWire, RequestRoundTrip) {
  net::ClientRequest request;
  request.client_id = 0x1122334455667788ULL;
  request.seq = 42;
  request.payload = to_bytes("transfer 10 coins");
  const Bytes wire = request.encode();
  EXPECT_EQ(wire[0], net::kClientWireVersion);
  const auto decoded =
      net::ClientRequest::decode(ByteSpan(wire.data(), wire.size()));
  EXPECT_EQ(decoded, request);
}

TEST(ClientWire, ReplyRoundTrip) {
  net::ClientReply reply;
  reply.client_id = 9001;
  reply.seq = 7;
  reply.slot = 123;
  reply.result = to_bytes("ok");
  const Bytes wire = reply.encode();
  const auto decoded =
      net::ClientReply::decode(ByteSpan(wire.data(), wire.size()));
  EXPECT_EQ(decoded, reply);
}

TEST(ClientWire, TruncationIsRejected) {
  net::ClientRequest request;
  request.client_id = 1;
  request.seq = 1;
  request.payload = to_bytes("payload");
  const Bytes wire = request.encode();
  // No strict prefix may decode: truncation must throw, never misparse.
  for (std::size_t len = 0; len < wire.size(); ++len) {
    EXPECT_THROW(
        (void)net::ClientRequest::decode(ByteSpan(wire.data(), len)),
        CodecError)
        << "prefix length " << len;
  }
}

TEST(ClientWire, TrailingBytesAreRejected) {
  net::ClientRequest request;
  request.client_id = 1;
  request.seq = 1;
  request.payload = to_bytes("p");
  Bytes wire = request.encode();
  wire.push_back(0x00);
  EXPECT_THROW((void)net::ClientRequest::decode(ByteSpan(wire.data(),
                                                         wire.size())),
               CodecError);
}

TEST(ClientWire, GarbageVersionIsRejected) {
  net::ClientRequest request;
  request.client_id = 1;
  request.seq = 1;
  request.payload = to_bytes("p");
  Bytes wire = request.encode();
  for (const std::uint8_t version : {0x00, 0x01, 0x7f, 0xff}) {
    wire[0] = version;
    EXPECT_THROW((void)net::ClientRequest::decode(
                     ByteSpan(wire.data(), wire.size())),
                 CodecError)
        << "version " << int(version);
  }
}

TEST(ClientWire, OversizePayloadIsRejected) {
  // A length prefix above the cap must throw before any giant allocation
  // is honored as a real message.
  net::ClientRequest request;
  request.client_id = 1;
  request.seq = 1;
  request.payload = Bytes(net::kMaxClientPayload + 1, 0xab);
  const Bytes wire = request.encode();
  EXPECT_THROW((void)net::ClientRequest::decode(ByteSpan(wire.data(),
                                                         wire.size())),
               CodecError);
  net::ClientReply reply;
  reply.result = Bytes(net::kMaxClientPayload + 1, 0xcd);
  const Bytes reply_wire = reply.encode();
  EXPECT_THROW((void)net::ClientReply::decode(
                   ByteSpan(reply_wire.data(), reply_wire.size())),
               CodecError);
}

// ---- Batch codec ----

TEST(BatchCodec, RoundTrip) {
  smr::Batch batch;
  batch.push_back(smr::Request{1, 1, to_bytes("a")});
  batch.push_back(smr::Request{2, 9, to_bytes("bb")});
  batch.push_back(smr::Request{1, 2, Bytes(100, 0x5c)});
  const Bytes wire = smr::encode_batch(batch);
  const smr::BatchLimits limits;
  EXPECT_EQ(smr::decode_batch(ByteSpan(wire.data(), wire.size()), limits),
            batch);
  EXPECT_TRUE(smr::is_valid_batch(wire, limits));
}

TEST(BatchCodec, EmptyBatchIsValid) {
  const Bytes wire = smr::encode_batch({});
  const smr::BatchLimits limits;
  EXPECT_TRUE(smr::is_valid_batch(wire, limits));
  EXPECT_TRUE(
      smr::decode_batch(ByteSpan(wire.data(), wire.size()), limits).empty());
}

TEST(BatchCodec, RejectsHostileBuffers) {
  const smr::BatchLimits limits{/*max_commands=*/4, /*max_bytes=*/256};
  smr::Batch batch;
  batch.push_back(smr::Request{1, 1, to_bytes("x")});
  Bytes wire = smr::encode_batch(batch);

  // Truncation at every split point.
  for (std::size_t len = 0; len < wire.size(); ++len) {
    EXPECT_FALSE(smr::is_valid_batch(Bytes(wire.begin(),
                                           wire.begin() +
                                               static_cast<std::ptrdiff_t>(
                                                   len)),
                                     limits))
        << "prefix length " << len;
  }
  // Trailing garbage.
  Bytes trailing = wire;
  trailing.push_back(0x00);
  EXPECT_FALSE(smr::is_valid_batch(trailing, limits));
  // Count above the command cap.
  smr::Batch big;
  for (std::uint64_t i = 1; i <= 5; ++i) {
    big.push_back(smr::Request{1, i, to_bytes("c")});
  }
  EXPECT_FALSE(smr::is_valid_batch(smr::encode_batch(big), limits));
  // Encoded size above the byte cap.
  smr::Batch fat;
  fat.push_back(smr::Request{1, 1, Bytes(512, 0xaa)});
  EXPECT_FALSE(smr::is_valid_batch(smr::encode_batch(fat), limits));
}

}  // namespace
}  // namespace probft
