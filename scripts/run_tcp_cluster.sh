#!/usr/bin/env bash
# Launches an n-replica consensus cluster as real OS processes on
# 127.0.0.1 and asserts that every replica decides the same value.
#
#   usage: scripts/run_tcp_cluster.sh [BUILD_DIR] [PROTOCOL] [N]
#
#   BUILD_DIR  directory containing examples/probft_node (default: build)
#   PROTOCOL   probft | pbft | hotstuff                  (default: probft)
#   N          cluster size                              (default: 4)
#
# Exits 0 iff all N processes printed a DECIDED line with one common value
# within the timeout. This is the CI smoke test for the TCP backend
# (.github/workflows/ci.yml, job `tcp-smoke`).
set -u

BUILD_DIR=${1:-build}
PROTOCOL=${2:-probft}
N=${3:-4}
NODE_BIN="$BUILD_DIR/examples/probft_node"
DEADLINE_MS=${DEADLINE_MS:-30000}
LINGER_MS=${LINGER_MS:-2000}

if [[ ! -x "$NODE_BIN" ]]; then
  echo "error: $NODE_BIN not found (build the examples first)" >&2
  exit 2
fi

# Derive a port range from the PID so concurrent CI jobs don't collide;
# retry the whole cluster on a fresh range if a port was taken.
workdir=$(mktemp -d)
pids=()
cleanup() {
  (( ${#pids[@]} )) && kill "${pids[@]}" 2>/dev/null
  rm -rf "$workdir"
}
trap cleanup EXIT

attempt=0
while (( attempt < 3 )); do
  attempt=$((attempt + 1))
  base_port=$(( 20000 + ( ( $$ + attempt * 1000 + RANDOM % 997 ) % 40000 ) ))
  peers=""
  for (( i = 0; i < N; i++ )); do
    peers+="${peers:+,}127.0.0.1:$(( base_port + i ))"
  done
  echo "attempt $attempt: protocol=$PROTOCOL n=$N peers=$peers"

  pids=()
  for (( id = 1; id <= N; id++ )); do
    timeout $(( DEADLINE_MS / 1000 + LINGER_MS / 1000 + 15 )) \
      "$NODE_BIN" --id "$id" --peers "$peers" --protocol "$PROTOCOL" \
        --deadline-ms "$DEADLINE_MS" --linger-ms "$LINGER_MS" \
        > "$workdir/node-$id.out" 2> "$workdir/node-$id.err" &
    pids+=($!)
  done

  failures=0
  for (( id = 1; id <= N; id++ )); do
    wait "${pids[$((id - 1))]}" || failures=$((failures + 1))
  done

  if (( failures > 0 )); then
    # A bind failure (port stolen between attempts) is retryable; anything
    # else is a real failure — tell them apart by stderr content.
    if grep -lq "cannot start transport" "$workdir"/node-*.err 2>/dev/null; then
      echo "port clash, retrying on a new range" >&2
      continue
    fi
    echo "FAIL: $failures/$N nodes did not decide" >&2
    cat "$workdir"/node-*.err >&2
    exit 1
  fi

  values=$(grep -h "^DECIDED" "$workdir"/node-*.out \
             | sed 's/.*value=//' | sort -u)
  count=$(cat "$workdir"/node-*.out | grep -c "^DECIDED")
  if [[ $(wc -l <<< "$values") -ne 1 || "$count" -ne "$N" ]]; then
    echo "FAIL: agreement violated or missing decisions" >&2
    grep -h "^DECIDED" "$workdir"/node-*.out >&2
    exit 1
  fi

  echo "OK: $N/$N replicas decided value=$values"
  exit 0
done

echo "FAIL: could not find a free port range" >&2
exit 1
